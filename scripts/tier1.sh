#!/usr/bin/env bash
#
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# rebuild of the parallel execution layer so the lazy hardwired-array
# call_once fix and the ThreadPool stay honest (a data race fails this
# script even when it happens not to corrupt a value).
#
# The fault-injection tests additionally run under AddressSanitizer:
# fault plans index weight matrices and dead-row masks by generated
# coordinates, exactly the kind of arithmetic where an off-by-one reads
# out of bounds without failing a functional assertion.
#
# A fourth leg rebuilds the kernel tests with -DHNLPU_SIMD=OFF so the
# portable fallback of the Simd kernel (the only body on non-x86 hosts)
# keeps passing the same bit-exactness sweep as the vector bodies.
#
# A fifth leg rebuilds the router and fault tests under
# UndefinedBehaviorSanitizer: the retry backoff computes shifted
# delays, the fault injector flips generated bit positions, and the
# link model multiplies tick arithmetic -- all places where a shift
# past the type width or a signed overflow stays silent in a normal
# build.
#
# Usage: scripts/tier1.sh [build_dir] [tsan_build_dir] [asan_build_dir]
#        [nosimd_build_dir] [ubsan_build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ASAN_DIR="${3:-build-asan}"
NOSIMD_DIR="${4:-build-nosimd}"
UBSAN_DIR="${5:-build-ubsan}"

echo "== tier-1: build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "== tier-1: test_parallel under ThreadSanitizer =="
cmake -B "$TSAN_DIR" -S . -DHNLPU_SANITIZE=thread
cmake --build "$TSAN_DIR" -j --target test_parallel
(cd "$TSAN_DIR" && ctest --output-on-failure -R '^test_parallel$')

echo "== tier-1: kernel tests under ThreadSanitizer =="
# The Packed/Simd kernels build one PackedPlanes per GEMV and share it
# read-only across all row workers, and the lock-free scratch arena
# hands scratches between concurrent MoE experts through atomic slot
# exchanges; TSan proves the plane sharing is really read-only and the
# arena's acquire/release publication (incl. the dedicated concurrent
# stress test) is race-free rather than merely luckily un-corrupted.
cmake --build "$TSAN_DIR" -j --target test_hn_kernel
(cd "$TSAN_DIR" && ctest --output-on-failure -L '^kernel$')

echo "== tier-1: serving tests under ThreadSanitizer =="
# The batched GEMM shares per-step read-only state (per-column
# PackedPlanes, frozen KV caches) across row and (sequence, head)
# workers; TSan proves the continuous-batching hot path is race-free
# across batch sizes, kernels and thread counts.
cmake --build "$TSAN_DIR" -j --target test_serving
(cd "$TSAN_DIR" && ctest --output-on-failure -L '^serving$')

echo "== tier-1: router tests under ThreadSanitizer =="
# ServingRouter::run steps every busy shard on its own thread while
# the router thread owns scheduling state between steps; TSan proves
# the shard workers really touch disjoint slots/outcomes and that
# completion/metrics handling stays on the router thread.
cmake --build "$TSAN_DIR" -j --target test_router
(cd "$TSAN_DIR" && ctest --output-on-failure -L '^router$')

echo "== tier-1: observability tests under ThreadSanitizer =="
# Metric counters, the tracer mutex and the pool chunk observer are hit
# from every worker thread; TSan proves the registry/tracer locking is
# real and the observer installation has no unsynchronised window.
cmake --build "$TSAN_DIR" -j --target test_obs
(cd "$TSAN_DIR" && ctest --output-on-failure -L '^obs$')

echo "== tier-1: traced serving run emits valid JSON =="
# A 2-slot serving benchmark under --trace must produce BENCH JSON and a
# Chrome trace that a strict parser accepts (every emitter goes through
# obs::JsonWriter; a hand-concatenation regression fails here).
"$BUILD_DIR"/bench/bench_serving 6 4 4 \
    "$BUILD_DIR"/BENCH_serving.json \
    --trace "$BUILD_DIR"/TRACE_serving.json > /dev/null
python3 -m json.tool "$BUILD_DIR"/BENCH_serving.json > /dev/null
python3 -m json.tool "$BUILD_DIR"/TRACE_serving.json > /dev/null

echo "== tier-1: kernel tests with SIMD disabled =="
# -DHNLPU_SIMD=OFF drops the AVX bodies; HnKernel::Simd then resolves
# to the portable std::popcount tile loop, which must pass the same
# scalar-vs-packed-vs-simd bit-exactness sweep.
cmake -B "$NOSIMD_DIR" -S . -DHNLPU_SIMD=OFF
cmake --build "$NOSIMD_DIR" -j --target test_hn_kernel
(cd "$NOSIMD_DIR" && ctest --output-on-failure -L '^kernel$')

echo "== tier-1: fault tests under AddressSanitizer =="
cmake -B "$ASAN_DIR" -S . -DHNLPU_SANITIZE=address
cmake --build "$ASAN_DIR" -j --target test_fault
(cd "$ASAN_DIR" && ctest --output-on-failure -L '^fault$')

echo "== tier-1: router + fault tests under UBSan =="
cmake -B "$UBSAN_DIR" -S . -DHNLPU_SANITIZE=undefined
cmake --build "$UBSAN_DIR" -j --target test_router --target test_fault
(cd "$UBSAN_DIR" && ctest --output-on-failure -L '^(router|fault)$')

echo "== tier-1: router chaos bench survives a killed shard =="
# 4 shards, heavy-tail arrivals, a seeded mid-run fault schedule that
# drains one shard outright; the bench exits non-zero unless every
# completed request is bit-identical to a clean solo generate and
# every shed carries a typed policy reason.  The JSON report must
# satisfy a strict parser.
cmake --build "$BUILD_DIR" -j --target bench_router_chaos
"$BUILD_DIR"/bench/bench_router_chaos 56 \
    "$BUILD_DIR"/BENCH_router.json > /dev/null
python3 -m json.tool "$BUILD_DIR"/BENCH_router.json > /dev/null

echo "tier-1 OK"
