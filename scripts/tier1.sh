#!/usr/bin/env bash
#
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# rebuild of the parallel execution layer so the lazy hardwired-array
# call_once fix and the ThreadPool stay honest (a data race fails this
# script even when it happens not to corrupt a value).
#
# Usage: scripts/tier1.sh [build_dir] [tsan_build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"

echo "== tier-1: build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "== tier-1: test_parallel under ThreadSanitizer =="
cmake -B "$TSAN_DIR" -S . -DHNLPU_SANITIZE=thread
cmake --build "$TSAN_DIR" -j --target test_parallel
(cd "$TSAN_DIR" && ctest --output-on-failure -R '^test_parallel$')

echo "tier-1 OK"
