#include "hn/hn_array.hh"

#include <algorithm>
#include <optional>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace hnlpu {

namespace {

/**
 * One HnActivity per worker chunk, padded to a cache line so adjacent
 * workers' counter increments never share (and therefore never bounce)
 * a line.  The caller folds the shards after the join; the counters
 * are exact integer sums, so shard-then-merge is bit-identical to the
 * serial accumulation no matter the chunk count.
 */
struct alignas(64) ActivityShard
{
    HnActivity value;
};

/**
 * Chunk boundary alignment for the row loops: 8 int64 outputs = one
 * 64-byte cache line, so two workers never write the line that would
 * otherwise straddle their chunk boundary.
 */
constexpr std::size_t kRowAlign = 8;

} // namespace

HnArray::HnArray(const SeaOfNeuronsTemplate &tmpl,
                 const std::vector<Fp4> &weights_row_major,
                 std::size_t rows, std::size_t cols,
                 const std::vector<std::uint32_t> &dead_rows)
    : cols_(cols)
{
    hnlpu_assert(weights_row_major.size() == rows * cols,
                 "weight matrix size mismatch: ", weights_row_major.size(),
                 " != ", rows, "x", cols);
    hnlpu_assert(tmpl.inputCount == cols,
                 "template fan-in ", tmpl.inputCount,
                 " != matrix cols ", cols);
    if (!dead_rows.empty()) {
        dead_.assign(rows, 0);
        for (std::size_t i = 0; i < dead_rows.size(); ++i) {
            hnlpu_assert(dead_rows[i] < rows, "dead row ", dead_rows[i],
                         " out of range (", rows, " rows)");
            hnlpu_assert(i == 0 || dead_rows[i - 1] < dead_rows[i],
                         "dead rows must be sorted and unique");
            dead_[dead_rows[i]] = 1;
        }
        deadRowCount_ = dead_rows.size();
    }

    neurons_.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<Fp4> row(weights_row_major.begin() + r * cols,
                             weights_row_major.begin() + (r + 1) * cols);
        for (const Fp4 &w : row) {
            if (w.isZero())
                ++zeroWeights_;
        }
        std::string error;
        auto topo = WireTopology::program(tmpl, row, &error);
        if (!topo) {
            hnlpu_fatal("HN array row ", r,
                        " failed to program: ", error);
        }
        neurons_.emplace_back(std::move(*topo));
    }
}

std::vector<std::int64_t>
HnArray::gemvSerial(const std::vector<std::int64_t> &activations,
                    unsigned width, HnActivity *activity,
                    ThreadPool *pool, HnKernel kernel,
                    HnScratchArena *arena) const
{
    std::vector<std::int64_t> out(neurons_.size());

    // Packed/Simd kernels: serialise the activation vector at most
    // once -- CachedPlanes::ensure() skips even that when the leased
    // scratch already holds planes for this exact column (the engine
    // feeds one column to several projections back to back).  The
    // planes are immutable for the lifetime of the GEMV and every row
    // worker reads them concurrently without synchronisation.
    std::optional<HnScratchLease> lease;
    const PackedPlanes *planes = nullptr;
    if (kernel != HnKernel::Scalar) {
        lease.emplace(arena);
        planes = &lease->get().planes.ensure(activations, width);
    }

    // Each worker owns a disjoint, cache-line-aligned row range of
    // `out` and a padded activity shard; the shards are folded after
    // the join (exact integer sums, so shard-then-merge is bit-exact).
    std::vector<ActivityShard> shards;
    if (activity)
        shards.resize(pool ? pool->threadCount() : 1);

    parallelForChunked(
        pool, neurons_.size(),
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
            HnActivity *local =
                activity ? &shards[chunk].value : nullptr;
            for (std::size_t r = begin; r < end; ++r) {
                // A dead neuron drives 0 and toggles nothing; the mask
                // is per-row state, so the parallel result stays
                // bit-exact.
                if (rowDead(r))
                    out[r] = 0;
                else if (kernel == HnKernel::Simd)
                    out[r] = neurons_[r].computeSimd(*planes, local);
                else if (planes)
                    out[r] = neurons_[r].computePacked(*planes, local);
                else
                    out[r] = neurons_[r].computeSerial(activations,
                                                       width, local);
            }
        },
        /*grain=*/1, kRowAlign);

    if (activity) {
        for (const ActivityShard &shard : shards)
            activity->add(shard.value);
    }
    return out;
}

std::vector<std::int64_t>
HnArray::gemmSerial(
    const std::vector<std::vector<std::int64_t>> &activations,
    unsigned width, HnActivity *activity, ThreadPool *pool,
    HnKernel kernel, HnScratchArena *arena) const
{
    const std::size_t batch = activations.size();
    std::vector<std::int64_t> out(neurons_.size() * batch);
    if (batch == 0)
        return out;
    for (std::size_t b = 0; b < batch; ++b) {
        hnlpu_assert(activations[b].size() == cols_,
                     "batch column ", b, " size ", activations[b].size(),
                     " != array cols ", cols_);
    }

    // Packed/Simd kernels: serialise every column at most once
    // (per-column CachedPlanes skip the serialisation when a recycled
    // scratch already holds that column); the planes are immutable for
    // the lifetime of the GEMM and shared read-only by all row
    // workers.  The Simd kernel shares the Packed batch traversal
    // here: the batched kernel already amortises the weight-side walk
    // across columns, which is the bigger lever for GEMM.
    std::optional<HnScratchLease> lease;
    std::vector<const PackedPlanes *> planes;
    if (kernel != HnKernel::Scalar) {
        lease.emplace(arena);
        auto &batch_planes = lease->get().batchPlanes;
        if (batch_planes.size() < batch)
            batch_planes.resize(batch);
        planes.resize(batch);
        for (std::size_t b = 0; b < batch; ++b)
            planes[b] = &batch_planes[b].ensure(activations[b], width);
    }

    std::vector<ActivityShard> shards;
    if (activity)
        shards.resize(pool ? pool->threadCount() : 1);

    parallelForChunked(
        pool, neurons_.size(),
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
            HnActivity *local =
                activity ? &shards[chunk].value : nullptr;
            for (std::size_t r = begin; r < end; ++r) {
                std::int64_t *row_out = out.data() + r * batch;
                if (rowDead(r)) {
                    for (std::size_t b = 0; b < batch; ++b)
                        row_out[b] = 0;
                } else if (!planes.empty()) {
                    for (std::size_t b0 = 0; b0 < batch;
                         b0 += kHnBatchChunk) {
                        const std::size_t cols =
                            std::min(kHnBatchChunk, batch - b0);
                        neurons_[r].computePackedBatch(
                            planes.data() + b0, cols, row_out + b0,
                            local);
                    }
                } else {
                    for (std::size_t b = 0; b < batch; ++b) {
                        row_out[b] = neurons_[r].computeSerial(
                            activations[b], width, local);
                    }
                }
            }
        },
        /*grain=*/1, kRowAlign);

    if (activity) {
        for (const ActivityShard &shard : shards)
            activity->add(shard.value);
    }
    return out;
}

std::vector<std::int64_t>
HnArray::gemvReference(const std::vector<std::int64_t> &activations) const
{
    std::vector<std::int64_t> out(neurons_.size());
    for (std::size_t r = 0; r < neurons_.size(); ++r) {
        out[r] = rowDead(r) ? 0
                            : neurons_[r].computeReference(activations);
    }
    return out;
}

bool
HnArray::rowDead(std::size_t row) const
{
    return !dead_.empty() && dead_[row] != 0;
}

std::vector<double>
HnArray::gemvReal(const std::vector<double> &activations, unsigned width,
                  HnActivity *activity, ThreadPool *pool, HnKernel kernel,
                  HnScratchArena *arena) const
{
    const QuantizedVector q = quantizeSymmetric(activations, width);
    const std::vector<std::int64_t> ints =
        gemvSerial(q.values, width, activity, pool, kernel, arena);
    std::vector<double> out(ints.size());
    // Weights contribute 2*w, so fold the missing 1/2 into the scale.
    const double scale = q.scale * 0.5;
    for (std::size_t i = 0; i < ints.size(); ++i)
        out[i] = static_cast<double>(ints[i]) * scale;
    return out;
}

std::vector<std::vector<double>>
HnArray::gemmReal(const std::vector<std::vector<double>> &activations,
                  unsigned width, HnActivity *activity, ThreadPool *pool,
                  HnKernel kernel, HnScratchArena *arena) const
{
    const std::size_t batch = activations.size();
    std::vector<std::vector<std::int64_t>> ints(batch);
    std::vector<double> scales(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        QuantizedVector q = quantizeSymmetric(activations[b], width);
        ints[b] = std::move(q.values);
        // Weights contribute 2*w, so fold the missing 1/2 into the
        // per-column scale (same expression gemvReal uses).
        scales[b] = q.scale * 0.5;
    }
    const std::vector<std::int64_t> flat =
        gemmSerial(ints, width, activity, pool, kernel, arena);
    std::vector<std::vector<double>> out(
        batch, std::vector<double>(neurons_.size()));
    for (std::size_t r = 0; r < neurons_.size(); ++r) {
        for (std::size_t b = 0; b < batch; ++b)
            out[b][r] =
                static_cast<double>(flat[r * batch + b]) * scales[b];
    }
    return out;
}

const HardwiredNeuron &
HnArray::neuron(std::size_t row) const
{
    hnlpu_assert(row < neurons_.size(), "neuron row out of range");
    return neurons_[row];
}

HnArrayStats
HnArray::stats() const
{
    HnArrayStats s;
    s.rows = neurons_.size();
    s.cols = cols_;
    s.zeroWeights = zeroWeights_;
    s.deadRows = deadRowCount_;
    for (const auto &neuron : neurons_) {
        s.totalWires += neuron.topology().wireCount();
        s.groundedPorts += neuron.topology().groundedPorts();
    }
    return s;
}

std::vector<Fp4>
syntheticFp4Weights(std::size_t count, std::uint64_t seed, double stddev)
{
    Rng rng(seed);
    std::vector<Fp4> weights;
    weights.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        weights.push_back(Fp4::quantize(rng.gaussian(0.0, stddev)));
    return weights;
}

} // namespace hnlpu
