#include "hn/hn_neuron.hh"

#include "arith/bitserial.hh"
#include "arith/csa.hh"
#include "common/logging.hh"

namespace hnlpu {

HardwiredNeuron::HardwiredNeuron(WireTopology topology)
    : topology_(std::move(topology))
{
}

std::int64_t
HardwiredNeuron::computeSerial(
    const std::vector<std::int64_t> &activations, unsigned width,
    HnActivity *activity) const
{
    const auto &tmpl = topology_.tmpl();
    hnlpu_assert(activations.size() == tmpl.inputCount,
                 "activation count mismatch");

    BitSerializer serializer(activations, width);

    // One serial accumulator per FP4 value region.
    std::vector<SerialAccumulator> accumulators(kFp4Codes);
    std::size_t popcount_bits = 0;

    for (unsigned bit = 0; bit < width; ++bit) {
        const bool sign_plane = serializer.isSignPlane(bit);
        const std::vector<bool> plane = serializer.plane(bit);
        for (int code = 0; code < kFp4Codes; ++code) {
            const auto &region = topology_.region(
                static_cast<std::uint8_t>(code));
            if (region.empty())
                continue;
            std::int64_t count = 0;
            for (std::uint32_t input : region)
                count += plane[input] ? 1 : 0;
            popcount_bits += region.size();
            accumulators[code].addPlane(bit, sign_plane, count);
        }
    }

    // Constant multiply per region (2*w, exact integer) then reduce the
    // sixteen products with a CSA tree.
    const auto &twice = fp4TwiceValueTable();
    std::vector<std::int64_t> products;
    products.reserve(kFp4Codes);
    std::size_t multiplies = 0;
    for (int code = 0; code < kFp4Codes; ++code) {
        if (topology_.region(static_cast<std::uint8_t>(code)).empty())
            continue;
        products.push_back(accumulators[code].total() * twice[code]);
        ++multiplies;
    }
    const std::int64_t result = csaReduce(products);

    if (activity) {
        const CsaTreeShape tree = csaTreeShape(products.size());
        activity->cycles += bitSerialCycles(width, tree.depth);
        activity->popcountBitOps += popcount_bits;
        activity->multiplyOps += multiplies;
        activity->treeAddOps += tree.compressorCount + 1;
    }
    return result;
}

std::int64_t
HardwiredNeuron::computeReference(
    const std::vector<std::int64_t> &activations) const
{
    const auto &tmpl = topology_.tmpl();
    hnlpu_assert(activations.size() == tmpl.inputCount,
                 "activation count mismatch");
    const auto &twice = fp4TwiceValueTable();
    std::int64_t total = 0;
    for (int code = 0; code < kFp4Codes; ++code) {
        const auto &region = topology_.region(
            static_cast<std::uint8_t>(code));
        for (std::uint32_t input : region)
            total += twice[code] * activations[input];
    }
    return total;
}

} // namespace hnlpu
