#include "hn/hn_neuron.hh"

#include <bit>

#include "arith/bitserial.hh"
#include "arith/csa.hh"
#include "common/logging.hh"
#include "hn/hn_simd.hh"

namespace hnlpu {

HardwiredNeuron::HardwiredNeuron(WireTopology topology)
    : topology_(std::move(topology))
{
    // Compile each non-empty region's input list into a packed mask
    // stripe.  This is the metalization-time step of the Packed kernel:
    // region membership is frozen with the wires, so the masks are
    // immutable after construction and shared by every evaluation.
    wordsPerPlane_ = (topology_.tmpl().inputCount + 63) / 64;
    for (int code = 0; code < kFp4Codes; ++code) {
        const auto &region =
            topology_.region(static_cast<std::uint8_t>(code));
        if (region.empty())
            continue;
        RegionMask mask;
        mask.code = static_cast<std::uint8_t>(code);
        mask.bits = static_cast<std::uint32_t>(region.size());
        mask.wordOffset = maskWords_.size();
        maskWords_.resize(maskWords_.size() + wordsPerPlane_, 0);
        std::uint64_t *words = maskWords_.data() + mask.wordOffset;
        for (std::uint32_t input : region)
            words[input / 64] |= std::uint64_t(1) << (input % 64);
        regionMasks_.push_back(mask);
    }
}

std::int64_t
HardwiredNeuron::computeSerial(
    const std::vector<std::int64_t> &activations, unsigned width,
    HnActivity *activity) const
{
    const auto &tmpl = topology_.tmpl();
    hnlpu_assert(activations.size() == tmpl.inputCount,
                 "activation count mismatch");

    BitSerializer serializer(activations, width);

    // One serial accumulator per FP4 value region.
    std::vector<SerialAccumulator> accumulators(kFp4Codes);
    std::size_t popcount_bits = 0;

    for (unsigned bit = 0; bit < width; ++bit) {
        const bool sign_plane = serializer.isSignPlane(bit);
        const std::vector<bool> plane = serializer.plane(bit);
        for (int code = 0; code < kFp4Codes; ++code) {
            const auto &region = topology_.region(
                static_cast<std::uint8_t>(code));
            if (region.empty())
                continue;
            std::int64_t count = 0;
            for (std::uint32_t input : region)
                count += plane[input] ? 1 : 0;
            popcount_bits += region.size();
            accumulators[code].addPlane(bit, sign_plane, count);
        }
    }

    // Constant multiply per region (2*w, exact integer) then reduce the
    // sixteen products with a CSA tree.
    const auto &twice = fp4TwiceValueTable();
    std::vector<std::int64_t> products;
    products.reserve(kFp4Codes);
    std::size_t multiplies = 0;
    for (int code = 0; code < kFp4Codes; ++code) {
        if (topology_.region(static_cast<std::uint8_t>(code)).empty())
            continue;
        products.push_back(accumulators[code].total() * twice[code]);
        ++multiplies;
    }
    const std::int64_t result = csaReduce(products);

    if (activity) {
        const CsaTreeShape tree = csaTreeShape(products.size());
        activity->cycles += bitSerialCycles(width, tree.depth);
        activity->popcountBitOps += popcount_bits;
        activity->multiplyOps += multiplies;
        activity->treeAddOps += tree.compressorCount + 1;
    }
    return result;
}

std::int64_t
HardwiredNeuron::computePacked(const PackedPlanes &planes,
                               HnActivity *activity) const
{
    hnlpu_assert(planes.laneCount() == topology_.tmpl().inputCount,
                 "activation count mismatch");
    hnlpu_assert(planes.wordsPerPlane() == wordsPerPlane_,
                 "packed plane geometry mismatch");

    const unsigned width = planes.width();
    // Hoist the plane base pointers out of the hot loops (width <= 63
    // by BitSerializer contract, so a stack array suffices).
    const std::uint64_t *plane_ptr[63];
    for (unsigned bit = 0; bit < width; ++bit)
        plane_ptr[bit] = planes.plane(bit);

    const auto &twice = fp4TwiceValueTable();
    std::int64_t total = 0;
    std::size_t popcount_bits = 0;

    for (const RegionMask &region : regionMasks_) {
        const std::uint64_t *mask = maskWords_.data() + region.wordOffset;
        // Region integer sum: sum_bit (+-2^bit) * popcount_bit -- the
        // identical int64 additions the scalar path's SerialAccumulator
        // performs plane by plane, so the per-region totals (and with
        // them the final result) are bit-exact, not merely close.
        std::int64_t region_sum = 0;
        for (unsigned bit = 0; bit < width; ++bit) {
            const std::uint64_t *plane = plane_ptr[bit];
            std::int64_t count = 0;
            for (std::size_t w = 0; w < wordsPerPlane_; ++w)
                count += std::popcount(plane[w] & mask[w]);
            const std::int64_t weight = std::int64_t(1) << bit;
            region_sum += (bit + 1 == width ? -weight : weight) * count;
        }
        // Activity accounts logical wires examined (one per region
        // input per plane), not host words: the counters model the
        // hardware popcount fabric, not the emulation.
        popcount_bits += std::size_t(width) * region.bits;
        // Constant multiply, folded straight into the running total:
        // csaReduce() is an exact integer sum of the per-region
        // products, so accumulating them directly yields the same
        // value without the scalar path's per-row product vector.
        total += region_sum * twice[region.code];
    }

    if (activity) {
        const CsaTreeShape tree = csaTreeShape(regionMasks_.size());
        activity->cycles += bitSerialCycles(width, tree.depth);
        activity->popcountBitOps += popcount_bits;
        activity->multiplyOps += regionMasks_.size();
        activity->treeAddOps += tree.compressorCount + 1;
    }
    return total;
}

std::int64_t
HardwiredNeuron::computeSimd(const PackedPlanes &planes,
                             HnActivity *activity) const
{
    hnlpu_assert(planes.laneCount() == topology_.tmpl().inputCount,
                 "activation count mismatch");
    hnlpu_assert(planes.wordsPerPlane() == wordsPerPlane_,
                 "packed plane geometry mismatch");

    // Narrow rows cannot amortise the vector bodies' per-tile fixed
    // cost (dispatch, tail masking, horizontal reduction); the Packed
    // kernel's fused loop is the fastest exact path there and computes
    // the identical integer sums and activity, so delegating keeps the
    // Simd kernel a strict never-slower superset.
    if (wordsPerPlane_ < kHnSimdMinWords)
        return computePacked(planes, activity);

    const unsigned width = planes.width();
    // Region sums land in a stack array: region count <= kFp4Codes.
    std::int64_t region_sums[kFp4Codes];
    hnRegionSums(planes, maskWords_.data(), regionMasks_.data(),
                 regionMasks_.size(), wordsPerPlane_, region_sums);

    const auto &twice = fp4TwiceValueTable();
    std::int64_t total = 0;
    std::size_t popcount_bits = 0;
    for (std::size_t r = 0; r < regionMasks_.size(); ++r) {
        total += region_sums[r] * twice[regionMasks_[r].code];
        // Logical wires examined, exactly as the scalar/packed paths
        // account them: plane- and word-level zero skips are host
        // shortcuts, the modelled fabric still clocks every wire.
        popcount_bits += std::size_t(width) * regionMasks_[r].bits;
    }

    if (activity) {
        const CsaTreeShape tree = csaTreeShape(regionMasks_.size());
        activity->cycles += bitSerialCycles(width, tree.depth);
        activity->popcountBitOps += popcount_bits;
        activity->multiplyOps += regionMasks_.size();
        activity->treeAddOps += tree.compressorCount + 1;
    }
    return total;
}

void
HardwiredNeuron::computePackedBatch(const PackedPlanes *const *planes,
                                    std::size_t batch, std::int64_t *out,
                                    HnActivity *activity) const
{
    hnlpu_assert(batch >= 1 && batch <= kHnBatchChunk,
                 "batch ", batch, " outside [1, ", kHnBatchChunk, "]");
    const unsigned width = planes[0]->width();
    for (std::size_t b = 0; b < batch; ++b) {
        hnlpu_assert(planes[b]->laneCount() ==
                         topology_.tmpl().inputCount,
                     "activation count mismatch in batch column ", b);
        hnlpu_assert(planes[b]->wordsPerPlane() == wordsPerPlane_,
                     "packed plane geometry mismatch in batch column ",
                     b);
        hnlpu_assert(planes[b]->width() == width,
                     "batch columns must share one width");
    }

    // Per-(column, bit) plane base pointers, hoisted once per neuron
    // (width <= 63 by BitSerializer contract).
    const std::uint64_t *plane_ptr[kHnBatchChunk][63];
    for (std::size_t b = 0; b < batch; ++b) {
        for (unsigned bit = 0; bit < width; ++bit)
            plane_ptr[b][bit] = planes[b]->plane(bit);
    }

    const auto &twice = fp4TwiceValueTable();
    for (std::size_t b = 0; b < batch; ++b)
        out[b] = 0;
    std::size_t popcount_bits = 0;

    for (const RegionMask &region : regionMasks_) {
        const std::uint64_t *mask = maskWords_.data() + region.wordOffset;
        // One region accumulator per column, updated plane by plane in
        // the same order computePacked uses, so every column's region
        // sum (and final total) is the identical int64 value.
        std::int64_t region_sum[kHnBatchChunk] = {0};
        for (unsigned bit = 0; bit < width; ++bit) {
            const std::int64_t weight = std::int64_t(1) << bit;
            const std::int64_t signed_weight =
                bit + 1 == width ? -weight : weight;
            std::size_t b = 0;
            // Four-column unroll: each mask word is loaded once and
            // ANDed into four independent popcount chains, so the
            // superscalar core overlaps what the one-column kernel
            // serialises behind a single accumulator.
            for (; b + 4 <= batch; b += 4) {
                const std::uint64_t *p0 = plane_ptr[b + 0][bit];
                const std::uint64_t *p1 = plane_ptr[b + 1][bit];
                const std::uint64_t *p2 = plane_ptr[b + 2][bit];
                const std::uint64_t *p3 = plane_ptr[b + 3][bit];
                std::int64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
                for (std::size_t w = 0; w < wordsPerPlane_; ++w) {
                    const std::uint64_t m = mask[w];
                    c0 += std::popcount(p0[w] & m);
                    c1 += std::popcount(p1[w] & m);
                    c2 += std::popcount(p2[w] & m);
                    c3 += std::popcount(p3[w] & m);
                }
                region_sum[b + 0] += signed_weight * c0;
                region_sum[b + 1] += signed_weight * c1;
                region_sum[b + 2] += signed_weight * c2;
                region_sum[b + 3] += signed_weight * c3;
            }
            for (; b < batch; ++b) {
                const std::uint64_t *plane = plane_ptr[b][bit];
                std::int64_t count = 0;
                for (std::size_t w = 0; w < wordsPerPlane_; ++w)
                    count += std::popcount(plane[w] & mask[w]);
                region_sum[b] += signed_weight * count;
            }
        }
        for (std::size_t b = 0; b < batch; ++b)
            out[b] += region_sum[b] * twice[region.code];
        popcount_bits += std::size_t(width) * region.bits * batch;
    }

    if (activity) {
        // Exactly batch single-column evaluations' worth of logical
        // work: the host amortisation is wall-clock only, the modelled
        // fabric still clocks every column through every plane.
        const CsaTreeShape tree = csaTreeShape(regionMasks_.size());
        activity->cycles += batch * bitSerialCycles(width, tree.depth);
        activity->popcountBitOps += popcount_bits;
        activity->multiplyOps += batch * regionMasks_.size();
        activity->treeAddOps += batch * (tree.compressorCount + 1);
    }
}

std::int64_t
HardwiredNeuron::computeReference(
    const std::vector<std::int64_t> &activations) const
{
    const auto &tmpl = topology_.tmpl();
    hnlpu_assert(activations.size() == tmpl.inputCount,
                 "activation count mismatch");
    const auto &twice = fp4TwiceValueTable();
    std::int64_t total = 0;
    for (int code = 0; code < kFp4Codes; ++code) {
        const auto &region = topology_.region(
            static_cast<std::uint8_t>(code));
        for (std::uint32_t input : region)
            total += twice[code] * activations[input];
    }
    return total;
}

} // namespace hnlpu
