#include "hn/hn_neuron.hh"

#include <bit>

#include "arith/bitserial.hh"
#include "arith/csa.hh"
#include "common/logging.hh"

namespace hnlpu {

HardwiredNeuron::HardwiredNeuron(WireTopology topology)
    : topology_(std::move(topology))
{
    // Compile each non-empty region's input list into a packed mask
    // stripe.  This is the metalization-time step of the Packed kernel:
    // region membership is frozen with the wires, so the masks are
    // immutable after construction and shared by every evaluation.
    wordsPerPlane_ = (topology_.tmpl().inputCount + 63) / 64;
    for (int code = 0; code < kFp4Codes; ++code) {
        const auto &region =
            topology_.region(static_cast<std::uint8_t>(code));
        if (region.empty())
            continue;
        RegionMask mask;
        mask.code = static_cast<std::uint8_t>(code);
        mask.bits = static_cast<std::uint32_t>(region.size());
        mask.wordOffset = maskWords_.size();
        maskWords_.resize(maskWords_.size() + wordsPerPlane_, 0);
        std::uint64_t *words = maskWords_.data() + mask.wordOffset;
        for (std::uint32_t input : region)
            words[input / 64] |= std::uint64_t(1) << (input % 64);
        regionMasks_.push_back(mask);
    }
}

std::int64_t
HardwiredNeuron::computeSerial(
    const std::vector<std::int64_t> &activations, unsigned width,
    HnActivity *activity) const
{
    const auto &tmpl = topology_.tmpl();
    hnlpu_assert(activations.size() == tmpl.inputCount,
                 "activation count mismatch");

    BitSerializer serializer(activations, width);

    // One serial accumulator per FP4 value region.
    std::vector<SerialAccumulator> accumulators(kFp4Codes);
    std::size_t popcount_bits = 0;

    for (unsigned bit = 0; bit < width; ++bit) {
        const bool sign_plane = serializer.isSignPlane(bit);
        const std::vector<bool> plane = serializer.plane(bit);
        for (int code = 0; code < kFp4Codes; ++code) {
            const auto &region = topology_.region(
                static_cast<std::uint8_t>(code));
            if (region.empty())
                continue;
            std::int64_t count = 0;
            for (std::uint32_t input : region)
                count += plane[input] ? 1 : 0;
            popcount_bits += region.size();
            accumulators[code].addPlane(bit, sign_plane, count);
        }
    }

    // Constant multiply per region (2*w, exact integer) then reduce the
    // sixteen products with a CSA tree.
    const auto &twice = fp4TwiceValueTable();
    std::vector<std::int64_t> products;
    products.reserve(kFp4Codes);
    std::size_t multiplies = 0;
    for (int code = 0; code < kFp4Codes; ++code) {
        if (topology_.region(static_cast<std::uint8_t>(code)).empty())
            continue;
        products.push_back(accumulators[code].total() * twice[code]);
        ++multiplies;
    }
    const std::int64_t result = csaReduce(products);

    if (activity) {
        const CsaTreeShape tree = csaTreeShape(products.size());
        activity->cycles += bitSerialCycles(width, tree.depth);
        activity->popcountBitOps += popcount_bits;
        activity->multiplyOps += multiplies;
        activity->treeAddOps += tree.compressorCount + 1;
    }
    return result;
}

std::int64_t
HardwiredNeuron::computePacked(const PackedPlanes &planes,
                               HnActivity *activity) const
{
    hnlpu_assert(planes.laneCount() == topology_.tmpl().inputCount,
                 "activation count mismatch");
    hnlpu_assert(planes.wordsPerPlane() == wordsPerPlane_,
                 "packed plane geometry mismatch");

    const unsigned width = planes.width();
    // Hoist the plane base pointers out of the hot loops (width <= 63
    // by BitSerializer contract, so a stack array suffices).
    const std::uint64_t *plane_ptr[63];
    for (unsigned bit = 0; bit < width; ++bit)
        plane_ptr[bit] = planes.plane(bit);

    const auto &twice = fp4TwiceValueTable();
    std::int64_t total = 0;
    std::size_t popcount_bits = 0;

    for (const RegionMask &region : regionMasks_) {
        const std::uint64_t *mask = maskWords_.data() + region.wordOffset;
        // Region integer sum: sum_bit (+-2^bit) * popcount_bit -- the
        // identical int64 additions the scalar path's SerialAccumulator
        // performs plane by plane, so the per-region totals (and with
        // them the final result) are bit-exact, not merely close.
        std::int64_t region_sum = 0;
        for (unsigned bit = 0; bit < width; ++bit) {
            const std::uint64_t *plane = plane_ptr[bit];
            std::int64_t count = 0;
            for (std::size_t w = 0; w < wordsPerPlane_; ++w)
                count += std::popcount(plane[w] & mask[w]);
            const std::int64_t weight = std::int64_t(1) << bit;
            region_sum += (bit + 1 == width ? -weight : weight) * count;
        }
        // Activity accounts logical wires examined (one per region
        // input per plane), not host words: the counters model the
        // hardware popcount fabric, not the emulation.
        popcount_bits += std::size_t(width) * region.bits;
        // Constant multiply, folded straight into the running total:
        // csaReduce() is an exact integer sum of the per-region
        // products, so accumulating them directly yields the same
        // value without the scalar path's per-row product vector.
        total += region_sum * twice[region.code];
    }

    if (activity) {
        const CsaTreeShape tree = csaTreeShape(regionMasks_.size());
        activity->cycles += bitSerialCycles(width, tree.depth);
        activity->popcountBitOps += popcount_bits;
        activity->multiplyOps += regionMasks_.size();
        activity->treeAddOps += tree.compressorCount + 1;
    }
    return total;
}

std::int64_t
HardwiredNeuron::computeReference(
    const std::vector<std::int64_t> &activations) const
{
    const auto &tmpl = topology_.tmpl();
    hnlpu_assert(activations.size() == tmpl.inputCount,
                 "activation count mismatch");
    const auto &twice = fp4TwiceValueTable();
    std::int64_t total = 0;
    for (int code = 0; code < kFp4Codes; ++code) {
        const auto &region = topology_.region(
            static_cast<std::uint8_t>(code));
        for (std::uint32_t input : region)
            total += twice[code] * activations[input];
    }
    return total;
}

} // namespace hnlpu
