#include "hn/ce_neuron.hh"

#include "arith/csa.hh"
#include "common/logging.hh"
#include "common/math_util.hh"

namespace hnlpu {

CellEmbeddedNeuron::CellEmbeddedNeuron(std::vector<Fp4> weights)
    : weights_(std::move(weights))
{
    hnlpu_assert(!weights_.empty(), "CE neuron needs weights");
}

std::int64_t
CellEmbeddedNeuron::compute(const std::vector<std::int64_t> &activations,
                            CeActivity *activity) const
{
    hnlpu_assert(activations.size() == weights_.size(),
                 "activation count mismatch");
    std::vector<std::int64_t> products;
    products.reserve(weights_.size());
    std::size_t multiplies = 0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        if (weights_[i].isZero())
            continue;
        products.push_back(
            static_cast<std::int64_t>(weights_[i].twiceValue()) *
            activations[i]);
        ++multiplies;
    }
    const std::int64_t result = csaReduce(products);
    if (activity) {
        // Fully parallel: latency is the adder-tree depth plus the
        // multiplier stage, independent of fan-in count.
        activity->cycles += 1 + ceilLog2(std::max<std::size_t>(
                                    products.size(), 1));
        activity->multiplyOps += multiplies;
        const CsaTreeShape tree = csaTreeShape(products.size());
        activity->treeAddOps += tree.compressorCount + 1;
    }
    return result;
}

} // namespace hnlpu
