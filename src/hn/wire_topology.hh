/**
 * @file
 * Metal-Embedding wire topology.
 *
 * In the Sea-of-Neurons architecture the silicon under every neuron is
 * parameter independent: 16 POPCNT accumulator regions (one per FP4 code),
 * 16 constant multipliers and a small adder tree are prefabricated.  The
 * weights live purely in which region each input wire lands in (paper
 * Fig. 5/6).  This module models that programming step:
 *
 *  - a SeaOfNeuronsTemplate describes the prefabricated accumulator
 *    capacity (slices x ports, with slack for weight-value imbalance);
 *  - programming a weight vector produces a WireTopology: for every FP4
 *    code, the list of input indices routed into that region, plus the
 *    grounded (unused) port count;
 *  - programming fails loudly if a region overflows its prefabricated
 *    capacity, mirroring a DRC failure in the metal fill flow.
 */

#ifndef HNLPU_HN_WIRE_TOPOLOGY_HH
#define HNLPU_HN_WIRE_TOPOLOGY_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arith/fp4.hh"

namespace hnlpu {

/** Prefabricated accumulator capacity for one Hardwired-Neuron. */
struct SeaOfNeuronsTemplate
{
    /** Fan-in of the neuron (model hidden size for a dense row). */
    std::size_t inputCount = 0;
    /** Ports per accumulator slice (wiring granularity). */
    std::size_t portsPerSlice = 64;
    /**
     * Capacity slack: total ports across all 16 regions =
     * slackFactor * inputCount (rounded up to slices).  The paper sizes
     * accumulators "with sufficient slackness" to absorb weight-value
     * imbalance; slices are redistributable between regions via metal.
     */
    double slackFactor = 2.0;

    /** Total slices prefabricated for this neuron. */
    std::size_t totalSlices() const;
    /** Total ports prefabricated for this neuron. */
    std::size_t totalPorts() const;
};

/** The programmed routing of one neuron's inputs into value regions. */
class WireTopology
{
  public:
    /**
     * Program @p weights onto @p tmpl.
     * @return topology, or nullopt with @p error set when the template
     *         capacity cannot host the weight histogram.
     */
    static std::optional<WireTopology>
    program(const SeaOfNeuronsTemplate &tmpl,
            const std::vector<Fp4> &weights, std::string *error = nullptr);

    /** Input indices routed into the region of @p code. */
    const std::vector<std::uint32_t> &region(std::uint8_t code) const;

    /** Number of slices allocated to the region of @p code. */
    std::size_t regionSlices(std::uint8_t code) const;

    /** Ports tied to ground (allocated but unused). */
    std::size_t groundedPorts() const;

    /** Total metal embedding wires (== live inputs, zeros excluded). */
    std::size_t wireCount() const;

    const SeaOfNeuronsTemplate &tmpl() const { return tmpl_; }

    /** Histogram of weight codes (16 buckets). */
    const std::array<std::size_t, kFp4Codes> &histogram() const
    {
        return histogram_;
    }

    /**
     * Reconstruct the weight vector from the wiring (zero weights for
     * unrouted inputs).  Round-trips program() up to the +0/-0
     * distinction, which carries no information in the fabric.
     */
    std::vector<Fp4> recoverWeights() const;

  private:
    SeaOfNeuronsTemplate tmpl_;
    std::array<std::vector<std::uint32_t>, kFp4Codes> regions_;
    std::array<std::size_t, kFp4Codes> slices_{};
    std::array<std::size_t, kFp4Codes> histogram_{};
    std::size_t groundedPorts_ = 0;
};

} // namespace hnlpu

#endif // HNLPU_HN_WIRE_TOPOLOGY_HH
