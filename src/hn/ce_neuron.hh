/**
 * @file
 * Cell-Embedding (CE) neuron: the conventional hardwired baseline.
 *
 * CE embeds each weight in a dedicated constant multiplier cell followed
 * by a wide adder tree (paper Fig. 4 (1)).  Functionally it computes the
 * same dot product as the Hardwired-Neuron; what differs is the hardware
 * cost structure (one multiplier per input instead of sixteen per neuron)
 * which the physical model in src/phys prices.
 */

#ifndef HNLPU_HN_CE_NEURON_HH
#define HNLPU_HN_CE_NEURON_HH

#include <cstdint>
#include <vector>

#include "arith/fp4.hh"

namespace hnlpu {

/** Activity counters for a CE evaluation. */
struct CeActivity
{
    std::size_t cycles = 0;      //!< single-pass latency (tree depth)
    std::size_t multiplyOps = 0; //!< constant multiplies fired
    std::size_t treeAddOps = 0;  //!< adder-tree additions
};

/** A cell-embedded neuron: one constant multiplier per input weight. */
class CellEmbeddedNeuron
{
  public:
    explicit CellEmbeddedNeuron(std::vector<Fp4> weights);

    /**
     * Evaluate: sum_i (2 * w_i) * x_i (same integer convention as the
     * Hardwired-Neuron so results compare bit-exactly).
     */
    std::int64_t compute(const std::vector<std::int64_t> &activations,
                         CeActivity *activity = nullptr) const;

    std::size_t inputCount() const { return weights_.size(); }
    const std::vector<Fp4> &weights() const { return weights_; }

  private:
    std::vector<Fp4> weights_;
};

} // namespace hnlpu

#endif // HNLPU_HN_CE_NEURON_HH
