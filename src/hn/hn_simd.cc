#include "hn/hn_simd.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

// The vector bodies exist only on x86 GCC/Clang with the build-time
// gate on; everywhere else hnRegionSums is the portable body alone.
#if defined(HNLPU_SIMD_ENABLE) && HNLPU_SIMD_ENABLE &&                   \
    (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define HNLPU_SIMD_X86 1
#include <immintrin.h>
#else
#define HNLPU_SIMD_X86 0
#endif

namespace hnlpu {

namespace {

/**
 * Words per cache tile.  One 512-word tile is 4 KiB; a tile of the
 * plane, the current region's mask stripe, and the next stripe all fit
 * in L1 together, so the (region x bit) revisits of a tile hit cache
 * even when a full stripe would not.
 */
constexpr std::size_t kTileWords = 512;

using RegionSumsFn = void (*)(const PackedPlanes &, const std::uint64_t *,
                              const RegionMask *, std::size_t, std::size_t,
                              std::int64_t *);

/**
 * Shared traversal shape of every tier: tiles outermost so the masks
 * and planes of one tile stay hot across all (region, bit) pairs, then
 * regions, then non-zero bit planes, with @p count_tile producing the
 * exact popcount of (plane & mask) over one tile.  Integer addition is
 * associative, so this tiling is bit-exact against the straight-line
 * computePacked loop by construction.
 *
 * The tile counter is a template *value* parameter on purpose: the
 * three tier functions share one signature, so a deduced pointer-typed
 * argument would collapse every tier into a single instantiation with
 * a runtime callee -- an indirect call per (region, bit) the compiler
 * cannot inline, which on narrow rows costs more than the popcounts
 * themselves.  A value parameter gives each tier its own instantiation
 * with a known (and, for the portable body, fully inlined) callee.
 */
template <auto count_tile>
inline void
regionSumsTiled(const PackedPlanes &planes, const std::uint64_t *mask_words,
                const RegionMask *regions, std::size_t region_count,
                std::size_t words_per_plane, std::int64_t *region_sums)
{
    const unsigned width = planes.width();
    const std::uint64_t non_zero = planes.nonZeroPlaneMask();
    const std::uint64_t *plane_ptr[63];
    for (unsigned bit = 0; bit < width; ++bit)
        plane_ptr[bit] = planes.plane(bit);

    for (std::size_t r = 0; r < region_count; ++r)
        region_sums[r] = 0;

    for (std::size_t tile = 0; tile < words_per_plane;
         tile += kTileWords) {
        const std::size_t len =
            std::min(kTileWords, words_per_plane - tile);
        for (std::size_t r = 0; r < region_count; ++r) {
            const std::uint64_t *mask =
                mask_words + regions[r].wordOffset + tile;
            std::int64_t sum = 0;
            for (unsigned bit = 0; bit < width; ++bit) {
                // An all-zero plane popcounts to 0 against every mask:
                // skipping it changes nothing but the wall clock.
                if (!((non_zero >> bit) & 1ULL))
                    continue;
                const std::int64_t count =
                    count_tile(plane_ptr[bit] + tile, mask, len);
                const std::int64_t weight = std::int64_t(1) << bit;
                sum += (bit + 1 == width ? -weight : weight) * count;
            }
            region_sums[r] += sum;
        }
    }
}

std::int64_t
countTilePortable(const std::uint64_t *plane, const std::uint64_t *mask,
                  std::size_t n)
{
    std::int64_t count = 0;
    for (std::size_t w = 0; w < n; ++w)
        count += std::popcount(plane[w] & mask[w]);
    return count;
}

void
regionSumsPortable(const PackedPlanes &planes,
                   const std::uint64_t *mask_words,
                   const RegionMask *regions, std::size_t region_count,
                   std::size_t words_per_plane, std::int64_t *region_sums)
{
    regionSumsTiled<countTilePortable>(planes, mask_words, regions,
                                     region_count, words_per_plane,
                                     region_sums);
}

#if HNLPU_SIMD_X86

/**
 * AVX2 tile popcount: Mula's nibble-LUT algorithm.  Each 256-bit step
 * splits four words into nibbles, maps each nibble to its popcount via
 * PSHUFB, and folds the 32 byte-counts into four 64-bit lanes with
 * PSADBW (whose per-lane sums are exact, so no overflow handling is
 * needed at any tile size).  An all-zero 4-word plane block is skipped
 * with one VPTEST before the mask load.
 */
__attribute__((target("avx2"))) std::int64_t
countTileAvx2(const std::uint64_t *plane, const std::uint64_t *mask,
              std::size_t n)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_nibble = _mm256_set1_epi8(0x0f);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(plane + w));
        if (_mm256_testz_si256(p, p))
            continue;
        const __m256i v = _mm256_and_si256(
            p, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i *>(mask + w)));
        const __m256i lo = _mm256_and_si256(v, low_nibble);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibble);
        const __m256i bytes =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                            _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::int64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; w < n; ++w)
        count += std::popcount(plane[w] & mask[w]);
    return count;
}

__attribute__((target("avx2"))) void
regionSumsAvx2(const PackedPlanes &planes, const std::uint64_t *mask_words,
               const RegionMask *regions, std::size_t region_count,
               std::size_t words_per_plane, std::int64_t *region_sums)
{
    regionSumsTiled<countTileAvx2>(planes, mask_words, regions,
                                     region_count, words_per_plane,
                                     region_sums);
}

/**
 * AVX-512 tile popcount: one VPOPCNTQ per eight words, all-zero plane
 * blocks skipped via VPTESTMQ, the ragged tail handled with a masked
 * load (lanes beyond the tile read as zero and contribute zero).
 */
__attribute__((
    target("avx512f,avx512bw,avx512vl,avx512vpopcntdq"))) std::int64_t
countTileAvx512(const std::uint64_t *plane, const std::uint64_t *mask,
                std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i p = _mm512_loadu_si512(plane + w);
        if (_mm512_test_epi64_mask(p, p) == 0)
            continue;
        const __m512i v =
            _mm512_and_si512(p, _mm512_loadu_si512(mask + w));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
    }
    if (w < n) {
        const __mmask8 tail =
            static_cast<__mmask8>((1u << (n - w)) - 1u);
        const __m512i p = _mm512_maskz_loadu_epi64(tail, plane + w);
        const __m512i m = _mm512_maskz_loadu_epi64(tail, mask + w);
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_and_si512(p, m)));
    }
    return _mm512_reduce_add_epi64(acc);
}

__attribute__((
    target("avx512f,avx512bw,avx512vl,avx512vpopcntdq"))) void
regionSumsAvx512(const PackedPlanes &planes,
                 const std::uint64_t *mask_words,
                 const RegionMask *regions, std::size_t region_count,
                 std::size_t words_per_plane, std::int64_t *region_sums)
{
    regionSumsTiled<countTileAvx512>(planes, mask_words, regions,
                                     region_count, words_per_plane,
                                     region_sums);
}

#endif // HNLPU_SIMD_X86

struct SimdDispatch
{
    RegionSumsFn fn;
    HnSimdLevel level;
    const char *name;
};

SimdDispatch
resolveDispatch()
{
#if HNLPU_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512vpopcntdq") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512f"))
        return {regionSumsAvx512, HnSimdLevel::Avx512, "avx512"};
    if (__builtin_cpu_supports("avx2"))
        return {regionSumsAvx2, HnSimdLevel::Avx2, "avx2"};
#endif
    return {regionSumsPortable, HnSimdLevel::Portable, "portable"};
}

const SimdDispatch &
dispatch()
{
    // Resolved once, first use; the CPU feature set cannot change
    // under a running process.
    static const SimdDispatch d = resolveDispatch();
    return d;
}

} // namespace

HnSimdLevel
hnSimdLevel()
{
    return dispatch().level;
}

const char *
hnSimdLevelName()
{
    return dispatch().name;
}

void
hnRegionSums(const PackedPlanes &planes, const std::uint64_t *mask_words,
             const RegionMask *regions, std::size_t region_count,
             std::size_t words_per_plane, std::int64_t *region_sums)
{
    hnlpu_assert(words_per_plane == planes.wordsPerPlane(),
                 "packed plane geometry mismatch");
    // See kHnSimdMinWords: narrow stripes cannot amortise the vector
    // bodies' per-tile fixed cost, and the portable instantiation
    // inlines to the same popcount loop the Packed kernel runs.
    if (words_per_plane < kHnSimdMinWords) {
        regionSumsPortable(planes, mask_words, regions, region_count,
                           words_per_plane, region_sums);
        return;
    }
    dispatch().fn(planes, mask_words, regions, region_count,
                  words_per_plane, region_sums);
}

} // namespace hnlpu
