#include "hn/wire_topology.hh"

#include "common/logging.hh"
#include <algorithm>

#include "common/math_util.hh"

namespace hnlpu {

std::size_t
SeaOfNeuronsTemplate::totalSlices() const
{
    const std::size_t ports = static_cast<std::size_t>(
        static_cast<double>(inputCount) * slackFactor + 0.5);
    // Every FP4 value region is prefabricated with at least one slice,
    // so a neuron always has >= 16 slices regardless of fan-in.
    return std::max<std::size_t>(kFp4Codes,
                                 ceilDiv(ports, portsPerSlice));
}

std::size_t
SeaOfNeuronsTemplate::totalPorts() const
{
    return totalSlices() * portsPerSlice;
}

std::optional<WireTopology>
WireTopology::program(const SeaOfNeuronsTemplate &tmpl,
                      const std::vector<Fp4> &weights, std::string *error)
{
    if (weights.size() != tmpl.inputCount) {
        if (error) {
            *error = "weight count " + std::to_string(weights.size()) +
                     " != template fan-in " +
                     std::to_string(tmpl.inputCount);
        }
        return std::nullopt;
    }

    WireTopology topo;
    topo.tmpl_ = tmpl;

    for (std::size_t i = 0; i < weights.size(); ++i) {
        const Fp4 w = weights[i];
        topo.histogram_[w.code()]++;
        // Zero weights need no wire at all: the input is simply not
        // routed anywhere (its would-be port stays grounded).
        if (w.isZero())
            continue;
        topo.regions_[w.code()].push_back(
            static_cast<std::uint32_t>(i));
    }

    // Allocate slices region by region and check the prefabricated
    // budget.  Every non-empty region needs at least one slice.
    std::size_t used_slices = 0;
    for (int code = 0; code < kFp4Codes; ++code) {
        const std::size_t wires = topo.regions_[code].size();
        const std::size_t slices =
            wires == 0 ? 0 : ceilDiv(wires, tmpl.portsPerSlice);
        topo.slices_[code] = slices;
        used_slices += slices;
    }
    if (used_slices > tmpl.totalSlices()) {
        if (error) {
            *error = "weight histogram needs " +
                     std::to_string(used_slices) + " slices but only " +
                     std::to_string(tmpl.totalSlices()) +
                     " are prefabricated";
        }
        return std::nullopt;
    }

    topo.groundedPorts_ = used_slices * tmpl.portsPerSlice -
                          topo.wireCount();
    return topo;
}

const std::vector<std::uint32_t> &
WireTopology::region(std::uint8_t code) const
{
    hnlpu_assert(code < kFp4Codes, "region code out of range");
    return regions_[code];
}

std::size_t
WireTopology::regionSlices(std::uint8_t code) const
{
    hnlpu_assert(code < kFp4Codes, "region code out of range");
    return slices_[code];
}

std::size_t
WireTopology::groundedPorts() const
{
    return groundedPorts_;
}

std::vector<Fp4>
WireTopology::recoverWeights() const
{
    std::vector<Fp4> weights(tmpl_.inputCount, Fp4::quantize(0.0));
    for (int code = 0; code < kFp4Codes; ++code) {
        for (std::uint32_t input : regions_[code]) {
            hnlpu_assert(input < weights.size(), "corrupt topology");
            weights[input] = Fp4::fromCode(
                static_cast<std::uint8_t>(code));
        }
    }
    return weights;
}

std::size_t
WireTopology::wireCount() const
{
    std::size_t wires = 0;
    for (const auto &region : regions_)
        wires += region.size();
    return wires;
}

} // namespace hnlpu
