/**
 * @file
 * HN Array: a matrix of Hardwired-Neurons implementing y = W x.
 *
 * Each output neuron corresponds to one row of the FP4 weight matrix; all
 * rows share the same prefabricated Sea-of-Neurons template and differ
 * only in their metal wire topology.  The array exposes:
 *
 *  - bit-exact integer GEMV on quantised activations (bit-serial path and
 *    a reference path, which must agree);
 *  - a real-valued GEMV that quantises activations, runs the integer
 *    path and dequantises (this is what the transformer engine uses);
 *  - aggregate structural statistics for the physical model.
 */

#ifndef HNLPU_HN_HN_ARRAY_HH
#define HNLPU_HN_HN_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arith/fp4.hh"
#include "arith/quantize.hh"
#include "hn/hn_kernel.hh"
#include "hn/hn_neuron.hh"
#include "hn/wire_topology.hh"

namespace hnlpu {

class ThreadPool;

/** Structural summary of a programmed HN array. */
struct HnArrayStats
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t totalWires = 0;     //!< metal embedding wires
    std::size_t groundedPorts = 0;  //!< slack ports tied to ground
    std::size_t zeroWeights = 0;    //!< weights requiring no wire
    std::size_t deadRows = 0;       //!< defective, unrepaired neurons
};

/** A programmed matrix of Hardwired-Neurons. */
class HnArray
{
  public:
    /**
     * Program a weight matrix (row-major, rows x cols) onto a shared
     * template.  Fatal on capacity overflow: the caller controls slack
     * via the template and should size it for the weight distribution.
     *
     * @param dead_rows rows whose neuron is defective and was not
     *        remapped to a spare (src/fault); their output is stuck at
     *        0 and they consume no switching activity.  Must be sorted,
     *        unique and in range.
     */
    HnArray(const SeaOfNeuronsTemplate &tmpl,
            const std::vector<Fp4> &weights_row_major, std::size_t rows,
            std::size_t cols,
            const std::vector<std::uint32_t> &dead_rows = {});

    std::size_t rows() const { return neurons_.size(); }
    std::size_t cols() const { return cols_; }

    /** True when @p row is a dead (unrepaired) neuron. */
    bool rowDead(std::size_t row) const;

    /**
     * Bit-serial integer GEMV: out_j = sum_i (2*W_ji) * x_i.
     * With @p pool, output rows are partitioned into disjoint chunks
     * (one neuron row per output element, so bit-exact vs serial);
     * per-worker activity counters are summed into @p activity.
     *
     * @param kernel HnKernel::Packed (default) serialises the
     *        activations at most once into PackedPlanes (a recycled
     *        scratch whose cached planes already match this column
     *        skips even that) and evaluates every row word-parallel;
     *        HnKernel::Simd runs the same traversal with the
     *        vectorised inner loop (src/hn/hn_simd.hh);
     *        HnKernel::Scalar is the original per-row emulation.
     *        Outputs and activity counters are bit-identical across
     *        all three.
     * @param arena optional scratch recycler for the plane buffer;
     *        null allocates a transient scratch per call.
     */
    std::vector<std::int64_t> gemvSerial(
        const std::vector<std::int64_t> &activations, unsigned width,
        HnActivity *activity = nullptr, ThreadPool *pool = nullptr,
        HnKernel kernel = HnKernel::Packed,
        HnScratchArena *arena = nullptr) const;

    /**
     * Batched integer GEMM: one weight-side traversal evaluated against
     * @p activations.size() activation columns.  Returns a flat
     * rows x batch buffer, result of column b for row r at
     * [r * batch + b]; column b is bit-identical to
     * gemvSerial(activations[b], ...) and @p activity accumulates the
     * exact sum of the per-column counters.  With HnKernel::Packed the
     * columns are serialised once into per-column PackedPlanes and each
     * neuron row runs one region-mask traversal over all columns
     * (chunks of kHnBatchChunk), amortising mask loads and region-walk
     * overhead across the batch; Scalar evaluates column by column.
     * Rows are still partitioned across @p pool workers.
     */
    std::vector<std::int64_t> gemmSerial(
        const std::vector<std::vector<std::int64_t>> &activations,
        unsigned width, HnActivity *activity = nullptr,
        ThreadPool *pool = nullptr, HnKernel kernel = HnKernel::Packed,
        HnScratchArena *arena = nullptr) const;

    /** Reference integer GEMV (oracle). */
    std::vector<std::int64_t> gemvReference(
        const std::vector<std::int64_t> &activations) const;

    /**
     * Real-valued GEMV: symmetric @p width-bit activation quantisation,
     * integer evaluation, dequantisation (including the 1/2 from the
     * twice-value weight convention).  @p kernel / @p arena as in
     * gemvSerial.
     */
    std::vector<double> gemvReal(const std::vector<double> &activations,
                                 unsigned width = 8,
                                 HnActivity *activity = nullptr,
                                 ThreadPool *pool = nullptr,
                                 HnKernel kernel = HnKernel::Packed,
                                 HnScratchArena *arena = nullptr) const;

    /**
     * Batched real GEMM: every activation column is quantised with its
     * own symmetric scale (exactly as gemvReal would alone, so column
     * results are bit-identical to per-column gemvReal calls), the
     * integer batch runs through gemmSerial's single weight traversal,
     * and each column dequantises with its own scale.
     * @return one output vector per activation column
     */
    std::vector<std::vector<double>> gemmReal(
        const std::vector<std::vector<double>> &activations,
        unsigned width = 8, HnActivity *activity = nullptr,
        ThreadPool *pool = nullptr, HnKernel kernel = HnKernel::Packed,
        HnScratchArena *arena = nullptr) const;

    const HardwiredNeuron &neuron(std::size_t row) const;

    HnArrayStats stats() const;

  private:
    std::size_t cols_ = 0;
    std::size_t zeroWeights_ = 0;
    std::size_t deadRowCount_ = 0;
    std::vector<HardwiredNeuron> neurons_;
    /** Per-row dead mask; empty when no row is dead. */
    std::vector<std::uint8_t> dead_;
};

/**
 * Generate a synthetic FP4 weight matrix whose value histogram follows a
 * roughly Gaussian logit distribution (stand-in for trained LLM weights;
 * see DESIGN.md substitution table).
 */
std::vector<Fp4> syntheticFp4Weights(std::size_t count,
                                     std::uint64_t seed,
                                     double stddev = 1.5);

} // namespace hnlpu

#endif // HNLPU_HN_HN_ARRAY_HH
