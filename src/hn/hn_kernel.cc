#include "hn/hn_kernel.hh"

namespace hnlpu {

std::unique_ptr<HnScratch>
HnScratchArena::acquire()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!free_.empty()) {
            std::unique_ptr<HnScratch> scratch = std::move(free_.back());
            free_.pop_back();
            return scratch;
        }
    }
    return std::make_unique<HnScratch>();
}

void
HnScratchArena::release(std::unique_ptr<HnScratch> scratch)
{
    if (!scratch)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(scratch));
}

std::size_t
HnScratchArena::idleCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
}

HnScratchLease::HnScratchLease(HnScratchArena *arena)
    : arena_(arena),
      scratch_(arena ? arena->acquire() : std::make_unique<HnScratch>())
{
}

HnScratchLease::~HnScratchLease()
{
    if (arena_)
        arena_->release(std::move(scratch_));
}

} // namespace hnlpu
