#include "hn/hn_kernel.hh"

namespace hnlpu {

namespace {

/**
 * Home slot of the calling thread: consecutive thread registrations
 * spread across the slot array, and a thread always probes from its
 * own slot first, so release-then-acquire from one thread round-trips
 * the same scratch (maximising CachedPlanes hits) while concurrent
 * threads touch disjoint slots (no contention, no false sharing on the
 * slot word in steady state).
 */
std::size_t
threadSlotHome()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t home =
        next.fetch_add(1, std::memory_order_relaxed) %
        HnScratchArena::kSlots;
    return home;
}

} // namespace

HnScratchArena::~HnScratchArena()
{
    for (auto &slot : slots_)
        delete slot.exchange(nullptr, std::memory_order_acquire);
}

std::unique_ptr<HnScratch>
HnScratchArena::acquire()
{
    const std::size_t home = threadSlotHome();
    for (std::size_t k = 0; k < kSlots; ++k) {
        auto &slot = slots_[(home + k) % kSlots];
        // Cheap load first: an exchange on an empty slot would still
        // bounce the cache line between probing threads.
        if (slot.load(std::memory_order_relaxed) == nullptr)
            continue;
        // Acquire pairs with release() so the new owner sees every
        // write the previous owner made into the scratch buffers.
        if (HnScratch *scratch =
                slot.exchange(nullptr, std::memory_order_acquire))
            return std::unique_ptr<HnScratch>(scratch);
    }
    return std::make_unique<HnScratch>();
}

void
HnScratchArena::release(std::unique_ptr<HnScratch> scratch)
{
    if (!scratch)
        return;
    HnScratch *raw = scratch.release();
    const std::size_t home = threadSlotHome();
    for (std::size_t k = 0; k < kSlots; ++k) {
        auto &slot = slots_[(home + k) % kSlots];
        if (slot.load(std::memory_order_relaxed) != nullptr)
            continue;
        HnScratch *expected = nullptr;
        if (slot.compare_exchange_strong(expected, raw,
                                         std::memory_order_release,
                                         std::memory_order_relaxed))
            return;
    }
    // Every slot occupied: more than kSlots concurrent leases just
    // drained.  Freeing is correct (the arena is a cache, not an
    // owner-of-record) and cannot recur in steady state.
    delete raw;
}

std::size_t
HnScratchArena::idleCount() const
{
    std::size_t count = 0;
    for (const auto &slot : slots_) {
        if (slot.load(std::memory_order_relaxed) != nullptr)
            ++count;
    }
    return count;
}

HnScratchLease::HnScratchLease(HnScratchArena *arena)
    : arena_(arena),
      scratch_(arena ? arena->acquire() : std::make_unique<HnScratch>())
{
}

HnScratchLease::~HnScratchLease()
{
    if (arena_)
        arena_->release(std::move(scratch_));
}

} // namespace hnlpu
