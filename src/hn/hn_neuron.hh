/**
 * @file
 * Hardwired-Neuron (Metal-Embedding) functional model.
 *
 * The HN is an accumulate-multiply-accumulate unit (paper Fig. 4 (2)):
 *
 *  1. inputs arrive as 1-bit serialised planes (LSB first);
 *  2. each FP4-value region POPCNTs the bits of the inputs wired to it;
 *  3. a serial accumulator per region folds the per-plane counts into the
 *     integer sum of that region's inputs;
 *  4. sixteen constant multipliers scale each region sum by its weight
 *     (as the exact integer 2*w) and a 16-way adder tree produces the
 *     dot product.
 *
 * The model is bit-exact: for integer activations x and FP4 weights w,
 * computeSerial() returns sum_i (2*w_i) * x_i, so (result * scale / 2)
 * reproduces the real dot product up to activation quantisation only.
 */

#ifndef HNLPU_HN_HN_NEURON_HH
#define HNLPU_HN_HN_NEURON_HH

#include <cstdint>
#include <vector>

#include "arith/bitserial.hh"
#include "arith/fp4.hh"
#include "hn/wire_topology.hh"

namespace hnlpu {

/**
 * Maximum batch width one computePackedBatch() call accepts.  The
 * kernel keeps one region accumulator and one plane-pointer row per
 * column on the stack; callers with wider batches chunk their columns
 * (HnArray::gemmSerial does).
 */
inline constexpr std::size_t kHnBatchChunk = 8;

/** Per-evaluation activity counters used by the energy model. */
struct HnActivity
{
    std::size_t cycles = 0;         //!< bit-serial cycles consumed
    std::size_t popcountBitOps = 0; //!< bits examined across regions
    std::size_t multiplyOps = 0;    //!< constant multiplies fired
    std::size_t treeAddOps = 0;     //!< final adder-tree additions

    /**
     * Fold another counter set into this one.  All fields are exact
     * integer sums, so merging per-worker counters in any order yields
     * the same totals as a serial accumulation.
     */
    void add(const HnActivity &other)
    {
        cycles += other.cycles;
        popcountBitOps += other.popcountBitOps;
        multiplyOps += other.multiplyOps;
        treeAddOps += other.treeAddOps;
    }
};

/**
 * One non-empty FP4 region compiled to packed mask words.
 *
 * The mask words live in a single per-neuron buffer (one
 * ceil(inputCount/64)-word stripe per non-empty code, in ascending code
 * order -- the same order computeSerial() visits regions, so the CSA
 * operand order and hence the bit-exact result are identical).
 */
struct RegionMask
{
    std::uint8_t code = 0;    //!< FP4 code of this region
    std::uint32_t bits = 0;   //!< logical inputs wired into the region
    std::size_t wordOffset = 0; //!< stripe start in the mask buffer
};

/** One Hardwired-Neuron programmed with a wire topology. */
class HardwiredNeuron
{
  public:
    explicit HardwiredNeuron(WireTopology topology);

    /**
     * Evaluate the neuron bit-serially (Scalar kernel: per-call
     * re-serialisation, element-wise region walk).
     * @param activations integer activations (one per template input)
     * @param width activation bit width (serial cycle count driver)
     * @param activity optional activity counter accumulation
     * @return sum_i (2 * w_i) * x_i as an exact integer
     */
    std::int64_t computeSerial(
        const std::vector<std::int64_t> &activations, unsigned width,
        HnActivity *activity = nullptr) const;

    /**
     * Evaluate the neuron word-parallel (Packed kernel): each
     * (bit plane, region) popcount runs 64 wires per instruction as
     * popcount(plane_word & mask_word).  Bit-exact with computeSerial
     * on the serialisation of the same activations, including the
     * HnActivity counters (popcountBitOps counts logical region bits).
     * @p planes is shared read-only: this method never mutates it, so
     * many rows/threads may evaluate against one PackedPlanes.
     */
    std::int64_t computePacked(const PackedPlanes &planes,
                               HnActivity *activity = nullptr) const;

    /**
     * Evaluate the neuron with the SIMD inner loop (Simd kernel): the
     * Packed traversal with vectorised AND+POPCNT (AVX-512 VPOPCNTQ /
     * AVX2, runtime-dispatched; portable std::popcount fallback),
     * cache-blocked word tiles and all-zero plane/word skipping --
     * see src/hn/hn_simd.hh.  Bit-exact with computeSerial and
     * computePacked including the HnActivity counters (which account
     * logical wires; zero-skips never change them).
     */
    std::int64_t computeSimd(const PackedPlanes &planes,
                             HnActivity *activity = nullptr) const;

    /**
     * Evaluate the neuron against @p batch activation sets in ONE
     * region-mask traversal (the batched-GEMM building block): each
     * region's mask words are loaded once and applied to every
     * column's planes, so the weight-side work (region walk, mask
     * loads, per-plane sign/weight setup) is amortised across the
     * batch the way the hardwired fabric amortises its single weight
     * traversal across in-flight sequences.
     *
     * Column b's result is bit-identical to
     * computePacked(*planes[b]) -- identical int64 additions in the
     * identical order -- and the HnActivity counters accumulate the
     * exact sum of the per-column counters (logical wires, as ever).
     *
     * All planes must share one width and this neuron's geometry;
     * batch must be in [1, kHnBatchChunk].
     * @param out receives batch results, out[b] for planes[b]
     */
    void computePackedBatch(const PackedPlanes *const *planes,
                            std::size_t batch, std::int64_t *out,
                            HnActivity *activity = nullptr) const;

    /** Same result via direct integer arithmetic (oracle). */
    std::int64_t computeReference(
        const std::vector<std::int64_t> &activations) const;

    const WireTopology &topology() const { return topology_; }

    /** Compiled masks of the non-empty regions, ascending code order. */
    const std::vector<RegionMask> &regionMasks() const
    {
        return regionMasks_;
    }

  private:
    WireTopology topology_;
    /** Packed mask stripes; see RegionMask. */
    std::vector<std::uint64_t> maskWords_;
    std::vector<RegionMask> regionMasks_;
    /** ceil(inputCount / 64): words per mask stripe / bit plane. */
    std::size_t wordsPerPlane_ = 0;
};

} // namespace hnlpu

#endif // HNLPU_HN_HN_NEURON_HH
