/**
 * @file
 * Kernel selection and scratch memory for HN array GEMV.
 *
 * The HN array has three bit-exact host kernels:
 *
 *  - Scalar: the original functional model -- per row, re-serialise the
 *    activation vector into std::vector<bool> planes and walk each FP4
 *    region's input list element by element (one emulated wire at a
 *    time);
 *  - Packed: the word-parallel model -- serialise the activations ONCE
 *    per GEMV into PackedPlanes (64 lanes per uint64_t word), compile
 *    each region's input list into mask words at programming time, and
 *    reduce each (plane, region) pair with popcount(plane & mask);
 *  - Simd: the vectorised Packed model -- the same region-mask
 *    traversal with a SIMD inner loop (AVX-512 VPOPCNTQ or an AVX2
 *    Mula popcount, dispatched at runtime behind the HNLPU_SIMD
 *    compile-time gate; portable std::popcount otherwise),
 *    cache-blocked word tiles and all-zero plane/word skipping
 *    (src/hn/hn_simd.{hh,cc}).
 *
 * All kernels produce identical integer outputs and identical
 * HnActivity counters (the word-parallel kernels still account logical
 * region bits, not words, and zero-skips never change the counters);
 * tests/test_hn_kernel.cc pins this.  Packed is the engine default.
 *
 * HnScratch owns the CachedPlanes buffers of one in-flight GEMV/GEMM.
 * HnScratchArena recycles scratches across calls and across concurrent
 * callers (e.g. expert-parallel MoE workers) through a lock-free slot
 * array -- acquire/release are a single atomic exchange on the
 * caller's preferred slot in steady state, so leasing never serialises
 * concurrent GEMVs the way the old mutex-guarded freelist did.  The
 * arena hands each caller an exclusive scratch; the PackedPlanes built
 * into it is then shared strictly read-only by the row workers of that
 * one GEMV.
 */

#ifndef HNLPU_HN_HN_KERNEL_HH
#define HNLPU_HN_HN_KERNEL_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "arith/bitserial.hh"

namespace hnlpu {

/** Which GEMV kernel the hardwired path executes. */
enum class HnKernel { Scalar, Packed, Simd };

/**
 * A PackedPlanes plus the key it was built from, so rebuilding with an
 * unchanged input column is a comparison instead of a serialisation.
 * The engine feeds the same activation vector to several projections
 * back to back (x into wq/wk/wv, the normed hidden into every routed
 * expert's gate AND up projection), and thread-affine scratch reuse
 * hands the same scratch back to the same caller -- together those
 * turn most per-GEMV plane builds into cache hits.
 *
 * ensure() is exception-safe by ordering: the valid flag drops before
 * the build and is restored only after both the planes and the key are
 * consistent, so a throwing build can never leave a stale key claiming
 * to describe fresh planes.
 */
class CachedPlanes
{
  public:
    /**
     * Return planes built from (values, width), rebuilding only when
     * they differ from the previous build.  The O(n) key comparison is
     * ~width times cheaper than the serialisation it avoids.
     */
    const PackedPlanes &ensure(const std::vector<std::int64_t> &values,
                               unsigned width)
    {
        if (valid_ && keyWidth_ == width && key_ == values)
            return planes_;
        valid_ = false;
        planes_.build(values, width);
        key_ = values;
        keyWidth_ = width;
        valid_ = true;
        ++buildCount_;
        return planes_;
    }

    /** Serialisations actually performed (cache-miss count; test hook). */
    std::size_t buildCount() const { return buildCount_; }

    /** Drop the cached key (the next ensure() rebuilds). */
    void invalidate() { valid_ = false; }

  private:
    PackedPlanes planes_;
    std::vector<std::int64_t> key_;
    unsigned keyWidth_ = 0;
    bool valid_ = false;
    std::size_t buildCount_ = 0;
};

/** Reusable per-GEMV working memory (exclusively owned while leased). */
struct HnScratch
{
    CachedPlanes planes;
    /**
     * One CachedPlanes per batch column for the batched GEMM path
     * (HnArray::gemmSerial).  Grown on demand and never shrunk, so a
     * recycled scratch keeps every column's word buffer across calls
     * and steady-state batched decode allocates no plane memory.
     */
    std::vector<CachedPlanes> batchPlanes;
};

/**
 * Lock-free scratch recycler: a fixed array of atomic slots, each
 * holding one parked scratch (or null).  acquire() claims a parked
 * scratch with an atomic exchange (or allocates on a miss); release()
 * parks it back with a compare-exchange (or frees it if every slot is
 * full, which cannot happen in steady state with <= kSlots concurrent
 * leases).  There is no ABA hazard: slots only ever swap with null,
 * never with another live pointer.
 *
 * Each thread probes from its own home slot, so a thread that runs
 * back-to-back GEMVs gets the same scratch back -- which is what makes
 * the CachedPlanes key comparison hit when the input column repeats.
 */
class HnScratchArena
{
  public:
    /** Parked-scratch capacity; beyond it release() frees instead. */
    static constexpr std::size_t kSlots = 64;

    HnScratchArena() = default;
    ~HnScratchArena();
    HnScratchArena(const HnScratchArena &) = delete;
    HnScratchArena &operator=(const HnScratchArena &) = delete;

    std::unique_ptr<HnScratch> acquire();
    void release(std::unique_ptr<HnScratch> scratch);

    /** Scratches currently parked in the slot array (test hook). */
    std::size_t idleCount() const;

  private:
    std::array<std::atomic<HnScratch *>, kSlots> slots_{};
};

/**
 * RAII lease: takes a scratch from @p arena (returned on destruction,
 * including during stack unwinding -- a throwing plane build cannot
 * leak the scratch out of the arena), or owns a private one when
 * @p arena is null so callers without an engine context still work.
 */
class HnScratchLease
{
  public:
    explicit HnScratchLease(HnScratchArena *arena);
    ~HnScratchLease();
    HnScratchLease(const HnScratchLease &) = delete;
    HnScratchLease &operator=(const HnScratchLease &) = delete;

    HnScratch &get() { return *scratch_; }

  private:
    HnScratchArena *arena_;
    std::unique_ptr<HnScratch> scratch_;
};

} // namespace hnlpu

#endif // HNLPU_HN_HN_KERNEL_HH
