/**
 * @file
 * Kernel selection and scratch memory for HN array GEMV.
 *
 * The HN array has two bit-exact host kernels:
 *
 *  - Scalar: the original functional model -- per row, re-serialise the
 *    activation vector into std::vector<bool> planes and walk each FP4
 *    region's input list element by element (one emulated wire at a
 *    time);
 *  - Packed: the word-parallel model -- serialise the activations ONCE
 *    per GEMV into PackedPlanes (64 lanes per uint64_t word), compile
 *    each region's input list into mask words at programming time, and
 *    reduce each (plane, region) pair with popcount(plane & mask).
 *
 * Both kernels produce identical integer outputs and identical
 * HnActivity counters (the Packed kernel still accounts logical region
 * bits, not words); tests/test_hn_kernel.cc pins this.  Packed is the
 * default everywhere.
 *
 * HnScratch owns the PackedPlanes buffer of one in-flight GEMV.
 * HnScratchArena recycles scratches across calls (and across concurrent
 * callers, e.g. expert-parallel MoE workers), so steady-state decode
 * performs no plane-buffer allocation.  The arena hands each caller an
 * exclusive scratch; the PackedPlanes built into it is then shared
 * strictly read-only by the row workers of that one GEMV.
 */

#ifndef HNLPU_HN_HN_KERNEL_HH
#define HNLPU_HN_HN_KERNEL_HH

#include <memory>
#include <mutex>
#include <vector>

#include "arith/bitserial.hh"

namespace hnlpu {

/** Which GEMV kernel the hardwired path executes. */
enum class HnKernel { Scalar, Packed };

/** Reusable per-GEMV working memory (exclusively owned while leased). */
struct HnScratch
{
    PackedPlanes planes;
    /**
     * One PackedPlanes per batch column for the batched GEMM path
     * (HnArray::gemmSerial).  Grown on demand and never shrunk, so a
     * recycled scratch keeps every column's word buffer across calls
     * and steady-state batched decode allocates no plane memory.
     */
    std::vector<PackedPlanes> batchPlanes;
};

/**
 * Mutex-protected free list of scratches.  acquire() pops a recycled
 * scratch (or creates one on first use); release() returns it.  The
 * lock is held only for the pointer swap -- never while a GEMV runs --
 * so concurrent MoE experts each lease their own scratch without
 * serialising on each other.
 */
class HnScratchArena
{
  public:
    HnScratchArena() = default;
    HnScratchArena(const HnScratchArena &) = delete;
    HnScratchArena &operator=(const HnScratchArena &) = delete;

    std::unique_ptr<HnScratch> acquire();
    void release(std::unique_ptr<HnScratch> scratch);

    /** Scratches currently parked in the free list (test hook). */
    std::size_t idleCount() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<HnScratch>> free_;
};

/**
 * RAII lease: takes a scratch from @p arena (returned on destruction),
 * or owns a private one when @p arena is null so callers without an
 * engine context still work.
 */
class HnScratchLease
{
  public:
    explicit HnScratchLease(HnScratchArena *arena);
    ~HnScratchLease();
    HnScratchLease(const HnScratchLease &) = delete;
    HnScratchLease &operator=(const HnScratchLease &) = delete;

    HnScratch &get() { return *scratch_; }

  private:
    HnScratchArena *arena_;
    std::unique_ptr<HnScratch> scratch_;
};

} // namespace hnlpu

#endif // HNLPU_HN_HN_KERNEL_HH
