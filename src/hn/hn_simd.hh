/**
 * @file
 * SIMD inner loop of the packed HN kernel (HnKernel::Simd).
 *
 * The packed kernel's hot loop is, per neuron row, a
 * (region x bit-plane x word) traversal of
 * popcount(plane_word & mask_word).  This module computes the
 * per-region weighted sums of that traversal with:
 *
 *  - a vectorised AND+POPCNT body: AVX-512 VPOPCNTQ (8 words per
 *    instruction) or an AVX2 nibble-LUT popcount (Mula's algorithm, 4
 *    words per step), selected once at runtime via
 *    __builtin_cpu_supports behind the HNLPU_SIMD compile-time gate; a
 *    portable std::popcount loop is always compiled and is the only
 *    body when HNLPU_SIMD=OFF or on non-x86 targets;
 *  - all-zero skipping at two granularities: whole bit planes
 *    (PackedPlanes::nonZeroPlaneMask, free at build time) and, in the
 *    vector bodies, all-zero plane-word blocks (one vector test before
 *    the AND+POPCNT) -- the bit-sparsity idea of Laconic /
 *    DynamicStripes applied to the host emulation;
 *  - cache blocking: the word dimension is processed in fixed tiles so
 *    one tile of every region's mask stripe plus the touched planes
 *    fits in L1 even for very wide rows, instead of streaming each
 *    full stripe per (region, bit) pair.
 *
 * Bit-exactness is structural, not approximate: every per-(region,
 * bit, tile) count is an exact integer, integer addition is
 * associative, and zero planes/words contribute exactly 0 -- so the
 * region sums (and with them the neuron output and HnActivity
 * counters, which count logical wires regardless of skips) are
 * identical to computeSerial/computePacked.  tests/test_hn_kernel.cc
 * pins all three kernels against each other.
 */

#ifndef HNLPU_HN_HN_SIMD_HH
#define HNLPU_HN_HN_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "arith/bitserial.hh"
#include "hn/hn_neuron.hh"

namespace hnlpu {

/** Instruction-set tier the Simd kernel resolved to (once, at startup). */
enum class HnSimdLevel { Portable, Avx2, Avx512 };

/**
 * Minimum words per plane before the vector bodies pay off.  Each tile
 * call costs dispatch, tail masking and a horizontal reduction; below
 * ~two 512-bit iterations that fixed cost exceeds the popcount work
 * itself, so narrower rows take the Packed kernel's fused loop instead
 * (HardwiredNeuron::computeSimd delegates, hnRegionSums runs its
 * portable loop).  The cutover only selects between exact-integer
 * loops, so results are bit-identical on both sides.
 */
inline constexpr std::size_t kHnSimdMinWords = 16;

/** The active tier: best supported tier under the HNLPU_SIMD gate. */
HnSimdLevel hnSimdLevel();

/** Human-readable name of the active tier (bench/report labels). */
const char *hnSimdLevelName();

/**
 * Compute region_sums[r] = sum over bit planes of
 * (+-2^bit) * popcount(plane(bit) & mask stripe of regions[r]) for
 * every region, using the active SIMD tier.  Rows too narrow to
 * amortise the vector bodies' per-call overhead run the portable loop
 * regardless of tier (same exact integer sums, so still bit-identical).
 * @p mask_words is the
 * neuron's packed mask buffer (stripes located by
 * regions[r].wordOffset, each @p words_per_plane words, which must
 * equal planes.wordsPerPlane()).  @p region_sums must hold
 * @p region_count entries; it is fully overwritten.
 */
void hnRegionSums(const PackedPlanes &planes,
                  const std::uint64_t *mask_words,
                  const RegionMask *regions, std::size_t region_count,
                  std::size_t words_per_plane,
                  std::int64_t *region_sums);

} // namespace hnlpu

#endif // HNLPU_HN_HN_SIMD_HH
