#include "xformer/linear.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace hnlpu {

Linear::Linear(std::vector<Fp4> weights, std::size_t out_dim,
               std::size_t in_dim, std::vector<std::uint32_t> dead_rows)
    : weights_(std::move(weights)), outDim_(out_dim), inDim_(in_dim),
      deadRows_(std::move(dead_rows)),
      hardwiredState_(std::make_shared<HardwiredState>())
{
    hnlpu_assert(weights_.size() == outDim_ * inDim_,
                 "linear weight count mismatch");
    for (std::size_t i = 0; i < deadRows_.size(); ++i) {
        hnlpu_assert(deadRows_[i] < outDim_, "dead row ", deadRows_[i],
                     " out of range (", outDim_, " rows)");
        hnlpu_assert(i == 0 || deadRows_[i - 1] < deadRows_[i],
                     "dead rows must be sorted and unique");
    }
}

Linear
Linear::fromReal(const Mat &weights)
{
    std::vector<Fp4> codes;
    codes.reserve(weights.rows() * weights.cols());
    for (double v : weights.data())
        codes.push_back(Fp4::quantize(v));
    return Linear(std::move(codes), weights.rows(), weights.cols());
}

Linear
Linear::random(std::size_t out_dim, std::size_t in_dim,
               std::uint64_t seed)
{
    Rng rng(seed);
    // Scale so dot products stay O(1) for unit-variance inputs; FP4 has
    // a coarse grid so we stretch into its dynamic range first.
    const double stddev = 1.5;
    std::vector<Fp4> codes;
    codes.reserve(out_dim * in_dim);
    for (std::size_t i = 0; i < out_dim * in_dim; ++i)
        codes.push_back(Fp4::quantize(rng.gaussian(0.0, stddev)));
    return Linear(std::move(codes), out_dim, in_dim);
}

const HnArray &
Linear::hardwired() const
{
    HardwiredState &state = *hardwiredState_;
    std::call_once(state.once, [&] {
        SeaOfNeuronsTemplate tmpl;
        tmpl.inputCount = inDim_;
        tmpl.portsPerSlice = 16;
        tmpl.slackFactor = 4.0;
        state.array = std::make_unique<HnArray>(tmpl, weights_, outDim_,
                                                inDim_, deadRows_);
    });
    return *state.array;
}

Vec
Linear::forward(const Vec &x, const ExecContext &ctx) const
{
    hnlpu_assert(x.size() == inDim_, "linear input size mismatch: ",
                 x.size(), " vs ", inDim_);
    if (ctx.path == ExecPath::Hardwired) {
        return hardwired().gemvReal(x, ctx.activationBits, ctx.activity,
                                    ctx.pool, ctx.kernel, ctx.arena);
    }

    Vec y(outDim_, 0.0);
    const auto &values = fp4ValueTable();
    // A reference row is inDim_ multiply-adds, so small projections
    // (attention heads, routers) are microsecond-scale jobs; the grain
    // keeps each chunk worth at least ~16k multiply-adds so the pool
    // never wakes a worker for less work than the wake costs -- this
    // is what un-regressed the reference path past 2 threads.
    const std::size_t grain =
        std::max<std::size_t>(1, std::size_t(16384) / inDim_);
    parallelFor(ctx.pool, outDim_,
                [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
            double acc = 0.0;
            const Fp4 *row = weights_.data() + r * inDim_;
            for (std::size_t c = 0; c < inDim_; ++c)
                acc += values[row[c].code()] * x[c];
            y[r] = acc;
        }
    }, grain);
    // Dead neurons read as exactly 0.0, matching the hardwired mask.
    for (std::uint32_t r : deadRows_)
        y[r] = 0.0;
    return y;
}

std::vector<Vec>
Linear::forwardBatch(const std::vector<Vec> &xs,
                     const ExecContext &ctx) const
{
    const std::size_t batch = xs.size();
    if (batch == 0)
        return {};
    for (std::size_t b = 0; b < batch; ++b) {
        hnlpu_assert(xs[b].size() == inDim_,
                     "batch column ", b, " input size mismatch: ",
                     xs[b].size(), " vs ", inDim_);
    }
    if (batch == 1) {
        std::vector<Vec> ys(1);
        ys[0] = forward(xs[0], ctx);
        return ys;
    }
    if (ctx.path == ExecPath::Hardwired) {
        return hardwired().gemmReal(xs, ctx.activationBits, ctx.activity,
                                    ctx.pool, ctx.kernel, ctx.arena);
    }

    std::vector<Vec> ys(batch, Vec(outDim_, 0.0));
    const auto &values = fp4ValueTable();
    // Same work-size-aware grain as forward(), per column of the batch.
    const std::size_t grain = std::max<std::size_t>(
        1, std::size_t(16384) / (inDim_ * batch));
    parallelFor(ctx.pool, outDim_,
                [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
            const Fp4 *row = weights_.data() + r * inDim_;
            std::size_t b = 0;
            // Four-column unroll: each weight is dequantised once and
            // multiplied into four independent accumulator chains.
            // Column b's multiply/add sequence is unchanged from
            // forward(), so the doubles come out bit-identical.
            for (; b + 4 <= batch; b += 4) {
                const double *x0 = xs[b + 0].data();
                const double *x1 = xs[b + 1].data();
                const double *x2 = xs[b + 2].data();
                const double *x3 = xs[b + 3].data();
                double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
                for (std::size_t c = 0; c < inDim_; ++c) {
                    const double w = values[row[c].code()];
                    a0 += w * x0[c];
                    a1 += w * x1[c];
                    a2 += w * x2[c];
                    a3 += w * x3[c];
                }
                ys[b + 0][r] = a0;
                ys[b + 1][r] = a1;
                ys[b + 2][r] = a2;
                ys[b + 3][r] = a3;
            }
            for (; b < batch; ++b) {
                double acc = 0.0;
                const double *x = xs[b].data();
                for (std::size_t c = 0; c < inDim_; ++c)
                    acc += values[row[c].code()] * x[c];
                ys[b][r] = acc;
            }
        }
    }, grain);
    for (std::uint32_t r : deadRows_) {
        for (std::size_t b = 0; b < batch; ++b)
            ys[b][r] = 0.0;
    }
    return ys;
}

double
Linear::weightValue(std::size_t row, std::size_t col) const
{
    hnlpu_assert(row < outDim_ && col < inDim_, "weight index range");
    return weights_[row * inDim_ + col].value();
}

Linear
Linear::slice(std::size_t row0, std::size_t rows, std::size_t col0,
              std::size_t cols) const
{
    hnlpu_assert(row0 + rows <= outDim_ && col0 + cols <= inDim_,
                 "slice out of range");
    std::vector<Fp4> shard;
    shard.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        const Fp4 *row = weights_.data() + (row0 + r) * inDim_ + col0;
        shard.insert(shard.end(), row, row + cols);
    }
    // Dead rows inside the slice window carry over (local indices), so
    // per-chip shards of a faulty projection stay faulty.
    std::vector<std::uint32_t> dead;
    for (std::uint32_t r : deadRows_) {
        if (r >= row0 && r < row0 + rows)
            dead.push_back(std::uint32_t(r - row0));
    }
    return Linear(std::move(shard), rows, cols, std::move(dead));
}

} // namespace hnlpu
