/**
 * @file
 * The functional inference engine: token ids in, token ids out.
 *
 * This is the behavioural specification of the HNLPU: embedding lookup,
 * N transformer blocks (RMSNorm -> GQA attention -> residual -> RMSNorm
 * -> MoE SwiGLU FFN -> residual), final norm, unembedding, sampling
 * (paper Fig. 10).  Every weight-bearing projection can run on the
 * reference float path or the bit-serial Hardwired-Neuron path; the
 * integration tests pin both paths to each other.
 */

#ifndef HNLPU_XFORMER_ENGINE_HH
#define HNLPU_XFORMER_ENGINE_HH

#include <memory>
#include <vector>

#include "common/thread_pool.hh"
#include "model/transformer_config.hh"
#include "xformer/kv_cache.hh"
#include "xformer/lora.hh"
#include "xformer/sampler.hh"
#include "xformer/weights.hh"

namespace hnlpu {

/**
 * Host-side execution options.
 *
 * threads > 1 makes the engine own a ThreadPool and run its hot paths
 * data-parallel: row-partitioned GEMV in every Linear (both paths),
 * per-expert MoE evaluation and per-head attention.  All partitioning
 * is disjoint-output, so results are bit-exactly independent of the
 * thread count (tests/test_parallel.cc pins this).
 */
struct ExecOptions
{
    std::size_t threads = 1; //!< total parallelism incl. calling thread
    /**
     * Hardwired-path GEMV kernel.  Packed (default) compiles region
     * masks and shares one bit-plane serialisation per GEMV; Scalar is
     * the original per-row emulation.  Bit-identical outputs and
     * activity counters either way (tests/test_hn_kernel.cc).
     */
    HnKernel kernel = HnKernel::Packed;
};

/** Aggregate statistics of a generation run. */
struct EngineStats
{
    std::size_t tokensProcessed = 0;   //!< prefill + decoded tokens
    HnActivity hnActivity;             //!< hardwired path only
    std::vector<std::size_t> expertHistogram; //!< routing counts
};

/** Functional decoder-only LLM executor. */
class Engine
{
  public:
    /** The engine borrows the weights; they must outlive it. */
    Engine(const TransformerConfig &cfg, const ModelWeights &weights,
           ExecPath path, unsigned activation_bits = 8,
           const ExecOptions &exec = {});

    /**
     * Run one token through the model.
     * @param token_id input token
     * @param cache per-sequence KV cache, appended in place
     * @return unembedding logits (vocab-sized)
     */
    Vec forwardToken(std::size_t token_id, KvCache &cache);

    /**
     * Prefill @p prompt then autoregressively decode @p decode_steps
     * tokens with @p sampler.
     * @return the generated token ids (decode only, prompt excluded)
     */
    std::vector<std::size_t> generate(
        const std::vector<std::size_t> &prompt, std::size_t decode_steps,
        Sampler &sampler);

    /** Fresh KV cache matching this model. */
    KvCache makeCache() const;

    /**
     * Attach LoRA side-channel adapters for the attention projections
     * (paper Section 8 (4)); pass nullptr to detach.  The set must
     * outlive the engine and match the model's layer count/shapes.
     */
    void attachLora(const LoraSet *lora);

    /**
     * Sequence scoring mode (paper Section 8 (3)): the total
     * log-probability of tokens[1..] under teacher forcing.
     */
    double scoreSequence(const std::vector<std::size_t> &tokens);

    /**
     * Text-embedding mode (paper Section 8 (3)): the final-norm hidden
     * state after consuming the sequence.
     */
    Vec embedSequence(const std::vector<std::size_t> &tokens);

    const EngineStats &stats() const { return stats_; }
    const TransformerConfig &config() const { return cfg_; }
    ExecPath path() const { return path_; }
    const ExecOptions &execOptions() const { return exec_; }

  private:
    /** GQA attention for one block at the cache's current position. */
    Vec attention(const BlockWeights &block, const Vec &x_norm,
                  std::size_t layer, KvCache &cache);

    /** Shared body: run one token, return the final-norm hidden. */
    Vec forwardHidden(std::size_t token_id, KvCache &cache);

    TransformerConfig cfg_;
    const ModelWeights &weights_;
    ExecPath path_;
    unsigned activationBits_;
    ExecOptions exec_;
    /** Null when exec_.threads <= 1 (pure serial execution). */
    std::unique_ptr<ThreadPool> pool_;
    /**
     * Recycles Packed-kernel bit-plane scratches across every GEMV this
     * engine issues (including concurrent MoE expert workers, which
     * each lease their own), so steady-state decode allocates no plane
     * buffers.
     */
    HnScratchArena scratchArena_;
    const LoraSet *lora_ = nullptr;
    EngineStats stats_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_ENGINE_HH
