/**
 * @file
 * The functional inference engine: token ids in, token ids out.
 *
 * This is the behavioural specification of the HNLPU: embedding lookup,
 * N transformer blocks (RMSNorm -> GQA attention -> residual -> RMSNorm
 * -> MoE SwiGLU FFN -> residual), final norm, unembedding, sampling
 * (paper Fig. 10).  Every weight-bearing projection can run on the
 * reference float path or the bit-serial Hardwired-Neuron path; the
 * integration tests pin both paths to each other.
 */

#ifndef HNLPU_XFORMER_ENGINE_HH
#define HNLPU_XFORMER_ENGINE_HH

#include <memory>
#include <vector>

#include "common/thread_pool.hh"
#include "model/transformer_config.hh"
#include "obs/trace.hh"
#include "xformer/kv_cache.hh"
#include "xformer/lora.hh"
#include "xformer/sampler.hh"
#include "xformer/weights.hh"

namespace hnlpu {

/**
 * Host-side execution options.
 *
 * threads > 1 makes the engine own a ThreadPool and run its hot paths
 * data-parallel: row-partitioned GEMV in every Linear (both paths),
 * per-expert MoE evaluation and per-head attention.  All partitioning
 * is disjoint-output, so results are bit-exactly independent of the
 * thread count (tests/test_parallel.cc pins this).
 */
struct ExecOptions
{
    std::size_t threads = 1; //!< total parallelism incl. calling thread
    /**
     * Hardwired-path GEMV kernel.  Packed (default) compiles region
     * masks and shares one bit-plane serialisation per GEMV; Simd runs
     * that traversal with the vectorised inner loop (hn/hn_simd.hh);
     * Scalar is the original per-row emulation.  Bit-identical outputs
     * and activity counters in all cases (tests/test_hn_kernel.cc).
     */
    HnKernel kernel = HnKernel::Packed;
    /**
     * Pin the pool's threads round-robin across the online CPUs (Linux
     * only; no-op elsewhere and with threads <= 1).  Benchmarks enable
     * this so scaling numbers measure the kernels rather than the
     * scheduler's migration choices; servers sharing the machine
     * should leave it off.
     */
    bool pinThreads = false;
    /**
     * Default decode-slot count for the continuous-batching serving
     * layer (ServingEngine reads this when constructed without an
     * explicit slot count).  1 == sequential serving.  Does not affect
     * single-sequence Engine entry points.
     */
    std::size_t batchSlots = 1;
    /**
     * Observability wiring (metrics registry and/or tracer); null
     * disables both.  The sink must outlive the engine.  Observability
     * never changes decoded tokens: spans/counters only read the
     * computation, and disabled mode costs one pointer test per site.
     */
    const obs::Sink *sink = nullptr;
};

/** Aggregate statistics of a generation run. */
struct EngineStats
{
    std::size_t tokensProcessed = 0;   //!< prefill + decoded tokens
    HnActivity hnActivity;             //!< hardwired path only
    std::vector<std::size_t> expertHistogram; //!< routing counts
};

/** Functional decoder-only LLM executor. */
class Engine
{
  public:
    /** The engine borrows the weights; they must outlive it. */
    Engine(const TransformerConfig &cfg, const ModelWeights &weights,
           ExecPath path, unsigned activation_bits = 8,
           const ExecOptions &exec = {});

    // Not copyable or movable: execContext() points into this engine.
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Run one token through the model.
     * @param token_id input token
     * @param cache per-sequence KV cache, appended in place
     * @return unembedding logits (vocab-sized)
     */
    Vec forwardToken(std::size_t token_id, KvCache &cache);

    /**
     * Run one token from each of several sequences through the model as
     * a single batched pass: every weight-bearing projection traverses
     * its weights once for the whole batch (Linear::forwardBatch), and
     * attention flattens (sequence, head) pairs across the pool.
     * Sequence s is bit-identical to forwardToken(tokens[s], *caches[s])
     * run alone, and stats accumulate the exact sum of the per-sequence
     * single-token runs (tests/test_serving.cc pins both).
     *
     * @param tokens one token id per sequence
     * @param caches one distinct cache per sequence (appended in place);
     *        sequences may sit at different positions
     * @param want_logits per-sequence flag; sequences with a zero flag
     *        skip the vocab-sized unembedding GEMM (their result slot is
     *        an empty Vec).  Empty means "all sequences want logits".
     *        The serving engine clears it for non-final prefill tokens.
     * @return per-sequence unembedding logits (empty Vec when skipped)
     */
    std::vector<Vec> forwardTokenBatch(
        const std::vector<std::size_t> &tokens,
        const std::vector<KvCache *> &caches,
        const std::vector<std::uint8_t> &want_logits = {});

    /**
     * Prefill @p prompt then autoregressively decode @p decode_steps
     * tokens with @p sampler.  The prompt must be non-empty (there is
     * no position to decode from otherwise -- fatal).  decode_steps ==
     * 0 returns an empty vector without executing the model at all (no
     * prefill, no stats, no sampler draw).
     * @return the generated token ids (decode only, prompt excluded)
     */
    std::vector<std::size_t> generate(
        const std::vector<std::size_t> &prompt, std::size_t decode_steps,
        Sampler &sampler);

    /**
     * Fresh KV cache matching this model.
     * @param max_tokens_hint expected sequence length, forwarded to
     *        KvCache so appends within the hint never reallocate
     */
    KvCache makeCache(std::size_t max_tokens_hint = 0) const;

    /**
     * Attach LoRA side-channel adapters for the attention projections
     * (paper Section 8 (4)); pass nullptr to detach.  The set must
     * outlive the engine and match the model's layer count/shapes.
     */
    void attachLora(const LoraSet *lora);

    /**
     * Sequence scoring mode (paper Section 8 (3)): the total
     * log-probability of tokens[1..] under teacher forcing.
     */
    double scoreSequence(const std::vector<std::size_t> &tokens);

    /**
     * Text-embedding mode (paper Section 8 (3)): the final-norm hidden
     * state after consuming the sequence.
     */
    Vec embedSequence(const std::vector<std::size_t> &tokens);

    const EngineStats &stats() const { return stats_; }
    const TransformerConfig &config() const { return cfg_; }
    ExecPath path() const { return path_; }
    const ExecOptions &execOptions() const { return exec_; }

    /**
     * The bundled execution context every weight-bearing call below
     * this engine reads (path / bits / kernel / activity / pool /
     * scratch arena / obs sink).  The serving layer shares it for its
     * own span and metric emission.
     */
    const ExecContext &execContext() const { return ctx_; }

  private:
    /** GQA attention for one block at the cache's current position. */
    Vec attention(const BlockWeights &block, const Vec &x_norm,
                  std::size_t layer, KvCache &cache);

    /** Shared body: run one token, return the final-norm hidden. */
    Vec forwardHidden(std::size_t token_id, KvCache &cache);

    /** Batched attention: one sequence per column, per-seq positions. */
    std::vector<Vec> attentionBatch(const BlockWeights &block,
                                    const std::vector<Vec> &x_norms,
                                    std::size_t layer,
                                    const std::vector<KvCache *> &caches);

    /** Batched body: one token per sequence, final-norm hiddens out. */
    std::vector<Vec> forwardHiddenBatch(
        const std::vector<std::size_t> &tokens,
        const std::vector<KvCache *> &caches);

    TransformerConfig cfg_;
    const ModelWeights &weights_;
    ExecPath path_;
    unsigned activationBits_;
    ExecOptions exec_;
    /** Null when exec_.threads <= 1 (pure serial execution). */
    std::unique_ptr<ThreadPool> pool_;
    /**
     * Recycles Packed-kernel bit-plane scratches across every GEMV this
     * engine issues (including concurrent MoE expert workers, which
     * each lease their own), so steady-state decode allocates no plane
     * buffers.
     */
    HnScratchArena scratchArena_;
    const LoraSet *lora_ = nullptr;
    EngineStats stats_;
    /**
     * Built once in the constructor; points at pool_, scratchArena_ and
     * stats_.hnActivity, so the engine must not be moved (copying is
     * already impossible: weights_ is a reference member).
     */
    ExecContext ctx_;
    /** Installed on pool_ when the sink carries a tracer. */
    std::unique_ptr<obs::PoolTaskTracer> poolTracer_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_ENGINE_HH
