#include "xformer/sampler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "xformer/ops.hh"

namespace hnlpu {

Sampler::Sampler(SamplerConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    hnlpu_assert(cfg_.temperature >= 0.0, "negative temperature");
}

std::size_t
Sampler::sample(const Vec &logits)
{
    hnlpu_assert(!logits.empty(), "sampling from empty logits");
    if (cfg_.temperature == 0.0) {
        return static_cast<std::size_t>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
    }

    Vec scaled(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        scaled[i] = logits[i] / cfg_.temperature;

    std::vector<std::size_t> candidates;
    if (cfg_.topK > 0 && cfg_.topK < logits.size()) {
        candidates = topK(scaled, cfg_.topK);
    } else {
        candidates.resize(logits.size());
        for (std::size_t i = 0; i < logits.size(); ++i)
            candidates[i] = i;
    }

    Vec candidate_logits(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
        candidate_logits[i] = scaled[candidates[i]];
    const Vec probs = softmax(candidate_logits);
    const std::size_t pick = rng_.weightedIndex(probs);
    return candidates[pick];
}

} // namespace hnlpu
