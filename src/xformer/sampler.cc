#include "xformer/sampler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "xformer/ops.hh"

namespace hnlpu {

Sampler::Sampler(SamplerConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    hnlpu_assert(cfg_.temperature >= 0.0, "negative temperature");
}

std::size_t
Sampler::sample(const Vec &logits)
{
    hnlpu_assert(!logits.empty(), "sampling from empty logits");
    // Reject NaN before any comparison-based scan: NaN compares false
    // against everything, so max_element/topK over NaN-bearing logits
    // would pick whatever the scan order happens to favour.
    for (std::size_t i = 0; i < logits.size(); ++i) {
        hnlpu_assert(!std::isnan(logits[i]), "NaN logit at index ", i);
    }
    if (cfg_.temperature == 0.0) {
        return static_cast<std::size_t>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
    }

    // Member scratch: resize() reuses capacity, so after the first
    // token the temperature path performs no vocab-sized allocations.
    scaled_.resize(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        scaled_[i] = logits[i] / cfg_.temperature;

    if (cfg_.topK > 0 && cfg_.topK < logits.size()) {
        candidates_ = topK(scaled_, cfg_.topK);
    } else {
        candidates_.resize(logits.size());
        for (std::size_t i = 0; i < logits.size(); ++i)
            candidates_[i] = i;
    }

    candidateLogits_.resize(candidates_.size());
    for (std::size_t i = 0; i < candidates_.size(); ++i)
        candidateLogits_[i] = scaled_[candidates_[i]];
    softmaxInto(candidateLogits_, probs_);
    const std::size_t pick = rng_.weightedIndex(probs_);
    return candidates_[pick];
}

} // namespace hnlpu
