/**
 * @file
 * Nonlinear operators executed by the VEX unit: RMSNorm, softmax, SwiGLU,
 * rotary position embedding.  These run in floating point on both the
 * reference and hardwired paths (the VEX unit is a conventional vector
 * engine; only weight-bearing projections go through the HN array).
 */

#ifndef HNLPU_XFORMER_OPS_HH
#define HNLPU_XFORMER_OPS_HH

#include "xformer/tensor.hh"

namespace hnlpu {

/** Root-mean-square normalisation with learned gain. */
Vec rmsNorm(const Vec &x, const Vec &gain, double eps = 1e-5);

/** Numerically stable softmax. */
Vec softmax(const Vec &logits);

/**
 * softmax(@p logits) written into @p out (resized to match).  Same
 * arithmetic as softmax(); lets hot paths reuse one scratch vector
 * instead of allocating per call (src/xformer/sampler.cc).
 */
void softmaxInto(const Vec &logits, Vec &out);

/**
 * Numerically stable log(sum_i exp(logits[i])) (max-shifted).  With it,
 * log softmax(logits)[t] == logits[t] - logSumExp(logits) without ever
 * materialising a probability that could underflow to 0.
 */
double logSumExp(const Vec &logits);

/** SiLU (swish) activation, x * sigmoid(x). */
double silu(double x);

/** SwiGLU combination: silu(gate) (*) up, elementwise. */
Vec swiGlu(const Vec &gate, const Vec &up);

/**
 * Apply rotary position embedding in place to a head vector of even
 * dimension for absolute position @p pos (theta base 10000).
 */
void applyRope(Vec &head, std::size_t pos, double theta = 10000.0);

/** Indices of the k largest entries, descending (ties by lower index). */
std::vector<std::size_t> topK(const Vec &values, std::size_t k);

} // namespace hnlpu

#endif // HNLPU_XFORMER_OPS_HH
