#include "xformer/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/json.hh"
#include "xformer/ops.hh"

namespace hnlpu {

namespace {

/** The tracer carried by @p ctx, or null when tracing is off. */
obs::Tracer *
tracerOf(const ExecContext &ctx)
{
    return ctx.sink ? ctx.sink->trace : nullptr;
}

/** {"<key>": <value>} span args; empty (free) when tracing is off. */
std::string
spanArg(const obs::Tracer *trace, const char *key, std::size_t value)
{
    if (!trace)
        return {};
    obs::JsonWriter w(0);
    w.beginObject().field(key, value).endObject();
    return w.str();
}

} // namespace

Engine::Engine(const TransformerConfig &cfg, const ModelWeights &weights,
               ExecPath path, unsigned activation_bits,
               const ExecOptions &exec)
    : cfg_(cfg), weights_(weights), path_(path),
      activationBits_(activation_bits), exec_(exec)
{
    cfg_.validate();
    hnlpu_assert(weights_.blocks.size() == cfg_.layerCount,
                 "weights/config layer mismatch");
    hnlpu_assert(exec_.threads >= 1, "ExecOptions::threads must be >= 1");
    if (exec_.threads > 1) {
        pool_ = std::make_unique<ThreadPool>(exec_.threads);
        if (exec_.pinThreads)
            pool_->pinThreads();
    }
    stats_.expertHistogram.assign(cfg_.expertCount, 0);

    ctx_.path = path_;
    ctx_.activationBits = activationBits_;
    ctx_.kernel = exec_.kernel;
    ctx_.activity =
        path_ == ExecPath::Hardwired ? &stats_.hnActivity : nullptr;
    ctx_.pool = pool_.get();
    ctx_.arena = &scratchArena_;
    ctx_.sink = exec_.sink;

    // With a tracer wired up, dispatched pool chunks become
    // "pool.chunk" spans on the worker threads' tracks.
    if (pool_ && exec_.sink && exec_.sink->trace) {
        poolTracer_ =
            std::make_unique<obs::PoolTaskTracer>(exec_.sink->trace);
        pool_->setObserver(poolTracer_.get());
    }
}

KvCache
Engine::makeCache(std::size_t max_tokens_hint) const
{
    return KvCache(cfg_.layerCount, cfg_.kvHeads, cfg_.headDim,
                   max_tokens_hint);
}

Vec
Engine::attention(const BlockWeights &block, const Vec &x_norm,
                  std::size_t layer, KvCache &cache)
{
    const std::size_t head_dim = cfg_.headDim;
    const std::size_t group = cfg_.gqaGroupSize();
    const std::size_t pos = cache.length();
    ThreadPool *pool = pool_.get();

    Vec q_flat = block.wq.forward(x_norm, ctx_);
    if (lora_) {
        const Vec dq = lora_->wq[layer].delta(x_norm);
        for (std::size_t i = 0; i < q_flat.size(); ++i)
            q_flat[i] += dq[i];
    }
    const Vec k_flat = block.wk.forward(x_norm, ctx_);
    const Vec v_flat = block.wv.forward(x_norm, ctx_);

    // Split into heads and apply RoPE to queries and keys.
    std::vector<Vec> q_heads(cfg_.queryHeads);
    for (std::size_t h = 0; h < cfg_.queryHeads; ++h) {
        q_heads[h] = Vec(q_flat.begin() + h * head_dim,
                         q_flat.begin() + (h + 1) * head_dim);
        applyRope(q_heads[h], pos);
    }
    std::vector<Vec> k_heads(cfg_.kvHeads), v_heads(cfg_.kvHeads);
    for (std::size_t h = 0; h < cfg_.kvHeads; ++h) {
        k_heads[h] = Vec(k_flat.begin() + h * head_dim,
                         k_flat.begin() + (h + 1) * head_dim);
        applyRope(k_heads[h], pos);
        v_heads[h] = Vec(v_flat.begin() + h * head_dim,
                         v_flat.begin() + (h + 1) * head_dim);
    }
    cache.append(layer, k_heads, v_heads);

    // Context length including the token just appended.  cache.length()
    // only advances after the last layer, so derive from storage:
    const std::size_t context = pos + 1;

    // Per-head parallelism: every head reads the (now frozen) cache and
    // writes its own disjoint attn_out slice, so the parallel result is
    // bit-exactly the serial one.
    const double inv_sqrt_d = 1.0 / std::sqrt(double(head_dim));
    Vec attn_out(cfg_.queryHeads * head_dim, 0.0);
    parallelFor(pool, cfg_.queryHeads,
                [&](std::size_t begin, std::size_t end) {
        for (std::size_t h = begin; h < end; ++h) {
            const std::size_t kv_head = h / group;
            Vec scores(context);
            for (std::size_t t = 0; t < context; ++t) {
                scores[t] =
                    dot(q_heads[h], cache.key(layer, kv_head, t)) *
                    inv_sqrt_d;
            }
            const Vec probs = softmax(scores);
            for (std::size_t t = 0; t < context; ++t) {
                const Vec &v = cache.value(layer, kv_head, t);
                for (std::size_t d = 0; d < head_dim; ++d)
                    attn_out[h * head_dim + d] += probs[t] * v[d];
            }
        }
    });
    Vec out = block.wo.forward(attn_out, ctx_);
    if (lora_) {
        const Vec d_o = lora_->wo[layer].delta(attn_out);
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] += d_o[i];
    }
    return out;
}

Vec
Engine::forwardHidden(std::size_t token_id, KvCache &cache)
{
    hnlpu_assert(token_id < cfg_.vocabSize, "token id out of range");

    Vec x = weights_.embedding.row(token_id);

    obs::Tracer *const trace = tracerOf(ctx_);
    for (std::size_t layer = 0; layer < cfg_.layerCount; ++layer) {
        const BlockWeights &block = weights_.blocks[layer];
        obs::ScopedSpan layer_span(trace, "engine", "engine.layer",
                                   spanArg(trace, "layer", layer));

        const Vec attn_in = rmsNorm(x, block.attnNormGain);
        Vec attn;
        {
            obs::ScopedSpan span(trace, "engine", "engine.attention");
            attn = attention(block, attn_in, layer, cache);
        }
        x = add(x, attn);

        const Vec ffn_in = rmsNorm(x, block.ffnNormGain);
        std::vector<std::size_t> selected;
        const Vec ffn = block.ffn.forward(ffn_in, ctx_, &selected);
        for (std::size_t e : selected)
            stats_.expertHistogram[e]++;
        x = add(x, ffn);
    }

    ++stats_.tokensProcessed;
    return rmsNorm(x, weights_.finalNormGain);
}

std::vector<Vec>
Engine::attentionBatch(const BlockWeights &block,
                       const std::vector<Vec> &x_norms, std::size_t layer,
                       const std::vector<KvCache *> &caches)
{
    const std::size_t batch = x_norms.size();
    const std::size_t head_dim = cfg_.headDim;
    const std::size_t group = cfg_.gqaGroupSize();
    ThreadPool *pool = pool_.get();

    std::vector<Vec> q_flat = block.wq.forwardBatch(x_norms, ctx_);
    if (lora_) {
        for (std::size_t s = 0; s < batch; ++s) {
            const Vec dq = lora_->wq[layer].delta(x_norms[s]);
            for (std::size_t i = 0; i < q_flat[s].size(); ++i)
                q_flat[s][i] += dq[i];
        }
    }
    const std::vector<Vec> k_flat = block.wk.forwardBatch(x_norms, ctx_);
    const std::vector<Vec> v_flat = block.wv.forwardBatch(x_norms, ctx_);

    // Per-sequence positions: each cache advances independently, so
    // RoPE and the causal context length are per column.
    std::vector<std::size_t> pos(batch);
    std::vector<std::vector<Vec>> q_heads(batch);
    for (std::size_t s = 0; s < batch; ++s) {
        pos[s] = caches[s]->length();
        q_heads[s].resize(cfg_.queryHeads);
        for (std::size_t h = 0; h < cfg_.queryHeads; ++h) {
            q_heads[s][h] = Vec(q_flat[s].begin() + h * head_dim,
                                q_flat[s].begin() + (h + 1) * head_dim);
            applyRope(q_heads[s][h], pos[s]);
        }
        std::vector<Vec> k_heads(cfg_.kvHeads), v_heads(cfg_.kvHeads);
        for (std::size_t h = 0; h < cfg_.kvHeads; ++h) {
            k_heads[h] = Vec(k_flat[s].begin() + h * head_dim,
                             k_flat[s].begin() + (h + 1) * head_dim);
            applyRope(k_heads[h], pos[s]);
            v_heads[h] = Vec(v_flat[s].begin() + h * head_dim,
                             v_flat[s].begin() + (h + 1) * head_dim);
        }
        caches[s]->append(layer, k_heads, v_heads);
    }

    // Flatten (sequence, head) across the pool: every pair reads its
    // own (now frozen) cache and writes its own disjoint attn_out
    // slice, so each sequence comes out bit-exactly as it would alone.
    const double inv_sqrt_d = 1.0 / std::sqrt(double(head_dim));
    std::vector<Vec> attn_out(batch, Vec(cfg_.queryHeads * head_dim,
                                         0.0));
    parallelFor(pool, batch * cfg_.queryHeads,
                [&](std::size_t begin, std::size_t end) {
        for (std::size_t idx = begin; idx < end; ++idx) {
            const std::size_t s = idx / cfg_.queryHeads;
            const std::size_t h = idx % cfg_.queryHeads;
            const std::size_t kv_head = h / group;
            const std::size_t context = pos[s] + 1;
            Vec scores(context);
            for (std::size_t t = 0; t < context; ++t) {
                scores[t] =
                    dot(q_heads[s][h], caches[s]->key(layer, kv_head, t)) *
                    inv_sqrt_d;
            }
            const Vec probs = softmax(scores);
            for (std::size_t t = 0; t < context; ++t) {
                const Vec &v = caches[s]->value(layer, kv_head, t);
                for (std::size_t d = 0; d < head_dim; ++d)
                    attn_out[s][h * head_dim + d] += probs[t] * v[d];
            }
        }
    });
    std::vector<Vec> out = block.wo.forwardBatch(attn_out, ctx_);
    if (lora_) {
        for (std::size_t s = 0; s < batch; ++s) {
            const Vec d_o = lora_->wo[layer].delta(attn_out[s]);
            for (std::size_t i = 0; i < out[s].size(); ++i)
                out[s][i] += d_o[i];
        }
    }
    return out;
}

std::vector<Vec>
Engine::forwardHiddenBatch(const std::vector<std::size_t> &tokens,
                           const std::vector<KvCache *> &caches)
{
    const std::size_t batch = tokens.size();
    hnlpu_assert(caches.size() == batch,
                 "forwardTokenBatch: ", batch, " tokens vs ",
                 caches.size(), " caches");
    for (std::size_t s = 0; s < batch; ++s) {
        hnlpu_assert(caches[s] != nullptr, "null cache for sequence ", s);
        hnlpu_assert(tokens[s] < cfg_.vocabSize,
                     "token id out of range for sequence ", s);
        // Distinct caches: two columns appending into one cache would
        // interleave positions.  Slot counts are small, so O(B^2) is
        // fine.
        for (std::size_t t = 0; t < s; ++t) {
            hnlpu_assert(caches[t] != caches[s],
                         "sequences ", t, " and ", s,
                         " share one KV cache");
        }
    }

    std::vector<Vec> x(batch);
    for (std::size_t s = 0; s < batch; ++s)
        x[s] = weights_.embedding.row(tokens[s]);

    obs::Tracer *const trace = tracerOf(ctx_);
    for (std::size_t layer = 0; layer < cfg_.layerCount; ++layer) {
        const BlockWeights &block = weights_.blocks[layer];
        obs::ScopedSpan layer_span(trace, "engine", "engine.layer",
                                   spanArg(trace, "layer", layer));

        std::vector<Vec> attn_in(batch);
        for (std::size_t s = 0; s < batch; ++s)
            attn_in[s] = rmsNorm(x[s], block.attnNormGain);
        std::vector<Vec> attn;
        {
            obs::ScopedSpan span(trace, "engine", "engine.attention");
            attn = attentionBatch(block, attn_in, layer, caches);
        }
        for (std::size_t s = 0; s < batch; ++s)
            x[s] = add(x[s], attn[s]);

        std::vector<Vec> ffn_in(batch);
        for (std::size_t s = 0; s < batch; ++s)
            ffn_in[s] = rmsNorm(x[s], block.ffnNormGain);
        std::vector<std::vector<std::size_t>> selected;
        const std::vector<Vec> ffn =
            block.ffn.forwardBatch(ffn_in, ctx_, &selected);
        for (std::size_t s = 0; s < batch; ++s) {
            for (std::size_t e : selected[s])
                stats_.expertHistogram[e]++;
            x[s] = add(x[s], ffn[s]);
        }
    }

    stats_.tokensProcessed += batch;
    for (std::size_t s = 0; s < batch; ++s)
        x[s] = rmsNorm(x[s], weights_.finalNormGain);
    return x;
}

std::vector<Vec>
Engine::forwardTokenBatch(const std::vector<std::size_t> &tokens,
                          const std::vector<KvCache *> &caches,
                          const std::vector<std::uint8_t> &want_logits)
{
    const std::size_t batch = tokens.size();
    hnlpu_assert(want_logits.empty() || want_logits.size() == batch,
                 "want_logits size mismatch");
    if (batch == 0)
        return {};
    std::vector<Vec> hidden = forwardHiddenBatch(tokens, caches);

    // Only the sequences that asked for logits pay for the vocab-sized
    // unembedding (prefill tokens before the last skip it, exactly as
    // generate() does sequentially).
    std::vector<std::size_t> want;
    for (std::size_t s = 0; s < batch; ++s) {
        if (want_logits.empty() || want_logits[s] != 0)
            want.push_back(s);
    }
    std::vector<Vec> out(batch);
    if (want.empty())
        return out;

    std::vector<Vec> want_hidden;
    want_hidden.reserve(want.size());
    for (std::size_t s : want)
        want_hidden.push_back(std::move(hidden[s]));
    obs::Tracer *const trace = tracerOf(ctx_);
    obs::ScopedSpan span(trace, "engine", "engine.unembed",
                         spanArg(trace, "batch", want.size()));
    std::vector<Vec> logits =
        weights_.unembedding.forwardBatch(want_hidden, ctx_);
    for (std::size_t i = 0; i < want.size(); ++i)
        out[want[i]] = std::move(logits[i]);
    return out;
}

Vec
Engine::forwardToken(std::size_t token_id, KvCache &cache)
{
    const Vec final_norm = forwardHidden(token_id, cache);
    obs::ScopedSpan span(tracerOf(ctx_), "engine", "engine.unembed");
    return weights_.unembedding.forward(final_norm, ctx_);
}

void
Engine::attachLora(const LoraSet *lora)
{
    if (lora) {
        hnlpu_assert(lora->wq.size() == cfg_.layerCount &&
                         lora->wo.size() == cfg_.layerCount,
                     "LoRA set layer count mismatch");
    }
    lora_ = lora;
}

double
Engine::scoreSequence(const std::vector<std::size_t> &tokens)
{
    hnlpu_assert(tokens.size() >= 2, "scoring needs >= 2 tokens");
    // Validate every id up front: the last token is only ever used as a
    // probs[] target index, so forwardToken's own range check would
    // never see it and an out-of-range id would read past the logits.
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        hnlpu_assert(tokens[i] < cfg_.vocabSize,
                     "scoreSequence token ", i, " id ", tokens[i],
                     " out of vocab range ", cfg_.vocabSize);
    }
    KvCache cache = makeCache(tokens.size());
    double total_logprob = 0.0;
    // Every forward here produces logits that ARE consumed (scoring the
    // next token), so unlike generate()'s prefill there is no unused
    // unembedding GEMV to elide.  Scoring uses log-softmax directly:
    // log p = logit - logsumexp(logits), which matches
    // log(softmax(logits)[t]) exactly in normal range but cannot
    // underflow to -inf (no 1e-300 clamp) however large the vocabulary
    // or extreme the logit gap.
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Vec logits = forwardToken(tokens[i], cache);
        total_logprob += logits[tokens[i + 1]] - logSumExp(logits);
    }
    return total_logprob;
}

Vec
Engine::embedSequence(const std::vector<std::size_t> &tokens)
{
    hnlpu_assert(!tokens.empty(), "embedding needs tokens");
    KvCache cache = makeCache(tokens.size());
    Vec hidden;
    for (std::size_t token : tokens)
        hidden = forwardHidden(token, cache);
    return hidden;
}

std::vector<std::size_t>
Engine::generate(const std::vector<std::size_t> &prompt,
                 std::size_t decode_steps, Sampler &sampler)
{
    hnlpu_assert(!prompt.empty(),
                 "generate needs a non-empty prompt: there is no "
                 "position to decode from otherwise");
    // Zero decode steps is a legal no-op: nothing would consume the
    // prefill, so skip the model entirely (stats stay untouched).
    if (decode_steps == 0)
        return {};
    KvCache cache = makeCache(prompt.size() + decode_steps);

    // Prefill: only the last prompt token's logits feed the sampler, so
    // every earlier token skips the vocab-sized unembedding GEMV (by
    // far the largest projection) and just populates the KV cache.
    for (std::size_t i = 0; i + 1 < prompt.size(); ++i)
        forwardHidden(prompt[i], cache);
    Vec logits = forwardToken(prompt.back(), cache);

    std::vector<std::size_t> generated;
    generated.reserve(decode_steps);
    for (std::size_t step = 0; step < decode_steps; ++step) {
        const std::size_t next = sampler.sample(logits);
        generated.push_back(next);
        if (step + 1 < decode_steps)
            logits = forwardToken(next, cache);
    }
    return generated;
}

} // namespace hnlpu
