/**
 * @file
 * LoRA side-channel adapters (paper Section 8, future work (4)).
 *
 * The HNLPU's weights are physically immutable; the paper proposes
 * adding ~1% of field-programmable HNs as a side channel that
 * accumulates a low-rank correction B(Ax) alongside each hardwired
 * projection, enabling post-deployment updates without a metal
 * re-spin.  This module provides those adapters: the frozen projection
 * runs on its usual (reference or hardwired) path while the rank-r
 * delta runs in the programmable side channel and is summed in.
 */

#ifndef HNLPU_XFORMER_LORA_HH
#define HNLPU_XFORMER_LORA_HH

#include <cstdint>
#include <vector>

#include "xformer/linear.hh"
#include "xformer/tensor.hh"

namespace hnlpu {

/** A rank-r adapter for one out x in projection. */
class LoraAdapter
{
  public:
    /** Zero-initialised adapter (delta is exactly zero, the standard
     *  LoRA starting point: B = 0). */
    LoraAdapter(std::size_t out_dim, std::size_t in_dim,
                std::size_t rank, double scale = 1.0);

    /** Random non-trivial adapter for tests/demos. */
    static LoraAdapter random(std::size_t out_dim, std::size_t in_dim,
                              std::size_t rank, std::uint64_t seed,
                              double scale = 1.0);

    /** The low-rank correction: scale * B (A x). */
    Vec delta(const Vec &x) const;

    /** y = frozen.forward(x, path) + delta(x). */
    Vec apply(const Linear &frozen, const Vec &x, ExecPath path,
              unsigned activation_bits = 8) const;

    std::size_t rank() const { return a_.rows(); }
    std::size_t outDim() const { return b_.rows(); }
    std::size_t inDim() const { return a_.cols(); }

    /** Side-channel parameter count (the ~1% budget check). */
    std::size_t paramCount() const;

    /** Mutable access for "field programming" the adapter. */
    Mat &aMatrix() { return a_; }
    Mat &bMatrix() { return b_; }

  private:
    Mat a_; //!< rank x in
    Mat b_; //!< out x rank
    double scale_;
};

/** Adapters for the attention projections of every layer. */
struct LoraSet
{
    std::vector<LoraAdapter> wq; //!< one per layer
    std::vector<LoraAdapter> wo; //!< one per layer

    /** Zero-initialised set for @p layers with given shapes. */
    static LoraSet zeros(std::size_t layers, std::size_t hidden,
                         std::size_t q_proj, std::size_t rank);

    /** Fraction of the frozen attention parameters the side channel
     *  adds (the paper budgets ~1%). */
    double overheadFraction(std::size_t hidden,
                            std::size_t q_proj) const;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_LORA_HH
