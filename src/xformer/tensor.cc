#include "xformer/tensor.hh"

#include "common/logging.hh"

namespace hnlpu {

Mat::Mat(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

double &
Mat::at(std::size_t r, std::size_t c)
{
    hnlpu_assert(r < rows_ && c < cols_, "Mat index out of range");
    return data_[r * cols_ + c];
}

double
Mat::at(std::size_t r, std::size_t c) const
{
    hnlpu_assert(r < rows_ && c < cols_, "Mat index out of range");
    return data_[r * cols_ + c];
}

Vec
Mat::row(std::size_t r) const
{
    hnlpu_assert(r < rows_, "Mat row out of range");
    return Vec(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_);
}

Vec
matVec(const Mat &m, const Vec &x)
{
    hnlpu_assert(x.size() == m.cols(), "matVec shape mismatch: ",
                 x.size(), " vs ", m.cols());
    Vec y(m.rows(), 0.0);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        double acc = 0.0;
        const double *row = m.data().data() + r * m.cols();
        for (std::size_t c = 0; c < m.cols(); ++c)
            acc += row[c] * x[c];
        y[r] = acc;
    }
    return y;
}

Vec
matTVec(const Mat &m, const Vec &x)
{
    hnlpu_assert(x.size() == m.rows(), "matTVec shape mismatch");
    Vec y(m.cols(), 0.0);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double xv = x[r];
        const double *row = m.data().data() + r * m.cols();
        for (std::size_t c = 0; c < m.cols(); ++c)
            y[c] += row[c] * xv;
    }
    return y;
}

Vec
add(const Vec &a, const Vec &b)
{
    hnlpu_assert(a.size() == b.size(), "add shape mismatch");
    Vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Vec
hadamard(const Vec &a, const Vec &b)
{
    hnlpu_assert(a.size() == b.size(), "hadamard shape mismatch");
    Vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

double
dot(const Vec &a, const Vec &b)
{
    hnlpu_assert(a.size() == b.size(), "dot shape mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

void
scale(Vec &v, double s)
{
    for (double &x : v)
        x *= s;
}

} // namespace hnlpu
