/**
 * @file
 * Container for a full model's (FP4) weights.
 *
 * Real gpt-oss checkpoints are not available offline and would not fit a
 * laptop-scale functional run anyway; randomInit() synthesises weights
 * with the right shapes and a trained-LLM-like value histogram (see
 * DESIGN.md).  All weight-bearing projections are Linear (FP4 + optional
 * HN array); the embedding table is a plain dequantised matrix because
 * embedding lookup is an HBM fetch, not an HN operation (paper Fig. 10
 * (I)).
 */

#ifndef HNLPU_XFORMER_WEIGHTS_HH
#define HNLPU_XFORMER_WEIGHTS_HH

#include <vector>

#include "model/transformer_config.hh"
#include "xformer/linear.hh"
#include "xformer/moe.hh"
#include "xformer/tensor.hh"

namespace hnlpu {

/** Weights of one transformer block. */
struct BlockWeights
{
    Vec attnNormGain;
    Linear wq;
    Linear wk;
    Linear wv;
    Linear wo;
    Vec ffnNormGain;
    MoeLayer ffn;
};

/** Weights of the whole model. */
struct ModelWeights
{
    Mat embedding;            //!< vocab x hidden (HBM resident)
    std::vector<BlockWeights> blocks;
    Vec finalNormGain;
    Linear unembedding;       //!< vocab x hidden (hardwired Wue)

    /**
     * Synthesize a full set of weights for @p cfg.  Deterministic in
     * @p seed.  Intended for tiny configs; fatal above a size guard to
     * protect against accidentally instantiating a 120 B model.
     */
    static ModelWeights randomInit(const TransformerConfig &cfg,
                                   std::uint64_t seed);
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_WEIGHTS_HH
