#include "xformer/lora.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace hnlpu {

LoraAdapter::LoraAdapter(std::size_t out_dim, std::size_t in_dim,
                         std::size_t rank, double scale)
    : a_(rank, in_dim, 0.0), b_(out_dim, rank, 0.0), scale_(scale)
{
    hnlpu_assert(rank >= 1, "LoRA rank must be positive");
}

LoraAdapter
LoraAdapter::random(std::size_t out_dim, std::size_t in_dim,
                    std::size_t rank, std::uint64_t seed, double scale)
{
    LoraAdapter adapter(out_dim, in_dim, rank, scale);
    Rng rng(seed);
    const double a_std = 1.0 / std::sqrt(double(in_dim));
    for (double &v : adapter.a_.data())
        v = rng.gaussian(0.0, a_std);
    const double b_std = 1.0 / std::sqrt(double(rank));
    for (double &v : adapter.b_.data())
        v = rng.gaussian(0.0, b_std);
    return adapter;
}

Vec
LoraAdapter::delta(const Vec &x) const
{
    const Vec low = matVec(a_, x);
    Vec out = matVec(b_, low);
    scale(out, scale_);
    return out;
}

Vec
LoraAdapter::apply(const Linear &frozen, const Vec &x, ExecPath path,
                   unsigned activation_bits) const
{
    hnlpu_assert(frozen.outDim() == outDim() &&
                     frozen.inDim() == inDim(),
                 "adapter shape mismatch");
    ExecContext ctx;
    ctx.path = path;
    ctx.activationBits = activation_bits;
    Vec y = frozen.forward(x, ctx);
    const Vec d = delta(x);
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] += d[i];
    return y;
}

std::size_t
LoraAdapter::paramCount() const
{
    return a_.rows() * a_.cols() + b_.rows() * b_.cols();
}

LoraSet
LoraSet::zeros(std::size_t layers, std::size_t hidden,
               std::size_t q_proj, std::size_t rank)
{
    LoraSet set;
    set.wq.reserve(layers);
    set.wo.reserve(layers);
    for (std::size_t l = 0; l < layers; ++l) {
        set.wq.emplace_back(q_proj, hidden, rank);
        set.wo.emplace_back(hidden, q_proj, rank);
    }
    return set;
}

double
LoraSet::overheadFraction(std::size_t hidden, std::size_t q_proj) const
{
    if (wq.empty())
        return 0.0;
    const double frozen =
        2.0 * double(hidden) * double(q_proj) * double(wq.size());
    double side = 0.0;
    for (const auto &adapter : wq)
        side += double(adapter.paramCount());
    for (const auto &adapter : wo)
        side += double(adapter.paramCount());
    return side / frozen;
}

} // namespace hnlpu
