#include "xformer/kv_cache.hh"

#include "common/logging.hh"

namespace hnlpu {

KvCache::KvCache(std::size_t layers, std::size_t kv_heads,
                 std::size_t head_dim, std::size_t max_tokens_hint)
    : kvHeads_(kv_heads), headDim_(head_dim),
      keys_(layers, std::vector<std::vector<Vec>>(kv_heads)),
      values_(layers, std::vector<std::vector<Vec>>(kv_heads))
{
    hnlpu_assert(layers > 0 && kv_heads > 0 && head_dim > 0,
                 "bad KV cache shape");
    if (max_tokens_hint > 0)
        reserveTokens(max_tokens_hint);
}

void
KvCache::reserveTokens(std::size_t max_tokens)
{
    // vector::reserve never shrinks, so this cannot invalidate
    // references that an earlier, larger reservation made stable.
    for (std::size_t l = 0; l < keys_.size(); ++l) {
        for (std::size_t h = 0; h < kvHeads_; ++h) {
            keys_[l][h].reserve(max_tokens);
            values_[l][h].reserve(max_tokens);
        }
    }
}

void
KvCache::append(std::size_t layer, const std::vector<Vec> &keys,
                const std::vector<Vec> &values)
{
    hnlpu_assert(layer < keys_.size(), "layer out of range");
    hnlpu_assert(keys.size() == kvHeads_ && values.size() == kvHeads_,
                 "append expects one K/V per head");
    // Layers must append in order 0..L-1 for each token: the length_
    // heuristic below (count on the last layer) silently miscounts
    // otherwise.  Appending the same layer twice for one token, or a
    // later layer before an earlier one, trips these invariants.
    hnlpu_assert(keys_[layer].front().size() == length_,
                 "KV append out of order: layer ", layer, " holds ",
                 keys_[layer].front().size(), " tokens, cache length is ",
                 length_);
    hnlpu_assert(layer == 0 ||
                     keys_[layer - 1].front().size() == length_ + 1,
                 "KV append skipped layer ", layer - 1,
                 " for token ", length_);
    for (std::size_t h = 0; h < kvHeads_; ++h) {
        hnlpu_assert(keys[h].size() == headDim_ &&
                         values[h].size() == headDim_,
                     "K/V head dim mismatch");
        keys_[layer][h].push_back(keys[h]);
        values_[layer][h].push_back(values[h]);
    }
    // Track length once all layers of this token have been appended:
    // layer 0 is always appended first in a forward pass.
    if (layer == keys_.size() - 1)
        ++length_;
}

const Vec &
KvCache::key(std::size_t layer, std::size_t head, std::size_t pos) const
{
    hnlpu_assert(layer < keys_.size(), "layer out of range");
    hnlpu_assert(head < kvHeads_, "head out of range");
    hnlpu_assert(pos < keys_[layer][head].size(), "pos out of range");
    return keys_[layer][head][pos];
}

const Vec &
KvCache::value(std::size_t layer, std::size_t head,
               std::size_t pos) const
{
    hnlpu_assert(layer < values_.size(), "layer out of range");
    hnlpu_assert(head < kvHeads_, "head out of range");
    hnlpu_assert(pos < values_[layer][head].size(), "pos out of range");
    return values_[layer][head][pos];
}

} // namespace hnlpu
