/**
 * @file
 * Weight-bearing projection with two interchangeable execution paths.
 *
 * Every projection in the model stores its weights as FP4 codes (the
 * hardwired representation).  It can execute either:
 *
 *  - Reference: dense float GEMV over the dequantised FP4 values, or
 *  - Hardwired: the bit-serial Metal-Embedding HN array.
 *
 * Both paths share the identical FP4 weights, so the only divergence is
 * the hardwired path's activation quantisation -- this is what the
 * end-to-end equivalence tests pin down.
 */

#ifndef HNLPU_XFORMER_LINEAR_HH
#define HNLPU_XFORMER_LINEAR_HH

#include <memory>
#include <mutex>
#include <vector>

#include "arith/fp4.hh"
#include "hn/hn_array.hh"
#include "xformer/tensor.hh"

namespace hnlpu {

class ThreadPool;

/** Which GEMV implementation a Linear uses. */
enum class ExecPath { Reference, Hardwired };

/** An out x in projection with FP4 weights. */
class Linear
{
  public:
    /**
     * Construct from FP4 codes (row-major, out x in).
     *
     * @param dead_rows output rows whose Hardwired-Neuron is defective
     *        and unrepaired (src/fault); they read as exactly 0.0 on
     *        BOTH execution paths, mirroring a broken neuron whose
     *        output net floats to ground.  Sorted, unique, in range.
     */
    Linear(std::vector<Fp4> weights, std::size_t out_dim,
           std::size_t in_dim,
           std::vector<std::uint32_t> dead_rows = {});

    /** Quantise a real matrix (row-major) to FP4 and construct. */
    static Linear fromReal(const Mat &weights);

    /** Random synthetic projection with Xavier-ish scaling. */
    static Linear random(std::size_t out_dim, std::size_t in_dim,
                         std::uint64_t seed);

    /**
     * y = W x on the chosen path.
     * @param activation_bits bit width of the hardwired serial stream
     * @param activity optional HN activity accumulation (hardwired only)
     * @param pool optional thread pool; output rows are partitioned
     *        into disjoint contiguous chunks, so the parallel result is
     *        bit-exactly the serial one
     * @param kernel hardwired-path GEMV kernel; Packed (default) and
     *        Scalar are bit-identical in outputs and activity counters
     * @param arena optional scratch recycler for the Packed kernel's
     *        bit-plane buffer (hardwired only)
     */
    Vec forward(const Vec &x, ExecPath path,
                unsigned activation_bits = 8,
                HnActivity *activity = nullptr,
                ThreadPool *pool = nullptr,
                HnKernel kernel = HnKernel::Packed,
                HnScratchArena *arena = nullptr) const;

    /**
     * Batched y_b = W x_b: one weight-side traversal serves every
     * input column (HnArray::gemmSerial on the hardwired path; on the
     * reference path each weight row is loaded once and multiplied
     * into per-column accumulators).  Column b is bit-identical to
     * forward(xs[b], ...) on both paths -- the batched engine and the
     * serving layer rely on this to keep batched decode bit-exact with
     * sequential decode (tests/test_serving.cc).  @p activity
     * accumulates the exact sum of per-column counters.
     */
    std::vector<Vec> forwardBatch(const std::vector<Vec> &xs,
                                  ExecPath path,
                                  unsigned activation_bits = 8,
                                  HnActivity *activity = nullptr,
                                  ThreadPool *pool = nullptr,
                                  HnKernel kernel = HnKernel::Packed,
                                  HnScratchArena *arena = nullptr) const;

    std::size_t outDim() const { return outDim_; }
    std::size_t inDim() const { return inDim_; }

    /** The dequantised weight value at (row, col). */
    double weightValue(std::size_t row, std::size_t col) const;

    /** Total FP4 parameters. */
    std::size_t paramCount() const { return weights_.size(); }

    /** Raw FP4 codes (row-major). */
    const std::vector<Fp4> &codes() const { return weights_; }

    /** Dead (defective, unrepaired) output rows; sorted. */
    const std::vector<std::uint32_t> &deadRows() const
    {
        return deadRows_;
    }

    /**
     * Extract the sub-projection [row0, row0+rows) x [col0, col0+cols)
     * as its own Linear (used by the distributed dataflow to build
     * per-chip weight shards; paper Appendix A).
     */
    Linear slice(std::size_t row0, std::size_t rows, std::size_t col0,
                 std::size_t cols) const;

  private:
    const HnArray &hardwired() const;

    /**
     * Lazily programmed HN array plus the once-flag guarding its
     * construction.  Held behind one shared_ptr so copies of a Linear
     * share both the flag and the array (the flag alone would not
     * survive copying: std::once_flag is neither copyable nor movable),
     * and so concurrent first use from several threads programs the
     * array exactly once (std::call_once publishes the build).
     */
    struct HardwiredState
    {
        std::once_flag once;
        std::unique_ptr<HnArray> array;
    };

    std::vector<Fp4> weights_;
    std::size_t outDim_;
    std::size_t inDim_;
    std::vector<std::uint32_t> deadRows_;
    std::shared_ptr<HardwiredState> hardwiredState_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_LINEAR_HH
