/**
 * @file
 * Weight-bearing projection with two interchangeable execution paths.
 *
 * Every projection in the model stores its weights as FP4 codes (the
 * hardwired representation).  It can execute either:
 *
 *  - Reference: dense float GEMV over the dequantised FP4 values, or
 *  - Hardwired: the bit-serial Metal-Embedding HN array.
 *
 * Both paths share the identical FP4 weights, so the only divergence is
 * the hardwired path's activation quantisation -- this is what the
 * end-to-end equivalence tests pin down.
 */

#ifndef HNLPU_XFORMER_LINEAR_HH
#define HNLPU_XFORMER_LINEAR_HH

#include <memory>
#include <mutex>
#include <vector>

#include "arith/fp4.hh"
#include "hn/hn_array.hh"
#include "xformer/tensor.hh"

namespace hnlpu {

namespace obs {
struct Sink;
}

class ThreadPool;

/** Which GEMV implementation a Linear uses. */
enum class ExecPath { Reference, Hardwired };

/**
 * Bundled execution knobs, threaded by const-ref through every
 * weight-bearing call (Linear / MoeLayer / Engine / DistributedEngine).
 * This replaces the old seven-parameter call lists: a caller builds one
 * ExecContext up front and every layer below reads the same struct, so
 * adding a knob (as `sink` was) no longer touches every signature in
 * the stack.
 *
 * All pointers are optional; null means "feature off".  `sink` carries
 * the observability wiring (obs::Sink: metrics registry + tracer) --
 * disabled mode is a null sink and costs one pointer test per span
 * site, which is what keeps tokens bit-identical and overhead in the
 * noise with observability off.
 */
struct ExecContext
{
    ExecPath path = ExecPath::Reference;
    unsigned activationBits = 8;
    HnKernel kernel = HnKernel::Packed;
    HnActivity *activity = nullptr;
    ThreadPool *pool = nullptr;
    HnScratchArena *arena = nullptr;
    const obs::Sink *sink = nullptr;
};

/** An out x in projection with FP4 weights. */
class Linear
{
  public:
    /**
     * Construct from FP4 codes (row-major, out x in).
     *
     * @param dead_rows output rows whose Hardwired-Neuron is defective
     *        and unrepaired (src/fault); they read as exactly 0.0 on
     *        BOTH execution paths, mirroring a broken neuron whose
     *        output net floats to ground.  Sorted, unique, in range.
     */
    Linear(std::vector<Fp4> weights, std::size_t out_dim,
           std::size_t in_dim,
           std::vector<std::uint32_t> dead_rows = {});

    /** Quantise a real matrix (row-major) to FP4 and construct. */
    static Linear fromReal(const Mat &weights);

    /** Random synthetic projection with Xavier-ish scaling. */
    static Linear random(std::size_t out_dim, std::size_t in_dim,
                         std::uint64_t seed);

    /**
     * y = W x on the path selected by @p ctx.  With ctx.pool set,
     * output rows are partitioned into disjoint contiguous chunks, so
     * the parallel result is bit-exactly the serial one; ctx.kernel
     * Packed (default) and Scalar are likewise bit-identical in both
     * outputs and activity counters.
     */
    Vec forward(const Vec &x, const ExecContext &ctx) const;

    /**
     * Batched y_b = W x_b: one weight-side traversal serves every
     * input column (HnArray::gemmSerial on the hardwired path; on the
     * reference path each weight row is loaded once and multiplied
     * into per-column accumulators).  Column b is bit-identical to
     * forward(xs[b], ctx) on both paths -- the batched engine and the
     * serving layer rely on this to keep batched decode bit-exact with
     * sequential decode (tests/test_serving.cc).  ctx.activity
     * accumulates the exact sum of per-column counters.
     */
    std::vector<Vec> forwardBatch(const std::vector<Vec> &xs,
                                  const ExecContext &ctx) const;

    /**
     * @deprecated Spread-parameter forms kept for source compatibility;
     * they bundle their arguments into an ExecContext and forward.  New
     * code should build an ExecContext and use the overloads above.
     */
    Vec
    forward(const Vec &x, ExecPath path, unsigned activation_bits = 8,
            HnActivity *activity = nullptr, ThreadPool *pool = nullptr,
            HnKernel kernel = HnKernel::Packed,
            HnScratchArena *arena = nullptr) const
    {
        return forward(x, ExecContext{path, activation_bits, kernel,
                                      activity, pool, arena, nullptr});
    }

    /** @copydoc forward(const Vec&,ExecPath,unsigned,HnActivity*,ThreadPool*,HnKernel,HnScratchArena*) const */
    std::vector<Vec>
    forwardBatch(const std::vector<Vec> &xs, ExecPath path,
                 unsigned activation_bits = 8,
                 HnActivity *activity = nullptr,
                 ThreadPool *pool = nullptr,
                 HnKernel kernel = HnKernel::Packed,
                 HnScratchArena *arena = nullptr) const
    {
        return forwardBatch(xs,
                            ExecContext{path, activation_bits, kernel,
                                        activity, pool, arena, nullptr});
    }

    std::size_t outDim() const { return outDim_; }
    std::size_t inDim() const { return inDim_; }

    /** The dequantised weight value at (row, col). */
    double weightValue(std::size_t row, std::size_t col) const;

    /** Total FP4 parameters. */
    std::size_t paramCount() const { return weights_.size(); }

    /** Raw FP4 codes (row-major). */
    const std::vector<Fp4> &codes() const { return weights_; }

    /** Dead (defective, unrepaired) output rows; sorted. */
    const std::vector<std::uint32_t> &deadRows() const
    {
        return deadRows_;
    }

    /**
     * Extract the sub-projection [row0, row0+rows) x [col0, col0+cols)
     * as its own Linear (used by the distributed dataflow to build
     * per-chip weight shards; paper Appendix A).
     */
    Linear slice(std::size_t row0, std::size_t rows, std::size_t col0,
                 std::size_t cols) const;

  private:
    const HnArray &hardwired() const;

    /**
     * Lazily programmed HN array plus the once-flag guarding its
     * construction.  Held behind one shared_ptr so copies of a Linear
     * share both the flag and the array (the flag alone would not
     * survive copying: std::once_flag is neither copyable nor movable),
     * and so concurrent first use from several threads programs the
     * array exactly once (std::call_once publishes the build).
     */
    struct HardwiredState
    {
        std::once_flag once;
        std::unique_ptr<HnArray> array;
    };

    std::vector<Fp4> weights_;
    std::size_t outDim_;
    std::size_t inDim_;
    std::vector<std::uint32_t> deadRows_;
    std::shared_ptr<HardwiredState> hardwiredState_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_LINEAR_HH
