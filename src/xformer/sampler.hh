/**
 * @file
 * Token sampling strategies (the paper's "logit sampling" unit).
 */

#ifndef HNLPU_XFORMER_SAMPLER_HH
#define HNLPU_XFORMER_SAMPLER_HH

#include <cstdint>

#include "common/rng.hh"
#include "xformer/tensor.hh"

namespace hnlpu {

/** Sampling policy. */
struct SamplerConfig
{
    /** 0 temperature == greedy argmax. */
    double temperature = 0.0;
    /** Restrict multinomial sampling to the top-k logits (0 == all). */
    std::size_t topK = 0;
};

/** Draws token ids from logits. */
class Sampler
{
  public:
    Sampler(SamplerConfig cfg, std::uint64_t seed);

    /** Sample the next token id from raw logits. */
    std::size_t sample(const Vec &logits);

    const SamplerConfig &config() const { return cfg_; }

  private:
    SamplerConfig cfg_;
    Rng rng_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_SAMPLER_HH
