/**
 * @file
 * Token sampling strategies (the paper's "logit sampling" unit).
 */

#ifndef HNLPU_XFORMER_SAMPLER_HH
#define HNLPU_XFORMER_SAMPLER_HH

#include <cstdint>

#include "common/rng.hh"
#include "xformer/tensor.hh"

namespace hnlpu {

/** Sampling policy. */
struct SamplerConfig
{
    /** 0 temperature == greedy argmax. */
    double temperature = 0.0;
    /** Restrict multinomial sampling to the top-k logits (0 == all). */
    std::size_t topK = 0;
};

/**
 * Draws token ids from logits.
 *
 * A Sampler is per-sequence state (its RNG stream advances one draw per
 * sampled token), so the serving engine holds one per active request.
 * sample() rejects NaN logits up front: NaN compares false against
 * everything, so an argmax over NaN-bearing logits would depend on the
 * scan order and silently break the bit-exactness contract between
 * execution paths.
 */
class Sampler
{
  public:
    Sampler(SamplerConfig cfg, std::uint64_t seed);

    /** Sample the next token id from raw logits (fatal on NaN). */
    std::size_t sample(const Vec &logits);

    const SamplerConfig &config() const { return cfg_; }

  private:
    SamplerConfig cfg_;
    Rng rng_;
    /**
     * Scratch reused across sample() calls so the temperature path is
     * allocation-free after the first token (these are vocab-sized --
     * reallocating them per token dominated the sampling cost).
     */
    Vec scaled_;
    Vec candidateLogits_;
    Vec probs_;
    std::vector<std::size_t> candidates_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_SAMPLER_HH
