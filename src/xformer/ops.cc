#include "xformer/ops.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace hnlpu {

Vec
rmsNorm(const Vec &x, const Vec &gain, double eps)
{
    hnlpu_assert(x.size() == gain.size(), "rmsNorm shape mismatch");
    double mean_sq = 0.0;
    for (double v : x)
        mean_sq += v * v;
    mean_sq /= static_cast<double>(x.size());
    const double inv = 1.0 / std::sqrt(mean_sq + eps);
    Vec out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] * inv * gain[i];
    return out;
}

Vec
softmax(const Vec &logits)
{
    Vec out;
    softmaxInto(logits, out);
    return out;
}

void
softmaxInto(const Vec &logits, Vec &out)
{
    hnlpu_assert(!logits.empty(), "softmax of empty vector");
    const double max_logit = *std::max_element(logits.begin(),
                                               logits.end());
    out.resize(logits.size());
    double total = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        out[i] = std::exp(logits[i] - max_logit);
        total += out[i];
    }
    for (double &v : out)
        v /= total;
}

double
logSumExp(const Vec &logits)
{
    hnlpu_assert(!logits.empty(), "logSumExp of empty vector");
    const double max_logit = *std::max_element(logits.begin(),
                                               logits.end());
    double total = 0.0;
    for (double l : logits)
        total += std::exp(l - max_logit);
    return max_logit + std::log(total);
}

double
silu(double x)
{
    return x / (1.0 + std::exp(-x));
}

Vec
swiGlu(const Vec &gate, const Vec &up)
{
    hnlpu_assert(gate.size() == up.size(), "swiGlu shape mismatch");
    Vec out(gate.size());
    for (std::size_t i = 0; i < gate.size(); ++i)
        out[i] = silu(gate[i]) * up[i];
    return out;
}

void
applyRope(Vec &head, std::size_t pos, double theta)
{
    hnlpu_assert(head.size() % 2 == 0, "RoPE needs even head dim");
    const std::size_t half = head.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        const double freq = std::pow(
            theta, -2.0 * static_cast<double>(i) /
                       static_cast<double>(head.size()));
        const double angle = static_cast<double>(pos) * freq;
        const double c = std::cos(angle);
        const double s = std::sin(angle);
        const double a = head[2 * i];
        const double b = head[2 * i + 1];
        head[2 * i] = a * c - b * s;
        head[2 * i + 1] = a * s + b * c;
    }
}

std::vector<std::size_t>
topK(const Vec &values, std::size_t k)
{
    hnlpu_assert(k <= values.size(), "topK k exceeds size");
    std::vector<std::size_t> idx(values.size());
    std::iota(idx.begin(), idx.end(), 0);
    // Strict-weak order (value desc, index asc): ties break towards the
    // lower index, matching what a stable full sort would produce -- the
    // router and sampler both rely on this determinism.
    const auto better = [&](std::size_t a, std::size_t b) {
        if (values[a] != values[b])
            return values[a] > values[b];
        return a < b;
    };
    // O(V + k log k) instead of a full O(V log V) sort per token:
    // partition the top-k prefix, then order just that prefix.
    if (k < idx.size())
        std::nth_element(idx.begin(), idx.begin() + k, idx.end(),
                         better);
    std::sort(idx.begin(), idx.begin() + k, better);
    idx.resize(k);
    return idx;
}

} // namespace hnlpu
