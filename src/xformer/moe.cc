#include "xformer/moe.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "xformer/ops.hh"

namespace hnlpu {

MoeLayer::MoeLayer(Linear router, std::vector<Expert> experts,
                   std::size_t active_experts)
    : router_(std::move(router)), experts_(std::move(experts)),
      activeExperts_(active_experts), isDense_(false)
{
    hnlpu_assert(!experts_.empty(), "MoE needs at least one expert");
    hnlpu_assert(activeExperts_ >= 1 &&
                     activeExperts_ <= experts_.size(),
                 "bad top-k width");
    hnlpu_assert(router_.outDim() == experts_.size(),
                 "router out dim must equal expert count");
}

MoeLayer
MoeLayer::dense(Expert expert)
{
    // A one-output dummy router keeps the invariants; it is bypassed.
    Linear router(std::vector<Fp4>(expert.up.inDim(),
                                   Fp4::quantize(0.0)),
                  1, expert.up.inDim());
    std::vector<Expert> experts;
    experts.push_back(std::move(expert));
    MoeLayer layer(std::move(router), std::move(experts), 1);
    layer.isDense_ = true;
    return layer;
}

const Expert &
MoeLayer::expert(std::size_t index) const
{
    hnlpu_assert(index < experts_.size(), "expert index range");
    return experts_[index];
}

Vec
MoeLayer::forward(const Vec &x_norm, ExecPath path,
                  unsigned activation_bits,
                  std::vector<std::size_t> *selected,
                  ThreadPool *pool, HnKernel kernel,
                  HnScratchArena *arena) const
{
    std::vector<std::size_t> chosen;
    Vec gate_weights;
    if (isDense_ || experts_.size() == 1) {
        chosen = {0};
        gate_weights = {1.0};
    } else {
        // The router always runs in reference precision: it is tiny
        // (0.01% of weights) and replicated on every chip, and its
        // argmax ordering must be stable across paths for the
        // equivalence tests to be meaningful.
        const Vec logits = router_.forward(x_norm, ExecPath::Reference);
        chosen = topK(logits, activeExperts_);
        Vec selected_logits(chosen.size());
        for (std::size_t i = 0; i < chosen.size(); ++i)
            selected_logits[i] = logits[chosen[i]];
        gate_weights = softmax(selected_logits);
    }
    if (selected)
        *selected = chosen;

    // Each chosen expert evaluates independently into its own buffer
    // (possibly on different pool workers); the gate-weighted combine
    // below runs serially in routing order, so the floating-point
    // accumulation order -- and hence the result -- matches the serial
    // execution exactly.
    std::vector<Vec> expert_outs(chosen.size());
    parallelFor(pool, chosen.size(),
                [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const Expert &ex = experts_[chosen[i]];
            const Vec up = ex.up.forward(x_norm, path, activation_bits,
                                         nullptr, nullptr, kernel,
                                         arena);
            const Vec gate =
                ex.gate.forward(x_norm, path, activation_bits, nullptr,
                                nullptr, kernel, arena);
            const Vec activated = swiGlu(gate, up);
            expert_outs[i] =
                ex.down.forward(activated, path, activation_bits,
                                nullptr, nullptr, kernel, arena);
        }
    });

    Vec out(experts_[0].down.outDim(), 0.0);
    for (std::size_t i = 0; i < chosen.size(); ++i) {
        for (std::size_t d = 0; d < out.size(); ++d)
            out[d] += gate_weights[i] * expert_outs[i][d];
    }
    return out;
}

} // namespace hnlpu
