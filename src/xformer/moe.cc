#include "xformer/moe.hh"

#include <utility>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/trace.hh"
#include "xformer/ops.hh"

namespace hnlpu {

namespace {

/** The tracer carried by @p ctx, or null when tracing is off. */
obs::Tracer *
tracerOf(const ExecContext &ctx)
{
    return ctx.sink ? ctx.sink->trace : nullptr;
}

/**
 * Execution context for the expert projections: same path / bits /
 * kernel / arena as the layer call, but no pool (experts already run
 * under the layer's parallelFor; a nested one would be inline anyway)
 * and no activity/sink (matching the historical per-expert calls, and
 * keeping span emission off the worker threads).
 */
ExecContext
expertContext(const ExecContext &ctx)
{
    ExecContext sub;
    sub.path = ctx.path;
    sub.activationBits = ctx.activationBits;
    sub.kernel = ctx.kernel;
    sub.arena = ctx.arena;
    return sub;
}

} // namespace

MoeLayer::MoeLayer(Linear router, std::vector<Expert> experts,
                   std::size_t active_experts)
    : router_(std::move(router)), experts_(std::move(experts)),
      activeExperts_(active_experts), isDense_(false)
{
    hnlpu_assert(!experts_.empty(), "MoE needs at least one expert");
    hnlpu_assert(activeExperts_ >= 1 &&
                     activeExperts_ <= experts_.size(),
                 "bad top-k width");
    hnlpu_assert(router_.outDim() == experts_.size(),
                 "router out dim must equal expert count");
}

MoeLayer
MoeLayer::dense(Expert expert)
{
    // A one-output dummy router keeps the invariants; it is bypassed.
    Linear router(std::vector<Fp4>(expert.up.inDim(),
                                   Fp4::quantize(0.0)),
                  1, expert.up.inDim());
    std::vector<Expert> experts;
    experts.push_back(std::move(expert));
    MoeLayer layer(std::move(router), std::move(experts), 1);
    layer.isDense_ = true;
    return layer;
}

const Expert &
MoeLayer::expert(std::size_t index) const
{
    hnlpu_assert(index < experts_.size(), "expert index range");
    return experts_[index];
}

Vec
MoeLayer::forward(const Vec &x_norm, const ExecContext &ctx,
                  std::vector<std::size_t> *selected) const
{
    obs::Tracer *const trace = tracerOf(ctx);
    std::vector<std::size_t> chosen;
    Vec gate_weights;
    {
        obs::ScopedSpan span(trace, "moe", "moe.route");
        if (isDense_ || experts_.size() == 1) {
            chosen = {0};
            gate_weights = {1.0};
        } else {
            // The router always runs in reference precision: it is tiny
            // (0.01% of weights) and replicated on every chip, and its
            // argmax ordering must be stable across paths for the
            // equivalence tests to be meaningful.
            const Vec logits =
                router_.forward(x_norm, ExecPath::Reference);
            chosen = topK(logits, activeExperts_);
            Vec selected_logits(chosen.size());
            for (std::size_t i = 0; i < chosen.size(); ++i)
                selected_logits[i] = logits[chosen[i]];
            gate_weights = softmax(selected_logits);
        }
    }
    if (selected)
        *selected = chosen;

    // Each chosen expert evaluates independently into its own buffer
    // (possibly on different pool workers); the gate-weighted combine
    // below runs serially in routing order, so the floating-point
    // accumulation order -- and hence the result -- matches the serial
    // execution exactly.
    const ExecContext sub = expertContext(ctx);
    std::vector<Vec> expert_outs(chosen.size());
    {
        obs::ScopedSpan span(trace, "moe", "moe.experts");
        parallelFor(ctx.pool, chosen.size(),
                    [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const Expert &ex = experts_[chosen[i]];
                const Vec up = ex.up.forward(x_norm, sub);
                const Vec gate = ex.gate.forward(x_norm, sub);
                const Vec activated = swiGlu(gate, up);
                expert_outs[i] = ex.down.forward(activated, sub);
            }
        });
    }

    Vec out(experts_[0].down.outDim(), 0.0);
    for (std::size_t i = 0; i < chosen.size(); ++i) {
        for (std::size_t d = 0; d < out.size(); ++d)
            out[d] += gate_weights[i] * expert_outs[i][d];
    }
    return out;
}

std::vector<Vec>
MoeLayer::forwardBatch(
    const std::vector<Vec> &xs, const ExecContext &ctx,
    std::vector<std::vector<std::size_t>> *selected) const
{
    const std::size_t batch = xs.size();
    if (selected)
        selected->assign(batch, {});
    if (batch == 0)
        return {};
    if (batch == 1) {
        std::vector<Vec> out(1);
        out[0] =
            forward(xs[0], ctx, selected ? &(*selected)[0] : nullptr);
        return out;
    }

    obs::Tracer *const trace = tracerOf(ctx);

    // Route every token independently; the batched router column is
    // bit-identical to the single-token router call, so top-k picks
    // and gate weights match forward() exactly.
    std::vector<std::vector<std::size_t>> chosen(batch);
    std::vector<Vec> gates(batch);
    {
        obs::ScopedSpan span(trace, "moe", "moe.route");
        if (isDense_ || experts_.size() == 1) {
            for (std::size_t t = 0; t < batch; ++t) {
                chosen[t] = {0};
                gates[t] = {1.0};
            }
        } else {
            const std::vector<Vec> logits =
                router_.forwardBatch(xs, ExecPath::Reference);
            for (std::size_t t = 0; t < batch; ++t) {
                chosen[t] = topK(logits[t], activeExperts_);
                Vec selected_logits(chosen[t].size());
                for (std::size_t i = 0; i < chosen[t].size(); ++i)
                    selected_logits[i] = logits[t][chosen[t][i]];
                gates[t] = softmax(selected_logits);
            }
        }
    }
    if (selected)
        *selected = chosen;

    // Group (token, routing position) pairs by expert so each chosen
    // expert's projections traverse their weights once for every token
    // that routed to it.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
        groups(experts_.size());
    for (std::size_t t = 0; t < batch; ++t) {
        for (std::size_t i = 0; i < chosen[t].size(); ++i)
            groups[chosen[t][i]].emplace_back(t, i);
    }
    std::vector<std::size_t> active;
    for (std::size_t e = 0; e < experts_.size(); ++e) {
        if (!groups[e].empty())
            active.push_back(e);
    }

    // expert_outs[t][i] holds expert chosen[t][i]'s output for token t.
    // Groups fill disjoint slots, so they may run on pool workers; the
    // combine below still walks each token's routing order serially,
    // keeping the accumulation order -- and the doubles -- identical to
    // per-token forward().
    std::vector<std::vector<Vec>> expert_outs(batch);
    for (std::size_t t = 0; t < batch; ++t)
        expert_outs[t].resize(chosen[t].size());

    const ExecContext sub = expertContext(ctx);
    {
        obs::ScopedSpan span(trace, "moe", "moe.experts");
        parallelFor(ctx.pool, active.size(),
                    [&](std::size_t begin, std::size_t end) {
            for (std::size_t g = begin; g < end; ++g) {
                const std::size_t e = active[g];
                const auto &members = groups[e];
                const Expert &ex = experts_[e];
                std::vector<Vec> inputs(members.size());
                for (std::size_t m = 0; m < members.size(); ++m)
                    inputs[m] = xs[members[m].first];
                const std::vector<Vec> up =
                    ex.up.forwardBatch(inputs, sub);
                const std::vector<Vec> gate =
                    ex.gate.forwardBatch(inputs, sub);
                std::vector<Vec> activated(members.size());
                for (std::size_t m = 0; m < members.size(); ++m)
                    activated[m] = swiGlu(gate[m], up[m]);
                std::vector<Vec> down =
                    ex.down.forwardBatch(activated, sub);
                for (std::size_t m = 0; m < members.size(); ++m) {
                    expert_outs[members[m].first][members[m].second] =
                        std::move(down[m]);
                }
            }
        });
    }

    std::vector<Vec> out(batch, Vec(experts_[0].down.outDim(), 0.0));
    for (std::size_t t = 0; t < batch; ++t) {
        for (std::size_t i = 0; i < chosen[t].size(); ++i) {
            for (std::size_t d = 0; d < out[t].size(); ++d)
                out[t][d] += gates[t][i] * expert_outs[t][i][d];
        }
    }
    return out;
}

} // namespace hnlpu
