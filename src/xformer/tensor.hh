/**
 * @file
 * Minimal dense tensor types for the functional transformer engine.
 *
 * The functional engine only needs vectors and row-major matrices of
 * doubles; shapes are validated at use sites.  This is deliberately not a
 * general tensor library -- the HNLPU executes fixed shapes, and keeping
 * the types small keeps the bit-exactness arguments auditable.
 */

#ifndef HNLPU_XFORMER_TENSOR_HH
#define HNLPU_XFORMER_TENSOR_HH

#include <cstddef>
#include <vector>

namespace hnlpu {

using Vec = std::vector<double>;

/** Row-major matrix of doubles. */
class Mat
{
  public:
    Mat() = default;
    Mat(std::size_t rows, std::size_t cols, double fill = 0.0);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Row r as a copy. */
    Vec row(std::size_t r) const;

    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** y = M x (M rows x cols, x of size cols). */
Vec matVec(const Mat &m, const Vec &x);

/** y = M^T x (x of size rows). */
Vec matTVec(const Mat &m, const Vec &x);

/** Elementwise a + b. */
Vec add(const Vec &a, const Vec &b);

/** Elementwise a * b. */
Vec hadamard(const Vec &a, const Vec &b);

/** Dot product. */
double dot(const Vec &a, const Vec &b);

/** Scale in place. */
void scale(Vec &v, double s);

} // namespace hnlpu

#endif // HNLPU_XFORMER_TENSOR_HH
