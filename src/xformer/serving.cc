#include "xformer/serving.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace hnlpu {

namespace {

/** Nearest-rank percentile (q in (0, 1]) of @p values. */
double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * double(values.size())));
    if (rank > 0)
        --rank;
    return values[std::min(values.size() - 1, rank)];
}

} // namespace

ServingEngine::ServingEngine(Engine &engine, std::size_t slots)
    : engine_(engine),
      slots_(slots != 0 ? slots : engine.execOptions().batchSlots)
{
    hnlpu_assert(slots_ >= 1, "serving engine needs at least one slot");
}

std::size_t
ServingEngine::enqueue(ServingRequest request)
{
    hnlpu_assert(!request.prompt.empty(),
                 "serving request needs a non-empty prompt");
    hnlpu_assert(request.decodeTokens >= 1,
                 "serving request must decode at least one token");
    for (std::size_t i = 0; i < request.prompt.size(); ++i) {
        hnlpu_assert(request.prompt[i] < engine_.config().vocabSize,
                     "prompt token ", i, " id ", request.prompt[i],
                     " out of vocab range ",
                     engine_.config().vocabSize);
    }
    hnlpu_assert(queue_.empty() ||
                     queue_.back().arrivalStep <= request.arrivalStep,
                 "requests must be enqueued in arrival order (got step ",
                 request.arrivalStep, " after ",
                 queue_.back().arrivalStep, ")");
    queue_.push_back(std::move(request));
    return nextId_++;
}

std::vector<ServingOutcome>
ServingEngine::run()
{
    const std::size_t n = queue_.size();
    const std::size_t base_id = nextId_ - n;
    outcomes_.assign(n, ServingOutcome{});
    stats_ = ServingStats{};
    stats_.slots = slots_;
    stats_.requests = n;
    if (n == 0)
        return {};
    for (std::size_t i = 0; i < n; ++i) {
        outcomes_[i].id = base_id + i;
        outcomes_[i].arrivalStep = queue_[i].arrivalStep;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed = [&t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::vector<Slot> slots(slots_);
    std::size_t next = 0;     // next queue index to admit (FIFO)
    std::size_t finished = 0;
    std::size_t step = 0;
    /** step_wall[t] = elapsed seconds when step t began. */
    std::vector<double> step_wall;

    std::vector<std::size_t> tokens;
    std::vector<KvCache *> caches;
    std::vector<std::uint8_t> want;
    std::vector<std::size_t> slot_index;

    while (finished < n) {
        // All slots idle and the next request is in the future: jump
        // the step clock to its arrival (the skipped steps take no wall
        // time -- there is nothing to execute).
        bool any_busy = false;
        for (const Slot &slot : slots)
            any_busy = any_busy || slot.busy;
        if (!any_busy) {
            hnlpu_assert(next < n, "serving run stalled with ",
                         n - finished, " unfinished requests");
            const double now = elapsed();
            while (step < queue_[next].arrivalStep) {
                step_wall.push_back(now);
                ++step;
            }
        }
        step_wall.push_back(elapsed());

        // Admit arrived requests into free slots, FIFO.  A slot freed
        // at finishStep f is re-admissible at step f, matching
        // ContinuousBatcher's slot_free bookkeeping exactly.
        for (Slot &slot : slots) {
            if (slot.busy)
                continue;
            if (next >= n || queue_[next].arrivalStep > step)
                break;
            const ServingRequest &req = queue_[next];
            slot.busy = true;
            slot.request = next;
            slot.fed = 0;
            slot.cache.emplace(engine_.makeCache(req.prompt.size() +
                                                 req.decodeTokens));
            slot.sampler.emplace(req.sampler, req.seed);
            outcomes_[next].admitStep = step;
            ++next;
        }

        // One token per busy slot: prompt tokens while prefilling, the
        // previously sampled token while decoding.  Logits are only
        // requested for forwards whose output feeds the sampler (the
        // last prefill token and every decode token), so early prefill
        // skips the vocab-sized unembedding just like Engine::generate.
        tokens.clear();
        caches.clear();
        want.clear();
        slot_index.clear();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            Slot &slot = slots[s];
            if (!slot.busy)
                continue;
            const ServingRequest &req = queue_[slot.request];
            const ServingOutcome &out = outcomes_[slot.request];
            const std::size_t p = req.prompt.size();
            tokens.push_back(slot.fed < p ? req.prompt[slot.fed]
                                          : out.tokens.back());
            caches.push_back(&*slot.cache);
            want.push_back(slot.fed + 1 >= p ? 1 : 0);
            slot_index.push_back(s);
        }
        hnlpu_assert(!tokens.empty(), "serving step with no busy slot");
        const std::vector<Vec> logits =
            engine_.forwardTokenBatch(tokens, caches, want);
        stats_.forwards += tokens.size();
        ++stats_.executedSteps;

        for (std::size_t c = 0; c < slot_index.size(); ++c) {
            Slot &slot = slots[slot_index[c]];
            const ServingRequest &req = queue_[slot.request];
            ServingOutcome &out = outcomes_[slot.request];
            ++slot.fed;
            if (want[c] == 0)
                continue;
            out.tokens.push_back(slot.sampler->sample(logits[c]));
            if (out.tokens.size() == 1)
                out.firstTokenStep = step + 1;
            if (out.tokens.size() == req.decodeTokens) {
                out.finishStep = step + 1;
                slot.busy = false;
                slot.cache.reset();
                slot.sampler.reset();
                ++finished;
            }
        }
        ++step;
    }
    // Start-of-step time for the first never-executed step == end of
    // the run; finishStep/firstTokenStep indices land here at most.
    step_wall.push_back(elapsed());

    std::vector<double> ttfts(n), latencies(n);
    double queue_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ServingOutcome &out = outcomes_[i];
        const double arrival = step_wall[out.arrivalStep];
        out.queueSeconds = step_wall[out.admitStep] - arrival;
        out.ttftSeconds = step_wall[out.firstTokenStep] - arrival;
        out.latencySeconds = step_wall[out.finishStep] - arrival;
        const double service =
            step_wall[out.finishStep] - step_wall[out.admitStep];
        out.decodeTokensPerSecond =
            service > 0 ? double(out.tokens.size()) / service : 0.0;
        ttfts[i] = out.ttftSeconds;
        latencies[i] = out.latencySeconds;
        queue_sum += out.queueSeconds;
        stats_.decodedTokens += out.tokens.size();
    }
    stats_.wallSeconds = step_wall.back();
    stats_.aggregateTokensPerSecond =
        stats_.wallSeconds > 0
            ? double(stats_.decodedTokens) / stats_.wallSeconds
            : 0.0;
    stats_.meanOccupancy =
        stats_.executedSteps > 0
            ? double(stats_.forwards) /
                  double(stats_.executedSteps * slots_)
            : 0.0;
    stats_.meanQueueSeconds = queue_sum / double(n);
    stats_.ttftP50Seconds = percentile(ttfts, 0.50);
    stats_.ttftP95Seconds = percentile(ttfts, 0.95);
    stats_.latencyP50Seconds = percentile(latencies, 0.50);
    stats_.latencyP95Seconds = percentile(latencies, 0.95);

    queue_.clear();
    return outcomes_;
}

std::string
ServingEngine::metricsJson() const
{
    std::ostringstream os;
    os.precision(9);
    os << "{\n";
    os << "  \"slots\": " << stats_.slots << ",\n";
    os << "  \"requests\": " << stats_.requests << ",\n";
    os << "  \"executed_steps\": " << stats_.executedSteps << ",\n";
    os << "  \"forwards\": " << stats_.forwards << ",\n";
    os << "  \"decoded_tokens\": " << stats_.decodedTokens << ",\n";
    os << "  \"wall_seconds\": " << stats_.wallSeconds << ",\n";
    os << "  \"aggregate_tokens_per_second\": "
       << stats_.aggregateTokensPerSecond << ",\n";
    os << "  \"mean_occupancy\": " << stats_.meanOccupancy << ",\n";
    os << "  \"mean_queue_seconds\": " << stats_.meanQueueSeconds
       << ",\n";
    os << "  \"ttft_seconds\": {\"p50\": " << stats_.ttftP50Seconds
       << ", \"p95\": " << stats_.ttftP95Seconds << "},\n";
    os << "  \"latency_seconds\": {\"p50\": "
       << stats_.latencyP50Seconds
       << ", \"p95\": " << stats_.latencyP95Seconds << "},\n";
    os << "  \"requests_detail\": [";
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        const ServingOutcome &out = outcomes_[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"id\": " << out.id
           << ", \"arrival_step\": " << out.arrivalStep
           << ", \"admit_step\": " << out.admitStep
           << ", \"first_token_step\": " << out.firstTokenStep
           << ", \"finish_step\": " << out.finishStep
           << ", \"decoded_tokens\": " << out.tokens.size()
           << ", \"queue_seconds\": " << out.queueSeconds
           << ", \"ttft_seconds\": " << out.ttftSeconds
           << ", \"latency_seconds\": " << out.latencySeconds
           << ", \"decode_tokens_per_second\": "
           << out.decodeTokensPerSecond << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace hnlpu
