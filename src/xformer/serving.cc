#include "xformer/serving.hh"

#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "sim/stats.hh"

namespace hnlpu {

namespace {

/**
 * Quantile resolution for the per-request wall metrics: the histogram
 * spans exactly [min, max] of the observed samples, so 4096 bins put
 * the bin-midpoint error at ~0.01% of the observed range.
 */
constexpr std::size_t kQuantileBins = 4096;

} // namespace

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::None: return "none";
      case RejectReason::EmptyPrompt: return "empty_prompt";
      case RejectReason::ZeroDecodeTokens: return "zero_decode_tokens";
      case RejectReason::TokenOutOfVocab: return "token_out_of_vocab";
      case RejectReason::ArrivalOrderViolation:
        return "arrival_order_violation";
      case RejectReason::InvalidSampler: return "invalid_sampler";
      case RejectReason::DeadlineInfeasible:
        return "deadline_infeasible";
      case RejectReason::QueueFull: return "queue_full";
      case RejectReason::DegradedShed: return "degraded_shed";
      case RejectReason::NoUsableShard: return "no_usable_shard";
      case RejectReason::RetriesExhausted: return "retries_exhausted";
      case RejectReason::DeadlineExpired: return "deadline_expired";
    }
    hnlpu_panic("unknown RejectReason ", int(reason));
}

RejectReason
validateSamplerConfig(const SamplerConfig &sampler,
                      std::size_t vocab_size)
{
    if (!std::isfinite(sampler.temperature) ||
        sampler.temperature < 0.0) {
        hnlpu_warn_ratelimited(
            "rejecting sampler config: temperature ",
            sampler.temperature,
            " is not a finite non-negative value");
        return RejectReason::InvalidSampler;
    }
    if (sampler.topK > vocab_size) {
        hnlpu_warn_ratelimited("rejecting sampler config: top-k ",
                               sampler.topK, " exceeds vocab size ",
                               vocab_size);
        return RejectReason::InvalidSampler;
    }
    return RejectReason::None;
}

RejectReason
validateServingRequest(const ServingRequest &request,
                       std::size_t vocab_size)
{
    if (request.prompt.empty())
        return RejectReason::EmptyPrompt;
    if (request.decodeTokens == 0)
        return RejectReason::ZeroDecodeTokens;
    for (const std::size_t id : request.prompt) {
        if (id >= vocab_size)
            return RejectReason::TokenOutOfVocab;
    }
    return validateSamplerConfig(request.sampler, vocab_size);
}

ServingEngine::ServingEngine(Engine &engine, std::size_t slots)
    : engine_(engine),
      slots_(slots != 0 ? slots : engine.execOptions().batchSlots)
{
    hnlpu_assert(slots_ >= 1, "serving engine needs at least one slot");
}

EnqueueResult
ServingEngine::tryEnqueue(ServingRequest request)
{
    const RejectReason reason =
        validateServingRequest(request, engine_.config().vocabSize);
    if (reason != RejectReason::None)
        return {0, reason};
    if (!queue_.empty() &&
        queue_.back().arrivalStep > request.arrivalStep)
        return {0, RejectReason::ArrivalOrderViolation};
    queue_.push_back(std::move(request));
    return {nextId_++, RejectReason::None};
}

std::size_t
ServingEngine::enqueue(ServingRequest request)
{
    const EnqueueResult result = tryEnqueue(std::move(request));
    if (!result.admitted()) {
        hnlpu_fatal("serving enqueue rejected: ",
                    rejectReasonName(result.reason));
    }
    return result.id;
}

std::vector<ServingOutcome>
ServingEngine::run()
{
    const std::size_t n = queue_.size();
    const std::size_t base_id = nextId_ - n;
    outcomes_.assign(n, ServingOutcome{});
    stats_ = ServingStats{};
    stats_.slots = slots_;
    stats_.requests = n;
    if (n == 0)
        return {};
    for (std::size_t i = 0; i < n; ++i) {
        outcomes_[i].id = base_id + i;
        outcomes_[i].arrivalStep = queue_[i].arrivalStep;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed = [&t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    // Observability wiring from the engine's execution context: spans
    // and counters only read the computation, so the decoded tokens are
    // bit-identical with or without a sink (tests/test_obs.cc).
    const obs::Sink *const sink = engine_.execContext().sink;
    obs::Tracer *const trace = sink ? sink->trace : nullptr;
    obs::MetricsRegistry *const metrics = sink ? sink->metrics : nullptr;
    obs::Counter *c_steps = nullptr, *c_forwards = nullptr,
                 *c_decoded = nullptr;
    obs::Gauge *g_queue_depth = nullptr, *g_busy_slots = nullptr;
    obs::LatencyHistogram *h_step = nullptr;
    if (metrics) {
        c_steps = metrics->counter("serving.steps");
        c_forwards = metrics->counter("serving.forwards");
        c_decoded = metrics->counter("serving.decoded_tokens");
        g_queue_depth = metrics->gauge("serving.queue_depth");
        g_busy_slots = metrics->gauge("serving.busy_slots");
        h_step = metrics->latency("serving.step_seconds");
    }

    std::vector<Slot> slots(slots_);
    std::size_t next = 0;     // next queue index to admit (FIFO)
    std::size_t finished = 0;
    std::size_t step = 0;
    /** step_wall[t] = elapsed seconds when step t began. */
    std::vector<double> step_wall;

    std::vector<std::size_t> tokens;
    std::vector<KvCache *> caches;
    std::vector<std::uint8_t> want;
    std::vector<std::size_t> slot_index;

    while (finished < n) {
        // All slots idle and the next request is in the future: jump
        // the step clock to its arrival (the skipped steps take no wall
        // time -- there is nothing to execute).
        bool any_busy = false;
        for (const Slot &slot : slots)
            any_busy = any_busy || slot.busy;
        if (!any_busy) {
            hnlpu_assert(next < n, "serving run stalled with ",
                         n - finished, " unfinished requests");
            const double now = elapsed();
            while (step < queue_[next].arrivalStep) {
                step_wall.push_back(now);
                ++step;
            }
        }
        step_wall.push_back(elapsed());

        // Admit arrived requests into free slots, FIFO.  A slot freed
        // at finishStep f is re-admissible at step f, matching
        // ContinuousBatcher's slot_free bookkeeping exactly.
        for (Slot &slot : slots) {
            if (slot.busy)
                continue;
            if (next >= n || queue_[next].arrivalStep > step)
                break;
            const ServingRequest &req = queue_[next];
            slot.busy = true;
            slot.request = next;
            slot.fed = 0;
            slot.cache.emplace(engine_.makeCache(req.prompt.size() +
                                                 req.decodeTokens));
            slot.sampler.emplace(req.sampler, req.seed);
            outcomes_[next].admitStep = step;
            ++next;
        }

        // One token per busy slot: prompt tokens while prefilling, the
        // previously sampled token while decoding.  Logits are only
        // requested for forwards whose output feeds the sampler (the
        // last prefill token and every decode token), so early prefill
        // skips the vocab-sized unembedding just like Engine::generate.
        tokens.clear();
        caches.clear();
        want.clear();
        slot_index.clear();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            Slot &slot = slots[s];
            if (!slot.busy)
                continue;
            const ServingRequest &req = queue_[slot.request];
            const ServingOutcome &out = outcomes_[slot.request];
            const std::size_t p = req.prompt.size();
            tokens.push_back(slot.fed < p ? req.prompt[slot.fed]
                                          : out.tokens.back());
            caches.push_back(&*slot.cache);
            want.push_back(slot.fed + 1 >= p ? 1 : 0);
            slot_index.push_back(s);
        }
        hnlpu_assert(!tokens.empty(), "serving step with no busy slot");
        if (metrics) {
            // Queue depth counts requests not yet admitted (whether or
            // not they have "arrived" on the step clock); busy slots is
            // exactly this step's batch size.
            g_queue_depth->set(double(n - next));
            g_busy_slots->set(double(tokens.size()));
            c_steps->add(1);
            c_forwards->add(tokens.size());
        }
        std::string step_args;
        if (trace) {
            obs::JsonWriter w(0);
            w.beginObject()
                .field("step", step)
                .field("batch", tokens.size())
                .endObject();
            step_args = w.str();
        }
        const double step_t0 = elapsed();
        std::vector<Vec> logits;
        {
            obs::ScopedSpan span(trace, "serving", "serve.step",
                                 std::move(step_args));
            logits = engine_.forwardTokenBatch(tokens, caches, want);
        }
        if (h_step)
            h_step->observe(elapsed() - step_t0);
        stats_.forwards += tokens.size();
        ++stats_.executedSteps;

        for (std::size_t c = 0; c < slot_index.size(); ++c) {
            Slot &slot = slots[slot_index[c]];
            const ServingRequest &req = queue_[slot.request];
            ServingOutcome &out = outcomes_[slot.request];
            ++slot.fed;
            if (want[c] == 0)
                continue;
            out.tokens.push_back(slot.sampler->sample(logits[c]));
            if (c_decoded)
                c_decoded->add(1);
            if (out.tokens.size() == 1)
                out.firstTokenStep = step + 1;
            if (out.tokens.size() == req.decodeTokens) {
                out.finishStep = step + 1;
                slot.busy = false;
                slot.cache.reset();
                slot.sampler.reset();
                ++finished;
            }
        }
        ++step;
    }
    // Start-of-step time for the first never-executed step == end of
    // the run; finishStep/firstTokenStep indices land here at most.
    step_wall.push_back(elapsed());

    std::vector<double> ttfts(n), latencies(n);
    Accumulator queue_acc;
    for (std::size_t i = 0; i < n; ++i) {
        ServingOutcome &out = outcomes_[i];
        const double arrival = step_wall[out.arrivalStep];
        out.queueSeconds = step_wall[out.admitStep] - arrival;
        out.ttftSeconds = step_wall[out.firstTokenStep] - arrival;
        out.latencySeconds = step_wall[out.finishStep] - arrival;
        const double service =
            step_wall[out.finishStep] - step_wall[out.admitStep];
        out.decodeTokensPerSecond =
            service > 0 ? double(out.tokens.size()) / service : 0.0;
        ttfts[i] = out.ttftSeconds;
        latencies[i] = out.latencySeconds;
        queue_acc.add(out.queueSeconds);
        stats_.decodedTokens += out.tokens.size();
        if (metrics) {
            metrics->latency("serving.ttft_seconds")
                ->observe(out.ttftSeconds);
            metrics->latency("serving.latency_seconds")
                ->observe(out.latencySeconds);
        }
    }
    stats_.wallSeconds = step_wall.back();
    stats_.aggregateTokensPerSecond =
        stats_.wallSeconds > 0
            ? double(stats_.decodedTokens) / stats_.wallSeconds
            : 0.0;
    stats_.meanOccupancy =
        stats_.executedSteps > 0
            ? double(stats_.forwards) /
                  double(stats_.executedSteps * slots_)
            : 0.0;
    stats_.meanQueueSeconds = queue_acc.mean();
    // Percentiles via the shared sim::Histogram quantile API (one
    // histogram per metric, spanning exactly the observed samples).
    const Histogram ttft_hist =
        Histogram::fromSamples(ttfts, kQuantileBins);
    const Histogram latency_hist =
        Histogram::fromSamples(latencies, kQuantileBins);
    stats_.ttftP50Seconds = ttft_hist.quantile(0.50);
    stats_.ttftP95Seconds = ttft_hist.quantile(0.95);
    stats_.latencyP50Seconds = latency_hist.quantile(0.50);
    stats_.latencyP95Seconds = latency_hist.quantile(0.95);

    queue_.clear();
    return outcomes_;
}

std::string
ServingEngine::metricsJson() const
{
    obs::JsonWriter w(2);
    w.beginObject();
    w.field("slots", stats_.slots);
    w.field("requests", stats_.requests);
    w.field("executed_steps", stats_.executedSteps);
    w.field("forwards", stats_.forwards);
    w.field("decoded_tokens", stats_.decodedTokens);
    w.field("wall_seconds", stats_.wallSeconds);
    w.field("aggregate_tokens_per_second",
            stats_.aggregateTokensPerSecond);
    w.field("mean_occupancy", stats_.meanOccupancy);
    w.field("mean_queue_seconds", stats_.meanQueueSeconds);
    w.key("ttft_seconds")
        .beginObject()
        .field("p50", stats_.ttftP50Seconds)
        .field("p95", stats_.ttftP95Seconds)
        .endObject();
    w.key("latency_seconds")
        .beginObject()
        .field("p50", stats_.latencyP50Seconds)
        .field("p95", stats_.latencyP95Seconds)
        .endObject();
    w.key("requests_detail").beginArray();
    for (const ServingOutcome &out : outcomes_) {
        w.beginObject();
        w.field("id", out.id);
        w.field("arrival_step", out.arrivalStep);
        w.field("admit_step", out.admitStep);
        w.field("first_token_step", out.firstTokenStep);
        w.field("finish_step", out.finishStep);
        w.field("decoded_tokens", out.tokens.size());
        w.field("queue_seconds", out.queueSeconds);
        w.field("ttft_seconds", out.ttftSeconds);
        w.field("latency_seconds", out.latencySeconds);
        w.field("decode_tokens_per_second", out.decodeTokensPerSecond);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace hnlpu
