/**
 * @file
 * Per-sequence KV cache for the functional engine.
 *
 * Stores post-RoPE key and value head vectors per layer.  The cycle-level
 * memory system (src/mem) models the physical buffer/HBM behaviour; this
 * class is the functional counterpart used during token generation.
 */

#ifndef HNLPU_XFORMER_KV_CACHE_HH
#define HNLPU_XFORMER_KV_CACHE_HH

#include <vector>

#include "xformer/tensor.hh"

namespace hnlpu {

/** KV storage for one sequence across all layers. */
class KvCache
{
  public:
    /**
     * @param layers transformer block count
     * @param kv_heads KV heads per layer
     * @param head_dim per-head dimension
     * @param max_tokens_hint expected sequence length; when non-zero,
     *        every per-(layer, head) token list reserves this capacity
     *        up front so appends within the hint never reallocate --
     *        references returned by key()/value() stay valid across
     *        them.  Appending past the hint is legal but may
     *        reallocate and invalidate outstanding references.
     */
    KvCache(std::size_t layers, std::size_t kv_heads,
            std::size_t head_dim, std::size_t max_tokens_hint = 0);

    /**
     * Reserve capacity for @p max_tokens tokens (no-op if already at or
     * above); same reference-stability guarantee as the constructor
     * hint.  Must not shrink: existing tokens are untouched.
     */
    void reserveTokens(std::size_t max_tokens);

    /** Append one token's keys/values for a layer (kv_heads vectors). */
    void append(std::size_t layer, const std::vector<Vec> &keys,
                const std::vector<Vec> &values);

    /** Cached key of token @p pos, head @p head, layer @p layer. */
    const Vec &key(std::size_t layer, std::size_t head,
                   std::size_t pos) const;
    const Vec &value(std::size_t layer, std::size_t head,
                     std::size_t pos) const;

    /** Tokens currently cached (uniform across layers). */
    std::size_t length() const { return length_; }

    std::size_t kvHeads() const { return kvHeads_; }

  private:
    std::size_t kvHeads_;
    std::size_t headDim_;
    std::size_t length_ = 0;
    /** [layer][head][pos] -> head_dim vector. */
    std::vector<std::vector<std::vector<Vec>>> keys_;
    std::vector<std::vector<std::vector<Vec>>> values_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_KV_CACHE_HH
