#include "xformer/weights.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace hnlpu {

namespace {

/** Guard against instantiating production-scale weights in memory. */
constexpr std::uint64_t kMaxInstantiableParams = 64ULL << 20; // 64M

Vec
randomGain(std::size_t n, Rng &rng)
{
    Vec gain(n);
    for (double &g : gain)
        g = 1.0 + 0.1 * rng.gaussian();
    return gain;
}

} // namespace

ModelWeights
ModelWeights::randomInit(const TransformerConfig &cfg, std::uint64_t seed)
{
    cfg.validate();
    hnlpu_assert(cfg.totalParams() <= kMaxInstantiableParams,
                 cfg.name, " too large to instantiate functionally (",
                 cfg.totalParams(), " params); use a tiny config");

    Rng rng(seed);
    const std::size_t d = cfg.hiddenSize;
    const std::size_t q = cfg.qProjectionDim();
    const std::size_t kv = cfg.kvProjectionDim();

    ModelWeights w{
        Mat(cfg.vocabSize, d),
        {},
        randomGain(d, rng),
        Linear::random(cfg.vocabSize, d, rng.next()),
    };

    // Embedding rows: unit-scale, FP4-snapped so both execution paths see
    // the identical dequantised table.
    for (std::size_t t = 0; t < cfg.vocabSize; ++t) {
        for (std::size_t c = 0; c < d; ++c) {
            w.embedding.at(t, c) =
                Fp4::quantize(rng.gaussian(0.0, 1.5)).value();
        }
    }

    w.blocks.reserve(cfg.layerCount);
    for (std::size_t layer = 0; layer < cfg.layerCount; ++layer) {
        std::vector<Expert> experts;
        experts.reserve(cfg.expertCount);
        for (std::size_t e = 0; e < cfg.expertCount; ++e) {
            experts.push_back(Expert{
                Linear::random(cfg.expertHidden, d, rng.next()),
                Linear::random(cfg.expertHidden, d, rng.next()),
                Linear::random(d, cfg.expertHidden, rng.next()),
            });
        }
        MoeLayer ffn =
            cfg.expertCount > 1
                ? MoeLayer(Linear::random(cfg.expertCount, d,
                                          rng.next()),
                           std::move(experts), cfg.activeExperts)
                : MoeLayer::dense(std::move(experts.front()));

        w.blocks.push_back(BlockWeights{
            randomGain(d, rng),
            Linear::random(q, d, rng.next()),
            Linear::random(kv, d, rng.next()),
            Linear::random(kv, d, rng.next()),
            Linear::random(d, q, rng.next()),
            randomGain(d, rng),
            std::move(ffn),
        });
    }
    return w;
}

} // namespace hnlpu
