/**
 * @file
 * Continuous-batching serving engine over the functional Engine.
 *
 * Implements iteration-level scheduling (paper Section 5.2, the
 * functional counterpart of pipeline/batcher.hh): up to `slots`
 * sequences are in flight at once, every scheduler step runs exactly one
 * token for every busy slot through Engine::forwardTokenBatch, and the
 * moment a sequence emits its last token its slot is re-admitted from
 * the FIFO queue.  Prefill and decode interleave freely -- a step may
 * carry prefill tokens of a fresh request next to decode tokens of
 * half-finished ones.
 *
 * The step clock uses the same slot semantics as ContinuousBatcher with
 * unit token timings, so the two can be cross-checked on one trace:
 * ServingEngine on {arrivalStep, prompt of p, d decode tokens} produces
 * admit/first-token/finish steps equal to ContinuousBatcher(slots, 1.0,
 * 1.0) on Request{arrivalStep, p, d - 1}.  (The serving engine samples
 * the first decode token from the last prefill forward, so a request
 * occupies its slot for p + d - 1 forwards.)
 *
 * Decoded tokens are bit-identical to running each request alone
 * through Engine::generate with the same sampler config and seed
 * (tests/test_serving.cc pins this across kernels, thread counts and
 * slot counts).
 */

#ifndef HNLPU_XFORMER_SERVING_HH
#define HNLPU_XFORMER_SERVING_HH

#include <optional>
#include <string>
#include <vector>

#include "xformer/engine.hh"

namespace hnlpu {

/** One queued generation request. */
struct ServingRequest
{
    std::vector<std::size_t> prompt;  //!< token ids, non-empty
    std::size_t decodeTokens = 0;     //!< tokens to generate, >= 1
    /** Scheduler step at which the request becomes admissible. */
    std::size_t arrivalStep = 0;
    SamplerConfig sampler;            //!< per-request sampling policy
    std::uint64_t seed = 0;           //!< per-request sampler seed
};

/**
 * Typed reasons a request is refused at admission, shed by load/health
 * policy, or cancelled after admission.  A serving front end must never
 * abort on bad traffic -- it reports one of these instead, and the
 * fatal legacy entry points (ServingEngine::enqueue) are thin wrappers
 * that translate a reason back into the historical hard failure.
 *
 * The first group is request validation, the second admission-control /
 * health policy (used by serve::ServingRouter), the third cancellation
 * of already-admitted work.
 */
enum class RejectReason
{
    None = 0,              //!< accepted (not a rejection)
    // Request validation.
    EmptyPrompt,           //!< prompt has no tokens
    ZeroDecodeTokens,      //!< nothing to generate
    TokenOutOfVocab,       //!< a prompt id >= vocabSize
    ArrivalOrderViolation, //!< arrivalStep below the queue tail's
    InvalidSampler,        //!< non-finite/negative temperature, topK > vocab
    DeadlineInfeasible,    //!< budget below the minimum servable steps
    // Admission control and shard health (router policy).
    QueueFull,             //!< bounded class queue at capacity
    DegradedShed,          //!< batch traffic shed in degraded mode
    NoUsableShard,         //!< every shard drained or unreachable
    RetriesExhausted,      //!< failovers exceeded the retry budget
    // Cancellation of admitted work.
    DeadlineExpired,       //!< TTFT or total step budget ran out
};

/** Number of distinct RejectReason values (for dense count arrays). */
constexpr std::size_t kRejectReasonCount = 12;

/** Stable snake_case name (JSON keys, log lines). */
const char *rejectReasonName(RejectReason reason);

/**
 * Validate a sampling policy against a model: the temperature must be
 * finite and non-negative (the Sampler would otherwise panic or
 * produce scan-order-dependent draws) and topK must not exceed the
 * vocabulary.  Returns None or InvalidSampler; an invalid config emits
 * a rate-limited warn so misbehaving clients are visible without
 * flooding stderr.
 */
RejectReason validateSamplerConfig(const SamplerConfig &sampler,
                                   std::size_t vocab_size);

/**
 * Validate everything about a request that does not depend on queue
 * state: prompt non-empty and in-vocab, decodeTokens >= 1, sampler
 * valid.  Returns None or the first violated rule, in the order the
 * RejectReason enumerators are declared.
 */
RejectReason validateServingRequest(const ServingRequest &request,
                                    std::size_t vocab_size);

/** Outcome of a non-fatal enqueue attempt. */
struct EnqueueResult
{
    /** Request id (enqueue order); valid only when admitted(). */
    std::size_t id = 0;
    RejectReason reason = RejectReason::None;

    bool admitted() const { return reason == RejectReason::None; }
};

/** Completion record for one served request. */
struct ServingOutcome
{
    std::size_t id = 0;               //!< enqueue order
    std::vector<std::size_t> tokens;  //!< decoded ids, in order

    // Step-clock milestones (cross-checkable against
    // ContinuousBatcher; see file comment).
    std::size_t arrivalStep = 0;
    std::size_t admitStep = 0;      //!< first forward ran at this step
    std::size_t firstTokenStep = 0; //!< == admitStep + promptTokens
    std::size_t finishStep = 0;     //!< slot admissible again here

    // Wall-clock metrics, seconds relative to the request's arrival.
    double queueSeconds = 0;   //!< arrival -> admission
    double ttftSeconds = 0;    //!< arrival -> first token sampled
    double latencySeconds = 0; //!< arrival -> last token sampled
    /** Decoded tokens over the slot-occupancy time (admit -> finish). */
    double decodeTokensPerSecond = 0;
};

/**
 * Aggregate statistics of one ServingEngine::run.
 *
 * Every field is well-defined on an empty run (zero requests): means,
 * occupancy and percentiles are 0, never NaN, so downstream JSON
 * emitters and dashboards need no special-casing (obs::JsonWriter would
 * otherwise turn a NaN into null and silently break schema consumers).
 */
struct ServingStats
{
    std::size_t requests = 0;
    std::size_t slots = 0;
    std::size_t executedSteps = 0;  //!< steps that ran >= 1 forward
    std::size_t forwards = 0;       //!< busy-slot forwards issued
    std::size_t decodedTokens = 0;
    double wallSeconds = 0;
    /** Decoded tokens per wall second across the whole run. */
    double aggregateTokensPerSecond = 0;
    /** forwards / (executedSteps * slots). */
    double meanOccupancy = 0;
    double meanQueueSeconds = 0;
    // Percentiles over per-request wall metrics, via
    // sim::Histogram::fromSamples (bin-midpoint quantiles; see
    // serving.cc kQuantileBins for the resolution).
    double ttftP50Seconds = 0;
    double ttftP95Seconds = 0;
    double latencyP50Seconds = 0;
    double latencyP95Seconds = 0;
};

/**
 * Continuous-batching front end for one Engine.
 *
 * Not thread-safe; run() drives the borrowed engine, which must not be
 * used elsewhere while serving.  Each slot owns a per-request KvCache
 * (capacity-hinted to prompt + decode, so appends never reallocate) and
 * a per-request Sampler.
 */
class ServingEngine
{
  public:
    /**
     * @param engine borrowed executor; must outlive the serving engine
     * @param slots concurrent sequences; 0 reads the engine's
     *        ExecOptions::batchSlots default
     */
    explicit ServingEngine(Engine &engine, std::size_t slots = 0);

    /**
     * Queue a request (FIFO) if it is valid: non-empty in-vocab prompt,
     * decodeTokens >= 1, valid sampler, and an arrivalStep no earlier
     * than the queue tail's (the queue must be arrival-sorted, the same
     * contract ContinuousBatcher::serve enforces).  An invalid request
     * is refused with a typed reason and the queue is untouched --
     * serving front ends shed it instead of crashing.
     */
    EnqueueResult tryEnqueue(ServingRequest request);

    /**
     * Legacy fatal wrapper around tryEnqueue(): a rejected request is a
     * hard configuration error here.
     * @return the request id (enqueue order, stable across run())
     */
    std::size_t enqueue(ServingRequest request);

    /**
     * Serve every queued request to completion and clear the queue.
     * @return per-request outcomes ordered by request id
     */
    std::vector<ServingOutcome> run();

    /** Aggregate statistics of the last run(). */
    const ServingStats &stats() const { return stats_; }

    /**
     * Last run's stats plus per-request records as a JSON object
     * (schema documented in DESIGN.md "Continuous-batching serving").
     */
    std::string metricsJson() const;

    std::size_t slotCount() const { return slots_; }
    std::size_t queuedRequests() const { return queue_.size(); }

  private:
    /** In-flight state of one slot. */
    struct Slot
    {
        bool busy = false;
        std::size_t request = 0;   //!< queue index
        std::size_t fed = 0;       //!< forwards already issued
        std::optional<KvCache> cache;
        std::optional<Sampler> sampler;
    };

    Engine &engine_;
    std::size_t slots_;
    std::vector<ServingRequest> queue_;
    std::size_t nextId_ = 0;
    std::vector<ServingOutcome> outcomes_;
    ServingStats stats_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_SERVING_HH
