/**
 * @file
 * Mixture-of-Experts feed-forward layer (router + SwiGLU experts).
 *
 * Mirrors the gpt-oss structure the paper hardwires: a replicated router
 * projects the normalised hidden state onto expert logits, top-k experts
 * are selected, their SwiGLU outputs are combined with softmax-normalised
 * router weights (paper Fig. 10 (VII)-(IX)).  Dense models degenerate to
 * one always-active expert.
 */

#ifndef HNLPU_XFORMER_MOE_HH
#define HNLPU_XFORMER_MOE_HH

#include <vector>

#include "xformer/linear.hh"
#include "xformer/tensor.hh"

namespace hnlpu {

/** One SwiGLU expert: up, gate and down projections. */
struct Expert
{
    Linear up;
    Linear gate;
    Linear down;
};

/** Routed feed-forward layer. */
class MoeLayer
{
  public:
    /**
     * @param router expert-logit projection (expert_count x hidden);
     *        pass an empty optional-like 0-expert linear for dense nets
     * @param experts expert list (size >= 1)
     * @param active_experts top-k selection width
     */
    MoeLayer(Linear router, std::vector<Expert> experts,
             std::size_t active_experts);

    /** Dense single-expert layer (router bypassed). */
    static MoeLayer dense(Expert expert);

    /**
     * Forward the normalised hidden state under @p ctx.  With ctx.pool
     * set the chosen experts evaluate in parallel into private buffers,
     * then combine serially in routing order, so the result is
     * bit-exact vs serial.  ctx.kernel/ctx.arena drive the expert
     * projections; the router always runs in reference float.  When
     * ctx.sink carries a tracer, "moe.route" / "moe.experts" spans are
     * emitted (cat "moe").
     * @param selected optional out-param for the chosen expert indices
     */
    Vec forward(const Vec &x_norm, const ExecContext &ctx,
                std::vector<std::size_t> *selected = nullptr) const;

    /**
     * Batched forward: every token routes independently (batched
     * reference router, per-token top-k), then tokens that chose the
     * same expert are grouped so that expert's up/gate/down
     * projections traverse their weights once for the whole group
     * (Linear::forwardBatch).  Token t's output is bit-identical to
     * forward(xs[t], ctx): per-column projection exactness plus a
     * combine that still runs in each token's own routing order.
     * @param selected optional per-token chosen expert indices
     */
    std::vector<Vec> forwardBatch(
        const std::vector<Vec> &xs, const ExecContext &ctx,
        std::vector<std::vector<std::size_t>> *selected = nullptr) const;

    /**
     * @deprecated Spread-parameter forms kept for source compatibility;
     * they bundle their arguments into an ExecContext and forward.
     */
    Vec
    forward(const Vec &x_norm, ExecPath path,
            unsigned activation_bits = 8,
            std::vector<std::size_t> *selected = nullptr,
            ThreadPool *pool = nullptr,
            HnKernel kernel = HnKernel::Packed,
            HnScratchArena *arena = nullptr) const
    {
        return forward(x_norm,
                       ExecContext{path, activation_bits, kernel,
                                   nullptr, pool, arena, nullptr},
                       selected);
    }

    /** @copydoc forward(const Vec&,ExecPath,unsigned,std::vector<std::size_t>*,ThreadPool*,HnKernel,HnScratchArena*) const */
    std::vector<Vec>
    forwardBatch(const std::vector<Vec> &xs, ExecPath path,
                 unsigned activation_bits = 8,
                 std::vector<std::vector<std::size_t>> *selected =
                     nullptr,
                 ThreadPool *pool = nullptr,
                 HnKernel kernel = HnKernel::Packed,
                 HnScratchArena *arena = nullptr) const
    {
        return forwardBatch(xs,
                            ExecContext{path, activation_bits, kernel,
                                        nullptr, pool, arena, nullptr},
                            selected);
    }

    std::size_t expertCount() const { return experts_.size(); }
    std::size_t activeExperts() const { return activeExperts_; }

    /** The router projection (bypassed for dense layers). */
    const Linear &router() const { return router_; }
    /** Expert @p index (asserted in moe.cc). */
    const Expert &expert(std::size_t index) const;

  private:
    Linear router_;
    std::vector<Expert> experts_;
    std::size_t activeExperts_;
    bool isDense_;
};

} // namespace hnlpu

#endif // HNLPU_XFORMER_MOE_HH
