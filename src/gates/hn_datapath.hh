/**
 * @file
 * Gate-level synthesis of the bit-serial Hardwired-Neuron datapath.
 *
 * Builds the actual circuit of paper Fig. 4 (2) as a netlist:
 * activation bits stream in serially, each FP4-value region POPCNTs
 * its wired inputs with a carry-save column tree, a serial Horner
 * accumulator per region folds the planes in (subtracting on the sign
 * plane), sixteen CSD shift-add constant multipliers scale the region
 * totals and a ripple-adder tree produces the dot product.  Clocking
 * this netlist for `width` cycles must reproduce
 * HardwiredNeuron::computeReference() bit-exactly -- the RTL-level
 * verification the paper's methodology performs with Verilog.
 */

#ifndef HNLPU_GATES_HN_DATAPATH_HH
#define HNLPU_GATES_HN_DATAPATH_HH

#include <memory>

#include "gates/netlist.hh"
#include "hn/wire_topology.hh"

namespace hnlpu {

/** A synthesised, simulatable Hardwired-Neuron circuit. */
class HnDatapath
{
  public:
    /**
     * Synthesise the neuron for @p topology with @p width-bit
     * activations (streamed MSB first, Horner accumulation).
     */
    HnDatapath(const WireTopology &topology, unsigned width);

    /**
     * Stream @p activations through the circuit (reset, `width`
     * clocks) and return the dot product sum_i (2*w_i) * x_i.
     */
    std::int64_t evaluate(const std::vector<std::int64_t> &activations);

    /** Clock cycles per evaluation. */
    unsigned cyclesPerGemv() const { return width_; }

    /** Structural statistics of the synthesised circuit. */
    NetlistStats stats() const { return netlist_.stats(); }

    const Netlist &netlist() const { return netlist_; }

  private:
    unsigned width_;
    std::size_t inputCount_;
    Netlist netlist_;
    std::vector<NetId> xInputs_;
    NetId firstCycle_ = 0;
    std::vector<NetId> resultBus_;
    std::unique_ptr<GateSim> sim_;
};

} // namespace hnlpu

#endif // HNLPU_GATES_HN_DATAPATH_HH
