#include "gates/hn_datapath.hh"

#include "common/logging.hh"
#include "common/math_util.hh"
#include "arith/bitserial.hh"

namespace hnlpu {

HnDatapath::HnDatapath(const WireTopology &topology, unsigned width)
    : width_(width), inputCount_(topology.tmpl().inputCount)
{
    hnlpu_assert(width_ >= 2 && width_ <= 16, "bad datapath width");

    // External pins: one serial bit line per template input plus the
    // sign-plane strobe.
    xInputs_.reserve(inputCount_);
    for (std::size_t i = 0; i < inputCount_; ++i)
        xInputs_.push_back(netlist_.addInput("x" + std::to_string(i)));
    firstCycle_ = netlist_.addInput("first_cycle");

    // Accumulator width: region counts fit in ceil(log2(n+1)) bits;
    // after `width` Horner doublings the total needs width + count
    // bits plus sign.
    const auto &twice = fp4TwiceValueTable();
    std::vector<std::vector<NetId>> products;

    for (int code = 0; code < kFp4Codes; ++code) {
        const auto &region =
            topology.region(static_cast<std::uint8_t>(code));
        if (region.empty() || twice[code] == 0)
            continue;

        // The metal embedding: route each wired input's serial bit
        // line into this region's POPCNT.
        std::vector<NetId> taps;
        taps.reserve(region.size());
        for (std::uint32_t input : region)
            taps.push_back(xInputs_[input]);
        const std::vector<NetId> count = netlist_.addPopcount(taps);

        // Serial Horner accumulator: acc' = 2*acc +/- count
        // (subtract exactly on the sign plane).
        const std::size_t acc_width = width_ + count.size() + 1;
        std::vector<NetId> acc(acc_width);
        for (auto &q : acc)
            q = netlist_.addDff(netlist_.zero());

        std::vector<NetId> shifted(acc_width);
        shifted[0] = netlist_.zero();
        for (std::size_t i = 1; i < acc_width; ++i)
            shifted[i] = acc[i - 1];

        std::vector<NetId> addend = netlist_.resizeBus(count, acc_width);
        // Counts are unsigned: force the extension bits to zero before
        // the conditional negation.
        for (std::size_t i = count.size(); i < acc_width; ++i)
            addend[i] = netlist_.zero();
        addend = netlist_.addXorAll(addend, firstCycle_);
        const std::vector<NetId> next =
            netlist_.addRippleAdder(shifted, addend, firstCycle_);
        for (std::size_t i = 0; i < acc_width; ++i)
            netlist_.setDffInput(acc[i], next[i]);

        // CSD shift-add constant multiplier for 2*w.
        const std::vector<int> digits = csdDigits(twice[code]);
        const std::size_t prod_width = acc_width + digits.size() + 1;
        std::vector<NetId> product(prod_width, netlist_.zero());
        bool first_term = true;
        for (std::size_t d = 0; d < digits.size(); ++d) {
            if (digits[d] == 0)
                continue;
            // acc << d, sign extended to the product width.
            std::vector<NetId> term(prod_width, netlist_.zero());
            for (std::size_t i = 0; i < prod_width - d; ++i) {
                term[i + d] =
                    i < acc_width ? acc[i] : acc[acc_width - 1];
            }
            if (first_term && digits[d] > 0) {
                product = term;
            } else if (first_term) {
                // Negate: ~term + 1.
                term = netlist_.addXorAll(term, netlist_.one());
                product = netlist_.addRippleAdder(
                    std::vector<NetId>(prod_width, netlist_.zero()),
                    term, netlist_.one());
            } else if (digits[d] > 0) {
                product = netlist_.addRippleAdder(product, term,
                                                  netlist_.zero());
            } else {
                term = netlist_.addXorAll(term, netlist_.one());
                product = netlist_.addRippleAdder(product, term,
                                                  netlist_.one());
            }
            first_term = false;
        }
        products.push_back(std::move(product));
    }

    // Final combinational adder tree over the region products.
    if (products.empty()) {
        resultBus_ = {netlist_.zero()};
    } else {
        std::size_t out_width = 0;
        for (const auto &p : products)
            out_width = std::max(out_width, p.size());
        out_width += ceilLog2(std::max<std::size_t>(products.size(), 2));
        std::vector<NetId> total = netlist_.resizeBus(products.front(),
                                                      out_width);
        for (std::size_t i = 1; i < products.size(); ++i) {
            total = netlist_.addRippleAdder(
                total, netlist_.resizeBus(products[i], out_width),
                netlist_.zero());
        }
        resultBus_ = total;
    }

    sim_ = std::make_unique<GateSim>(netlist_);
}

std::int64_t
HnDatapath::evaluate(const std::vector<std::int64_t> &activations)
{
    hnlpu_assert(activations.size() == inputCount_,
                 "activation count mismatch");
    const std::int64_t lo = -(std::int64_t(1) << (width_ - 1));
    const std::int64_t hi = (std::int64_t(1) << (width_ - 1)) - 1;
    for (std::int64_t v : activations) {
        hnlpu_assert(v >= lo && v <= hi, "activation out of range");
    }

    sim_->reset();
    // Stream MSB first (Horner order); assert the strobe on the sign
    // plane only.
    for (int bit = int(width_) - 1; bit >= 0; --bit) {
        sim_->setInput(firstCycle_, bit == int(width_) - 1);
        for (std::size_t i = 0; i < inputCount_; ++i) {
            const auto u = static_cast<std::uint64_t>(activations[i]);
            sim_->setInput(xInputs_[i], (u >> bit) & 1ULL);
        }
        sim_->step();
    }
    return sim_->readBus(resultBus_);
}

} // namespace hnlpu
