/**
 * @file
 * Gate-level netlist representation and cycle-accurate simulator.
 *
 * The paper implements the HNLPU core in Verilog RTL and verifies it
 * "using extensive test cases" (Section 6.1).  This module is the
 * equivalent layer for our reproduction: a minimal structural netlist
 * (2-input gates, 3-input majority for full adders, D flip-flops) with
 * a two-phase cycle-accurate evaluator.  src/gates/hn_datapath.cc
 * synthesises the bit-serial Hardwired-Neuron datapath into such a
 * netlist, which the tests clock against the functional model.
 *
 * The netlist also yields independent structural statistics (gate and
 * register counts, logic depth) that cross-check the calibrated area
 * constants in src/phys.
 */

#ifndef HNLPU_GATES_NETLIST_HH
#define HNLPU_GATES_NETLIST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hnlpu {

/** Identifies a net (the output of a gate, input or register). */
using NetId = std::uint32_t;

/** Primitive cell types. */
enum class GateOp : std::uint8_t
{
    Const0,
    Const1,
    Input, //!< externally driven
    Not,
    And,
    Or,
    Xor,
    Maj3, //!< majority-of-three (full-adder carry)
    Dff,  //!< D flip-flop, clocked by step()
};

/** Structural statistics of a netlist. */
struct NetlistStats
{
    std::size_t combGates = 0; //!< Not/And/Or/Xor/Maj3
    std::size_t dffs = 0;
    std::size_t inputs = 0;
    std::size_t logicDepth = 0; //!< longest combinational path
    /** Rough transistor estimate (CMOS static cells). */
    std::size_t transistorEstimate = 0;
};

/** A flat gate-level netlist. */
class Netlist
{
  public:
    Netlist();

    /** The constant-0 / constant-1 nets. */
    NetId zero() const { return 0; }
    NetId one() const { return 1; }

    NetId addInput(const std::string &name);
    NetId addNot(NetId a);
    NetId addAnd(NetId a, NetId b);
    NetId addOr(NetId a, NetId b);
    NetId addXor(NetId a, NetId b);
    NetId addMaj3(NetId a, NetId b, NetId c);
    /** D flip-flop initialised to 0; returns its Q net. */
    NetId addDff(NetId d);
    /** Re-point an existing DFF's D input (for feedback loops). */
    void setDffInput(NetId q, NetId d);

    std::size_t netCount() const { return gates_.size(); }
    NetlistStats stats() const;

    // -- word-level convenience builders (ripple-carry structures) -----

    /** a + b + cin as (sum bits, carry-out); widths must match. */
    std::vector<NetId> addRippleAdder(const std::vector<NetId> &a,
                                      const std::vector<NetId> &b,
                                      NetId cin, NetId *cout = nullptr);

    /** Conditionally invert every bit of @p a when @p flip is high. */
    std::vector<NetId> addXorAll(const std::vector<NetId> &a,
                                 NetId flip);

    /** Sign-extend-or-truncate a bus to @p width bits (two's
     *  complement: replicate the MSB). */
    std::vector<NetId> resizeBus(const std::vector<NetId> &a,
                                 std::size_t width) const;

    /** Combinational population count of @p bits (CSA column tree). */
    std::vector<NetId> addPopcount(const std::vector<NetId> &bits);

  private:
    friend class GateSim;

    struct Gate
    {
        GateOp op;
        NetId a = 0, b = 0, c = 0;
        std::string name; //!< inputs only
    };
    std::vector<Gate> gates_;
};

/** Two-phase cycle-accurate evaluator. */
class GateSim
{
  public:
    explicit GateSim(const Netlist &netlist);

    /** Drive an input net. */
    void setInput(NetId input, bool value);

    /** Settle combinational logic (no clock edge). */
    void settle();

    /** Clock edge: settle, then latch every DFF. */
    void step();

    /** Current value of any net (after settle/step). */
    bool read(NetId net) const;

    /** Read a bus as a signed two's-complement integer. */
    std::int64_t readBus(const std::vector<NetId> &bus) const;

    /** Reset all state and inputs to 0. */
    void reset();

  private:
    const Netlist &netlist_;
    std::vector<char> value_;
    std::vector<char> state_;    //!< DFF outputs
    std::vector<NetId> topo_;    //!< combinational evaluation order
};

} // namespace hnlpu

#endif // HNLPU_GATES_NETLIST_HH
