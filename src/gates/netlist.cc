#include "gates/netlist.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hnlpu {

Netlist::Netlist()
{
    gates_.push_back(Gate{GateOp::Const0, 0, 0, 0, ""});
    gates_.push_back(Gate{GateOp::Const1, 0, 0, 0, ""});
}

NetId
Netlist::addInput(const std::string &name)
{
    gates_.push_back(Gate{GateOp::Input, 0, 0, 0, name});
    return NetId(gates_.size() - 1);
}

NetId
Netlist::addNot(NetId a)
{
    hnlpu_assert(a < gates_.size(), "bad net");
    gates_.push_back(Gate{GateOp::Not, a, 0, 0, ""});
    return NetId(gates_.size() - 1);
}

NetId
Netlist::addAnd(NetId a, NetId b)
{
    hnlpu_assert(a < gates_.size() && b < gates_.size(), "bad net");
    gates_.push_back(Gate{GateOp::And, a, b, 0, ""});
    return NetId(gates_.size() - 1);
}

NetId
Netlist::addOr(NetId a, NetId b)
{
    hnlpu_assert(a < gates_.size() && b < gates_.size(), "bad net");
    gates_.push_back(Gate{GateOp::Or, a, b, 0, ""});
    return NetId(gates_.size() - 1);
}

NetId
Netlist::addXor(NetId a, NetId b)
{
    hnlpu_assert(a < gates_.size() && b < gates_.size(), "bad net");
    gates_.push_back(Gate{GateOp::Xor, a, b, 0, ""});
    return NetId(gates_.size() - 1);
}

NetId
Netlist::addMaj3(NetId a, NetId b, NetId c)
{
    hnlpu_assert(a < gates_.size() && b < gates_.size() &&
                     c < gates_.size(),
                 "bad net");
    gates_.push_back(Gate{GateOp::Maj3, a, b, c, ""});
    return NetId(gates_.size() - 1);
}

NetId
Netlist::addDff(NetId d)
{
    hnlpu_assert(d < gates_.size(), "bad net");
    gates_.push_back(Gate{GateOp::Dff, d, 0, 0, ""});
    return NetId(gates_.size() - 1);
}

void
Netlist::setDffInput(NetId q, NetId d)
{
    hnlpu_assert(q < gates_.size() && gates_[q].op == GateOp::Dff,
                 "not a DFF");
    hnlpu_assert(d < gates_.size(), "bad net");
    gates_[q].a = d;
}

NetlistStats
Netlist::stats() const
{
    NetlistStats stats;
    std::vector<std::size_t> depth(gates_.size(), 0);
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const Gate &g = gates_[i];
        switch (g.op) {
          case GateOp::Const0:
          case GateOp::Const1:
            break;
          case GateOp::Input:
            ++stats.inputs;
            break;
          case GateOp::Dff:
            ++stats.dffs;
            stats.transistorEstimate += 24;
            break;
          case GateOp::Not:
            ++stats.combGates;
            stats.transistorEstimate += 2;
            depth[i] = depth[g.a] + 1;
            break;
          case GateOp::And:
          case GateOp::Or:
            ++stats.combGates;
            stats.transistorEstimate += 6;
            depth[i] = std::max(depth[g.a], depth[g.b]) + 1;
            break;
          case GateOp::Xor:
            ++stats.combGates;
            stats.transistorEstimate += 8;
            depth[i] = std::max(depth[g.a], depth[g.b]) + 1;
            break;
          case GateOp::Maj3:
            ++stats.combGates;
            stats.transistorEstimate += 10;
            depth[i] = std::max({depth[g.a], depth[g.b], depth[g.c]}) +
                       1;
            break;
        }
        stats.logicDepth = std::max(stats.logicDepth, depth[i]);
    }
    return stats;
}

std::vector<NetId>
Netlist::addRippleAdder(const std::vector<NetId> &a,
                        const std::vector<NetId> &b, NetId cin,
                        NetId *cout)
{
    hnlpu_assert(a.size() == b.size() && !a.empty(),
                 "adder width mismatch");
    std::vector<NetId> sum(a.size());
    NetId carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const NetId axb = addXor(a[i], b[i]);
        sum[i] = addXor(axb, carry);
        carry = addMaj3(a[i], b[i], carry);
    }
    if (cout)
        *cout = carry;
    return sum;
}

std::vector<NetId>
Netlist::addXorAll(const std::vector<NetId> &a, NetId flip)
{
    std::vector<NetId> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = addXor(a[i], flip);
    return out;
}

std::vector<NetId>
Netlist::resizeBus(const std::vector<NetId> &a, std::size_t width) const
{
    hnlpu_assert(!a.empty(), "empty bus");
    std::vector<NetId> out = a;
    if (out.size() > width) {
        out.resize(width);
    } else {
        while (out.size() < width)
            out.push_back(a.back()); // sign extension
    }
    return out;
}

std::vector<NetId>
Netlist::addPopcount(const std::vector<NetId> &bits)
{
    if (bits.empty())
        return {zero()};
    // Column compression: columns[w] holds wires of weight 2^w.
    std::vector<std::vector<NetId>> columns{bits};
    bool reduced = true;
    while (reduced) {
        reduced = false;
        std::vector<std::vector<NetId>> next(columns.size() + 1);
        for (std::size_t w = 0; w < columns.size(); ++w) {
            auto &col = columns[w];
            std::size_t i = 0;
            for (; i + 3 <= col.size(); i += 3) {
                next[w].push_back(addXor(addXor(col[i], col[i + 1]),
                                         col[i + 2]));
                next[w + 1].push_back(
                    addMaj3(col[i], col[i + 1], col[i + 2]));
                reduced = true;
            }
            if (col.size() - i == 2) {
                next[w].push_back(addXor(col[i], col[i + 1]));
                next[w + 1].push_back(addAnd(col[i], col[i + 1]));
                reduced = true;
                i += 2;
            }
            for (; i < col.size(); ++i)
                next[w].push_back(col[i]);
        }
        while (!next.empty() && next.back().empty())
            next.pop_back();
        columns.swap(next);
    }
    std::vector<NetId> out;
    for (const auto &col : columns) {
        hnlpu_assert(col.size() <= 1, "popcount not fully reduced");
        out.push_back(col.empty() ? zero() : col.front());
    }
    return out;
}

GateSim::GateSim(const Netlist &netlist)
    : netlist_(netlist), value_(netlist.gates_.size(), 0),
      state_(netlist.gates_.size(), 0)
{
    // Combinational nets are created in topological order by
    // construction (every gate references earlier nets), so the
    // evaluation order is simply ascending id.  DFF feedback is legal
    // because DFFs read `state_`, not `value_`, breaking cycles.
    topo_.reserve(netlist_.gates_.size());
    for (NetId i = 0; i < netlist_.gates_.size(); ++i)
        topo_.push_back(i);
    settle();
}

void
GateSim::setInput(NetId input, bool v)
{
    hnlpu_assert(netlist_.gates_[input].op == GateOp::Input,
                 "not an input net");
    value_[input] = v;
}

void
GateSim::settle()
{
    for (NetId i : topo_) {
        const Netlist::Gate &g = netlist_.gates_[i];
        switch (g.op) {
          case GateOp::Const0: value_[i] = 0; break;
          case GateOp::Const1: value_[i] = 1; break;
          case GateOp::Input: break; // externally driven
          case GateOp::Not: value_[i] = !value_[g.a]; break;
          case GateOp::And:
            value_[i] = value_[g.a] && value_[g.b];
            break;
          case GateOp::Or:
            value_[i] = value_[g.a] || value_[g.b];
            break;
          case GateOp::Xor:
            value_[i] = value_[g.a] != value_[g.b];
            break;
          case GateOp::Maj3:
            value_[i] = (int(value_[g.a]) + int(value_[g.b]) +
                         int(value_[g.c])) >= 2;
            break;
          case GateOp::Dff: value_[i] = state_[i]; break;
        }
    }
}

void
GateSim::step()
{
    settle();
    // Latch: every DFF captures its D input as computed this cycle.
    for (NetId i = 0; i < netlist_.gates_.size(); ++i) {
        const Netlist::Gate &g = netlist_.gates_[i];
        if (g.op == GateOp::Dff)
            state_[i] = value_[g.a];
    }
    settle();
}

bool
GateSim::read(NetId net) const
{
    hnlpu_assert(net < value_.size(), "bad net");
    return value_[net];
}

std::int64_t
GateSim::readBus(const std::vector<NetId> &bus) const
{
    hnlpu_assert(!bus.empty() && bus.size() <= 63, "bad bus width");
    std::uint64_t raw = 0;
    for (std::size_t i = 0; i < bus.size(); ++i) {
        if (read(bus[i]))
            raw |= std::uint64_t(1) << i;
    }
    // Sign extend from the top bus bit.
    if (read(bus.back())) {
        for (std::size_t i = bus.size(); i < 64; ++i)
            raw |= std::uint64_t(1) << i;
    }
    return static_cast<std::int64_t>(raw);
}

void
GateSim::reset()
{
    std::fill(value_.begin(), value_.end(), 0);
    std::fill(state_.begin(), state_.end(), 0);
    settle();
}

} // namespace hnlpu
