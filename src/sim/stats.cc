#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hnlpu {

void
Accumulator::add(double sample)
{
    ++count_;
    sum_ += sample;
    sumSq_ += sample * sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Accumulator::variance() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? var : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    hnlpu_assert(hi > lo && bins > 0, "bad histogram shape");
}

Histogram
Histogram::fromSamples(const std::vector<double> &samples,
                       std::size_t bins)
{
    if (samples.empty())
        return Histogram(0.0, 1.0, bins);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const double s : samples) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    // hi is exclusive: nudge it above the maximum so the largest sample
    // falls in the top bin rather than the overflow bucket.
    double span = hi - lo;
    if (!(span > 0.0))
        span = std::max(std::abs(hi), 1.0) * 1e-9;
    double hi2 = hi + std::max(span * 1e-6, std::abs(hi) * 1e-12);
    if (!(hi2 > hi))
        hi2 = std::nextafter(hi, std::numeric_limits<double>::infinity());
    Histogram h(lo, hi2, bins);
    for (const double s : samples)
        h.add(s);
    return h;
}

void
Histogram::add(double sample)
{
    ++total_;
    if (sample < lo_) {
        ++underflow_;
        return;
    }
    if (sample >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (sample - lo_) / (hi_ - lo_);
    const auto bin = static_cast<std::size_t>(
        frac * static_cast<double>(counts_.size()));
    counts_[std::min(bin, counts_.size() - 1)]++;
}

std::uint64_t
Histogram::binCount(std::size_t bin) const
{
    hnlpu_assert(bin < counts_.size(), "bin out of range");
    return counts_[bin];
}

double
Histogram::quantile(double q) const
{
    hnlpu_assert(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (total_ == 0)
        return lo_;
    const double target = q * static_cast<double>(total_);
    double running = static_cast<double>(underflow_);
    if (running >= target)
        return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        running += static_cast<double>(counts_[b]);
        if (running >= target)
            return lo_ + (static_cast<double>(b) + 0.5) * width;
    }
    return hi_;
}

} // namespace hnlpu
