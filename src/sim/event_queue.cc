#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace hnlpu {

void
EventQueue::schedule(Tick when, Callback cb)
{
    hnlpu_assert(when >= now_, "scheduling into the past: ", when,
                 " < ", now_);
    events_.push(Event{when, seq_++, std::move(cb)});
}

void
EventQueue::scheduleIn(Tick delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

void
EventQueue::run(Tick until)
{
    stopped_ = false;
    while (!events_.empty() && !stopped_) {
        // priority_queue::top returns const ref; move via const_cast is
        // the standard idiom but copying the callback keeps this simple
        // and safe.
        Event ev = events_.top();
        if (ev.when > until)
            break;
        events_.pop();
        now_ = ev.when;
        ++executed_;
        ev.cb();
    }
    if (events_.empty() && until != ~Tick(0) && now_ < until)
        now_ = until;
}

} // namespace hnlpu
