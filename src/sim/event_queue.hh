/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal tick-based event queue in the gem5 tradition: events are
 * (tick, sequence, callback) triples executed in deterministic order.
 * The pipeline simulator mostly uses TimelineResource scheduling (exact
 * for FIFO systems), but the event kernel underpins the queueing
 * validation tests and any future reactive models.
 */

#ifndef HNLPU_SIM_EVENT_QUEUE_HH
#define HNLPU_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hh"

namespace hnlpu {

/** Deterministic tick-ordered event executor. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback cb);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Run until the queue drains or @p until is reached. */
    void run(Tick until = ~Tick(0));

    /** Stop after the current event. */
    void stop() { stopped_ = true; }

    /** Pending event count. */
    std::size_t pending() const { return events_.size(); }

    /** Total events executed. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
};

} // namespace hnlpu

#endif // HNLPU_SIM_EVENT_QUEUE_HH
