/**
 * @file
 * Lightweight statistics accumulators for the simulators.
 */

#ifndef HNLPU_SIM_STATS_HH
#define HNLPU_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hnlpu {

/** Running scalar accumulator: count / sum / min / max / mean / stddev. */
class Accumulator
{
  public:
    void add(double sample);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bin histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /**
     * Build a histogram spanning exactly the observed samples: lo is
     * the minimum, hi sits just above the maximum so no sample lands in
     * the overflow bucket.  With a generous bin count this gives
     * quantile() a resolution of (max-min)/bins, which is how the
     * serving layer reports its p50/p95 latencies.  An empty sample set
     * yields an empty histogram over [0, 1).
     */
    static Histogram fromSamples(const std::vector<double> &samples,
                                 std::size_t bins);

    void add(double sample);

    std::uint64_t binCount(std::size_t bin) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    std::size_t bins() const { return counts_.size(); }

    /** Approximate quantile from bin midpoints (q in [0,1]). */
    double quantile(double q) const;

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace hnlpu

#endif // HNLPU_SIM_STATS_HH
