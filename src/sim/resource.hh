/**
 * @file
 * Timeline resources: exact FIFO schedulability for static pipelines.
 *
 * The HNLPU executes a fixed, software-free schedule; every shared unit
 * (CXL link, VEX engine, HBM channel, pipeline stage hardware) serves
 * requests in arrival order.  For such systems, greedy timeline
 * scheduling (each request starts at max(ready, resource-free)) yields
 * the exact same timings as full event simulation, at a fraction of the
 * cost.  Utilisation counters feed the breakdown and power models.
 */

#ifndef HNLPU_SIM_RESOURCE_HH
#define HNLPU_SIM_RESOURCE_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace hnlpu {

/** A single-server FIFO resource on the global tick timeline. */
class TimelineResource
{
  public:
    explicit TimelineResource(std::string name = "resource");

    /**
     * Acquire the resource for @p duration at the earliest point at or
     * after @p ready.
     * @return the tick at which service actually starts
     */
    Tick acquire(Tick ready, Tick duration);

    /** Tick at which the resource next becomes free. */
    Tick freeAt() const { return freeAt_; }

    /** Total busy ticks served. */
    Tick busyTicks() const { return busy_; }

    /** Total ticks requests spent waiting beyond their ready time. */
    Tick waitTicks() const { return waited_; }

    /** Requests served. */
    std::uint64_t requests() const { return requests_; }

    /** Utilisation over [0, horizon]. */
    double utilization(Tick horizon) const;

    const std::string &name() const { return name_; }

    /** Forget all history (fresh timeline). */
    void reset();

  private:
    std::string name_;
    Tick freeAt_ = 0;
    Tick busy_ = 0;
    Tick waited_ = 0;
    std::uint64_t requests_ = 0;
};

/**
 * A pool of identical single-server resources with least-loaded
 * dispatch (models multi-ported units such as banked SRAM groups).
 */
class ResourcePool
{
  public:
    ResourcePool(std::string name, std::size_t servers);

    /** Acquire any server; earliest-available wins. */
    Tick acquire(Tick ready, Tick duration);

    Tick busyTicks() const;
    std::uint64_t requests() const;
    std::size_t size() const { return servers_.size(); }

  private:
    std::string name_;
    std::vector<TimelineResource> servers_;
};

} // namespace hnlpu

#endif // HNLPU_SIM_RESOURCE_HH
