#include "sim/resource.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hnlpu {

TimelineResource::TimelineResource(std::string name)
    : name_(std::move(name))
{
}

Tick
TimelineResource::acquire(Tick ready, Tick duration)
{
    const Tick start = std::max(ready, freeAt_);
    waited_ += start - ready;
    freeAt_ = start + duration;
    busy_ += duration;
    ++requests_;
    return start;
}

double
TimelineResource::utilization(Tick horizon) const
{
    if (horizon == 0)
        return 0.0;
    return static_cast<double>(busy_) / static_cast<double>(horizon);
}

void
TimelineResource::reset()
{
    freeAt_ = 0;
    busy_ = 0;
    waited_ = 0;
    requests_ = 0;
}

ResourcePool::ResourcePool(std::string name, std::size_t servers)
    : name_(std::move(name))
{
    hnlpu_assert(servers > 0, "resource pool needs servers");
    servers_.reserve(servers);
    for (std::size_t i = 0; i < servers; ++i)
        servers_.emplace_back(name_ + "[" + std::to_string(i) + "]");
}

Tick
ResourcePool::acquire(Tick ready, Tick duration)
{
    TimelineResource *best = &servers_.front();
    for (auto &server : servers_) {
        if (server.freeAt() < best->freeAt())
            best = &server;
    }
    return best->acquire(ready, duration);
}

Tick
ResourcePool::busyTicks() const
{
    Tick total = 0;
    for (const auto &server : servers_)
        total += server.busyTicks();
    return total;
}

std::uint64_t
ResourcePool::requests() const
{
    std::uint64_t total = 0;
    for (const auto &server : servers_)
        total += server.requests();
    return total;
}

} // namespace hnlpu
