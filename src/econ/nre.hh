/**
 * @file
 * HNLPU cost model: recurring per-chip cost, non-recurring engineering
 * and build/re-spin scenarios (paper Table 5 and Table 4).
 */

#ifndef HNLPU_ECON_NRE_HH
#define HNLPU_ECON_NRE_HH

#include "litho/mask_stack.hh"
#include "litho/wafer.hh"
#include "model/transformer_config.hh"
#include "phys/chip_floorplan.hh"

namespace hnlpu {

/** Per-chip recurring manufacturing cost inputs (Appendix B note 3). */
struct RecurringCostParams
{
    /** Packaging and test per wafer (2.5D integration). */
    CostRange packageTestPerWafer{3000.0, 5000.0};
    /** HBM price per GB. */
    CostRange hbmPerGB{10.0, 20.0};
    /** HBM capacity per module (8 stacks x 24 GB). */
    double hbmGB = 192.0;
    /** Chassis, board, cooling, power, CXL per chip. */
    CostRange systemIntegrationPerChip{1900.0, 3800.0};
};

/** Design & development NRE inputs (Appendix B, Table 5). */
struct DesignCostParams
{
    CostRange architecture{1.87e6, 3.74e6};
    CostRange verification{9.97e6, 19.93e6};
    CostRange physical{4.80e6, 14.41e6};
    CostRange ip{10.23e6, 20.46e6};

    CostRange total() const
    {
        return architecture + verification + physical + ip;
    }
};

/** The assembled Table 5 for one design point. */
struct HnlpuCostBreakdown
{
    // Recurring ($/chip).
    Dollars waferPerChip = 0;
    CostRange packageTestPerChip;
    CostRange hbmPerChip;
    CostRange systemIntegrationPerChip;
    CostRange recurringPerChip() const;
    CostRange recurringPerNode(std::size_t chips) const;

    // Non-recurring.
    CostRange homogeneousMask;
    CostRange metalEmbeddingMask; //!< all chip variants
    CostRange designDevelopment;
    CostRange totalNre() const;

    std::size_t chipCount = 0;

    /** Initial build: full NRE + recurring for @p nodes systems. */
    CostRange initialBuild(std::size_t nodes) const;
    /** Weight-update re-spin: ME masks + recurring for @p nodes. */
    CostRange respin(std::size_t nodes) const;
};

/** Computes Table 5 / Table 4 style breakdowns. */
class HnlpuCostModel
{
  public:
    /**
     * @param repair spare-neuron repair budget; lifts effective yield
     *        (litho::WaferModel::effectiveYield), lowering the wafer
     *        share of every recurring cost.  Defaults to no repair,
     *        which reproduces the paper's Table 5 numbers exactly.
     */
    HnlpuCostModel(TechnologyParams tech, MaskStack masks,
                   RecurringCostParams recurring = RecurringCostParams{},
                   DesignCostParams design = DesignCostParams{},
                   SpareRepairParams repair = SpareRepairParams{});

    /**
     * Cost breakdown for hardwiring @p model.
     * @param chip_count chips in the system (0 = derive from the
     *        gpt-oss-calibrated per-chip weight capacity)
     * @param die_area per-chip die area for wafer economics (0 = use
     *        the gpt-oss chip's 827 mm^2)
     */
    HnlpuCostBreakdown breakdown(const TransformerConfig &model,
                                 std::size_t chip_count = 0,
                                 AreaMm2 die_area = 0) const;

    /** Chips needed to hardwire @p model (Table 4 scaling). */
    std::size_t chipsForModel(const TransformerConfig &model) const;

    /** The Section 2.2 strawman mask bill for @p model. */
    Dollars strawmanMaskCost(const TransformerConfig &model) const;

    const MaskStack &masks() const { return masks_; }
    const WaferModel &wafers() const { return wafers_; }
    const SpareRepairParams &repair() const { return repair_; }

  private:
    TechnologyParams tech_;
    MaskStack masks_;
    WaferModel wafers_;
    RecurringCostParams recurring_;
    DesignCostParams design_;
    SpareRepairParams repair_;
};

} // namespace hnlpu

#endif // HNLPU_ECON_NRE_HH
