#include "econ/carbon.hh"

#include "common/logging.hh"
#include "econ/tco.hh"

namespace hnlpu {

CarbonModel::CarbonModel(const TcoParams &params)
    : embodiedKgPerUnit_(params.embodiedKgPerUnit),
      gridKgPerKWh_(params.gridKgPerKWh)
{
}

TonnesCO2e
CarbonModel::embodied(double units) const
{
    hnlpu_assert(units >= 0, "negative unit count");
    return units * embodiedKgPerUnit_ / 1000.0;
}

TonnesCO2e
CarbonModel::operational(double facility_mw, double years) const
{
    const double kwh = facility_mw * 1000.0 * 8760.0 * years;
    return kwh * gridKgPerKWh_ / 1000.0;
}

TonnesCO2e
CarbonModel::total(double units, double facility_mw, double years) const
{
    return embodied(units) + operational(facility_mw, years);
}

} // namespace hnlpu
