/**
 * @file
 * Three-year Total Cost of Ownership model (paper Table 3 / App. B).
 *
 * Compares an HNLPU deployment against a throughput-equivalent H100
 * cluster: CapEx (nodes, networking, facility construction), OpEx
 * (electricity, maintenance & support) and re-spin costs under a static
 * (no updates) or dynamic (annual weight updates) model.
 */

#ifndef HNLPU_ECON_TCO_HH
#define HNLPU_ECON_TCO_HH

#include "econ/nre.hh"

namespace hnlpu {

/** Deployment-level economic constants (Appendix B notes 1-7). */
struct TcoParams
{
    double lifetimeYears = 3.0;
    double facilityPue = 1.4;

    // H100 cluster.
    Dollars h100NodePrice = 320e3;       //!< HGX node, 8 GPUs, 3y warranty
    std::size_t gpusPerNode = 8;
    Watts h100PowerPerGpu = 1300.0;      //!< IT power incl. server share
    Dollars h100NetworkPerNode = 45e3;   //!< NICs, switches, optics
    double h100MaintenanceFraction = 0.05; //!< of HW CapEx per year
    Dollars h100LicensePerGpuYear = 5592.0; //!< NVIDIA AI Enterprise

    // HNLPU node.
    Watts hnlpuNodePower = 6908.0;       //!< 16 chips + module overhead
    Dollars hnlpuNetworkPerChip = 5630.0;
    std::size_t hnlpuSparesLowVolume = 1;
    std::size_t hnlpuSparesHighVolume = 5;

    // Shared.
    Dollars facilityPerMW = 12e6;        //!< construction per MW IT load
    Dollars electricityPerKWh = 0.095;
    /** Throughput equivalence: H100 GPUs per HNLPU node. */
    double h100PerHnlpuNode = 2000.0;

    // Carbon (Appendix B note 8).
    double embodiedKgPerUnit = 124.9;    //!< per H100 card / HNLPU module
    double gridKgPerKWh = 0.38;
};

/** One column of Table 3. */
struct TcoReport
{
    double systems = 0;          //!< HNLPU nodes or H100 GPUs
    double datacenterPowerMW = 0;

    CostRange nodePrice;         //!< hardware (for HNLPU: NRE+recurring)
    CostRange infrastructure;    //!< network + facility construction
    CostRange initialCapex;
    CostRange respinCost;        //!< per weight-update re-spin

    CostRange electricity;       //!< 3-year
    CostRange maintenance;       //!< 3-year

    CostRange tcoStatic;         //!< no weight updates
    CostRange tcoDynamic;        //!< annual updates (2 re-spins)

    TonnesCO2e emissionsStatic = 0;
    TonnesCO2e emissionsDynamic = 0;
};

/** Builds Table 3 columns. */
class TcoModel
{
  public:
    TcoModel(HnlpuCostModel cost_model, TcoParams params = TcoParams{});

    /** HNLPU deployment of @p nodes systems serving @p model. */
    TcoReport hnlpu(const TransformerConfig &model,
                    std::size_t nodes) const;

    /** Throughput-equivalent H100 cluster of @p gpus cards. */
    TcoReport h100(double gpus) const;

    const TcoParams &params() const { return params_; }

  private:
    HnlpuCostModel costModel_;
    TcoParams params_;
};

} // namespace hnlpu

#endif // HNLPU_ECON_TCO_HH
