#include "econ/nre.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "phys/area_model.hh"

namespace hnlpu {

namespace {

/** Weight capacity of one chip, calibrated so gpt-oss 120 B fills
 *  exactly the paper's 16 chips (827 mm^2 each). */
constexpr std::uint64_t kParamsPerChip = 7'311'744'000ULL;

/** Non-HN chip area (VEX, buffer, interconnect, PHY, control). */
constexpr AreaMm2 kChipOverheadArea = 253.92;

} // namespace

CostRange
HnlpuCostBreakdown::recurringPerChip() const
{
    return CostRange{waferPerChip, waferPerChip} + packageTestPerChip +
           hbmPerChip + systemIntegrationPerChip;
}

CostRange
HnlpuCostBreakdown::recurringPerNode(std::size_t chips) const
{
    return recurringPerChip() * double(chips);
}

CostRange
HnlpuCostBreakdown::totalNre() const
{
    return homogeneousMask + metalEmbeddingMask + designDevelopment;
}

CostRange
HnlpuCostBreakdown::initialBuild(std::size_t nodes) const
{
    return totalNre() +
           recurringPerNode(chipCount) * double(nodes);
}

CostRange
HnlpuCostBreakdown::respin(std::size_t nodes) const
{
    return metalEmbeddingMask +
           recurringPerNode(chipCount) * double(nodes);
}

HnlpuCostModel::HnlpuCostModel(TechnologyParams tech, MaskStack masks,
                               RecurringCostParams recurring,
                               DesignCostParams design,
                               SpareRepairParams repair)
    : tech_(tech), masks_(masks), wafers_(tech), recurring_(recurring),
      design_(design), repair_(repair)
{
    repair_.validate();
}

std::size_t
HnlpuCostModel::chipsForModel(const TransformerConfig &model) const
{
    return std::max<std::size_t>(
        1, ceilDiv<std::uint64_t>(model.totalParams(), kParamsPerChip));
}

HnlpuCostBreakdown
HnlpuCostModel::breakdown(const TransformerConfig &model,
                          std::size_t chip_count, AreaMm2 die_area) const
{
    HnlpuCostBreakdown bd;
    bd.chipCount = chip_count > 0 ? chip_count : chipsForModel(model);

    if (die_area <= 0) {
        AreaModel area(tech_);
        const double params_per_chip =
            double(model.totalParams()) / double(bd.chipCount);
        die_area = std::min(area.metalEmbedding(params_per_chip) +
                                kChipOverheadArea,
                            WaferModel::kReticleLimit);
    }

    const WaferEconomics wafer = wafers_.economics(die_area, repair_);
    bd.waferPerChip = wafer.costPerGoodDie;
    bd.packageTestPerChip =
        recurring_.packageTestPerWafer * (1.0 / wafer.goodDiesPerWafer);
    bd.hbmPerChip = recurring_.hbmPerGB * recurring_.hbmGB;
    bd.systemIntegrationPerChip = recurring_.systemIntegrationPerChip;

    bd.homogeneousMask = masks_.homogeneousCost();
    bd.metalEmbeddingMask =
        masks_.metalEmbeddingCostPerChip() * double(bd.chipCount);
    // Design & development effort grows sub-linearly with system size:
    // verification/physical scale with the chip count relative to the
    // 16-chip gpt-oss baseline (the paper's Table 4 is fit this way;
    // see EXPERIMENTS.md for the residuals).
    const double design_scale =
        std::sqrt(double(bd.chipCount) / 16.0);
    bd.designDevelopment = design_.total() * design_scale;
    return bd;
}

Dollars
HnlpuCostModel::strawmanMaskCost(const TransformerConfig &model) const
{
    AreaModel area(tech_);
    const AreaMm2 total = area.cmacStrawman(double(model.totalParams()));
    const auto chips = static_cast<std::size_t>(
        std::ceil(total / WaferModel::kReticleLimit));
    return masks_.strawmanCost(chips);
}

} // namespace hnlpu
