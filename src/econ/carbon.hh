/**
 * @file
 * Carbon-footprint model (paper Appendix B, note 8): embodied
 * manufacturing emissions plus operational grid emissions.
 */

#ifndef HNLPU_ECON_CARBON_HH
#define HNLPU_ECON_CARBON_HH

#include "common/units.hh"

namespace hnlpu {

struct TcoParams;

/** Computes tCO2e from unit counts and facility power. */
class CarbonModel
{
  public:
    explicit CarbonModel(const TcoParams &params);

    /** Embodied emissions of @p units manufactured cards/modules. */
    TonnesCO2e embodied(double units) const;

    /** Operational emissions of @p facility_mw over @p years. */
    TonnesCO2e operational(double facility_mw, double years) const;

    /** Embodied + operational. */
    TonnesCO2e total(double units, double facility_mw,
                     double years) const;

  private:
    double embodiedKgPerUnit_;
    double gridKgPerKWh_;
};

} // namespace hnlpu

#endif // HNLPU_ECON_CARBON_HH
