#include "econ/tco.hh"

#include "common/logging.hh"
#include "econ/carbon.hh"

namespace hnlpu {

namespace {

constexpr double kHoursPerYear = 8760.0;

} // namespace

TcoModel::TcoModel(HnlpuCostModel cost_model, TcoParams params)
    : costModel_(std::move(cost_model)), params_(params)
{
}

TcoReport
TcoModel::hnlpu(const TransformerConfig &model, std::size_t nodes) const
{
    const auto bd = costModel_.breakdown(model);
    TcoReport r;
    r.systems = double(nodes);

    const double it_power_mw =
        params_.hnlpuNodePower * double(nodes) / 1e6;
    r.datacenterPowerMW = it_power_mw * params_.facilityPue;

    r.nodePrice = bd.initialBuild(nodes);
    const Dollars network = params_.hnlpuNetworkPerChip *
                            double(bd.chipCount) * double(nodes);
    const Dollars facility = params_.facilityPerMW * r.datacenterPowerMW;
    r.infrastructure = CostRange{network + facility, network + facility};
    r.initialCapex = r.nodePrice + r.infrastructure;
    r.respinCost = bd.respin(nodes);

    const double energy_kwh = r.datacenterPowerMW * 1000.0 *
                              kHoursPerYear * params_.lifetimeYears;
    const Dollars elec = energy_kwh * params_.electricityPerKWh;
    r.electricity = CostRange{elec, elec};

    const std::size_t spares = nodes <= 1
                                   ? params_.hnlpuSparesLowVolume
                                   : params_.hnlpuSparesHighVolume;
    r.maintenance = bd.recurringPerNode(bd.chipCount) * double(spares);

    r.tcoStatic = r.initialCapex + r.electricity + r.maintenance;
    // Annual updates over a 3-year lifetime: two re-spins.
    r.tcoDynamic = r.tcoStatic + r.respinCost * 2.0;

    CarbonModel carbon(params_);
    const double modules = double(bd.chipCount) * double(nodes);
    r.emissionsStatic =
        carbon.total(modules, r.datacenterPowerMW,
                     params_.lifetimeYears);
    r.emissionsDynamic =
        r.emissionsStatic + carbon.embodied(2.0 * modules);
    return r;
}

TcoReport
TcoModel::h100(double gpus) const
{
    hnlpu_assert(gpus > 0, "empty cluster");
    TcoReport r;
    r.systems = gpus;
    const double nodes = gpus / double(params_.gpusPerNode);

    const double it_power_mw = params_.h100PowerPerGpu * gpus / 1e6;
    r.datacenterPowerMW = it_power_mw * params_.facilityPue;

    const Dollars hw = params_.h100NodePrice * nodes;
    r.nodePrice = CostRange{hw, hw};
    const Dollars network = params_.h100NetworkPerNode * nodes;
    const Dollars facility = params_.facilityPerMW * r.datacenterPowerMW;
    r.infrastructure = CostRange{network + facility, network + facility};
    r.initialCapex = r.nodePrice + r.infrastructure;
    r.respinCost = CostRange{0.0, 0.0}; // model swaps are free on GPUs

    const double energy_kwh = r.datacenterPowerMW * 1000.0 *
                              kHoursPerYear * params_.lifetimeYears;
    const Dollars elec = energy_kwh * params_.electricityPerKWh;
    r.electricity = CostRange{elec, elec};

    const Dollars maint =
        params_.h100MaintenanceFraction * (hw + network) *
            params_.lifetimeYears +
        params_.h100LicensePerGpuYear * gpus * params_.lifetimeYears;
    r.maintenance = CostRange{maint, maint};

    r.tcoStatic = r.initialCapex + r.electricity + r.maintenance;
    r.tcoDynamic = r.tcoStatic;

    CarbonModel carbon(params_);
    r.emissionsStatic = carbon.total(gpus, r.datacenterPowerMW,
                                     params_.lifetimeYears);
    r.emissionsDynamic = r.emissionsStatic;
    return r;
}

} // namespace hnlpu
