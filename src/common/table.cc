#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace hnlpu {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    hnlpu_assert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    hnlpu_assert(cells.size() == headers_.size(),
                 "row arity ", cells.size(), " != header arity ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    measure(headers_);
    for (const auto &row : rows_) {
        if (!row.empty())
            measure(row);
    }

    auto renderRow = [&](const std::vector<std::string> &row,
                         std::ostringstream &oss) {
        oss << "|";
        for (std::size_t i = 0; i < row.size(); ++i) {
            oss << " " << row[i]
                << std::string(widths[i] - row[i].size(), ' ') << " |";
        }
        oss << "\n";
    };
    auto renderSep = [&](std::ostringstream &oss) {
        oss << "+";
        for (std::size_t w : widths)
            oss << std::string(w + 2, '-') << "+";
        oss << "\n";
    };

    std::ostringstream oss;
    renderSep(oss);
    renderRow(headers_, oss);
    renderSep(oss);
    for (const auto &row : rows_) {
        if (row.empty())
            renderSep(oss);
        else
            renderRow(row, oss);
    }
    renderSep(oss);
    return oss.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace hnlpu
