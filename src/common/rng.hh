/**
 * @file
 * Deterministic random number generation used across simulators and
 * synthetic-weight generators.
 *
 * All stochastic components take an explicit Rng so that runs are
 * reproducible from a single seed.  The implementation is xoshiro256**
 * which is fast, high quality and has a stable cross-platform stream
 * (std::mt19937 streams are also stable, but distributions are not; we
 * implement our own draw helpers for full determinism).
 */

#ifndef HNLPU_COMMON_RNG_HH
#define HNLPU_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace hnlpu {

/** xoshiro256** deterministic generator with explicit draw helpers. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal via Box-Muller (deterministic pairing). */
    double gaussian();

    /** Gaussian with mean/stddev. */
    double gaussian(double mean, double stddev);

    /** Sample an index from unnormalised non-negative weights. */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of [0, n) index vector. */
    std::vector<std::size_t> permutation(std::size_t n);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace hnlpu

#endif // HNLPU_COMMON_RNG_HH
