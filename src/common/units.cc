#include "common/units.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace hnlpu {

Tick
toTicks(Seconds s)
{
    hnlpu_assert(s >= 0.0, "negative time ", s);
    return static_cast<Tick>(std::llround(s * kTicksPerSecond));
}

Seconds
toSeconds(Tick t)
{
    return static_cast<Seconds>(t) / kTicksPerSecond;
}

std::string
siString(double value, const std::string &unit, int digits)
{
    struct Prefix { double scale; const char *name; };
    static const Prefix prefixes[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
        {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
    };
    double mag = std::fabs(value);
    const Prefix *chosen = &prefixes[4];
    if (mag > 0) {
        for (const auto &p : prefixes) {
            if (mag >= p.scale) {
                chosen = &p;
                break;
            }
        }
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g %s%s", digits,
                  value / chosen->scale, chosen->name, unit.c_str());
    return buf;
}

std::string
dollarString(Dollars value, int digits)
{
    std::string s = siString(value, "", digits);
    // Dollar amounts conventionally attach the prefix to the number
    // ("$ 59.46M"), so drop the space siString puts before the prefix.
    std::string out;
    for (char c : s) {
        if (c != ' ')
            out.push_back(c);
    }
    return "$ " + out;
}

std::string
commaString(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    std::string digits(buf);
    std::string frac;
    auto dot = digits.find('.');
    if (dot != std::string::npos) {
        frac = digits.substr(dot);
        digits = digits.substr(0, dot);
    }
    bool negative = !digits.empty() && digits[0] == '-';
    std::string body = negative ? digits.substr(1) : digits;
    std::string out;
    int count = 0;
    for (auto it = body.rbegin(); it != body.rend(); ++it) {
        if (count > 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::string result(out.rbegin(), out.rend());
    if (negative)
        result.insert(result.begin(), '-');
    return result + frac;
}

std::string
ratioString(double value, int decimals)
{
    return commaString(value, decimals) + "x";
}

std::string
percentString(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace hnlpu
