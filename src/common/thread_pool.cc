#include "common/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hnlpu {

namespace {

/**
 * True while this thread is executing a parallelFor body.  A nested
 * parallelFor (from a worker or from the caller's own chunk) runs
 * inline instead of re-entering the pool, which would either deadlock
 * (worker waiting on itself) or clobber the in-flight job state.
 */
thread_local bool t_in_parallel_region = false;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads <= 1)
        return;
    workers_.reserve(threads - 1);
    for (std::size_t i = 1; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::pair<std::size_t, std::size_t>
ThreadPool::chunkRange(std::size_t index, std::size_t chunks,
                       std::size_t n)
{
    hnlpu_assert(chunks > 0 && index < chunks, "chunk index range");
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    const std::size_t begin =
        index * base + std::min(index, extra);
    const std::size_t size = base + (index < extra ? 1 : 0);
    return {begin, begin + size};
}

void
ThreadPool::setObserver(TaskObserver *observer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    observer_ = observer;
}

void
ThreadPool::parallelFor(std::size_t n, const RangeBody &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1 || t_in_parallel_region) {
        body(0, n);
        return;
    }

    TaskObserver *observer = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        jobSize_ = n;
        pending_ = workers_.size();
        ++generation_;
        observer = observer_;
    }
    wake_.notify_all();

    // The calling thread always takes chunk 0.
    const auto [begin, end] = chunkRange(0, threadCount(), n);
    t_in_parallel_region = true;
    if (begin < end) {
        if (observer)
            observer->chunkBegin(begin, end);
        body(begin, end);
        if (observer)
            observer->chunkEnd(begin, end);
    }
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    body_ = nullptr;
}

void
ThreadPool::workerLoop(std::size_t worker_index)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const RangeBody *body = nullptr;
        std::size_t n = 0;
        TaskObserver *observer = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            body = body_;
            n = jobSize_;
            observer = observer_;
        }

        const auto [begin, end] =
            chunkRange(worker_index, threadCount(), n);
        t_in_parallel_region = true;
        if (begin < end) {
            if (observer)
                observer->chunkBegin(begin, end);
            (*body)(begin, end);
            if (observer)
                observer->chunkEnd(begin, end);
        }
        t_in_parallel_region = false;

        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_one();
        }
    }
}

void
parallelFor(ThreadPool *pool, std::size_t n,
            const ThreadPool::RangeBody &body)
{
    if (n == 0)
        return;
    if (pool)
        pool->parallelFor(n, body);
    else
        body(0, n);
}

} // namespace hnlpu
