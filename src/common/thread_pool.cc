#include "common/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hnlpu {

namespace {

/**
 * True while this thread is executing a parallelFor body.  A nested
 * parallelFor (from a worker or from the caller's own chunk) runs
 * inline instead of re-entering the pool, which would either deadlock
 * (worker waiting on itself) or clobber the in-flight job state.
 */
thread_local bool t_in_parallel_region = false;

/** Pin @p handle to @p cpu (Linux only; no-op elsewhere). */
void
pinToCpu([[maybe_unused]] std::thread::native_handle_type handle,
         [[maybe_unused]] unsigned cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    pthread_setaffinity_np(handle, sizeof(set), &set);
#endif
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads, bool cap_to_hardware)
{
    if (cap_to_hardware)
        hwCap_ = std::thread::hardware_concurrency(); // 0 == unknown
    if (threads <= 1)
        return;
    // Construct every Worker slot before any thread starts: workerLoop
    // indexes workers_ and must never observe the vector mid-growth.
    workers_.reserve(threads - 1);
    for (std::size_t i = 1; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (std::size_t i = 1; i < threads; ++i)
        workers_[i - 1]->thread = std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    for (auto &worker : workers_)
        worker->cv.notify_one();
    for (auto &worker : workers_)
        worker->thread.join();
}

std::pair<std::size_t, std::size_t>
ThreadPool::chunkRange(std::size_t index, std::size_t chunks,
                       std::size_t n)
{
    hnlpu_assert(chunks > 0 && index < chunks, "chunk index range");
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    const std::size_t begin =
        index * base + std::min(index, extra);
    const std::size_t size = base + (index < extra ? 1 : 0);
    return {begin, begin + size};
}

std::pair<std::size_t, std::size_t>
ThreadPool::alignedChunkRange(std::size_t index, std::size_t chunks,
                              std::size_t n, std::size_t align)
{
    auto [begin, end] = chunkRange(index, chunks, n);
    if (align > 1) {
        // Interior boundaries round down to the alignment; the outer
        // boundaries (0 and n) are fixed, so coverage stays exact and
        // contiguous: both sides of an interior boundary round the
        // same raw value.
        if (index > 0)
            begin -= begin % align;
        if (index + 1 < chunks)
            end -= end % align;
    }
    return {begin, end};
}

std::size_t
ThreadPool::effectiveChunks(std::size_t n, std::size_t grain,
                            std::size_t threads, std::size_t hw_cap)
{
    std::size_t chunks = std::max<std::size_t>(1, threads);
    if (hw_cap > 0)
        chunks = std::min(chunks, hw_cap);
    if (grain > 1)
        chunks = std::min(chunks,
                          std::max<std::size_t>(1, n / grain));
    return std::max<std::size_t>(1, std::min(chunks, n));
}

void
ThreadPool::setObserver(TaskObserver *observer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    observer_ = observer;
}

void
ThreadPool::pinThreads()
{
#if defined(__linux__)
    const unsigned ncpu = std::thread::hardware_concurrency();
    if (ncpu == 0)
        return;
    pinToCpu(pthread_self(), 0);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        pinToCpu(workers_[i]->thread.native_handle(),
                 static_cast<unsigned>((i + 1) % ncpu));
    }
#endif
}

void
ThreadPool::parallelFor(std::size_t n, const RangeBody &body,
                        std::size_t grain)
{
    // Thin adapter: the chunk index is dropped.  The wrapper captures
    // one pointer, so the std::function stays in its small buffer.
    const ChunkBody chunk_body =
        [&body](std::size_t, std::size_t begin, std::size_t end) {
            body(begin, end);
        };
    parallelForChunked(n, chunk_body, grain, 1);
}

void
ThreadPool::parallelForChunked(std::size_t n, const ChunkBody &body,
                               std::size_t grain, std::size_t align)
{
    if (n == 0)
        return;
    const std::size_t chunks =
        effectiveChunks(n, grain, threadCount(), hwCap_);
    if (t_in_parallel_region) {
        // Nested region: plain inline call, never reported -- the
        // enclosing chunk's span already covers this work.
        body(0, 0, n);
        return;
    }
    if (chunks <= 1) {
        // The job still executed on the pool (as its one chunk), so
        // the observer sees it -- a narrow machine or a tiny n must
        // not silently drop pool.chunk trace coverage.
        TaskObserver *observer = nullptr;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            observer = observer_;
        }
        if (observer)
            observer->chunkBegin(0, n);
        body(0, 0, n);
        if (observer)
            observer->chunkEnd(0, n);
        return;
    }

    // Exact-coverage check: the static partition must start at 0 and
    // end at n (interior contiguity is structural -- adjacent chunks
    // round the same raw boundary).
    hnlpu_assert(alignedChunkRange(0, chunks, n, align).first == 0 &&
                     alignedChunkRange(chunks - 1, chunks, n, align)
                             .second == n,
                 "parallelFor chunk cover is not exact: n=", n,
                 " chunks=", chunks, " align=", align);

    TaskObserver *observer = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        jobSize_ = n;
        jobChunks_ = chunks;
        jobAlign_ = align;
        pending_ = chunks - 1;
        ++generation_;
        // Target only the workers that own a chunk; the rest keep
        // sleeping on their private condition variables.
        for (std::size_t i = 1; i < chunks; ++i)
            workers_[i - 1]->target = generation_;
        observer = observer_;
    }
    for (std::size_t i = 1; i < chunks; ++i)
        workers_[i - 1]->cv.notify_one();

    // The calling thread always takes chunk 0.
    const auto [begin, end] = alignedChunkRange(0, chunks, n, align);
    t_in_parallel_region = true;
    if (begin < end) {
        if (observer)
            observer->chunkBegin(begin, end);
        body(0, begin, end);
        if (observer)
            observer->chunkEnd(begin, end);
    }
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    body_ = nullptr;
}

void
ThreadPool::workerLoop(std::size_t worker_index)
{
    Worker &self = *workers_[worker_index - 1];
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        self.cv.wait(lock,
                     [&] { return stop_ || self.target != seen; });
        if (stop_)
            return;
        seen = self.target;
        const ChunkBody *body = body_;
        const std::size_t n = jobSize_;
        const std::size_t chunks = jobChunks_;
        const std::size_t align = jobAlign_;
        TaskObserver *observer = observer_;
        lock.unlock();

        const auto [begin, end] =
            alignedChunkRange(worker_index, chunks, n, align);
        t_in_parallel_region = true;
        if (begin < end) {
            if (observer)
                observer->chunkBegin(begin, end);
            (*body)(worker_index, begin, end);
            if (observer)
                observer->chunkEnd(begin, end);
        }
        t_in_parallel_region = false;

        lock.lock();
        if (--pending_ == 0)
            done_.notify_one();
    }
}

void
parallelFor(ThreadPool *pool, std::size_t n,
            const ThreadPool::RangeBody &body, std::size_t grain)
{
    if (n == 0)
        return;
    if (pool)
        pool->parallelFor(n, body, grain);
    else
        body(0, n);
}

void
parallelForChunked(ThreadPool *pool, std::size_t n,
                   const ThreadPool::ChunkBody &body, std::size_t grain,
                   std::size_t align)
{
    if (n == 0)
        return;
    if (pool)
        pool->parallelForChunked(n, body, grain, align);
    else
        body(0, 0, n);
}

} // namespace hnlpu
