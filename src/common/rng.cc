#include "common/rng.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace hnlpu {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    hnlpu_assert(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    hnlpu_assert(lo <= hi, "uniformInt range inverted");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

double
Rng::uniform01()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    hnlpu_assert(!weights.empty(), "weightedIndex needs weights");
    double total = 0.0;
    for (double w : weights) {
        hnlpu_assert(w >= 0.0, "negative weight");
        total += w;
    }
    hnlpu_assert(total > 0.0, "weights sum to zero");
    double r = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        std::size_t j = nextBelow(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

} // namespace hnlpu
