#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace hnlpu {

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace hnlpu
