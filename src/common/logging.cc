#include "common/logging.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hnlpu {

namespace {

/** One registered hnlpu_warn_ratelimited call site. */
struct WarnSite
{
    const char *file = nullptr;
    int line = 0;
    const detail::WarnRateLimiter *limiter = nullptr;
};

std::mutex &
warnSiteMutex()
{
    static std::mutex m;
    return m;
}

std::vector<WarnSite> &
warnSiteList()
{
    static std::vector<WarnSite> sites;
    return sites;
}

} // namespace

detail::WarnRateLimiter::WarnRateLimiter(const char *file, int line)
{
    std::lock_guard<std::mutex> lock(warnSiteMutex());
    warnSiteList().push_back({file, line, this});
}

std::vector<WarnSiteCount>
warnSiteCounts()
{
    std::vector<WarnSiteCount> out;
    {
        std::lock_guard<std::mutex> lock(warnSiteMutex());
        out.reserve(warnSiteList().size());
        for (const WarnSite &site : warnSiteList())
            out.push_back(
                {site.file, site.line, site.limiter->occurrences()});
    }
    std::sort(out.begin(), out.end(),
              [](const WarnSiteCount &a, const WarnSiteCount &b) {
                  if (int c = a.file.compare(b.file); c != 0)
                      return c < 0;
                  return a.line < b.line;
              });
    return out;
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace hnlpu
