/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated; this is a library bug.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments).
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- plain status output.
 */

#ifndef HNLPU_COMMON_LOGGING_HH
#define HNLPU_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace hnlpu {

/** Severity classes used by the message helpers. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a message at the given level.  Fatal exits with code 1; Panic
 * aborts (core-dump friendly).  Messages go to stderr except Inform.
 */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

/** Build a string from a variadic pack via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace hnlpu

#define hnlpu_panic(...) \
    ::hnlpu::panicImpl(::hnlpu::detail::concat(__VA_ARGS__), __FILE__, \
                       __LINE__)
#define hnlpu_fatal(...) \
    ::hnlpu::fatalImpl(::hnlpu::detail::concat(__VA_ARGS__), __FILE__, \
                       __LINE__)
#define hnlpu_warn(...) \
    ::hnlpu::warnImpl(::hnlpu::detail::concat(__VA_ARGS__))
#define hnlpu_inform(...) \
    ::hnlpu::informImpl(::hnlpu::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define hnlpu_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::hnlpu::panicImpl( \
                std::string("assertion failed: " #cond " ") + \
                    ::hnlpu::detail::concat(__VA_ARGS__), \
                __FILE__, __LINE__); \
        } \
    } while (0)

#endif // HNLPU_COMMON_LOGGING_HH
