/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated; this is a library bug.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments).
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- plain status output.
 */

#ifndef HNLPU_COMMON_LOGGING_HH
#define HNLPU_COMMON_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace hnlpu {

/** Severity classes used by the message helpers. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a message at the given level.  Fatal exits with code 1; Panic
 * aborts (core-dump friendly).  Messages go to stderr except Inform.
 */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

/** Build a string from a variadic pack via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/**
 * Per-call-site throttle for hnlpu_warn_ratelimited: the first kBurst
 * occurrences log, then only every kPeriod-th does, so degraded-mode
 * events (link retries, dead chips, spare remaps) cannot flood stderr
 * during long simulations.  Counting is atomic so concurrent workers
 * share one limiter safely.
 */
class WarnRateLimiter
{
  public:
    static constexpr std::uint64_t kBurst = 5;
    static constexpr std::uint64_t kPeriod = 1000;

    WarnRateLimiter() = default;

    /**
     * Call-site-registering form used by hnlpu_warn_ratelimited: the
     * limiter enrolls itself in a process-wide list so suppressed
     * occurrences remain countable (warnSiteCounts(), and from there
     * obs::MetricsRegistry) instead of vanishing once the rate limit
     * kicks in.  Only static-duration limiters may use this ctor --
     * the registry keeps a pointer for the life of the process.
     */
    WarnRateLimiter(const char *file, int line);

    /** Register one occurrence; true when this one should be logged. */
    bool
    shouldLog()
    {
        const std::uint64_t n =
            count_.fetch_add(1, std::memory_order_relaxed);
        return n < kBurst || (n - kBurst + 1) % kPeriod == 0;
    }

    /** Occurrences registered so far. */
    std::uint64_t
    occurrences() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count_{0};
};

} // namespace detail

/** Snapshot of one rate-limited warn call site. */
struct WarnSiteCount
{
    std::string file;
    int line = 0;
    std::uint64_t occurrences = 0;
};

/**
 * Occurrence counts for every hnlpu_warn_ratelimited call site reached
 * so far (sites whose static limiter has been constructed), sorted by
 * file then line.  Thread-safe; counts are relaxed-atomic snapshots.
 */
std::vector<WarnSiteCount> warnSiteCounts();

} // namespace hnlpu

#define hnlpu_panic(...) \
    ::hnlpu::panicImpl(::hnlpu::detail::concat(__VA_ARGS__), __FILE__, \
                       __LINE__)
#define hnlpu_fatal(...) \
    ::hnlpu::fatalImpl(::hnlpu::detail::concat(__VA_ARGS__), __FILE__, \
                       __LINE__)
#define hnlpu_warn(...) \
    ::hnlpu::warnImpl(::hnlpu::detail::concat(__VA_ARGS__))

/**
 * Rate-limited warn: one static limiter per call site.  After the first
 * few occurrences only every N-th is printed, annotated with the total
 * count so suppressed events stay visible in aggregate.
 */
#define hnlpu_warn_ratelimited(...) \
    do { \
        static ::hnlpu::detail::WarnRateLimiter hnlpu_rate_limiter_{ \
            __FILE__, __LINE__}; \
        if (hnlpu_rate_limiter_.shouldLog()) { \
            ::hnlpu::warnImpl(::hnlpu::detail::concat( \
                __VA_ARGS__, " [occurrence ", \
                hnlpu_rate_limiter_.occurrences(), \
                " at this call site]")); \
        } \
    } while (0)
#define hnlpu_inform(...) \
    ::hnlpu::informImpl(::hnlpu::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define hnlpu_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::hnlpu::panicImpl( \
                std::string("assertion failed: " #cond " ") + \
                    ::hnlpu::detail::concat(__VA_ARGS__), \
                __FILE__, __LINE__); \
        } \
    } while (0)

#endif // HNLPU_COMMON_LOGGING_HH
