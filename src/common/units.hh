/**
 * @file
 * Unit aliases and pretty-printing helpers.
 *
 * The models in this library mix physical, monetary and information units.
 * To keep call sites readable we use double-based aliases with the unit in
 * the name, plus formatting helpers for engineering notation.  The unit of
 * each alias is documented at its definition; all conversions are explicit
 * constants defined here.
 */

#ifndef HNLPU_COMMON_UNITS_HH
#define HNLPU_COMMON_UNITS_HH

#include <cstdint>
#include <string>

namespace hnlpu {

/** Silicon area in square millimetres. */
using AreaMm2 = double;
/** Power in watts. */
using Watts = double;
/** Energy in joules. */
using Joules = double;
/** Time in seconds. */
using Seconds = double;
/** Time in integral picoseconds (discrete-event simulator tick). */
using Tick = std::uint64_t;
/** Money in United States dollars. */
using Dollars = double;
/** Mass of CO2-equivalent emissions in tonnes. */
using TonnesCO2e = double;
/** Data size in bytes. */
using Bytes = double;
/** Bandwidth in bytes per second. */
using BytesPerSecond = double;

// -- scale constants ------------------------------------------------------

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;

/** Ticks are picoseconds: one simulated second. */
inline constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/** Convert seconds to simulator ticks (rounding to nearest). */
Tick toTicks(Seconds s);
/** Convert simulator ticks to seconds. */
Seconds toSeconds(Tick t);

/** KiB / MiB / GiB byte constants. */
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// -- formatting -----------------------------------------------------------

/**
 * Format a value with an SI prefix, e.g. 249960 -> "249.96 k".
 * @param value the quantity to format
 * @param unit unit string appended after the prefix
 * @param digits significant digits (default 5)
 */
std::string siString(double value, const std::string &unit, int digits = 5);

/** Format dollars, e.g. 59.46e6 -> "$ 59.46M". */
std::string dollarString(Dollars value, int digits = 5);

/** Format with fixed decimals and thousands separators: 249960 ->
 *  "249,960". */
std::string commaString(double value, int decimals = 0);

/** Format a ratio like "5,555x". */
std::string ratioString(double value, int decimals = 1);

/** Format a percentage like "82.9%". */
std::string percentString(double fraction, int decimals = 1);

} // namespace hnlpu

#endif // HNLPU_COMMON_UNITS_HH
