/**
 * @file
 * Small integer/float math helpers shared across the library.
 */

#ifndef HNLPU_COMMON_MATH_UTIL_HH
#define HNLPU_COMMON_MATH_UTIL_HH

#include <cstdint>
#include <type_traits>

namespace hnlpu {

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    static_assert(std::is_integral_v<T>);
    return (num + den - 1) / den;
}

/** Round @p value up to the next multiple of @p step. */
template <typename T>
constexpr T
roundUp(T value, T step)
{
    static_assert(std::is_integral_v<T>);
    return ceilDiv(value, step) * step;
}

/** True iff @p x is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Ceiling of log2 for x >= 1. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    unsigned bits = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** Floor of log2 for x >= 1. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned bits = 0;
    while (x > 1) {
        x >>= 1;
        ++bits;
    }
    return bits;
}

/** Relative difference |a-b| / max(|a|,|b|, eps). */
inline double
relativeDiff(double a, double b, double eps = 1e-30)
{
    double denom = std::max(std::max(a < 0 ? -a : a, b < 0 ? -b : b), eps);
    double diff = a - b;
    if (diff < 0)
        diff = -diff;
    return diff / denom;
}

} // namespace hnlpu

#endif // HNLPU_COMMON_MATH_UTIL_HH
