/**
 * @file
 * Minimal ASCII table formatter used by the benchmark drivers so that
 * every reproduced table/figure prints in a uniform, diff-friendly way.
 */

#ifndef HNLPU_COMMON_TABLE_HH
#define HNLPU_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace hnlpu {

/**
 * A simple column-aligned table.  Cells are strings; callers format
 * numbers with the helpers in units.hh.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with column alignment. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    /** Empty vector encodes a separator. */
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hnlpu

#endif // HNLPU_COMMON_TABLE_HH
