/**
 * @file
 * Deterministic fork-join thread pool for the functional engine.
 *
 * The HNLPU derives its throughput from massive spatial parallelism
 * across the Sea-of-Neurons array; on the host, the software analogue is
 * row/expert/head-level data parallelism.  This pool is deliberately
 * work-stealing-free: every parallelFor() statically partitions [0, n)
 * into one contiguous chunk per thread, so each worker touches a
 * disjoint slice of the output and parallel execution is bit-exactly
 * equal to serial execution (see DESIGN.md "Threading model &
 * determinism").
 *
 * Nested parallelFor() calls (e.g. a row-parallel Linear inside an
 * expert-parallel MoE) are detected via a thread-local flag and run
 * inline on the calling thread, so the pool can never deadlock on
 * itself.
 */

#ifndef HNLPU_COMMON_THREAD_POOL_HH
#define HNLPU_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hnlpu {

/**
 * Observer hook invoked on the executing thread around every non-empty
 * chunk of a dispatched parallelFor job (the caller's chunk included).
 * Serial fallbacks -- no workers, n == 1, or a nested parallel region
 * running inline -- are plain function calls and are not reported.
 *
 * This lives in common (not obs) so the pool carries no obs dependency;
 * obs::PoolTaskTracer implements it to emit trace spans.  Implementations
 * must be thread-safe: chunks run concurrently on all pool threads.
 */
class TaskObserver
{
  public:
    virtual ~TaskObserver() = default;
    virtual void chunkBegin(std::size_t begin, std::size_t end) = 0;
    virtual void chunkEnd(std::size_t begin, std::size_t end) = 0;
};

/** Fixed-size fork-join pool with static range partitioning. */
class ThreadPool
{
  public:
    /**
     * @param threads total parallelism including the calling thread;
     *        the pool spawns threads-1 workers.  threads <= 1 spawns
     *        nothing and parallelFor() degenerates to a serial loop.
     */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers plus the calling thread). */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /** Body invoked with a half-open index range [begin, end). */
    using RangeBody = std::function<void(std::size_t, std::size_t)>;

    /**
     * Execute body over [0, n) split into threadCount() contiguous
     * chunks.  The calling thread runs chunk 0 and blocks until every
     * chunk is done.  Chunk boundaries depend only on (n, threadCount),
     * never on timing, so any per-index output is deterministic.
     */
    void parallelFor(std::size_t n, const RangeBody &body);

    /** The static chunk assigned to @p index out of @p chunks. */
    static std::pair<std::size_t, std::size_t> chunkRange(
        std::size_t index, std::size_t chunks, std::size_t n);

    /**
     * Install (or clear, with nullptr) the chunk observer.  Must not be
     * called while a parallelFor is in flight; the observer must outlive
     * its installation.
     */
    void setObserver(TaskObserver *observer);

  private:
    void workerLoop(std::size_t worker_index);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;  //!< job counter workers wake on
    std::size_t pending_ = 0;       //!< workers still in current job
    bool stop_ = false;
    const RangeBody *body_ = nullptr;
    std::size_t jobSize_ = 0;
    TaskObserver *observer_ = nullptr;
};

/**
 * Convenience wrapper used throughout the engine: runs @p body over
 * [0, n) on @p pool, or serially inline when @p pool is null.  All hot
 * paths take an optional ThreadPool* and call this, so a null pool is
 * exactly the pre-threading serial code path.
 */
void parallelFor(ThreadPool *pool, std::size_t n,
                 const ThreadPool::RangeBody &body);

} // namespace hnlpu

#endif // HNLPU_COMMON_THREAD_POOL_HH
