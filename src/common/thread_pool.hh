/**
 * @file
 * Deterministic fork-join thread pool for the functional engine.
 *
 * The HNLPU derives its throughput from massive spatial parallelism
 * across the Sea-of-Neurons array; on the host, the software analogue is
 * row/expert/head-level data parallelism.  This pool is deliberately
 * work-stealing-free: every parallelFor() statically partitions [0, n)
 * into contiguous chunks, so each worker touches a disjoint slice of
 * the output and parallel execution is bit-exactly equal to serial
 * execution (see DESIGN.md "Threading model & determinism").
 *
 * Chunk selection is work-size aware: the number of chunks is the
 * minimum of the pool width, the online CPU count (oversubscribing a
 * compute-bound GEMV only adds context switches), and n / grain (no
 * point waking a worker for less than `grain` elements of work).  Only
 * the workers that actually received a chunk are woken -- a tiny GEMV
 * dispatched on a wide pool no longer pays a wake/join handshake per
 * idle worker, which is what regressed the reference path past 2
 * threads.  Chunk boundaries depend only on (n, chunks, align), never
 * on timing.
 *
 * Nested parallelFor() calls (e.g. a row-parallel Linear inside an
 * expert-parallel MoE) are detected via a thread-local flag and run
 * inline on the calling thread, so the pool can never deadlock on
 * itself.
 */

#ifndef HNLPU_COMMON_THREAD_POOL_HH
#define HNLPU_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hnlpu {

/**
 * Observer hook invoked on the executing thread around every non-empty
 * chunk of a parallelFor job (the caller's chunk included, and a job
 * that collapses to a single inline chunk still reports that chunk --
 * trace coverage must not depend on how many CPUs the host has).
 * Only nested parallel regions running inline inside an enclosing
 * chunk are plain, unreported calls.
 *
 * This lives in common (not obs) so the pool carries no obs dependency;
 * obs::PoolTaskTracer implements it to emit trace spans.  Implementations
 * must be thread-safe: chunks run concurrently on all pool threads.
 */
class TaskObserver
{
  public:
    virtual ~TaskObserver() = default;
    virtual void chunkBegin(std::size_t begin, std::size_t end) = 0;
    virtual void chunkEnd(std::size_t begin, std::size_t end) = 0;
};

/** Fixed-size fork-join pool with static range partitioning. */
class ThreadPool
{
  public:
    /**
     * @param threads total parallelism including the calling thread;
     *        the pool spawns threads-1 workers.  threads <= 1 spawns
     *        nothing and parallelFor() degenerates to a serial loop.
     * @param cap_to_hardware clamp the per-job chunk count to the
     *        online CPU count (std::thread::hardware_concurrency).
     *        The pool's hot loops are compute bound, so running more
     *        chunks than cores is pure context-switch overhead; tests
     *        that need forced concurrency (TSan interleaving on small
     *        machines) pass false.
     */
    explicit ThreadPool(std::size_t threads, bool cap_to_hardware = true);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers plus the calling thread). */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /** Chunk-count clamp from hardware_concurrency (0 == uncapped). */
    std::size_t hardwareCap() const { return hwCap_; }

    /** Body invoked with a half-open index range [begin, end). */
    using RangeBody = std::function<void(std::size_t, std::size_t)>;

    /**
     * Body invoked as (chunk, begin, end): `chunk` is the static chunk
     * index in [0, threadCount()), stable for the duration of the job,
     * so callers can shard per-chunk accumulators (e.g. HnActivity)
     * into padded slots instead of merging under a mutex.
     */
    using ChunkBody =
        std::function<void(std::size_t, std::size_t, std::size_t)>;

    /**
     * Execute body over [0, n) split into effectiveChunks(n, grain,
     * threadCount(), hardwareCap()) contiguous chunks.  The calling
     * thread runs chunk 0 and blocks until every chunk is done; only
     * workers that received a chunk are woken.  Chunk boundaries depend
     * only on (n, chunks, align), never on timing, so any per-index
     * output is deterministic; single-chunk jobs run inline.
     *
     * @param grain minimum elements per chunk -- size the chunk count
     *        to the work, not the pool (a 12-row GEMV on an 8-wide pool
     *        should not wake 7 workers)
     */
    void parallelFor(std::size_t n, const RangeBody &body,
                     std::size_t grain = 1);

    /**
     * As parallelFor, but the body also receives its chunk index and
     * chunk boundaries are rounded down to multiples of @p align
     * (coverage stays exact: chunk i's end is chunk i+1's begin and the
     * last chunk always ends at n).  Aligning to a cache line's worth
     * of output elements stops adjacent workers from false-sharing the
     * line that straddles a chunk boundary.
     */
    void parallelForChunked(std::size_t n, const ChunkBody &body,
                            std::size_t grain = 1, std::size_t align = 1);

    /** The static chunk assigned to @p index out of @p chunks. */
    static std::pair<std::size_t, std::size_t> chunkRange(
        std::size_t index, std::size_t chunks, std::size_t n);

    /**
     * chunkRange with interior boundaries rounded down to multiples of
     * @p align.  The rounded boundaries remain monotone and contiguous
     * (both sides of a boundary round the same raw value), so the
     * chunks still cover [0, n) exactly; individual chunks may come
     * out empty.
     */
    static std::pair<std::size_t, std::size_t> alignedChunkRange(
        std::size_t index, std::size_t chunks, std::size_t n,
        std::size_t align);

    /**
     * Chunk count for a job of @p n elements: min(threads, hw_cap
     * (when nonzero), n / grain (at least 1), n).  This is the
     * work-size-aware selection parallelFor uses -- small jobs get few
     * chunks no matter how wide the pool is.
     */
    static std::size_t effectiveChunks(std::size_t n, std::size_t grain,
                                       std::size_t threads,
                                       std::size_t hw_cap);

    /**
     * Pin the calling thread and every worker round-robin across the
     * online CPUs (Linux only; a no-op elsewhere).  Benchmarks use this
     * so scaling numbers measure the kernel, not the scheduler's
     * migration choices.
     */
    void pinThreads();

    /**
     * Install (or clear, with nullptr) the chunk observer.  Must not be
     * called while a parallelFor is in flight; the observer must outlive
     * its installation.
     */
    void setObserver(TaskObserver *observer);

  private:
    /**
     * Per-worker wake state.  Each worker sleeps on its own condition
     * variable and is woken only when `target` advances to the current
     * job generation -- workers outside a job's chunk count never wake
     * (and never touch `pending_`).
     */
    struct Worker
    {
        std::thread thread;
        std::condition_variable cv;
        std::uint64_t target = 0; //!< generation this worker should join
    };

    void workerLoop(std::size_t worker_index);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::mutex mutex_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;  //!< job counter workers wake on
    std::size_t pending_ = 0;       //!< woken workers still in the job
    bool stop_ = false;
    const ChunkBody *body_ = nullptr;
    std::size_t jobSize_ = 0;
    std::size_t jobChunks_ = 0;
    std::size_t jobAlign_ = 1;
    std::size_t hwCap_ = 0;
    TaskObserver *observer_ = nullptr;
};

/**
 * Convenience wrapper used throughout the engine: runs @p body over
 * [0, n) on @p pool, or serially inline when @p pool is null.  All hot
 * paths take an optional ThreadPool* and call this, so a null pool is
 * exactly the pre-threading serial code path.
 */
void parallelFor(ThreadPool *pool, std::size_t n,
                 const ThreadPool::RangeBody &body, std::size_t grain = 1);

/** Chunk-indexed variant of the wrapper; serial inline runs chunk 0. */
void parallelForChunked(ThreadPool *pool, std::size_t n,
                        const ThreadPool::ChunkBody &body,
                        std::size_t grain = 1, std::size_t align = 1);

} // namespace hnlpu

#endif // HNLPU_COMMON_THREAD_POOL_HH
