#include "pipeline/pipeline_sim.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "model/model_zoo.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace hnlpu {

namespace {

/** Which breakdown class a wait/service interval belongs to. */
enum class TimeClass { Comm, Projection, Nonlinear, Attention, Stall };

/** Accumulates tick intervals into the five classes. */
struct BreakdownTicks
{
    Tick comm = 0;
    Tick projection = 0;
    Tick nonlinear = 0;
    Tick attention = 0;
    Tick stall = 0;

    void
    add(TimeClass cls, Tick ticks)
    {
        switch (cls) {
          case TimeClass::Comm: comm += ticks; break;
          case TimeClass::Projection: projection += ticks; break;
          case TimeClass::Nonlinear: nonlinear += ticks; break;
          case TimeClass::Attention: attention += ticks; break;
          case TimeClass::Stall: stall += ticks; break;
        }
    }
};

/** One step of a token's static schedule. */
struct Op
{
    enum class Type
    {
        Unit,      //!< occupy one resource for `dur`
        Collective,//!< serialise `bytes` on all `links`, then latency
        SingleSend,//!< serialise on one rotating link, then latency
        HbmStream, //!< double-buffered KV overflow fetch (stall only)
    };

    Type type = Type::Unit;
    TimeClass cls = TimeClass::Projection;
    std::size_t unit = 0;        //!< index into the unit-resource table
    std::vector<std::size_t> links; //!< indices into the link table
    Tick dur = 0;                //!< unit occupancy or serialisation
    Tick overlapRef = 0;         //!< attention time hiding HBM traffic
    /** Stage this op belongs to; tokens hold a stage until the
     *  successor stage is free (blocking pipeline, Fig. 11). */
    std::size_t stage = 0;
    /** Link hops (2 for store-and-forward around a dead chip). */
    std::size_t hops = 1;
};

} // namespace

PipelineSim::PipelineSim(PipelineConfig config)
    : config_(std::move(config))
{
    config_.partition.validate();
    config_.link.validate();
    hnlpu_assert(config_.measuredTokens > 0, "nothing to measure");

    const auto &flt = config_.faults;
    if (flt.linkRetryProbability < 0 || flt.linkRetryProbability >= 1.0)
        hnlpu_fatal("linkRetryProbability must be in [0,1), got ",
                    flt.linkRetryProbability);
    const std::size_t chips =
        config_.partition.gridRows * config_.partition.gridCols;
    for (std::size_t id : flt.deadChips) {
        if (id >= chips)
            hnlpu_fatal("dead chip ", id, " out of range (", chips,
                        " chips)");
        // The simulator is chip-representative; the observer must live.
        if (id == 0)
            hnlpu_fatal("representative chip 0 cannot be dead");
    }
}

PipelineResult
PipelineSim::run()
{
    const auto &cfg = config_;
    const auto &part = cfg.partition;
    const auto &model = part.model;
    ChipTiming timing(part, cfg.timing);
    KvStore kv(part, cfg.buffer, cfg.hbm, cfg.bufferKvShare);
    const KvPlacement placement =
        kv.place(cfg.contextLength, cfg.kvSequences);

    // -- degraded-mode bookkeeping -------------------------------------------
    // Dead chips leave the representative chip's link classes: a dead
    // column peer removes one column link, a dead row peer one row
    // link; dead chips elsewhere keep our links but force two-hop
    // recovery traffic on every grid-wide all-reduce.
    std::vector<std::size_t> dead = cfg.faults.deadChips;
    std::sort(dead.begin(), dead.end());
    dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
    std::size_t dead_col_peers = 0, dead_row_peers = 0;
    for (std::size_t id : dead) {
        const std::size_t r = id / part.gridCols;
        const std::size_t c = id % part.gridCols;
        hnlpu_warn_ratelimited("pipeline: chip ", id, " at (", r, ",",
                               c, ") is dead; degraded schedule");
        if (c == 0)
            ++dead_col_peers;
        else if (r == 0)
            ++dead_row_peers;
    }
    hnlpu_assert(dead_col_peers < part.gridRows - 1 ||
                     part.gridRows == 1,
                 "all column peers dead: column collectives impossible");
    hnlpu_assert(dead_row_peers < part.gridCols - 1 ||
                     part.gridCols == 1,
                 "all row peers dead: row collectives impossible");

    // -- resource tables ----------------------------------------------------
    // Links: [0, n_col) column links, then [n_col, n_col+n_row) row.
    const std::size_t n_col = part.gridRows - 1 - dead_col_peers;
    const std::size_t n_row = part.gridCols - 1 - dead_row_peers;
    std::vector<TimelineResource> links;
    std::vector<std::size_t> col_ids, row_ids;
    for (std::size_t i = 0; i < n_col; ++i) {
        col_ids.push_back(links.size());
        links.emplace_back("col" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n_row; ++i) {
        row_ids.push_back(links.size());
        links.emplace_back("row" + std::to_string(i));
    }

    // Unit resources: per-layer HN stage blocks and VEX slices, plus
    // the unembedding HN, the sampler and the HBM channel.
    const std::size_t layers = model.layerCount;
    std::vector<TimelineResource> units;
    auto add_unit = [&](const std::string &name) {
        units.emplace_back(name);
        return units.size() - 1;
    };
    std::vector<std::size_t> u_qkv(layers), u_xo(layers),
        u_router(layers), u_upgate(layers), u_down(layers),
        u_vex(layers), u_sfu(layers);
    for (std::size_t l = 0; l < layers; ++l) {
        const std::string suffix = std::to_string(l);
        u_qkv[l] = add_unit("hn_qkv" + suffix);
        u_xo[l] = add_unit("hn_xo" + suffix);
        u_router[l] = add_unit("hn_router" + suffix);
        u_upgate[l] = add_unit("hn_upgate" + suffix);
        u_down[l] = add_unit("hn_down" + suffix);
        u_vex[l] = add_unit("vex" + suffix);
        u_sfu[l] = add_unit("sfu" + suffix);
    }
    const std::size_t u_unembed = add_unit("hn_unembed");
    const std::size_t u_sample = add_unit("vex_sample");
    const std::size_t u_hbm = add_unit("hbm");

    // -- durations ------------------------------------------------------------
    const Tick t_qkv = timing.hnGemvTicks(part.hiddenSlice());
    const Tick t_xo = timing.hnGemvTicks(part.queryHeadsPerColumn() *
                                         model.headDim);
    const Tick t_router = timing.hnGemvTicks(model.hiddenSize);
    const Tick t_upgate = timing.hnGemvTicks(model.hiddenSize);
    const Tick t_down = timing.hnGemvTicks(model.expertHidden);
    const Tick t_unembed = timing.hnGemvTicks(model.hiddenSize);

    const Tick t_nl = timing.vexNonlinearTicks();
    const Tick t_hbm = timing.kvStreamTicks(
        placement.hbmReadPerTokenPerLayer);
    const Tick latency = cfg.link.latencyTicks();

    const double wire = cfg.wireBytesPerElement;
    const double z_scale = cfg.scoreReduceScatter
                               ? 1.0 / double(part.gridRows)
                               : 1.0;
    const Bytes b_query = wire * part.queryReduceBytes();
    const Bytes b_kv = wire * 2.0 * part.kvReduceBytes();
    // FlashAttention flow: each chip contributes only the per-head
    // running (max, sum) pair; otherwise the full local score tensor.
    const Bytes b_score =
        cfg.flashScoreStats
            ? wire * 2.0 * double(part.kvHeadsPerColumn()) *
                  double(model.gqaGroupSize())
            : wire *
                  part.scoreReduceBytes(
                      (cfg.contextLength + part.gridRows - 1) /
                      part.gridRows) *
                  z_scale;
    const Bytes b_attn_out = wire * part.attnOutReduceBytes();
    const Bytes b_xo = wire * part.xoReduceBytes();
    const Bytes b_moe = wire * part.moeReduceBytes();
    // Distributed sampling sends per-chip reduction statistics (a few
    // scalars per candidate) instead of the raw logit shard.
    const Bytes b_logits =
        cfg.distributedSampling
            ? wire * 32.0
            : wire * double(model.vocabSize) / double(part.chipCount());

    // -- static per-token schedule --------------------------------------------
    std::vector<Op> schedule;
    std::size_t current_stage = 0;
    auto unit_op = [&](std::size_t unit, Tick dur, TimeClass cls) {
        Op op;
        op.type = Op::Type::Unit;
        op.unit = unit;
        op.dur = dur;
        op.cls = cls;
        op.stage = current_stage;
        schedule.push_back(op);
    };
    auto coll_op = [&](const std::vector<std::size_t> &group,
                       Bytes bytes) {
        if (group.empty())
            return;
        Op op;
        op.type = Op::Type::Collective;
        op.links = group;
        op.dur = cfg.link.serializationTicks(bytes);
        op.cls = TimeClass::Comm;
        op.stage = current_stage;
        schedule.push_back(op);
    };
    auto single_op = [&](const std::vector<std::size_t> &group,
                         Bytes bytes) {
        if (group.empty())
            return;
        Op op;
        op.type = Op::Type::SingleSend;
        op.links = group;
        op.dur = cfg.link.serializationTicks(bytes);
        op.cls = TimeClass::Comm;
        op.stage = current_stage;
        schedule.push_back(op);
    };
    // Two-hop recovery for a grid all-reduce: every dead chip was the
    // sole carrier of its row's phase-1 sum into its column, so a live
    // donor re-delivers it through a corner chip (two serialisations,
    // two latencies, on one of our surviving links).
    auto recovery_ops = [&](Bytes bytes) {
        if (dead.empty())
            return;
        const std::vector<std::size_t> &carrier =
            !row_ids.empty() ? row_ids : col_ids;
        if (carrier.empty())
            return;
        for (std::size_t i = 0; i < dead.size(); ++i) {
            Op op;
            op.type = Op::Type::SingleSend;
            op.links = carrier;
            op.dur = 2 * cfg.link.serializationTicks(bytes);
            op.hops = 2;
            op.cls = TimeClass::Comm;
            op.stage = current_stage;
            schedule.push_back(op);
        }
    };

    for (std::size_t layer = 0; layer < layers; ++layer) {
        // Stage 1: QKV projection + column reductions.
        unit_op(u_qkv[layer], t_qkv, TimeClass::Projection);
        coll_op(col_ids, b_query);
        single_op(col_ids, b_kv);
        ++current_stage;

        // Stage 2: attention (+ hidden HBM overflow stream).  Sliding
        // layers attend over the window only and never spill to HBM.
        const std::size_t layer_ctx =
            model.layerContext(layer, cfg.contextLength);
        const Tick t_attn = timing.vexAttentionTicks(layer_ctx);
        const Tick t_softmax = timing.vexSoftmaxTicks(layer_ctx);
        if (t_hbm > 0 && !model.isSlidingLayer(layer)) {
            Op op;
            op.type = Op::Type::HbmStream;
            op.unit = u_hbm;
            op.dur = t_hbm;
            op.overlapRef = t_attn;
            op.cls = TimeClass::Stall;
            op.stage = current_stage;
            schedule.push_back(op);
        }
        unit_op(u_vex[layer], t_attn, TimeClass::Attention);
        unit_op(u_sfu[layer], t_softmax, TimeClass::Nonlinear);
        coll_op(col_ids, b_score);
        coll_op(col_ids, b_attn_out);
        ++current_stage;

        // Stage 3: output projection, row reduce + column gather.
        unit_op(u_xo[layer], t_xo, TimeClass::Projection);
        unit_op(u_sfu[layer], t_nl / 4, TimeClass::Nonlinear);
        coll_op(row_ids, b_xo);
        coll_op(col_ids, b_xo);
        recovery_ops(b_xo);
        ++current_stage;

        // Stage 4: RMSNorm + router + top-k.
        unit_op(u_router[layer], t_router, TimeClass::Projection);
        unit_op(u_sfu[layer], t_nl / 4, TimeClass::Nonlinear);
        ++current_stage;

        // Stage 5: up/gate projections + SwiGLU.
        unit_op(u_upgate[layer], t_upgate, TimeClass::Projection);
        unit_op(u_sfu[layer], t_nl / 2, TimeClass::Nonlinear);
        ++current_stage;

        // Stage 6: down projection + all-chip all-reduce.
        unit_op(u_down[layer], t_down, TimeClass::Projection);
        coll_op(row_ids, b_moe);
        coll_op(col_ids, b_moe);
        recovery_ops(b_moe);
        ++current_stage;
    }
    unit_op(u_unembed, t_unembed, TimeClass::Projection);
    coll_op(row_ids, b_logits);
    coll_op(col_ids, b_logits);
    recovery_ops(b_logits);
    unit_op(u_sample, t_nl / 4, TimeClass::Nonlinear);
    ++current_stage;

    const std::size_t stage_count = current_stage;
    const std::size_t slots = stage_count;
    const std::uint64_t total_tokens =
        cfg.warmupTokens + cfg.measuredTokens;

    // -- event-driven execution with blocking stage slots ----------------------
    //
    // Each stage holds at most one token (Fig. 11 pipeline); a token
    // enters stage s only when its predecessor has vacated it.  Stage
    // ownership is explicit; at most one successor can ever be parked
    // on a stage because admission is strictly in order.
    struct TokenState
    {
        std::size_t next_op = 0;
        std::size_t stage = ~std::size_t(0); //!< stage currently owned
        Tick admitted = 0;
        Tick finished = 0;
        BreakdownTicks bd;
        bool started = false;
    };
    std::vector<TokenState> tokens(total_tokens);
    constexpr std::size_t kNone = ~std::size_t(0);
    std::vector<std::size_t> stage_owner(stage_count, kNone);
    std::vector<std::size_t> parked(stage_count, kNone);

    EventQueue eq;
    std::function<void(std::size_t)> advance;

    // CRC-retry model: one deterministic stream drawn in event order
    // (the event queue is deterministic, so runs replay identically).
    const auto &flt = cfg.faults;
    const bool lossy = flt.linkRetryProbability > 0.0;
    Rng retry_rng(flt.seed ^ 0x9e3779b97f4a7c15ULL);
    std::uint64_t link_retries = 0;
    std::uint64_t retry_timeouts = 0;
    std::uint64_t rerouted_transfers = 0;

    // Occupy one link for `dur`, retrying on CRC failure; returns the
    // serialisation-complete tick (latency added by the caller).
    auto occupy_link = [&](TimelineResource &l, Tick ready,
                           Tick dur) -> Tick {
        if (!lossy) {
            const Tick start = l.acquire(ready, dur);
            return start + dur;
        }
        Seconds backoff = flt.retryBackoff;
        Tick at = ready;
        for (unsigned attempt = 0; attempt <= flt.maxRetries;
             ++attempt) {
            const Tick start = l.acquire(at, dur);
            const Tick end = start + dur;
            if (retry_rng.uniform01() >= flt.linkRetryProbability)
                return end;
            ++link_retries;
            at = end + toTicks(backoff);
            backoff = backoff * 2.0;
        }
        ++retry_timeouts;
        hnlpu_warn_ratelimited("pipeline: link ", l.name(),
                               " exhausted ", flt.maxRetries,
                               " CRC retries; management-layer "
                               "timeout");
        const Tick start = l.acquire(at, dur);
        return start + dur + toTicks(flt.timeoutPenalty);
    };

    // Claim `stage` for `tok`; park (single waiter) when occupied.
    auto try_enter_stage = [&](std::size_t tok, std::size_t stage) {
        if (stage_owner[stage] == tok)
            return true; // ownership was transferred on wake-up
        if (stage_owner[stage] == kNone) {
            stage_owner[stage] = tok;
            return true;
        }
        hnlpu_assert(parked[stage] == kNone,
                     "more than one token parked at stage ", stage);
        parked[stage] = tok;
        return false;
    };

    // Vacate `stage`, handing it to a parked successor if any.
    auto release_stage = [&](std::size_t stage) {
        if (parked[stage] != kNone) {
            const std::size_t waiter = parked[stage];
            parked[stage] = kNone;
            stage_owner[stage] = waiter;
            eq.schedule(eq.now(), [&, waiter] { advance(waiter); });
        } else {
            stage_owner[stage] = kNone;
        }
    };

    advance = [&](std::size_t tok) {
        TokenState &st = tokens[tok];
        if (!st.started) {
            // Admission: claim stage 0, then let the next token queue.
            if (!try_enter_stage(tok, 0))
                return; // parked; release path re-invokes us
            st.started = true;
            st.stage = 0;
            st.admitted = eq.now();
            if (tok + 1 < total_tokens)
                eq.schedule(eq.now(), [&, tok] { advance(tok + 1); });
        }
        if (st.next_op == schedule.size()) {
            st.finished = eq.now();
            release_stage(st.stage);
            return;
        }
        const Op &op = schedule[st.next_op];
        if (op.stage != st.stage) {
            if (!try_enter_stage(tok, op.stage))
                return; // parked until the predecessor moves on
            release_stage(st.stage);
            st.stage = op.stage;
        }
        ++st.next_op;

        const Tick now = eq.now();
        Tick done = now;
        switch (op.type) {
          case Op::Type::Unit: {
            const Tick start = units[op.unit].acquire(now, op.dur);
            done = start + op.dur;
            st.bd.add(op.cls, done - now);
            break;
          }
          case Op::Type::Collective: {
            for (std::size_t link : op.links) {
                const Tick end = occupy_link(links[link], now, op.dur);
                done = std::max(done, end + latency * op.hops);
            }
            st.bd.add(TimeClass::Comm, done - now);
            break;
          }
          case Op::Type::SingleSend: {
            const std::size_t pick =
                (tok + st.next_op) % op.links.size();
            const Tick end =
                occupy_link(links[op.links[pick]], now, op.dur);
            done = end + latency * op.hops;
            if (op.hops > 1)
                ++rerouted_transfers;
            st.bd.add(TimeClass::Comm, done - now);
            break;
          }
          case Op::Type::HbmStream: {
            const Tick start = units[op.unit].acquire(now, op.dur);
            const Tick hbm_done = start + op.dur;
            const Tick stall = timing.hbmStallTicks(hbm_done - now,
                                                    op.overlapRef);
            done = now + stall;
            st.bd.add(TimeClass::Stall, stall);
            break;
          }
        }
        // Simulated-time span: one event per resource occupancy, on the
        // stage's track (zero-length ops are not worth a viewer row).
        if (cfg.trace && done > now) {
            std::string_view res;
            switch (op.type) {
              case Op::Type::Unit:
              case Op::Type::HbmStream:
                res = units[op.unit].name();
                break;
              case Op::Type::Collective:
                res = links[op.links.front()].name();
                break;
              case Op::Type::SingleSend:
                res = links[op.links[(tok + st.next_op) %
                                     op.links.size()]]
                          .name();
                break;
            }
            obs::JsonWriter args(0);
            args.beginObject().field("token", tok).endObject();
            cfg.trace->completeAt(
                "pipeline", res, toSeconds(now) * 1e6,
                toSeconds(done - now) * 1e6,
                std::uint32_t(op.stage), args.str());
        }
        if (done == now) {
            advance(tok);
        } else {
            eq.schedule(done, [&, tok] { advance(tok); });
        }
    };

    eq.schedule(0, [&] { advance(0); });
    eq.run();

    // -- results ----------------------------------------------------------------
    PipelineResult result;
    result.pipelineSlots = slots;
    result.kvOverflowFraction = placement.overflowFraction;

    BreakdownTicks sum;
    Tick latency_sum = 0;
    Tick measure_start = tokens[cfg.warmupTokens].admitted;
    Tick measure_end = 0;
    std::uint64_t count = 0;
    for (std::size_t tok = cfg.warmupTokens; tok < total_tokens; ++tok) {
        const TokenState &st = tokens[tok];
        sum.comm += st.bd.comm;
        sum.projection += st.bd.projection;
        sum.nonlinear += st.bd.nonlinear;
        sum.attention += st.bd.attention;
        sum.stall += st.bd.stall;
        latency_sum += st.finished - st.admitted;
        measure_end = std::max(measure_end, st.finished);
        ++count;
    }
    result.simulatedTokens = count;
    const double span = toSeconds(measure_end - measure_start);
    hnlpu_assert(span > 0, "degenerate measurement window");
    result.tokensPerSecond = double(count) / span;
    result.tokenLatency = toSeconds(latency_sum) / double(count);

    const double n = double(count);
    result.breakdown.comm = toSeconds(sum.comm) / n;
    result.breakdown.projection = toSeconds(sum.projection) / n;
    result.breakdown.nonlinear = toSeconds(sum.nonlinear) / n;
    result.breakdown.attention = toSeconds(sum.attention) / n;
    result.breakdown.stall = toSeconds(sum.stall) / n;

    const Tick horizon = measure_end;
    for (std::size_t i : col_ids) {
        result.colLinkUtilization = std::max(
            result.colLinkUtilization, links[i].utilization(horizon));
    }
    for (std::size_t i : row_ids) {
        result.rowLinkUtilization = std::max(
            result.rowLinkUtilization, links[i].utilization(horizon));
    }
    result.hbmUtilization = units[u_hbm].utilization(horizon);

    result.degraded = flt.anyFaults();
    result.deadChips = dead.size();
    result.linkRetries = link_retries;
    result.retryTimeouts = retry_timeouts;
    result.reroutedTransfers = rerouted_transfers;
    return result;
}

PipelineConfig
defaultGptOssPipeline(std::size_t context_length)
{
    PipelineConfig cfg;
    cfg.partition = makePartition(gptOss120b());
    cfg.timing = ChipTimingParams{};
    cfg.link = CxlLinkParams{};
    cfg.link.efficiency = 0.90;
    cfg.link.perMessageOverhead = 64.0;
    cfg.buffer = SramBufferParams{};
    cfg.hbm = HbmParams{};
    cfg.contextLength = context_length;
    return cfg;
}

} // namespace hnlpu
