/**
 * @file
 * Cycle-level pipeline simulator for the HNLPU system (Sections 5/7).
 *
 * The system runs a nested pipeline: every transformer layer has
 * dedicated HN/VEX hardware split into the six stages of Fig. 11, so up
 * to 6 x layers tokens are in flight.  What the layers *share* are each
 * chip's physical CXL links and HBM channel -- the contention that
 * dominates the execution-time breakdown of Fig. 14.
 *
 * Because all chips execute the same SPMD schedule, one chip's resource
 * set is representative; the simulator advances tokens through the
 * per-layer stage sequence, acquiring FIFO timeline resources (exact for
 * this in-order system) and attributing every waiting and service
 * interval to one of the paper's five breakdown classes: CXL
 * communication, projection (HN), non-linear (VEX SFU), attention (VEX
 * MAC) and memory stall (HBM overflow not hidden by double buffering).
 */

#ifndef HNLPU_PIPELINE_PIPELINE_SIM_HH
#define HNLPU_PIPELINE_PIPELINE_SIM_HH

#include <vector>

#include "chip/timing.hh"
#include "mem/kv_store.hh"
#include "noc/link.hh"
#include "sim/resource.hh"

namespace hnlpu {

namespace obs {
class Tracer;
} // namespace obs

/**
 * Fault knobs of the pipeline simulator (degraded-mode operation).
 *
 * Link faults model CXL CRC retries: every failed transmission re-
 * occupies the wire after a backoff, and a message that exhausts its
 * retry budget pays a fixed management-layer penalty.  Dead chips are
 * routed around: they drop out of collectives and their row-phase
 * partial sums travel two hops through a live corner chip.  All
 * randomness is seed-deterministic.
 */
struct PipelineFaultConfig
{
    std::uint64_t seed = 0;
    /** Probability one link transmission fails CRC. */
    double linkRetryProbability = 0.0;
    /** Retransmissions allowed after the first attempt. */
    unsigned maxRetries = 8;
    /** Backoff before the first retransmission (doubles per retry). */
    Seconds retryBackoff = 50e-9;
    /** Management-layer penalty once retries are exhausted. */
    Seconds timeoutPenalty = 10e-6;
    /** Chips (grid ids) that failed system test; routed around. */
    std::vector<std::size_t> deadChips;

    bool anyFaults() const
    {
        return linkRetryProbability > 0.0 || !deadChips.empty();
    }
};

/** Full configuration of one pipeline simulation. */
struct PipelineConfig
{
    SystemPartition partition;
    ChipTimingParams timing;
    CxlLinkParams link;
    SramBufferParams buffer;
    HbmParams hbm;
    double bufferKvShare = 0.95;

    /** Decode context length (tokens already cached per sequence). */
    std::size_t contextLength = 2048;
    /** Concurrent sequences contributing KV footprint (paper Fig. 14
     *  sizes the buffer against a single sequence). */
    std::size_t kvSequences = 1;

    /** Split the score all-reduce into shards (reduce-scatter). */
    bool scoreReduceScatter = true;
    /**
     * FlashAttention-style score combination: only running max/sum
     * statistics cross chips instead of the full (heads x context)
     * score tensor, making attention comm context-independent (paper
     * Section 4.3: "VEX adopts the FlashAttention computation flow").
     * Disable for the naive full-score exchange (ablation).
     */
    bool flashScoreStats = true;
    /** Bytes per activation element on the wire (FP16 partial sums). */
    double wireBytesPerElement = 2.0;
    /**
     * Distributed sampling: each chip reduces its local logit shard to
     * per-chip (max, sum, candidate) statistics instead of gathering
     * the full vocabulary (the paper's "specialized unit to perform
     * multinomial sampling").  Disable for the naive full gather.
     */
    bool distributedSampling = true;

    std::size_t warmupTokens = 300;
    std::size_t measuredTokens = 1200;

    /** Fault injection; defaults to a clean system (bit-identical
     *  results to a build without the fault subsystem). */
    PipelineFaultConfig faults;

    /**
     * Optional span sink: every resource occupancy becomes a
     * simulated-time "pipeline" span (name = unit/link name, track =
     * pipeline stage, args.token = token index).  Purely observational
     * -- results are identical with or without it.  Event volume is
     * roughly tokens x layers x 10; trim warmup/measured tokens before
     * tracing a long run.
     */
    obs::Tracer *trace = nullptr;
};

/** Per-token execution-time decomposition (paper Fig. 14 classes). */
struct TokenBreakdown
{
    Seconds comm = 0;
    Seconds projection = 0;
    Seconds nonlinear = 0;
    Seconds attention = 0;
    Seconds stall = 0;

    Seconds total() const
    {
        return comm + projection + nonlinear + attention + stall;
    }
    double commShare() const { return comm / total(); }
    double projectionShare() const { return projection / total(); }
    double nonlinearShare() const { return nonlinear / total(); }
    double attentionShare() const { return attention / total(); }
    double stallShare() const { return stall / total(); }
};

/** Results of a steady-state decode simulation. */
struct PipelineResult
{
    double tokensPerSecond = 0;     //!< steady-state system throughput
    Seconds tokenLatency = 0;       //!< mean pipeline traversal time
    TokenBreakdown breakdown;       //!< mean per-token decomposition
    std::size_t pipelineSlots = 0;  //!< 6 x layers
    double colLinkUtilization = 0;  //!< busiest-class link utilisation
    double rowLinkUtilization = 0;
    double hbmUtilization = 0;
    double kvOverflowFraction = 0;  //!< from the KV placement
    std::uint64_t simulatedTokens = 0;

    // Degraded-mode accounting (all zero on a clean run).
    bool degraded = false;          //!< any fault was configured
    std::size_t deadChips = 0;      //!< chips routed around
    std::uint64_t linkRetries = 0;  //!< CRC retransmissions
    std::uint64_t retryTimeouts = 0;//!< messages past the retry budget
    std::uint64_t reroutedTransfers = 0; //!< two-hop recovery sends
};

/** The chip-representative pipeline simulator. */
class PipelineSim
{
  public:
    explicit PipelineSim(PipelineConfig config);

    /** Run the steady-state decode simulation. */
    PipelineResult run();

    const PipelineConfig &config() const { return config_; }

  private:
    PipelineConfig config_;
};

/** Convenience: the paper's nominal gpt-oss 120 B configuration. */
PipelineConfig defaultGptOssPipeline(std::size_t context_length = 2048);

} // namespace hnlpu

#endif // HNLPU_PIPELINE_PIPELINE_SIM_HH
