/**
 * @file
 * Continuous-batching scheduler (paper Section 5.2).
 *
 * HNLPU holds up to 6 x layers sequences in flight; as soon as one
 * finishes decoding, a waiting request is slotted in.  This scheduler
 * models request-level serving on top of the pipeline simulator's
 * steady-state token rates: each occupied slot advances one token per
 * pipeline traversal, prefill streams the prompt through the pipeline
 * back-to-back, and slots are re-issued continuously.
 */

#ifndef HNLPU_PIPELINE_BATCHER_HH
#define HNLPU_PIPELINE_BATCHER_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace hnlpu {

/** One inference request. */
struct Request
{
    Seconds arrival = 0;
    std::size_t promptTokens = 0;
    std::size_t decodeTokens = 0;
};

/** Completion record for a request. */
struct RequestOutcome
{
    Seconds start = 0;       //!< admission into a pipeline slot
    Seconds firstToken = 0;  //!< prefill complete
    Seconds finish = 0;      //!< last token emitted
    Seconds queueing() const { return start; }
};

/** Serving-level statistics. */
struct BatcherStats
{
    double throughputTokensPerSecond = 0; //!< decoded tokens / makespan
    Seconds makespan = 0;
    Seconds meanLatency = 0;              //!< arrival -> finish
    Seconds meanTimeToFirstToken = 0;
    double meanOccupancy = 0;             //!< busy slots / total slots
    std::uint64_t decodedTokens = 0;
};

/** Continuous-batching serving simulator. */
class ContinuousBatcher
{
  public:
    /**
     * @param slots concurrent sequences (6 x layers = 216 for gpt-oss)
     * @param token_interval pipeline initiation interval (1/throughput
     *        at full batch)
     * @param token_latency one token's pipeline traversal time
     */
    ContinuousBatcher(std::size_t slots, Seconds token_interval,
                      Seconds token_latency);

    /** Serve @p requests (sorted by arrival); returns per-request
     *  outcomes aligned by index. */
    std::vector<RequestOutcome> serve(
        const std::vector<Request> &requests);

    /** Aggregate statistics of the last serve() call. */
    const BatcherStats &stats() const { return stats_; }

  private:
    std::size_t slots_;
    Seconds tokenInterval_;
    Seconds tokenLatency_;
    BatcherStats stats_;
};

} // namespace hnlpu

#endif // HNLPU_PIPELINE_BATCHER_HH
