#include "pipeline/batcher.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace hnlpu {

ContinuousBatcher::ContinuousBatcher(std::size_t slots,
                                     Seconds token_interval,
                                     Seconds token_latency)
    : slots_(slots), tokenInterval_(token_interval),
      tokenLatency_(token_latency)
{
    hnlpu_assert(slots_ > 0, "batcher needs slots");
    hnlpu_assert(token_interval > 0 && token_latency > 0,
                 "bad token timings");
}

std::vector<RequestOutcome>
ContinuousBatcher::serve(const std::vector<Request> &requests)
{
    // Each slot is a server; a request occupies it for its prefill
    // (prompt tokens streamed at the pipeline initiation interval, the
    // last one paying the full traversal latency) plus decode (one
    // traversal per generated token -- sequential dependence).
    std::priority_queue<Seconds, std::vector<Seconds>,
                        std::greater<Seconds>>
        slot_free;
    for (std::size_t s = 0; s < slots_; ++s)
        slot_free.push(0.0);

    std::vector<RequestOutcome> outcomes(requests.size());
    Seconds makespan = 0;
    Seconds latency_sum = 0;
    Seconds ttft_sum = 0;
    Seconds busy_time = 0;
    std::uint64_t decoded = 0;
    std::uint64_t total_tokens = 0;

    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Request &req = requests[i];
        hnlpu_assert(i == 0 || requests[i - 1].arrival <= req.arrival,
                     "requests must be sorted by arrival");
        // A prompt-less request has no position to decode from -- the
        // functional serving engine rejects it too (ServingEngine), so
        // both schedulers agree on which traces are legal.  Zero decode
        // tokens IS legal here: the request occupies its slot for
        // prefill only and finish == firstToken (the serving engine's
        // d-decode request maps onto decodeTokens == d - 1, so d == 1
        // lands on this case).
        hnlpu_assert(req.promptTokens > 0, "request ", i,
                     " has no prompt tokens");
        const Seconds free_at = slot_free.top();
        slot_free.pop();

        RequestOutcome &out = outcomes[i];
        out.start = std::max(req.arrival, free_at);
        const Seconds prefill =
            req.promptTokens > 0
                ? double(req.promptTokens - 1) * tokenInterval_ +
                      tokenLatency_
                : 0.0;
        out.firstToken = out.start + prefill;
        out.finish =
            out.firstToken + double(req.decodeTokens) * tokenLatency_;
        slot_free.push(out.finish);

        makespan = std::max(makespan, out.finish);
        latency_sum += out.finish - req.arrival;
        ttft_sum += out.firstToken - req.arrival;
        busy_time += out.finish - out.start;
        decoded += req.decodeTokens;
        total_tokens += req.promptTokens + req.decodeTokens;
    }

    // Slots share one physical pipeline: the whole run can never beat
    // one token per initiation interval.  Per-request times above are
    // slot-local approximations; the aggregate is capacity-floored.
    makespan = std::max(makespan,
                        double(total_tokens) * tokenInterval_);

    stats_ = BatcherStats{};
    stats_.decodedTokens = decoded;
    stats_.makespan = makespan;
    if (!requests.empty()) {
        stats_.throughputTokensPerSecond =
            makespan > 0 ? double(decoded) / makespan : 0.0;
        stats_.meanLatency = latency_sum / double(requests.size());
        stats_.meanTimeToFirstToken =
            ttft_sum / double(requests.size());
        stats_.meanOccupancy =
            makespan > 0
                ? busy_time / (makespan * double(slots_))
                : 0.0;
    }
    return outcomes;
}

} // namespace hnlpu
