/**
 * @file
 * Cerebras WSE-3-class wafer-scale baseline (paper Section 6.3).
 *
 * The paper takes WSE-3 throughput from the public Cerebras cloud
 * (2,940 tokens/s on gpt-oss 120 B) and system power from published
 * reports (23 kW).  The model anchors to those figures and scales with
 * on-wafer SRAM bandwidth for sweeps.
 */

#ifndef HNLPU_BASELINE_WSE_HH
#define HNLPU_BASELINE_WSE_HH

#include "model/transformer_config.hh"
#include "common/units.hh"

namespace hnlpu {

/** WSE-3-class system parameters. */
struct WseParams
{
    std::string name = "WSE-3";
    BytesPerSecond sramBandwidth = 21e15; //!< aggregate on-wafer
    Bytes sramCapacity = 44.0 * 1e9;
    Watts systemPower = 23000.0;
    AreaMm2 dieArea = 46225.0;
    double rackUnits = 16.0;
    /** Measured-anchored efficiency vs. the SRAM weight-read roofline
     *  (dataflow placement, routing, MoE imbalance). */
    double dataflowEfficiency = 3.59e-4;
};

/** Analytical decode-throughput model for one WSE system. */
class WseSystemModel
{
  public:
    explicit WseSystemModel(WseParams params = WseParams{});

    /** Whether weights fit in on-wafer SRAM (gpt-oss does not; excess
     *  streams from MemoryX, which the efficiency factor absorbs). */
    bool fitsOnWafer(const TransformerConfig &model) const;

    double tokensPerSecond(const TransformerConfig &model) const;
    double tokensPerKilojoule(const TransformerConfig &model) const;
    double areaEfficiency(const TransformerConfig &model) const;

    const WseParams &params() const { return params_; }

  private:
    WseParams params_;
};

} // namespace hnlpu

#endif // HNLPU_BASELINE_WSE_HH
