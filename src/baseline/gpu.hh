/**
 * @file
 * H100-class GPU baseline (paper Section 6.3, Table 2).
 *
 * The paper measures gpt-oss 120 B on an H100 via TensorRT-LLM at a 2 K
 * token length and reports 45 tokens/s at 1.3 kW system power.  We model
 * the GPU analytically as a memory-bandwidth roofline over the active
 * parameter bytes per token, derated by a software/batching efficiency
 * anchored to the measurement; the roofline exposes how the baseline
 * responds to model size, quantisation and bandwidth sweeps.
 */

#ifndef HNLPU_BASELINE_GPU_HH
#define HNLPU_BASELINE_GPU_HH

#include "model/transformer_config.hh"
#include "common/units.hh"

namespace hnlpu {

/** H100-class accelerator parameters. */
struct GpuParams
{
    std::string name = "H100";
    BytesPerSecond memoryBandwidth = 3.35e12;
    Bytes memoryCapacity = 80.0 * 1e9;
    double peakTflops = 1979.0; //!< FP8 tensor, sparse-off
    Watts systemPower = 1300.0; //!< per GPU incl. server share
    AreaMm2 dieArea = 814.0;
    double rackUnits = 1.0;
    /**
     * Measured-anchored end-to-end efficiency versus the weight-read
     * roofline (TensorRT-LLM, interactive 2 K serving of a routed MoE:
     * kernel launch, expert scatter/gather, sampling, scheduling).
     */
    double softwareEfficiency = 0.03446;
};

/** Analytical decode-throughput model for one GPU. */
class GpuSystemModel
{
  public:
    explicit GpuSystemModel(GpuParams params = GpuParams{});

    /** Whether the quantised model fits on a single GPU. */
    bool fits(const TransformerConfig &model) const;

    /** Decode tokens/s for @p model (roofline x efficiency). */
    double tokensPerSecond(const TransformerConfig &model) const;

    /** Roofline bound without the software derating. */
    double rooflineTokensPerSecond(const TransformerConfig &model) const;

    /** Tokens per kilojoule. */
    double tokensPerKilojoule(const TransformerConfig &model) const;

    /** Tokens per second per mm^2 of silicon. */
    double areaEfficiency(const TransformerConfig &model) const;

    const GpuParams &params() const { return params_; }

  private:
    GpuParams params_;
};

} // namespace hnlpu

#endif // HNLPU_BASELINE_GPU_HH
