#include "baseline/wse.hh"

#include "common/logging.hh"

namespace hnlpu {

WseSystemModel::WseSystemModel(WseParams params) : params_(params) {}

bool
WseSystemModel::fitsOnWafer(const TransformerConfig &model) const
{
    return model.totalWeightBytes() < params_.sramCapacity;
}

double
WseSystemModel::tokensPerSecond(const TransformerConfig &model) const
{
    const double active_bytes =
        double(model.activeParams()) * model.weightBits / 8.0;
    hnlpu_assert(active_bytes > 0, "model has no active parameters");
    return params_.sramBandwidth / active_bytes *
           params_.dataflowEfficiency;
}

double
WseSystemModel::tokensPerKilojoule(const TransformerConfig &model) const
{
    return tokensPerSecond(model) / params_.systemPower * 1000.0;
}

double
WseSystemModel::areaEfficiency(const TransformerConfig &model) const
{
    return tokensPerSecond(model) / params_.dieArea;
}

} // namespace hnlpu
