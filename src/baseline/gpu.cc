#include "baseline/gpu.hh"

#include "common/logging.hh"

namespace hnlpu {

GpuSystemModel::GpuSystemModel(GpuParams params) : params_(params) {}

bool
GpuSystemModel::fits(const TransformerConfig &model) const
{
    // Weights plus a working-set allowance for KV and activations.
    return model.totalWeightBytes() * 1.15 < params_.memoryCapacity;
}

double
GpuSystemModel::rooflineTokensPerSecond(
    const TransformerConfig &model) const
{
    // Decode is memory bound at ~1 op/byte: every active parameter is
    // fetched once per token.
    const double active_bytes =
        double(model.activeParams()) * model.weightBits / 8.0;
    hnlpu_assert(active_bytes > 0, "model has no active parameters");
    return params_.memoryBandwidth / active_bytes;
}

double
GpuSystemModel::tokensPerSecond(const TransformerConfig &model) const
{
    return rooflineTokensPerSecond(model) * params_.softwareEfficiency;
}

double
GpuSystemModel::tokensPerKilojoule(const TransformerConfig &model) const
{
    return tokensPerSecond(model) / params_.systemPower * 1000.0;
}

double
GpuSystemModel::areaEfficiency(const TransformerConfig &model) const
{
    return tokensPerSecond(model) / params_.dieArea;
}

} // namespace hnlpu
