#include "serve/router.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "fault/model_faults.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"

namespace hnlpu::serve {

namespace {

/** Quantile resolution, as ServingEngine (see serving.cc). */
constexpr std::size_t kQuantileBins = 4096;

/** Class index for the queues_ array. */
std::size_t
classIndex(RequestClass cls)
{
    return cls == RequestClass::Interactive ? 0 : 1;
}

} // namespace

const char *
requestClassName(RequestClass cls)
{
    return cls == RequestClass::Interactive ? "interactive" : "batch";
}

const char *
shardStateName(ShardState state)
{
    switch (state) {
      case ShardState::Healthy: return "healthy";
      case ShardState::Degraded: return "degraded";
      case ShardState::Drained: return "drained";
    }
    hnlpu_panic("unknown ShardState ", int(state));
}

const char *
requestStatusName(RequestStatus status)
{
    switch (status) {
      case RequestStatus::Completed: return "completed";
      case RequestStatus::Shed: return "shed";
      case RequestStatus::Cancelled: return "cancelled";
    }
    hnlpu_panic("unknown RequestStatus ", int(status));
}

void
RouterConfig::validate(std::size_t vocab_size) const
{
    if (shards == 0)
        hnlpu_fatal("router needs at least one shard");
    if (slotsPerShard == 0)
        hnlpu_fatal("router shards need at least one slot");
    if (interactiveQueueCapacity == 0 || batchQueueCapacity == 0)
        hnlpu_fatal("router queue capacities must be >= 1");
    if (backoffBaseSteps == 0)
        hnlpu_fatal("router backoff base must be >= 1 step");
    if (backoffCapSteps < backoffBaseSteps)
        hnlpu_fatal("router backoff cap ", backoffCapSteps,
                    " below base ", backoffBaseSteps);
    if (probePrompt.empty() || probeTokens == 0)
        hnlpu_fatal("router health probe needs a prompt and >= 1 token");
    for (const std::size_t id : probePrompt) {
        if (id >= vocab_size)
            hnlpu_fatal("router probe token ", id,
                        " out of vocab range ", vocab_size);
    }
    if (!(bytesPerToken > 0.0))
        hnlpu_fatal("router bytesPerToken must be positive");
    link.validate();
}

ShardState
ServingRouter::Shard::state() const
{
    if (weightsCorrupt || linkDead)
        return ShardState::Drained;
    if (linkLossy)
        return ShardState::Degraded;
    return ShardState::Healthy;
}

std::size_t
ServingRouter::Shard::freeSlots() const
{
    std::size_t n = 0;
    for (const Slot &slot : slots)
        n += slot.busy ? 0 : 1;
    return n;
}

std::size_t
ServingRouter::Shard::busySlots() const
{
    return slots.size() - freeSlots();
}

ServingRouter::ServingRouter(const TransformerConfig &cfg,
                             const ModelWeights &clean, ExecPath path,
                             unsigned activation_bits,
                             const ExecOptions &exec,
                             RouterConfig config)
    : cfg_(cfg), clean_(clean), path_(path),
      activationBits_(activation_bits), exec_(exec),
      config_(std::move(config))
{
    config_.validate(cfg_.vocabSize);
    exec_.batchSlots = config_.slotsPerShard;

    shards_.resize(config_.shards);
    for (Shard &shard : shards_) {
        shard.engine = makeEngine(clean_);
        // One private frontend(0) <-> shard(1) CXL link pair, so a
        // fault event can make a single shard's link lossy or dead
        // without touching its peers.
        shard.fabric =
            std::make_unique<Fabric>(1, 2, config_.link);
        shard.slots.resize(config_.slotsPerShard);
    }

    // Golden health-probe transcript from a throwaway clean engine
    // (shard engines are left unpolluted).  Greedy sampling: the probe
    // must depend on the weights alone, never on an RNG stream.
    {
        Engine probe_engine(cfg_, clean_, path_, activationBits_,
                            exec_);
        Sampler greedy(SamplerConfig{0.0, 0}, 0);
        goldenProbe_ = probe_engine.generate(
            config_.probePrompt, config_.probeTokens, greedy);
    }

    stats_.shards = config_.shards;
    stats_.slotsPerShard = config_.slotsPerShard;
}

std::unique_ptr<Engine>
ServingRouter::makeEngine(const ModelWeights &weights)
{
    return std::make_unique<Engine>(cfg_, weights, path_,
                                    activationBits_, exec_);
}

ShardState
ServingRouter::shardState(std::size_t shard) const
{
    hnlpu_assert(shard < shards_.size(), "shard index out of range");
    return shards_[shard].state();
}

std::size_t
ServingRouter::healthyShards() const
{
    std::size_t n = 0;
    for (const Shard &shard : shards_)
        n += shard.state() == ShardState::Healthy ? 1 : 0;
    return n;
}

std::size_t
ServingRouter::usableShards() const
{
    std::size_t n = 0;
    for (const Shard &shard : shards_)
        n += shard.state() != ShardState::Drained ? 1 : 0;
    return n;
}

void
ServingRouter::freshCycle()
{
    // run() clears requests_ but keeps outcomes_/stats_ readable; the
    // first submission after it starts a new accounting cycle.  Shard
    // damage persists: hardware does not resurrect between runs.
    if (!requests_.empty() || outcomes_.empty())
        return;
    outcomes_.clear();
    stepWall_.clear();
    stats_ = RouterStats{};
    stats_.shards = config_.shards;
    stats_.slotsPerShard = config_.slotsPerShard;
}

EnqueueResult
ServingRouter::enqueue(RouterRequest request)
{
    freshCycle();
    const std::size_t id = requests_.size();

    // Validation that needs no queue state.
    RejectReason reason = RejectReason::None;
    if (request.prompt.empty()) {
        reason = RejectReason::EmptyPrompt;
    } else if (request.decodeTokens == 0) {
        reason = RejectReason::ZeroDecodeTokens;
    } else {
        for (const std::size_t tok : request.prompt) {
            if (tok >= cfg_.vocabSize) {
                reason = RejectReason::TokenOutOfVocab;
                break;
            }
        }
    }
    if (reason == RejectReason::None)
        reason = validateSamplerConfig(request.sampler, cfg_.vocabSize);
    if (reason == RejectReason::None) {
        // A budget below the minimum servable step count can never be
        // met (first token p steps after admission, last token
        // p + d - 1): refuse up front instead of admitting work that
        // is guaranteed to be cancelled.
        const std::size_t p = request.prompt.size();
        const std::size_t min_total = p + request.decodeTokens - 1;
        if ((request.ttftDeadlineSteps != 0 &&
             request.ttftDeadlineSteps < p) ||
            (request.deadlineSteps != 0 &&
             request.deadlineSteps < min_total))
            reason = RejectReason::DeadlineInfeasible;
    }
    if (reason == RejectReason::None && !requests_.empty() &&
        requests_.back().req.arrivalStep > request.arrivalStep)
        reason = RejectReason::ArrivalOrderViolation;
    if (reason == RejectReason::None) {
        // Bounded queues: backpressure by typed shedding, not abort.
        const auto &queue = queues_[classIndex(request.cls)];
        const std::size_t capacity =
            request.cls == RequestClass::Interactive
                ? config_.interactiveQueueCapacity
                : config_.batchQueueCapacity;
        if (queue.size() >= capacity)
            reason = RejectReason::QueueFull;
    }

    ReqState state;
    state.readyStep = request.arrivalStep;
    state.req = std::move(request);
    requests_.push_back(std::move(state));

    RouterOutcome out;
    out.id = id;
    out.cls = requests_.back().req.cls;
    out.arrivalStep = requests_.back().req.arrivalStep;
    outcomes_.push_back(std::move(out));
    ++stats_.requests;

    if (reason != RejectReason::None) {
        finish(id, RequestStatus::Shed, reason,
               requests_.back().req.arrivalStep);
        return {id, reason};
    }
    queues_[classIndex(requests_.back().req.cls)].push_back(id);
    return {id, RejectReason::None};
}

void
ServingRouter::scheduleFault(ShardFaultEvent event)
{
    freshCycle();
    hnlpu_assert(event.shard < shards_.size(),
                 "fault event shard ", event.shard, " out of range");
    hnlpu_assert(schedule_.empty() ||
                     schedule_.back().step <= event.step,
                 "fault schedule must be step-ordered");
    event.modelFaults.validate();
    event.linkFaults.validate();
    schedule_.push_back(std::move(event));
}

void
ServingRouter::finish(std::size_t id, RequestStatus status,
                      RejectReason reason, std::size_t step)
{
    ReqState &state = requests_[id];
    hnlpu_assert(!state.terminal, "request ", id, " finished twice");
    state.terminal = true;
    ++terminalCount_;

    RouterOutcome &out = outcomes_[id];
    out.status = status;
    out.reason = reason;
    out.finishStep = step;
    out.retries = state.attempts > 0 ? state.attempts - 1 : 0;

    switch (status) {
      case RequestStatus::Completed:
        ++stats_.completed;
        stats_.decodedTokens += out.tokens.size();
        break;
      case RequestStatus::Shed:
        ++stats_.shed;
        break;
      case RequestStatus::Cancelled:
        ++stats_.cancelled;
        break;
    }
    if (reason != RejectReason::None)
        ++stats_.byReason[std::size_t(reason)];

    // A fault recovery episode closes when every displaced request
    // reaches a terminal status again.
    for (std::size_t r = 0; r < openRecoveries_.size();) {
        OpenRecovery &rec = openRecoveries_[r];
        auto it = std::find(rec.waiting.begin(), rec.waiting.end(), id);
        if (it != rec.waiting.end())
            rec.waiting.erase(it);
        if (rec.waiting.empty()) {
            rec.record.recoveredStep = step;
            stats_.recoveries.push_back(rec.record);
            openRecoveries_.erase(openRecoveries_.begin() +
                                  std::ptrdiff_t(r));
        } else {
            ++r;
        }
    }
}

bool
ServingRouter::probeShard(Shard &shard)
{
    ++stats_.probes;
    const obs::Sink *const sink = exec_.sink;
    obs::ScopedSpan span(sink ? sink->trace : nullptr, "router",
                         "router.probe");
    Sampler greedy(SamplerConfig{0.0, 0}, 0);
    const auto got = shard.engine->generate(config_.probePrompt,
                                            config_.probeTokens, greedy);
    return got == goldenProbe_;
}

void
ServingRouter::failoverShard(std::size_t shard_index, std::size_t step)
{
    Shard &shard = shards_[shard_index];
    const obs::Sink *const sink = exec_.sink;
    obs::ScopedSpan span(sink ? sink->trace : nullptr, "router",
                         "router.retry");

    OpenRecovery recovery;
    recovery.record.faultStep = step;
    recovery.record.shard = shard_index;

    for (Slot &slot : shard.slots) {
        if (!slot.busy)
            continue;
        const std::size_t id = slot.request;
        slot.busy = false;
        slot.cache.reset();
        slot.sampler.reset();
        ++stats_.failovers;

        ReqState &state = requests_[id];
        RouterOutcome &out = outcomes_[id];
        // Partial decode from the failed shard is discarded: the retry
        // restarts prefill with a fresh Sampler(config, seed), so the
        // completed transcript is bit-identical to a clean solo
        // Engine::generate regardless of where the fault interrupted.
        out.tokens.clear();
        out.firstTokenStep = 0;

        if (state.attempts > config_.maxRetries) {
            finish(id, RequestStatus::Shed,
                   RejectReason::RetriesExhausted, step);
            continue;
        }
        ++stats_.retries;
        const std::size_t shift = state.attempts - 1;
        std::size_t delay = config_.backoffCapSteps;
        if (shift < 8 * sizeof(std::size_t) &&
            (config_.backoffBaseSteps << shift) >>
                    shift == config_.backoffBaseSteps)
            delay = std::min(config_.backoffCapSteps,
                             config_.backoffBaseSteps << shift);
        state.readyStep = step + delay;
        recovery.record.inflight++;
        recovery.waiting.push_back(id);
        // Displaced requests re-enter at the FRONT of their class
        // queue (they were admitted earliest), in id order.
        auto &queue = queues_[classIndex(state.req.cls)];
        auto pos = queue.begin();
        while (pos != queue.end() && *pos < id &&
               std::find(recovery.waiting.begin(),
                         recovery.waiting.end(),
                         *pos) != recovery.waiting.end())
            ++pos;
        queue.insert(pos, id);
    }

    hnlpu_warn_ratelimited("router: shard ", shard_index,
                           " drained at step ", step, "; ",
                           recovery.record.inflight,
                           " in-flight request(s) failed over");
    if (recovery.waiting.empty()) {
        // Nothing was in flight: the episode recovers instantly.
        recovery.record.recoveredStep = step;
        stats_.recoveries.push_back(recovery.record);
    } else {
        openRecoveries_.push_back(std::move(recovery));
    }
}

void
ServingRouter::applyFaultEvents(std::size_t step)
{
    while (nextEvent_ < schedule_.size() &&
           schedule_[nextEvent_].step <= step) {
        const ShardFaultEvent &event = schedule_[nextEvent_++];
        Shard &shard = shards_[event.shard];
        ++stats_.faultsInjected;

        if (event.killLink && !shard.linkDead) {
            shard.fabric->markChipDead(1);
            shard.linkDead = true;
        }
        if (event.linkFaults.enabled()) {
            shard.fabric->setLinkFaults(event.linkFaults);
            // The CRC-retry storm is visible to the link layer itself:
            // the shard is immediately declared degraded (correct
            // tokens, reduced service) rather than waiting for
            // timeouts to pile up.
            shard.linkLossy = true;
        }
        if (event.modelFaults.enabled()) {
            // Rebuild the shard's weights with the plan burned in, on
            // the same engine configuration, then health-probe: a
            // spare-repaired plan is functionally identical to clean
            // weights, so in-flight KV caches stay valid and decode
            // continues bit-identically.  Any other plan fails the
            // probe and the shard is drained before it can sample a
            // single corrupted token.
            FaultInjector injector(event.modelFaults);
            shard.faultedWeights = std::make_unique<ModelWeights>(
                applyToModel(clean_, cfg_, injector, nullptr));
            shard.engine = makeEngine(*shard.faultedWeights);
            if (!probeShard(shard)) {
                ++stats_.probeFailures;
                shard.weightsCorrupt = true;
            }
        }
        if (shard.state() == ShardState::Drained)
            failoverShard(event.shard, step);
    }
}

void
ServingRouter::sweepDeadlines(std::size_t step)
{
    // Cancel condition at the start of step s: a token sampled this
    // step is recorded at s + 1, so "no first token and
    // s >= arrival + ttftBudget" is exactly "firstTokenStep would
    // exceed the budget"; survivors therefore always meet their
    // budgets (same algebra for the total deadline).
    const obs::Sink *const sink = exec_.sink;
    obs::MetricsRegistry *const metrics = sink ? sink->metrics : nullptr;

    const auto expired = [&](std::size_t id) {
        const ReqState &state = requests_[id];
        const RouterOutcome &out = outcomes_[id];
        const RouterRequest &req = state.req;
        std::size_t deadline = npos;
        if (req.ttftDeadlineSteps != 0 && out.tokens.empty())
            deadline = req.arrivalStep + req.ttftDeadlineSteps;
        if (req.deadlineSteps != 0)
            deadline = std::min(deadline,
                                req.arrivalStep + req.deadlineSteps);
        if (deadline == npos || step < deadline)
            return false;
        if (metrics) {
            metrics
                ->latency("router.deadline_miss_steps", 0.0, 4096.0,
                          kQuantileBins)
                ->observe(double(step + 1 - deadline));
        }
        return true;
    };

    // Queued requests (including ones waiting out a retry backoff).
    for (auto &queue : queues_) {
        for (auto it = queue.begin(); it != queue.end();) {
            if (expired(*it)) {
                const std::size_t id = *it;
                it = queue.erase(it);
                finish(id, RequestStatus::Cancelled,
                       RejectReason::DeadlineExpired, step);
            } else {
                ++it;
            }
        }
    }
    // In-flight requests: cancellation mid-decode reclaims the slot
    // this very step.
    for (Shard &shard : shards_) {
        for (Slot &slot : shard.slots) {
            if (!slot.busy || !expired(slot.request))
                continue;
            const std::size_t id = slot.request;
            slot.busy = false;
            slot.cache.reset();
            slot.sampler.reset();
            finish(id, RequestStatus::Cancelled,
                   RejectReason::DeadlineExpired, step);
        }
    }
}

void
ServingRouter::shedPolicy(std::size_t step)
{
    // Shard health is monotone within a run (hardware does not
    // resurrect), so shedding future arrivals once the fleet is out of
    // capacity is sound, terminates the run early, and keeps the
    // policy simple to state: batch first, interactive only when
    // nothing can serve at all.
    const auto shedQueue = [&](std::deque<std::size_t> &queue,
                               RejectReason reason) {
        while (!queue.empty()) {
            const std::size_t id = queue.front();
            queue.pop_front();
            finish(id, RequestStatus::Shed, reason, step);
        }
    };
    if (usableShards() == 0) {
        stats_.degradedMode = true;
        shedQueue(queues_[classIndex(RequestClass::Batch)],
                  RejectReason::NoUsableShard);
        shedQueue(queues_[classIndex(RequestClass::Interactive)],
                  RejectReason::NoUsableShard);
    } else if (healthyShards() == 0) {
        stats_.degradedMode = true;
        shedQueue(queues_[classIndex(RequestClass::Batch)],
                  RejectReason::DegradedShed);
    }
}

void
ServingRouter::dispatchSend(std::size_t shard_index,
                            std::size_t tokens)
{
    Shard &shard = shards_[shard_index];
    if (shard.linkDead)
        return;
    const std::uint64_t before = shard.fabric->retryTimeouts();
    shard.linkNow = shard.fabric->send(
        0, 1, Bytes(double(tokens) * config_.bytesPerToken),
        shard.linkNow);
    const std::uint64_t delta =
        shard.fabric->retryTimeouts() - before;
    if (delta == 0)
        return;
    shard.linkTimeouts += delta;
    stats_.linkTimeouts += delta;
    if (shard.linkTimeouts >= config_.linkTimeoutLimit &&
        !shard.linkLossy) {
        shard.linkLossy = true;
        hnlpu_warn_ratelimited("router: shard ", shard_index,
                               " link hit ", shard.linkTimeouts,
                               " retry timeouts; marking degraded");
    }
}

void
ServingRouter::admit(std::size_t step)
{
    // Interactive drains before batch.  Within a class, FIFO over the
    // ready entries; backoff-delayed retries simply stay queued until
    // their readyStep.  Shard choice: least-busy healthy shard first
    // (lowest index on ties); interactive may fall back to degraded
    // shards, batch never runs on one.
    for (const RequestClass cls :
         {RequestClass::Interactive, RequestClass::Batch}) {
        auto &queue = queues_[classIndex(cls)];
        for (auto it = queue.begin(); it != queue.end();) {
            const std::size_t id = *it;
            ReqState &state = requests_[id];
            if (state.readyStep > step) {
                ++it;
                continue;
            }
            std::size_t best = npos;
            int best_rank = 3;
            std::size_t best_busy = 0;
            for (std::size_t s = 0; s < shards_.size(); ++s) {
                const Shard &shard = shards_[s];
                if (shard.freeSlots() == 0)
                    continue;
                const ShardState st = shard.state();
                int rank;
                if (st == ShardState::Healthy)
                    rank = 0;
                else if (st == ShardState::Degraded &&
                         cls == RequestClass::Interactive)
                    rank = 1;
                else
                    continue;
                const std::size_t busy = shard.busySlots();
                if (rank < best_rank ||
                    (rank == best_rank && busy < best_busy)) {
                    best = s;
                    best_rank = rank;
                    best_busy = busy;
                }
            }
            if (best == npos)
                break; // no capacity for this class right now
            it = queue.erase(it);

            Shard &shard = shards_[best];
            Slot *slot = nullptr;
            for (Slot &candidate : shard.slots) {
                if (!candidate.busy) {
                    slot = &candidate;
                    break;
                }
            }
            hnlpu_assert(slot, "free-slot accounting out of sync");
            const RouterRequest &req = state.req;
            slot->busy = true;
            slot->request = id;
            slot->fed = 0;
            slot->cache.emplace(shard.engine->makeCache(
                req.prompt.size() + req.decodeTokens));
            slot->sampler.emplace(req.sampler, req.seed);
            ++state.attempts;
            outcomes_[id].admitStep = step;
            outcomes_[id].shard = best;
            dispatchSend(best, req.prompt.size());
        }
    }
}

void
ServingRouter::stepShard(Shard &shard, std::size_t step)
{
    std::vector<std::size_t> tokens;
    std::vector<KvCache *> caches;
    std::vector<std::uint8_t> want;
    std::vector<Slot *> active;
    for (Slot &slot : shard.slots) {
        if (!slot.busy)
            continue;
        const RouterRequest &req = requests_[slot.request].req;
        const RouterOutcome &out = outcomes_[slot.request];
        const std::size_t p = req.prompt.size();
        tokens.push_back(slot.fed < p ? req.prompt[slot.fed]
                                      : out.tokens.back());
        caches.push_back(&*slot.cache);
        want.push_back(slot.fed + 1 >= p ? 1 : 0);
        active.push_back(&slot);
    }
    if (tokens.empty())
        return;

    const obs::Sink *const sink = exec_.sink;
    std::string args;
    if (sink && sink->trace) {
        obs::JsonWriter w(0);
        w.beginObject()
            .field("step", step)
            .field("batch", tokens.size())
            .endObject();
        args = w.str();
    }
    std::vector<Vec> logits;
    {
        obs::ScopedSpan span(sink ? sink->trace : nullptr, "router",
                             "router.shard_step", std::move(args));
        logits = shard.engine->forwardTokenBatch(tokens, caches, want);
    }
    for (std::size_t c = 0; c < active.size(); ++c) {
        Slot &slot = *active[c];
        const RouterRequest &req = requests_[slot.request].req;
        RouterOutcome &out = outcomes_[slot.request];
        ++slot.fed;
        if (want[c] == 0)
            continue;
        out.tokens.push_back(slot.sampler->sample(logits[c]));
        ++shard.decodedTokens;
        if (out.tokens.size() == 1)
            out.firstTokenStep = step + 1;
        if (out.tokens.size() == req.decodeTokens) {
            // Terminal bookkeeping (finish()) runs on the router
            // thread after the join; here we only release the slot.
            slot.busy = false;
            slot.cache.reset();
            slot.sampler.reset();
        }
    }
}

std::vector<RouterOutcome>
ServingRouter::run()
{
    const std::size_t n = requests_.size();

    const obs::Sink *const sink = exec_.sink;
    obs::Tracer *const trace = sink ? sink->trace : nullptr;
    obs::MetricsRegistry *const metrics = sink ? sink->metrics : nullptr;
    obs::Counter *c_steps = nullptr, *c_decoded = nullptr,
                 *c_retries = nullptr, *c_failovers = nullptr,
                 *c_shed = nullptr, *c_cancelled = nullptr,
                 *c_faults = nullptr;
    obs::Gauge *g_q_interactive = nullptr, *g_q_batch = nullptr,
               *g_healthy = nullptr, *g_degraded_mode = nullptr;
    if (metrics) {
        c_steps = metrics->counter("router.steps");
        c_decoded = metrics->counter("router.decoded_tokens");
        c_retries = metrics->counter("router.retries");
        c_failovers = metrics->counter("router.failovers");
        c_shed = metrics->counter("router.shed");
        c_cancelled = metrics->counter("router.cancelled");
        c_faults = metrics->counter("router.faults_injected");
        g_q_interactive =
            metrics->gauge("router.queue_depth_interactive");
        g_q_batch = metrics->gauge("router.queue_depth_batch");
        g_healthy = metrics->gauge("router.healthy_shards");
        g_degraded_mode = metrics->gauge("router.degraded_mode");
    }
    // Deltas against the pre-run counts so enqueue-time sheds are
    // mirrored too.
    std::size_t seen_shed = 0, seen_cancelled = 0, seen_retries = 0,
                seen_failovers = 0, seen_faults = 0;
    const auto mirrorCounters = [&] {
        if (!metrics)
            return;
        c_shed->add(stats_.shed - seen_shed);
        c_cancelled->add(stats_.cancelled - seen_cancelled);
        c_retries->add(stats_.retries - seen_retries);
        c_failovers->add(stats_.failovers - seen_failovers);
        c_faults->add(stats_.faultsInjected - seen_faults);
        seen_shed = stats_.shed;
        seen_cancelled = stats_.cancelled;
        seen_retries = stats_.retries;
        seen_failovers = stats_.failovers;
        seen_faults = stats_.faultsInjected;
    };

    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed = [&t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    stepWall_.clear();
    std::size_t step = 0;
    std::vector<std::thread> workers;
    while (terminalCount_ < n) {
        applyFaultEvents(step);
        sweepDeadlines(step);
        shedPolicy(step);
        admit(step);
        mirrorCounters();

        bool any_busy = false;
        for (const Shard &shard : shards_)
            any_busy = any_busy || shard.busySlots() > 0;
        if (metrics) {
            g_q_interactive->set(double(queues_[0].size()));
            g_q_batch->set(double(queues_[1].size()));
            g_healthy->set(double(healthyShards()));
            g_degraded_mode->set(stats_.degradedMode ? 1.0 : 0.0);
        }
        if (!any_busy) {
            if (terminalCount_ >= n)
                break;
            // Jump the idle clock to the next actionable step: the
            // earliest ready queue entry, clamped to the next fault
            // event so injections fire at their scheduled step.
            std::size_t target = npos;
            for (const auto &queue : queues_) {
                for (const std::size_t id : queue)
                    target = std::min(target,
                                      requests_[id].readyStep);
            }
            hnlpu_assert(target != npos,
                         "router stalled with ", n - terminalCount_,
                         " unfinished requests");
            if (nextEvent_ < schedule_.size())
                target = std::min(target,
                                  schedule_[nextEvent_].step);
            hnlpu_assert(target > step, "router clock failed to "
                                        "advance at step ", step);
            const double now = elapsed();
            while (step < target) {
                stepWall_.push_back(now);
                ++step;
            }
            continue;
        }
        stepWall_.push_back(elapsed());

        std::string step_args;
        if (trace) {
            obs::JsonWriter w(0);
            w.beginObject().field("step", step).endObject();
            step_args = w.str();
        }
        {
            obs::ScopedSpan span(trace, "router", "router.step",
                                 std::move(step_args));
            workers.clear();
            for (Shard &shard : shards_) {
                if (shard.busySlots() == 0)
                    continue;
                workers.emplace_back([this, &shard, step] {
                    stepShard(shard, step);
                });
            }
            for (std::thread &worker : workers)
                worker.join();
        }
        ++stats_.executedSteps;
        if (c_steps)
            c_steps->add(1);

        // Terminal bookkeeping on the router thread, in deterministic
        // (shard, request) order.
        for (Shard &shard : shards_) {
            if (c_decoded && shard.decodedTokens) {
                c_decoded->add(shard.decodedTokens);
                shard.decodedTokens = 0;
            }
        }
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            for (Slot &slot : shards_[s].slots) {
                // A slot released by stepShard with a full transcript
                // is a completion (failover/cancel paths finish()
                // their requests themselves and clear slot.request).
                if (slot.busy || slot.request == npos)
                    continue;
                const std::size_t id = slot.request;
                if (!requests_[id].terminal &&
                    outcomes_[id].tokens.size() ==
                        requests_[id].req.decodeTokens)
                    finish(id, RequestStatus::Completed,
                           RejectReason::None, step + 1);
                slot.request = npos;
            }
        }
        mirrorCounters();
        ++step;
    }
    stepWall_.push_back(elapsed());
    mirrorCounters();

    // Wall-clock metrics.  Front-door sheds may carry arrival steps
    // beyond the executed range; clamp the lookup.
    const auto wallAt = [this](std::size_t s) {
        if (stepWall_.empty())
            return 0.0;
        return stepWall_[std::min(s, stepWall_.size() - 1)];
    };
    std::vector<double> ttfts, latencies;
    for (RouterOutcome &out : outcomes_) {
        if (out.status != RequestStatus::Completed)
            continue;
        const double arrival = wallAt(out.arrivalStep);
        out.queueSeconds = wallAt(out.admitStep) - arrival;
        out.ttftSeconds = wallAt(out.firstTokenStep) - arrival;
        out.latencySeconds = wallAt(out.finishStep) - arrival;
        ttfts.push_back(out.ttftSeconds);
        latencies.push_back(out.latencySeconds);
        if (metrics) {
            metrics->latency("router.ttft_seconds")
                ->observe(out.ttftSeconds);
            metrics->latency("router.latency_seconds")
                ->observe(out.latencySeconds);
        }
    }
    stats_.wallSeconds = stepWall_.back();
    stats_.goodputTokensPerSecond =
        stats_.wallSeconds > 0
            ? double(stats_.decodedTokens) / stats_.wallSeconds
            : 0.0;
    const Histogram ttft_hist =
        Histogram::fromSamples(ttfts, kQuantileBins);
    const Histogram latency_hist =
        Histogram::fromSamples(latencies, kQuantileBins);
    stats_.ttftP50Seconds = ttft_hist.quantile(0.50);
    stats_.ttftP99Seconds = ttft_hist.quantile(0.99);
    stats_.latencyP50Seconds = latency_hist.quantile(0.50);
    stats_.latencyP95Seconds = latency_hist.quantile(0.95);
    for (RecoveryRecord &rec : stats_.recoveries) {
        rec.recoverySeconds =
            wallAt(rec.recoveredStep) - wallAt(rec.faultStep);
    }
    hnlpu_assert(openRecoveries_.empty(),
                 "router finished with an open recovery episode");

    // The cycle is served; a following enqueue starts a fresh one.
    // Shard damage persists (hardware does not resurrect).
    std::vector<RouterOutcome> served = outcomes_;
    requests_.clear();
    for (auto &queue : queues_)
        queue.clear();
    schedule_.clear();
    nextEvent_ = 0;
    terminalCount_ = 0;
    return served;
}

std::string
ServingRouter::metricsJson() const
{
    obs::JsonWriter w(2);
    w.beginObject();
    w.field("shards", stats_.shards);
    w.field("slots_per_shard", stats_.slotsPerShard);
    w.field("requests", stats_.requests);
    w.field("completed", stats_.completed);
    w.field("shed", stats_.shed);
    w.field("cancelled", stats_.cancelled);
    w.field("retries", stats_.retries);
    w.field("failovers", stats_.failovers);
    w.field("faults_injected", stats_.faultsInjected);
    w.field("probes", stats_.probes);
    w.field("probe_failures", stats_.probeFailures);
    w.field("link_timeouts", stats_.linkTimeouts);
    w.field("degraded_mode", stats_.degradedMode);
    w.field("executed_steps", stats_.executedSteps);
    w.field("decoded_tokens", stats_.decodedTokens);
    w.field("wall_seconds", stats_.wallSeconds);
    w.field("goodput_tokens_per_second",
            stats_.goodputTokensPerSecond);
    w.field("shed_rate",
            stats_.requests > 0
                ? double(stats_.shed + stats_.cancelled) /
                      double(stats_.requests)
                : 0.0);
    w.key("ttft_seconds")
        .beginObject()
        .field("p50", stats_.ttftP50Seconds)
        .field("p99", stats_.ttftP99Seconds)
        .endObject();
    w.key("latency_seconds")
        .beginObject()
        .field("p50", stats_.latencyP50Seconds)
        .field("p95", stats_.latencyP95Seconds)
        .endObject();
    w.key("shed_by_reason").beginObject();
    for (std::size_t r = 1; r < kRejectReasonCount; ++r) {
        if (stats_.byReason[r] != 0)
            w.field(rejectReasonName(RejectReason(r)),
                    stats_.byReason[r]);
    }
    w.endObject();
    w.key("shard_states").beginArray();
    for (const Shard &shard : shards_)
        w.value(shardStateName(shard.state()));
    w.endArray();
    w.key("recoveries").beginArray();
    for (const RecoveryRecord &rec : stats_.recoveries) {
        w.beginObject()
            .field("fault_step", rec.faultStep)
            .field("shard", rec.shard)
            .field("inflight", rec.inflight)
            .field("recovered_step", rec.recoveredStep)
            .field("recovery_steps",
                   rec.recoveredStep - rec.faultStep)
            .field("recovery_seconds", rec.recoverySeconds)
            .endObject();
    }
    w.endArray();
    w.key("requests_detail").beginArray();
    for (const RouterOutcome &out : outcomes_) {
        w.beginObject();
        w.field("id", out.id);
        w.field("class", requestClassName(out.cls));
        w.field("status", requestStatusName(out.status));
        w.field("reason", rejectReasonName(out.reason));
        w.field("arrival_step", out.arrivalStep);
        w.field("admit_step", out.admitStep);
        w.field("first_token_step", out.firstTokenStep);
        w.field("finish_step", out.finishStep);
        w.field("retries", out.retries);
        if (out.shard != npos)
            w.field("shard", out.shard);
        w.field("decoded_tokens", out.tokens.size());
        w.field("queue_seconds", out.queueSeconds);
        w.field("ttft_seconds", out.ttftSeconds);
        w.field("latency_seconds", out.latencySeconds);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace hnlpu::serve
