/**
 * @file
 * Fault-tolerant serving router: N engine shards behind one admission
 * front end.
 *
 * The paper's economic case is HNLPU fleets under heavy sustained
 * traffic, so the serving path has to survive exactly the faults the
 * hardware model already admits -- dead neurons beyond spare-repair
 * capacity (src/fault), and flaky or severed CXL links (src/noc) --
 * without dropping the fleet or corrupting a single served token.  The
 * router fronts N shards, each a full Engine replica with its own
 * decode slots (the continuous-batching semantics of ServingEngine),
 * and layers four robustness mechanisms on the shared scheduler step
 * clock:
 *
 *  1. *Admission control*: bounded per-class queues (interactive ahead
 *     of batch) with typed load shedding (RejectReason) instead of the
 *     fatal aborts the single-engine path historically used.
 *  2. *Deadlines*: requests carry TTFT and total step budgets; an
 *     expired request is cancelled -- mid-decode if necessary -- and
 *     its slot reclaimed the same step.
 *  3. *Shard health and failover*: a fault event rebuilds the shard's
 *     weights through fault::applyToModel and the router probes it
 *     with a fixed greedy prompt against a golden transcript.  A
 *     spare-row-repaired shard probes bit-identical and keeps serving;
 *     an unrepairable shard is drained and its in-flight requests are
 *     retried on healthy shards under capped exponential backoff,
 *     reproducing tokens bit-identical to a clean solo
 *     Engine::generate (each retry restarts prefill with a fresh
 *     per-request Sampler, so determinism is preserved end to end).
 *     Lossy links (CRC-retry model) degrade a shard; a severed link
 *     drains it.
 *  4. *Graceful degradation*: with no healthy shard left the router
 *     sheds batch traffic first (typed DegradedShed), keeps serving
 *     interactive traffic on degraded shards, and raises a
 *     degraded-mode flag instead of failing; with no usable shard at
 *     all it sheds with NoUsableShard rather than aborting.
 *
 * Determinism: all scheduling decisions happen on the router thread
 * between steps; shard forwards run concurrently (one thread per
 * active shard) but touch disjoint state, so decoded tokens and every
 * step-clock milestone are independent of timing.  Wall-clock metrics
 * (TTFT, goodput) are the only nondeterministic outputs.
 */

#ifndef HNLPU_SERVE_ROUTER_HH
#define HNLPU_SERVE_ROUTER_HH

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "noc/fabric.hh"
#include "xformer/serving.hh"

namespace hnlpu::serve {

/** Scheduling priority of a routed request. */
enum class RequestClass
{
    Interactive, //!< latency-sensitive; admitted first, shed last
    Batch,       //!< throughput traffic; first to be shed
};

/** Stable snake_case name (JSON keys, log lines). */
const char *requestClassName(RequestClass cls);

/** Health of one engine shard as seen by the router. */
enum class ShardState
{
    Healthy,  //!< full service, bit-exact weights
    Degraded, //!< correct tokens but a lossy link; interactive only
              //!< when nothing healthier has capacity
    Drained,  //!< corrupt weights or severed link; no service
};

const char *shardStateName(ShardState state);

/** One request as submitted to the router. */
struct RouterRequest
{
    std::vector<std::size_t> prompt;
    std::size_t decodeTokens = 0;
    std::size_t arrivalStep = 0;
    SamplerConfig sampler;
    std::uint64_t seed = 0;
    RequestClass cls = RequestClass::Batch;
    /**
     * Steps after arrival by which the first token must be sampled;
     * 0 disables.  A request that cannot ever meet it (budget below
     * prompt length) is rejected at enqueue as DeadlineInfeasible.
     */
    std::size_t ttftDeadlineSteps = 0;
    /**
     * Steps after arrival by which the last token must be sampled;
     * 0 disables.  Expiry mid-decode cancels the request and reclaims
     * its slot at the start of the next step.
     */
    std::size_t deadlineSteps = 0;
};

/**
 * One entry of the seeded fault schedule, applied at the first
 * executed step >= step (before deadline sweeps and admissions, so a
 * corrupted shard never samples a token).
 */
struct ShardFaultEvent
{
    std::size_t step = 0;
    std::size_t shard = 0;
    /**
     * When enabled(), the shard's weights are rebuilt through
     * fault::applyToModel with this plan and the shard is probed; a
     * bit-identical probe (all dead rows spare-repaired, no stuck
     * bits) keeps it in service, anything else drains it.
     */
    FaultModelParams modelFaults;
    /** When enabled(), the shard's CXL link turns lossy (CRC retry). */
    LinkFaultParams linkFaults;
    /** Sever the shard's CXL link outright (drains the shard). */
    bool killLink = false;
};

/** Terminal status of one routed request. */
enum class RequestStatus
{
    Completed, //!< all decodeTokens produced
    Shed,      //!< refused by load/health policy before completion
    Cancelled, //!< admitted but cancelled (deadline expiry)
};

const char *requestStatusName(RequestStatus status);

/** Completion record for one routed request. */
struct RouterOutcome
{
    std::size_t id = 0;
    RequestClass cls = RequestClass::Batch;
    RequestStatus status = RequestStatus::Completed;
    /** Why the request was shed/cancelled; None when completed. */
    RejectReason reason = RejectReason::None;
    /** Decoded ids; complete requests only (partial work from a
     *  drained shard is discarded and regenerated on retry). */
    std::vector<std::size_t> tokens;

    std::size_t arrivalStep = 0;
    std::size_t admitStep = 0;      //!< last (successful) admission
    std::size_t firstTokenStep = 0; //!< on the final serving shard
    std::size_t finishStep = 0;     //!< completion / shed / cancel step
    /** Re-dispatches after a shard failure (0 == served first try). */
    std::size_t retries = 0;
    /** Shard that finished the request; npos when never admitted. */
    std::size_t shard = std::size_t(-1);

    // Wall-clock metrics relative to arrival (completed requests).
    double queueSeconds = 0;
    double ttftSeconds = 0;
    double latencySeconds = 0;
};

/** One drained-shard recovery episode (for BENCH_router.json). */
struct RecoveryRecord
{
    std::size_t faultStep = 0;   //!< step the shard was drained
    std::size_t shard = 0;
    std::size_t inflight = 0;    //!< requests failed over
    /** Step when every failed-over request reached a terminal
     *  status again (completed, shed, or cancelled). */
    std::size_t recoveredStep = 0;
    double recoverySeconds = 0;  //!< wall clock, faultStep->recovered
};

/** Aggregate statistics of one ServingRouter::run. */
struct RouterStats
{
    std::size_t shards = 0;
    std::size_t slotsPerShard = 0;
    std::size_t requests = 0;
    std::size_t completed = 0;
    std::size_t shed = 0;
    std::size_t cancelled = 0;
    /** Shed + cancelled, broken down by typed reason. */
    std::array<std::size_t, kRejectReasonCount> byReason{};
    std::size_t retries = 0;        //!< re-dispatches issued
    std::size_t failovers = 0;      //!< in-flight requests displaced
    std::size_t faultsInjected = 0; //!< schedule entries applied
    std::size_t probes = 0;
    std::size_t probeFailures = 0;
    std::size_t linkTimeouts = 0;   //!< CXL sends that exhausted retries
    std::size_t executedSteps = 0;
    std::size_t decodedTokens = 0;  //!< completed requests only (goodput)
    bool degradedMode = false;      //!< true once no healthy shard remained
    double wallSeconds = 0;
    double goodputTokensPerSecond = 0;
    double ttftP50Seconds = 0;
    double ttftP99Seconds = 0;
    double latencyP50Seconds = 0;
    double latencyP95Seconds = 0;
    std::vector<RecoveryRecord> recoveries;
};

/** Router tunables; validate() is fatal on nonsense. */
struct RouterConfig
{
    std::size_t shards = 2;
    std::size_t slotsPerShard = 2;
    /** Bounded queue capacities per class (backpressure). */
    std::size_t interactiveQueueCapacity = 256;
    std::size_t batchQueueCapacity = 256;
    /** Re-dispatches allowed after a shard failure. */
    std::size_t maxRetries = 3;
    /** Capped exponential backoff for retries, in steps:
     *  delay(attempt) = min(cap, base << (attempt - 1)). */
    std::size_t backoffBaseSteps = 1;
    std::size_t backoffCapSteps = 16;
    /** CXL send retry-timeouts before a shard is marked Degraded. */
    std::size_t linkTimeoutLimit = 2;
    /** Greedy health-probe transcript (must be in vocab). */
    std::vector<std::size_t> probePrompt = {1, 2, 3};
    std::size_t probeTokens = 4;
    /** Dispatch link model (one private frontend<->shard link each). */
    CxlLinkParams link;
    /** Bytes per token for dispatch-cost accounting on the link. */
    double bytesPerToken = 4.0;

    void validate(std::size_t vocab_size) const;
};

/**
 * The sharded serving front end.  Not thread-safe externally; run()
 * internally steps shards on concurrent threads.  The clean weights
 * are borrowed and must outlive the router; faulted twins built by
 * fault events are owned per shard.
 */
class ServingRouter
{
  public:
    static constexpr std::size_t npos = std::size_t(-1);

    /**
     * Builds one Engine replica per shard over @p clean.
     * @param exec per-shard execution options; batchSlots is
     *        overridden with config.slotsPerShard and the sink is
     *        shared by the router's own spans and counters
     */
    ServingRouter(const TransformerConfig &cfg,
                  const ModelWeights &clean, ExecPath path,
                  unsigned activation_bits, const ExecOptions &exec,
                  RouterConfig config);

    /**
     * Submit a request (non-decreasing arrivalStep, as ServingEngine).
     * Applies validation and queue-capacity backpressure; a refused
     * request gets a typed reason and an outcome record, never an
     * abort.
     */
    EnqueueResult enqueue(RouterRequest request);

    /**
     * Register a fault event (non-decreasing step).  Must be called
     * before run(); the schedule is consumed by it.
     */
    void scheduleFault(ShardFaultEvent event);

    /**
     * Serve every queued request to a terminal status and clear the
     * queue.  Outcomes are ordered by request id and include entries
     * for requests shed at enqueue time.
     */
    std::vector<RouterOutcome> run();

    const RouterStats &stats() const { return stats_; }

    /** Last run's stats as JSON (schema: DESIGN.md "Serving
     *  robustness"). */
    std::string metricsJson() const;

    std::size_t shardCount() const { return shards_.size(); }
    ShardState shardState(std::size_t shard) const;
    /** True once the run saw no healthy shard (sticky per run). */
    bool degradedMode() const { return stats_.degradedMode; }

  private:
    struct Slot
    {
        bool busy = false;
        std::size_t request = npos;
        std::size_t fed = 0;
        std::optional<KvCache> cache;
        std::optional<Sampler> sampler;
    };

    struct Shard
    {
        /** Null while the shard still serves the clean weights. */
        std::unique_ptr<ModelWeights> faultedWeights;
        std::unique_ptr<Engine> engine;
        /** Private frontend(chip 0) <-> shard(chip 1) CXL link. */
        std::unique_ptr<Fabric> fabric;
        Tick linkNow = 0;
        bool weightsCorrupt = false;
        bool linkDead = false;
        bool linkLossy = false;
        std::size_t linkTimeouts = 0;
        std::vector<Slot> slots;
        std::size_t decodedTokens = 0; //!< per-step scratch, merged

        ShardState state() const;
        std::size_t freeSlots() const;
        std::size_t busySlots() const;
    };

    /** Scheduling state of one submitted request. */
    struct ReqState
    {
        RouterRequest req;
        bool terminal = false;
        std::size_t attempts = 0;  //!< dispatches so far
        std::size_t readyStep = 0; //!< arrival or backoff expiry
    };

    std::unique_ptr<Engine> makeEngine(const ModelWeights &weights);
    /** Reset per-cycle accounting at the first post-run submission. */
    void freshCycle();
    void finish(std::size_t id, RequestStatus status,
                RejectReason reason, std::size_t step);
    void applyFaultEvents(std::size_t step);
    bool probeShard(Shard &shard);
    void failoverShard(std::size_t shard_index, std::size_t step);
    void sweepDeadlines(std::size_t step);
    void shedPolicy(std::size_t step);
    void admit(std::size_t step);
    /** Dispatch-cost send over the shard's link; detects timeouts. */
    void dispatchSend(std::size_t shard_index, std::size_t tokens);
    void stepShard(Shard &shard, std::size_t step);
    std::size_t healthyShards() const;
    std::size_t usableShards() const;

    TransformerConfig cfg_;
    const ModelWeights &clean_;
    ExecPath path_;
    unsigned activationBits_;
    ExecOptions exec_;
    RouterConfig config_;

    std::vector<Shard> shards_;
    std::vector<std::size_t> goldenProbe_;

    std::vector<ReqState> requests_;
    std::vector<RouterOutcome> outcomes_;
    /** Pending request ids by class (Interactive, Batch). */
    std::array<std::deque<std::size_t>, 2> queues_;
    std::vector<ShardFaultEvent> schedule_;
    std::size_t nextEvent_ = 0;
    std::size_t terminalCount_ = 0;

    /** Failed-over request sets still open, for recovery records. */
    struct OpenRecovery
    {
        RecoveryRecord record;
        std::vector<std::size_t> waiting;
    };
    std::vector<OpenRecovery> openRecoveries_;

    RouterStats stats_;
    std::vector<double> stepWall_;
};

} // namespace hnlpu::serve

#endif // HNLPU_SERVE_ROUTER_HH
