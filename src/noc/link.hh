/**
 * @file
 * CXL 3.0 point-to-point link model.
 *
 * The paper interconnects the 16 compute modules with CXL 3.0 over PCIe
 * PHY: < 100 ns latency, 128 GB/s per x16 link (Section 4.2).  We model a
 * link as propagation latency plus serialisation at an effective
 * bandwidth (raw bandwidth derated by protocol efficiency) with a fixed
 * per-message framing overhead.  Effective-bandwidth and overhead values
 * follow CXL.io flit accounting and are exposed for sensitivity sweeps.
 */

#ifndef HNLPU_NOC_LINK_HH
#define HNLPU_NOC_LINK_HH

#include "common/units.hh"

namespace hnlpu {

/** Parameters of one directed CXL link. */
struct CxlLinkParams
{
    /** Raw x16 link bandwidth. */
    BytesPerSecond bandwidth = 128e9;
    /** Protocol efficiency (flit framing, CRC, credits). */
    double efficiency = 0.65;
    /** End-to-end propagation + PHY + protocol latency. */
    Seconds latency = 100e-9;
    /** Fixed per-message framing bytes (header flits, sync). */
    Bytes perMessageOverhead = 256.0;

    /** Ticks the link is occupied serialising @p payload bytes. */
    Tick serializationTicks(Bytes payload) const;
    /** Ticks from send start to full receipt (no contention). */
    Tick messageTicks(Bytes payload) const;
    /** Propagation latency in ticks. */
    Tick latencyTicks() const;
};

} // namespace hnlpu

#endif // HNLPU_NOC_LINK_HH
