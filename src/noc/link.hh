/**
 * @file
 * CXL 3.0 point-to-point link model.
 *
 * The paper interconnects the 16 compute modules with CXL 3.0 over PCIe
 * PHY: < 100 ns latency, 128 GB/s per x16 link (Section 4.2).  We model a
 * link as propagation latency plus serialisation at an effective
 * bandwidth (raw bandwidth derated by protocol efficiency) with a fixed
 * per-message framing overhead.  Effective-bandwidth and overhead values
 * follow CXL.io flit accounting and are exposed for sensitivity sweeps.
 */

#ifndef HNLPU_NOC_LINK_HH
#define HNLPU_NOC_LINK_HH

#include <cstdint>

#include "common/units.hh"

namespace hnlpu {

/** Parameters of one directed CXL link. */
struct CxlLinkParams
{
    /** Raw x16 link bandwidth. */
    BytesPerSecond bandwidth = 128e9;
    /** Protocol efficiency (flit framing, CRC, credits). */
    double efficiency = 0.65;
    /** End-to-end propagation + PHY + protocol latency. */
    Seconds latency = 100e-9;
    /** Fixed per-message framing bytes (header flits, sync). */
    Bytes perMessageOverhead = 256.0;

    /** Ticks the link is occupied serialising @p payload bytes. */
    Tick serializationTicks(Bytes payload) const;
    /** Ticks from send start to full receipt (no contention). */
    Tick messageTicks(Bytes payload) const;
    /** Propagation latency in ticks. */
    Tick latencyTicks() const;

    /** Fatal on non-physical parameters (zero/negative bandwidth or
     *  efficiency, efficiency above 1, negative latency/overhead). */
    void validate() const;
};

/**
 * CRC-retry fault model of a lossy CXL link.
 *
 * A flit that fails CRC is retransmitted after an exponentially backed
 * off interval; a message that exhausts maxRetries is declared timed out
 * and escalated to the management layer, which re-issues it once more at
 * a fixed penalty (the paper's CXL links are point-to-point, so there is
 * no alternate path for a purely link-level failure).
 */
struct LinkFaultParams
{
    /** Seed for the per-link retry streams. */
    std::uint64_t seed = 0;
    /** Probability one transmission attempt fails CRC. */
    double retryProbability = 0.0;
    /** Retransmissions allowed after the first attempt. */
    unsigned maxRetries = 8;
    /** Backoff growth per retry. */
    double backoffMultiplier = 2.0;
    /** Backoff before the first retransmission. */
    Seconds initialBackoff = 50e-9;
    /** Management-layer penalty once retries are exhausted. */
    Seconds timeoutPenalty = 10e-6;

    bool enabled() const { return retryProbability > 0.0; }

    /** Fatal on probability outside [0,1) or non-positive knobs. */
    void validate() const;
};

} // namespace hnlpu

#endif // HNLPU_NOC_LINK_HH
