/**
 * @file
 * Collective operations of the Interconnect Engine (Section 4.3).
 *
 * Two facets are modelled:
 *
 *  - *Timed* collectives schedule real messages onto the fabric's
 *    directed-link timelines and return the tick at which every group
 *    member holds the result.  The fully-connected row/column topology
 *    admits single-step direct algorithms (every member exchanges with
 *    every other member over dedicated links); the all-chip all-reduce
 *    composes a row phase and a column phase.
 *
 *  - *Functional* collectives operate on per-chip data vectors and are
 *    used by the multi-chip functional dataflow tests to prove the
 *    partitioned computation equals the monolithic one.
 */

#ifndef HNLPU_NOC_COLLECTIVES_HH
#define HNLPU_NOC_COLLECTIVES_HH

#include <vector>

#include "noc/fabric.hh"

namespace hnlpu {

// -- timed collectives ----------------------------------------------------

/** Root sends @p payload to every other group member. */
Tick timedBroadcast(Fabric &fabric, ChipId root,
                    const std::vector<ChipId> &group, Bytes payload,
                    Tick ready);

/** Every non-root member sends @p payload to the root. */
Tick timedReduce(Fabric &fabric, const std::vector<ChipId> &group,
                 ChipId root, Bytes payload, Tick ready);

/** Direct all-to-all exchange; all members finish with the result. */
Tick timedAllReduce(Fabric &fabric, const std::vector<ChipId> &group,
                    Bytes payload, Tick ready);

/** All-gather: same wire pattern as all-reduce with per-chip shards. */
Tick timedAllGather(Fabric &fabric, const std::vector<ChipId> &group,
                    Bytes shard, Tick ready);

/** Root distributes distinct shards to every other member. */
Tick timedScatter(Fabric &fabric, ChipId root,
                  const std::vector<ChipId> &group, Bytes shard,
                  Tick ready);

/**
 * All-chip all-reduce on the whole grid: row-group all-reduce followed
 * by column-group all-reduce (no diagonal links exist).
 */
Tick timedGridAllReduce(Fabric &fabric, Bytes payload, Tick ready);

// -- functional collectives ------------------------------------------------

using ChipVec = std::vector<double>;

/** Element-wise sum over the group; every member gets the sum. */
void dataAllReduce(std::vector<ChipVec> &per_chip,
                   const std::vector<ChipId> &group);

/** Copy the root's vector to every group member. */
void dataBroadcast(std::vector<ChipVec> &per_chip, ChipId root,
                   const std::vector<ChipId> &group);

/** Concatenate group shards (group order); every member gets it. */
void dataAllGather(std::vector<ChipVec> &per_chip,
                   const std::vector<ChipId> &group);

/** Two-phase all-chip all-reduce over a rows x cols grid. */
void dataGridAllReduce(std::vector<ChipVec> &per_chip, std::size_t rows,
                       std::size_t cols);

} // namespace hnlpu

#endif // HNLPU_NOC_COLLECTIVES_HH
