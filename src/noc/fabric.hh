/**
 * @file
 * Row-column fully-connected fabric (paper Fig. 9 (a)).
 *
 * Each chip has a dedicated, directed point-to-point link to every other
 * chip in its row and every other chip in its column; there is no router
 * and no link between chips that share neither.  The fabric owns one
 * TimelineResource per directed link so the pipeline simulator can model
 * contention from concurrent in-flight tokens, and provides the timed
 * collective operations of the Interconnect Engine (Section 4.3).
 */

#ifndef HNLPU_NOC_FABRIC_HH
#define HNLPU_NOC_FABRIC_HH

#include <vector>

#include "common/rng.hh"
#include "noc/link.hh"
#include "sim/resource.hh"

namespace hnlpu {

namespace obs {
class Counter;
class MetricsRegistry;
} // namespace obs

/** Identifies a chip by grid position (row-major id). */
using ChipId = std::size_t;

/** The 2D grid of chips with row/column point-to-point links. */
class Fabric
{
  public:
    Fabric(std::size_t rows, std::size_t cols, CxlLinkParams params);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t chipCount() const { return rows_ * cols_; }
    const CxlLinkParams &params() const { return params_; }

    ChipId chipAt(std::size_t row, std::size_t col) const;
    std::size_t rowOf(ChipId chip) const { return chip / cols_; }
    std::size_t colOf(ChipId chip) const { return chip % cols_; }

    /** True when a dedicated link src->dst exists. */
    bool connected(ChipId src, ChipId dst) const;

    /**
     * Enable the CRC-retry fault model on every link.  Each directed
     * link owns its own deterministic retry stream (derived from
     * faults.seed and the link index), so timings are reproducible
     * regardless of send interleaving across links.
     */
    void setLinkFaults(const LinkFaultParams &faults);
    const LinkFaultParams &linkFaults() const { return faults_; }

    /** Take @p chip out of service (fails wafer/system test). */
    void markChipDead(ChipId chip);
    /** True while @p chip is in service. */
    bool chipAlive(ChipId chip) const;
    /** Live chips in grid order. */
    std::vector<ChipId> liveChips() const;

    /** True when src->dst is connected and both endpoints are alive. */
    bool usable(ChipId src, ChipId dst) const;

    /** Chips in the same row as @p chip, excluding it. */
    std::vector<ChipId> rowPeers(ChipId chip) const;
    /** Chips in the same column as @p chip, excluding it. */
    std::vector<ChipId> colPeers(ChipId chip) const;

    /** Directed link resource src->dst (fatal when not connected). */
    TimelineResource &link(ChipId src, ChipId dst);

    /**
     * Send one message src->dst starting no earlier than @p ready.
     * The link is occupied for the serialisation time; the payload is
     * fully received `latency` later.
     * @return receive-complete tick
     */
    Tick send(ChipId src, ChipId dst, Bytes payload, Tick ready);

    /**
     * Send with graceful degradation: direct when src->dst is usable,
     * otherwise store-and-forward over one live intermediate that links
     * to both endpoints (two hops around the dead peer's row/column).
     * Fatal when no route exists (both endpoints must be alive).
     * @return receive-complete tick
     */
    Tick sendRouted(ChipId src, ChipId dst, Bytes payload, Tick ready);

    /**
     * Mirror the fabric's event counters into @p metrics ("noc.sends",
     * "noc.retries", "noc.retry_timeouts", "noc.rerouted").  The
     * registry must outlive the fabric; pass nullptr to detach.
     * Counters accumulate in the registry from the moment of the call
     * (reset() does not clear them -- registry lifetime is the
     * process, fabric lifetime is one experiment).
     */
    void setMetrics(obs::MetricsRegistry *metrics);

    /** CRC retransmissions performed across all links. */
    std::uint64_t totalRetries() const { return retries_; }
    /** Messages that exhausted their retry budget. */
    std::uint64_t retryTimeouts() const { return timeouts_; }
    /** Messages that took a two-hop route around a dead chip. */
    std::uint64_t reroutedMessages() const { return rerouted_; }

    /** Links per chip (row peers + column peers). */
    std::size_t linksPerChip() const { return rows_ - 1 + cols_ - 1; }

    /** Aggregate busy ticks across all links (power accounting). */
    Tick totalLinkBusyTicks() const;

    /** Total messages sent. */
    std::uint64_t totalMessages() const;

    /**
     * Clear all link timelines, retry streams and fault counters.
     * Dead chips stay dead: hardware does not resurrect between runs.
     */
    void reset();

  private:
    std::size_t linkIndex(ChipId src, ChipId dst) const;

    std::size_t rows_;
    std::size_t cols_;
    CxlLinkParams params_;
    std::vector<TimelineResource> links_;

    LinkFaultParams faults_;
    std::vector<Rng> linkRngs_;      //!< one retry stream per link
    std::vector<std::uint8_t> alive_;
    std::uint64_t retries_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t rerouted_ = 0;

    // Registry mirrors of the counters above (null when detached).
    obs::Counter *mSends_ = nullptr;
    obs::Counter *mRetries_ = nullptr;
    obs::Counter *mTimeouts_ = nullptr;
    obs::Counter *mRerouted_ = nullptr;
};

} // namespace hnlpu

#endif // HNLPU_NOC_FABRIC_HH
