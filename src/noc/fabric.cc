#include "noc/fabric.hh"

#include "common/logging.hh"

namespace hnlpu {

Fabric::Fabric(std::size_t rows, std::size_t cols, CxlLinkParams params)
    : rows_(rows), cols_(cols), params_(params)
{
    hnlpu_assert(rows_ >= 1 && cols_ >= 1, "empty fabric");
    // Allocate a dense (src, dst) table; unconnected pairs stay unused.
    links_.reserve(chipCount() * chipCount());
    for (ChipId src = 0; src < chipCount(); ++src) {
        for (ChipId dst = 0; dst < chipCount(); ++dst) {
            links_.emplace_back("link." + std::to_string(src) + "->" +
                                std::to_string(dst));
        }
    }
}

ChipId
Fabric::chipAt(std::size_t row, std::size_t col) const
{
    hnlpu_assert(row < rows_ && col < cols_, "grid position range");
    return row * cols_ + col;
}

bool
Fabric::connected(ChipId src, ChipId dst) const
{
    if (src == dst || src >= chipCount() || dst >= chipCount())
        return false;
    return rowOf(src) == rowOf(dst) || colOf(src) == colOf(dst);
}

std::vector<ChipId>
Fabric::rowPeers(ChipId chip) const
{
    std::vector<ChipId> peers;
    const std::size_t row = rowOf(chip);
    for (std::size_t col = 0; col < cols_; ++col) {
        const ChipId other = chipAt(row, col);
        if (other != chip)
            peers.push_back(other);
    }
    return peers;
}

std::vector<ChipId>
Fabric::colPeers(ChipId chip) const
{
    std::vector<ChipId> peers;
    const std::size_t col = colOf(chip);
    for (std::size_t row = 0; row < rows_; ++row) {
        const ChipId other = chipAt(row, col);
        if (other != chip)
            peers.push_back(other);
    }
    return peers;
}

std::size_t
Fabric::linkIndex(ChipId src, ChipId dst) const
{
    hnlpu_assert(connected(src, dst), "no link ", src, "->", dst);
    return src * chipCount() + dst;
}

TimelineResource &
Fabric::link(ChipId src, ChipId dst)
{
    return links_[linkIndex(src, dst)];
}

Tick
Fabric::send(ChipId src, ChipId dst, Bytes payload, Tick ready)
{
    TimelineResource &l = link(src, dst);
    const Tick serialization = params_.serializationTicks(payload);
    const Tick start = l.acquire(ready, serialization);
    return start + serialization + params_.latencyTicks();
}

Tick
Fabric::totalLinkBusyTicks() const
{
    Tick total = 0;
    for (const auto &l : links_)
        total += l.busyTicks();
    return total;
}

std::uint64_t
Fabric::totalMessages() const
{
    std::uint64_t total = 0;
    for (const auto &l : links_)
        total += l.requests();
    return total;
}

void
Fabric::reset()
{
    for (auto &l : links_)
        l.reset();
}

} // namespace hnlpu
