#include "noc/fabric.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace hnlpu {

Fabric::Fabric(std::size_t rows, std::size_t cols, CxlLinkParams params)
    : rows_(rows), cols_(cols), params_(params)
{
    if (rows_ < 1 || cols_ < 1)
        hnlpu_fatal("fabric grid must be at least 1x1, got ", rows_,
                    "x", cols_);
    params_.validate();
    // Allocate a dense (src, dst) table; unconnected pairs stay unused.
    links_.reserve(chipCount() * chipCount());
    for (ChipId src = 0; src < chipCount(); ++src) {
        for (ChipId dst = 0; dst < chipCount(); ++dst) {
            links_.emplace_back("link." + std::to_string(src) + "->" +
                                std::to_string(dst));
        }
    }
    alive_.assign(chipCount(), 1);
}

ChipId
Fabric::chipAt(std::size_t row, std::size_t col) const
{
    hnlpu_assert(row < rows_ && col < cols_, "grid position range");
    return row * cols_ + col;
}

bool
Fabric::connected(ChipId src, ChipId dst) const
{
    if (src == dst || src >= chipCount() || dst >= chipCount())
        return false;
    return rowOf(src) == rowOf(dst) || colOf(src) == colOf(dst);
}

std::vector<ChipId>
Fabric::rowPeers(ChipId chip) const
{
    std::vector<ChipId> peers;
    const std::size_t row = rowOf(chip);
    for (std::size_t col = 0; col < cols_; ++col) {
        const ChipId other = chipAt(row, col);
        if (other != chip)
            peers.push_back(other);
    }
    return peers;
}

std::vector<ChipId>
Fabric::colPeers(ChipId chip) const
{
    std::vector<ChipId> peers;
    const std::size_t col = colOf(chip);
    for (std::size_t row = 0; row < rows_; ++row) {
        const ChipId other = chipAt(row, col);
        if (other != chip)
            peers.push_back(other);
    }
    return peers;
}

std::size_t
Fabric::linkIndex(ChipId src, ChipId dst) const
{
    hnlpu_assert(connected(src, dst), "no link ", src, "->", dst);
    return src * chipCount() + dst;
}

TimelineResource &
Fabric::link(ChipId src, ChipId dst)
{
    return links_[linkIndex(src, dst)];
}

void
Fabric::setLinkFaults(const LinkFaultParams &faults)
{
    faults.validate();
    faults_ = faults;
    linkRngs_.clear();
    if (faults_.enabled()) {
        linkRngs_.reserve(links_.size());
        for (std::size_t i = 0; i < links_.size(); ++i) {
            linkRngs_.emplace_back(faults_.seed ^
                                   (0x9e3779b97f4a7c15ULL * (i + 1)));
        }
    }
}

void
Fabric::setMetrics(obs::MetricsRegistry *metrics)
{
    if (!metrics) {
        mSends_ = mRetries_ = mTimeouts_ = mRerouted_ = nullptr;
        return;
    }
    mSends_ = metrics->counter("noc.sends");
    mRetries_ = metrics->counter("noc.retries");
    mTimeouts_ = metrics->counter("noc.retry_timeouts");
    mRerouted_ = metrics->counter("noc.rerouted");
}

void
Fabric::markChipDead(ChipId chip)
{
    hnlpu_assert(chip < chipCount(), "chip id out of range");
    if (alive_[chip]) {
        alive_[chip] = 0;
        hnlpu_warn_ratelimited("fabric: chip ", chip, " at (",
                               rowOf(chip), ",", colOf(chip),
                               ") marked dead; routing around it");
    }
}

bool
Fabric::chipAlive(ChipId chip) const
{
    hnlpu_assert(chip < chipCount(), "chip id out of range");
    return alive_[chip] != 0;
}

std::vector<ChipId>
Fabric::liveChips() const
{
    std::vector<ChipId> live;
    for (ChipId chip = 0; chip < chipCount(); ++chip) {
        if (alive_[chip])
            live.push_back(chip);
    }
    return live;
}

bool
Fabric::usable(ChipId src, ChipId dst) const
{
    return connected(src, dst) && chipAlive(src) && chipAlive(dst);
}

Tick
Fabric::send(ChipId src, ChipId dst, Bytes payload, Tick ready)
{
    hnlpu_assert(chipAlive(src) && chipAlive(dst),
                 "send touches dead chip ", src, "->", dst);
    const std::size_t index = linkIndex(src, dst);
    TimelineResource &l = links_[index];
    const Tick serialization = params_.serializationTicks(payload);
    if (mSends_)
        mSends_->add(1);

    if (!faults_.enabled()) {
        const Tick start = l.acquire(ready, serialization);
        return start + serialization + params_.latencyTicks();
    }

    // CRC-retry loop: every attempt occupies the wire for the full
    // serialisation time; failed attempts add an exponentially growing
    // backoff before re-acquiring the link.
    Rng &rng = linkRngs_[index];
    Seconds backoff = faults_.initialBackoff;
    Tick at = ready;
    for (unsigned attempt = 0; attempt <= faults_.maxRetries;
         ++attempt) {
        const Tick start = l.acquire(at, serialization);
        const Tick end = start + serialization;
        if (rng.uniform01() >= faults_.retryProbability)
            return end + params_.latencyTicks();
        ++retries_;
        if (mRetries_)
            mRetries_->add(1);
        at = end + toTicks(backoff);
        backoff = backoff * faults_.backoffMultiplier;
    }
    // Retry budget exhausted: the management layer re-issues the
    // message once at a fixed penalty (modelled as guaranteed receipt;
    // a point-to-point CXL link has no alternate path).
    ++timeouts_;
    if (mTimeouts_)
        mTimeouts_->add(1);
    hnlpu_warn_ratelimited("fabric: link ", src, "->", dst,
                           " exhausted ", faults_.maxRetries,
                           " CRC retries; management-layer timeout");
    const Tick start = l.acquire(at, serialization);
    return start + serialization + params_.latencyTicks() +
           toTicks(faults_.timeoutPenalty);
}

Tick
Fabric::sendRouted(ChipId src, ChipId dst, Bytes payload, Tick ready)
{
    hnlpu_assert(src != dst, "routed send to self");
    hnlpu_assert(chipAlive(src) && chipAlive(dst),
                 "routed send touches dead chip ", src, "->", dst);
    if (usable(src, dst))
        return send(src, dst, payload, ready);

    // Two-hop store-and-forward.  Prefer the two grid corners (they
    // are the only intermediates for a cross pair); fall back to any
    // live chip linking to both endpoints.
    std::vector<ChipId> candidates{
        chipAt(rowOf(src), colOf(dst)),
        chipAt(rowOf(dst), colOf(src)),
    };
    for (ChipId mid : rowPeers(src))
        candidates.push_back(mid);
    for (ChipId mid : colPeers(src))
        candidates.push_back(mid);
    for (ChipId mid : candidates) {
        if (mid == src || mid == dst || !chipAlive(mid))
            continue;
        if (!connected(src, mid) || !connected(mid, dst))
            continue;
        ++rerouted_;
        if (mRerouted_)
            mRerouted_->add(1);
        const Tick relayed = send(src, mid, payload, ready);
        return send(mid, dst, payload, relayed);
    }
    hnlpu_fatal("no live route ", src, "->", dst,
                " (too many dead chips)");
}

Tick
Fabric::totalLinkBusyTicks() const
{
    Tick total = 0;
    for (const auto &l : links_)
        total += l.busyTicks();
    return total;
}

std::uint64_t
Fabric::totalMessages() const
{
    std::uint64_t total = 0;
    for (const auto &l : links_)
        total += l.requests();
    return total;
}

void
Fabric::reset()
{
    for (auto &l : links_)
        l.reset();
    // Re-seed the retry streams so a reset run replays identically.
    setLinkFaults(faults_);
    retries_ = 0;
    timeouts_ = 0;
    rerouted_ = 0;
}

} // namespace hnlpu
