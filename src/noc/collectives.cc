#include "noc/collectives.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hnlpu {

namespace {

/**
 * Degraded-mode membership: dead chips silently drop out of every
 * collective (their partials are lost work the dataflow layer has
 * already re-sharded away; the wire pattern simply skips them).
 */
std::vector<ChipId>
liveMembers(const Fabric &fabric, const std::vector<ChipId> &group)
{
    std::vector<ChipId> live;
    live.reserve(group.size());
    for (ChipId chip : group) {
        if (fabric.chipAlive(chip))
            live.push_back(chip);
    }
    return live;
}

void
checkGroup(const Fabric &fabric, const std::vector<ChipId> &group)
{
    hnlpu_assert(!group.empty(), "empty collective group");
    // Every ordered pair must share a dedicated link (row or column
    // group property).
    for (ChipId a : group) {
        for (ChipId b : group) {
            if (a != b) {
                hnlpu_assert(fabric.connected(a, b),
                             "group members ", a, " and ", b,
                             " are not directly linked");
            }
        }
    }
}

} // namespace

Tick
timedBroadcast(Fabric &fabric, ChipId root,
               const std::vector<ChipId> &group, Bytes payload,
               Tick ready)
{
    checkGroup(fabric, group);
    hnlpu_assert(fabric.chipAlive(root), "broadcast root ", root,
                 " is dead");
    Tick done = ready;
    for (ChipId dst : liveMembers(fabric, group)) {
        if (dst == root)
            continue;
        done = std::max(done, fabric.send(root, dst, payload, ready));
    }
    return done;
}

Tick
timedReduce(Fabric &fabric, const std::vector<ChipId> &group, ChipId root,
            Bytes payload, Tick ready)
{
    checkGroup(fabric, group);
    hnlpu_assert(fabric.chipAlive(root), "reduce root ", root,
                 " is dead");
    Tick done = ready;
    for (ChipId src : liveMembers(fabric, group)) {
        if (src == root)
            continue;
        done = std::max(done, fabric.send(src, root, payload, ready));
    }
    return done;
}

Tick
timedAllReduce(Fabric &fabric, const std::vector<ChipId> &group,
               Bytes payload, Tick ready)
{
    checkGroup(fabric, group);
    const std::vector<ChipId> live = liveMembers(fabric, group);
    Tick done = ready;
    for (ChipId src : live) {
        for (ChipId dst : live) {
            if (src != dst) {
                done = std::max(done,
                                fabric.send(src, dst, payload, ready));
            }
        }
    }
    return done;
}

Tick
timedAllGather(Fabric &fabric, const std::vector<ChipId> &group,
               Bytes shard, Tick ready)
{
    // Same direct exchange as all-reduce; each member contributes its
    // own shard instead of a partial sum.
    return timedAllReduce(fabric, group, shard, ready);
}

Tick
timedScatter(Fabric &fabric, ChipId root,
             const std::vector<ChipId> &group, Bytes shard, Tick ready)
{
    // Distinct shards, same wire pattern as broadcast.
    return timedBroadcast(fabric, root, group, shard, ready);
}

Tick
timedGridAllReduce(Fabric &fabric, Bytes payload, Tick ready)
{
    // Phase 1: all-reduce within every row (concurrently).
    Tick row_done = ready;
    for (std::size_t r = 0; r < fabric.rows(); ++r) {
        std::vector<ChipId> row_group;
        for (std::size_t c = 0; c < fabric.cols(); ++c)
            row_group.push_back(fabric.chipAt(r, c));
        row_done = std::max(row_done, timedAllReduce(fabric, row_group,
                                                     payload, ready));
    }
    // Recovery hop: a dead chip was the sole carrier of its row's
    // phase-1 sum into its column.  A live donor from the dead chip's
    // row forwards that sum to every live member of the column (two
    // hops: donor and column member share neither row nor column).
    Tick done = row_done;
    for (ChipId dead = 0; dead < fabric.chipCount(); ++dead) {
        if (fabric.chipAlive(dead))
            continue;
        ChipId donor = fabric.chipCount();
        for (ChipId peer : fabric.rowPeers(dead)) {
            if (fabric.chipAlive(peer)) {
                donor = peer;
                break;
            }
        }
        hnlpu_assert(donor < fabric.chipCount(), "row ",
                     fabric.rowOf(dead),
                     " fully dead: grid all-reduce cannot recover");
        for (ChipId member : fabric.colPeers(dead)) {
            if (!fabric.chipAlive(member))
                continue;
            done = std::max(done, fabric.sendRouted(donor, member,
                                                    payload, row_done));
        }
    }
    const Tick recovery_done = done;
    // Phase 2: all-reduce within every column.
    for (std::size_t c = 0; c < fabric.cols(); ++c) {
        std::vector<ChipId> col_group;
        for (std::size_t r = 0; r < fabric.rows(); ++r)
            col_group.push_back(fabric.chipAt(r, c));
        done = std::max(done, timedAllReduce(fabric, col_group, payload,
                                             recovery_done));
    }
    return done;
}

void
dataAllReduce(std::vector<ChipVec> &per_chip,
              const std::vector<ChipId> &group)
{
    hnlpu_assert(!group.empty(), "empty group");
    const std::size_t n = per_chip[group.front()].size();
    ChipVec sum(n, 0.0);
    for (ChipId chip : group) {
        hnlpu_assert(per_chip[chip].size() == n,
                     "all-reduce shape mismatch");
        for (std::size_t i = 0; i < n; ++i)
            sum[i] += per_chip[chip][i];
    }
    for (ChipId chip : group)
        per_chip[chip] = sum;
}

void
dataBroadcast(std::vector<ChipVec> &per_chip, ChipId root,
              const std::vector<ChipId> &group)
{
    for (ChipId chip : group)
        per_chip[chip] = per_chip[root];
}

void
dataAllGather(std::vector<ChipVec> &per_chip,
              const std::vector<ChipId> &group)
{
    ChipVec gathered;
    for (ChipId chip : group) {
        gathered.insert(gathered.end(), per_chip[chip].begin(),
                        per_chip[chip].end());
    }
    for (ChipId chip : group)
        per_chip[chip] = gathered;
}

void
dataGridAllReduce(std::vector<ChipVec> &per_chip, std::size_t rows,
                  std::size_t cols)
{
    hnlpu_assert(per_chip.size() == rows * cols, "grid shape mismatch");
    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<ChipId> group;
        for (std::size_t c = 0; c < cols; ++c)
            group.push_back(r * cols + c);
        dataAllReduce(per_chip, group);
    }
    for (std::size_t c = 0; c < cols; ++c) {
        std::vector<ChipId> group;
        for (std::size_t r = 0; r < rows; ++r)
            group.push_back(r * cols + c);
        dataAllReduce(per_chip, group);
    }
    // After the column phase every chip holds sum(rows) of row sums ==
    // the global sum times 1 (each row phase already summed the row, so
    // the column phase over per-row sums yields the global total).
}

} // namespace hnlpu
