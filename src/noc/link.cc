#include "noc/link.hh"

#include "common/logging.hh"

namespace hnlpu {

Tick
CxlLinkParams::serializationTicks(Bytes payload) const
{
    hnlpu_assert(bandwidth > 0 && efficiency > 0, "bad link params");
    const Seconds s = (payload + perMessageOverhead) /
                      (bandwidth * efficiency);
    return toTicks(s);
}

Tick
CxlLinkParams::messageTicks(Bytes payload) const
{
    return latencyTicks() + serializationTicks(payload);
}

Tick
CxlLinkParams::latencyTicks() const
{
    return toTicks(latency);
}

} // namespace hnlpu
