#include "noc/link.hh"

#include "common/logging.hh"

namespace hnlpu {

Tick
CxlLinkParams::serializationTicks(Bytes payload) const
{
    hnlpu_assert(bandwidth > 0 && efficiency > 0, "bad link params");
    const Seconds s = (payload + perMessageOverhead) /
                      (bandwidth * efficiency);
    return toTicks(s);
}

Tick
CxlLinkParams::messageTicks(Bytes payload) const
{
    return latencyTicks() + serializationTicks(payload);
}

Tick
CxlLinkParams::latencyTicks() const
{
    return toTicks(latency);
}

void
CxlLinkParams::validate() const
{
    if (bandwidth <= 0)
        hnlpu_fatal("CxlLinkParams::bandwidth must be positive, got ",
                    bandwidth);
    if (efficiency <= 0 || efficiency > 1.0)
        hnlpu_fatal("CxlLinkParams::efficiency must be in (0,1], got ",
                    efficiency);
    if (latency < 0)
        hnlpu_fatal("CxlLinkParams::latency must be non-negative, got ",
                    latency);
    if (perMessageOverhead < 0)
        hnlpu_fatal("CxlLinkParams::perMessageOverhead must be "
                    "non-negative, got ", perMessageOverhead);
}

void
LinkFaultParams::validate() const
{
    if (retryProbability < 0 || retryProbability >= 1.0)
        hnlpu_fatal("LinkFaultParams::retryProbability must be in "
                    "[0,1), got ", retryProbability);
    if (backoffMultiplier < 1.0)
        hnlpu_fatal("LinkFaultParams::backoffMultiplier must be >= 1, "
                    "got ", backoffMultiplier);
    if (initialBackoff < 0 || timeoutPenalty < 0)
        hnlpu_fatal("LinkFaultParams backoff/penalty must be "
                    "non-negative");
}

} // namespace hnlpu
