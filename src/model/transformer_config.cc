#include "model/transformer_config.hh"

#include "common/logging.hh"

namespace hnlpu {

std::size_t
TransformerConfig::gqaGroupSize() const
{
    hnlpu_assert(kvHeads > 0 && queryHeads % kvHeads == 0,
                 "query heads must divide into KV heads");
    return queryHeads / kvHeads;
}

std::uint64_t
TransformerConfig::attentionParamsPerLayer() const
{
    const std::uint64_t d = hiddenSize;
    const std::uint64_t q = qProjectionDim();
    const std::uint64_t kv = kvProjectionDim();
    // Wq (d x q), Wk (d x kv), Wv (d x kv), Wo (q x d).
    return d * q + 2 * d * kv + q * d;
}

std::uint64_t
TransformerConfig::paramsPerExpert() const
{
    // Up, gate and down projections.
    return 3ULL * hiddenSize * expertHidden;
}

std::uint64_t
TransformerConfig::routerParamsPerLayer() const
{
    return expertCount > 1 ? std::uint64_t(hiddenSize) * expertCount : 0;
}

std::uint64_t
TransformerConfig::paramsPerLayer() const
{
    return attentionParamsPerLayer() + expertCount * paramsPerExpert() +
           routerParamsPerLayer();
}

std::uint64_t
TransformerConfig::embeddingParams() const
{
    // Separate embedding and unembedding matrices.
    return 2ULL * hiddenSize * vocabSize;
}

std::uint64_t
TransformerConfig::totalParams() const
{
    return layerCount * paramsPerLayer() + embeddingParams();
}

std::uint64_t
TransformerConfig::activeParams() const
{
    const std::uint64_t per_layer = attentionParamsPerLayer() +
                                    routerParamsPerLayer() +
                                    activeExperts * paramsPerExpert();
    // The unembedding GEMV touches all vocab x hidden weights every
    // token; the input embedding is a single-row lookup and is excluded
    // (this matches the published ~5.1 B active figure for gpt-oss).
    return layerCount * per_layer + embeddingParams() / 2;
}

double
TransformerConfig::totalWeightBytes() const
{
    return static_cast<double>(totalParams()) * weightBits / 8.0;
}

double
TransformerConfig::kvBytesPerTokenPerLayer() const
{
    // K and V, one byte per element (FP8 cache entries).
    return 2.0 * kvProjectionDim();
}

double
TransformerConfig::kvBytesPerToken() const
{
    return kvBytesPerTokenPerLayer() * layerCount;
}

std::size_t
TransformerConfig::slidingLayerCount() const
{
    if (slidingWindow == 0)
        return 0;
    return static_cast<std::size_t>(
        double(layerCount) * slidingLayerFraction + 1e-9);
}

std::size_t
TransformerConfig::fullAttentionLayerCount() const
{
    return layerCount - slidingLayerCount();
}

bool
TransformerConfig::isSlidingLayer(std::size_t layer) const
{
    if (slidingWindow == 0 || slidingLayerCount() == 0)
        return false;
    // Bresenham spacing: spreads sliding layers evenly (gpt-oss
    // alternates 1:1, which fraction 0.5 reproduces exactly).
    const double f = slidingLayerFraction;
    const auto before = static_cast<std::size_t>(double(layer) * f +
                                                 1e-9);
    const auto after = static_cast<std::size_t>(double(layer + 1) * f +
                                                1e-9);
    return after > before;
}

std::size_t
TransformerConfig::layerContext(std::size_t layer,
                                std::size_t context) const
{
    return isSlidingLayer(layer) ? std::min(context, slidingWindow)
                                 : context;
}

void
TransformerConfig::validate() const
{
    hnlpu_assert(hiddenSize > 0, name, ": hiddenSize");
    hnlpu_assert(layerCount > 0, name, ": layerCount");
    hnlpu_assert(queryHeads > 0 && kvHeads > 0, name, ": heads");
    hnlpu_assert(queryHeads % kvHeads == 0, name, ": GQA grouping");
    hnlpu_assert(headDim > 0, name, ": headDim");
    hnlpu_assert(vocabSize > 0, name, ": vocabSize");
    hnlpu_assert(expertCount >= 1, name, ": expertCount");
    hnlpu_assert(activeExperts >= 1 && activeExperts <= expertCount,
                 name, ": activeExperts");
    hnlpu_assert(expertHidden > 0, name, ": expertHidden");
    hnlpu_assert(weightBits >= 1 && weightBits <= 16, name,
                 ": weightBits");
}

} // namespace hnlpu
