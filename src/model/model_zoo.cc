#include "model/model_zoo.hh"

namespace hnlpu {

TransformerConfig
gptOss120b()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-120b";
    cfg.hiddenSize = 2880;
    cfg.layerCount = 36;
    cfg.queryHeads = 64;
    cfg.kvHeads = 8;
    cfg.headDim = 64;
    cfg.vocabSize = 201088;
    cfg.expertCount = 128;
    cfg.activeExperts = 4;
    cfg.expertHidden = 2880;
    cfg.weightBits = 4;
    cfg.slidingWindow = 128;
    cfg.slidingLayerFraction = 0.5;
    cfg.validate();
    return cfg;
}

TransformerConfig
gptOss20b()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-20b";
    cfg.hiddenSize = 2880;
    cfg.layerCount = 24;
    cfg.queryHeads = 64;
    cfg.kvHeads = 8;
    cfg.headDim = 64;
    cfg.vocabSize = 201088;
    cfg.expertCount = 32;
    cfg.activeExperts = 4;
    cfg.expertHidden = 2880;
    cfg.weightBits = 4;
    cfg.slidingWindow = 128;
    cfg.slidingLayerFraction = 0.5;
    cfg.validate();
    return cfg;
}

TransformerConfig
kimiK2()
{
    TransformerConfig cfg;
    cfg.name = "kimi-k2";
    cfg.hiddenSize = 7168;
    cfg.layerCount = 61;
    cfg.queryHeads = 64;
    cfg.kvHeads = 8;
    cfg.headDim = 128;
    cfg.vocabSize = 163840;
    cfg.expertCount = 384;
    cfg.activeExperts = 8;
    cfg.expertHidden = 2048;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

TransformerConfig
deepSeekV3()
{
    TransformerConfig cfg;
    cfg.name = "deepseek-v3";
    cfg.hiddenSize = 7168;
    cfg.layerCount = 61;
    cfg.queryHeads = 128;
    cfg.kvHeads = 16;
    cfg.headDim = 128;
    cfg.vocabSize = 129280;
    cfg.expertCount = 249; // 248 routed (GQA-equivalent) + 1 shared
    cfg.activeExperts = 9;
    cfg.expertHidden = 2048;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

TransformerConfig
qwq32b()
{
    TransformerConfig cfg;
    cfg.name = "qwq-32b";
    cfg.hiddenSize = 5120;
    cfg.layerCount = 64;
    cfg.queryHeads = 40;
    cfg.kvHeads = 8;
    cfg.headDim = 128;
    cfg.vocabSize = 152064;
    cfg.expertCount = 1;
    cfg.activeExperts = 1;
    cfg.expertHidden = 27648;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

TransformerConfig
llama3_8b()
{
    TransformerConfig cfg;
    cfg.name = "llama-3-8b";
    cfg.hiddenSize = 4096;
    cfg.layerCount = 32;
    cfg.queryHeads = 32;
    cfg.kvHeads = 8;
    cfg.headDim = 128;
    cfg.vocabSize = 128256;
    cfg.expertCount = 1;
    cfg.activeExperts = 1;
    cfg.expertHidden = 14336;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

TransformerConfig
tinyTestModel()
{
    TransformerConfig cfg;
    cfg.name = "tiny-test";
    cfg.hiddenSize = 32;
    cfg.layerCount = 2;
    cfg.queryHeads = 4;
    cfg.kvHeads = 2;
    cfg.headDim = 8;
    cfg.vocabSize = 64;
    cfg.expertCount = 4;
    cfg.activeExperts = 2;
    cfg.expertHidden = 48;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

std::vector<TransformerConfig>
productionModels()
{
    return {gptOss120b(), kimiK2(), deepSeekV3(), qwq32b(), llama3_8b()};
}

} // namespace hnlpu
