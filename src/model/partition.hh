/**
 * @file
 * Model-to-chip partitioning (paper Section 4.2 / 5.1).
 *
 * HNLPU arranges chips in a row-column fully-connected grid (4x4 for
 * gpt-oss 120 B).  The Wqkv matrices are column-partitioned, Wo is
 * row-partitioned, experts are distributed round-robin across all chips
 * and the router is replicated.  This module derives all per-chip tensor
 * shapes and the collective message sizes that the dataflow simulator
 * uses, plus a chip-count suggestion for arbitrary models (Table 4).
 */

#ifndef HNLPU_MODEL_PARTITION_HH
#define HNLPU_MODEL_PARTITION_HH

#include <cstdint>

#include "model/transformer_config.hh"

namespace hnlpu {

/** The placement of one model onto an HNLPU chip grid. */
struct SystemPartition
{
    TransformerConfig model;
    std::size_t gridRows = 4;
    std::size_t gridCols = 4;

    std::size_t chipCount() const { return gridRows * gridCols; }

    // -- per-chip shares --------------------------------------------------

    /** Hidden-dimension slice held by each chip of a column (720). */
    std::size_t hiddenSlice() const;
    /** Query heads mapped to each column group (16). */
    std::size_t queryHeadsPerColumn() const;
    /** KV heads mapped to each column group (2). */
    std::size_t kvHeadsPerColumn() const;
    /** Experts resident on each chip (8). */
    std::size_t expertsPerChip() const;
    /** Weight parameters hardwired on each chip. */
    std::uint64_t paramsPerChip() const;

    // -- collective message sizes (bytes, FP8 activations) ----------------

    /** Column all-reduce payload for the query partial sums. */
    double queryReduceBytes() const;
    /** Column reduce payload for one new K (or V) head group. */
    double kvReduceBytes() const;
    /** Column all-reduce payload for attention scores (per group). */
    double scoreReduceBytes(std::size_t context_per_chip) const;
    /** Column all-reduce payload for partial attention outputs. */
    double attnOutReduceBytes() const;
    /** Row all-reduce + column all-gather payload for Xo. */
    double xoReduceBytes() const;
    /** All-chip all-reduce payload for the MoE down projection. */
    double moeReduceBytes() const;

    /** Consistency checks; fatal when the model does not tile. */
    void validate() const;
};

/** Build the paper's 4x4 partition for a model. */
SystemPartition makePartition(const TransformerConfig &model,
                              std::size_t grid_rows = 4,
                              std::size_t grid_cols = 4);

/**
 * Suggest a chip count for a model given the hardwire capacity of one
 * chip in weight parameters (derived from the physical model).  Chip
 * counts are rounded up to the next arrangeable grid (multiples of the
 * column count, minimum 1).
 */
std::size_t suggestChipCount(const TransformerConfig &model,
                             std::uint64_t params_per_chip);

} // namespace hnlpu

#endif // HNLPU_MODEL_PARTITION_HH
