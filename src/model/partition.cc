#include "model/partition.hh"

#include "common/logging.hh"
#include "common/math_util.hh"

namespace hnlpu {

std::size_t
SystemPartition::hiddenSlice() const
{
    return model.hiddenSize / gridCols;
}

std::size_t
SystemPartition::queryHeadsPerColumn() const
{
    return model.queryHeads / gridCols;
}

std::size_t
SystemPartition::kvHeadsPerColumn() const
{
    return model.kvHeads / gridCols;
}

std::size_t
SystemPartition::expertsPerChip() const
{
    return ceilDiv(model.expertCount, chipCount());
}

std::uint64_t
SystemPartition::paramsPerChip() const
{
    // Attention weights and experts divide across chips; the router is
    // replicated on every chip (paper Section 5.1).
    const std::uint64_t shared_per_layer = model.routerParamsPerLayer();
    const std::uint64_t split_per_layer =
        model.attentionParamsPerLayer() +
        model.expertCount * model.paramsPerExpert();
    const std::uint64_t embedding = model.embeddingParams();
    return model.layerCount *
               (shared_per_layer + ceilDiv<std::uint64_t>(
                                       split_per_layer, chipCount())) +
           ceilDiv<std::uint64_t>(embedding, chipCount());
}

namespace {

/** FP8 activations on the wire. */
constexpr double kActivationBytes = 1.0;

} // namespace

double
SystemPartition::queryReduceBytes() const
{
    // Per-column query vector: heads_per_col * head_dim.
    return kActivationBytes * queryHeadsPerColumn() * model.headDim;
}

double
SystemPartition::kvReduceBytes() const
{
    return kActivationBytes * kvHeadsPerColumn() * model.headDim;
}

double
SystemPartition::scoreReduceBytes(std::size_t context_per_chip) const
{
    // Z has shape (kv_heads_per_col, gqa_group, context_per_chip).
    return kActivationBytes * kvHeadsPerColumn() * model.gqaGroupSize() *
           context_per_chip;
}

double
SystemPartition::attnOutReduceBytes() const
{
    // Partial attention output: (kv_heads_per_col, gqa_group, head_dim).
    return kActivationBytes * kvHeadsPerColumn() * model.gqaGroupSize() *
           model.headDim;
}

double
SystemPartition::xoReduceBytes() const
{
    // Per-chip Xo partial slice of the hidden vector.
    return kActivationBytes * hiddenSlice();
}

double
SystemPartition::moeReduceBytes() const
{
    // Full hidden vector partial sums combined across all chips.
    return kActivationBytes * model.hiddenSize;
}

void
SystemPartition::validate() const
{
    hnlpu_assert(gridRows >= 1 && gridCols >= 1, "empty grid");
    hnlpu_assert(model.hiddenSize % gridCols == 0,
                 model.name, ": hidden size must tile over columns");
    hnlpu_assert(model.queryHeads % gridCols == 0,
                 model.name, ": query heads must tile over columns");
    hnlpu_assert(model.kvHeads % gridCols == 0,
                 model.name, ": KV heads must tile over columns");
}

SystemPartition
makePartition(const TransformerConfig &model, std::size_t grid_rows,
              std::size_t grid_cols)
{
    SystemPartition part;
    part.model = model;
    part.gridRows = grid_rows;
    part.gridCols = grid_cols;
    part.validate();
    return part;
}

std::size_t
suggestChipCount(const TransformerConfig &model,
                 std::uint64_t params_per_chip)
{
    hnlpu_assert(params_per_chip > 0, "params_per_chip must be positive");
    return std::max<std::size_t>(
        1, ceilDiv<std::uint64_t>(model.totalParams(), params_per_chip));
}

} // namespace hnlpu
