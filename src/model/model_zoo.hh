/**
 * @file
 * Catalogue of model descriptors used across the evaluation.
 *
 * gptOss120b() is the model the paper hardwires (Section 6.2); the other
 * production models parameterise the Table 4 NRE study.  Configurations
 * are assembled from the models' public architecture descriptions; where
 * an architecture does not map exactly onto our GQA descriptor (e.g.
 * MLA in DeepSeek-V3/Kimi-K2) we pick the GQA-equivalent shapes that
 * reproduce the published total parameter count, which is the quantity
 * the cost model consumes.
 */

#ifndef HNLPU_MODEL_MODEL_ZOO_HH
#define HNLPU_MODEL_MODEL_ZOO_HH

#include <vector>

#include "model/transformer_config.hh"

namespace hnlpu {

/** gpt-oss 120 B (MoE, 128 experts top-4) -- the hardwired model. */
TransformerConfig gptOss120b();

/** gpt-oss 20 B class sibling (for scalability sweeps). */
TransformerConfig gptOss20b();

/** Kimi-K2 (~1 T parameter MoE), Table 4. */
TransformerConfig kimiK2();

/** DeepSeek-V3 (671 B MoE), Table 4. */
TransformerConfig deepSeekV3();

/** QwQ-32B (dense), Table 4. */
TransformerConfig qwq32b();

/** Llama-3 8B (dense), Table 4. */
TransformerConfig llama3_8b();

/**
 * A miniature gpt-oss-like configuration that is cheap enough to
 * instantiate with real weight matrices for functional tests.
 */
TransformerConfig tinyTestModel();

/** All production models, gpt-oss first. */
std::vector<TransformerConfig> productionModels();

} // namespace hnlpu

#endif // HNLPU_MODEL_MODEL_ZOO_HH
