/**
 * @file
 * Transformer model descriptors.
 *
 * A TransformerConfig captures the architectural hyper-parameters the
 * HNLPU needs: tensor shapes (which become HN array dimensions and
 * collective message sizes), MoE structure (which drives circuit activity
 * and power) and vocabulary (embedding/unembedding HBM traffic).  The
 * default descriptor is gpt-oss 120 B, the model the paper hardwires.
 */

#ifndef HNLPU_MODEL_TRANSFORMER_CONFIG_HH
#define HNLPU_MODEL_TRANSFORMER_CONFIG_HH

#include <cstdint>
#include <string>

namespace hnlpu {

/** Architectural description of a (possibly MoE) decoder-only LLM. */
struct TransformerConfig
{
    std::string name = "unnamed";

    std::size_t hiddenSize = 0;    //!< model width d
    std::size_t layerCount = 0;    //!< transformer blocks
    std::size_t queryHeads = 0;    //!< attention query heads
    std::size_t kvHeads = 0;       //!< GQA key/value heads
    std::size_t headDim = 0;       //!< per-head dimension
    std::size_t vocabSize = 0;     //!< tokenizer vocabulary

    // Feed-forward / Mixture-of-Experts.
    std::size_t expertCount = 1;   //!< 1 == dense FFN
    std::size_t activeExperts = 1; //!< top-k routed experts
    std::size_t expertHidden = 0;  //!< FFN intermediate size

    unsigned weightBits = 4;       //!< quantised weight width

    // Sliding-window attention (gpt-oss alternates full-attention and
    // 128-token sliding-window layers 1:1).
    std::size_t slidingWindow = 0;    //!< 0 == no sliding layers
    double slidingLayerFraction = 0.0;

    /** Layers with banded (sliding-window) attention. */
    std::size_t slidingLayerCount() const;
    /** Layers attending over the full context. */
    std::size_t fullAttentionLayerCount() const;
    /** Effective context a given layer attends over. */
    std::size_t layerContext(std::size_t layer,
                             std::size_t context) const;
    /** True when @p layer uses the sliding window. */
    bool isSlidingLayer(std::size_t layer) const;

    // -- derived shape helpers -------------------------------------------

    std::size_t qProjectionDim() const { return queryHeads * headDim; }
    std::size_t kvProjectionDim() const { return kvHeads * headDim; }
    /** Query heads sharing one KV head. */
    std::size_t gqaGroupSize() const;

    /** Weight parameters of one transformer block's attention. */
    std::uint64_t attentionParamsPerLayer() const;
    /** Weight parameters of one expert (up + gate + down). */
    std::uint64_t paramsPerExpert() const;
    /** Router parameters of one block (0 for dense models). */
    std::uint64_t routerParamsPerLayer() const;
    /** All weight parameters of one block. */
    std::uint64_t paramsPerLayer() const;
    /** Embedding + unembedding parameters. */
    std::uint64_t embeddingParams() const;
    /** Total weight parameters of the model. */
    std::uint64_t totalParams() const;
    /** Parameters touched per token (active experts only). */
    std::uint64_t activeParams() const;

    /** Total weight bytes at the configured quantisation. */
    double totalWeightBytes() const;
    /** Bytes of K+V cache per token per layer (8-bit entries). */
    double kvBytesPerTokenPerLayer() const;
    /** Bytes of K+V cache per token across all layers. */
    double kvBytesPerToken() const;

    /** Sanity checks; fatal on inconsistent configs. */
    void validate() const;
};

} // namespace hnlpu

#endif // HNLPU_MODEL_TRANSFORMER_CONFIG_HH
