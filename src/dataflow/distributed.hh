/**
 * @file
 * Functional distributed dataflow engine (paper Section 5, Appendix A).
 *
 * Executes a transformer forward pass the way the HNLPU grid does:
 * every chip holds only its weight shards --
 *
 *  - Wq/Wk/Wv column-partitioned across column groups and
 *    row-partitioned across the hidden dimension (each chip sees a
 *    (hidden/rows) x (proj/cols) block and produces a partial sum that
 *    a column all-reduce completes);
 *  - KV cache interleaved across a column's chips (token t lives on
 *    chip row t mod rows) with FlashAttention-style cross-chip score
 *    combination (global max, then exp-sum and weighted-V reduction);
 *  - Wo row-partitioned, combined by a row all-reduce plus a column
 *    all-gather;
 *  - the router replicated on every chip, experts distributed
 *    round-robin, outputs combined by the all-chip (grid) all-reduce;
 *  - the unembedding row-partitioned with a final logit all-gather.
 *
 * The engine is bit-faithful to the monolithic xformer Engine on the
 * Reference path (identical weights, same math reassociated only by
 * collectives) and tracks the byte volume of every collective so the
 * pipeline simulator's message sizes can be cross-checked against a
 * real execution.
 */

#ifndef HNLPU_DATAFLOW_DISTRIBUTED_HH
#define HNLPU_DATAFLOW_DISTRIBUTED_HH

#include <memory>
#include <vector>

#include "model/partition.hh"
#include "xformer/engine.hh"

namespace hnlpu {

/** Bytes moved per collective class during a run (FP8 elements). */
struct CommVolume
{
    double queryReduce = 0;  //!< column all-reduce of Q partials
    double kvCollect = 0;    //!< K/V reduction to the owner chip
    double scoreStats = 0;   //!< attention max/sum statistics
    double attnCombine = 0;  //!< weighted-V partial combination
    double xoReduce = 0;     //!< row all-reduce of Wo partials
    double xoGather = 0;     //!< column all-gather of Xo slices
    double moeReduce = 0;    //!< all-chip all-reduce of expert outputs
    double logitGather = 0;  //!< unembedding shard gather

    double total() const;
};

/** A transformer executor sharded over a chip grid. */
class DistributedEngine
{
  public:
    /**
     * Shard @p weights over a rows x cols grid.  The weights must
     * outlive the engine.  @p path selects reference or hardwired
     * execution of every on-chip projection shard.
     */
    DistributedEngine(const TransformerConfig &cfg,
                      const ModelWeights &weights, std::size_t grid_rows,
                      std::size_t grid_cols,
                      ExecPath path = ExecPath::Reference,
                      unsigned activation_bits = 8,
                      HnKernel kernel = HnKernel::Packed);

    /** Per-sequence distributed KV cache. */
    class Cache;

    /** Run one token; returns the (replicated) logits. */
    Vec forwardToken(std::size_t token_id, Cache &cache);

    /** Fresh cache for this engine. */
    Cache makeCache() const;

    /** Communication volume accumulated so far. */
    const CommVolume &commVolume() const { return comm_; }

    std::size_t chipCount() const { return rows_ * cols_; }
    const SystemPartition &partition() const { return partition_; }

    ~DistributedEngine();
    DistributedEngine(DistributedEngine &&) noexcept;

  private:
    struct ChipShard;
    struct ShardSet;

    /** Distributed GQA attention for one layer. */
    Vec attention(std::size_t layer, const Vec &x_norm, Cache &cache);
    /** Distributed MoE FFN for one layer. */
    Vec feedForward(std::size_t layer, const Vec &x_norm);
    /**
     * The ExecContext every per-shard projection call reads (path /
     * bits / kernel / shared scratch arena; no pool -- shards execute
     * serially to model one chip at a time, and no activity sink).
     */
    ExecContext shardContext() const;

    TransformerConfig cfg_;
    const ModelWeights &weights_;
    std::size_t rows_;
    std::size_t cols_;
    ExecPath path_;
    unsigned activationBits_;
    /** Hardwired-path GEMV kernel for every projection shard. */
    HnKernel kernel_;
    /** Shared Packed-kernel scratch recycler across all shard GEMVs
     *  (behind unique_ptr: the arena's mutex must not block the
     *  engine's defaulted move constructor). */
    std::unique_ptr<HnScratchArena> scratchArena_;
    SystemPartition partition_;
    CommVolume comm_;
    std::unique_ptr<ShardSet> shards_;
};

/** Distributed KV cache: tokens interleaved over a column's chips. */
class DistributedEngine::Cache
{
  public:
    Cache(std::size_t layers, std::size_t rows, std::size_t kv_heads,
          std::size_t head_dim);

    /** Append token @p pos's K/V heads (full vectors; each chip keeps
     *  only its column's heads for positions pos mod rows == row). */
    void append(std::size_t layer, std::size_t pos,
                const std::vector<Vec> &keys,
                const std::vector<Vec> &values);

    /** Positions owned by @p row. */
    std::vector<std::size_t> ownedPositions(std::size_t row) const;

    const Vec &key(std::size_t layer, std::size_t head,
                   std::size_t pos) const;
    const Vec &value(std::size_t layer, std::size_t head,
                     std::size_t pos) const;

    std::size_t length() const { return length_; }

  private:
    std::size_t rows_;
    std::size_t length_ = 0;
    std::size_t layers_;
    /** [layer][head][pos]; storage is logically distributed, the
     *  ownership split is realised through ownedPositions(). */
    std::vector<std::vector<std::vector<Vec>>> keys_;
    std::vector<std::vector<std::vector<Vec>>> values_;
};

} // namespace hnlpu

#endif // HNLPU_DATAFLOW_DISTRIBUTED_HH
