#include "dataflow/distributed.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "xformer/ops.hh"

namespace hnlpu {

double
CommVolume::total() const
{
    return queryReduce + kvCollect + scoreStats + attnCombine +
           xoReduce + xoGather + moeReduce + logitGather;
}

/** Per-chip weight shards for every layer. */
struct DistributedEngine::ChipShard
{
    // Indexed by layer.
    std::vector<Linear> wq; //!< (qProj/cols) x (hidden/rows)
    std::vector<Linear> wk;
    std::vector<Linear> wv;
    std::vector<Linear> wo; //!< (hidden/rows) x (qProj/cols)
    std::vector<std::vector<Expert>> experts; //!< owned experts
    std::vector<std::vector<std::size_t>> expertIds;
    Linear unembed; //!< (vocab/chips) x hidden

    ChipShard() : unembed({}, 0, 0) {}
};

/** All chips' shards (pimpl so the header stays light). */
struct DistributedEngine::ShardSet
{
    std::vector<ChipShard> chips;
};

DistributedEngine::~DistributedEngine() = default;
DistributedEngine::DistributedEngine(DistributedEngine &&) noexcept =
    default;

DistributedEngine::DistributedEngine(const TransformerConfig &cfg,
                                     const ModelWeights &weights,
                                     std::size_t grid_rows,
                                     std::size_t grid_cols,
                                     ExecPath path,
                                     unsigned activation_bits,
                                     HnKernel kernel)
    : cfg_(cfg), weights_(weights), rows_(grid_rows), cols_(grid_cols),
      path_(path), activationBits_(activation_bits), kernel_(kernel),
      scratchArena_(std::make_unique<HnScratchArena>()),
      partition_(makePartition(cfg, grid_rows, grid_cols))
{
    cfg_.validate();
    hnlpu_assert(cfg_.vocabSize % chipCount() == 0,
                 "vocab must tile over chips for the logit shards");
    const std::size_t qs = cfg_.qProjectionDim() / cols_;
    const std::size_t kvs = cfg_.kvProjectionDim() / cols_;
    const std::size_t vocab_s = cfg_.vocabSize / chipCount();
    const std::size_t experts_per_chip =
        ceilDiv(cfg_.expertCount, chipCount());

    // NOTE on indexing: the paper splits the hidden dimension over the
    // chips *within a column* (four (1,720) slices) and the projection
    // outputs over the *columns*.  We therefore use the chip's row for
    // the input (hidden) slice and its column for the output slice.
    const std::size_t hidden_slice = cfg_.hiddenSize / rows_;

    shards_ = std::make_unique<ShardSet>();
    shards_->chips.resize(chipCount());
    for (std::size_t chip = 0; chip < chipCount(); ++chip) {
        const std::size_t row = chip / cols_;
        const std::size_t col = chip % cols_;
        ChipShard &shard = shards_->chips[chip];
        shard.wq.reserve(cfg_.layerCount);
        for (std::size_t l = 0; l < cfg_.layerCount; ++l) {
            const BlockWeights &b = weights_.blocks[l];
            shard.wq.push_back(b.wq.slice(col * qs, qs,
                                          row * hidden_slice,
                                          hidden_slice));
            shard.wk.push_back(b.wk.slice(col * kvs, kvs,
                                          row * hidden_slice,
                                          hidden_slice));
            shard.wv.push_back(b.wv.slice(col * kvs, kvs,
                                          row * hidden_slice,
                                          hidden_slice));
            // Wo: outputs (hidden) split over the chip's row slice,
            // inputs (attention heads) split over the column group.
            shard.wo.push_back(b.wo.slice(row * hidden_slice,
                                          hidden_slice, col * qs, qs));

            std::vector<Expert> owned;
            std::vector<std::size_t> ids;
            for (std::size_t e = chip * experts_per_chip;
                 e < std::min<std::size_t>((chip + 1) * experts_per_chip,
                                           cfg_.expertCount);
                 ++e) {
                const Expert &src = b.ffn.expert(e);
                owned.push_back(Expert{src.up, src.gate, src.down});
                ids.push_back(e);
            }
            shard.experts.push_back(std::move(owned));
            shard.expertIds.push_back(std::move(ids));
        }
        shard.unembed = weights_.unembedding.slice(chip * vocab_s,
                                                   vocab_s, 0,
                                                   cfg_.hiddenSize);
    }
}

DistributedEngine::Cache::Cache(std::size_t layers, std::size_t rows,
                                std::size_t kv_heads,
                                std::size_t head_dim)
    : rows_(rows), layers_(layers),
      keys_(layers, std::vector<std::vector<Vec>>(kv_heads)),
      values_(layers, std::vector<std::vector<Vec>>(kv_heads))
{
    hnlpu_assert(head_dim > 0, "bad head dim");
}

void
DistributedEngine::Cache::append(std::size_t layer, std::size_t pos,
                                 const std::vector<Vec> &keys,
                                 const std::vector<Vec> &values)
{
    hnlpu_assert(layer < keys_.size(), "layer range");
    for (std::size_t h = 0; h < keys.size(); ++h) {
        keys_[layer][h].push_back(keys[h]);
        values_[layer][h].push_back(values[h]);
    }
    if (layer == layers_ - 1)
        ++length_;
    (void)pos;
}

std::vector<std::size_t>
DistributedEngine::Cache::ownedPositions(std::size_t row) const
{
    std::vector<std::size_t> owned;
    const std::size_t cached = keys_[0][0].size();
    for (std::size_t pos = row; pos < cached; pos += rows_)
        owned.push_back(pos);
    return owned;
}

const Vec &
DistributedEngine::Cache::key(std::size_t layer, std::size_t head,
                              std::size_t pos) const
{
    return keys_[layer][head][pos];
}

const Vec &
DistributedEngine::Cache::value(std::size_t layer, std::size_t head,
                                std::size_t pos) const
{
    return values_[layer][head][pos];
}

DistributedEngine::Cache
DistributedEngine::makeCache() const
{
    return Cache(cfg_.layerCount, rows_, cfg_.kvHeads, cfg_.headDim);
}

ExecContext
DistributedEngine::shardContext() const
{
    ExecContext ctx;
    ctx.path = path_;
    ctx.activationBits = activationBits_;
    ctx.kernel = kernel_;
    ctx.arena = scratchArena_.get();
    return ctx;
}

Vec
DistributedEngine::attention(std::size_t layer, const Vec &x_norm,
                             Cache &cache)
{
    const ExecContext ctx = shardContext();
    const std::size_t hidden_slice = cfg_.hiddenSize / rows_;
    const std::size_t qs = cfg_.qProjectionDim() / cols_;
    const std::size_t kvs = cfg_.kvProjectionDim() / cols_;
    const std::size_t head_dim = cfg_.headDim;
    const std::size_t group = cfg_.gqaGroupSize();
    const std::size_t pos = cache.length();

    // -- QKV projection: per-chip partial sums + column all-reduce ------
    // q_cols[c] is the column group's completed Q slice (replicated on
    // the column's chips after the all-reduce).
    std::vector<Vec> q_cols(cols_), k_cols(cols_), v_cols(cols_);
    for (std::size_t c = 0; c < cols_; ++c) {
        Vec q(qs, 0.0), k(kvs, 0.0), v(kvs, 0.0);
        for (std::size_t r = 0; r < rows_; ++r) {
            const ChipShard &shard = shards_->chips[r * cols_ + c];
            const Vec x_slice(x_norm.begin() + r * hidden_slice,
                              x_norm.begin() + (r + 1) * hidden_slice);
            const Vec qp = shard.wq[layer].forward(x_slice, ctx);
            const Vec kp = shard.wk[layer].forward(x_slice, ctx);
            const Vec vp = shard.wv[layer].forward(x_slice, ctx);
            for (std::size_t i = 0; i < qs; ++i)
                q[i] += qp[i];
            for (std::size_t i = 0; i < kvs; ++i) {
                k[i] += kp[i];
                v[i] += vp[i];
            }
        }
        comm_.queryReduce += double(qs) * double(rows_ - 1);
        comm_.kvCollect += 2.0 * double(kvs) * double(rows_ - 1);
        q_cols[c] = std::move(q);
        k_cols[c] = std::move(k);
        v_cols[c] = std::move(v);
    }

    // Split into heads, apply RoPE, append to the distributed cache
    // (the owner chip is pos mod rows; storage is logically shared).
    std::vector<Vec> q_heads(cfg_.queryHeads);
    for (std::size_t h = 0; h < cfg_.queryHeads; ++h) {
        const std::size_t c = h / (cfg_.queryHeads / cols_);
        const std::size_t local = h % (cfg_.queryHeads / cols_);
        q_heads[h] = Vec(q_cols[c].begin() + local * head_dim,
                         q_cols[c].begin() + (local + 1) * head_dim);
        applyRope(q_heads[h], pos);
    }
    std::vector<Vec> k_heads(cfg_.kvHeads), v_heads(cfg_.kvHeads);
    for (std::size_t h = 0; h < cfg_.kvHeads; ++h) {
        const std::size_t c = h / (cfg_.kvHeads / cols_);
        const std::size_t local = h % (cfg_.kvHeads / cols_);
        k_heads[h] = Vec(k_cols[c].begin() + local * head_dim,
                         k_cols[c].begin() + (local + 1) * head_dim);
        applyRope(k_heads[h], pos);
        v_heads[h] = Vec(v_cols[c].begin() + local * head_dim,
                         v_cols[c].begin() + (local + 1) * head_dim);
    }
    cache.append(layer, pos, k_heads, v_heads);
    const std::size_t context = pos + 1;

    // -- distributed attention: FlashAttention-style combination --------
    const double inv_sqrt_d = 1.0 / std::sqrt(double(head_dim));
    Vec attn_out(cfg_.queryHeads * head_dim, 0.0);
    for (std::size_t h = 0; h < cfg_.queryHeads; ++h) {
        const std::size_t kv_head = h / group;

        // Phase 1: per-chip local maxima over owned positions, then a
        // column max-reduce (statistics only on the wire).
        double global_max = -1e300;
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t t = r; t < context; t += rows_) {
                const double s =
                    dot(q_heads[h], cache.key(layer, kv_head, t)) *
                    inv_sqrt_d;
                global_max = std::max(global_max, s);
            }
        }
        comm_.scoreStats += double(rows_ - 1);

        // Phase 2: per-chip exp-sums and weighted V partials, summed
        // by a column all-reduce.
        double sum_exp = 0.0;
        Vec weighted(head_dim, 0.0);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t t = r; t < context; t += rows_) {
                const double s =
                    dot(q_heads[h], cache.key(layer, kv_head, t)) *
                    inv_sqrt_d;
                const double w = std::exp(s - global_max);
                sum_exp += w;
                const Vec &v = cache.value(layer, kv_head, t);
                for (std::size_t d = 0; d < head_dim; ++d)
                    weighted[d] += w * v[d];
            }
        }
        comm_.attnCombine +=
            double(head_dim + 1) * double(rows_ - 1);

        for (std::size_t d = 0; d < head_dim; ++d)
            attn_out[h * head_dim + d] = weighted[d] / sum_exp;
    }

    // -- output projection: row all-reduce + column all-gather ----------
    Vec xo(cfg_.hiddenSize, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        Vec slice(hidden_slice, 0.0);
        for (std::size_t c = 0; c < cols_; ++c) {
            const ChipShard &shard = shards_->chips[r * cols_ + c];
            const Vec attn_col(attn_out.begin() + c * qs,
                               attn_out.begin() + (c + 1) * qs);
            const Vec partial = shard.wo[layer].forward(attn_col, ctx);
            for (std::size_t i = 0; i < hidden_slice; ++i)
                slice[i] += partial[i];
        }
        comm_.xoReduce += double(hidden_slice) * double(cols_ - 1);
        std::copy(slice.begin(), slice.end(),
                  xo.begin() + r * hidden_slice);
    }
    comm_.xoGather += double(cfg_.hiddenSize) * double(rows_ - 1);
    return xo;
}

Vec
DistributedEngine::feedForward(std::size_t layer, const Vec &x_norm)
{
    // Router replicated on every chip: identical result everywhere.
    const BlockWeights &block = weights_.blocks[layer];
    std::vector<std::size_t> selected;
    Vec gate_weights;
    if (cfg_.expertCount > 1) {
        const Vec logits = block.ffn.router().forward(
            x_norm, ExecPath::Reference);
        selected = topK(logits, cfg_.activeExperts);
        Vec sel_logits(selected.size());
        for (std::size_t i = 0; i < selected.size(); ++i)
            sel_logits[i] = logits[selected[i]];
        gate_weights = softmax(sel_logits);
    } else {
        selected = {0};
        gate_weights = {1.0};
    }

    // Every chip evaluates the active experts it owns; the grid
    // all-reduce combines the weighted partial outputs.
    const ExecContext ctx = shardContext();
    Vec out(cfg_.hiddenSize, 0.0);
    for (std::size_t chip = 0; chip < chipCount(); ++chip) {
        const ChipShard &shard = shards_->chips[chip];
        for (std::size_t k = 0; k < selected.size(); ++k) {
            const auto &ids = shard.expertIds[layer];
            const auto it = std::find(ids.begin(), ids.end(),
                                      selected[k]);
            if (it == ids.end())
                continue;
            const Expert &ex =
                shard.experts[layer][std::size_t(it - ids.begin())];
            const Vec up = ex.up.forward(x_norm, ctx);
            const Vec gate = ex.gate.forward(x_norm, ctx);
            const Vec act = swiGlu(gate, up);
            const Vec down = ex.down.forward(act, ctx);
            for (std::size_t d = 0; d < out.size(); ++d)
                out[d] += gate_weights[k] * down[d];
        }
    }
    // Row phase + column phase of the grid all-reduce.
    comm_.moeReduce += double(cfg_.hiddenSize) *
                       double((rows_ - 1) + (cols_ - 1));
    return out;
}

Vec
DistributedEngine::forwardToken(std::size_t token_id, Cache &cache)
{
    hnlpu_assert(token_id < cfg_.vocabSize, "token id range");
    Vec x = weights_.embedding.row(token_id);

    for (std::size_t layer = 0; layer < cfg_.layerCount; ++layer) {
        const BlockWeights &block = weights_.blocks[layer];
        const Vec attn_in = rmsNorm(x, block.attnNormGain);
        const Vec attn = attention(layer, attn_in, cache);
        x = add(x, attn);

        const Vec ffn_in = rmsNorm(x, block.ffnNormGain);
        const Vec ffn = feedForward(layer, ffn_in);
        x = add(x, ffn);
    }

    const Vec final_norm = rmsNorm(x, weights_.finalNormGain);

    // Row-partitioned unembedding + logit all-gather.
    const ExecContext ctx = shardContext();
    const std::size_t vocab_s = cfg_.vocabSize / chipCount();
    Vec logits(cfg_.vocabSize);
    for (std::size_t chip = 0; chip < chipCount(); ++chip) {
        const Vec shard_logits =
            shards_->chips[chip].unembed.forward(final_norm, ctx);
        std::copy(shard_logits.begin(), shard_logits.end(),
                  logits.begin() + chip * vocab_s);
    }
    comm_.logitGather += double(cfg_.vocabSize);
    return logits;
}

} // namespace hnlpu
