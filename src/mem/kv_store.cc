#include "mem/kv_store.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hnlpu {

KvStore::KvStore(SystemPartition partition, SramBufferParams buffer,
                 HbmParams hbm, double buffer_kv_share)
    : partition_(std::move(partition)), buffer_(buffer), hbm_(hbm),
      bufferKvShare_(buffer_kv_share)
{
    hnlpu_assert(bufferKvShare_ > 0.0 && bufferKvShare_ <= 1.0,
                 "buffer KV share must be in (0, 1]");
}

Bytes
KvStore::kvBytesPerTokenPerLayerPerChip() const
{
    // Each chip holds 1/gridRows of the tokens for its column's KV
    // heads: kv_heads_per_col * head_dim * 2 (K and V) * 1 B.
    const auto &m = partition_.model;
    return 2.0 * double(partition_.kvHeadsPerColumn()) *
           double(m.headDim) / double(partition_.gridRows);
}

Bytes
KvStore::bytesPerTokenPerChip() const
{
    // Only full-attention layers grow with context; sliding-window
    // layers keep a fixed ring buffer accounted in place().
    return kvBytesPerTokenPerLayerPerChip() *
           double(partition_.model.fullAttentionLayerCount());
}

KvPlacement
KvStore::place(std::size_t context_tokens, std::size_t sequences) const
{
    const auto &m = partition_.model;
    KvPlacement p;
    const double window_tokens =
        m.slidingWindow > 0
            ? double(std::min<std::size_t>(context_tokens,
                                           m.slidingWindow))
            : 0.0;
    const Bytes sliding_bytes = kvBytesPerTokenPerLayerPerChip() *
                                double(m.slidingLayerCount()) *
                                window_tokens * double(sequences);
    const Bytes full_bytes = bytesPerTokenPerChip() *
                             double(context_tokens) * double(sequences);
    p.totalBytesPerChip = full_bytes + sliding_bytes;

    // Sliding-window rings are small and hot: they stay resident; the
    // remaining budget hosts full-attention KV.
    const Bytes budget = buffer_.capacityBytes() * bufferKvShare_;
    const Bytes full_budget = std::max(0.0, budget - sliding_bytes);
    const Bytes full_resident = std::min(full_bytes, full_budget);
    p.residentBytesPerChip =
        std::min(sliding_bytes, budget) + full_resident;
    p.overflowBytesPerChip = p.totalBytesPerChip - p.residentBytesPerChip;
    p.overflowFraction =
        p.totalBytesPerChip > 0
            ? p.overflowBytesPerChip / p.totalBytesPerChip
            : 0.0;
    // Decode re-reads the cached context each token; the overflow
    // share streams from HBM across the full-attention layers.
    const double full_layers = double(m.fullAttentionLayerCount());
    p.hbmReadPerTokenPerLayer =
        full_layers > 0 ? p.overflowBytesPerChip / full_layers : 0.0;
    return p;
}

std::size_t
KvStore::maxResidentContext() const
{
    const auto &m = partition_.model;
    const Bytes budget = buffer_.capacityBytes() * bufferKvShare_;
    const Bytes sliding_bytes = kvBytesPerTokenPerLayerPerChip() *
                                double(m.slidingLayerCount()) *
                                double(m.slidingWindow);
    return static_cast<std::size_t>(std::floor(
        std::max(0.0, budget - sliding_bytes) /
        bytesPerTokenPerChip()));
}

} // namespace hnlpu
