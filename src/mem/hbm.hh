/**
 * @file
 * Per-module HBM model.
 *
 * Each compute module carries 8 stacks x 24 GB (192 GB) holding the
 * embedding tables and KV-cache overflow.  Bandwidth is the aggregate of
 * the stacks' channels derated by an access efficiency; the KV manager
 * uses it to decide whether double-buffered prefetch hides the overflow
 * traffic.
 */

#ifndef HNLPU_MEM_HBM_HH
#define HNLPU_MEM_HBM_HH

#include "common/units.hh"

namespace hnlpu {

/** Configuration of one module's HBM subsystem. */
struct HbmParams
{
    std::size_t stacks = 8;
    Bytes stackCapacity = 24.0 * kGiB;
    BytesPerSecond stackBandwidth = 0.4e12; //!< per stack
    double accessEfficiency = 0.8;
    Seconds accessLatency = 120e-9;

    Bytes capacityBytes() const;
    BytesPerSecond effectiveBandwidth() const;
    /** Ticks to transfer @p bytes (streaming, latency amortised). */
    Tick streamTicks(Bytes bytes) const;
    Tick accessLatencyTicks() const;
};

} // namespace hnlpu

#endif // HNLPU_MEM_HBM_HH
