#include "mem/hbm.hh"

#include "common/logging.hh"

namespace hnlpu {

Bytes
HbmParams::capacityBytes() const
{
    return static_cast<double>(stacks) * stackCapacity;
}

BytesPerSecond
HbmParams::effectiveBandwidth() const
{
    return static_cast<double>(stacks) * stackBandwidth *
           accessEfficiency;
}

Tick
HbmParams::streamTicks(Bytes bytes) const
{
    hnlpu_assert(bytes >= 0, "negative stream size");
    return toTicks(bytes / effectiveBandwidth());
}

Tick
HbmParams::accessLatencyTicks() const
{
    return toTicks(accessLatency);
}

} // namespace hnlpu
