/**
 * @file
 * Banked on-chip Attention Buffer model (paper Section 4.3 / 7.1).
 *
 * 20,000 banks x 16 KB, 1W1R ports of 32-bit width: 320 MB capacity and
 * 80 TB/s aggregate bandwidth at 1 GHz, 3-cycle access latency under
 * worst-case PVT.  The model exposes capacity/bandwidth/latency and an
 * access-time helper used by the VEX attention timing.
 */

#ifndef HNLPU_MEM_SRAM_HH
#define HNLPU_MEM_SRAM_HH

#include "common/units.hh"

namespace hnlpu {

/** Configuration of the banked attention buffer. */
struct SramBufferParams
{
    std::size_t banks = 20000;
    Bytes bankBytes = 16.0 * kKiB;
    Bytes portBytes = 4.0;       //!< 32-bit 1W1R ports
    double clockHz = 1.0e9;
    std::size_t accessCycles = 3;

    Bytes capacityBytes() const;
    /** Aggregate read bandwidth (all banks streaming). */
    BytesPerSecond readBandwidth() const;
    /** Ticks to stream @p bytes assuming full banking. */
    Tick streamTicks(Bytes bytes) const;
    /** Fixed access latency in ticks. */
    Tick accessLatencyTicks() const;
};

} // namespace hnlpu

#endif // HNLPU_MEM_SRAM_HH
