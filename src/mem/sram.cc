#include "mem/sram.hh"

#include <cmath>

#include "common/logging.hh"

namespace hnlpu {

Bytes
SramBufferParams::capacityBytes() const
{
    return static_cast<double>(banks) * bankBytes;
}

BytesPerSecond
SramBufferParams::readBandwidth() const
{
    return static_cast<double>(banks) * portBytes * clockHz;
}

Tick
SramBufferParams::streamTicks(Bytes bytes) const
{
    hnlpu_assert(bytes >= 0, "negative stream size");
    return toTicks(bytes / readBandwidth());
}

Tick
SramBufferParams::accessLatencyTicks() const
{
    return toTicks(static_cast<double>(accessCycles) / clockHz);
}

} // namespace hnlpu
