/**
 * @file
 * KV-cache placement planner: attention buffer first, HBM overflow.
 *
 * Each chip of a column stores an interleaved quarter of the sequence
 * for its column's KV heads (paper Fig. 10 (IV): chip = addr mod 4).
 * The on-chip Attention Buffer holds KV entries until capacity is
 * exceeded, then excess entries spill to HBM (Section 4.3).  During
 * decode the whole cached context is re-read every token, so the
 * overflow fraction directly becomes HBM streaming traffic which double
 * buffering tries to hide behind attention compute.
 */

#ifndef HNLPU_MEM_KV_STORE_HH
#define HNLPU_MEM_KV_STORE_HH

#include "mem/hbm.hh"
#include "mem/sram.hh"
#include "model/partition.hh"

namespace hnlpu {

/** Static placement of the KV cache for one context length. */
struct KvPlacement
{
    Bytes totalBytesPerChip = 0;    //!< all layers, K+V
    Bytes residentBytesPerChip = 0; //!< in the attention buffer
    Bytes overflowBytesPerChip = 0; //!< spilled to HBM
    double overflowFraction = 0.0;  //!< overflow / total

    /** HBM bytes streamed per token per layer during decode. */
    Bytes hbmReadPerTokenPerLayer = 0;
};

/** Computes placements and per-token HBM traffic. */
class KvStore
{
  public:
    KvStore(SystemPartition partition, SramBufferParams buffer,
            HbmParams hbm, double buffer_kv_share = 0.95);

    /**
     * Placement for a given total context length (tokens cached per
     * sequence times concurrent sequences is handled by the caller via
     * @p sequences).
     */
    KvPlacement place(std::size_t context_tokens,
                      std::size_t sequences = 1) const;

    /** Bytes of K+V one chip stores per cached token per layer. */
    Bytes kvBytesPerTokenPerLayerPerChip() const;

    /** Marginal bytes of K+V one chip stores per cached token
     *  (full-attention layers only; sliding rings are fixed-size). */
    Bytes bytesPerTokenPerChip() const;

    /** Maximum context (single sequence) fully resident on-chip. */
    std::size_t maxResidentContext() const;

    const SramBufferParams &buffer() const { return buffer_; }
    const HbmParams &hbm() const { return hbm_; }

  private:
    SystemPartition partition_;
    SramBufferParams buffer_;
    HbmParams hbm_;
    /** Share of the buffer available to KV (rest: residuals, staging). */
    double bufferKvShare_;
};

} // namespace hnlpu

#endif // HNLPU_MEM_KV_STORE_HH
