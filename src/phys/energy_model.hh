/**
 * @file
 * Operator-level time/energy model for the embedding-methodology
 * comparison (paper Section 6.3 / Fig. 13).
 *
 * The modelled operator is a 1 x In by In x Out FP4 GEMV executed by:
 *  - MA: a conventional MAC array fed from a weight SRAM,
 *  - CE: a fully parallel cell-embedded constant-multiplier fabric,
 *  - ME: the bit-serial Metal-Embedding Hardwired-Neuron fabric.
 *
 * Energies combine dynamic activity with leakage over the occupied area
 * and execution time; constants live in TechnologyParams.
 */

#ifndef HNLPU_PHYS_ENERGY_MODEL_HH
#define HNLPU_PHYS_ENERGY_MODEL_HH

#include "phys/area_model.hh"

namespace hnlpu {

/** One methodology's operator-level results. */
struct OperatorCost
{
    AreaMm2 area = 0;     //!< silicon area of the operator
    double cycles = 0;    //!< execution cycles for one GEMV
    Joules energy = 0;    //!< energy for one GEMV
};

/** The GEMV under comparison. */
struct OperatorShape
{
    std::size_t inDim = 1024;
    std::size_t outDim = 128;
    unsigned activationBits = 8;

    double weightCount() const
    {
        return double(inDim) * double(outDim);
    }
};

/** Computes OperatorCost for each methodology. */
class OperatorModel
{
  public:
    OperatorModel(TechnologyParams tech,
                  std::size_t ma_macs_per_cycle = 1024);

    OperatorCost macArray(const OperatorShape &shape) const;
    OperatorCost cellEmbedding(const OperatorShape &shape) const;
    OperatorCost metalEmbedding(const OperatorShape &shape) const;

    const AreaModel &areaModel() const { return area_; }

  private:
    Joules leakageEnergy(AreaMm2 area, double cycles) const;

    TechnologyParams tech_;
    AreaModel area_;
    std::size_t maMacsPerCycle_;
};

} // namespace hnlpu

#endif // HNLPU_PHYS_ENERGY_MODEL_HH
