#include "phys/technology.hh"

#include "common/logging.hh"

namespace hnlpu {

AreaMm2
TechnologyParams::logicAreaMm2(double transistors) const
{
    hnlpu_assert(transistors >= 0, "negative transistor count");
    return transistors / transistorDensityPerMm2;
}

AreaMm2
TechnologyParams::sramAreaMm2(Bytes bytes, bool fine_banked) const
{
    const double bits = bytes * 8.0;
    const double overhead = fine_banked ? sramBankOverhead : 1.0;
    return bits * sramBitAreaUm2 * 1e-6 * overhead;
}

TechnologyParams
n5Technology()
{
    return TechnologyParams{};
}

} // namespace hnlpu
