/**
 * @file
 * Silicon-area model for the three weight-embedding methodologies
 * (paper Section 3 / Fig. 12) and the Section 2.2 strawman.
 */

#ifndef HNLPU_PHYS_AREA_MODEL_HH
#define HNLPU_PHYS_AREA_MODEL_HH

#include "phys/technology.hh"

namespace hnlpu {

/** Area accounting for a weight block of a given parameter count. */
class AreaModel
{
  public:
    explicit AreaModel(TechnologyParams tech);

    /** SRAM storing @p weights FP4 params (the MA baseline's store). */
    AreaMm2 sramWeightStore(double weights) const;

    /** Cell-Embedding: one constant multiplier per weight. */
    AreaMm2 cellEmbedding(double weights) const;

    /** Metal-Embedding: parameter-independent HN silicon. */
    AreaMm2 metalEmbedding(double weights) const;

    /** Naive CMAC-grid strawman of Section 2.2 (208 Tr / weight). */
    AreaMm2 cmacStrawman(double weights) const;

    /** ME density advantage over CE (Fig. 12: about 15x). */
    double meDensityGain() const;

    const TechnologyParams &tech() const { return tech_; }

  private:
    TechnologyParams tech_;
};

} // namespace hnlpu

#endif // HNLPU_PHYS_AREA_MODEL_HH
