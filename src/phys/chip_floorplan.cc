#include "phys/chip_floorplan.hh"

#include "common/logging.hh"

namespace hnlpu {

ChipFloorplan::ChipFloorplan(const SystemPartition &partition,
                             TechnologyParams tech, ChipBlockParams blocks)
    : partition_(partition), tech_(tech), blocks_(blocks)
{
}

AreaMm2
ChipFloorplan::hnArrayArea() const
{
    AreaModel area(tech_);
    return area.metalEmbedding(double(partition_.paramsPerChip()));
}

std::vector<ChipComponent>
ChipFloorplan::components(const ChipActivity &activity) const
{
    const AreaMm2 hn_area = hnArrayArea();
    // HN dynamic power density at full activity, calibrated so the MoE
    // sparsity of gpt-oss (4.9% active) lands on Table 1's 76.92 W.
    const double hn_dyn_density = 2.335; // W/mm^2 at 100% activity
    const Watts hn_power =
        hn_area * tech_.leakageWPerMm2 +
        hn_area * hn_dyn_density * activity.hnActiveFraction;

    const AreaMm2 buffer_area =
        tech_.sramAreaMm2(blocks_.bufferBytes, /*fine_banked=*/true);
    const Watts buffer_power =
        buffer_area * tech_.leakageWPerMm2 +
        blocks_.bufferDynamic * activity.bufferUtilization;

    auto block_power = [&](AreaMm2 area, Watts dyn, double util) {
        return area * tech_.leakageWPerMm2 + dyn * util;
    };

    return {
        {"HN Array", hn_area, hn_power},
        {"VEX", blocks_.vexArea,
         block_power(blocks_.vexArea, blocks_.vexDynamic,
                     activity.vexUtilization)},
        {"Control Unit", blocks_.controlArea,
         block_power(blocks_.controlArea, blocks_.controlDynamic, 1.0)},
        {"Attention Buffer", buffer_area, buffer_power},
        {"Interconnect Engine", blocks_.interconnectArea,
         block_power(blocks_.interconnectArea,
                     blocks_.interconnectDynamic,
                     activity.interconnectUtilization)},
        {"HBM PHY", blocks_.hbmPhyArea,
         block_power(blocks_.hbmPhyArea, blocks_.hbmPhyDynamic,
                     activity.hbmPhyUtilization)},
    };
}

AreaMm2
ChipFloorplan::totalArea() const
{
    AreaMm2 total = 0;
    for (const auto &c : components())
        total += c.area;
    return total;
}

Watts
ChipFloorplan::totalPower(const ChipActivity &activity) const
{
    Watts total = 0;
    for (const auto &c : components(activity))
        total += c.power;
    return total;
}

AreaMm2
ChipFloorplan::systemSiliconArea() const
{
    return totalArea() * double(partition_.chipCount());
}

Watts
ChipFloorplan::systemPower(const ChipActivity &activity) const
{
    return totalPower(activity) * double(partition_.chipCount()) *
           blocks_.systemOverhead;
}

} // namespace hnlpu
