/**
 * @file
 * Process-technology descriptor (5 nm default).
 *
 * The paper characterises HNLPU with a Synopsys post-layout flow on a
 * commercial 5 nm PDK; that flow is proprietary, so this model exposes
 * the characterised constants directly (see DESIGN.md's substitution
 * table).  Headline anchors from the paper and its cited sources:
 *
 *  - logic density 138 MTr/mm^2 (high-density 5 nm, Section 2.2)
 *  - FP4 constant-MAC approx. 208 transistors (yields the 176,000 mm^2
 *    strawman of Section 2.2)
 *  - HD SRAM bit cell 0.021 um^2
 *  - Metal-Embedding 0.07839 um^2 per weight (Table 1: 573.16 mm^2 HN
 *    array for 1/16th of gpt-oss 120 B)
 *  - wafer price $16,988 (300 mm, 5 nm), defect density 0.11 /cm^2
 */

#ifndef HNLPU_PHYS_TECHNOLOGY_HH
#define HNLPU_PHYS_TECHNOLOGY_HH

#include <string>

#include "common/units.hh"

namespace hnlpu {

/** Technology-node constants used across area/energy/cost models. */
struct TechnologyParams
{
    std::string name = "N5";

    // -- logic / memory density -------------------------------------------
    double transistorDensityPerMm2 = 138e6;
    double sramBitAreaUm2 = 0.021;
    /** Periphery/banking multiplier for the fine-grained 16 KB banks of
     *  the attention buffer (decoder, sense amps, 1W1R ports). */
    double sramBankOverhead = 2.473;

    // -- calibrated cell areas (um^2) --------------------------------------
    /** FP4 constant multiplier cell in a 1024-wide CE neuron (amortised
     *  adder tree included); calibrated to Fig. 12's 14.3x. */
    double areaCePerWeightUm2 = 1.20;
    /** Metal-Embedding silicon per weight (POPCNT slice share, mux,
     *  multiplier and tree amortised); calibrated to Table 1. */
    double areaMePerWeightUm2 = 0.07839;
    /** Transistors per FP4 CMAC in the naive strawman of Section 2.2. */
    double cmacStrawmanTransistors = 208.0;

    // -- timing -------------------------------------------------------------
    double clockHz = 1.0e9;

    // -- energy (calibrated to Fig. 13 / Table 1) ---------------------------
    Joules eSramReadPerBit = 0.012e-12;
    Joules eSramWritePerBit = 0.015e-12;
    /** One FP8/INT8 MAC in a conventional array (MA baseline). */
    Joules eMacOp = 0.04e-12;
    /** One FP4 constant multiply incl. local accumulate (CE). */
    Joules eCmacOp = 0.008e-12;
    /** One 1-bit full-adder toggle (ME popcount / CSA). */
    Joules eFaBitOp = 0.0002e-12;
    /** HBM access energy per bit. */
    Joules eHbmPerBit = 3.5e-12 / 8.0;
    /** CXL link transport energy per bit. */
    Joules eLinkPerBit = 1.0e-12 / 8.0;
    /** Leakage power density of active logic. */
    double leakageWPerMm2 = 0.020;

    // -- manufacturing -------------------------------------------------------
    Dollars waferPrice = 16988.0;
    double waferDiameterMm = 300.0;
    double defectDensityPerCm2 = 0.11;

    /** Area of n transistors of random logic. */
    AreaMm2 logicAreaMm2(double transistors) const;
    /** Area of an SRAM macro of @p bytes (with banking overhead). */
    AreaMm2 sramAreaMm2(Bytes bytes, bool fine_banked = false) const;
    /** Seconds per clock cycle. */
    Seconds cyclePeriod() const { return 1.0 / clockHz; }
};

/** The default 5 nm technology used throughout the paper. */
TechnologyParams n5Technology();

} // namespace hnlpu

#endif // HNLPU_PHYS_TECHNOLOGY_HH
