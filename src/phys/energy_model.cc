#include "phys/energy_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace hnlpu {

OperatorModel::OperatorModel(TechnologyParams tech,
                             std::size_t ma_macs_per_cycle)
    : tech_(tech), area_(tech), maMacsPerCycle_(ma_macs_per_cycle)
{
    hnlpu_assert(maMacsPerCycle_ > 0, "MA needs at least one MAC");
}

Joules
OperatorModel::leakageEnergy(AreaMm2 area, double cycles) const
{
    return tech_.leakageWPerMm2 * area * cycles * tech_.cyclePeriod();
}

OperatorCost
OperatorModel::macArray(const OperatorShape &shape) const
{
    OperatorCost cost;
    const double weights = shape.weightCount();
    cost.area = area_.sramWeightStore(weights);

    // Every weight is fetched once and consumed by a MAC; the array
    // retires maMacsPerCycle_ MACs per cycle plus SRAM latency and
    // pipeline fill.
    const double mac_cycles =
        std::ceil(weights / double(maMacsPerCycle_));
    cost.cycles = mac_cycles + 8.0;

    const double weight_bits = weights * 4.0;
    cost.energy = weight_bits * tech_.eSramReadPerBit +
                  weights * tech_.eMacOp +
                  leakageEnergy(cost.area, cost.cycles);
    return cost;
}

OperatorCost
OperatorModel::cellEmbedding(const OperatorShape &shape) const
{
    OperatorCost cost;
    const double weights = shape.weightCount();
    cost.area = area_.cellEmbedding(weights);

    // Fully parallel: one multiplier stage plus the adder-tree depth.
    cost.cycles = 2.0 + double(ceilLog2(shape.inDim));

    cost.energy = weights * tech_.eCmacOp +
                  leakageEnergy(cost.area, cost.cycles);
    return cost;
}

OperatorCost
OperatorModel::metalEmbedding(const OperatorShape &shape) const
{
    OperatorCost cost;
    const double weights = shape.weightCount();
    cost.area = area_.metalEmbedding(weights);

    // Bit-serial: one cycle per activation bit plus the POPCNT /
    // compressor pipeline drain (log-depth in the fan-in) and the
    // 16-way product tree.
    const double popcount_depth = double(ceilLog2(shape.inDim)) + 2.0;
    cost.cycles = double(shape.activationBits) + popcount_depth + 6.0;

    // Dynamic: every wire contributes one 1-bit FA toggle per
    // activation bit plane; the 16 multipliers and small tree are
    // amortised into the same constant.
    const double bit_ops = weights * double(shape.activationBits);
    cost.energy = bit_ops * tech_.eFaBitOp +
                  leakageEnergy(cost.area, cost.cycles);
    return cost;
}

} // namespace hnlpu
