/**
 * @file
 * Single-chip floorplan and power breakdown (paper Table 1).
 *
 * A chip comprises the HN Array, VEX unit, Control Unit, Attention
 * Buffer, Interconnect Engine and HBM PHY.  The HN array area follows
 * the Metal-Embedding area model over the chip's weight share; the
 * remaining components are characterised blocks whose areas are fixed by
 * the 5 nm implementation and whose powers scale with utilisation.
 * With nominal utilisation and the gpt-oss 16-chip partition the model
 * reproduces Table 1: 827.08 mm^2 and 308.39 W per chip.
 */

#ifndef HNLPU_PHYS_CHIP_FLOORPLAN_HH
#define HNLPU_PHYS_CHIP_FLOORPLAN_HH

#include <string>
#include <vector>

#include "model/partition.hh"
#include "phys/area_model.hh"

namespace hnlpu {

/** One named block of the floorplan. */
struct ChipComponent
{
    std::string name;
    AreaMm2 area = 0;
    Watts power = 0;
};

/** Utilisation factors driving the power model. */
struct ChipActivity
{
    /** Fraction of hardwired weights toggling per cycle (MoE sparsity:
     *  active / total parameters). */
    double hnActiveFraction = 0.0489;
    double vexUtilization = 1.0;
    double bufferUtilization = 1.0;
    double interconnectUtilization = 1.0;
    double hbmPhyUtilization = 1.0;
};

/** Calibrated block characteristics (area mm^2 / dynamic power W). */
struct ChipBlockParams
{
    AreaMm2 vexArea = 27.87;
    Watts vexDynamic = 32.53;
    AreaMm2 controlArea = 0.02;
    Watts controlDynamic = 0.004;
    AreaMm2 interconnectArea = 37.92;
    Watts interconnectDynamic = 48.89;
    AreaMm2 hbmPhyArea = 52.0;
    Watts hbmPhyDynamic = 61.96;
    /** Attention-buffer dynamic power at full streaming bandwidth. */
    Watts bufferDynamic = 83.01;
    /** Attention-buffer capacity (20,000 x 16 KB). */
    Bytes bufferBytes = 20000.0 * 16.0 * 1024.0;
    /** Module-level overhead (VRMs, fans, board) applied system-wide. */
    double systemOverhead = 1.4;
};

/** The assembled floorplan of one HNLPU chip. */
class ChipFloorplan
{
  public:
    ChipFloorplan(const SystemPartition &partition,
                  TechnologyParams tech,
                  ChipBlockParams blocks = ChipBlockParams{});

    /** Component list in Table 1 order. */
    std::vector<ChipComponent> components(
        const ChipActivity &activity = ChipActivity{}) const;

    AreaMm2 totalArea() const;
    Watts totalPower(const ChipActivity &activity = ChipActivity{}) const;

    /** Whole-system silicon area (all chips). */
    AreaMm2 systemSiliconArea() const;
    /** Whole-system power including module overhead. */
    Watts systemPower(const ChipActivity &activity = ChipActivity{}) const;

    /** HN array area alone (weight share via Metal-Embedding). */
    AreaMm2 hnArrayArea() const;

    const SystemPartition &partition() const { return partition_; }
    const ChipBlockParams &blocks() const { return blocks_; }
    const TechnologyParams &tech() const { return tech_; }

  private:
    SystemPartition partition_;
    TechnologyParams tech_;
    ChipBlockParams blocks_;
};

} // namespace hnlpu

#endif // HNLPU_PHYS_CHIP_FLOORPLAN_HH
