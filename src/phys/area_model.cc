#include "phys/area_model.hh"

#include "common/logging.hh"

namespace hnlpu {

AreaModel::AreaModel(TechnologyParams tech) : tech_(tech) {}

AreaMm2
AreaModel::sramWeightStore(double weights) const
{
    // FP4: half a byte per weight; plain macro (no fine banking).
    return tech_.sramAreaMm2(weights * 0.5, /*fine_banked=*/false);
}

AreaMm2
AreaModel::cellEmbedding(double weights) const
{
    return weights * tech_.areaCePerWeightUm2 * 1e-6;
}

AreaMm2
AreaModel::metalEmbedding(double weights) const
{
    return weights * tech_.areaMePerWeightUm2 * 1e-6;
}

AreaMm2
AreaModel::cmacStrawman(double weights) const
{
    return tech_.logicAreaMm2(weights * tech_.cmacStrawmanTransistors);
}

double
AreaModel::meDensityGain() const
{
    return tech_.areaCePerWeightUm2 / tech_.areaMePerWeightUm2;
}

} // namespace hnlpu
