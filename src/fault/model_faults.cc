#include "fault/model_faults.hh"

#include <string>
#include <utility>

#include "common/logging.hh"

namespace hnlpu {

namespace {

void
accumulate(ModelFaultStats *stats, const ArrayFaultPlan &plan,
           std::size_t flipped)
{
    if (!stats)
        return;
    ++stats->arrays;
    stats->stuckBits += plan.stuckBits.size();
    stats->flippedBits += flipped;
    stats->deadRows += plan.deadRows.size();
    stats->repairedRows += plan.repairedRows.size();
}

} // namespace

Linear
applyToLinear(const FaultInjector &injector, const Linear &clean,
              std::string_view array_id, ModelFaultStats *stats)
{
    const ArrayFaultPlan plan =
        injector.plan(array_id, clean.outDim(), clean.inDim());
    if (plan.empty()) {
        accumulate(stats, plan, 0);
        return clean;
    }
    std::vector<Fp4> codes = clean.codes();
    const std::size_t flipped = plan.applyToCodes(codes);
    accumulate(stats, plan, flipped);
    return Linear(std::move(codes), clean.outDim(), clean.inDim(),
                  plan.deadRows);
}

ModelWeights
applyToModel(const ModelWeights &clean, const TransformerConfig &cfg,
             const FaultInjector &injector, ModelFaultStats *stats)
{
    (void)cfg;
    if (!injector.params().enabled())
        return clean;

    ModelWeights faulty = clean;
    for (std::size_t l = 0; l < faulty.blocks.size(); ++l) {
        BlockWeights &block = faulty.blocks[l];
        const std::string prefix = "block" + std::to_string(l) + ".";
        block.wq = applyToLinear(injector, block.wq, prefix + "wq",
                                 stats);
        block.wk = applyToLinear(injector, block.wk, prefix + "wk",
                                 stats);
        block.wv = applyToLinear(injector, block.wv, prefix + "wv",
                                 stats);
        block.wo = applyToLinear(injector, block.wo, prefix + "wo",
                                 stats);

        const MoeLayer &ffn = block.ffn;
        std::vector<Expert> experts;
        experts.reserve(ffn.expertCount());
        for (std::size_t e = 0; e < ffn.expertCount(); ++e) {
            const std::string ep =
                prefix + "expert" + std::to_string(e) + ".";
            const Expert &x = ffn.expert(e);
            experts.push_back(Expert{
                applyToLinear(injector, x.up, ep + "up", stats),
                applyToLinear(injector, x.gate, ep + "gate", stats),
                applyToLinear(injector, x.down, ep + "down", stats),
            });
        }
        if (ffn.expertCount() == 1) {
            block.ffn = MoeLayer::dense(std::move(experts.front()));
        } else {
            block.ffn = MoeLayer(
                applyToLinear(injector, ffn.router(), prefix + "router",
                              stats),
                std::move(experts), ffn.activeExperts());
        }
    }
    faulty.unembedding =
        applyToLinear(injector, faulty.unembedding, "unembedding",
                      stats);
    // faulty.embedding stays clean: HBM-resident, ECC protected.
    return faulty;
}

} // namespace hnlpu
