/**
 * @file
 * Deterministic fault-injection plans for Metal-Embedding HN arrays.
 *
 * The paper's economics lean on manufacturing yield over very large
 * hardwired dies, and on weights frozen in metal that cannot be patched
 * after fab.  This module models the two defect classes that survive
 * wafer test on such a die:
 *
 *  - *stuck-at weight-bit faults*: one metal via of a weight's 4-bit
 *    FP4 code shorts high or opens low, so the input wire lands in the
 *    wrong POPCNT region -- the neuron computes with a wrong (but
 *    well-defined) weight value;
 *  - *dead neurons (dead rows)*: a defect inside the shared POPCNT /
 *    multiplier / adder-tree silicon kills the whole output row; its
 *    output net reads 0.
 *
 * The sea-of-neurons base array is parameter independent, which makes
 * spare-row repair natural: a dead row's weight vector can be embedded
 * onto a spare neuron at metalization time (src/fault/repair).
 *
 * Everything is seed-deterministic: the same FaultModelParams produce a
 * byte-identical plan for the same array identity and geometry, so every
 * faulty behavior is pinnable in tests.  Plans are generated from the
 * geometry alone (never from the weight values), so a plan commutes with
 * weight changes and with row/column slicing.
 */

#ifndef HNLPU_FAULT_FAULT_PLAN_HH
#define HNLPU_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arith/fp4.hh"

namespace hnlpu {

/** Defect-density knobs of the fault injector. */
struct FaultModelParams
{
    /** Master seed; per-array streams are derived from it. */
    std::uint64_t seed = 0;
    /** Probability that one weight-code bit is stuck (per bit). */
    double stuckBitRate = 0.0;
    /** Probability that one neuron row is dead (per row). */
    double deadRowRate = 0.0;
    /** Spare neuron rows available per array for dead-row repair. */
    std::size_t spareRows = 0;

    /** True when any defect class has a nonzero rate. */
    bool enabled() const
    {
        return stuckBitRate > 0.0 || deadRowRate > 0.0;
    }

    /** Fatal on rates outside [0, 1]. */
    void validate() const;
};

/** One stuck-at fault on a weight-code bit. */
struct StuckBitFault
{
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    std::uint8_t bit = 0;   //!< FP4 code bit 0..3
    bool stuckHigh = false; //!< stuck-at-1 vs stuck-at-0

    bool operator==(const StuckBitFault &) const = default;
};

/** The complete, repair-adjusted fault plan for one HN array. */
struct ArrayFaultPlan
{
    std::string arrayId;
    std::size_t rows = 0;
    std::size_t cols = 0;
    /** Stuck bits on live (non-repaired) rows, in generation order. */
    std::vector<StuckBitFault> stuckBits;
    /** Dead rows that could not be repaired; sorted ascending. */
    std::vector<std::uint32_t> deadRows;
    /** Dead rows remapped onto spares; sorted ascending. */
    std::vector<std::uint32_t> repairedRows;

    /** True when the plan perturbs nothing. */
    bool empty() const
    {
        return stuckBits.empty() && deadRows.empty();
    }

    /**
     * Apply the stuck-at faults to a row-major code matrix in place.
     * Dead rows are NOT zeroed here -- their metal exists; the output
     * masking lives in HnArray/Linear.
     * @return number of bits whose value actually changed
     */
    std::size_t applyToCodes(std::vector<Fp4> &codes) const;

    /**
     * Canonical byte-stable textual form (the determinism contract:
     * same seed => identical serialization).
     */
    std::string serialize() const;

    /** FNV-1a hash of serialize() for cheap equality pins. */
    std::uint64_t fingerprint() const;
};

/** Stable 64-bit FNV-1a used for per-array seed derivation. */
std::uint64_t fnv1a64(std::string_view bytes);

/** Generates per-array fault plans from one master seed. */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultModelParams params);

    /**
     * The deterministic plan for the array named @p array_id with the
     * given geometry.  The per-array random stream is seeded with
     * seed ^ fnv1a64(array_id), so plans are independent of generation
     * order and of every other array in the model.  Spare-row repair
     * (params.spareRows) is already applied to the returned plan.
     */
    ArrayFaultPlan plan(std::string_view array_id, std::size_t rows,
                        std::size_t cols) const;

    const FaultModelParams &params() const { return params_; }

  private:
    FaultModelParams params_;
};

} // namespace hnlpu

#endif // HNLPU_FAULT_FAULT_PLAN_HH
