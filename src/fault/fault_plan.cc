#include "fault/fault_plan.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/repair.hh"

namespace hnlpu {

namespace {

/**
 * Geometric gap to the next faulty position for per-position
 * probability @p p (inverse-CDF sampling).  One uniform draw per fault,
 * so generation is O(#faults), not O(#positions), and the stream is
 * identical for any array large enough to contain the faults.
 */
std::uint64_t
geometricGap(Rng &rng, double p)
{
    if (p >= 1.0)
        return 0;
    const double u = rng.uniform01();
    // floor(log(1-u) / log(1-p)): number of clean positions before the
    // next fault.  1-u is in (0, 1], so the log is finite or zero.
    const double gap = std::floor(std::log1p(-u) / std::log1p(-p));
    if (gap >= 1e18) // degenerate p ~ 0 underflow guard
        return std::uint64_t(1) << 62;
    return std::uint64_t(gap);
}

} // namespace

void
FaultModelParams::validate() const
{
    if (stuckBitRate < 0.0 || stuckBitRate > 1.0) {
        hnlpu_fatal("FaultModelParams::stuckBitRate must be in [0,1], "
                    "got ", stuckBitRate);
    }
    if (deadRowRate < 0.0 || deadRowRate > 1.0) {
        hnlpu_fatal("FaultModelParams::deadRowRate must be in [0,1], "
                    "got ", deadRowRate);
    }
}

std::size_t
ArrayFaultPlan::applyToCodes(std::vector<Fp4> &codes) const
{
    hnlpu_assert(codes.size() == rows * cols,
                 "fault plan ", arrayId, " geometry ", rows, "x", cols,
                 " does not match code matrix of ", codes.size());
    std::size_t changed = 0;
    for (const StuckBitFault &f : stuckBits) {
        const std::size_t idx = std::size_t(f.row) * cols + f.col;
        const std::uint8_t mask = std::uint8_t(1u << f.bit);
        const std::uint8_t old_code = codes[idx].code();
        const std::uint8_t new_code =
            f.stuckHigh ? std::uint8_t(old_code | mask)
                        : std::uint8_t(old_code & ~mask);
        if (new_code != old_code) {
            codes[idx] = Fp4::fromCode(new_code);
            ++changed;
        }
    }
    return changed;
}

std::string
ArrayFaultPlan::serialize() const
{
    std::ostringstream oss;
    oss << "fault-plan/v1 id=" << arrayId << " rows=" << rows
        << " cols=" << cols << "\n";
    oss << "stuck " << stuckBits.size() << ":";
    for (const StuckBitFault &f : stuckBits) {
        oss << ' ' << f.row << ',' << f.col << ',' << unsigned(f.bit)
            << ',' << (f.stuckHigh ? '1' : '0');
    }
    oss << "\ndead " << deadRows.size() << ":";
    for (std::uint32_t r : deadRows)
        oss << ' ' << r;
    oss << "\nrepaired " << repairedRows.size() << ":";
    for (std::uint32_t r : repairedRows)
        oss << ' ' << r;
    oss << "\n";
    return oss.str();
}

std::uint64_t
ArrayFaultPlan::fingerprint() const
{
    return fnv1a64(serialize());
}

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

FaultInjector::FaultInjector(FaultModelParams params) : params_(params)
{
    params_.validate();
}

ArrayFaultPlan
FaultInjector::plan(std::string_view array_id, std::size_t rows,
                    std::size_t cols) const
{
    ArrayFaultPlan plan;
    plan.arrayId = array_id;
    plan.rows = rows;
    plan.cols = cols;
    if (!params_.enabled() || rows == 0 || cols == 0)
        return plan;

    Rng rng(params_.seed ^ fnv1a64(array_id));

    // Dead rows: geometric skip over the row index space.
    if (params_.deadRowRate > 0.0) {
        std::uint64_t row = geometricGap(rng, params_.deadRowRate);
        while (row < rows) {
            plan.deadRows.push_back(std::uint32_t(row));
            row += 1 + geometricGap(rng, params_.deadRowRate);
        }
    }

    // Stuck bits: geometric skip over the flattened bit index space
    // (row-major codes, 4 bits per code, LSB first).
    if (params_.stuckBitRate > 0.0) {
        const std::uint64_t bit_count =
            std::uint64_t(rows) * cols * 4;
        std::uint64_t bit = geometricGap(rng, params_.stuckBitRate);
        while (bit < bit_count) {
            StuckBitFault f;
            f.row = std::uint32_t(bit / (std::uint64_t(cols) * 4));
            f.col = std::uint32_t((bit / 4) % cols);
            f.bit = std::uint8_t(bit % 4);
            f.stuckHigh = (rng.next() & 1) != 0;
            plan.stuckBits.push_back(f);
            bit += 1 + geometricGap(rng, params_.stuckBitRate);
        }
    }

    applySpareRepair(plan, params_.spareRows);
    return plan;
}

} // namespace hnlpu
