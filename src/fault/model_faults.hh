/**
 * @file
 * Applying fault plans to transformer weights.
 *
 * Every weight-bearing projection of the model is an HN array with a
 * stable identity derived from its position (block index, projection
 * name, expert index).  applyToModel() asks the injector for each
 * array's plan and rebuilds the projection with stuck bits burned into
 * its FP4 codes and unrepaired dead rows masked -- on BOTH execution
 * paths, so reference-path equivalence tests (monolithic vs
 * distributed) keep holding under faults.
 *
 * The embedding table is deliberately untouched: embedding lookup is an
 * HBM fetch (paper Fig. 10 (I)), and HBM carries ECC -- metal stuck-at
 * faults are an HN-array phenomenon.
 */

#ifndef HNLPU_FAULT_MODEL_FAULTS_HH
#define HNLPU_FAULT_MODEL_FAULTS_HH

#include <string_view>

#include "fault/fault_plan.hh"
#include "model/transformer_config.hh"
#include "xformer/linear.hh"
#include "xformer/weights.hh"

namespace hnlpu {

/** Totals over every array plan applied to a model. */
struct ModelFaultStats
{
    std::size_t arrays = 0;       //!< weight arrays visited
    std::size_t stuckBits = 0;    //!< stuck bits on live rows
    std::size_t flippedBits = 0;  //!< stuck bits that changed a value
    std::size_t deadRows = 0;     //!< unrepaired dead rows
    std::size_t repairedRows = 0; //!< dead rows remapped to spares
};

/**
 * Rebuild @p clean with the injector's plan for @p array_id applied:
 * stuck bits forced into the FP4 codes, unrepaired dead rows masked.
 * @param stats optional accumulation of plan totals
 */
Linear applyToLinear(const FaultInjector &injector, const Linear &clean,
                     std::string_view array_id,
                     ModelFaultStats *stats = nullptr);

/**
 * The faulty twin of @p clean under @p injector.  Array identities are
 * "block<l>.wq|wk|wv|wo", "block<l>.router",
 * "block<l>.expert<e>.up|gate|down" and "unembedding", so a plan for a
 * given projection is independent of model size elsewhere.  A disabled
 * injector returns an unmodified copy.
 * @param stats optional accumulation of per-array plan totals
 */
ModelWeights applyToModel(const ModelWeights &clean,
                          const TransformerConfig &cfg,
                          const FaultInjector &injector,
                          ModelFaultStats *stats = nullptr);

} // namespace hnlpu

#endif // HNLPU_FAULT_MODEL_FAULTS_HH
