#include "fault/repair.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_plan.hh"

namespace hnlpu {

std::size_t
applySpareRepair(ArrayFaultPlan &plan, std::size_t spare_rows)
{
    const std::size_t repaired =
        std::min(spare_rows, plan.deadRows.size());
    if (repaired == 0)
        return 0;

    plan.repairedRows.assign(plan.deadRows.begin(),
                             plan.deadRows.begin() + repaired);
    plan.deadRows.erase(plan.deadRows.begin(),
                        plan.deadRows.begin() + repaired);

    // The spare's metal is embedded fresh and scan-verified, so any
    // stuck bits the original row carried do not follow it.
    std::erase_if(plan.stuckBits, [&](const StuckBitFault &f) {
        return std::binary_search(plan.repairedRows.begin(),
                                  plan.repairedRows.end(), f.row);
    });

    for (std::uint32_t row : plan.repairedRows) {
        hnlpu_warn_ratelimited("fault: array ", plan.arrayId,
                               " dead row ", row,
                               " remapped to spare neuron");
    }
    return repaired;
}

} // namespace hnlpu
