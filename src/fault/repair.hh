/**
 * @file
 * Spare-neuron repair for Metal-Embedding HN arrays.
 *
 * The sea-of-neurons base array is parameter independent: every neuron
 * is an identical POPCNT/multiplier/adder-tree tile until metalization
 * assigns it a weight vector.  A die therefore carries a few spare rows
 * per array; when wafer test finds a dead row, the row's weight vector
 * is embedded onto a spare instead and the output mux selects the spare
 * -- the repaired row behaves exactly like a healthy one.
 *
 * Repair happens at plan level: a repaired row is removed from the
 * plan's deadRows (and its stuck bits are dropped, since the spare's
 * metal is written fresh and verified by scan), and recorded in
 * repairedRows so yield/economics models can count consumed spares.
 */

#ifndef HNLPU_FAULT_REPAIR_HH
#define HNLPU_FAULT_REPAIR_HH

#include <cstddef>

namespace hnlpu {

struct ArrayFaultPlan;

/**
 * Remap up to @p spare_rows dead rows of @p plan onto spares, lowest
 * row index first.  Repaired rows move from plan.deadRows to
 * plan.repairedRows and lose their stuck-bit faults.
 * @return number of rows repaired
 */
std::size_t applySpareRepair(ArrayFaultPlan &plan,
                             std::size_t spare_rows);

} // namespace hnlpu

#endif // HNLPU_FAULT_REPAIR_HH
