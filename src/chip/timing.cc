#include "chip/timing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace hnlpu {

Tick
ChipTimingParams::cyclesToTicks(double cycles) const
{
    return toTicks(cycles * cyclePeriod());
}

ChipTiming::ChipTiming(SystemPartition partition, ChipTimingParams params)
    : partition_(std::move(partition)), params_(params)
{
    partition_.validate();
}

Tick
ChipTiming::hnGemvTicks(std::size_t fan_in) const
{
    hnlpu_assert(fan_in > 0, "empty GEMV");
    // Each accumulator slice streams hnSerialWidth input ports per
    // cycle; the activation bits of each port group pass serially.
    const double groups = std::ceil(double(fan_in) /
                                    double(params_.hnSerialWidth));
    const double cycles = double(params_.activationBits) * groups +
                          double(ceilLog2(fan_in)) +
                          double(params_.hnPipelineCycles);
    return params_.cyclesToTicks(cycles);
}

Tick
ChipTiming::vexAttentionTicks(std::size_t context) const
{
    // Each chip scores its interleaved 1/gridRows share of the context
    // for its column's KV heads: QK plus AV, gqa_group query heads.
    const auto &m = partition_.model;
    const double tokens =
        std::ceil(double(context) / double(partition_.gridRows));
    const double macs = tokens * double(partition_.kvHeadsPerColumn()) *
                        double(m.gqaGroupSize()) * double(m.headDim) *
                        2.0;
    const double cycles =
        std::ceil(macs / double(params_.vexMacsPerCycle));
    return params_.cyclesToTicks(cycles);
}

Tick
ChipTiming::vexNonlinearTicks() const
{
    // Two RMSNorms, SwiGLU on the resident active experts, residual
    // adds, router softmax/top-k: ~4 full hidden-width passes through
    // the SFU lanes per layer.
    const double elems = 4.0 * double(partition_.model.hiddenSize);
    const double cycles = elems * params_.vexCyclesPerNonlinearElem /
                          double(params_.vexNonlinearLanes);
    return params_.cyclesToTicks(cycles);
}

Tick
ChipTiming::vexSoftmaxTicks(std::size_t context) const
{
    // Row-wise streaming softmax over the chip's context share for the
    // local query group (SFU bound, one element per lane-cycle pair).
    const double elems =
        std::ceil(double(context) / double(partition_.gridRows)) *
        double(partition_.kvHeadsPerColumn()) *
        double(partition_.model.gqaGroupSize());
    const double cycles = elems * params_.vexCyclesPerNonlinearElem /
                          double(params_.vexSoftmaxLanes);
    return params_.cyclesToTicks(cycles);
}

Tick
ChipTiming::kvStreamTicks(Bytes bytes) const
{
    hnlpu_assert(bytes >= 0, "negative KV stream");
    return toTicks(bytes / params_.kvStreamBandwidth);
}

Tick
ChipTiming::hbmStallTicks(Tick hbm_ticks, Tick attention_ticks) const
{
    const double hidden =
        params_.hbmOverlapFraction * double(attention_ticks);
    const double stall = double(hbm_ticks) - hidden;
    return stall > 0 ? static_cast<Tick>(stall) : 0;
}

} // namespace hnlpu
