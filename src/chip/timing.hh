/**
 * @file
 * Single-chip timing model: HN array, VEX and KV-stream durations.
 *
 * These per-operation latencies feed the pipeline simulator.  The HN
 * array is fully parallel and bit-serial: a GEMV takes one cycle per
 * activation bit plus the compressor-tree drain, independent of fan-out
 * (every output neuron has dedicated hardware).  The VEX unit is a
 * conventional vector engine characterised by MACs/cycle for attention
 * and lanes x cycles-per-element for nonlinear operators.
 */

#ifndef HNLPU_CHIP_TIMING_HH
#define HNLPU_CHIP_TIMING_HH

#include "mem/hbm.hh"
#include "model/partition.hh"

namespace hnlpu {

/** Calibrated single-chip timing parameters (1 GHz sign-off clock). */
struct ChipTimingParams
{
    double clockHz = 1.0e9;
    /** Activation stream width into the HN array. */
    unsigned activationBits = 8;
    /** Extra HN pipeline cycles (deserialiser, tree drain, retiming). */
    std::size_t hnPipelineCycles = 12;
    /** Input ports streamed per cycle per neuron (one accumulator
     *  slice's worth); the bit-serial GEMV walks fan_in/width groups. */
    std::size_t hnSerialWidth = 64;
    /** VEX attention datapath width (32 cached KV heads/cycle class). */
    std::size_t vexMacsPerCycle = 32768;
    /** VEX nonlinear lanes and per-element SFU cost. */
    std::size_t vexNonlinearLanes = 128;
    double vexCyclesPerNonlinearElem = 4.0;
    /** Streaming-softmax lanes (wide, fused with the attention flow). */
    std::size_t vexSoftmaxLanes = 2048;
    /** Effective HBM bandwidth available to KV-cache streaming. */
    BytesPerSecond kvStreamBandwidth = 2.56e12;
    /** Fraction of attention compute that HBM prefetch can hide. */
    double hbmOverlapFraction = 0.9;

    Seconds cyclePeriod() const { return 1.0 / clockHz; }
    Tick cyclesToTicks(double cycles) const;
};

/** Derives stage durations for one chip of a partition. */
class ChipTiming
{
  public:
    ChipTiming(SystemPartition partition, ChipTimingParams params);

    /** Bit-serial HN GEMV latency for a given fan-in. */
    Tick hnGemvTicks(std::size_t fan_in) const;

    /** VEX attention compute for this chip's context share. */
    Tick vexAttentionTicks(std::size_t context) const;

    /** VEX nonlinear work of one layer (norms, SwiGLU, router aux). */
    Tick vexNonlinearTicks() const;

    /** Softmax/auxiliary VEX work of the attention stage. */
    Tick vexSoftmaxTicks(std::size_t context) const;

    /** HBM streaming time for @p bytes of KV overflow. */
    Tick kvStreamTicks(Bytes bytes) const;

    /** Unhidden stall after overlapping HBM behind attention. */
    Tick hbmStallTicks(Tick hbm_ticks, Tick attention_ticks) const;

    const ChipTimingParams &params() const { return params_; }
    const SystemPartition &partition() const { return partition_; }

  private:
    SystemPartition partition_;
    ChipTimingParams params_;
};

} // namespace hnlpu

#endif // HNLPU_CHIP_TIMING_HH
