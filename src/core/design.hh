/**
 * @file
 * The HNLPU public API: one design point, fully evaluated.
 *
 * HnlpuDesign ties together everything a user of this library needs to
 * study a Hardwired-Neuron LPU for a given model: the chip partition,
 * the physical floorplan (area/power), the cycle-level pipeline
 * simulation (throughput, latency, breakdown), and the economics (NRE,
 * TCO, carbon).  The benchmark drivers and examples all build on this
 * facade; every sub-model remains directly accessible for fine-grained
 * studies.
 */

#ifndef HNLPU_CORE_DESIGN_HH
#define HNLPU_CORE_DESIGN_HH

#include "baseline/gpu.hh"
#include "baseline/wse.hh"
#include "econ/tco.hh"
#include "phys/chip_floorplan.hh"
#include "pipeline/pipeline_sim.hh"

namespace hnlpu {

/** A Table 2 style system summary. */
struct SystemSummary
{
    std::string name;
    double tokensPerSecond = 0;
    AreaMm2 siliconArea = 0;
    double rackUnits = 0;
    Watts systemPower = 0;
    double tokensPerKilojoule = 0;
    double areaEfficiency = 0; //!< tokens/(s * mm^2)
};

/** Full evaluation of one HNLPU design point. */
struct DesignReport
{
    SystemSummary summary;
    std::vector<ChipComponent> chipComponents; //!< Table 1
    PipelineResult pipeline;                   //!< Table 2 / Fig. 14
    HnlpuCostBreakdown cost;                   //!< Table 5
};

/** One HNLPU design point: a model hardwired at a technology node. */
class HnlpuDesign
{
  public:
    /**
     * @param model the LLM to hardwire
     * @param tech process technology (5 nm default)
     * @param context decode context length for the simulation
     */
    HnlpuDesign(TransformerConfig model,
                TechnologyParams tech = n5Technology(),
                std::size_t context = 2048);

    /** Run the full evaluation (simulation + models). */
    DesignReport evaluate() const;

    /** System summary only (cheaper; reuses one simulation run). */
    SystemSummary summarize() const;

    /** The H100 baseline summary for the same model. */
    SystemSummary h100Baseline() const;
    /** The WSE-3 baseline summary for the same model. */
    SystemSummary wseBaseline() const;

    // Access to the constituent models for fine-grained studies.
    const SystemPartition &partition() const { return partition_; }
    const ChipFloorplan &floorplan() const { return floorplan_; }
    PipelineConfig pipelineConfig() const;
    HnlpuCostModel costModel() const;
    TcoModel tcoModel() const;

  private:
    TransformerConfig model_;
    TechnologyParams tech_;
    std::size_t context_;
    SystemPartition partition_;
    ChipFloorplan floorplan_;
};

} // namespace hnlpu

#endif // HNLPU_CORE_DESIGN_HH
