#include "core/design.hh"

#include "common/logging.hh"

namespace hnlpu {

HnlpuDesign::HnlpuDesign(TransformerConfig model, TechnologyParams tech,
                         std::size_t context)
    : model_(std::move(model)), tech_(tech), context_(context),
      partition_(makePartition(model_)), floorplan_(partition_, tech_)
{
    model_.validate();
}

PipelineConfig
HnlpuDesign::pipelineConfig() const
{
    PipelineConfig cfg = defaultGptOssPipeline(context_);
    cfg.partition = partition_;
    return cfg;
}

HnlpuCostModel
HnlpuDesign::costModel() const
{
    return HnlpuCostModel(tech_, MaskStack{});
}

TcoModel
HnlpuDesign::tcoModel() const
{
    return TcoModel(costModel());
}

SystemSummary
HnlpuDesign::summarize() const
{
    PipelineSim sim(pipelineConfig());
    const PipelineResult result = sim.run();

    SystemSummary s;
    s.name = "HNLPU (" + model_.name + ")";
    s.tokensPerSecond = result.tokensPerSecond;
    s.siliconArea = floorplan_.systemSiliconArea();
    s.rackUnits = 4.0;
    s.systemPower = floorplan_.systemPower();
    s.tokensPerKilojoule =
        s.tokensPerSecond / s.systemPower * 1000.0;
    s.areaEfficiency = s.tokensPerSecond / s.siliconArea;
    return s;
}

DesignReport
HnlpuDesign::evaluate() const
{
    DesignReport report;
    PipelineSim sim(pipelineConfig());
    report.pipeline = sim.run();
    report.chipComponents = floorplan_.components();
    report.cost = costModel().breakdown(model_);

    SystemSummary s;
    s.name = "HNLPU (" + model_.name + ")";
    s.tokensPerSecond = report.pipeline.tokensPerSecond;
    s.siliconArea = floorplan_.systemSiliconArea();
    s.rackUnits = 4.0;
    s.systemPower = floorplan_.systemPower();
    s.tokensPerKilojoule = s.tokensPerSecond / s.systemPower * 1000.0;
    s.areaEfficiency = s.tokensPerSecond / s.siliconArea;
    report.summary = s;
    return report;
}

SystemSummary
HnlpuDesign::h100Baseline() const
{
    GpuSystemModel gpu;
    SystemSummary s;
    s.name = gpu.params().name;
    s.tokensPerSecond = gpu.tokensPerSecond(model_);
    s.siliconArea = gpu.params().dieArea;
    s.rackUnits = gpu.params().rackUnits;
    s.systemPower = gpu.params().systemPower;
    s.tokensPerKilojoule = gpu.tokensPerKilojoule(model_);
    s.areaEfficiency = gpu.areaEfficiency(model_);
    return s;
}

SystemSummary
HnlpuDesign::wseBaseline() const
{
    WseSystemModel wse;
    SystemSummary s;
    s.name = wse.params().name;
    s.tokensPerSecond = wse.tokensPerSecond(model_);
    s.siliconArea = wse.params().dieArea;
    s.rackUnits = wse.params().rackUnits;
    s.systemPower = wse.params().systemPower;
    s.tokensPerKilojoule = wse.tokensPerKilojoule(model_);
    s.areaEfficiency = wse.areaEfficiency(model_);
    return s;
}

} // namespace hnlpu
