/**
 * @file
 * Wafer economics: die-per-wafer, Murphy yield and good-die cost
 * (paper Appendix B, note 3).
 */

#ifndef HNLPU_LITHO_WAFER_HH
#define HNLPU_LITHO_WAFER_HH

#include <cstddef>

#include "phys/technology.hh"

namespace hnlpu {

/**
 * Spare-neuron repair knobs for repair-aware yield (src/fault).
 *
 * A fraction of the die's defects land in HN-array rows that spare
 * neurons can absorb: the die is still good as long as no more than
 * spareRows such defects hit it.  The remaining (1 - repairableFraction)
 * of the defect density stays fatal and follows plain Murphy.
 */
struct SpareRepairParams
{
    /** Spare neuron rows available per die. */
    std::size_t spareRows = 0;
    /** Fraction of defects that land in repairable HN-array rows. */
    double repairableFraction = 0.0;

    bool enabled() const
    {
        return spareRows > 0 && repairableFraction > 0.0;
    }

    /** Fatal on a fraction outside [0, 1]. */
    void validate() const;
};

/** Per-die manufacturing figures for one die size on one technology. */
struct WaferEconomics
{
    double grossDiesPerWafer = 0;
    double yield = 0;            //!< Murphy model
    double goodDiesPerWafer = 0;
    Dollars costPerGoodDie = 0;
};

/** Wafer-level cost model. */
class WaferModel
{
  public:
    explicit WaferModel(TechnologyParams tech);

    /** Gross die candidates on a wafer for @p die_area. */
    double grossDiesPerWafer(AreaMm2 die_area) const;

    /** Murphy yield for @p die_area at the node's defect density. */
    double murphyYield(AreaMm2 die_area) const;

    /**
     * Repair-aware effective yield: Murphy over the non-repairable
     * defect share times the Poisson probability that at most
     * repair.spareRows repairable defects hit the die.  Reduces to
     * murphyYield() when repair is disabled and is monotonically
     * non-decreasing in repair.spareRows.
     */
    double effectiveYield(AreaMm2 die_area,
                          const SpareRepairParams &repair) const;

    /** Full economics for @p die_area. */
    WaferEconomics economics(AreaMm2 die_area) const;

    /** Economics with spare-neuron repair folded into yield. */
    WaferEconomics economics(AreaMm2 die_area,
                             const SpareRepairParams &repair) const;

    /** Maximum die area a single reticle can expose (26 x 33 mm). */
    static constexpr AreaMm2 kReticleLimit = 858.0;

    const TechnologyParams &tech() const { return tech_; }

  private:
    TechnologyParams tech_;
};

} // namespace hnlpu

#endif // HNLPU_LITHO_WAFER_HH
