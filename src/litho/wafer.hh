/**
 * @file
 * Wafer economics: die-per-wafer, Murphy yield and good-die cost
 * (paper Appendix B, note 3).
 */

#ifndef HNLPU_LITHO_WAFER_HH
#define HNLPU_LITHO_WAFER_HH

#include "phys/technology.hh"

namespace hnlpu {

/** Per-die manufacturing figures for one die size on one technology. */
struct WaferEconomics
{
    double grossDiesPerWafer = 0;
    double yield = 0;            //!< Murphy model
    double goodDiesPerWafer = 0;
    Dollars costPerGoodDie = 0;
};

/** Wafer-level cost model. */
class WaferModel
{
  public:
    explicit WaferModel(TechnologyParams tech);

    /** Gross die candidates on a wafer for @p die_area. */
    double grossDiesPerWafer(AreaMm2 die_area) const;

    /** Murphy yield for @p die_area at the node's defect density. */
    double murphyYield(AreaMm2 die_area) const;

    /** Full economics for @p die_area. */
    WaferEconomics economics(AreaMm2 die_area) const;

    /** Maximum die area a single reticle can expose (26 x 33 mm). */
    static constexpr AreaMm2 kReticleLimit = 858.0;

    const TechnologyParams &tech() const { return tech_; }

  private:
    TechnologyParams tech_;
};

} // namespace hnlpu

#endif // HNLPU_LITHO_WAFER_HH
