/**
 * @file
 * Photomask stack and pricing model (paper Section 3.2 / Appendix B).
 *
 * A 5 nm layer stack comprises 12 EUV and 58 DUV mask layers; EUV
 * reticles carry a 6x cost weight, so a full set is 58 + 12*6 = 130
 * normalised DUV units, anchored to $15 M (optimistic) .. $30 M
 * (pessimistic).  Metal-Embedding confines the parameter-dependent
 * patterning to 10 DUV reticles (VIA7..M11), i.e. 10/130 = 7.7% of the
 * set; the remaining 92.3% (including every EUV mask) is homogeneous
 * and shared across all chips and all future weight re-spins.
 */

#ifndef HNLPU_LITHO_MASK_STACK_HH
#define HNLPU_LITHO_MASK_STACK_HH

#include "common/units.hh"

namespace hnlpu {

/** An optimistic..pessimistic dollar range. */
struct CostRange
{
    Dollars lo = 0;
    Dollars hi = 0;

    Dollars mid() const { return 0.5 * (lo + hi); }
    CostRange operator+(const CostRange &other) const
    {
        return {lo + other.lo, hi + other.hi};
    }
    CostRange operator*(double k) const { return {lo * k, hi * k}; }
    CostRange &operator+=(const CostRange &other)
    {
        lo += other.lo;
        hi += other.hi;
        return *this;
    }
};

/** The photomask layer stack of a process node. */
struct MaskStack
{
    std::size_t euvLayers = 12;
    std::size_t duvLayers = 58;
    double euvCostWeight = 6.0;
    /** Parameter-dependent (Metal-Embedding) DUV layers: VIA7, M8
     *  mandrel/cut, VIA8, M9 mandrel/cut, VIA9, M10, VIA10, M11. */
    std::size_t metalEmbeddingLayers = 10;
    /** Full-set price anchors at 5 nm. */
    CostRange fullSetPrice{15e6, 30e6};

    /** Total layers (70 at 5 nm). */
    std::size_t totalLayers() const;
    /** Normalised DUV units of the full set (130). */
    double normalizedUnits() const;
    /** Fraction of set cost in the ME layers (~7.7%). */
    double metalEmbeddingFraction() const;

    /** Shared (homogeneous) mask cost: one set for all chips. */
    CostRange homogeneousCost() const;
    /** Parameter-dependent mask cost per chip variant. */
    CostRange metalEmbeddingCostPerChip() const;
    /** Full heterogeneous sets for @p chips (the Section 2.2 strawman,
     *  priced at the pessimistic anchor as in the paper's $6 B). */
    Dollars strawmanCost(std::size_t chips) const;

    /** Sea-of-Neurons total mask cost for @p chips. */
    CostRange seaOfNeuronsCost(std::size_t chips) const;
    /** Mask cost of a weight-update re-spin for @p chips. */
    CostRange respinCost(std::size_t chips) const;
};

} // namespace hnlpu

#endif // HNLPU_LITHO_MASK_STACK_HH
