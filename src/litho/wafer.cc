#include "litho/wafer.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace hnlpu {

WaferModel::WaferModel(TechnologyParams tech) : tech_(tech) {}

double
WaferModel::grossDiesPerWafer(AreaMm2 die_area) const
{
    hnlpu_assert(die_area > 0, "die area must be positive");
    hnlpu_assert(die_area <= kReticleLimit, "die exceeds reticle limit");
    const double d = tech_.waferDiameterMm;
    // Standard gross-die estimate: wafer area over die area minus the
    // edge-loss correction term.
    return std::numbers::pi * d * d / (4.0 * die_area) -
           std::numbers::pi * d / std::sqrt(2.0 * die_area);
}

double
WaferModel::murphyYield(AreaMm2 die_area) const
{
    // Murphy's model: Y = ((1 - e^{-AD}) / (AD))^2 with A in cm^2.
    const double ad = (die_area / 100.0) * tech_.defectDensityPerCm2;
    if (ad <= 0)
        return 1.0;
    const double factor = (1.0 - std::exp(-ad)) / ad;
    return factor * factor;
}

WaferEconomics
WaferModel::economics(AreaMm2 die_area) const
{
    WaferEconomics e;
    e.grossDiesPerWafer = std::floor(grossDiesPerWafer(die_area));
    e.yield = murphyYield(die_area);
    e.goodDiesPerWafer = std::round(e.grossDiesPerWafer * e.yield);
    hnlpu_assert(e.goodDiesPerWafer >= 1.0,
                 "no good dies at this size/defect density");
    e.costPerGoodDie = tech_.waferPrice / e.goodDiesPerWafer;
    return e;
}

} // namespace hnlpu
