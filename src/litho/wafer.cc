#include "litho/wafer.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace hnlpu {

void
SpareRepairParams::validate() const
{
    if (repairableFraction < 0.0 || repairableFraction > 1.0) {
        hnlpu_fatal("SpareRepairParams::repairableFraction must be in "
                    "[0,1], got ", repairableFraction);
    }
}

WaferModel::WaferModel(TechnologyParams tech) : tech_(tech)
{
    hnlpu_assert(tech_.defectDensityPerCm2 >= 0,
                 "defect density must be non-negative, got ",
                 tech_.defectDensityPerCm2);
}

double
WaferModel::grossDiesPerWafer(AreaMm2 die_area) const
{
    hnlpu_assert(die_area > 0, "die area must be positive");
    hnlpu_assert(die_area <= kReticleLimit, "die exceeds reticle limit");
    const double d = tech_.waferDiameterMm;
    // Standard gross-die estimate: wafer area over die area minus the
    // edge-loss correction term.
    return std::numbers::pi * d * d / (4.0 * die_area) -
           std::numbers::pi * d / std::sqrt(2.0 * die_area);
}

namespace {

/** Murphy factor ((1 - e^{-AD}) / AD)^2 for AD >= 0. */
double
murphyFactor(double ad)
{
    if (ad <= 0)
        return 1.0;
    const double factor = (1.0 - std::exp(-ad)) / ad;
    return factor * factor;
}

/** P[Poisson(mean) <= k], summed directly (k is small). */
double
poissonCdf(std::size_t k, double mean)
{
    if (mean <= 0)
        return 1.0;
    double term = std::exp(-mean);
    double sum = term;
    for (std::size_t i = 1; i <= k; ++i) {
        term *= mean / double(i);
        sum += term;
    }
    return sum < 1.0 ? sum : 1.0;
}

} // namespace

double
WaferModel::murphyYield(AreaMm2 die_area) const
{
    hnlpu_assert(die_area >= 0, "die area must be non-negative, got ",
                 die_area);
    // Murphy's model: Y = ((1 - e^{-AD}) / (AD))^2 with A in cm^2.
    // AD = 0 (zero area or zero defect density) is the ideal limit and
    // clamps to yield 1.
    const double ad = (die_area / 100.0) * tech_.defectDensityPerCm2;
    return murphyFactor(ad);
}

double
WaferModel::effectiveYield(AreaMm2 die_area,
                           const SpareRepairParams &repair) const
{
    repair.validate();
    if (!repair.enabled())
        return murphyYield(die_area);
    hnlpu_assert(die_area >= 0, "die area must be non-negative, got ",
                 die_area);
    const double ad = (die_area / 100.0) * tech_.defectDensityPerCm2;
    // Split the defect density: the repairable share only kills the die
    // once it exceeds the spare budget (Poisson count of hits), the
    // rest clusters like any other defect (Murphy).
    const double fatal_ad = ad * (1.0 - repair.repairableFraction);
    const double repairable_ad = ad * repair.repairableFraction;
    const double y = murphyFactor(fatal_ad) *
                     poissonCdf(repair.spareRows, repairable_ad);
    return y < 1.0 ? y : 1.0;
}

WaferEconomics
WaferModel::economics(AreaMm2 die_area) const
{
    return economics(die_area, SpareRepairParams{});
}

WaferEconomics
WaferModel::economics(AreaMm2 die_area,
                      const SpareRepairParams &repair) const
{
    WaferEconomics e;
    e.grossDiesPerWafer = std::floor(grossDiesPerWafer(die_area));
    e.yield = effectiveYield(die_area, repair);
    e.goodDiesPerWafer = std::round(e.grossDiesPerWafer * e.yield);
    hnlpu_assert(e.goodDiesPerWafer >= 1.0,
                 "no good dies at this size/defect density");
    e.costPerGoodDie = tech_.waferPrice / e.goodDiesPerWafer;
    return e;
}

} // namespace hnlpu
