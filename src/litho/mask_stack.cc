#include "litho/mask_stack.hh"

#include "common/logging.hh"

namespace hnlpu {

std::size_t
MaskStack::totalLayers() const
{
    return euvLayers + duvLayers;
}

double
MaskStack::normalizedUnits() const
{
    return double(duvLayers) + double(euvLayers) * euvCostWeight;
}

double
MaskStack::metalEmbeddingFraction() const
{
    hnlpu_assert(metalEmbeddingLayers <= duvLayers,
                 "ME layers must be DUV layers");
    return double(metalEmbeddingLayers) / normalizedUnits();
}

CostRange
MaskStack::homogeneousCost() const
{
    return fullSetPrice * (1.0 - metalEmbeddingFraction());
}

CostRange
MaskStack::metalEmbeddingCostPerChip() const
{
    return fullSetPrice * metalEmbeddingFraction();
}

Dollars
MaskStack::strawmanCost(std::size_t chips) const
{
    return fullSetPrice.hi * double(chips);
}

CostRange
MaskStack::seaOfNeuronsCost(std::size_t chips) const
{
    return homogeneousCost() +
           metalEmbeddingCostPerChip() * double(chips);
}

CostRange
MaskStack::respinCost(std::size_t chips) const
{
    return metalEmbeddingCostPerChip() * double(chips);
}

} // namespace hnlpu
