#include "arith/bitserial.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace hnlpu {

BitSerializer::BitSerializer(std::vector<std::int64_t> values,
                             unsigned width)
    : values_(std::move(values)), width_(width)
{
    hnlpu_assert(width_ >= 2 && width_ <= 63, "bad bit-serial width ",
                 width_);
    const std::int64_t lo = -(std::int64_t(1) << (width_ - 1));
    const std::int64_t hi = (std::int64_t(1) << (width_ - 1)) - 1;
    for (std::int64_t v : values_) {
        hnlpu_assert(v >= lo && v <= hi, "value ", v,
                     " does not fit in ", width_, " bits");
    }
}

std::vector<bool>
BitSerializer::plane(unsigned bit) const
{
    hnlpu_assert(bit < width_, "plane index out of range");
    std::vector<bool> bits(values_.size());
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const std::uint64_t u = static_cast<std::uint64_t>(values_[i]);
        bits[i] = (u >> bit) & 1ULL;
    }
    return bits;
}

void
PackedPlanes::build(const std::vector<std::int64_t> &values,
                    unsigned width)
{
    hnlpu_assert(width >= 2 && width <= 63, "bad bit-serial width ",
                 width);
    const std::int64_t lo = -(std::int64_t(1) << (width - 1));
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;
    width_ = width;
    lanes_ = values.size();
    wordsPerPlane_ = (lanes_ + 63) / 64;
    // assign() keeps the capacity, so rebuilding at a stable geometry
    // (every decode step of a given projection) is allocation free.
    words_.assign(std::size_t(width_) * wordsPerPlane_, 0);
    // Plane occupancy doubles as the value OR-fold: plane b is
    // non-zero iff some value has bit b set.
    std::uint64_t value_or = 0;
    for (std::size_t i = 0; i < lanes_; ++i) {
        const std::int64_t v = values[i];
        hnlpu_assert(v >= lo && v <= hi, "value ", v,
                     " does not fit in ", width, " bits");
        const std::uint64_t u = static_cast<std::uint64_t>(v);
        value_or |= u;
        const std::size_t word = i / 64;
        const std::uint64_t lane_bit = std::uint64_t(1) << (i % 64);
        for (unsigned bit = 0; bit < width_; ++bit) {
            if ((u >> bit) & 1ULL)
                words_[bit * wordsPerPlane_ + word] |= lane_bit;
        }
    }
    const std::uint64_t width_mask =
        width_ == 64 ? ~std::uint64_t(0)
                     : (std::uint64_t(1) << width_) - 1;
    nonZeroPlanes_ = value_or & width_mask;
}

const std::uint64_t *
PackedPlanes::plane(unsigned bit) const
{
    hnlpu_assert(bit < width_, "plane index out of range");
    return words_.data() + std::size_t(bit) * wordsPerPlane_;
}

void
SerialAccumulator::addPlane(unsigned bit, bool sign_plane,
                            std::int64_t count)
{
    const std::int64_t weight = std::int64_t(1) << bit;
    total_ += (sign_plane ? -weight : weight) * count;
}

std::size_t
bitSerialCycles(unsigned width, std::size_t tree_depth)
{
    return static_cast<std::size_t>(width) + tree_depth;
}

std::vector<int>
csdDigits(std::int64_t multiplier)
{
    std::vector<int> digits;
    std::int64_t value = multiplier;
    bool negative = value < 0;
    if (negative)
        value = -value;
    while (value != 0) {
        if (value & 1) {
            // Choose +1 or -1 so the remaining value is even-friendly:
            // CSD picks -1 when the low two bits are 11.
            int digit = ((value & 3) == 3) ? -1 : 1;
            digits.push_back(digit);
            value -= digit;
        } else {
            digits.push_back(0);
        }
        value >>= 1;
    }
    if (negative) {
        for (int &d : digits)
            d = -d;
    }
    return digits;
}

std::size_t
csdAdderCount(std::int64_t multiplier)
{
    std::size_t nonzero = 0;
    for (int d : csdDigits(multiplier)) {
        if (d != 0)
            ++nonzero;
    }
    return nonzero > 0 ? nonzero - 1 : 0;
}

} // namespace hnlpu
