#include "arith/fp4.hh"

#include <cmath>

#include "common/logging.hh"

namespace hnlpu {

namespace {

std::array<double, kFp4Codes>
buildValueTable()
{
    std::array<double, kFp4Codes> table{};
    for (int code = 0; code < kFp4Codes; ++code) {
        const bool sign = (code >> 3) & 1;
        const int exponent = (code >> 1) & 3;
        const int mantissa = code & 1;
        double magnitude = 0.0;
        if (exponent == 0) {
            // Subnormal: mantissa scaled by 2^(1-bias) * 0.5 = 0.5.
            magnitude = 0.5 * mantissa;
        } else {
            magnitude = (1.0 + 0.5 * mantissa) *
                        static_cast<double>(1 << (exponent - 1));
        }
        table[code] = sign ? -magnitude : magnitude;
    }
    return table;
}

std::array<int, kFp4Codes>
buildTwiceTable()
{
    std::array<int, kFp4Codes> table{};
    const auto values = buildValueTable();
    for (int code = 0; code < kFp4Codes; ++code)
        table[code] = static_cast<int>(values[code] * 2.0);
    return table;
}

} // namespace

const std::array<double, kFp4Codes> &
fp4ValueTable()
{
    static const std::array<double, kFp4Codes> table = buildValueTable();
    return table;
}

const std::array<int, kFp4Codes> &
fp4TwiceValueTable()
{
    static const std::array<int, kFp4Codes> table = buildTwiceTable();
    return table;
}

Fp4
Fp4::fromCode(std::uint8_t code)
{
    hnlpu_assert(code < kFp4Codes, "fp4 code out of range: ", int(code));
    return Fp4(code);
}

Fp4
Fp4::quantize(double value)
{
    const auto &values = fp4ValueTable();
    int best = 0;
    double best_err = -1.0;
    for (int code = 0; code < kFp4Codes; ++code) {
        // Skip -0 so that exact zeros quantise to +0 deterministically.
        if (code == 8)
            continue;
        const double err = std::fabs(values[code] - value);
        if (best_err < 0.0 || err < best_err - 1e-12 ||
            (std::fabs(err - best_err) <= 1e-12 &&
             std::fabs(values[code]) < std::fabs(values[best]))) {
            best = code;
            best_err = err;
        }
    }
    return Fp4(static_cast<std::uint8_t>(best));
}

double
Fp4::value() const
{
    return fp4ValueTable()[code_];
}

int
Fp4::twiceValue() const
{
    return fp4TwiceValueTable()[code_];
}

} // namespace hnlpu
