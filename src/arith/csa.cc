#include "arith/csa.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace hnlpu {

CsaPair
csaCompress(std::int64_t a, std::int64_t b, std::int64_t c)
{
    // Per-bit full adder applied across the word:
    //   sum   = a ^ b ^ c
    //   carry = majority(a, b, c) << 1
    const std::int64_t sum = a ^ b ^ c;
    const std::uint64_t ua = static_cast<std::uint64_t>(a);
    const std::uint64_t ub = static_cast<std::uint64_t>(b);
    const std::uint64_t uc = static_cast<std::uint64_t>(c);
    const std::uint64_t maj = (ua & ub) | (ua & uc) | (ub & uc);
    return {sum, static_cast<std::int64_t>(maj << 1)};
}

std::int64_t
csaReduce(const std::vector<std::int64_t> &operands)
{
    if (operands.empty())
        return 0;
    std::vector<std::int64_t> rows = operands;
    while (rows.size() > 2) {
        std::vector<std::int64_t> next;
        next.reserve(rows.size() * 2 / 3 + 2);
        std::size_t i = 0;
        for (; i + 3 <= rows.size(); i += 3) {
            CsaPair pair = csaCompress(rows[i], rows[i + 1], rows[i + 2]);
            next.push_back(pair.sum);
            next.push_back(pair.carry);
        }
        for (; i < rows.size(); ++i)
            next.push_back(rows[i]);
        rows.swap(next);
    }
    std::int64_t total = 0;
    for (std::int64_t row : rows)
        total += row;
    return total;
}

CsaTreeShape
csaTreeShape(std::size_t n)
{
    CsaTreeShape shape;
    shape.inputCount = n;
    std::size_t rows = n;
    while (rows > 2) {
        const std::size_t groups = rows / 3;
        shape.compressorCount += groups;
        rows = rows - groups; // each group turns 3 rows into 2
        ++shape.depth;
    }
    return shape;
}

namespace {

/**
 * Structural popcount builder: returns {full-adder count, depth} by
 * recursively combining bit columns.  A column of k wires of weight w is
 * reduced with full adders (3 wires -> 1 sum at w + 1 carry at 2w) and a
 * final half-adder/pass-through; we count half adders as full adders for
 * the area model (conservative, matches synthesis within the calibration
 * slack).
 */
struct PopShape { std::size_t adders; std::size_t depth; };

PopShape
popShape(std::size_t n)
{
    if (n <= 1)
        return {0, 0};
    // Column counts per weight; start with n wires at weight 0.
    std::vector<std::size_t> cols{n};
    std::size_t adders = 0;
    std::size_t depth = 0;
    bool reduced = true;
    while (reduced) {
        reduced = false;
        std::vector<std::size_t> next(cols.size() + 1, 0);
        for (std::size_t w = 0; w < cols.size(); ++w) {
            std::size_t k = cols[w];
            if (k <= 1) {
                next[w] += k;
                continue;
            }
            reduced = true;
            // Full adders: consume 3, produce 1 sum + 1 carry.
            const std::size_t fa = k / 3;
            adders += fa;
            std::size_t rem = k - 3 * fa;
            std::size_t sums = fa;
            std::size_t carries = fa;
            if (rem == 2) {
                // Half adder.
                adders += 1;
                sums += 1;
                carries += 1;
                rem = 0;
            }
            next[w] += sums + rem;
            next[w + 1] += carries;
        }
        if (reduced)
            ++depth;
        while (!next.empty() && next.back() == 0)
            next.pop_back();
        cols.swap(next);
    }
    return {adders, depth};
}

} // namespace

std::size_t
popcountAdderCount(std::size_t n)
{
    return popShape(n).adders;
}

std::size_t
popcountDepth(std::size_t n)
{
    return popShape(n).depth;
}

std::size_t
popcount(const std::vector<bool> &bits)
{
    return static_cast<std::size_t>(
        std::count(bits.begin(), bits.end(), true));
}

} // namespace hnlpu
