/**
 * @file
 * Carry-save adder (CSA) building blocks.
 *
 * The Hardwired-Neuron trades time for area by unfolding accumulation into
 * a tree of carry-save adders fed by bit-serialised inputs (paper Fig. 3,
 * right).  This module provides:
 *
 *  - a bit-exact word-level CSA (3:2 compressor) and Wallace-style
 *    reduction of N operands to a single sum, used to verify the HN
 *    functional path;
 *  - structural cost accounting (full-adder count, tree depth) that feeds
 *    the area/energy model in src/phys.
 */

#ifndef HNLPU_ARITH_CSA_HH
#define HNLPU_ARITH_CSA_HH

#include <cstdint>
#include <vector>

namespace hnlpu {

/** Result of one word-level 3:2 compression step. */
struct CsaPair
{
    std::int64_t sum;   //!< bitwise XOR partial sum
    std::int64_t carry; //!< carries, already shifted left by one
};

/** One word-level carry-save 3:2 compressor: a + b + c == sum + carry. */
CsaPair csaCompress(std::int64_t a, std::int64_t b, std::int64_t c);

/**
 * Reduce @p operands to a single integer sum using Wallace-tree style
 * rounds of 3:2 compressors followed by one carry-propagate add.
 * Bit-exact for any signed 64-bit operands whose true sum fits in 64 bits.
 */
std::int64_t csaReduce(const std::vector<std::int64_t> &operands);

/** Structural characteristics of an N-input CSA reduction tree. */
struct CsaTreeShape
{
    std::size_t inputCount = 0;      //!< N operands
    std::size_t compressorCount = 0; //!< number of 3:2 compressors
    std::size_t depth = 0;           //!< compressor levels until 2 operands
};

/**
 * Compute the shape of the Wallace reduction of @p n operands
 * (compressors until two rows remain; the final CPA is not counted).
 */
CsaTreeShape csaTreeShape(std::size_t n);

/**
 * Number of 1-bit full adders in an n-input population counter
 * (counts set bits among n wires).  Classic result: n - popcount(n)
 * full adders for power-of-two padding-free trees; we build the counter
 * structurally to get the exact value for any n.
 */
std::size_t popcountAdderCount(std::size_t n);

/** Logic depth (in full-adder levels) of an n-input population counter. */
std::size_t popcountDepth(std::size_t n);

/**
 * Count set bits among the first @p n entries of a boolean vector
 * (functional reference for the POPCNT accumulator region).
 */
std::size_t popcount(const std::vector<bool> &bits);

} // namespace hnlpu

#endif // HNLPU_ARITH_CSA_HH
