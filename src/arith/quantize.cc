#include "arith/quantize.hh"

#include <cmath>

#include "common/logging.hh"

namespace hnlpu {

QuantizedVector
quantizeSymmetric(const std::vector<double> &reals, unsigned width)
{
    hnlpu_assert(width >= 2 && width <= 32, "bad quantise width ", width);
    QuantizedVector q;
    q.width = width;
    q.values.resize(reals.size());

    double abs_max = 0.0;
    for (double r : reals)
        abs_max = std::max(abs_max, std::fabs(r));

    const double max_code =
        static_cast<double>((std::int64_t(1) << (width - 1)) - 1);
    q.scale = abs_max > 0.0 ? abs_max / max_code : 1.0;

    for (std::size_t i = 0; i < reals.size(); ++i) {
        double code = std::nearbyint(reals[i] / q.scale);
        code = std::min(code, max_code);
        code = std::max(code, -max_code - 1.0);
        q.values[i] = static_cast<std::int64_t>(code);
    }
    return q;
}

std::vector<double>
dequantize(const QuantizedVector &q)
{
    std::vector<double> reals(q.values.size());
    for (std::size_t i = 0; i < q.values.size(); ++i)
        reals[i] = static_cast<double>(q.values[i]) * q.scale;
    return reals;
}

double
quantizeErrorBound(double abs_max, unsigned width)
{
    const double max_code =
        static_cast<double>((std::int64_t(1) << (width - 1)) - 1);
    const double scale = abs_max > 0.0 ? abs_max / max_code : 1.0;
    return scale * 0.5;
}

} // namespace hnlpu
