/**
 * @file
 * Symmetric fixed-point quantisation of real activations.
 *
 * The HN array consumes integer activations (streamed bit-serially); this
 * module quantises floating-point activation vectors to signed
 * @p width-bit integers with a shared power-aware scale and converts the
 * integer results back.  Combined with the FP4 weight codec, a whole GEMV
 * can be executed exactly in integer arithmetic and dequantised once.
 */

#ifndef HNLPU_ARITH_QUANTIZE_HH
#define HNLPU_ARITH_QUANTIZE_HH

#include <cstdint>
#include <vector>

namespace hnlpu {

/** An integer activation vector plus the scale that reconstitutes it. */
struct QuantizedVector
{
    std::vector<std::int64_t> values; //!< quantised integers
    double scale = 1.0;               //!< real = value * scale
    unsigned width = 8;               //!< bits per element
};

/**
 * Quantise @p reals symmetrically to @p width-bit signed integers.
 * The scale maps the absolute maximum onto the largest positive code;
 * all-zero input yields scale 1.
 */
QuantizedVector quantizeSymmetric(const std::vector<double> &reals,
                                  unsigned width);

/** Reconstitute reals from a quantised vector. */
std::vector<double> dequantize(const QuantizedVector &q);

/**
 * Worst-case absolute quantisation error of a symmetric @p width-bit
 * quantiser for the given absolute maximum (half a step).
 */
double quantizeErrorBound(double abs_max, unsigned width);

} // namespace hnlpu

#endif // HNLPU_ARITH_QUANTIZE_HH
