/**
 * @file
 * FP4 (E2M1) value codec.
 *
 * gpt-oss ships 4-bit weights; the HNLPU hardwires one of the 16 FP4 codes
 * per weight.  E2M1 has 1 sign bit, 2 exponent bits (bias 1) and 1
 * mantissa bit.  The representable magnitudes are
 * {0, 0.5, 1, 1.5, 2, 3, 4, 6}; doubling every magnitude yields an
 * integer, which is what makes the POPCNT-then-multiply decomposition of
 * the Hardwired-Neuron exact: the HN operates on value*2 integers and the
 * final scale of 0.5 is folded into the output dequantisation.
 */

#ifndef HNLPU_ARITH_FP4_HH
#define HNLPU_ARITH_FP4_HH

#include <array>
#include <cstdint>

namespace hnlpu {

/** Number of distinct FP4 codes. */
inline constexpr int kFp4Codes = 16;

/**
 * One FP4 (E2M1) value, stored as its 4-bit code.
 *
 * Code layout: bit3 = sign, bits2..1 = exponent, bit0 = mantissa.
 */
class Fp4
{
  public:
    constexpr Fp4() = default;

    /** Construct from a raw 4-bit code (asserted in fromCode). */
    static Fp4 fromCode(std::uint8_t code);

    /** Quantise a real value to the nearest FP4 (ties to even code). */
    static Fp4 quantize(double value);

    /** The raw 4-bit code. */
    std::uint8_t code() const { return code_; }

    /** The represented real value. */
    double value() const;

    /**
     * The represented value multiplied by two, as an exact integer in
     * {0, +-1, +-2, +-3, +-4, +-6, +-8, +-12}.  This is the constant the
     * Hardwired-Neuron multiplier implements.
     */
    int twiceValue() const;

    bool sign() const { return (code_ >> 3) & 1; }
    std::uint8_t exponentField() const { return (code_ >> 1) & 3; }
    std::uint8_t mantissaField() const { return code_ & 1; }

    /** True for either of the two zero codes (+0, -0). */
    bool isZero() const { return (code_ & 0x7) == 0; }

    bool operator==(const Fp4 &other) const = default;

  private:
    explicit constexpr Fp4(std::uint8_t code) : code_(code) {}

    std::uint8_t code_ = 0;
};

/** All sixteen FP4 real values indexed by code. */
const std::array<double, kFp4Codes> &fp4ValueTable();

/** All sixteen value*2 integers indexed by code. */
const std::array<int, kFp4Codes> &fp4TwiceValueTable();

/** Largest representable magnitude (6.0). */
inline constexpr double kFp4Max = 6.0;

} // namespace hnlpu

#endif // HNLPU_ARITH_FP4_HH
