/**
 * @file
 * Bit-serial arithmetic helpers.
 *
 * The Hardwired-Neuron streams activations LSB-first, one bit per clock
 * (paper Fig. 3/4).  Every cycle, each weight-value region POPCNTs the
 * incoming bit plane and a serial accumulator folds the count in with the
 * appropriate power-of-two weight.  Two's-complement inputs are handled by
 * giving the MSB plane a negative weight.
 */

#ifndef HNLPU_ARITH_BITSERIAL_HH
#define HNLPU_ARITH_BITSERIAL_HH

#include <cstdint>
#include <vector>

namespace hnlpu {

/**
 * Decompose signed integers into bit planes for serial streaming.
 * All values must fit in @p width bits two's complement.
 */
class BitSerializer
{
  public:
    /**
     * @param values the signed integers to serialise
     * @param width word width in bits (2..63)
     */
    BitSerializer(std::vector<std::int64_t> values, unsigned width);

    unsigned width() const { return width_; }
    std::size_t laneCount() const { return values_.size(); }

    /** Bit plane @p bit (0 == LSB) across all lanes. */
    std::vector<bool> plane(unsigned bit) const;

    /** True if @p bit is the (sign-carrying) MSB plane. */
    bool isSignPlane(unsigned bit) const { return bit == width_ - 1; }

  private:
    std::vector<std::int64_t> values_;
    unsigned width_;
};

/**
 * Serial accumulator: folds per-plane popcounts into a running integer
 * using weight 2^bit (negative for the sign plane).  Bit-exact: after all
 * planes of all lanes are added, total() equals the plain integer sum of
 * the serialised values.
 */
class SerialAccumulator
{
  public:
    void reset() { total_ = 0; }

    /** Add a plane's popcount with its positional weight. */
    void addPlane(unsigned bit, bool sign_plane, std::int64_t count);

    std::int64_t total() const { return total_; }

  private:
    std::int64_t total_ = 0;
};

/**
 * Clock cycles for a bit-serial reduction: one cycle per input bit plane
 * plus the pipeline drain of the compressor tree.
 */
std::size_t bitSerialCycles(unsigned width, std::size_t tree_depth);

/**
 * Number of add/subtract operations in a canonical-signed-digit (CSD)
 * shift-add multiplier for the constant @p multiplier.  0 and powers of
 * two cost zero adders; every further nonzero CSD digit costs one.
 */
std::size_t csdAdderCount(std::int64_t multiplier);

/** The CSD digit string (entries in {-1,0,1}, LSB first). */
std::vector<int> csdDigits(std::int64_t multiplier);

} // namespace hnlpu

#endif // HNLPU_ARITH_BITSERIAL_HH
