/**
 * @file
 * Bit-serial arithmetic helpers.
 *
 * The Hardwired-Neuron streams activations LSB-first, one bit per clock
 * (paper Fig. 3/4).  Every cycle, each weight-value region POPCNTs the
 * incoming bit plane and a serial accumulator folds the count in with the
 * appropriate power-of-two weight.  Two's-complement inputs are handled by
 * giving the MSB plane a negative weight.
 */

#ifndef HNLPU_ARITH_BITSERIAL_HH
#define HNLPU_ARITH_BITSERIAL_HH

#include <cstdint>
#include <vector>

namespace hnlpu {

/**
 * Decompose signed integers into bit planes for serial streaming.
 * All values must fit in @p width bits two's complement.
 */
class BitSerializer
{
  public:
    /**
     * @param values the signed integers to serialise
     * @param width word width in bits (2..63)
     */
    BitSerializer(std::vector<std::int64_t> values, unsigned width);

    unsigned width() const { return width_; }
    std::size_t laneCount() const { return values_.size(); }

    /** Bit plane @p bit (0 == LSB) across all lanes. */
    std::vector<bool> plane(unsigned bit) const;

    /** True if @p bit is the (sign-carrying) MSB plane. */
    bool isSignPlane(unsigned bit) const { return bit == width_ - 1; }

  private:
    std::vector<std::int64_t> values_;
    unsigned width_;
};

/**
 * Bit planes packed 64 lanes per 64-bit word, LSB-plane first.
 *
 * This is the word-parallel twin of BitSerializer: plane(bit) returns
 * wordsPerPlane() uint64_t words where word w bit l carries lane
 * 64*w + l of bit plane @p bit.  Lanes beyond laneCount() in the tail
 * word are zero.  A PackedPlanes is built once per GEMV and then shared
 * read-only across every neuron row (and every worker thread), which is
 * what removes the per-row re-serialisation of the scalar path.
 *
 * build() reuses the word buffer's capacity, so a long-lived instance
 * (see hn/hn_kernel.hh scratch arena) allocates only on its first use
 * at a given geometry.
 */
class PackedPlanes
{
  public:
    PackedPlanes() = default;

    /**
     * (Re)build the planes from @p values.  Same contract as
     * BitSerializer: all values must fit in @p width bits two's
     * complement, width in 2..63.
     */
    void build(const std::vector<std::int64_t> &values, unsigned width);

    unsigned width() const { return width_; }
    std::size_t laneCount() const { return lanes_; }
    /** ceil(laneCount / 64): words per bit plane. */
    std::size_t wordsPerPlane() const { return wordsPerPlane_; }

    /** Pointer to the wordsPerPlane() words of plane @p bit (0 = LSB). */
    const std::uint64_t *plane(unsigned bit) const;

    /** True if @p bit is the (sign-carrying) MSB plane. */
    bool isSignPlane(unsigned bit) const { return bit == width_ - 1; }

    /**
     * Bit @p bit set iff plane @p bit has at least one 1 anywhere.
     * Computed once at build time; kernels skip all-zero planes
     * entirely (a zero plane popcounts to 0 against every region mask,
     * so the skip is bit-exact by construction).  Small-magnitude
     * non-negative activations leave their high planes all-zero, which
     * is exactly the bit-sparsity that Laconic/DynamicStripes-style
     * accelerators exploit.
     */
    std::uint64_t nonZeroPlaneMask() const { return nonZeroPlanes_; }

    /** True when plane @p bit carries at least one 1. */
    bool planeNonZero(unsigned bit) const
    {
        return (nonZeroPlanes_ >> bit) & 1ULL;
    }

  private:
    std::vector<std::uint64_t> words_;
    unsigned width_ = 0;
    std::size_t lanes_ = 0;
    std::size_t wordsPerPlane_ = 0;
    std::uint64_t nonZeroPlanes_ = 0;
};

/**
 * Serial accumulator: folds per-plane popcounts into a running integer
 * using weight 2^bit (negative for the sign plane).  Bit-exact: after all
 * planes of all lanes are added, total() equals the plain integer sum of
 * the serialised values.
 */
class SerialAccumulator
{
  public:
    void reset() { total_ = 0; }

    /** Add a plane's popcount with its positional weight. */
    void addPlane(unsigned bit, bool sign_plane, std::int64_t count);

    std::int64_t total() const { return total_; }

  private:
    std::int64_t total_ = 0;
};

/**
 * Clock cycles for a bit-serial reduction: one cycle per input bit plane
 * plus the pipeline drain of the compressor tree.
 */
std::size_t bitSerialCycles(unsigned width, std::size_t tree_depth);

/**
 * Number of add/subtract operations in a canonical-signed-digit (CSD)
 * shift-add multiplier for the constant @p multiplier.  0 and powers of
 * two cost zero adders; every further nonzero CSD digit costs one.
 */
std::size_t csdAdderCount(std::int64_t multiplier);

/** The CSD digit string (entries in {-1,0,1}, LSB first). */
std::vector<int> csdDigits(std::int64_t multiplier);

} // namespace hnlpu

#endif // HNLPU_ARITH_BITSERIAL_HH
