/**
 * @file
 * Hardwired-Neuron Compiler (hncc).
 *
 * The paper's Sea-of-Neurons flow (Section 3.2) finalises a
 * prefabricated HN array with metal-embedding wires: custom tooling
 * reads the weight parameters and generates scripts that instruct the
 * P&R EDA tool to draw the M8-M11 wires, after which DRC/LVS sign-off
 * verifies the layout (routing density stayed below 70% in the paper's
 * runs).  Section 8 lists an automated "Hardwired-Neuron Compiler" as
 * future work; this module is that compiler for our models:
 *
 *  - programs a weight matrix onto a Sea-of-Neurons template row by
 *    row (WireTopology), collecting DRC-style violations instead of
 *    dying on the first overflow;
 *  - estimates physical metalization statistics: wire count and
 *    length, per-metal-layer track demand and routing density against
 *    the M8-M11 capacity, slack (grounded port) utilisation;
 *  - emits the deterministic wiring script the EDA flow would consume.
 */

#ifndef HNLPU_HNCC_COMPILER_HH
#define HNLPU_HNCC_COMPILER_HH

#include <array>
#include <string>
#include <vector>

#include "hn/wire_topology.hh"
#include "phys/technology.hh"

namespace hnlpu {

/** Physical assumptions for the metal-embedding layers. */
struct MetalizationParams
{
    /** Signal wiring layers among the ten ME masks (M8..M11; the
     *  interleaved via/cut masks carry no routed length). */
    std::size_t signalLayers = 4;
    /** Routing track pitch on M8-M11 (~80 nm). */
    double trackPitchUm = 0.08;
    /** Detour factor over the Manhattan estimate. */
    double routeDetourFactor = 1.3;
    /** Mean embedding-wire length as a fraction of the neuron span:
     *  inputs are delivered on per-slice spines, so a tap only crosses
     *  a slice-scale distance (calibrated so the gpt-oss fan-in lands
     *  just under the paper's 70%% sign-off density). */
    double avgWireSpanFraction = 0.15;
    /** Sign-off limit on routing density (paper: < 70%). */
    double densityLimit = 0.70;
};

/** Aggregate metalization statistics for one compiled block. */
struct MetalizationStats
{
    std::size_t neurons = 0;
    std::size_t wires = 0;
    std::size_t zeroWeights = 0;       //!< unrouted inputs
    std::size_t groundedPorts = 0;
    double slackUtilisation = 0;       //!< used ports / provisioned
    double totalWireLengthMm = 0;
    double routingDensity = 0;         //!< demand / capacity on M8-M11
    std::array<std::size_t, kFp4Codes> valueHistogram{};
};

/** One DRC-style violation found during compilation. */
struct CompileViolation
{
    std::size_t neuron = 0;
    std::string message;
};

/** The compiled metalization of a weight block. */
class MetalizationPlan
{
  public:
    const MetalizationStats &stats() const { return stats_; }
    const std::vector<CompileViolation> &violations() const
    {
        return violations_;
    }
    bool drcClean() const { return violations_.empty(); }

    /** Programmed per-neuron topologies (empty rows for failures). */
    const std::vector<WireTopology> &topologies() const
    {
        return topologies_;
    }

    /**
     * Emit the wiring script (one `route_embedding_wire` command per
     * wire, layers assigned round-robin), truncated to @p max_lines
     * plus a summary trailer.  Deterministic.
     */
    std::string emitScript(std::size_t max_lines = 64) const;

  private:
    friend class HnCompiler;
    MetalizationStats stats_;
    std::vector<CompileViolation> violations_;
    std::vector<WireTopology> topologies_;
    MetalizationParams params_;
};

/** Compiles weight matrices onto Sea-of-Neurons templates. */
class HnCompiler
{
  public:
    HnCompiler(TechnologyParams tech,
               MetalizationParams params = MetalizationParams{});

    /**
     * Compile a rows x cols FP4 matrix onto @p tmpl (one neuron per
     * row; tmpl fan-in must equal cols).
     */
    MetalizationPlan compile(const SeaOfNeuronsTemplate &tmpl,
                             const std::vector<Fp4> &weights,
                             std::size_t rows, std::size_t cols) const;

    const MetalizationParams &params() const { return params_; }

  private:
    TechnologyParams tech_;
    MetalizationParams params_;
};

} // namespace hnlpu

#endif // HNLPU_HNCC_COMPILER_HH
