#include "hncc/compiler.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "phys/area_model.hh"

namespace hnlpu {

HnCompiler::HnCompiler(TechnologyParams tech, MetalizationParams params)
    : tech_(tech), params_(params)
{
    hnlpu_assert(params_.signalLayers >= 1, "need signal layers");
    hnlpu_assert(params_.trackPitchUm > 0, "bad track pitch");
}

MetalizationPlan
HnCompiler::compile(const SeaOfNeuronsTemplate &tmpl,
                    const std::vector<Fp4> &weights, std::size_t rows,
                    std::size_t cols) const
{
    hnlpu_assert(weights.size() == rows * cols,
                 "weight matrix shape mismatch");
    hnlpu_assert(tmpl.inputCount == cols,
                 "template fan-in must equal matrix cols");

    MetalizationPlan plan;
    plan.params_ = params_;
    plan.topologies_.reserve(rows);

    MetalizationStats &stats = plan.stats_;
    stats.neurons = rows;

    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<Fp4> row(weights.begin() + r * cols,
                             weights.begin() + (r + 1) * cols);
        std::string error;
        auto topo = WireTopology::program(tmpl, row, &error);
        if (!topo) {
            plan.violations_.push_back(CompileViolation{r, error});
            // Keep an empty placeholder so indices stay aligned.
            plan.topologies_.push_back(
                *WireTopology::program(tmpl,
                                       std::vector<Fp4>(
                                           cols, Fp4::quantize(0.0))));
            continue;
        }
        stats.wires += topo->wireCount();
        stats.groundedPorts += topo->groundedPorts();
        for (int code = 0; code < kFp4Codes; ++code)
            stats.valueHistogram[code] += topo->histogram()[code];
        plan.topologies_.push_back(std::move(*topo));
    }
    stats.zeroWeights = stats.valueHistogram[0] +
                        stats.valueHistogram[8];
    const double provisioned =
        double(rows) * double(tmpl.totalPorts());
    stats.slackUtilisation =
        provisioned > 0 ? double(stats.wires) / provisioned : 0.0;

    // -- physical estimates ------------------------------------------------
    // Each neuron occupies a Metal-Embedding footprint; an embedding
    // wire runs from its input port to its value region, on average
    // half the neuron span, with a detour factor.
    AreaModel area(tech_);
    const double neuron_area_mm2 = area.metalEmbedding(double(cols));
    const double neuron_span_mm = std::sqrt(neuron_area_mm2);
    const double avg_wire_mm = params_.avgWireSpanFraction *
                               neuron_span_mm *
                               params_.routeDetourFactor;
    stats.totalWireLengthMm = avg_wire_mm * double(stats.wires);

    // Track capacity: each signal layer provides (span / pitch) tracks
    // of neuron-span length per neuron footprint.
    const double tracks_per_layer =
        neuron_span_mm * 1000.0 / params_.trackPitchUm;
    const double capacity_mm_per_neuron =
        tracks_per_layer * neuron_span_mm *
        double(params_.signalLayers);
    const double capacity_mm = capacity_mm_per_neuron * double(rows);
    stats.routingDensity =
        capacity_mm > 0 ? stats.totalWireLengthMm / capacity_mm : 0.0;

    if (stats.routingDensity > params_.densityLimit) {
        plan.violations_.push_back(CompileViolation{
            rows,
            "routing density " +
                std::to_string(stats.routingDensity) +
                " exceeds sign-off limit " +
                std::to_string(params_.densityLimit)});
    }
    return plan;
}

std::string
MetalizationPlan::emitScript(std::size_t max_lines) const
{
    static const char *kLayers[] = {"M8", "M9", "M10", "M11"};
    std::ostringstream oss;
    oss << "# hncc metal-embedding script: " << stats_.neurons
        << " neurons, " << stats_.wires << " wires\n";
    std::size_t emitted = 0;
    std::size_t wire_id = 0;
    for (std::size_t n = 0; n < topologies_.size(); ++n) {
        const WireTopology &topo = topologies_[n];
        for (int code = 0; code < kFp4Codes; ++code) {
            for (std::uint32_t input :
                 topo.region(static_cast<std::uint8_t>(code))) {
                if (emitted < max_lines) {
                    const char *layer =
                        kLayers[wire_id %
                                (sizeof(kLayers) / sizeof(*kLayers))];
                    oss << "route_embedding_wire -neuron " << n
                        << " -input " << input << " -region 0x"
                        << std::hex << code << std::dec << " -layer "
                        << layer << "\n";
                    ++emitted;
                }
                ++wire_id;
            }
        }
    }
    if (wire_id > emitted) {
        oss << "# ... " << (wire_id - emitted)
            << " further wires elided\n";
    }
    oss << "# routing density "
        << static_cast<int>(stats_.routingDensity * 100.0)
        << "% of M8-M11 capacity (limit "
        << static_cast<int>(params_.densityLimit * 100.0) << "%), "
        << (drcClean() ? "DRC clean" : "DRC VIOLATIONS") << "\n";
    return oss.str();
}

} // namespace hnlpu
