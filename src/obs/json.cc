#include "obs/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace hnlpu::obs {

JsonWriter::JsonWriter(int indent) : indent_(indent)
{
    out_.reserve(256);
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back({true, 0});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    hnlpu_assert(!stack_.empty() && stack_.back().isObject,
                "JsonWriter::endObject with no open object");
    hnlpu_assert(!keyPending_,
                "JsonWriter::endObject after key() with no value");
    const bool had_members = stack_.back().members > 0;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back({false, 0});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    hnlpu_assert(!stack_.empty() && !stack_.back().isObject,
                "JsonWriter::endArray with no open array");
    const bool had_members = stack_.back().members > 0;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    hnlpu_assert(!stack_.empty() && stack_.back().isObject,
                "JsonWriter::key outside an object");
    beforeValue(/*is_key=*/true);
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    if (indent_ > 0)
        out_ += ' ';
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    beforeValue();
    out_ += '"';
    out_ += escape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, res.ptr);
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    hnlpu_assert(!json.empty(), "JsonWriter::rawValue with empty JSON");
    beforeValue();
    out_ += json;
    return *this;
}

JsonWriter &
JsonWriter::valueInt(std::int64_t v)
{
    beforeValue();
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, res.ptr);
    return *this;
}

JsonWriter &
JsonWriter::valueUint(std::uint64_t v)
{
    beforeValue();
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, res.ptr);
    return *this;
}

void
JsonWriter::beforeValue(bool is_key)
{
    if (keyPending_) {
        // A key() already positioned us; the value follows inline.
        hnlpu_assert(!is_key, "JsonWriter: key() directly after key()");
        keyPending_ = false;
        return;
    }
    if (stack_.empty()) {
        hnlpu_assert(values_ == 0,
                    "JsonWriter: multiple top-level values");
        ++values_;
        return;
    }
    Frame &frame = stack_.back();
    hnlpu_assert(frame.isObject == is_key,
                frame.isObject
                    ? "JsonWriter: value inside object needs key()"
                    : "JsonWriter: key() inside an array");
    if (frame.members > 0)
        out_ += ',';
    ++frame.members;
    newlineIndent();
}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    out_ += '\n';
    out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

const std::string &
JsonWriter::str() const
{
    hnlpu_assert(stack_.empty(),
                "JsonWriter::str with unclosed containers");
    hnlpu_assert(values_ == 1, "JsonWriter::str on empty document");
    return out_;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace hnlpu::obs
