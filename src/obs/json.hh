/**
 * @file
 * Streaming JSON writer for every machine-readable artefact the repo
 * emits (serving metrics, BENCH_*.json, Chrome trace files).
 *
 * Before this existed each emitter hand-concatenated strings, which
 * worked until a model name or span label contained a quote or
 * backslash.  JsonWriter owns structure (comma/brace placement via an
 * explicit frame stack, validated as you write) and escaping (full
 * RFC 8259 string escaping, non-finite doubles emitted as null), so an
 * emitter can only produce well-formed JSON or die with a panic --
 * never silently produce a file `python3 -m json.tool` rejects.
 */

#ifndef HNLPU_OBS_JSON_HH
#define HNLPU_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace hnlpu::obs {

/**
 * Append-only JSON document builder.
 *
 * Usage: beginObject()/beginArray() open containers, key() names the
 * next member inside an object, value()/rawValue() emit scalars, and
 * str() returns the finished document (panics when containers are
 * still open).  `indent > 0` pretty-prints with that many spaces per
 * level; 0 emits the compact single-line form.  Not thread-safe; build
 * one per document.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(int indent = 2);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Name the next member; only valid directly inside an object. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(bool b);
    /** Non-finite doubles (inf/NaN have no JSON form) emit null. */
    JsonWriter &value(double v);
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    JsonWriter &
    value(T v)
    {
        if constexpr (std::is_signed_v<T>)
            return valueInt(static_cast<std::int64_t>(v));
        else
            return valueUint(static_cast<std::uint64_t>(v));
    }

    /**
     * Splice a pre-rendered JSON value verbatim (e.g. the output of
     * another JsonWriter).  The caller vouches for its validity.
     */
    JsonWriter &rawValue(std::string_view json);

    /** key(name).value(v) in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T &&v)
    {
        return key(name).value(std::forward<T>(v));
    }

    /** The finished document; panics when containers are still open. */
    const std::string &str() const;

    /** RFC 8259 string escaping (without the surrounding quotes). */
    static std::string escape(std::string_view s);

  private:
    struct Frame
    {
        bool isObject = false;
        std::size_t members = 0;
    };

    JsonWriter &valueInt(std::int64_t v);
    JsonWriter &valueUint(std::uint64_t v);
    /** Comma/newline/indent before the next element; marks it begun. */
    void beforeValue(bool is_key = false);
    void newlineIndent();

    int indent_;
    bool keyPending_ = false;
    std::vector<Frame> stack_;
    std::string out_;
    std::size_t values_ = 0; //!< top-level values written (must be 1)
};

} // namespace hnlpu::obs

#endif // HNLPU_OBS_JSON_HH
