#include "obs/metrics.hh"

#include "common/logging.hh"
#include "obs/json.hh"

namespace hnlpu::obs {

LatencyHistogram::LatencyHistogram(double lo, double hi,
                                   std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), hist_(lo, hi, bins)
{
}

void
LatencyHistogram::observe(double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    acc_.add(seconds);
    hist_.add(seconds);
}

std::uint64_t
LatencyHistogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return acc_.count();
}

double
LatencyHistogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return acc_.mean();
}

double
LatencyHistogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return acc_.count() == 0 ? 0.0 : acc_.min();
}

double
LatencyHistogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return acc_.count() == 0 ? 0.0 : acc_.max();
}

double
LatencyHistogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.quantile(q);
}

void
LatencyHistogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    acc_ = Accumulator();
    hist_ = Histogram(lo_, hi_, bins_);
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return slot.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return slot.get();
}

LatencyHistogram *
MetricsRegistry::latency(const std::string &name, double lo, double hi,
                         std::size_t bins)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = latencies_[name];
    if (!slot)
        slot = std::make_unique<LatencyHistogram>(lo, hi, bins);
    return slot.get();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : latencies_)
        h->reset();
}

std::string
MetricsRegistry::toJson(int indent) const
{
    JsonWriter w(indent);
    w.beginObject();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        w.key("counters").beginObject();
        for (const auto &[name, c] : counters_)
            w.field(name, c->value());
        w.endObject();
        w.key("gauges").beginObject();
        for (const auto &[name, g] : gauges_)
            w.field(name, g->value());
        w.endObject();
        w.key("latencies").beginObject();
        for (const auto &[name, h] : latencies_) {
            w.key(name).beginObject();
            w.field("count", h->count());
            w.field("mean_seconds", h->mean());
            w.field("min_seconds", h->min());
            w.field("max_seconds", h->max());
            w.field("p50_seconds", h->quantile(0.50));
            w.field("p95_seconds", h->quantile(0.95));
            w.field("p99_seconds", h->quantile(0.99));
            w.endObject();
        }
        w.endObject();
    }
    w.key("warn_sites").beginObject();
    for (const WarnSiteCount &site : warnSiteCounts())
        w.field(site.file + ":" + std::to_string(site.line),
                site.occurrences);
    w.endObject();
    w.endObject();
    return w.str();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace hnlpu::obs
