#include "obs/trace.hh"

#include <atomic>
#include <cstdio>

#include "common/logging.hh"
#include "obs/json.hh"

namespace hnlpu::obs {

std::uint32_t
currentThreadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double
Tracer::nowMicros() const
{
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::micro>(elapsed).count();
}

void
Tracer::complete(std::string_view cat, std::string_view name,
                 double ts_us, double dur_us,
                 std::string_view args_json)
{
    completeAt(cat, name, ts_us, dur_us, currentThreadId(), args_json);
}

void
Tracer::completeAt(std::string_view cat, std::string_view name,
                   double ts_us, double dur_us, std::uint32_t tid,
                   std::string_view args_json)
{
    Event ev;
    ev.cat = cat;
    ev.name = name;
    ev.args = args_json;
    ev.ts = ts_us;
    ev.dur = dur_us;
    ev.tid = tid;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(ev));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string
Tracer::toJson(int indent) const
{
    JsonWriter w(indent);
    w.beginObject();
    w.key("traceEvents").beginArray();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const Event &ev : events_) {
            w.beginObject();
            w.field("name", ev.name);
            w.field("cat", ev.cat);
            w.field("ph", "X");
            w.field("ts", ev.ts);
            w.field("dur", ev.dur);
            w.field("pid", 0);
            w.field("tid", ev.tid);
            if (!ev.args.empty())
                w.key("args").rawValue(ev.args);
            w.endObject();
        }
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    return w.str();
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        hnlpu_warn("cannot write trace file ", path);
        return false;
    }
    const std::string json = toJson();
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() &&
                    std::fputc('\n', f) != EOF &&
                    std::fclose(f) == 0;
    if (!ok)
        hnlpu_warn("short write on trace file ", path);
    return ok;
}

ScopedSpan::ScopedSpan(Tracer *tracer, std::string_view cat,
                       std::string_view name, std::string args_json)
    : tracer_(tracer)
{
    if (!tracer_)
        return;
    cat_ = cat;
    name_ = name;
    args_ = std::move(args_json);
    startUs_ = tracer_->nowMicros();
}

ScopedSpan::~ScopedSpan()
{
    if (!tracer_)
        return;
    tracer_->complete(cat_, name_, startUs_,
                      tracer_->nowMicros() - startUs_, args_);
}

namespace {

/**
 * Per-thread start stamp for the in-flight pool chunk.  Dispatched
 * chunks never nest (a nested parallelFor runs inline and unobserved),
 * so one slot per thread suffices.
 */
thread_local double t_chunk_start_us = 0.0;

} // namespace

void
PoolTaskTracer::chunkBegin(std::size_t, std::size_t)
{
    t_chunk_start_us = tracer_->nowMicros();
}

void
PoolTaskTracer::chunkEnd(std::size_t begin, std::size_t end)
{
    JsonWriter args(0);
    args.beginObject()
        .field("begin", begin)
        .field("end", end)
        .endObject();
    tracer_->complete("pool", "pool.chunk", t_chunk_start_us,
                      tracer_->nowMicros() - t_chunk_start_us,
                      args.str());
}

} // namespace hnlpu::obs
