/**
 * @file
 * Scoped-span tracer emitting Chrome trace-event JSON.
 *
 * The output of Tracer::toJson() loads directly into chrome://tracing
 * or https://ui.perfetto.dev: an object with a "traceEvents" array of
 * complete ("ph":"X") events, timestamps and durations in microseconds,
 * one track per thread id.  Both the functional engine (wall-clock
 * spans) and the cycle-level PipelineSim (simulated-time spans, via
 * completeAt()) emit into the same vocabulary, so a serving trace and a
 * pipeline breakdown open in the same viewer with the same category
 * names.
 *
 * Span taxonomy -- `cat` is the subsystem, `name` is the operation:
 *   serving:  serve.step
 *   engine:   engine.layer engine.attention engine.unembed
 *   moe:      moe.route moe.experts
 *   pool:     pool.chunk
 *   pipeline: per-resource unit/link names from the timeline
 *
 * Disabled mode is a null Tracer*: ScopedSpan and every emit helper
 * no-op on nullptr, so instrumented code pays one pointer test.
 */

#ifndef HNLPU_OBS_TRACE_HH
#define HNLPU_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hh"

namespace hnlpu::obs {

class MetricsRegistry;

/**
 * Small dense id for the calling thread (0, 1, 2, ... in first-use
 * order), stable for the life of the process.  Used as the trace "tid"
 * so pool workers get compact, legible tracks in the viewer.
 */
std::uint32_t currentThreadId();

/** Thread-safe collector of complete trace events. */
class Tracer
{
  public:
    Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Microseconds of wall clock since this tracer was constructed. */
    double nowMicros() const;

    /**
     * Record a complete event on the calling thread.  @p ts_us and
     * @p dur_us are microseconds on the tracer's clock (nowMicros());
     * @p args_json, when non-empty, must be a valid JSON object and is
     * spliced verbatim into the event's "args".
     */
    void complete(std::string_view cat, std::string_view name,
                  double ts_us, double dur_us,
                  std::string_view args_json = {});

    /**
     * As complete(), but with an explicit track id -- used by the
     * cycle-level simulators, whose "threads" are timeline resources
     * and whose timestamps are simulated time, not wall clock.
     */
    void completeAt(std::string_view cat, std::string_view name,
                    double ts_us, double dur_us, std::uint32_t tid,
                    std::string_view args_json = {});

    std::size_t eventCount() const;

    /** The full trace as Chrome trace-event JSON. */
    std::string toJson(int indent = 0) const;

    /** Write toJson() to @p path; false (with a warn) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        std::string cat, name, args;
        double ts = 0.0, dur = 0.0;
        std::uint32_t tid = 0;
    };

    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<Event> events_;
};

/**
 * RAII span: times its own scope and records a complete event on
 * destruction.  A null tracer makes construction and destruction
 * near-free (one branch), which is the disabled mode.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer *tracer, std::string_view cat,
               std::string_view name, std::string args_json = {});
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *tracer_;
    std::string cat_, name_, args_;
    double startUs_ = 0.0;
};

/**
 * The observability wiring handed down through ExecOptions/ExecContext:
 * either pointer may be null independently.  Null == that facility is
 * disabled; a default Sink (or a null Sink*) disables everything.
 */
struct Sink
{
    MetricsRegistry *metrics = nullptr;
    Tracer *trace = nullptr;
};

/**
 * TaskObserver implementation that turns every dispatched ThreadPool
 * chunk into a "pool.chunk" span on the executing thread's track.
 * Install with pool->setObserver(&tracer) while the pool is idle.
 */
class PoolTaskTracer : public TaskObserver
{
  public:
    explicit PoolTaskTracer(Tracer *tracer) : tracer_(tracer) {}

    void chunkBegin(std::size_t begin, std::size_t end) override;
    void chunkEnd(std::size_t begin, std::size_t end) override;

  private:
    Tracer *tracer_;
};

} // namespace hnlpu::obs

#endif // HNLPU_OBS_TRACE_HH
