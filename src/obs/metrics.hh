/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * sim::Histogram-backed latency histograms.
 *
 * Naming convention (see DESIGN.md "Observability"): dot-separated
 * `subsystem.metric` in snake_case, e.g. `serving.decoded_tokens`,
 * `noc.retries`, `pool.chunks`.  Handles returned by counter() /
 * gauge() / latency() are stable for the registry's lifetime, so hot
 * paths resolve a name once and then pay one relaxed atomic add per
 * event -- and nothing at all when no registry is wired up (a null
 * obs::Sink is the disabled mode).
 */

#ifndef HNLPU_OBS_METRICS_HH
#define HNLPU_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace hnlpu::obs {

/** Monotonic event counter; relaxed atomics, safe from any thread. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (queue depth, occupancy). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Latency distribution: an Accumulator (count/mean/min/max) plus a
 * fixed-range sim::Histogram for quantiles.  Mutex-guarded -- meant for
 * per-step or per-request observations, not per-element inner loops.
 */
class LatencyHistogram
{
  public:
    /** @param lo,hi,bins histogram shape, in seconds. */
    LatencyHistogram(double lo, double hi, std::size_t bins);

    void observe(double seconds);

    std::uint64_t count() const;
    double mean() const;
    double min() const;
    double max() const;
    double quantile(double q) const;

    void reset();

  private:
    mutable std::mutex mutex_;
    double lo_, hi_;
    std::size_t bins_;
    Accumulator acc_;
    Histogram hist_;
};

/**
 * Named-metric registry.  counter()/gauge()/latency() create on first
 * use and return stable pointers; writeJson() snapshots everything
 * (including the hnlpu_warn_ratelimited call-site counters, which
 * would otherwise be dropped once the rate limit engages).
 *
 * All methods are thread-safe.  Use global() for the process-wide
 * instance, or construct a private one per test/bench run.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    LatencyHistogram *latency(const std::string &name, double lo = 0.0,
                              double hi = 60.0,
                              std::size_t bins = 4096);

    /** Zero every registered metric (handles stay valid). */
    void reset();

    /**
     * Snapshot as a JSON object: {"counters": {...}, "gauges": {...},
     * "latencies": {name: {count, mean, min, max, p50, p95, p99}},
     * "warn_sites": {"file:line": occurrences}}.
     */
    std::string toJson(int indent = 2) const;

    /** The process-wide registry. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

} // namespace hnlpu::obs

#endif // HNLPU_OBS_METRICS_HH
