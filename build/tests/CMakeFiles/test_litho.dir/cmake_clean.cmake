file(REMOVE_RECURSE
  "CMakeFiles/test_litho.dir/test_litho.cc.o"
  "CMakeFiles/test_litho.dir/test_litho.cc.o.d"
  "test_litho"
  "test_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
