
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_litho.cc" "tests/CMakeFiles/test_litho.dir/test_litho.cc.o" "gcc" "tests/CMakeFiles/test_litho.dir/test_litho.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litho/CMakeFiles/hnlpu_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/hnlpu_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hnlpu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
