# Empty compiler generated dependencies file for test_hncc.
# This may be replaced when dependencies are built.
