file(REMOVE_RECURSE
  "CMakeFiles/test_hncc.dir/test_hncc.cc.o"
  "CMakeFiles/test_hncc.dir/test_hncc.cc.o.d"
  "test_hncc"
  "test_hncc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hncc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
