file(REMOVE_RECURSE
  "CMakeFiles/test_arith.dir/test_arith.cc.o"
  "CMakeFiles/test_arith.dir/test_arith.cc.o.d"
  "test_arith"
  "test_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
