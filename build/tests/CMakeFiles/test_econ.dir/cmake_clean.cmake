file(REMOVE_RECURSE
  "CMakeFiles/test_econ.dir/test_econ.cc.o"
  "CMakeFiles/test_econ.dir/test_econ.cc.o.d"
  "test_econ"
  "test_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
