# Empty dependencies file for test_econ.
# This may be replaced when dependencies are built.
