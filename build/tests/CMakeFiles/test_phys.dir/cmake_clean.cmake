file(REMOVE_RECURSE
  "CMakeFiles/test_phys.dir/test_phys.cc.o"
  "CMakeFiles/test_phys.dir/test_phys.cc.o.d"
  "test_phys"
  "test_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
