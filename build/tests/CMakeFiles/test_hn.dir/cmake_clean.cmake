file(REMOVE_RECURSE
  "CMakeFiles/test_hn.dir/test_hn.cc.o"
  "CMakeFiles/test_hn.dir/test_hn.cc.o.d"
  "test_hn"
  "test_hn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
