# Empty dependencies file for test_hn.
# This may be replaced when dependencies are built.
