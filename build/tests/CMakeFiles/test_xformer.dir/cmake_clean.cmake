file(REMOVE_RECURSE
  "CMakeFiles/test_xformer.dir/test_xformer.cc.o"
  "CMakeFiles/test_xformer.dir/test_xformer.cc.o.d"
  "test_xformer"
  "test_xformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
