# Empty dependencies file for test_xformer.
# This may be replaced when dependencies are built.
