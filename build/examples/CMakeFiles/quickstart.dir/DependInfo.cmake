
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hnlpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/hnlpu_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/hnlpu_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hnlpu_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hnlpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hnlpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/hnlpu_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hnlpu_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/hnlpu_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hnlpu_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/xformer/CMakeFiles/hnlpu_xformer.dir/DependInfo.cmake"
  "/root/repo/build/src/hn/CMakeFiles/hnlpu_hn.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/hnlpu_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hnlpu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
