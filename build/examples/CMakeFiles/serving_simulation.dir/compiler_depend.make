# Empty compiler generated dependencies file for serving_simulation.
# This may be replaced when dependencies are built.
