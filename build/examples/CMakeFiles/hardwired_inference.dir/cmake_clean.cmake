file(REMOVE_RECURSE
  "CMakeFiles/hardwired_inference.dir/hardwired_inference.cpp.o"
  "CMakeFiles/hardwired_inference.dir/hardwired_inference.cpp.o.d"
  "hardwired_inference"
  "hardwired_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardwired_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
