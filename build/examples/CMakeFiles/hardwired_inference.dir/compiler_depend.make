# Empty compiler generated dependencies file for hardwired_inference.
# This may be replaced when dependencies are built.
