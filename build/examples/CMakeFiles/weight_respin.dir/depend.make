# Empty dependencies file for weight_respin.
# This may be replaced when dependencies are built.
