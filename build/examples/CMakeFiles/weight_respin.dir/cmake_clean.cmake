file(REMOVE_RECURSE
  "CMakeFiles/weight_respin.dir/weight_respin.cpp.o"
  "CMakeFiles/weight_respin.dir/weight_respin.cpp.o.d"
  "weight_respin"
  "weight_respin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_respin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
