# Empty dependencies file for hnlpu_common.
# This may be replaced when dependencies are built.
