file(REMOVE_RECURSE
  "libhnlpu_common.a"
)
