file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_common.dir/logging.cc.o"
  "CMakeFiles/hnlpu_common.dir/logging.cc.o.d"
  "CMakeFiles/hnlpu_common.dir/rng.cc.o"
  "CMakeFiles/hnlpu_common.dir/rng.cc.o.d"
  "CMakeFiles/hnlpu_common.dir/table.cc.o"
  "CMakeFiles/hnlpu_common.dir/table.cc.o.d"
  "CMakeFiles/hnlpu_common.dir/units.cc.o"
  "CMakeFiles/hnlpu_common.dir/units.cc.o.d"
  "libhnlpu_common.a"
  "libhnlpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
