file(REMOVE_RECURSE
  "libhnlpu_hn.a"
)
