file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_hn.dir/ce_neuron.cc.o"
  "CMakeFiles/hnlpu_hn.dir/ce_neuron.cc.o.d"
  "CMakeFiles/hnlpu_hn.dir/hn_array.cc.o"
  "CMakeFiles/hnlpu_hn.dir/hn_array.cc.o.d"
  "CMakeFiles/hnlpu_hn.dir/hn_neuron.cc.o"
  "CMakeFiles/hnlpu_hn.dir/hn_neuron.cc.o.d"
  "CMakeFiles/hnlpu_hn.dir/wire_topology.cc.o"
  "CMakeFiles/hnlpu_hn.dir/wire_topology.cc.o.d"
  "libhnlpu_hn.a"
  "libhnlpu_hn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_hn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
