
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hn/ce_neuron.cc" "src/hn/CMakeFiles/hnlpu_hn.dir/ce_neuron.cc.o" "gcc" "src/hn/CMakeFiles/hnlpu_hn.dir/ce_neuron.cc.o.d"
  "/root/repo/src/hn/hn_array.cc" "src/hn/CMakeFiles/hnlpu_hn.dir/hn_array.cc.o" "gcc" "src/hn/CMakeFiles/hnlpu_hn.dir/hn_array.cc.o.d"
  "/root/repo/src/hn/hn_neuron.cc" "src/hn/CMakeFiles/hnlpu_hn.dir/hn_neuron.cc.o" "gcc" "src/hn/CMakeFiles/hnlpu_hn.dir/hn_neuron.cc.o.d"
  "/root/repo/src/hn/wire_topology.cc" "src/hn/CMakeFiles/hnlpu_hn.dir/wire_topology.cc.o" "gcc" "src/hn/CMakeFiles/hnlpu_hn.dir/wire_topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arith/CMakeFiles/hnlpu_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
