# Empty compiler generated dependencies file for hnlpu_hn.
# This may be replaced when dependencies are built.
