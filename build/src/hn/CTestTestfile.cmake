# CMake generated Testfile for 
# Source directory: /root/repo/src/hn
# Build directory: /root/repo/build/src/hn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
