file(REMOVE_RECURSE
  "libhnlpu_sim.a"
)
