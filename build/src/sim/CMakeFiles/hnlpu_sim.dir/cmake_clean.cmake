file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_sim.dir/event_queue.cc.o"
  "CMakeFiles/hnlpu_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/hnlpu_sim.dir/resource.cc.o"
  "CMakeFiles/hnlpu_sim.dir/resource.cc.o.d"
  "CMakeFiles/hnlpu_sim.dir/stats.cc.o"
  "CMakeFiles/hnlpu_sim.dir/stats.cc.o.d"
  "libhnlpu_sim.a"
  "libhnlpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
