# Empty compiler generated dependencies file for hnlpu_sim.
# This may be replaced when dependencies are built.
