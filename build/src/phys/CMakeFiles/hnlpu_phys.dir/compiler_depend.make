# Empty compiler generated dependencies file for hnlpu_phys.
# This may be replaced when dependencies are built.
