file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_phys.dir/area_model.cc.o"
  "CMakeFiles/hnlpu_phys.dir/area_model.cc.o.d"
  "CMakeFiles/hnlpu_phys.dir/chip_floorplan.cc.o"
  "CMakeFiles/hnlpu_phys.dir/chip_floorplan.cc.o.d"
  "CMakeFiles/hnlpu_phys.dir/energy_model.cc.o"
  "CMakeFiles/hnlpu_phys.dir/energy_model.cc.o.d"
  "CMakeFiles/hnlpu_phys.dir/technology.cc.o"
  "CMakeFiles/hnlpu_phys.dir/technology.cc.o.d"
  "libhnlpu_phys.a"
  "libhnlpu_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
