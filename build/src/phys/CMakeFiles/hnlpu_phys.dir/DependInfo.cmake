
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/area_model.cc" "src/phys/CMakeFiles/hnlpu_phys.dir/area_model.cc.o" "gcc" "src/phys/CMakeFiles/hnlpu_phys.dir/area_model.cc.o.d"
  "/root/repo/src/phys/chip_floorplan.cc" "src/phys/CMakeFiles/hnlpu_phys.dir/chip_floorplan.cc.o" "gcc" "src/phys/CMakeFiles/hnlpu_phys.dir/chip_floorplan.cc.o.d"
  "/root/repo/src/phys/energy_model.cc" "src/phys/CMakeFiles/hnlpu_phys.dir/energy_model.cc.o" "gcc" "src/phys/CMakeFiles/hnlpu_phys.dir/energy_model.cc.o.d"
  "/root/repo/src/phys/technology.cc" "src/phys/CMakeFiles/hnlpu_phys.dir/technology.cc.o" "gcc" "src/phys/CMakeFiles/hnlpu_phys.dir/technology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hnlpu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
