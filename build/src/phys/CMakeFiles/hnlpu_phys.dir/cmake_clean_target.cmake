file(REMOVE_RECURSE
  "libhnlpu_phys.a"
)
