file(REMOVE_RECURSE
  "libhnlpu_core.a"
)
