# Empty dependencies file for hnlpu_core.
# This may be replaced when dependencies are built.
