file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_core.dir/design.cc.o"
  "CMakeFiles/hnlpu_core.dir/design.cc.o.d"
  "libhnlpu_core.a"
  "libhnlpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
