# Empty compiler generated dependencies file for hnlpu_econ.
# This may be replaced when dependencies are built.
