file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_econ.dir/carbon.cc.o"
  "CMakeFiles/hnlpu_econ.dir/carbon.cc.o.d"
  "CMakeFiles/hnlpu_econ.dir/nre.cc.o"
  "CMakeFiles/hnlpu_econ.dir/nre.cc.o.d"
  "CMakeFiles/hnlpu_econ.dir/tco.cc.o"
  "CMakeFiles/hnlpu_econ.dir/tco.cc.o.d"
  "libhnlpu_econ.a"
  "libhnlpu_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
