file(REMOVE_RECURSE
  "libhnlpu_econ.a"
)
