# Empty dependencies file for hnlpu_mem.
# This may be replaced when dependencies are built.
