file(REMOVE_RECURSE
  "libhnlpu_mem.a"
)
