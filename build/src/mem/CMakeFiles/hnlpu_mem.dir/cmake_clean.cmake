file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_mem.dir/hbm.cc.o"
  "CMakeFiles/hnlpu_mem.dir/hbm.cc.o.d"
  "CMakeFiles/hnlpu_mem.dir/kv_store.cc.o"
  "CMakeFiles/hnlpu_mem.dir/kv_store.cc.o.d"
  "CMakeFiles/hnlpu_mem.dir/sram.cc.o"
  "CMakeFiles/hnlpu_mem.dir/sram.cc.o.d"
  "libhnlpu_mem.a"
  "libhnlpu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
