file(REMOVE_RECURSE
  "libhnlpu_hncc.a"
)
