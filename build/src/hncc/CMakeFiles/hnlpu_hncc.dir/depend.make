# Empty dependencies file for hnlpu_hncc.
# This may be replaced when dependencies are built.
