file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_hncc.dir/compiler.cc.o"
  "CMakeFiles/hnlpu_hncc.dir/compiler.cc.o.d"
  "libhnlpu_hncc.a"
  "libhnlpu_hncc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_hncc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
