file(REMOVE_RECURSE
  "libhnlpu_baseline.a"
)
