file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_baseline.dir/gpu.cc.o"
  "CMakeFiles/hnlpu_baseline.dir/gpu.cc.o.d"
  "CMakeFiles/hnlpu_baseline.dir/wse.cc.o"
  "CMakeFiles/hnlpu_baseline.dir/wse.cc.o.d"
  "libhnlpu_baseline.a"
  "libhnlpu_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
