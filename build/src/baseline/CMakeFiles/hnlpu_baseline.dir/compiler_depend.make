# Empty compiler generated dependencies file for hnlpu_baseline.
# This may be replaced when dependencies are built.
