
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/gpu.cc" "src/baseline/CMakeFiles/hnlpu_baseline.dir/gpu.cc.o" "gcc" "src/baseline/CMakeFiles/hnlpu_baseline.dir/gpu.cc.o.d"
  "/root/repo/src/baseline/wse.cc" "src/baseline/CMakeFiles/hnlpu_baseline.dir/wse.cc.o" "gcc" "src/baseline/CMakeFiles/hnlpu_baseline.dir/wse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hnlpu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
