file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_model.dir/model_zoo.cc.o"
  "CMakeFiles/hnlpu_model.dir/model_zoo.cc.o.d"
  "CMakeFiles/hnlpu_model.dir/partition.cc.o"
  "CMakeFiles/hnlpu_model.dir/partition.cc.o.d"
  "CMakeFiles/hnlpu_model.dir/transformer_config.cc.o"
  "CMakeFiles/hnlpu_model.dir/transformer_config.cc.o.d"
  "libhnlpu_model.a"
  "libhnlpu_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
