# Empty compiler generated dependencies file for hnlpu_model.
# This may be replaced when dependencies are built.
