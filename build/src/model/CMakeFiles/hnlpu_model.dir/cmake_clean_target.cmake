file(REMOVE_RECURSE
  "libhnlpu_model.a"
)
