# Empty dependencies file for hnlpu_noc.
# This may be replaced when dependencies are built.
