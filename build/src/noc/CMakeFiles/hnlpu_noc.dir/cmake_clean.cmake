file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_noc.dir/collectives.cc.o"
  "CMakeFiles/hnlpu_noc.dir/collectives.cc.o.d"
  "CMakeFiles/hnlpu_noc.dir/fabric.cc.o"
  "CMakeFiles/hnlpu_noc.dir/fabric.cc.o.d"
  "CMakeFiles/hnlpu_noc.dir/link.cc.o"
  "CMakeFiles/hnlpu_noc.dir/link.cc.o.d"
  "libhnlpu_noc.a"
  "libhnlpu_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
