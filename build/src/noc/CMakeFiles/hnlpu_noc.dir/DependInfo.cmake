
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/collectives.cc" "src/noc/CMakeFiles/hnlpu_noc.dir/collectives.cc.o" "gcc" "src/noc/CMakeFiles/hnlpu_noc.dir/collectives.cc.o.d"
  "/root/repo/src/noc/fabric.cc" "src/noc/CMakeFiles/hnlpu_noc.dir/fabric.cc.o" "gcc" "src/noc/CMakeFiles/hnlpu_noc.dir/fabric.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/noc/CMakeFiles/hnlpu_noc.dir/link.cc.o" "gcc" "src/noc/CMakeFiles/hnlpu_noc.dir/link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hnlpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
