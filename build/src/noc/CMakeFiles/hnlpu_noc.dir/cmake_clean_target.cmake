file(REMOVE_RECURSE
  "libhnlpu_noc.a"
)
