file(REMOVE_RECURSE
  "libhnlpu_arith.a"
)
