# Empty compiler generated dependencies file for hnlpu_arith.
# This may be replaced when dependencies are built.
