
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arith/bitserial.cc" "src/arith/CMakeFiles/hnlpu_arith.dir/bitserial.cc.o" "gcc" "src/arith/CMakeFiles/hnlpu_arith.dir/bitserial.cc.o.d"
  "/root/repo/src/arith/csa.cc" "src/arith/CMakeFiles/hnlpu_arith.dir/csa.cc.o" "gcc" "src/arith/CMakeFiles/hnlpu_arith.dir/csa.cc.o.d"
  "/root/repo/src/arith/fp4.cc" "src/arith/CMakeFiles/hnlpu_arith.dir/fp4.cc.o" "gcc" "src/arith/CMakeFiles/hnlpu_arith.dir/fp4.cc.o.d"
  "/root/repo/src/arith/quantize.cc" "src/arith/CMakeFiles/hnlpu_arith.dir/quantize.cc.o" "gcc" "src/arith/CMakeFiles/hnlpu_arith.dir/quantize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
