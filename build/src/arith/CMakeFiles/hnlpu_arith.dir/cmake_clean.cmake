file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_arith.dir/bitserial.cc.o"
  "CMakeFiles/hnlpu_arith.dir/bitserial.cc.o.d"
  "CMakeFiles/hnlpu_arith.dir/csa.cc.o"
  "CMakeFiles/hnlpu_arith.dir/csa.cc.o.d"
  "CMakeFiles/hnlpu_arith.dir/fp4.cc.o"
  "CMakeFiles/hnlpu_arith.dir/fp4.cc.o.d"
  "CMakeFiles/hnlpu_arith.dir/quantize.cc.o"
  "CMakeFiles/hnlpu_arith.dir/quantize.cc.o.d"
  "libhnlpu_arith.a"
  "libhnlpu_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
