# Empty dependencies file for hnlpu_litho.
# This may be replaced when dependencies are built.
