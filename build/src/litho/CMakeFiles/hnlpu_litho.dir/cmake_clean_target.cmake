file(REMOVE_RECURSE
  "libhnlpu_litho.a"
)
