file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_litho.dir/mask_stack.cc.o"
  "CMakeFiles/hnlpu_litho.dir/mask_stack.cc.o.d"
  "CMakeFiles/hnlpu_litho.dir/wafer.cc.o"
  "CMakeFiles/hnlpu_litho.dir/wafer.cc.o.d"
  "libhnlpu_litho.a"
  "libhnlpu_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
