# Empty compiler generated dependencies file for hnlpu_xformer.
# This may be replaced when dependencies are built.
