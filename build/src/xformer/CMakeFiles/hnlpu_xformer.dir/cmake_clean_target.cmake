file(REMOVE_RECURSE
  "libhnlpu_xformer.a"
)
