
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xformer/engine.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/engine.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/engine.cc.o.d"
  "/root/repo/src/xformer/kv_cache.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/kv_cache.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/kv_cache.cc.o.d"
  "/root/repo/src/xformer/linear.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/linear.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/linear.cc.o.d"
  "/root/repo/src/xformer/lora.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/lora.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/lora.cc.o.d"
  "/root/repo/src/xformer/moe.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/moe.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/moe.cc.o.d"
  "/root/repo/src/xformer/ops.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/ops.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/ops.cc.o.d"
  "/root/repo/src/xformer/sampler.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/sampler.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/sampler.cc.o.d"
  "/root/repo/src/xformer/tensor.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/tensor.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/tensor.cc.o.d"
  "/root/repo/src/xformer/weights.cc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/weights.cc.o" "gcc" "src/xformer/CMakeFiles/hnlpu_xformer.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hn/CMakeFiles/hnlpu_hn.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hnlpu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/hnlpu_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
