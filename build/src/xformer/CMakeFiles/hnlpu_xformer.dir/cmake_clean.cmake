file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_xformer.dir/engine.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/engine.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/kv_cache.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/kv_cache.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/linear.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/linear.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/lora.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/lora.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/moe.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/moe.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/ops.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/ops.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/sampler.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/sampler.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/tensor.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/tensor.cc.o.d"
  "CMakeFiles/hnlpu_xformer.dir/weights.cc.o"
  "CMakeFiles/hnlpu_xformer.dir/weights.cc.o.d"
  "libhnlpu_xformer.a"
  "libhnlpu_xformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_xformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
