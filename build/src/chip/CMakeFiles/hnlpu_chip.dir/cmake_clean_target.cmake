file(REMOVE_RECURSE
  "libhnlpu_chip.a"
)
