# Empty dependencies file for hnlpu_chip.
# This may be replaced when dependencies are built.
