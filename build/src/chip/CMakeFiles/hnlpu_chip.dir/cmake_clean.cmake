file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_chip.dir/timing.cc.o"
  "CMakeFiles/hnlpu_chip.dir/timing.cc.o.d"
  "libhnlpu_chip.a"
  "libhnlpu_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
