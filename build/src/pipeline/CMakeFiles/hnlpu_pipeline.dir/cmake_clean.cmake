file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_pipeline.dir/batcher.cc.o"
  "CMakeFiles/hnlpu_pipeline.dir/batcher.cc.o.d"
  "CMakeFiles/hnlpu_pipeline.dir/pipeline_sim.cc.o"
  "CMakeFiles/hnlpu_pipeline.dir/pipeline_sim.cc.o.d"
  "libhnlpu_pipeline.a"
  "libhnlpu_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
