# Empty compiler generated dependencies file for hnlpu_pipeline.
# This may be replaced when dependencies are built.
