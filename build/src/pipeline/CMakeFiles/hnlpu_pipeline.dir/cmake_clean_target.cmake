file(REMOVE_RECURSE
  "libhnlpu_pipeline.a"
)
