
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/batcher.cc" "src/pipeline/CMakeFiles/hnlpu_pipeline.dir/batcher.cc.o" "gcc" "src/pipeline/CMakeFiles/hnlpu_pipeline.dir/batcher.cc.o.d"
  "/root/repo/src/pipeline/pipeline_sim.cc" "src/pipeline/CMakeFiles/hnlpu_pipeline.dir/pipeline_sim.cc.o" "gcc" "src/pipeline/CMakeFiles/hnlpu_pipeline.dir/pipeline_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chip/CMakeFiles/hnlpu_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hnlpu_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hnlpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hnlpu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hnlpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnlpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
