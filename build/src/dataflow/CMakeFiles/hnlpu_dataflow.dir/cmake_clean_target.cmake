file(REMOVE_RECURSE
  "libhnlpu_dataflow.a"
)
