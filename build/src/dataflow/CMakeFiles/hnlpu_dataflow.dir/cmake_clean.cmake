file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_dataflow.dir/distributed.cc.o"
  "CMakeFiles/hnlpu_dataflow.dir/distributed.cc.o.d"
  "libhnlpu_dataflow.a"
  "libhnlpu_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
