# Empty dependencies file for hnlpu_dataflow.
# This may be replaced when dependencies are built.
