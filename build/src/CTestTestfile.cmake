# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("arith")
subdirs("hn")
subdirs("model")
subdirs("xformer")
subdirs("sim")
subdirs("noc")
subdirs("mem")
subdirs("phys")
subdirs("chip")
subdirs("pipeline")
subdirs("litho")
subdirs("econ")
subdirs("baseline")
subdirs("core")
subdirs("dataflow")
subdirs("hncc")
subdirs("gates")
