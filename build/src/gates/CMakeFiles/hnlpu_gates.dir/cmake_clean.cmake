file(REMOVE_RECURSE
  "CMakeFiles/hnlpu_gates.dir/hn_datapath.cc.o"
  "CMakeFiles/hnlpu_gates.dir/hn_datapath.cc.o.d"
  "CMakeFiles/hnlpu_gates.dir/netlist.cc.o"
  "CMakeFiles/hnlpu_gates.dir/netlist.cc.o.d"
  "libhnlpu_gates.a"
  "libhnlpu_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnlpu_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
