# Empty compiler generated dependencies file for hnlpu_gates.
# This may be replaced when dependencies are built.
