file(REMOVE_RECURSE
  "libhnlpu_gates.a"
)
