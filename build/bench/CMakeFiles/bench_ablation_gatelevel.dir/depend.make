# Empty dependencies file for bench_ablation_gatelevel.
# This may be replaced when dependencies are built.
