file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gatelevel.dir/bench_ablation_gatelevel.cc.o"
  "CMakeFiles/bench_ablation_gatelevel.dir/bench_ablation_gatelevel.cc.o.d"
  "bench_ablation_gatelevel"
  "bench_ablation_gatelevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gatelevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
