file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tco.dir/bench_table3_tco.cc.o"
  "CMakeFiles/bench_table3_tco.dir/bench_table3_tco.cc.o.d"
  "bench_table3_tco"
  "bench_table3_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
