# Empty compiler generated dependencies file for bench_table3_tco.
# This may be replaced when dependencies are built.
