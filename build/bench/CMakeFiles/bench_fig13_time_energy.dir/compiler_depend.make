# Empty compiler generated dependencies file for bench_fig13_time_energy.
# This may be replaced when dependencies are built.
