file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_metalization.dir/bench_ablation_metalization.cc.o"
  "CMakeFiles/bench_ablation_metalization.dir/bench_ablation_metalization.cc.o.d"
  "bench_ablation_metalization"
  "bench_ablation_metalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
