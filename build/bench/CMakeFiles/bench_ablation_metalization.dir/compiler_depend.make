# Empty compiler generated dependencies file for bench_ablation_metalization.
# This may be replaced when dependencies are built.
