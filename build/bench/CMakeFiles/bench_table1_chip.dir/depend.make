# Empty dependencies file for bench_table1_chip.
# This may be replaced when dependencies are built.
