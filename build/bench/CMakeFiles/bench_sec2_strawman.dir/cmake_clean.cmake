file(REMOVE_RECURSE
  "CMakeFiles/bench_sec2_strawman.dir/bench_sec2_strawman.cc.o"
  "CMakeFiles/bench_sec2_strawman.dir/bench_sec2_strawman.cc.o.d"
  "bench_sec2_strawman"
  "bench_sec2_strawman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec2_strawman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
