# Empty dependencies file for bench_sec2_strawman.
# This may be replaced when dependencies are built.
