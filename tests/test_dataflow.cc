/**
 * @file
 * Tests for the distributed dataflow engine: the sharded multi-chip
 * execution of Appendix A must reproduce the monolithic engine exactly
 * on the reference path and closely on the hardwired path, and its
 * communication volume must match the partition's analytic message
 * sizes that the pipeline simulator uses.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dataflow/distributed.hh"
#include "model/model_zoo.hh"

namespace hnlpu {
namespace {

/** tiny model reshaped so a 2x2 grid tiles it. */
TransformerConfig
gridTestModel()
{
    TransformerConfig cfg = tinyTestModel();
    cfg.name = "tiny-grid";
    cfg.vocabSize = 64; // divisible by 4 chips
    cfg.validate();
    return cfg;
}

class DataflowTest : public ::testing::Test
{
  protected:
    DataflowTest()
        : cfg_(gridTestModel()),
          weights_(ModelWeights::randomInit(cfg_, 99))
    {
    }

    TransformerConfig cfg_;
    ModelWeights weights_;
};

TEST_F(DataflowTest, ReferencePathMatchesMonolithicExactly)
{
    Engine mono(cfg_, weights_, ExecPath::Reference);
    DistributedEngine dist(cfg_, weights_, 2, 2);

    KvCache mono_cache = mono.makeCache();
    auto dist_cache = dist.makeCache();

    const std::vector<std::size_t> tokens{3, 17, 5, 60, 1, 42};
    for (std::size_t token : tokens) {
        const Vec a = mono.forwardToken(token, mono_cache);
        const Vec b = dist.forwardToken(token, dist_cache);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_NEAR(a[i], b[i], 1e-9) << "logit " << i;
    }
}

TEST_F(DataflowTest, GreedyRolloutsAgree)
{
    Engine mono(cfg_, weights_, ExecPath::Reference);
    DistributedEngine dist(cfg_, weights_, 2, 2);

    KvCache mono_cache = mono.makeCache();
    auto dist_cache = dist.makeCache();

    std::size_t token = 7;
    for (int step = 0; step < 16; ++step) {
        const Vec a = mono.forwardToken(token, mono_cache);
        const Vec b = dist.forwardToken(token, dist_cache);
        const auto arg_a = std::size_t(
            std::max_element(a.begin(), a.end()) - a.begin());
        const auto arg_b = std::size_t(
            std::max_element(b.begin(), b.end()) - b.begin());
        ASSERT_EQ(arg_a, arg_b) << "step " << step;
        token = arg_a;
    }
}

TEST_F(DataflowTest, HardwiredShardsTrackReference)
{
    DistributedEngine ref(cfg_, weights_, 2, 2, ExecPath::Reference);
    DistributedEngine hw(cfg_, weights_, 2, 2, ExecPath::Hardwired, 12);

    auto ref_cache = ref.makeCache();
    auto hw_cache = hw.makeCache();
    const Vec a = ref.forwardToken(11, ref_cache);
    const Vec b = hw.forwardToken(11, hw_cache);
    double cos_num = 0, cos_a = 0, cos_b = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cos_num += a[i] * b[i];
        cos_a += a[i] * a[i];
        cos_b += b[i] * b[i];
    }
    EXPECT_GT(cos_num / std::sqrt(cos_a * cos_b), 0.995);
}

TEST_F(DataflowTest, OneByOneGridDegeneratesToMonolithic)
{
    TransformerConfig cfg = cfg_;
    Engine mono(cfg, weights_, ExecPath::Reference);
    DistributedEngine dist(cfg, weights_, 1, 1);
    KvCache mono_cache = mono.makeCache();
    auto dist_cache = dist.makeCache();
    const Vec a = mono.forwardToken(2, mono_cache);
    const Vec b = dist.forwardToken(2, dist_cache);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST_F(DataflowTest, CommVolumeMatchesPartitionFormulas)
{
    DistributedEngine dist(cfg_, weights_, 2, 2);
    auto cache = dist.makeCache();
    dist.forwardToken(3, cache);

    const auto &part = dist.partition();
    const auto &comm = dist.commVolume();
    const double layers = double(cfg_.layerCount);
    const double peers = double(part.gridRows - 1);

    // Per layer, per column: Q slice reduced over (rows-1) peers.
    EXPECT_DOUBLE_EQ(comm.queryReduce,
                     layers * double(part.gridCols) *
                         part.queryReduceBytes() * peers);
    EXPECT_DOUBLE_EQ(comm.kvCollect,
                     layers * double(part.gridCols) * 2.0 *
                         part.kvReduceBytes() * peers);
    // Xo: per row, the hidden slice reduced over (cols-1) peers; the
    // slices sum to the full hidden vector.
    EXPECT_DOUBLE_EQ(comm.xoReduce,
                     layers * double(cfg_.hiddenSize) *
                         double(part.gridCols - 1));
    // MoE: full hidden vector over row phase + column phase.
    EXPECT_DOUBLE_EQ(comm.moeReduce,
                     layers * part.moeReduceBytes() *
                         double(part.gridRows - 1 + part.gridCols - 1));
    EXPECT_GT(comm.total(), 0.0);
    EXPECT_DOUBLE_EQ(comm.logitGather, double(cfg_.vocabSize));
}

TEST_F(DataflowTest, KvCacheInterleavesOwnership)
{
    DistributedEngine dist(cfg_, weights_, 2, 2);
    auto cache = dist.makeCache();
    for (std::size_t t : {1u, 2u, 3u, 4u, 5u})
        dist.forwardToken(t, cache);
    EXPECT_EQ(cache.length(), 5u);
    const auto row0 = cache.ownedPositions(0);
    const auto row1 = cache.ownedPositions(1);
    EXPECT_EQ(row0, (std::vector<std::size_t>{0, 2, 4}));
    EXPECT_EQ(row1, (std::vector<std::size_t>{1, 3}));
}

TEST(DataflowScaling, WiderGridsStillExact)
{
    // 1x2 and 2x1 grids exercise degenerate row/column groups.
    TransformerConfig cfg = tinyTestModel();
    cfg.vocabSize = 64;
    cfg.validate();
    const auto weights = ModelWeights::randomInit(cfg, 5);
    Engine mono(cfg, weights, ExecPath::Reference);

    for (auto [r, c] : {std::pair<std::size_t, std::size_t>{1, 2},
                        {2, 1}, {2, 2}}) {
        DistributedEngine dist(cfg, weights, r, c);
        KvCache mono_cache = mono.makeCache();
        auto dist_cache = dist.makeCache();
        for (std::size_t t : {4u, 9u}) {
            const Vec a = mono.forwardToken(t, mono_cache);
            const Vec b = dist.forwardToken(t, dist_cache);
            for (std::size_t i = 0; i < a.size(); ++i)
                EXPECT_NEAR(a[i], b[i], 1e-9)
                    << r << "x" << c << " logit " << i;
        }
        // Engine state must match across repeated constructions:
        // rebuild the monolithic cache for the next grid.
        mono_cache = mono.makeCache();
    }
}

} // namespace
} // namespace hnlpu
