/**
 * @file
 * Tests for the physical models, pinned against the paper's published
 * post-layout figures: the Section 2.2 strawman, Fig. 12 area ratios,
 * Fig. 13 ordering and Table 1's chip breakdown.
 */

#include <gtest/gtest.h>

#include "model/model_zoo.hh"
#include "phys/area_model.hh"
#include "phys/chip_floorplan.hh"
#include "phys/energy_model.hh"
#include "phys/technology.hh"

namespace hnlpu {
namespace {

TEST(Technology, LogicAndSramArea)
{
    const auto tech = n5Technology();
    EXPECT_NEAR(tech.logicAreaMm2(138e6), 1.0, 1e-9);
    // 64 KB plain macro: 524,288 bits x 0.021 um^2 = 0.0110 mm^2.
    EXPECT_NEAR(tech.sramAreaMm2(64.0 * 1024.0), 0.01101, 1e-4);
    EXPECT_GT(tech.sramAreaMm2(64.0 * 1024.0, true),
              tech.sramAreaMm2(64.0 * 1024.0));
}

TEST(AreaModelTest, Section22Strawman)
{
    // Straightforward CMAC hardwiring of gpt-oss 120 B: ~176,000 mm^2.
    AreaModel area(n5Technology());
    const double params = double(gptOss120b().totalParams());
    EXPECT_NEAR(area.cmacStrawman(params), 176000.0, 4000.0);
}

TEST(AreaModelTest, Fig12AreaRatios)
{
    AreaModel area(n5Technology());
    const OperatorShape shape; // 1024 x 128 FP4
    const double weights = shape.weightCount();
    const AreaMm2 sram = area.sramWeightStore(weights);
    const AreaMm2 ce = area.cellEmbedding(weights);
    const AreaMm2 me = area.metalEmbedding(weights);
    // Paper: CE 14.3x, SRAM 1x, ME 0.95x.
    EXPECT_NEAR(ce / sram, 14.3, 0.4);
    EXPECT_NEAR(me / sram, 0.95, 0.06);
    // ME density gain ~15x over CE.
    EXPECT_NEAR(area.meDensityGain(), 15.3, 1.0);
}

TEST(OperatorModelTest, Fig13CycleOrdering)
{
    OperatorModel op(n5Technology());
    const OperatorShape shape;
    const auto ma = op.macArray(shape);
    const auto ce = op.cellEmbedding(shape);
    const auto me = op.metalEmbedding(shape);
    // MA needs ~weights/1024 cycles (~136); CE and ME are far below.
    EXPECT_NEAR(ma.cycles, 136.0, 10.0);
    EXPECT_LT(ce.cycles, 20.0);
    EXPECT_LT(me.cycles, 30.0);
    EXPECT_GT(ma.cycles, 4.0 * me.cycles);
}

TEST(OperatorModelTest, Fig13EnergyOrdering)
{
    OperatorModel op(n5Technology());
    const OperatorShape shape;
    const auto ma = op.macArray(shape);
    const auto ce = op.cellEmbedding(shape);
    const auto me = op.metalEmbedding(shape);
    // Fig. 13 (log scale 0.1..10 nJ): MA ~10 nJ >> CE ~1 nJ > ME.
    EXPECT_GT(ma.energy, 5e-9);
    EXPECT_LT(ma.energy, 20e-9);
    EXPECT_GT(ce.energy, 0.5e-9);
    EXPECT_LT(ce.energy, 3e-9);
    EXPECT_GT(me.energy, 0.05e-9);
    EXPECT_LT(me.energy, 0.6e-9);
    EXPECT_GT(ma.energy, ce.energy);
    EXPECT_GT(ce.energy, me.energy);
}

TEST(OperatorModelTest, EnergyScalesWithShape)
{
    OperatorModel op(n5Technology());
    OperatorShape small{512, 64, 8};
    OperatorShape large{2048, 256, 8};
    EXPECT_GT(op.metalEmbedding(large).energy,
              op.metalEmbedding(small).energy * 10);
    EXPECT_GT(op.macArray(large).cycles, op.macArray(small).cycles);
}

class FloorplanTest : public ::testing::Test
{
  protected:
    ChipFloorplan plan_{makePartition(gptOss120b()), n5Technology()};
};

TEST_F(FloorplanTest, Table1Areas)
{
    const auto comps = plan_.components();
    ASSERT_EQ(comps.size(), 6u);
    EXPECT_EQ(comps[0].name, "HN Array");
    EXPECT_NEAR(comps[0].area, 573.16, 3.0);
    EXPECT_NEAR(comps[1].area, 27.87, 0.01);  // VEX
    EXPECT_NEAR(comps[2].area, 0.02, 0.001);  // Control
    EXPECT_NEAR(comps[3].area, 136.11, 0.5);  // Attention Buffer
    EXPECT_NEAR(comps[4].area, 37.92, 0.01);  // Interconnect Engine
    EXPECT_NEAR(comps[5].area, 52.0, 0.01);   // HBM PHY
    EXPECT_NEAR(plan_.totalArea(), 827.08, 3.5);
}

TEST_F(FloorplanTest, Table1Powers)
{
    const auto comps = plan_.components();
    EXPECT_NEAR(comps[0].power, 76.92, 1.0);  // HN Array
    EXPECT_NEAR(comps[1].power, 33.09, 0.3);  // VEX
    EXPECT_LT(comps[2].power, 0.01);          // Control
    EXPECT_NEAR(comps[3].power, 85.73, 1.0);  // Attention Buffer
    EXPECT_NEAR(comps[4].power, 49.65, 0.3);  // Interconnect Engine
    EXPECT_NEAR(comps[5].power, 63.0, 0.3);   // HBM PHY
    EXPECT_NEAR(plan_.totalPower(), 308.39, 2.0);
}

TEST_F(FloorplanTest, SystemTotals)
{
    // Table 2: 13,232 mm^2 total silicon; 6.9 kW system power.
    EXPECT_NEAR(plan_.systemSiliconArea(), 13232.0, 60.0);
    EXPECT_NEAR(plan_.systemPower(), 6900.0, 80.0);
}

TEST_F(FloorplanTest, PowerScalesWithActivity)
{
    ChipActivity idle;
    idle.hnActiveFraction = 0.0;
    idle.vexUtilization = 0.0;
    idle.bufferUtilization = 0.0;
    idle.interconnectUtilization = 0.0;
    idle.hbmPhyUtilization = 0.0;
    // Idle power is leakage only: well below nominal.
    EXPECT_LT(plan_.totalPower(idle), 0.2 * plan_.totalPower());
    // Dense activity (hypothetical non-MoE model) burns far more.
    ChipActivity dense;
    dense.hnActiveFraction = 1.0;
    EXPECT_GT(plan_.totalPower(dense), 3.0 * plan_.totalPower());
}

TEST(FloorplanScaling, HnAreaTracksModelSize)
{
    const auto tech = n5Technology();
    ChipFloorplan small(makePartition(gptOss20b()), tech);
    ChipFloorplan large(makePartition(gptOss120b()), tech);
    EXPECT_LT(small.hnArrayArea(), large.hnArrayArea());
    // Non-HN blocks are fixed, so total area difference equals HN
    // area difference.
    EXPECT_NEAR(large.totalArea() - small.totalArea(),
                large.hnArrayArea() - small.hnArrayArea(), 1e-9);
}

TEST(FloorplanPowerDensity, WithinCoolingLimits)
{
    // Paper Section 7.1: average power density ~0.3 W/mm^2.
    ChipFloorplan plan(makePartition(gptOss120b()), n5Technology());
    const double density = plan.totalPower() / plan.totalArea();
    EXPECT_NEAR(density, 0.37, 0.1);
    EXPECT_LT(density, 1.4); // peak cooling limit
}

} // namespace
} // namespace hnlpu
