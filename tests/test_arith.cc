/**
 * @file
 * Unit and property tests for the arithmetic substrate: FP4 codec,
 * carry-save reduction, bit-serial streaming and quantisation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "arith/bitserial.hh"
#include "arith/csa.hh"
#include "arith/fp4.hh"
#include "arith/quantize.hh"
#include "common/math_util.hh"
#include "common/rng.hh"

namespace hnlpu {
namespace {

TEST(Fp4, ValueTableMatchesE2M1)
{
    // Positive magnitudes: 0, 0.5, 1, 1.5, 2, 3, 4, 6.
    const double expected[8] = {0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0};
    for (int code = 0; code < 8; ++code) {
        EXPECT_DOUBLE_EQ(Fp4::fromCode(code).value(), expected[code])
            << "code " << code;
        EXPECT_DOUBLE_EQ(Fp4::fromCode(code | 8).value(),
                         -expected[code])
            << "code " << (code | 8);
    }
}

TEST(Fp4, TwiceValueIsExactInteger)
{
    for (int code = 0; code < kFp4Codes; ++code) {
        Fp4 w = Fp4::fromCode(code);
        EXPECT_DOUBLE_EQ(static_cast<double>(w.twiceValue()),
                         w.value() * 2.0);
    }
}

TEST(Fp4, QuantizeRoundTripOnCodes)
{
    for (int code = 0; code < kFp4Codes; ++code) {
        Fp4 w = Fp4::fromCode(code);
        Fp4 q = Fp4::quantize(w.value());
        EXPECT_DOUBLE_EQ(q.value(), w.value()) << "code " << code;
    }
}

TEST(Fp4, QuantizeSaturatesAndPicksNearest)
{
    EXPECT_DOUBLE_EQ(Fp4::quantize(100.0).value(), 6.0);
    EXPECT_DOUBLE_EQ(Fp4::quantize(-100.0).value(), -6.0);
    EXPECT_DOUBLE_EQ(Fp4::quantize(2.4).value(), 2.0);
    EXPECT_DOUBLE_EQ(Fp4::quantize(2.6).value(), 3.0);
    EXPECT_DOUBLE_EQ(Fp4::quantize(0.2).value(), 0.0);
    EXPECT_TRUE(Fp4::quantize(0.0).isZero());
}

TEST(Fp4, ZeroCodes)
{
    EXPECT_TRUE(Fp4::fromCode(0).isZero());
    EXPECT_TRUE(Fp4::fromCode(8).isZero());
    EXPECT_FALSE(Fp4::fromCode(1).isZero());
}

TEST(Csa, CompressPreservesSum)
{
    Rng rng(1);
    for (int trial = 0; trial < 1000; ++trial) {
        std::int64_t a = rng.uniformInt(-1'000'000, 1'000'000);
        std::int64_t b = rng.uniformInt(-1'000'000, 1'000'000);
        std::int64_t c = rng.uniformInt(-1'000'000, 1'000'000);
        CsaPair p = csaCompress(a, b, c);
        EXPECT_EQ(p.sum + p.carry, a + b + c);
    }
}

TEST(Csa, ReduceMatchesAccumulate)
{
    Rng rng(2);
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 7u, 16u, 33u, 100u, 257u}) {
        std::vector<std::int64_t> ops(n);
        std::int64_t expected = 0;
        for (auto &v : ops) {
            v = rng.uniformInt(-1'000'000, 1'000'000);
            expected += v;
        }
        EXPECT_EQ(csaReduce(ops), expected) << "n=" << n;
    }
}

TEST(Csa, TreeShapeBasics)
{
    EXPECT_EQ(csaTreeShape(0).compressorCount, 0u);
    EXPECT_EQ(csaTreeShape(2).compressorCount, 0u);
    EXPECT_EQ(csaTreeShape(3).compressorCount, 1u);
    EXPECT_EQ(csaTreeShape(3).depth, 1u);
    // Wallace: each level removes floor(rows/3) rows.
    CsaTreeShape s = csaTreeShape(16);
    EXPECT_GT(s.compressorCount, 0u);
    EXPECT_GE(s.depth, 4u); // 16->11->8->6->4->3->2 is 6 levels
}

TEST(Csa, PopcountAdderCountBounds)
{
    // The theoretical minimum is n - popcount(n) full adders; our greedy
    // column compressor may spend a few extra half adders but must stay
    // within a small constant factor (it feeds the area model).
    EXPECT_EQ(popcountAdderCount(1), 0u);
    EXPECT_EQ(popcountAdderCount(2), 1u);
    EXPECT_EQ(popcountAdderCount(3), 1u);
    EXPECT_EQ(popcountAdderCount(4), 3u);
    for (std::size_t n : {8u, 16u, 64u, 256u, 1024u}) {
        EXPECT_GE(popcountAdderCount(n), n - 1 - floorLog2(n))
            << "n=" << n;
        EXPECT_LE(popcountAdderCount(n), n + n / 4) << "n=" << n;
    }
    EXPECT_GT(popcountDepth(256), popcountDepth(16));
}

TEST(Csa, PopcountFunctional)
{
    std::vector<bool> bits{true, false, true, true, false};
    EXPECT_EQ(popcount(bits), 3u);
    EXPECT_EQ(popcount({}), 0u);
}

class BitSerialProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitSerialProperty, SerialSumEqualsDirectSum)
{
    const unsigned width = GetParam();
    Rng rng(width);
    const std::int64_t lo = -(std::int64_t(1) << (width - 1));
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.nextBelow(100);
        std::vector<std::int64_t> values(n);
        std::int64_t expected = 0;
        for (auto &v : values) {
            v = rng.uniformInt(lo, hi);
            expected += v;
        }
        BitSerializer ser(values, width);
        SerialAccumulator acc;
        for (unsigned bit = 0; bit < width; ++bit) {
            auto plane = ser.plane(bit);
            std::int64_t count = 0;
            for (bool b : plane)
                count += b;
            acc.addPlane(bit, ser.isSignPlane(bit), count);
        }
        EXPECT_EQ(acc.total(), expected)
            << "width=" << width << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitSerialProperty,
                         ::testing::Values(2u, 4u, 8u, 12u, 16u, 24u));

TEST(BitSerial, CyclesFormula)
{
    EXPECT_EQ(bitSerialCycles(8, 4), 12u);
    EXPECT_EQ(bitSerialCycles(1 + 1, 0), 2u);
}

TEST(BitSerialDeathTest, RejectsOutOfRangeValues)
{
    EXPECT_DEATH(BitSerializer({200}, 8), "does not fit");
}

TEST(Csd, DigitsReconstructValue)
{
    for (std::int64_t m = -40; m <= 40; ++m) {
        auto digits = csdDigits(m);
        std::int64_t value = 0;
        for (std::size_t i = 0; i < digits.size(); ++i)
            value += digits[i] * (std::int64_t(1) << i);
        EXPECT_EQ(value, m) << "m=" << m;
        // CSD property: no two adjacent nonzero digits.
        for (std::size_t i = 0; i + 1 < digits.size(); ++i)
            EXPECT_FALSE(digits[i] != 0 && digits[i + 1] != 0)
                << "m=" << m;
    }
}

TEST(Csd, AdderCountsForFp4Constants)
{
    // All doubled FP4 magnitudes need at most one adder.
    for (int code = 0; code < kFp4Codes; ++code) {
        int m = Fp4::fromCode(code).twiceValue();
        EXPECT_LE(csdAdderCount(m), 1u) << "2w=" << m;
    }
    EXPECT_EQ(csdAdderCount(0), 0u);
    EXPECT_EQ(csdAdderCount(8), 0u);  // power of two
    EXPECT_EQ(csdAdderCount(12), 1u); // 8 + 4
    EXPECT_EQ(csdAdderCount(45), 3u); // e.g. 32+16-4+1
}

TEST(Quantize, RoundTripWithinBound)
{
    Rng rng(3);
    for (unsigned width : {4u, 8u, 12u}) {
        std::vector<double> reals(256);
        double abs_max = 0.0;
        for (auto &r : reals) {
            r = rng.gaussian(0.0, 2.0);
            abs_max = std::max(abs_max, std::fabs(r));
        }
        auto q = quantizeSymmetric(reals, width);
        auto back = dequantize(q);
        const double bound = quantizeErrorBound(abs_max, width) + 1e-12;
        for (std::size_t i = 0; i < reals.size(); ++i)
            EXPECT_NEAR(back[i], reals[i], bound) << "width " << width;
    }
}

TEST(Quantize, AllZeros)
{
    auto q = quantizeSymmetric(std::vector<double>(8, 0.0), 8);
    EXPECT_DOUBLE_EQ(q.scale, 1.0);
    for (auto v : q.values)
        EXPECT_EQ(v, 0);
}

TEST(Quantize, MaxMapsToMaxCode)
{
    auto q = quantizeSymmetric({-1.0, 0.5, 1.0}, 8);
    EXPECT_EQ(q.values[2], 127);
    EXPECT_EQ(q.values[0], -127);
}

} // namespace
} // namespace hnlpu
