/**
 * @file
 * Tests for the NRE / TCO / carbon models, pinned against the paper's
 * Table 3, Table 4 and Table 5.
 */

#include <gtest/gtest.h>

#include "econ/carbon.hh"
#include "econ/nre.hh"
#include "econ/tco.hh"
#include "model/model_zoo.hh"

namespace hnlpu {
namespace {

HnlpuCostModel
makeModel()
{
    return HnlpuCostModel(n5Technology(), MaskStack{});
}

TEST(NreTest, Table5RecurringCosts)
{
    const auto bd = makeModel().breakdown(gptOss120b());
    EXPECT_EQ(bd.chipCount, 16u);
    EXPECT_NEAR(bd.waferPerChip, 629.0, 25.0);
    EXPECT_NEAR(bd.packageTestPerChip.lo, 111.0, 6.0);
    EXPECT_NEAR(bd.packageTestPerChip.hi, 185.0, 10.0);
    EXPECT_NEAR(bd.hbmPerChip.lo, 1920.0, 1.0);
    EXPECT_NEAR(bd.hbmPerChip.hi, 3840.0, 1.0);
    EXPECT_NEAR(bd.systemIntegrationPerChip.lo, 1900.0, 1.0);
    EXPECT_NEAR(bd.systemIntegrationPerChip.hi, 3800.0, 1.0);
    // Aggregate recurring per chip: ~$4.56k..$8.45k.
    EXPECT_NEAR(bd.recurringPerChip().lo, 4560.0, 50.0);
    EXPECT_NEAR(bd.recurringPerChip().hi, 8454.0, 60.0);
}

TEST(NreTest, Table5NonRecurring)
{
    const auto bd = makeModel().breakdown(gptOss120b());
    EXPECT_NEAR(bd.homogeneousMask.lo, 13.85e6, 0.05e6);
    EXPECT_NEAR(bd.homogeneousMask.hi, 27.69e6, 0.05e6);
    EXPECT_NEAR(bd.metalEmbeddingMask.lo, 18.46e6, 0.1e6);
    EXPECT_NEAR(bd.metalEmbeddingMask.hi, 36.92e6, 0.1e6);
    EXPECT_NEAR(bd.designDevelopment.lo, 26.87e6, 0.1e6);
    EXPECT_NEAR(bd.designDevelopment.hi, 58.54e6, 0.1e6);
}

TEST(NreTest, Table5BuildScenarios)
{
    const auto bd = makeModel().breakdown(gptOss120b());
    // Initial build: $59.25M..$123.3M (1 node), $62.83M..$129.9M (50).
    EXPECT_NEAR(bd.initialBuild(1).lo, 59.25e6, 0.3e6);
    EXPECT_NEAR(bd.initialBuild(1).hi, 123.3e6, 0.5e6);
    EXPECT_NEAR(bd.initialBuild(50).lo, 62.83e6, 0.3e6);
    EXPECT_NEAR(bd.initialBuild(50).hi, 129.9e6, 0.6e6);
    // Re-spin: $18.53M..$37.06M (1), $22.11M..$43.68M (50).
    EXPECT_NEAR(bd.respin(1).lo, 18.53e6, 0.1e6);
    EXPECT_NEAR(bd.respin(1).hi, 37.06e6, 0.2e6);
    EXPECT_NEAR(bd.respin(50).lo, 22.11e6, 0.2e6);
    EXPECT_NEAR(bd.respin(50).hi, 43.68e6, 0.3e6);
}

TEST(NreTest, Section22Strawman)
{
    // Straightforward hardwiring: photomasks valued over $6 B.
    const Dollars strawman =
        makeModel().strawmanMaskCost(gptOss120b());
    EXPECT_GT(strawman, 6e9);
    EXPECT_LT(strawman, 7e9);
    // Metal-Embedding reduces mask cost by ~two orders of magnitude
    // (the paper headline: 112x).
    const auto bd = makeModel().breakdown(gptOss120b());
    const double reduction = strawman / bd.totalNre().mid();
    EXPECT_GT(reduction, 50.0);
}

TEST(NreTest, Table4ModelScaling)
{
    const auto model = makeModel();
    // Paper Table 4 midpoints: Kimi 462, DeepSeek 353, QwQ 69,
    // Llama-3 38 (M$).  Our fitted fixed+per-chip+design-scaling model
    // lands within ~25% (the paper does not specify its derivation);
    // the ordering and rough magnitudes must hold.
    const double kimi = model.breakdown(kimiK2()).totalNre().mid();
    const double dsv3 = model.breakdown(deepSeekV3()).totalNre().mid();
    const double qwq = model.breakdown(qwq32b()).totalNre().mid();
    const double llama = model.breakdown(llama3_8b()).totalNre().mid();
    EXPECT_NEAR(kimi, 462e6, 0.25 * 462e6);
    EXPECT_NEAR(dsv3, 353e6, 0.25 * 353e6);
    EXPECT_NEAR(qwq, 69e6, 0.30 * 69e6);
    EXPECT_NEAR(llama, 38e6, 0.30 * 38e6);
    EXPECT_GT(kimi, dsv3);
    EXPECT_GT(dsv3, qwq);
    EXPECT_GT(qwq, llama);
}

TEST(NreTest, MoreChipsMoreNre)
{
    const auto model = makeModel();
    const auto small = model.breakdown(gptOss120b(), 8);
    const auto large = model.breakdown(gptOss120b(), 32);
    EXPECT_GT(large.totalNre().mid(), small.totalNre().mid());
    // The homogeneous set is shared regardless of chip count.
    EXPECT_DOUBLE_EQ(large.homogeneousMask.mid(),
                     small.homogeneousMask.mid());
}

class TcoTest : public ::testing::Test
{
  protected:
    TcoModel tco_{makeModel()};
};

TEST_F(TcoTest, Table3LowVolumeHnlpu)
{
    const auto r = tco_.hnlpu(gptOss120b(), 1);
    EXPECT_NEAR(r.datacenterPowerMW, 0.010, 0.001);
    EXPECT_NEAR(r.nodePrice.lo, 59.25e6, 0.3e6);
    EXPECT_NEAR(r.nodePrice.hi, 123.3e6, 0.5e6);
    EXPECT_NEAR(r.infrastructure.mid(), 0.21e6, 0.03e6);
    EXPECT_NEAR(r.initialCapex.lo, 59.46e6, 0.4e6);
    EXPECT_NEAR(r.initialCapex.hi, 123.5e6, 0.6e6);
    EXPECT_NEAR(r.electricity.mid(), 0.025e6, 0.004e6);
    EXPECT_NEAR(r.maintenance.lo, 0.073e6, 0.002e6);
    EXPECT_NEAR(r.maintenance.hi, 0.1353e6, 0.004e6);
    EXPECT_NEAR(r.tcoStatic.lo, 59.56e6, 0.4e6);
    EXPECT_NEAR(r.tcoStatic.hi, 123.7e6, 0.7e6);
    EXPECT_NEAR(r.tcoDynamic.lo, 96.62e6, 0.6e6);
    EXPECT_NEAR(r.tcoDynamic.hi, 197.8e6, 1.2e6);
}

TEST_F(TcoTest, Table3HighVolumeHnlpu)
{
    const auto r = tco_.hnlpu(gptOss120b(), 50);
    EXPECT_NEAR(r.datacenterPowerMW, 0.483, 0.01);
    EXPECT_NEAR(r.initialCapex.lo, 73.13e6, 0.5e6);
    EXPECT_NEAR(r.initialCapex.hi, 140.2e6, 0.8e6);
    EXPECT_NEAR(r.electricity.mid(), 1.206e6, 0.05e6);
    EXPECT_NEAR(r.tcoStatic.lo, 74.70e6, 0.6e6);
    EXPECT_NEAR(r.tcoStatic.hi, 142.1e6, 0.9e6);
    EXPECT_NEAR(r.tcoDynamic.lo, 118.9e6, 0.8e6);
    EXPECT_NEAR(r.tcoDynamic.hi, 229.4e6, 1.4e6);
    EXPECT_NEAR(r.emissionsStatic, 4924.0, 120.0);
    EXPECT_NEAR(r.emissionsDynamic, 5124.0, 130.0);
}

TEST_F(TcoTest, Table3H100Clusters)
{
    const auto low = tco_.h100(2000.0);
    EXPECT_NEAR(low.datacenterPowerMW, 3.64, 0.03);
    EXPECT_NEAR(low.nodePrice.mid(), 79.99e6, 0.1e6);
    EXPECT_NEAR(low.infrastructure.mid(), 54.93e6, 0.5e6);
    EXPECT_NEAR(low.initialCapex.mid(), 134.9e6, 0.6e6);
    EXPECT_NEAR(low.electricity.mid(), 9.088e6, 0.1e6);
    EXPECT_NEAR(low.maintenance.mid(), 47.24e6, 0.5e6);
    EXPECT_NEAR(low.tcoStatic.mid(), 191.2e6, 1.0e6);
    EXPECT_NEAR(low.emissionsStatic, 36600.0, 500.0);

    const auto high = tco_.h100(100000.0);
    EXPECT_NEAR(high.datacenterPowerMW, 182.0, 1.5);
    EXPECT_NEAR(high.initialCapex.mid(), 6747e6, 40e6);
    EXPECT_NEAR(high.electricity.mid(), 454.4e6, 5e6);
    EXPECT_NEAR(high.maintenance.mid(), 2362e6, 25e6);
    EXPECT_NEAR(high.tcoStatic.mid(), 9563e6, 60e6);
    EXPECT_NEAR(high.emissionsStatic, 1.83e6, 0.02e6);
}

TEST_F(TcoTest, HeadlineAdvantages)
{
    // Paper: 41.7x..80.4x TCO advantage at high volume (dynamic),
    // 357x carbon reduction.
    const auto hn = tco_.hnlpu(gptOss120b(), 50);
    const auto gpu = tco_.h100(100000.0);
    const double tco_best = gpu.tcoStatic.mid() / hn.tcoDynamic.lo;
    const double tco_worst = gpu.tcoStatic.mid() / hn.tcoDynamic.hi;
    EXPECT_NEAR(tco_worst, 41.7, 2.0);
    EXPECT_NEAR(tco_best, 80.4, 3.0);
    EXPECT_NEAR(gpu.emissionsStatic / hn.emissionsDynamic, 357.0, 15.0);
}

TEST_F(TcoTest, CarbonModelComponents)
{
    CarbonModel carbon(tco_.params());
    // 1000 units at 124.9 kg each = 124.9 t.
    EXPECT_NEAR(carbon.embodied(1000.0), 124.9, 0.01);
    // 1 MW for 1 year at 0.38 kg/kWh = 3,329 t.
    EXPECT_NEAR(carbon.operational(1.0, 1.0), 3328.8, 1.0);
    EXPECT_NEAR(carbon.total(1000.0, 1.0, 1.0), 3453.7, 1.0);
}

} // namespace
} // namespace hnlpu
