/**
 * @file
 * Bit-exactness and scheduling tests for the continuous-batching
 * serving stack: HnArray::gemmSerial/gemmReal vs per-column GEMV,
 * Linear/MoeLayer/Engine batched forwards vs their single-sequence
 * counterparts (across batch sizes, kernels, thread counts and faulted
 * arrays), and the ServingEngine's step clock cross-checked against
 * pipeline/batcher's ContinuousBatcher on one trace.
 *
 * Registered under ctest label `serving`; scripts/tier1.sh additionally
 * runs it under ThreadSanitizer (batched attention and the GEMM row
 * workers share per-step read-only state across the pool).  No death
 * tests here -- EXPECT_DEATH forks don't mix with TSan; those live in
 * test_xformer.cc / test_pipeline.cc.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "fault/fault_plan.hh"
#include "fault/model_faults.hh"
#include "hn/hn_array.hh"
#include "hn/hn_kernel.hh"
#include "model/model_zoo.hh"
#include "pipeline/batcher.hh"
#include "xformer/engine.hh"
#include "xformer/linear.hh"
#include "xformer/moe.hh"
#include "xformer/sampler.hh"
#include "xformer/serving.hh"

namespace hnlpu {
namespace {

SeaOfNeuronsTemplate
makeTemplate(std::size_t inputs)
{
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = inputs;
    tmpl.portsPerSlice = 16;
    tmpl.slackFactor = 4.0;
    return tmpl;
}

std::vector<std::int64_t>
randomActivations(std::size_t count, unsigned width, std::uint64_t seed)
{
    Rng rng(seed);
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;
    const std::int64_t lo = -hi - 1;
    std::vector<std::int64_t> acts(count);
    for (auto &a : acts)
        a = rng.uniformInt(lo, hi);
    return acts;
}

Vec
randomReals(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    Vec v(count);
    for (double &x : v)
        x = rng.gaussian(0.0, 1.0);
    return v;
}

void
expectActivityEq(const HnActivity &a, const HnActivity &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.popcountBitOps, b.popcountBitOps);
    EXPECT_EQ(a.multiplyOps, b.multiplyOps);
    EXPECT_EQ(a.treeAddOps, b.treeAddOps);
}

// -- HnArray batched GEMM vs per-column GEMV ------------------------------

TEST(GemmSerial, MatchesPerColumnGemvAcrossBatchKernelThreadsDeadRows)
{
    const std::size_t rows = 12, cols = 70; // ragged: cols % 64 != 0
    const auto weights = syntheticFp4Weights(rows * cols, 11);
    // Dead rows exercise the per-row zero fill for every column.
    HnArray array(makeTemplate(cols), weights, rows, cols, {2, 7});
    ThreadPool pool(2);

    for (unsigned width : {4u, 8u}) {
        // Batch sizes straddle the kHnBatchChunk boundary (8).
        for (std::size_t batch : {1u, 2u, 3u, 5u, 8u, 9u}) {
            std::vector<std::vector<std::int64_t>> acts(batch);
            for (std::size_t b = 0; b < batch; ++b)
                acts[b] = randomActivations(
                    cols, width, 300 + width * 31 + batch * 7 + b);
            for (HnKernel kernel : {HnKernel::Packed, HnKernel::Simd,
                                    HnKernel::Scalar}) {
                for (ThreadPool *p : {(ThreadPool *)nullptr, &pool}) {
                    HnActivity gemm_act;
                    const auto flat = array.gemmSerial(
                        acts, width, &gemm_act, p, kernel);
                    ASSERT_EQ(flat.size(), rows * batch);
                    HnActivity gemv_act;
                    for (std::size_t b = 0; b < batch; ++b) {
                        const auto col = array.gemvSerial(
                            acts[b], width, &gemv_act, nullptr, kernel);
                        for (std::size_t r = 0; r < rows; ++r) {
                            ASSERT_EQ(flat[r * batch + b], col[r])
                                << "width " << width << " batch "
                                << batch << " b " << b << " r " << r;
                        }
                    }
                    // Activity is the exact sum of per-column counters.
                    expectActivityEq(gemm_act, gemv_act);
                }
            }
        }
    }
}

TEST(GemmReal, MatchesPerColumnGemvRealBitForBit)
{
    const std::size_t rows = 9, cols = 33;
    const auto weights = syntheticFp4Weights(rows * cols, 21);
    HnArray array(makeTemplate(cols), weights, rows, cols);

    for (std::size_t batch : {2u, 4u, 7u}) {
        std::vector<Vec> acts(batch);
        for (std::size_t b = 0; b < batch; ++b)
            acts[b] = randomReals(cols, 500 + batch * 13 + b);
        const auto got = array.gemmReal(acts, 8);
        ASSERT_EQ(got.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            const auto want = array.gemvReal(acts[b], 8);
            ASSERT_EQ(got[b].size(), want.size());
            for (std::size_t r = 0; r < rows; ++r) {
                // Bit-identical doubles, not approximately equal.
                EXPECT_EQ(got[b][r], want[r])
                    << "batch " << batch << " b " << b << " r " << r;
            }
        }
    }
}

// -- Linear::forwardBatch -------------------------------------------------

TEST(LinearBatch, MatchesForwardOnBothPathsIncludingFaultedWeights)
{
    const Linear clean = Linear::random(14, 40, 31);

    FaultModelParams params;
    params.seed = 77;
    params.stuckBitRate = 0.01;
    params.deadRowRate = 0.08;
    FaultInjector injector(params);
    const Linear faulted = applyToLinear(injector, clean, "test.linear");
    ASSERT_FALSE(faulted.deadRows().empty())
        << "fault plan produced no dead rows; bump deadRowRate";

    ThreadPool pool(2);
    for (const Linear *lin : {&clean, &faulted}) {
        for (ExecPath path :
             {ExecPath::Reference, ExecPath::Hardwired}) {
            for (std::size_t batch : {1u, 3u, 4u, 6u}) {
                std::vector<Vec> xs(batch);
                for (std::size_t b = 0; b < batch; ++b)
                    xs[b] = randomReals(40, 900 + batch * 17 + b);
                for (ThreadPool *p : {(ThreadPool *)nullptr, &pool}) {
                    const auto got =
                        lin->forwardBatch(xs, path, 8, nullptr, p);
                    ASSERT_EQ(got.size(), batch);
                    for (std::size_t b = 0; b < batch; ++b) {
                        const Vec want = lin->forward(xs[b], path, 8);
                        ASSERT_EQ(got[b].size(), want.size());
                        for (std::size_t r = 0; r < want.size(); ++r) {
                            EXPECT_EQ(got[b][r], want[r])
                                << "path "
                                << (path == ExecPath::Hardwired ? "hw"
                                                                : "ref")
                                << " batch " << batch << " b " << b
                                << " r " << r;
                        }
                    }
                }
            }
        }
    }
}

// -- MoeLayer::forwardBatch -----------------------------------------------

TEST(MoeBatch, MatchesPerTokenForwardAndRouting)
{
    const std::size_t hidden = 24, expert_hidden = 20, experts = 4;
    std::vector<Expert> ex;
    for (std::size_t e = 0; e < experts; ++e) {
        ex.push_back(Expert{
            Linear::random(expert_hidden, hidden, 100 + e),
            Linear::random(expert_hidden, hidden, 200 + e),
            Linear::random(hidden, expert_hidden, 300 + e)});
    }
    MoeLayer moe(Linear::random(experts, hidden, 400), std::move(ex), 2);

    ThreadPool pool(2);
    for (ExecPath path : {ExecPath::Reference, ExecPath::Hardwired}) {
        for (std::size_t batch : {1u, 2u, 5u}) {
            std::vector<Vec> xs(batch);
            for (std::size_t b = 0; b < batch; ++b)
                xs[b] = randomReals(hidden, 700 + batch * 11 + b);
            for (ThreadPool *p : {(ThreadPool *)nullptr, &pool}) {
                std::vector<std::vector<std::size_t>> sel_batch;
                const auto got = moe.forwardBatch(xs, path, 8,
                                                  &sel_batch, p);
                ASSERT_EQ(got.size(), batch);
                ASSERT_EQ(sel_batch.size(), batch);
                for (std::size_t b = 0; b < batch; ++b) {
                    std::vector<std::size_t> sel;
                    const Vec want = moe.forward(xs[b], path, 8, &sel);
                    EXPECT_EQ(sel_batch[b], sel);
                    ASSERT_EQ(got[b].size(), want.size());
                    for (std::size_t d = 0; d < want.size(); ++d)
                        EXPECT_EQ(got[b][d], want[d])
                            << "batch " << batch << " b " << b << " d "
                            << d;
                }
            }
        }
    }
}

// -- Engine::forwardTokenBatch --------------------------------------------

TEST(EngineBatch, MatchesSequentialForwardTokenAndStats)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 42);

    for (ExecPath path : {ExecPath::Reference, ExecPath::Hardwired}) {
        for (std::size_t threads : {1u, 2u}) {
            ExecOptions exec;
            exec.threads = threads;
            Engine batched(cfg, weights, path, 8, exec);
            Engine sequential(cfg, weights, path, 8, exec);

            // Three sequences at different positions: feed different
            // prefixes first, then run one batched step.
            const std::vector<std::vector<std::size_t>> prefixes{
                {}, {3}, {9, 14}};
            const std::vector<std::size_t> step_tokens{1, 5, 7};

            std::vector<KvCache> b_caches, s_caches;
            for (std::size_t s = 0; s < prefixes.size(); ++s) {
                b_caches.push_back(batched.makeCache());
                s_caches.push_back(sequential.makeCache());
            }
            for (std::size_t s = 0; s < prefixes.size(); ++s) {
                for (std::size_t tok : prefixes[s]) {
                    batched.forwardToken(tok, b_caches[s]);
                    sequential.forwardToken(tok, s_caches[s]);
                }
            }

            std::vector<KvCache *> cache_ptrs;
            for (auto &c : b_caches)
                cache_ptrs.push_back(&c);
            const auto batch_logits =
                batched.forwardTokenBatch(step_tokens, cache_ptrs);
            ASSERT_EQ(batch_logits.size(), step_tokens.size());
            for (std::size_t s = 0; s < step_tokens.size(); ++s) {
                const Vec want = sequential.forwardToken(step_tokens[s],
                                                         s_caches[s]);
                ASSERT_EQ(batch_logits[s].size(), want.size());
                for (std::size_t i = 0; i < want.size(); ++i)
                    EXPECT_EQ(batch_logits[s][i], want[i])
                        << "threads " << threads << " seq " << s
                        << " logit " << i;
                EXPECT_EQ(b_caches[s].length(), s_caches[s].length());
            }
            // Stats are the exact sum of the per-sequence runs.
            EXPECT_EQ(batched.stats().tokensProcessed,
                      sequential.stats().tokensProcessed);
            EXPECT_EQ(batched.stats().expertHistogram,
                      sequential.stats().expertHistogram);
            expectActivityEq(batched.stats().hnActivity,
                             sequential.stats().hnActivity);
        }
    }
}

TEST(EngineBatch, WantLogitsSkipsUnembeddingForUnflaggedSequences)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 43);
    Engine engine(cfg, weights, ExecPath::Reference);

    KvCache a = engine.makeCache(), b = engine.makeCache();
    const auto logits = engine.forwardTokenBatch(
        {2, 6}, {&a, &b}, {0, 1});
    ASSERT_EQ(logits.size(), 2u);
    EXPECT_TRUE(logits[0].empty());
    ASSERT_EQ(logits[1].size(), cfg.vocabSize);
    // The skipped sequence's cache still advanced.
    EXPECT_EQ(a.length(), 1u);
    EXPECT_EQ(b.length(), 1u);
}

// -- ServingEngine vs sequential generate ---------------------------------

TEST(Serving, BatchedDecodeBitIdenticalToSequentialGenerate)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 77);

    FaultModelParams params;
    params.seed = 5;
    params.stuckBitRate = 0.002;
    params.deadRowRate = 0.01;
    FaultInjector injector(params);
    ModelFaultStats fstats;
    const auto faulted = applyToModel(clean, cfg, injector, &fstats);
    ASSERT_GT(fstats.stuckBits + fstats.deadRows, 0u);

    struct Req
    {
        std::vector<std::size_t> prompt;
        std::size_t decode;
        SamplerConfig sampler;
        std::uint64_t seed;
    };
    // Mixed greedy and temperature requests with different lengths, so
    // slots free at different steps and admission churns.
    const std::vector<Req> trace{
        {{1, 5, 9}, 4, {0.0, 0}, 0},
        {{2}, 6, {0.8, 5}, 11},
        {{7, 3}, 2, {0.0, 0}, 0},
        {{4, 8, 12, 16}, 5, {1.1, 0}, 23},
        {{6}, 3, {0.8, 5}, 37},
        {{10, 11}, 4, {0.0, 0}, 0},
    };

    for (const ModelWeights *w : {&clean, &faulted}) {
        for (ExecPath path :
             {ExecPath::Reference, ExecPath::Hardwired}) {
            // One sequential baseline per (weights, path): slot count
            // and thread count must not change a single token.
            ExecOptions base_exec;
            Engine baseline(cfg, *w, path, 8, base_exec);
            std::vector<std::vector<std::size_t>> want;
            for (const Req &r : trace) {
                Sampler sampler(r.sampler, r.seed);
                want.push_back(
                    baseline.generate(r.prompt, r.decode, sampler));
            }

            for (std::size_t threads : {1u, 2u}) {
                for (std::size_t slot_count : {1u, 2u, 4u}) {
                    ExecOptions exec;
                    exec.threads = threads;
                    exec.batchSlots = slot_count;
                    Engine engine(cfg, *w, path, 8, exec);
                    ServingEngine serving(engine);
                    ASSERT_EQ(serving.slotCount(), slot_count);
                    for (const Req &r : trace) {
                        ServingRequest req;
                        req.prompt = r.prompt;
                        req.decodeTokens = r.decode;
                        req.sampler = r.sampler;
                        req.seed = r.seed;
                        serving.enqueue(req);
                    }
                    const auto outcomes = serving.run();
                    ASSERT_EQ(outcomes.size(), trace.size());
                    for (std::size_t i = 0; i < trace.size(); ++i) {
                        EXPECT_EQ(outcomes[i].tokens, want[i])
                            << "path "
                            << (path == ExecPath::Hardwired ? "hw"
                                                            : "ref")
                            << " threads " << threads << " slots "
                            << slot_count << " request " << i;
                    }
                }
            }
        }
    }
}

// -- Step clock vs ContinuousBatcher --------------------------------------

TEST(Serving, StepClockMatchesContinuousBatcherOnOneTrace)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 88);

    // Staggered arrivals, mixed lengths, d == 1 included (a request
    // that finishes on its first sampled token).
    struct Item
    {
        std::size_t arrival, p, d;
    };
    const std::vector<Item> trace{
        {0, 3, 4}, {0, 1, 6}, {1, 2, 1}, {4, 4, 3}, {9, 2, 2},
        {9, 1, 5},
    };

    for (std::size_t slot_count : {1u, 2u, 3u}) {
        Engine engine(cfg, weights, ExecPath::Reference);
        ServingEngine serving(engine, slot_count);
        for (const Item &it : trace) {
            ServingRequest req;
            req.prompt.assign(it.p, 1);
            req.decodeTokens = it.d;
            req.arrivalStep = it.arrival;
            serving.enqueue(req);
        }
        const auto outcomes = serving.run();

        // The serving engine samples the first decode token from the
        // last prefill forward, so a d-token request occupies its slot
        // for p + d - 1 unit steps: ContinuousBatcher with unit timings
        // sees the same schedule for Request{arrival, p, d - 1}.
        std::vector<Request> requests;
        for (const Item &it : trace)
            requests.push_back(
                Request{double(it.arrival), it.p, it.d - 1});
        ContinuousBatcher batcher(slot_count, 1.0, 1.0);
        const auto batcher_out = batcher.serve(requests);

        ASSERT_EQ(outcomes.size(), batcher_out.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            EXPECT_EQ(double(outcomes[i].admitStep),
                      batcher_out[i].start)
                << "slots " << slot_count << " request " << i;
            EXPECT_EQ(double(outcomes[i].firstTokenStep),
                      batcher_out[i].firstToken)
                << "slots " << slot_count << " request " << i;
            EXPECT_EQ(double(outcomes[i].finishStep),
                      batcher_out[i].finish)
                << "slots " << slot_count << " request " << i;
        }
    }
}

// -- Metrics --------------------------------------------------------------

TEST(Serving, StatsAndMetricsJsonAreConsistent)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 99);
    Engine engine(cfg, weights, ExecPath::Reference);
    ServingEngine serving(engine, 2);

    std::size_t expected_forwards = 0, expected_decoded = 0;
    const std::vector<std::pair<std::size_t, std::size_t>> shape{
        {3, 4}, {2, 5}, {1, 2}, {4, 3}};
    for (const auto &[p, d] : shape) {
        ServingRequest req;
        req.prompt.assign(p, 2);
        req.decodeTokens = d;
        serving.enqueue(req);
        expected_forwards += p + d - 1;
        expected_decoded += d;
    }
    const auto outcomes = serving.run();
    const ServingStats &stats = serving.stats();

    EXPECT_EQ(stats.requests, shape.size());
    EXPECT_EQ(stats.slots, 2u);
    EXPECT_EQ(stats.forwards, expected_forwards);
    EXPECT_EQ(stats.decodedTokens, expected_decoded);
    EXPECT_GT(stats.wallSeconds, 0.0);
    EXPECT_GT(stats.aggregateTokensPerSecond, 0.0);
    EXPECT_GT(stats.meanOccupancy, 0.0);
    EXPECT_LE(stats.meanOccupancy, 1.0);
    EXPECT_LE(stats.ttftP50Seconds, stats.ttftP95Seconds);
    EXPECT_LE(stats.latencyP50Seconds, stats.latencyP95Seconds);
    for (const auto &out : outcomes) {
        EXPECT_GE(out.ttftSeconds, out.queueSeconds);
        EXPECT_GE(out.latencySeconds, out.ttftSeconds);
        EXPECT_GT(out.decodeTokensPerSecond, 0.0);
    }

    const std::string json = serving.metricsJson();
    for (const char *key :
         {"\"slots\"", "\"aggregate_tokens_per_second\"",
          "\"ttft_seconds\"", "\"latency_seconds\"",
          "\"mean_queue_seconds\"", "\"requests_detail\"",
          "\"decode_tokens_per_second\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }

    // The queue drained; a second run on an empty queue is a no-op.
    EXPECT_EQ(serving.queuedRequests(), 0u);
    EXPECT_TRUE(serving.run().empty());
}

// -- Typed admission control ----------------------------------------------

TEST(Serving, TryEnqueueTypedRejectionsLeaveQueueUntouched)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 51);
    Engine engine(cfg, weights, ExecPath::Reference);
    ServingEngine serving(engine);

    ServingRequest empty;
    empty.decodeTokens = 2;
    EXPECT_EQ(serving.tryEnqueue(empty).reason,
              RejectReason::EmptyPrompt);

    ServingRequest zero;
    zero.prompt = {1, 2};
    EXPECT_EQ(serving.tryEnqueue(zero).reason,
              RejectReason::ZeroDecodeTokens);

    ServingRequest oov;
    oov.prompt = {1, cfg.vocabSize};
    oov.decodeTokens = 1;
    EXPECT_EQ(serving.tryEnqueue(oov).reason,
              RejectReason::TokenOutOfVocab);

    ServingRequest bad_temp;
    bad_temp.prompt = {1};
    bad_temp.decodeTokens = 1;
    bad_temp.sampler.temperature = -0.1;
    EXPECT_EQ(serving.tryEnqueue(bad_temp).reason,
              RejectReason::InvalidSampler);

    ServingRequest bad_topk;
    bad_topk.prompt = {1};
    bad_topk.decodeTokens = 1;
    bad_topk.sampler.topK = cfg.vocabSize + 1;
    EXPECT_EQ(serving.tryEnqueue(bad_topk).reason,
              RejectReason::InvalidSampler);

    // Nothing slipped into the queue.
    EXPECT_EQ(serving.queuedRequests(), 0u);

    ServingRequest ok;
    ok.prompt = {1, 2};
    ok.decodeTokens = 1;
    ok.arrivalStep = 5;
    const EnqueueResult admitted = serving.tryEnqueue(ok);
    EXPECT_TRUE(admitted.admitted());
    EXPECT_EQ(admitted.id, 0u);

    ServingRequest backwards = ok;
    backwards.arrivalStep = 4;
    EXPECT_EQ(serving.tryEnqueue(backwards).reason,
              RejectReason::ArrivalOrderViolation);
    EXPECT_EQ(serving.queuedRequests(), 1u);

    // Stable reason names (JSON keys, log lines).
    EXPECT_STREQ(rejectReasonName(RejectReason::None), "none");
    EXPECT_STREQ(rejectReasonName(RejectReason::QueueFull),
                 "queue_full");
    EXPECT_STREQ(rejectReasonName(RejectReason::DeadlineExpired),
                 "deadline_expired");
}

TEST(Serving, EmptyRunStatsAreZeroNotNaN)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 52);
    Engine engine(cfg, weights, ExecPath::Reference);
    ServingEngine serving(engine, 2);

    EXPECT_TRUE(serving.run().empty());
    const ServingStats &stats = serving.stats();
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.executedSteps, 0u);
    EXPECT_EQ(stats.forwards, 0u);
    EXPECT_EQ(stats.decodedTokens, 0u);
    for (const double v :
         {stats.wallSeconds, stats.aggregateTokensPerSecond,
          stats.meanOccupancy, stats.meanQueueSeconds,
          stats.ttftP50Seconds, stats.ttftP95Seconds,
          stats.latencyP50Seconds, stats.latencyP95Seconds}) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_EQ(v, 0.0);
    }
}

} // namespace
} // namespace hnlpu
