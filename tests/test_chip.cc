/**
 * @file
 * Tests for the single-chip timing model.
 */

#include <gtest/gtest.h>

#include "chip/timing.hh"
#include "model/model_zoo.hh"

namespace hnlpu {
namespace {

class ChipTimingTest : public ::testing::Test
{
  protected:
    ChipTiming timing_{makePartition(gptOss120b()), ChipTimingParams{}};
};

TEST_F(ChipTimingTest, HnGemvScalesWithFanIn)
{
    const Tick small = timing_.hnGemvTicks(64);
    const Tick medium = timing_.hnGemvTicks(720);
    const Tick large = timing_.hnGemvTicks(2880);
    EXPECT_LT(small, medium);
    EXPECT_LT(medium, large);
    // 2880 inputs / 64 ports * 8 bits = 360 serial cycles (+ drain).
    EXPECT_NEAR(toSeconds(large), 384e-9, 10e-9);
}

TEST_F(ChipTimingTest, HnGemvIndependentOfFanOut)
{
    // Every output neuron is dedicated hardware: only fan-in matters.
    EXPECT_EQ(timing_.hnGemvTicks(720), timing_.hnGemvTicks(720));
}

TEST_F(ChipTimingTest, AttentionLinearInContext)
{
    const Tick at_2k = timing_.vexAttentionTicks(2048);
    const Tick at_8k = timing_.vexAttentionTicks(8192);
    EXPECT_NEAR(double(at_8k), 4.0 * double(at_2k),
                0.1 * double(at_8k));
}

TEST_F(ChipTimingTest, NonlinearIndependentOfContext)
{
    EXPECT_GT(timing_.vexNonlinearTicks(), 0u);
    // Softmax streaming does scale with context.
    EXPECT_GT(timing_.vexSoftmaxTicks(65536),
              timing_.vexSoftmaxTicks(2048));
}

TEST_F(ChipTimingTest, HbmStallHiddenWhenFast)
{
    const Tick attn = toTicks(10e-6);
    // HBM finishing inside 90% of attention is fully hidden.
    EXPECT_EQ(timing_.hbmStallTicks(toTicks(8e-6), attn), 0u);
    // Slower HBM leaves a residual stall.
    EXPECT_EQ(timing_.hbmStallTicks(toTicks(12e-6), attn),
              toTicks(3e-6));
}

TEST_F(ChipTimingTest, KvStreamUsesConfiguredBandwidth)
{
    ChipTimingParams params;
    params.kvStreamBandwidth = 1e12;
    ChipTiming t(makePartition(gptOss120b()), params);
    EXPECT_EQ(t.kvStreamTicks(1e6), toTicks(1e-6));
    EXPECT_EQ(t.kvStreamTicks(0.0), 0u);
}

TEST(SlidingWindow, GptOssAlternatesLayers)
{
    const auto cfg = gptOss120b();
    EXPECT_EQ(cfg.slidingLayerCount(), 18u);
    EXPECT_EQ(cfg.fullAttentionLayerCount(), 18u);
    std::size_t sliding = 0;
    for (std::size_t l = 0; l < cfg.layerCount; ++l) {
        if (cfg.isSlidingLayer(l))
            ++sliding;
    }
    EXPECT_EQ(sliding, 18u);
    // Window caps the effective context.
    EXPECT_EQ(cfg.layerContext(1, 65536),
              cfg.isSlidingLayer(1) ? 128u : 65536u);
    // A dense-attention model has no sliding layers.
    EXPECT_EQ(llama3_8b().slidingLayerCount(), 0u);
    EXPECT_FALSE(llama3_8b().isSlidingLayer(0));
}

} // namespace
} // namespace hnlpu
