/**
 * @file
 * Bit-exactness sweep of the Packed (word-parallel) and Simd
 * (vectorised, zero-skipping, cache-tiled) HN GEMV kernels against the
 * Scalar (per-wire emulation) kernel: outputs AND HnActivity counters
 * must be identical across activation widths, ragged (cols % 64 != 0)
 * shapes, all-zero / high-plane-sparse activations, dead-row masks,
 * stuck-at faulted weights and thread counts.  Also covers the
 * PackedPlanes serializer (incl. the non-zero-plane occupancy mask),
 * the lock-free scratch arena (recycling, exception safety of the
 * lease, concurrent acquire/release), CachedPlanes rebuild avoidance,
 * and end-to-end engine equality under ExecOptions::kernel.
 *
 * Registered under ctest label `kernel`; scripts/tier1.sh additionally
 * runs it under ThreadSanitizer to prove the per-GEMV PackedPlanes is
 * shared strictly read-only across row workers and the arena's atomic
 * slot handoff is race-free, and rebuilds it with -DHNLPU_SIMD=OFF to
 * keep the portable Simd fallback honest.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "fault/fault_plan.hh"
#include "fault/model_faults.hh"
#include "hn/hn_array.hh"
#include "hn/hn_kernel.hh"
#include "hn/hn_simd.hh"
#include "model/model_zoo.hh"
#include "xformer/engine.hh"
#include "xformer/linear.hh"
#include "xformer/sampler.hh"

namespace hnlpu {
namespace {

SeaOfNeuronsTemplate
makeTemplate(std::size_t inputs)
{
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = inputs;
    tmpl.portsPerSlice = 16;
    tmpl.slackFactor = 4.0;
    return tmpl;
}

std::vector<std::int64_t>
randomActivations(std::size_t count, unsigned width, std::uint64_t seed)
{
    Rng rng(seed);
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;
    const std::int64_t lo = -hi - 1;
    std::vector<std::int64_t> acts(count);
    for (auto &a : acts)
        a = rng.uniformInt(lo, hi);
    return acts;
}

void
expectActivityEq(const HnActivity &a, const HnActivity &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.popcountBitOps, b.popcountBitOps);
    EXPECT_EQ(a.multiplyOps, b.multiplyOps);
    EXPECT_EQ(a.treeAddOps, b.treeAddOps);
}

// -- PackedPlanes vs BitSerializer ----------------------------------------

TEST(PackedPlanes, MatchesBitSerializerBitForBit)
{
    for (std::size_t lanes : {1u, 63u, 64u, 65u, 130u}) {
        for (unsigned width : {2u, 4u, 8u, 16u}) {
            const auto values =
                randomActivations(lanes, width, 90 + lanes + width);
            BitSerializer serializer(values, width);
            PackedPlanes planes;
            planes.build(values, width);
            ASSERT_EQ(planes.laneCount(), lanes);
            ASSERT_EQ(planes.wordsPerPlane(), (lanes + 63) / 64);
            for (unsigned bit = 0; bit < width; ++bit) {
                const auto reference = serializer.plane(bit);
                const std::uint64_t *words = planes.plane(bit);
                EXPECT_EQ(planes.isSignPlane(bit),
                          serializer.isSignPlane(bit));
                for (std::size_t i = 0; i < lanes; ++i) {
                    const bool packed_bit =
                        (words[i / 64] >> (i % 64)) & 1;
                    ASSERT_EQ(packed_bit, bool(reference[i]))
                        << "lanes " << lanes << " width " << width
                        << " bit " << bit << " lane " << i;
                }
                // Tail lanes beyond laneCount() must be zero so mask
                // AND-popcounts never see ghost wires.
                for (std::size_t i = lanes;
                     i < planes.wordsPerPlane() * 64; ++i) {
                    ASSERT_EQ((words[i / 64] >> (i % 64)) & 1, 0u);
                }
            }
        }
    }
}

TEST(PackedPlanes, RebuildReusesGeometryAndRejectsOverflow)
{
    PackedPlanes planes;
    planes.build({1, -2, 3}, 4);
    EXPECT_EQ(planes.width(), 4u);
    planes.build({7, -8}, 4); // shrink in place
    EXPECT_EQ(planes.laneCount(), 2u);
    EXPECT_DEATH(planes.build({128}, 8), "does not fit");
}

TEST(PackedPlanes, NonZeroPlaneMaskTracksOccupancy)
{
    PackedPlanes planes;
    // All-zero input: every plane empty.
    planes.build(std::vector<std::int64_t>(100, 0), 8);
    EXPECT_EQ(planes.nonZeroPlaneMask(), 0u);
    for (unsigned bit = 0; bit < 8; ++bit)
        EXPECT_FALSE(planes.planeNonZero(bit));

    // Small positive values: only the low planes carry bits (the
    // high-plane sparsity the Simd kernel skips).
    planes.build({1, 2, 3, 1, 0, 2}, 8);
    EXPECT_EQ(planes.nonZeroPlaneMask(), 0b11u);
    EXPECT_TRUE(planes.planeNonZero(0));
    EXPECT_TRUE(planes.planeNonZero(1));
    EXPECT_FALSE(planes.planeNonZero(7));

    // A negative value sets every plane from its magnitude up through
    // the sign plane (two's complement sign extension).
    planes.build({-1}, 4);
    EXPECT_EQ(planes.nonZeroPlaneMask(), 0b1111u);

    // Random sweep: the mask must equal the OR-fold of the planes'
    // actual words.
    for (unsigned width : {4u, 8u, 16u}) {
        const auto values = randomActivations(130, width, 7 + width);
        planes.build(values, width);
        for (unsigned bit = 0; bit < width; ++bit) {
            std::uint64_t any = 0;
            for (std::size_t w = 0; w < planes.wordsPerPlane(); ++w)
                any |= planes.plane(bit)[w];
            EXPECT_EQ(planes.planeNonZero(bit), any != 0)
                << "width " << width << " bit " << bit;
        }
    }
}

// -- neuron- and array-level bit-exactness --------------------------------

TEST(PackedKernel, NeuronMatchesSerialAcrossWidths)
{
    const std::size_t cols = 70; // deliberately not a multiple of 64
    const auto tmpl = makeTemplate(cols);
    const auto weights = syntheticFp4Weights(cols, 17);
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());
    const HardwiredNeuron neuron(std::move(*topo));

    for (unsigned width : {4u, 8u, 16u}) {
        const auto acts = randomActivations(cols, width, width);
        HnActivity serial_act, packed_act, simd_act;
        const std::int64_t serial =
            neuron.computeSerial(acts, width, &serial_act);
        PackedPlanes planes;
        planes.build(acts, width);
        const std::int64_t packed =
            neuron.computePacked(planes, &packed_act);
        const std::int64_t simd =
            neuron.computeSimd(planes, &simd_act);
        EXPECT_EQ(packed, serial) << "width " << width;
        EXPECT_EQ(simd, serial) << "width " << width;
        EXPECT_EQ(packed, neuron.computeReference(acts));
        expectActivityEq(packed_act, serial_act);
        expectActivityEq(simd_act, serial_act);
    }
}

TEST(SimdKernel, AllZeroAndSparseHighPlanesStayBitExact)
{
    // All-zero activations leave every plane empty (full plane-skip
    // path); small positive values leave the high planes empty and
    // long zero runs in the low ones (block-skip path).  Both must be
    // bit-exact against Scalar, counters included.
    const std::size_t cols = 190; // ragged: 3 words per plane
    const auto tmpl = makeTemplate(cols);
    const auto weights = syntheticFp4Weights(cols, 31);
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());
    const HardwiredNeuron neuron(std::move(*topo));

    const std::vector<std::int64_t> zeros(cols, 0);
    std::vector<std::int64_t> sparse(cols, 0);
    for (std::size_t i = 0; i < cols; i += 7)
        sparse[i] = std::int64_t(1 + (i % 3)); // values 1..3: planes 0-1

    for (const auto &acts : {zeros, sparse}) {
        for (unsigned width : {4u, 8u, 16u}) {
            HnActivity serial_act, simd_act;
            const std::int64_t serial =
                neuron.computeSerial(acts, width, &serial_act);
            PackedPlanes planes;
            planes.build(acts, width);
            const std::int64_t simd =
                neuron.computeSimd(planes, &simd_act);
            EXPECT_EQ(simd, serial) << "width " << width;
            EXPECT_EQ(simd, neuron.computeReference(acts));
            // Zero-skips are host shortcuts: the modelled fabric still
            // clocks every wire, so the counters must not shrink.
            expectActivityEq(simd_act, serial_act);
        }
    }
}

TEST(SimdKernel, WideRowCrossesCacheTileBoundary)
{
    // 40000 lanes = 625 words per plane, beyond the Simd kernel's
    // 512-word cache tile, so the tiled traversal (including the
    // ragged last tile and vector tail) is exercised for real.
    const std::size_t cols = 40000;
    const auto tmpl = makeTemplate(cols);
    const auto weights = syntheticFp4Weights(cols, 77);
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());
    const HardwiredNeuron neuron(std::move(*topo));

    const auto acts = randomActivations(cols, 8, 5);
    PackedPlanes planes;
    planes.build(acts, 8);
    HnActivity packed_act, simd_act;
    const std::int64_t packed = neuron.computePacked(planes, &packed_act);
    const std::int64_t simd = neuron.computeSimd(planes, &simd_act);
    EXPECT_EQ(simd, packed);
    EXPECT_EQ(simd, neuron.computeReference(acts));
    expectActivityEq(simd_act, packed_act);
}

TEST(PackedKernel, ArraySweepWidthsShapesThreadsAndDeadRows)
{
    for (std::size_t cols : {33u, 64u, 100u}) {
        for (unsigned width : {4u, 8u, 16u}) {
            const std::size_t rows = 12;
            const auto tmpl = makeTemplate(cols);
            const auto weights =
                syntheticFp4Weights(rows * cols, 1000 + cols + width);
            const std::vector<std::uint32_t> dead{1, 7, 11};
            const HnArray array(tmpl, weights, rows, cols, dead);
            const auto acts =
                randomActivations(cols, width, cols * width);

            HnActivity scalar_act, packed_act, simd_act;
            const auto scalar =
                array.gemvSerial(acts, width, &scalar_act, nullptr,
                                 HnKernel::Scalar);
            const auto packed =
                array.gemvSerial(acts, width, &packed_act, nullptr,
                                 HnKernel::Packed);
            const auto simd =
                array.gemvSerial(acts, width, &simd_act, nullptr,
                                 HnKernel::Simd);
            EXPECT_EQ(packed, scalar)
                << "cols " << cols << " width " << width;
            EXPECT_EQ(simd, scalar)
                << "cols " << cols << " width " << width;
            EXPECT_EQ(packed, array.gemvReference(acts));
            expectActivityEq(packed_act, scalar_act);
            expectActivityEq(simd_act, scalar_act);
            for (std::uint32_t r : dead)
                EXPECT_EQ(packed[r], 0);

            // Multi-threaded word-parallel kernels: same planes shared
            // read-only by all workers (forced past the hardware cap so
            // chunks really run concurrently), still bit-exact -- incl.
            // the shard-merged counters.
            ThreadPool pool(4, /*cap_to_hardware=*/false);
            for (HnKernel kernel :
                 {HnKernel::Packed, HnKernel::Simd}) {
                HnActivity pooled_act;
                const auto pooled = array.gemvSerial(
                    acts, width, &pooled_act, &pool, kernel);
                EXPECT_EQ(pooled, scalar);
                expectActivityEq(pooled_act, scalar_act);
            }
        }
    }
}

TEST(PackedKernel, RealGemvMatchesScalarExactly)
{
    const std::size_t rows = 9, cols = 77;
    const auto tmpl = makeTemplate(cols);
    const auto weights = syntheticFp4Weights(rows * cols, 23);
    const HnArray array(tmpl, weights, rows, cols);

    Vec x(cols);
    for (std::size_t i = 0; i < cols; ++i)
        x[i] = std::sin(double(i) * 0.7) * 2.0;

    const auto scalar = array.gemvReal(x, 8, nullptr, nullptr,
                                       HnKernel::Scalar);
    const auto packed = array.gemvReal(x, 8, nullptr, nullptr,
                                       HnKernel::Packed);
    ASSERT_EQ(scalar.size(), packed.size());
    for (std::size_t r = 0; r < rows; ++r)
        EXPECT_EQ(packed[r], scalar[r]) << "row " << r; // bit-identical
}

// -- faulted arrays -------------------------------------------------------

TEST(PackedKernel, StuckAtFaultedLinearStaysBitExact)
{
    FaultModelParams params;
    params.seed = 99;
    params.stuckBitRate = 0.03;
    params.deadRowRate = 0.1;
    const FaultInjector injector(params);

    const Linear clean = Linear::random(24, 70, 7);
    const Linear faulty = applyToLinear(injector, clean, "kernel.sweep");

    Vec x(70);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::cos(double(i)) * 1.5;

    for (unsigned width : {4u, 8u, 16u}) {
        HnActivity scalar_act;
        const Vec scalar =
            faulty.forward(x, ExecPath::Hardwired, width, &scalar_act,
                           nullptr, HnKernel::Scalar);
        for (HnKernel kernel : {HnKernel::Packed, HnKernel::Simd}) {
            HnActivity kernel_act;
            const Vec got =
                faulty.forward(x, ExecPath::Hardwired, width,
                               &kernel_act, nullptr, kernel);
            ASSERT_EQ(scalar.size(), got.size());
            for (std::size_t r = 0; r < scalar.size(); ++r)
                EXPECT_EQ(got[r], scalar[r]) << "row " << r;
            expectActivityEq(kernel_act, scalar_act);
            for (std::uint32_t r : faulty.deadRows())
                EXPECT_EQ(got[r], 0.0);
        }
    }
}

// -- scratch arena --------------------------------------------------------

TEST(ScratchArena, RecyclesScratchesAcrossLeases)
{
    HnScratchArena arena;
    EXPECT_EQ(arena.idleCount(), 0u);
    {
        HnScratchLease a(&arena);
        HnScratchLease b(&arena); // concurrent leases get distinct ones
        EXPECT_NE(&a.get(), &b.get());
        EXPECT_EQ(arena.idleCount(), 0u);
    }
    EXPECT_EQ(arena.idleCount(), 2u);
    {
        HnScratchLease c(&arena); // reuses a parked scratch
        EXPECT_EQ(arena.idleCount(), 1u);
    }
    EXPECT_EQ(arena.idleCount(), 2u);
}

TEST(ScratchArena, ArrayGemvParksScratchForReuse)
{
    const std::size_t rows = 4, cols = 40;
    const auto tmpl = makeTemplate(cols);
    const HnArray array(tmpl, syntheticFp4Weights(rows * cols, 3), rows,
                        cols);
    const auto acts = randomActivations(cols, 8, 5);

    HnScratchArena arena;
    const auto first = array.gemvSerial(acts, 8, nullptr, nullptr,
                                        HnKernel::Packed, &arena);
    EXPECT_EQ(arena.idleCount(), 1u);
    const auto second = array.gemvSerial(acts, 8, nullptr, nullptr,
                                         HnKernel::Packed, &arena);
    EXPECT_EQ(arena.idleCount(), 1u); // same scratch went round-trip
    EXPECT_EQ(first, second);
}

TEST(ScratchArena, LeaseReturnsScratchDuringStackUnwinding)
{
    // Regression guard: the plane build runs inside the lease's scope,
    // and build() can throw (std::bad_alloc from the word buffer).  If
    // the lease were not RAII, a throwing build would leak the scratch
    // out of the arena for good.
    HnScratchArena arena;
    try {
        HnScratchLease lease(&arena);
        lease.get().planes.ensure({1, 2, 3}, 8);
        throw std::runtime_error("simulated build failure");
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(arena.idleCount(), 1u);

    // And the parked scratch is reusable: the interrupted build left
    // CachedPlanes either fully built or marked invalid, never a stale
    // key over fresh planes.
    HnScratchLease again(&arena);
    EXPECT_EQ(arena.idleCount(), 0u);
    const PackedPlanes &planes = again.get().planes.ensure({4, 5}, 8);
    EXPECT_EQ(planes.laneCount(), 2u);
}

TEST(ScratchArena, ConcurrentLeasesNeverLoseOrDoubleHandOutScratches)
{
    // Hammer the lock-free slot array from many raw threads (this is
    // the tier-1 TSan target for the arena): every acquire must hand
    // out an exclusively owned scratch -- concurrent writes into the
    // scratch would be a detectable race if two threads ever shared
    // one -- and nothing may leak.
    HnScratchArena arena;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kRounds = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&arena, t] {
            for (std::size_t round = 0; round < kRounds; ++round) {
                HnScratchLease lease(&arena);
                // Exclusive ownership: unsynchronised writes are only
                // safe if no other thread holds this scratch.
                lease.get().planes.ensure(
                    {std::int64_t(t), std::int64_t(round % 100)}, 8);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    // Every scratch came back; at most one per thread was ever live.
    EXPECT_LE(arena.idleCount(), kThreads);
    EXPECT_GE(arena.idleCount(), 1u);
}

// -- CachedPlanes rebuild avoidance ---------------------------------------

TEST(CachedPlanes, RepeatedColumnSkipsRebuild)
{
    CachedPlanes cached;
    const std::vector<std::int64_t> x{3, -1, 7, 0};
    const std::vector<std::int64_t> y{3, -1, 7, 1};

    const PackedPlanes &first = cached.ensure(x, 8);
    EXPECT_EQ(cached.buildCount(), 1u);
    // Same column, same width: no rebuild, same planes object.
    const PackedPlanes &second = cached.ensure(x, 8);
    EXPECT_EQ(cached.buildCount(), 1u);
    EXPECT_EQ(&first, &second);
    // Width change forces a rebuild even for identical values.
    cached.ensure(x, 16);
    EXPECT_EQ(cached.buildCount(), 2u);
    // Value change forces a rebuild.
    cached.ensure(y, 16);
    EXPECT_EQ(cached.buildCount(), 3u);
    // invalidate() drops the key.
    cached.invalidate();
    cached.ensure(y, 16);
    EXPECT_EQ(cached.buildCount(), 4u);
}

TEST(CachedPlanes, GemvWithUnchangedColumnReusesPlanes)
{
    // Thread-affine scratch recycling + CachedPlanes: back-to-back
    // GEMVs with the same input column (wq/wk/wv in the engine) must
    // serialise the column once, not three times.
    const std::size_t rows = 4, cols = 40;
    const auto tmpl = makeTemplate(cols);
    const HnArray array(tmpl, syntheticFp4Weights(rows * cols, 3), rows,
                        cols);
    const auto acts = randomActivations(cols, 8, 5);

    HnScratchArena arena;
    const auto first = array.gemvSerial(acts, 8, nullptr, nullptr,
                                        HnKernel::Packed, &arena);
    const auto second = array.gemvSerial(acts, 8, nullptr, nullptr,
                                         HnKernel::Packed, &arena);
    const auto third = array.gemvSerial(acts, 8, nullptr, nullptr,
                                        HnKernel::Simd, &arena);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, third);
    // The recycled scratch performed exactly one serialisation across
    // all three GEMVs.
    HnScratchLease lease(&arena);
    EXPECT_EQ(lease.get().planes.buildCount(), 1u);
}

// -- engine-level equality ------------------------------------------------

TEST(PackedKernel, EngineKernelsAgreeExactly)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 2024);

    for (std::size_t threads : {1u, 4u}) {
        for (HnKernel kernel : {HnKernel::Packed, HnKernel::Simd}) {
            ExecOptions scalar_exec;
            scalar_exec.threads = threads;
            scalar_exec.kernel = HnKernel::Scalar;
            Engine scalar_engine(cfg, weights, ExecPath::Hardwired, 8,
                                 scalar_exec);
            ExecOptions exec;
            exec.threads = threads;
            exec.kernel = kernel;
            Engine engine(cfg, weights, ExecPath::Hardwired, 8, exec);

            KvCache scalar_cache = scalar_engine.makeCache();
            KvCache cache = engine.makeCache();
            for (std::size_t token : {1u, 5u, 9u, 2u}) {
                const Vec a =
                    scalar_engine.forwardToken(token, scalar_cache);
                const Vec b = engine.forwardToken(token, cache);
                ASSERT_EQ(a.size(), b.size());
                for (std::size_t i = 0; i < a.size(); ++i)
                    ASSERT_EQ(b[i], a[i]) << "logit " << i;
            }
            expectActivityEq(engine.stats().hnActivity,
                             scalar_engine.stats().hnActivity);

            Sampler greedy_a({0.0, 0}, 0), greedy_b({0.0, 0}, 0);
            EXPECT_EQ(engine.generate({3, 1}, 6, greedy_b),
                      scalar_engine.generate({3, 1}, 6, greedy_a));
        }
    }
}

} // namespace
} // namespace hnlpu
