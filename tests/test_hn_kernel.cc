/**
 * @file
 * Bit-exactness sweep of the Packed (word-parallel) HN GEMV kernel
 * against the Scalar (per-wire emulation) kernel: outputs AND
 * HnActivity counters must be identical across activation widths,
 * ragged (cols % 64 != 0) shapes, dead-row masks, stuck-at faulted
 * weights and thread counts.  Also covers the PackedPlanes serializer,
 * the scratch arena recycling, and end-to-end engine equality under
 * ExecOptions::kernel.
 *
 * Registered under ctest label `kernel`; scripts/tier1.sh additionally
 * runs it under ThreadSanitizer to prove the per-GEMV PackedPlanes is
 * shared strictly read-only across row workers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "fault/fault_plan.hh"
#include "fault/model_faults.hh"
#include "hn/hn_array.hh"
#include "hn/hn_kernel.hh"
#include "model/model_zoo.hh"
#include "xformer/engine.hh"
#include "xformer/linear.hh"
#include "xformer/sampler.hh"

namespace hnlpu {
namespace {

SeaOfNeuronsTemplate
makeTemplate(std::size_t inputs)
{
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = inputs;
    tmpl.portsPerSlice = 16;
    tmpl.slackFactor = 4.0;
    return tmpl;
}

std::vector<std::int64_t>
randomActivations(std::size_t count, unsigned width, std::uint64_t seed)
{
    Rng rng(seed);
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;
    const std::int64_t lo = -hi - 1;
    std::vector<std::int64_t> acts(count);
    for (auto &a : acts)
        a = rng.uniformInt(lo, hi);
    return acts;
}

void
expectActivityEq(const HnActivity &a, const HnActivity &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.popcountBitOps, b.popcountBitOps);
    EXPECT_EQ(a.multiplyOps, b.multiplyOps);
    EXPECT_EQ(a.treeAddOps, b.treeAddOps);
}

// -- PackedPlanes vs BitSerializer ----------------------------------------

TEST(PackedPlanes, MatchesBitSerializerBitForBit)
{
    for (std::size_t lanes : {1u, 63u, 64u, 65u, 130u}) {
        for (unsigned width : {2u, 4u, 8u, 16u}) {
            const auto values =
                randomActivations(lanes, width, 90 + lanes + width);
            BitSerializer serializer(values, width);
            PackedPlanes planes;
            planes.build(values, width);
            ASSERT_EQ(planes.laneCount(), lanes);
            ASSERT_EQ(planes.wordsPerPlane(), (lanes + 63) / 64);
            for (unsigned bit = 0; bit < width; ++bit) {
                const auto reference = serializer.plane(bit);
                const std::uint64_t *words = planes.plane(bit);
                EXPECT_EQ(planes.isSignPlane(bit),
                          serializer.isSignPlane(bit));
                for (std::size_t i = 0; i < lanes; ++i) {
                    const bool packed_bit =
                        (words[i / 64] >> (i % 64)) & 1;
                    ASSERT_EQ(packed_bit, bool(reference[i]))
                        << "lanes " << lanes << " width " << width
                        << " bit " << bit << " lane " << i;
                }
                // Tail lanes beyond laneCount() must be zero so mask
                // AND-popcounts never see ghost wires.
                for (std::size_t i = lanes;
                     i < planes.wordsPerPlane() * 64; ++i) {
                    ASSERT_EQ((words[i / 64] >> (i % 64)) & 1, 0u);
                }
            }
        }
    }
}

TEST(PackedPlanes, RebuildReusesGeometryAndRejectsOverflow)
{
    PackedPlanes planes;
    planes.build({1, -2, 3}, 4);
    EXPECT_EQ(planes.width(), 4u);
    planes.build({7, -8}, 4); // shrink in place
    EXPECT_EQ(planes.laneCount(), 2u);
    EXPECT_DEATH(planes.build({128}, 8), "does not fit");
}

// -- neuron- and array-level bit-exactness --------------------------------

TEST(PackedKernel, NeuronMatchesSerialAcrossWidths)
{
    const std::size_t cols = 70; // deliberately not a multiple of 64
    const auto tmpl = makeTemplate(cols);
    const auto weights = syntheticFp4Weights(cols, 17);
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());
    const HardwiredNeuron neuron(std::move(*topo));

    for (unsigned width : {4u, 8u, 16u}) {
        const auto acts = randomActivations(cols, width, width);
        HnActivity serial_act, packed_act;
        const std::int64_t serial =
            neuron.computeSerial(acts, width, &serial_act);
        PackedPlanes planes;
        planes.build(acts, width);
        const std::int64_t packed =
            neuron.computePacked(planes, &packed_act);
        EXPECT_EQ(packed, serial) << "width " << width;
        EXPECT_EQ(packed, neuron.computeReference(acts));
        expectActivityEq(packed_act, serial_act);
    }
}

TEST(PackedKernel, ArraySweepWidthsShapesThreadsAndDeadRows)
{
    for (std::size_t cols : {33u, 64u, 100u}) {
        for (unsigned width : {4u, 8u, 16u}) {
            const std::size_t rows = 12;
            const auto tmpl = makeTemplate(cols);
            const auto weights =
                syntheticFp4Weights(rows * cols, 1000 + cols + width);
            const std::vector<std::uint32_t> dead{1, 7, 11};
            const HnArray array(tmpl, weights, rows, cols, dead);
            const auto acts =
                randomActivations(cols, width, cols * width);

            HnActivity scalar_act, packed_act;
            const auto scalar =
                array.gemvSerial(acts, width, &scalar_act, nullptr,
                                 HnKernel::Scalar);
            const auto packed =
                array.gemvSerial(acts, width, &packed_act, nullptr,
                                 HnKernel::Packed);
            EXPECT_EQ(packed, scalar)
                << "cols " << cols << " width " << width;
            EXPECT_EQ(packed, array.gemvReference(acts));
            expectActivityEq(packed_act, scalar_act);
            for (std::uint32_t r : dead)
                EXPECT_EQ(packed[r], 0);

            // Multi-threaded Packed: same planes shared read-only by
            // all workers, still bit-exact (incl. merged counters).
            ThreadPool pool(4);
            HnActivity pooled_act;
            const auto pooled =
                array.gemvSerial(acts, width, &pooled_act, &pool,
                                 HnKernel::Packed);
            EXPECT_EQ(pooled, scalar);
            expectActivityEq(pooled_act, scalar_act);
        }
    }
}

TEST(PackedKernel, RealGemvMatchesScalarExactly)
{
    const std::size_t rows = 9, cols = 77;
    const auto tmpl = makeTemplate(cols);
    const auto weights = syntheticFp4Weights(rows * cols, 23);
    const HnArray array(tmpl, weights, rows, cols);

    Vec x(cols);
    for (std::size_t i = 0; i < cols; ++i)
        x[i] = std::sin(double(i) * 0.7) * 2.0;

    const auto scalar = array.gemvReal(x, 8, nullptr, nullptr,
                                       HnKernel::Scalar);
    const auto packed = array.gemvReal(x, 8, nullptr, nullptr,
                                       HnKernel::Packed);
    ASSERT_EQ(scalar.size(), packed.size());
    for (std::size_t r = 0; r < rows; ++r)
        EXPECT_EQ(packed[r], scalar[r]) << "row " << r; // bit-identical
}

// -- faulted arrays -------------------------------------------------------

TEST(PackedKernel, StuckAtFaultedLinearStaysBitExact)
{
    FaultModelParams params;
    params.seed = 99;
    params.stuckBitRate = 0.03;
    params.deadRowRate = 0.1;
    const FaultInjector injector(params);

    const Linear clean = Linear::random(24, 70, 7);
    const Linear faulty = applyToLinear(injector, clean, "kernel.sweep");

    Vec x(70);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::cos(double(i)) * 1.5;

    for (unsigned width : {4u, 8u, 16u}) {
        HnActivity scalar_act, packed_act;
        const Vec scalar =
            faulty.forward(x, ExecPath::Hardwired, width, &scalar_act,
                           nullptr, HnKernel::Scalar);
        const Vec packed =
            faulty.forward(x, ExecPath::Hardwired, width, &packed_act,
                           nullptr, HnKernel::Packed);
        ASSERT_EQ(scalar.size(), packed.size());
        for (std::size_t r = 0; r < scalar.size(); ++r)
            EXPECT_EQ(packed[r], scalar[r]) << "row " << r;
        expectActivityEq(packed_act, scalar_act);
        for (std::uint32_t r : faulty.deadRows())
            EXPECT_EQ(packed[r], 0.0);
    }
}

// -- scratch arena --------------------------------------------------------

TEST(ScratchArena, RecyclesScratchesAcrossLeases)
{
    HnScratchArena arena;
    EXPECT_EQ(arena.idleCount(), 0u);
    {
        HnScratchLease a(&arena);
        HnScratchLease b(&arena); // concurrent leases get distinct ones
        EXPECT_NE(&a.get(), &b.get());
        EXPECT_EQ(arena.idleCount(), 0u);
    }
    EXPECT_EQ(arena.idleCount(), 2u);
    {
        HnScratchLease c(&arena); // reuses a parked scratch
        EXPECT_EQ(arena.idleCount(), 1u);
    }
    EXPECT_EQ(arena.idleCount(), 2u);
}

TEST(ScratchArena, ArrayGemvParksScratchForReuse)
{
    const std::size_t rows = 4, cols = 40;
    const auto tmpl = makeTemplate(cols);
    const HnArray array(tmpl, syntheticFp4Weights(rows * cols, 3), rows,
                        cols);
    const auto acts = randomActivations(cols, 8, 5);

    HnScratchArena arena;
    const auto first = array.gemvSerial(acts, 8, nullptr, nullptr,
                                        HnKernel::Packed, &arena);
    EXPECT_EQ(arena.idleCount(), 1u);
    const auto second = array.gemvSerial(acts, 8, nullptr, nullptr,
                                         HnKernel::Packed, &arena);
    EXPECT_EQ(arena.idleCount(), 1u); // same scratch went round-trip
    EXPECT_EQ(first, second);
}

// -- engine-level equality ------------------------------------------------

TEST(PackedKernel, EngineScalarAndPackedKernelsAgreeExactly)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 2024);

    for (std::size_t threads : {1u, 4u}) {
        ExecOptions scalar_exec;
        scalar_exec.threads = threads;
        scalar_exec.kernel = HnKernel::Scalar;
        ExecOptions packed_exec;
        packed_exec.threads = threads;
        packed_exec.kernel = HnKernel::Packed;

        Engine scalar_engine(cfg, weights, ExecPath::Hardwired, 8,
                             scalar_exec);
        Engine packed_engine(cfg, weights, ExecPath::Hardwired, 8,
                             packed_exec);

        KvCache scalar_cache = scalar_engine.makeCache();
        KvCache packed_cache = packed_engine.makeCache();
        for (std::size_t token : {1u, 5u, 9u, 2u}) {
            const Vec a =
                scalar_engine.forwardToken(token, scalar_cache);
            const Vec b =
                packed_engine.forwardToken(token, packed_cache);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                ASSERT_EQ(b[i], a[i]) << "logit " << i;
        }
        expectActivityEq(packed_engine.stats().hnActivity,
                         scalar_engine.stats().hnActivity);

        Sampler greedy_a({0.0, 0}, 0), greedy_b({0.0, 0}, 0);
        EXPECT_EQ(packed_engine.generate({3, 1}, 6, greedy_b),
                  scalar_engine.generate({3, 1}, 6, greedy_a));
    }
}

} // namespace
} // namespace hnlpu
