/**
 * @file
 * Tests for the Hardwired-Neuron Compiler: weight round-trip through
 * the wire topology, DRC-style violation collection, metalization
 * statistics and the sign-off routing-density estimate (paper Section
 * 3.2: "routing density on ME layers (M8-M11) remains below 70%").
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hn/hn_array.hh"
#include "hncc/compiler.hh"
#include "model/model_zoo.hh"

namespace hnlpu {
namespace {

SeaOfNeuronsTemplate
tmplFor(std::size_t fan_in, double slack = 2.0)
{
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = fan_in;
    tmpl.portsPerSlice = 64;
    tmpl.slackFactor = slack;
    return tmpl;
}

TEST(WireTopologyRoundTrip, RecoverWeightsIsInverse)
{
    const std::size_t fan_in = 512;
    auto weights = syntheticFp4Weights(fan_in, 11);
    auto topo = WireTopology::program(tmplFor(fan_in), weights);
    ASSERT_TRUE(topo.has_value());
    const auto recovered = topo->recoverWeights();
    ASSERT_EQ(recovered.size(), weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i].isZero())
            EXPECT_TRUE(recovered[i].isZero()) << i;
        else
            EXPECT_EQ(recovered[i].code(), weights[i].code()) << i;
    }
}

class CompilerTest : public ::testing::Test
{
  protected:
    HnCompiler compiler_{n5Technology()};
};

TEST_F(CompilerTest, CleanCompileCollectsStats)
{
    const std::size_t rows = 16, cols = 256;
    auto weights = syntheticFp4Weights(rows * cols, 3);
    const auto plan = compiler_.compile(tmplFor(cols), weights, rows,
                                        cols);
    EXPECT_TRUE(plan.drcClean());
    const auto &stats = plan.stats();
    EXPECT_EQ(stats.neurons, rows);
    EXPECT_EQ(stats.wires + stats.zeroWeights, rows * cols);
    EXPECT_GT(stats.totalWireLengthMm, 0.0);
    EXPECT_GT(stats.slackUtilisation, 0.1);
    EXPECT_LE(stats.slackUtilisation, 1.0);
    std::size_t hist_total = 0;
    for (auto count : stats.valueHistogram)
        hist_total += count;
    EXPECT_EQ(hist_total, rows * cols);
    EXPECT_EQ(plan.topologies().size(), rows);
}

TEST_F(CompilerTest, GptOssFanInMeetsSignOffDensity)
{
    // One hidden-width neuron row at the paper's dimensions: routing
    // density must land under the 70% sign-off limit, but not absurdly
    // under it (the paper reports margins, not emptiness).
    const std::size_t rows = 8, cols = 2880;
    auto weights = syntheticFp4Weights(rows * cols, 7);
    const auto plan = compiler_.compile(tmplFor(cols), weights, rows,
                                        cols);
    EXPECT_TRUE(plan.drcClean());
    EXPECT_LT(plan.stats().routingDensity, 0.70);
    EXPECT_GT(plan.stats().routingDensity, 0.30);
}

TEST_F(CompilerTest, OverflowBecomesViolationNotDeath)
{
    // Severely undersized slack: programming must fail per-neuron and
    // be reported as violations.
    const std::size_t rows = 4, cols = 2048;
    std::vector<Fp4> weights(rows * cols, Fp4::quantize(1.0));
    const auto plan = compiler_.compile(tmplFor(cols, /*slack=*/0.5),
                                        weights, rows, cols);
    EXPECT_FALSE(plan.drcClean());
    EXPECT_GE(plan.violations().size(), rows);
    for (const auto &v : plan.violations())
        EXPECT_FALSE(v.message.empty());
}

TEST_F(CompilerTest, DensityViolationWhenLimitTightened)
{
    MetalizationParams strict;
    strict.densityLimit = 0.01;
    HnCompiler tight(n5Technology(), strict);
    const std::size_t rows = 4, cols = 512;
    auto weights = syntheticFp4Weights(rows * cols, 5);
    const auto plan = tight.compile(tmplFor(cols), weights, rows, cols);
    EXPECT_FALSE(plan.drcClean());
    EXPECT_NE(plan.violations().back().message.find("density"),
              std::string::npos);
}

TEST_F(CompilerTest, ScriptEmissionDeterministicAndBounded)
{
    const std::size_t rows = 4, cols = 64;
    auto weights = syntheticFp4Weights(rows * cols, 9);
    const auto plan = compiler_.compile(tmplFor(cols), weights, rows,
                                        cols);
    const std::string a = plan.emitScript(16);
    const std::string b = plan.emitScript(16);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("route_embedding_wire"), std::string::npos);
    EXPECT_NE(a.find("elided"), std::string::npos);
    EXPECT_NE(a.find("DRC clean"), std::string::npos);
    // At most 16 wire commands.
    std::size_t count = 0, pos = 0;
    while ((pos = a.find("route_embedding_wire", pos)) !=
           std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_LE(count, 16u);
}

TEST_F(CompilerTest, CompiledTopologiesComputeCorrectly)
{
    // The compiler's topologies drive real Hardwired-Neurons: verify
    // one against the direct dot product.
    const std::size_t rows = 2, cols = 96;
    auto weights = syntheticFp4Weights(rows * cols, 21);
    const auto plan = compiler_.compile(tmplFor(cols), weights, rows,
                                        cols);
    ASSERT_TRUE(plan.drcClean());

    HardwiredNeuron neuron(plan.topologies()[1]);
    Rng rng(4);
    std::vector<std::int64_t> x(cols);
    std::int64_t expected = 0;
    for (std::size_t i = 0; i < cols; ++i) {
        x[i] = rng.uniformInt(-127, 127);
        expected += std::int64_t(weights[cols + i].twiceValue()) * x[i];
    }
    EXPECT_EQ(neuron.computeSerial(x, 8), expected);
}

TEST_F(CompilerTest, SlackSweepTradesAreaForRobustness)
{
    // More slack -> more grounded ports but the same wire count; a
    // skewed weight distribution that overflows tight slack compiles
    // cleanly with generous slack.
    const std::size_t rows = 2, cols = 2048;
    std::vector<Fp4> skewed;
    for (std::size_t i = 0; i < rows * cols; ++i) {
        skewed.push_back(i % 10 == 0 ? Fp4::quantize(-2.0)
                                     : Fp4::quantize(1.0));
    }
    const auto tight = compiler_.compile(tmplFor(cols, 1.0), skewed,
                                         rows, cols);
    const auto roomy = compiler_.compile(tmplFor(cols, 2.0), skewed,
                                         rows, cols);
    EXPECT_FALSE(tight.drcClean());
    EXPECT_TRUE(roomy.drcClean());
    EXPECT_GT(roomy.stats().groundedPorts, 0u);
}

} // namespace
} // namespace hnlpu
