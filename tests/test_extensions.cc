/**
 * @file
 * Tests for the paper's Section 8 future-work features implemented in
 * this library: LoRA side-channel adapters for post-deployment
 * updates, and the sequence-scoring / text-embedding use modes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/model_zoo.hh"
#include "xformer/engine.hh"
#include "xformer/lora.hh"

namespace hnlpu {
namespace {

class LoraTest : public ::testing::Test
{
  protected:
    LoraTest()
        : cfg_(tinyTestModel()),
          weights_(ModelWeights::randomInit(cfg_, 31))
    {
    }

    TransformerConfig cfg_;
    ModelWeights weights_;
};

TEST_F(LoraTest, ZeroAdapterIsIdentity)
{
    Linear frozen = Linear::random(16, 24, 1);
    LoraAdapter zero(16, 24, 4);
    Rng rng(2);
    Vec x(24);
    for (double &v : x)
        v = rng.gaussian(0.0, 1.0);
    const Vec plain = frozen.forward(x, ExecPath::Reference);
    const Vec adapted = zero.apply(frozen, x, ExecPath::Reference);
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_DOUBLE_EQ(adapted[i], plain[i]);
}

TEST_F(LoraTest, RandomAdapterShiftsOutput)
{
    Linear frozen = Linear::random(16, 24, 1);
    LoraAdapter adapter = LoraAdapter::random(16, 24, 4, 9);
    Vec x(24, 0.5);
    const Vec plain = frozen.forward(x, ExecPath::Reference);
    const Vec adapted = adapter.apply(frozen, x, ExecPath::Reference);
    double diff = 0.0;
    for (std::size_t i = 0; i < plain.size(); ++i)
        diff += std::fabs(adapted[i] - plain[i]);
    EXPECT_GT(diff, 1e-3);
    // The delta itself must equal adapted - plain.
    const Vec d = adapter.delta(x);
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_NEAR(adapted[i], plain[i] + d[i], 1e-12);
}

TEST_F(LoraTest, SideChannelBudgetAboutOnePercent)
{
    // Rank-8 adapters on Wq/Wo of gpt-oss: the paper budgets ~1%
    // field-programmable HNs at the side channel.
    const auto big = gptOss120b();
    LoraSet set = LoraSet::zeros(big.layerCount, big.hiddenSize,
                                 big.qProjectionDim(), 8);
    const double overhead =
        set.overheadFraction(big.hiddenSize, big.qProjectionDim());
    EXPECT_GT(overhead, 0.001);
    EXPECT_LT(overhead, 0.02);
}

TEST_F(LoraTest, EngineWithZeroLoraMatchesBaseline)
{
    Engine base(cfg_, weights_, ExecPath::Reference);
    Engine adapted(cfg_, weights_, ExecPath::Reference);
    LoraSet zeros = LoraSet::zeros(cfg_.layerCount, cfg_.hiddenSize,
                                   cfg_.qProjectionDim(), 2);
    adapted.attachLora(&zeros);

    KvCache a = base.makeCache(), b = adapted.makeCache();
    const Vec la = base.forwardToken(5, a);
    const Vec lb = adapted.forwardToken(5, b);
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_DOUBLE_EQ(la[i], lb[i]);
}

TEST_F(LoraTest, FieldProgrammingChangesGeneration)
{
    Engine engine(cfg_, weights_, ExecPath::Reference);
    LoraSet set = LoraSet::zeros(cfg_.layerCount, cfg_.hiddenSize,
                                 cfg_.qProjectionDim(), 2);
    engine.attachLora(&set);

    Sampler greedy_a({0.0, 0}, 0);
    const auto before = engine.generate({1, 2, 3}, 10, greedy_a);

    // "Field-program" the side channel: write a strong update into
    // layer 0's Wq adapter.
    Rng rng(77);
    for (double &v : set.wq[0].aMatrix().data())
        v = rng.gaussian(0.0, 0.5);
    for (double &v : set.wq[0].bMatrix().data())
        v = rng.gaussian(0.0, 0.5);

    Sampler greedy_b({0.0, 0}, 0);
    const auto after = engine.generate({1, 2, 3}, 10, greedy_b);
    EXPECT_NE(before, after);

    // Detaching restores the frozen behaviour.
    engine.attachLora(nullptr);
    Sampler greedy_c({0.0, 0}, 0);
    EXPECT_EQ(engine.generate({1, 2, 3}, 10, greedy_c), before);
}

TEST_F(LoraTest, HardwiredPathAcceptsSideChannel)
{
    Engine hw(cfg_, weights_, ExecPath::Hardwired, 12);
    LoraSet set = LoraSet::zeros(cfg_.layerCount, cfg_.hiddenSize,
                                 cfg_.qProjectionDim(), 2);
    hw.attachLora(&set);
    KvCache cache = hw.makeCache();
    const Vec logits = hw.forwardToken(3, cache);
    EXPECT_EQ(logits.size(), cfg_.vocabSize);
    for (double l : logits)
        EXPECT_TRUE(std::isfinite(l));
}

class UseModesTest : public ::testing::Test
{
  protected:
    UseModesTest()
        : cfg_(tinyTestModel()),
          weights_(ModelWeights::randomInit(cfg_, 41)),
          engine_(cfg_, weights_, ExecPath::Reference)
    {
    }

    TransformerConfig cfg_;
    ModelWeights weights_;
    Engine engine_;
};

TEST_F(UseModesTest, GreedySequencesScoreHigherThanPerturbed)
{
    // Build a greedy continuation, then perturb one forced token; the
    // greedy sequence must not score lower.
    Sampler greedy({0.0, 0}, 0);
    Engine gen(cfg_, weights_, ExecPath::Reference);
    const auto continuation = gen.generate({4, 9}, 6, greedy);

    std::vector<std::size_t> greedy_seq{4, 9};
    greedy_seq.insert(greedy_seq.end(), continuation.begin(),
                      continuation.end());
    std::vector<std::size_t> perturbed = greedy_seq;
    perturbed[4] = (perturbed[4] + 17) % cfg_.vocabSize;

    Engine scorer_a(cfg_, weights_, ExecPath::Reference);
    Engine scorer_b(cfg_, weights_, ExecPath::Reference);
    EXPECT_GE(scorer_a.scoreSequence(greedy_seq),
              scorer_b.scoreSequence(perturbed));
}

TEST_F(UseModesTest, ScoresAreLogProbabilities)
{
    const double score = engine_.scoreSequence({1, 2, 3, 4});
    EXPECT_LT(score, 0.0);
    EXPECT_TRUE(std::isfinite(score));
}

TEST_F(UseModesTest, EmbeddingsDeterministicAndOrderSensitive)
{
    Engine a(cfg_, weights_, ExecPath::Reference);
    Engine b(cfg_, weights_, ExecPath::Reference);
    const Vec e1 = a.embedSequence({5, 6, 7});
    const Vec e2 = b.embedSequence({5, 6, 7});
    ASSERT_EQ(e1.size(), cfg_.hiddenSize);
    for (std::size_t i = 0; i < e1.size(); ++i)
        EXPECT_DOUBLE_EQ(e1[i], e2[i]);

    Engine c(cfg_, weights_, ExecPath::Reference);
    const Vec e3 = c.embedSequence({7, 6, 5});
    double diff = 0.0;
    for (std::size_t i = 0; i < e1.size(); ++i)
        diff += std::fabs(e1[i] - e3[i]);
    EXPECT_GT(diff, 1e-6);
}

TEST_F(UseModesTest, EmbeddingWorksOnHardwiredPath)
{
    Engine hw(cfg_, weights_, ExecPath::Hardwired, 12);
    Engine ref(cfg_, weights_, ExecPath::Reference);
    const Vec a = hw.embedSequence({2, 4, 8});
    const Vec b = ref.embedSequence({2, 4, 8});
    double cos_num = 0, cos_a = 0, cos_b = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cos_num += a[i] * b[i];
        cos_a += a[i] * a[i];
        cos_b += b[i] * b[i];
    }
    EXPECT_GT(cos_num / std::sqrt(cos_a * cos_b), 0.99);
}

} // namespace
} // namespace hnlpu
