/**
 * @file
 * Fault-tolerant serving router tests: typed admission control,
 * deadline cancellation with slot reclaim, live fault injection during
 * serving (spare-repaired shards keep serving bit-identically,
 * unrepairable shards are drained and failed over), graceful
 * degradation policy, and scheduling determinism.
 *
 * Registered under ctest label `router`; scripts/tier1.sh additionally
 * runs it under ThreadSanitizer (run() steps shards on concurrent
 * threads) and UndefinedBehaviorSanitizer.  No death tests here --
 * EXPECT_DEATH forks don't mix with TSan; the fatal-wrapper death
 * tests live in test_xformer.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault_plan.hh"
#include "fault/model_faults.hh"
#include "model/model_zoo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/router.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"

namespace hnlpu::serve {
namespace {

/** Clean solo-engine transcript the router must reproduce. */
std::vector<std::size_t>
solo(const TransformerConfig &cfg, const ModelWeights &weights,
     const RouterRequest &request)
{
    Engine engine(cfg, weights, ExecPath::Reference);
    Sampler sampler(request.sampler, request.seed);
    return engine.generate(request.prompt, request.decodeTokens,
                           sampler);
}

RouterRequest
makeRequest(std::vector<std::size_t> prompt, std::size_t decode,
            RequestClass cls = RequestClass::Batch,
            std::size_t arrival = 0)
{
    RouterRequest request;
    request.prompt = std::move(prompt);
    request.decodeTokens = decode;
    request.arrivalStep = arrival;
    request.cls = cls;
    return request;
}

// -- Admission control ----------------------------------------------------

TEST(Router, TypedRejectionsAtEnqueue)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 101);
    RouterConfig rc;
    rc.shards = 1;
    rc.batchQueueCapacity = 1;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);

    EXPECT_EQ(router.enqueue(makeRequest({}, 3)).reason,
              RejectReason::EmptyPrompt);
    EXPECT_EQ(router.enqueue(makeRequest({1, 2}, 0)).reason,
              RejectReason::ZeroDecodeTokens);
    EXPECT_EQ(
        router.enqueue(makeRequest({1, cfg.vocabSize}, 3)).reason,
        RejectReason::TokenOutOfVocab);

    RouterRequest bad_sampler = makeRequest({1, 2}, 3);
    bad_sampler.sampler.temperature = -0.5;
    EXPECT_EQ(router.enqueue(bad_sampler).reason,
              RejectReason::InvalidSampler);
    bad_sampler.sampler.temperature = 1.0;
    bad_sampler.sampler.topK = cfg.vocabSize + 1;
    EXPECT_EQ(router.enqueue(bad_sampler).reason,
              RejectReason::InvalidSampler);

    // A TTFT budget below the prompt length, or a total budget below
    // prompt + decode - 1, can never be met.
    RouterRequest tight = makeRequest({1, 2, 3}, 4);
    tight.ttftDeadlineSteps = 2;
    EXPECT_EQ(router.enqueue(tight).reason,
              RejectReason::DeadlineInfeasible);
    tight.ttftDeadlineSteps = 0;
    tight.deadlineSteps = 5; // min servable is 3 + 4 - 1 = 6
    EXPECT_EQ(router.enqueue(tight).reason,
              RejectReason::DeadlineInfeasible);

    // Valid request fills the (capacity 1) batch queue...
    EXPECT_TRUE(router.enqueue(makeRequest({1, 2}, 2)).admitted());
    // ...so the next one is backpressured, not aborted.
    EXPECT_EQ(router.enqueue(makeRequest({3, 4}, 2)).reason,
              RejectReason::QueueFull);
    // The interactive queue is a separate bounded resource.
    EXPECT_TRUE(
        router.enqueue(makeRequest({5}, 2, RequestClass::Interactive))
            .admitted());

    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), 10u);
    std::size_t shed = 0, completed = 0;
    for (const RouterOutcome &out : outcomes) {
        if (out.status == RequestStatus::Shed) {
            ++shed;
            EXPECT_NE(out.reason, RejectReason::None);
        } else {
            ++completed;
            EXPECT_EQ(out.status, RequestStatus::Completed);
        }
    }
    EXPECT_EQ(shed, 8u);
    EXPECT_EQ(completed, 2u);
    EXPECT_EQ(router.stats().byReason[std::size_t(
                  RejectReason::QueueFull)],
              1u);
    EXPECT_EQ(router.stats().byReason[std::size_t(
                  RejectReason::InvalidSampler)],
              2u);
}

TEST(Router, ArrivalOrderViolationIsTyped)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 102);
    RouterConfig rc;
    rc.shards = 1;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);
    EXPECT_TRUE(
        router.enqueue(makeRequest({1}, 1, RequestClass::Batch, 5))
            .admitted());
    EXPECT_EQ(
        router.enqueue(makeRequest({2}, 1, RequestClass::Batch, 4))
            .reason,
        RejectReason::ArrivalOrderViolation);
    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, RequestStatus::Completed);
    EXPECT_EQ(outcomes[1].status, RequestStatus::Shed);
}

// -- Clean multi-shard serving --------------------------------------------

TEST(Router, CleanRunBitIdenticalToSoloGenerate)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 103);
    RouterConfig rc;
    rc.shards = 3;
    rc.slotsPerShard = 2;
    ExecOptions exec;
    exec.threads = 2; // engine pools under the router's shard threads
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, exec, rc);

    std::vector<RouterRequest> trace;
    trace.push_back(makeRequest({1, 5, 9}, 4));
    trace.push_back(
        makeRequest({2}, 6, RequestClass::Interactive));
    trace.back().sampler = {0.8, 5};
    trace.back().seed = 11;
    trace.push_back(makeRequest({7, 3}, 2));
    trace.push_back(makeRequest({4, 8, 12, 16}, 5));
    trace.back().sampler = {1.1, 0};
    trace.back().seed = 23;
    trace.push_back(
        makeRequest({6}, 3, RequestClass::Interactive, 2));
    trace.push_back(makeRequest({10, 11}, 4, RequestClass::Batch, 4));

    for (const RouterRequest &request : trace)
        ASSERT_TRUE(router.enqueue(request).admitted());
    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(outcomes[i].status, RequestStatus::Completed);
        EXPECT_EQ(outcomes[i].tokens, solo(cfg, clean, trace[i]))
            << "request " << i;
        EXPECT_EQ(outcomes[i].retries, 0u);
    }
    EXPECT_EQ(router.stats().completed, trace.size());
    EXPECT_EQ(router.stats().failovers, 0u);
    EXPECT_FALSE(router.degradedMode());
}

// -- Live fault injection during serving ----------------------------------

TEST(Router, SpareRepairedFaultKeepsShardServingBitIdentical)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 104);

    // Premise: with ample spare rows and no stuck bits, every dead row
    // is repaired and the rebuilt weights are functionally identical.
    FaultModelParams repairable;
    repairable.seed = 21;
    repairable.deadRowRate = 0.02;
    repairable.spareRows = 64;
    {
        FaultInjector injector(repairable);
        ModelFaultStats fstats;
        const auto twin = applyToModel(clean, cfg, injector, &fstats);
        ASSERT_GT(fstats.repairedRows, 0u);
        ASSERT_EQ(fstats.deadRows, 0u);
        ASSERT_EQ(fstats.stuckBits, 0u);
    }

    RouterConfig rc;
    rc.shards = 2;
    rc.slotsPerShard = 1;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);

    std::vector<RouterRequest> trace;
    for (std::size_t i = 0; i < 4; ++i)
        trace.push_back(makeRequest({1 + i, 2, 3}, 6));
    for (const RouterRequest &request : trace)
        ASSERT_TRUE(router.enqueue(request).admitted());

    ShardFaultEvent event;
    event.step = 3; // mid-decode of the first wave
    event.shard = 0;
    event.modelFaults = repairable;
    router.scheduleFault(event);

    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(outcomes[i].status, RequestStatus::Completed);
        EXPECT_EQ(outcomes[i].tokens, solo(cfg, clean, trace[i]))
            << "request " << i;
    }
    // The shard probed bit-identical and kept serving: no failover,
    // no retry, still healthy.
    EXPECT_EQ(router.shardState(0), ShardState::Healthy);
    EXPECT_EQ(router.stats().faultsInjected, 1u);
    EXPECT_EQ(router.stats().probeFailures, 0u);
    EXPECT_EQ(router.stats().failovers, 0u);
    EXPECT_FALSE(router.degradedMode());
}

TEST(Router, UnrepairableFaultDrainsShardAndFailsOverBitIdentical)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 105);

    FaultModelParams corrupting;
    corrupting.seed = 9;
    corrupting.stuckBitRate = 0.05;
    corrupting.deadRowRate = 0.05;
    corrupting.spareRows = 0;

    RouterConfig rc;
    rc.shards = 2;
    rc.slotsPerShard = 1;

    // Premise: the corrupted twin diverges on the router's greedy
    // health probe, so the probe must detect it.
    {
        FaultInjector injector(corrupting);
        const auto twin = applyToModel(clean, cfg, injector, nullptr);
        Engine clean_engine(cfg, clean, ExecPath::Reference);
        Engine twin_engine(cfg, twin, ExecPath::Reference);
        Sampler g1(SamplerConfig{0.0, 0}, 0);
        Sampler g2(SamplerConfig{0.0, 0}, 0);
        ASSERT_NE(
            twin_engine.generate(rc.probePrompt, rc.probeTokens, g2),
            clean_engine.generate(rc.probePrompt, rc.probeTokens, g1));
    }

    obs::MetricsRegistry metrics;
    obs::Tracer tracer;
    const obs::Sink sink{&metrics, &tracer};
    ExecOptions exec;
    exec.sink = &sink;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, exec, rc);

    std::vector<RouterRequest> trace;
    for (std::size_t i = 0; i < 4; ++i)
        trace.push_back(makeRequest({1 + i, 2, 3}, 6));
    for (const RouterRequest &request : trace)
        ASSERT_TRUE(router.enqueue(request).admitted());

    ShardFaultEvent event;
    event.step = 4; // shard 0 is mid-decode on request 0
    event.shard = 0;
    event.modelFaults = corrupting;
    router.scheduleFault(event);

    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(outcomes[i].status, RequestStatus::Completed)
            << "request " << i;
        EXPECT_EQ(outcomes[i].tokens, solo(cfg, clean, trace[i]))
            << "request " << i;
        // Everything lands on the surviving shard eventually; the
        // displaced request reports its retry.
        EXPECT_EQ(outcomes[i].shard, 1u) << "request " << i;
    }
    EXPECT_EQ(outcomes[0].retries, 1u);

    const RouterStats &stats = router.stats();
    EXPECT_EQ(router.shardState(0), ShardState::Drained);
    EXPECT_EQ(router.shardState(1), ShardState::Healthy);
    EXPECT_EQ(stats.faultsInjected, 1u);
    EXPECT_EQ(stats.probeFailures, 1u);
    EXPECT_EQ(stats.failovers, 1u);
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_FALSE(stats.degradedMode);
    ASSERT_EQ(stats.recoveries.size(), 1u);
    EXPECT_EQ(stats.recoveries[0].shard, 0u);
    EXPECT_EQ(stats.recoveries[0].inflight, 1u);
    EXPECT_GE(stats.recoveries[0].recoveredStep,
              stats.recoveries[0].faultStep);

    // Observability mirrors the stats and the step loop emits spans.
    EXPECT_EQ(metrics.counter("router.failovers")->value(),
              stats.failovers);
    EXPECT_EQ(metrics.counter("router.retries")->value(),
              stats.retries);
    EXPECT_EQ(metrics.counter("router.faults_injected")->value(),
              stats.faultsInjected);
    EXPECT_GT(tracer.eventCount(), 0u);
    const std::string trace_json = tracer.toJson();
    EXPECT_NE(trace_json.find("router.step"), std::string::npos);
    EXPECT_NE(trace_json.find("router.retry"), std::string::npos);
}

TEST(Router, RetryBudgetZeroShedsDisplacedRequests)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 106);
    RouterConfig rc;
    rc.shards = 2;
    rc.slotsPerShard = 1;
    rc.maxRetries = 0;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);

    ASSERT_TRUE(router.enqueue(makeRequest({1, 2}, 6)).admitted());
    ASSERT_TRUE(router.enqueue(makeRequest({3, 4}, 6)).admitted());

    ShardFaultEvent event;
    event.step = 3;
    event.shard = 0;
    event.killLink = true; // severed CXL link drains the shard
    router.scheduleFault(event);

    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, RequestStatus::Shed);
    EXPECT_EQ(outcomes[0].reason, RejectReason::RetriesExhausted);
    EXPECT_EQ(outcomes[1].status, RequestStatus::Completed);
    EXPECT_EQ(router.shardState(0), ShardState::Drained);
    EXPECT_EQ(router.stats().failovers, 1u);
    EXPECT_EQ(router.stats().retries, 0u);
}

// -- Deadlines ------------------------------------------------------------

TEST(Router, DeadlinesCancelQueuedAndMidDecodeAndReclaimSlots)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 107);
    RouterConfig rc;
    rc.shards = 1;
    rc.slotsPerShard = 1;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);

    // r0 occupies the only slot for steps 0..6 (prompt 2 + decode 6).
    const RouterRequest r0 = makeRequest({1, 2}, 6);
    // r1's first token can only come at step 8, past its TTFT budget:
    // cancelled while queued.
    RouterRequest r1 = makeRequest({3, 4}, 2);
    r1.ttftDeadlineSteps = 4;
    // r2 is admitted at step 7 and expires mid-decode at step 9 with a
    // partial transcript; its slot is reclaimed the same step.
    RouterRequest r2 = makeRequest({5, 6}, 6);
    r2.deadlineSteps = 9;
    // r3 then completes on the reclaimed slot.
    const RouterRequest r3 = makeRequest({7, 8}, 2);

    for (const RouterRequest &request : {r0, r1, r2, r3})
        ASSERT_TRUE(router.enqueue(request).admitted());
    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), 4u);

    EXPECT_EQ(outcomes[0].status, RequestStatus::Completed);
    EXPECT_EQ(outcomes[0].tokens, solo(cfg, clean, r0));

    EXPECT_EQ(outcomes[1].status, RequestStatus::Cancelled);
    EXPECT_EQ(outcomes[1].reason, RejectReason::DeadlineExpired);
    EXPECT_TRUE(outcomes[1].tokens.empty());
    EXPECT_EQ(outcomes[1].finishStep, 4u);

    EXPECT_EQ(outcomes[2].status, RequestStatus::Cancelled);
    EXPECT_EQ(outcomes[2].reason, RejectReason::DeadlineExpired);
    EXPECT_LT(outcomes[2].tokens.size(), r2.decodeTokens);
    EXPECT_EQ(outcomes[2].finishStep, 9u);

    EXPECT_EQ(outcomes[3].status, RequestStatus::Completed);
    EXPECT_EQ(outcomes[3].tokens, solo(cfg, clean, r3));

    EXPECT_EQ(router.stats().cancelled, 2u);
    EXPECT_EQ(router.stats().byReason[std::size_t(
                  RejectReason::DeadlineExpired)],
              2u);
}

TEST(Router, DeadlineSurvivorsMeetTheirBudgets)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 108);
    RouterConfig rc;
    rc.shards = 2;
    rc.slotsPerShard = 2;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);

    std::vector<RouterRequest> trace;
    for (std::size_t i = 0; i < 6; ++i) {
        RouterRequest request = makeRequest({1 + i, 2}, 3);
        request.ttftDeadlineSteps = 12;
        request.deadlineSteps = 20;
        trace.push_back(request);
        ASSERT_TRUE(router.enqueue(request).admitted());
    }
    const auto outcomes = router.run();
    for (const RouterOutcome &out : outcomes) {
        if (out.status != RequestStatus::Completed)
            continue;
        EXPECT_LE(out.firstTokenStep, out.arrivalStep + 12);
        EXPECT_LE(out.finishStep, out.arrivalStep + 20);
    }
}

// -- Graceful degradation -------------------------------------------------

TEST(Router, DegradedModeShedsBatchFirstAndServesInteractive)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 109);
    RouterConfig rc;
    rc.shards = 2;
    rc.slotsPerShard = 1;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);

    const RouterRequest interactive =
        makeRequest({1, 2}, 3, RequestClass::Interactive);
    const RouterRequest batch =
        makeRequest({3, 4}, 3, RequestClass::Batch);
    ASSERT_TRUE(router.enqueue(interactive).admitted());
    ASSERT_TRUE(router.enqueue(batch).admitted());

    // Both links turn lossy before the first step: no healthy shard
    // remains, but both still produce correct tokens.
    for (std::size_t shard = 0; shard < 2; ++shard) {
        ShardFaultEvent event;
        event.step = 0;
        event.shard = shard;
        event.linkFaults.seed = 7;
        event.linkFaults.retryProbability = 0.5;
        router.scheduleFault(event);
    }

    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, RequestStatus::Completed);
    EXPECT_EQ(outcomes[0].tokens, solo(cfg, clean, interactive));
    EXPECT_EQ(outcomes[1].status, RequestStatus::Shed);
    EXPECT_EQ(outcomes[1].reason, RejectReason::DegradedShed);
    EXPECT_TRUE(router.degradedMode());
    EXPECT_EQ(router.shardState(0), ShardState::Degraded);
    EXPECT_EQ(router.shardState(1), ShardState::Degraded);
}

TEST(Router, NoUsableShardShedsEverythingTyped)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 110);
    RouterConfig rc;
    rc.shards = 2;
    rc.slotsPerShard = 1;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);

    ASSERT_TRUE(
        router.enqueue(makeRequest({1}, 2, RequestClass::Interactive))
            .admitted());
    ASSERT_TRUE(router.enqueue(makeRequest({2}, 2)).admitted());
    for (std::size_t shard = 0; shard < 2; ++shard) {
        ShardFaultEvent event;
        event.step = 0;
        event.shard = shard;
        event.killLink = true;
        router.scheduleFault(event);
    }
    const auto outcomes = router.run();
    ASSERT_EQ(outcomes.size(), 2u);
    for (const RouterOutcome &out : outcomes) {
        EXPECT_EQ(out.status, RequestStatus::Shed);
        EXPECT_EQ(out.reason, RejectReason::NoUsableShard);
    }
    EXPECT_TRUE(router.degradedMode());
    EXPECT_EQ(router.stats().completed, 0u);
}

// -- Determinism ----------------------------------------------------------

TEST(Router, StepClockAndTokensDeterministicAcrossRuns)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 111);

    FaultModelParams corrupting;
    corrupting.seed = 9;
    corrupting.stuckBitRate = 0.05;
    corrupting.spareRows = 0;

    const auto runOnce = [&] {
        RouterConfig rc;
        rc.shards = 2;
        rc.slotsPerShard = 2;
        ExecOptions exec;
        exec.threads = 2;
        ServingRouter router(cfg, clean, ExecPath::Reference, 8, exec,
                             rc);
        for (std::size_t i = 0; i < 6; ++i) {
            RouterRequest request = makeRequest(
                {1 + i, 3, 5}, 4,
                i % 2 ? RequestClass::Interactive
                      : RequestClass::Batch,
                i / 2);
            request.seed = i;
            request.sampler = {0.7, 4};
            EXPECT_TRUE(router.enqueue(request).admitted());
        }
        ShardFaultEvent event;
        event.step = 3;
        event.shard = 1;
        event.modelFaults = corrupting;
        router.scheduleFault(event);
        return router.run();
    };

    const auto a = runOnce();
    const auto b = runOnce();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tokens, b[i].tokens) << "request " << i;
        EXPECT_EQ(int(a[i].status), int(b[i].status));
        EXPECT_EQ(a[i].admitStep, b[i].admitStep);
        EXPECT_EQ(a[i].firstTokenStep, b[i].firstTokenStep);
        EXPECT_EQ(a[i].finishStep, b[i].finishStep);
        EXPECT_EQ(a[i].shard, b[i].shard);
        EXPECT_EQ(a[i].retries, b[i].retries);
    }
}

// -- Metrics JSON ---------------------------------------------------------

TEST(Router, MetricsJsonContainsSchemaKeys)
{
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 112);
    RouterConfig rc;
    rc.shards = 1;
    ServingRouter router(cfg, clean, ExecPath::Reference, 8, {}, rc);
    ASSERT_TRUE(router.enqueue(makeRequest({1, 2}, 2)).admitted());
    (void)router.run();
    const std::string json = router.metricsJson();
    for (const char *key :
         {"goodput_tokens_per_second", "shed_rate", "ttft_seconds",
          "shed_by_reason", "shard_states", "recoveries",
          "requests_detail"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

} // namespace
} // namespace hnlpu::serve
