/**
 * @file
 * Tests for the fault-injection and graceful-degradation subsystem:
 * deterministic fault plans, dead-row masking on both execution paths,
 * spare-neuron repair, repair-aware yield, lossy/degraded fabric
 * behavior and degraded pipeline simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "dataflow/distributed.hh"
#include "econ/nre.hh"
#include "fault/fault_plan.hh"
#include "fault/model_faults.hh"
#include "fault/repair.hh"
#include "litho/wafer.hh"
#include "model/model_zoo.hh"
#include "noc/collectives.hh"
#include "pipeline/pipeline_sim.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"

namespace hnlpu {
namespace {

// -- fault plans ----------------------------------------------------------

TEST(FaultPlan, SameSeedSamePlanByteForByte)
{
    FaultModelParams params;
    params.seed = 1234;
    params.stuckBitRate = 0.01;
    params.deadRowRate = 0.05;
    const FaultInjector a(params);
    const FaultInjector b(params);

    const auto plan_a = a.plan("block0.wq", 64, 32);
    const auto plan_b = b.plan("block0.wq", 64, 32);
    EXPECT_EQ(plan_a.serialize(), plan_b.serialize());
    EXPECT_EQ(plan_a.fingerprint(), plan_b.fingerprint());
    EXPECT_FALSE(plan_a.empty());

    params.seed = 1235;
    const FaultInjector c(params);
    EXPECT_NE(c.plan("block0.wq", 64, 32).serialize(),
              plan_a.serialize());
    // Distinct arrays get independent streams.
    EXPECT_NE(a.plan("block0.wk", 64, 32).serialize(),
              plan_a.serialize());
}

TEST(FaultPlan, PlanIndependentOfGenerationOrder)
{
    FaultModelParams params;
    params.seed = 7;
    params.stuckBitRate = 0.02;
    const FaultInjector inj(params);
    const auto direct = inj.plan("unembedding", 64, 32);
    inj.plan("block0.wq", 64, 32); // interleave another array
    const auto again = inj.plan("unembedding", 64, 32);
    EXPECT_EQ(direct.serialize(), again.serialize());
}

TEST(FaultPlan, DisabledInjectorProducesEmptyPlans)
{
    const FaultInjector inj(FaultModelParams{});
    const auto plan = inj.plan("block0.wq", 64, 64);
    EXPECT_TRUE(plan.empty());
    EXPECT_TRUE(plan.stuckBits.empty());
    EXPECT_TRUE(plan.deadRows.empty());
}

TEST(FaultPlan, RateOneKillsEveryRow)
{
    FaultModelParams params;
    params.deadRowRate = 1.0;
    const FaultInjector inj(params);
    const auto plan = inj.plan("x", 16, 8);
    EXPECT_EQ(plan.deadRows.size(), 16u);
}

TEST(FaultPlan, RejectsOutOfRangeRates)
{
    FaultModelParams params;
    params.stuckBitRate = 1.5;
    EXPECT_DEATH(FaultInjector{params}, "stuckBitRate");
    params.stuckBitRate = 0.0;
    params.deadRowRate = -0.1;
    EXPECT_DEATH(FaultInjector{params}, "deadRowRate");
}

TEST(FaultPlan, ApplyToCodesSetsAndClearsBits)
{
    std::vector<Fp4> codes(4, Fp4::fromCode(0));
    ArrayFaultPlan plan;
    plan.rows = 2;
    plan.cols = 2;
    plan.stuckBits.push_back({0, 1, 3, true});  // set sign bit
    plan.stuckBits.push_back({1, 0, 0, false}); // clear already-0 bit
    const std::size_t changed = plan.applyToCodes(codes);
    EXPECT_EQ(changed, 1u); // the clear was a no-op
    EXPECT_EQ(codes[1].code(), 0x8);
    EXPECT_EQ(codes[2].code(), 0x0);
}

TEST(FaultPlan, SpareRepairTakesLowestRowsAndDropsTheirStuckBits)
{
    ArrayFaultPlan plan;
    plan.rows = 8;
    plan.cols = 4;
    plan.deadRows = {1, 3, 6};
    plan.stuckBits.push_back({1, 0, 2, true});
    plan.stuckBits.push_back({5, 2, 1, true});
    const std::size_t repaired = applySpareRepair(plan, 2);
    EXPECT_EQ(repaired, 2u);
    EXPECT_EQ(plan.repairedRows, (std::vector<std::uint32_t>{1, 3}));
    EXPECT_EQ(plan.deadRows, (std::vector<std::uint32_t>{6}));
    ASSERT_EQ(plan.stuckBits.size(), 1u);
    EXPECT_EQ(plan.stuckBits[0].row, 5u);
}

TEST(FaultPlan, MoreSparesNeverMoreDeadRows)
{
    FaultModelParams params;
    params.seed = 42;
    params.deadRowRate = 0.3;
    std::size_t previous = ~std::size_t(0);
    for (std::size_t spares : {0u, 1u, 2u, 4u, 8u}) {
        params.spareRows = spares;
        const FaultInjector inj(params);
        const auto plan = inj.plan("x", 64, 8);
        EXPECT_LE(plan.deadRows.size(), previous);
        previous = plan.deadRows.size();
    }
}

// -- dead rows in HN arrays and Linear ------------------------------------

TEST(FaultLinear, DeadRowsReadZeroOnBothPaths)
{
    const Linear clean = Linear::random(16, 32, 5);
    const std::vector<std::uint32_t> dead{2, 9};
    const Linear faulty(clean.codes(), 16, 32, dead);

    Vec x(32);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::sin(double(i) + 1.0);

    for (ExecPath path : {ExecPath::Reference, ExecPath::Hardwired}) {
        const Vec y_clean = clean.forward(x, path);
        const Vec y_faulty = faulty.forward(x, path);
        for (std::uint32_t r : dead)
            EXPECT_EQ(y_faulty[r], 0.0);
        for (std::size_t r = 0; r < 16; ++r) {
            if (std::find(dead.begin(), dead.end(), r) == dead.end())
                EXPECT_EQ(y_faulty[r], y_clean[r]) << "row " << r;
        }
    }
}

TEST(FaultLinear, SliceCarriesDeadRowsAtLocalIndices)
{
    const Linear clean = Linear::random(16, 8, 11);
    const Linear faulty(clean.codes(), 16, 8, {3, 10});
    const Linear shard = faulty.slice(8, 8, 0, 8);
    EXPECT_EQ(shard.deadRows(), (std::vector<std::uint32_t>{2}));
}

TEST(FaultLinear, InjectorApplicationIsDeterministic)
{
    FaultModelParams params;
    params.seed = 77;
    params.stuckBitRate = 0.02;
    params.deadRowRate = 0.1;
    const FaultInjector inj(params);
    const Linear clean = Linear::random(24, 16, 3);
    const Linear a = applyToLinear(inj, clean, "p");
    const Linear b = applyToLinear(inj, clean, "p");
    ASSERT_EQ(a.codes().size(), b.codes().size());
    for (std::size_t i = 0; i < a.codes().size(); ++i)
        EXPECT_EQ(a.codes()[i].code(), b.codes()[i].code());
    EXPECT_EQ(a.deadRows(), b.deadRows());
}

TEST(FaultLinear, EnoughSparesRestoreCleanBehavior)
{
    FaultModelParams params;
    params.seed = 9;
    params.deadRowRate = 0.25;
    params.spareRows = 1024; // more spares than rows
    const FaultInjector inj(params);
    const Linear clean = Linear::random(24, 16, 3);
    ModelFaultStats stats;
    const Linear repaired = applyToLinear(inj, clean, "p", &stats);
    EXPECT_GT(stats.repairedRows, 0u);
    EXPECT_EQ(stats.deadRows, 0u);
    EXPECT_TRUE(repaired.deadRows().empty());
    Vec x(16, 1.0);
    const Vec y_clean = clean.forward(x, ExecPath::Reference);
    const Vec y_rep = repaired.forward(x, ExecPath::Reference);
    for (std::size_t i = 0; i < y_clean.size(); ++i)
        EXPECT_EQ(y_clean[i], y_rep[i]);
}

// -- engine-level fault behavior ------------------------------------------

class FaultEngineTest : public ::testing::Test
{
  protected:
    FaultEngineTest()
        : cfg_(tinyTestModel()),
          weights_(ModelWeights::randomInit(cfg_, 99))
    {
    }

    FaultInjector
    injector(std::uint64_t seed, std::size_t spares = 0) const
    {
        FaultModelParams params;
        params.seed = seed;
        params.stuckBitRate = 0.01;
        params.deadRowRate = 0.02;
        params.spareRows = spares;
        return FaultInjector(params);
    }

    Vec
    logitsAfter(Engine &engine, const std::vector<std::size_t> &tokens)
    {
        KvCache cache = engine.makeCache();
        Vec logits;
        for (std::size_t token : tokens)
            logits = engine.forwardToken(token, cache);
        return logits;
    }

    TransformerConfig cfg_;
    ModelWeights weights_;
    std::vector<std::size_t> tokens_{3, 17, 5, 60, 1, 42};
};

TEST_F(FaultEngineTest, EmptyPlanKeepsEngineBitIdentical)
{
    const FaultInjector inj{FaultModelParams{}};
    const ModelWeights faulty = applyToModel(weights_, cfg_, inj);
    Engine clean(cfg_, weights_, ExecPath::Hardwired);
    Engine under_plan(cfg_, faulty, ExecPath::Hardwired);
    const Vec a = logitsAfter(clean, tokens_);
    const Vec b = logitsAfter(under_plan, tokens_);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "logit " << i;
}

TEST_F(FaultEngineTest, FaultyEngineIsSeedDeterministicAndDiverges)
{
    ModelFaultStats stats;
    const ModelWeights faulty_a =
        applyToModel(weights_, cfg_, injector(1001), &stats);
    const ModelWeights faulty_b =
        applyToModel(weights_, cfg_, injector(1001));
    EXPECT_GT(stats.stuckBits + stats.deadRows, 0u);

    Engine clean(cfg_, weights_, ExecPath::Hardwired);
    Engine eng_a(cfg_, faulty_a, ExecPath::Hardwired);
    Engine eng_b(cfg_, faulty_b, ExecPath::Hardwired);

    const Vec l_clean = logitsAfter(clean, tokens_);
    const Vec l_a = logitsAfter(eng_a, tokens_);
    const Vec l_b = logitsAfter(eng_b, tokens_);

    bool diverged = false;
    for (std::size_t i = 0; i < l_a.size(); ++i) {
        EXPECT_EQ(l_a[i], l_b[i]) << "logit " << i;
        if (l_a[i] != l_clean[i])
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST_F(FaultEngineTest, FaultyOutputsIndependentOfThreadCount)
{
    const ModelWeights faulty =
        applyToModel(weights_, cfg_, injector(2024));
    Engine serial(cfg_, faulty, ExecPath::Hardwired, 8,
                  ExecOptions{1});
    Engine threaded(cfg_, faulty, ExecPath::Hardwired, 8,
                    ExecOptions{4});
    const Vec a = logitsAfter(serial, tokens_);
    const Vec b = logitsAfter(threaded, tokens_);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "logit " << i;
}

TEST_F(FaultEngineTest, DistributedMatchesMonolithicUnderFaults)
{
    const ModelWeights faulty =
        applyToModel(weights_, cfg_, injector(555));
    Engine mono(cfg_, faulty, ExecPath::Reference);
    DistributedEngine dist(cfg_, faulty, 2, 2);
    KvCache mono_cache = mono.makeCache();
    auto dist_cache = dist.makeCache();
    for (std::size_t token : tokens_) {
        const Vec a = mono.forwardToken(token, mono_cache);
        const Vec b = dist.forwardToken(token, dist_cache);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_NEAR(a[i], b[i], 1e-9) << "logit " << i;
    }
}

// -- repair-aware yield and cost ------------------------------------------

TEST(FaultYield, EffectiveYieldMonotoneInSpares)
{
    const WaferModel wafers(n5Technology());
    SpareRepairParams repair;
    repair.repairableFraction = 0.3;
    double previous = 0.0;
    for (std::size_t spares : {0u, 1u, 2u, 4u, 8u, 16u}) {
        repair.spareRows = spares;
        const double y = wafers.effectiveYield(827.08, repair);
        EXPECT_GE(y, previous) << "spares " << spares;
        EXPECT_LE(y, 1.0);
        previous = y;
    }
    // With zero spares repair is disabled: plain Murphy.
    repair.spareRows = 0;
    EXPECT_DOUBLE_EQ(wafers.effectiveYield(827.08, repair),
                     wafers.murphyYield(827.08));
    // A real spare budget strictly beats no repair at this density.
    repair.spareRows = 4;
    EXPECT_GT(wafers.effectiveYield(827.08, repair),
              wafers.murphyYield(827.08));
}

TEST(FaultYield, MurphyYieldEdgeCases)
{
    TechnologyParams ideal = n5Technology();
    ideal.defectDensityPerCm2 = 0.0;
    const WaferModel perfect(ideal);
    EXPECT_DOUBLE_EQ(perfect.murphyYield(827.08), 1.0);
    EXPECT_DOUBLE_EQ(perfect.murphyYield(0.0), 1.0);

    const WaferModel wafers(n5Technology());
    EXPECT_DEATH(wafers.murphyYield(-1.0), "die area");
    SpareRepairParams bad;
    bad.spareRows = 2;
    bad.repairableFraction = 1.5;
    EXPECT_DEATH(wafers.effectiveYield(100.0, bad),
                 "repairableFraction");
}

TEST(FaultYield, RepairLowersGoodDieCost)
{
    SpareRepairParams repair;
    repair.spareRows = 8;
    repair.repairableFraction = 0.3;
    const HnlpuCostModel base(n5Technology(), MaskStack{});
    const HnlpuCostModel repaired(n5Technology(), MaskStack{},
                                  RecurringCostParams{},
                                  DesignCostParams{}, repair);
    const auto bd_base = base.breakdown(gptOss120b());
    const auto bd_rep = repaired.breakdown(gptOss120b());
    EXPECT_LT(bd_rep.waferPerChip, bd_base.waferPerChip);
    EXPECT_LT(bd_rep.recurringPerChip().lo,
              bd_base.recurringPerChip().lo);
}

// -- fabric degradation ----------------------------------------------------

TEST(FaultFabric, RejectsInvalidLinkParamsAndGrid)
{
    CxlLinkParams bad;
    bad.bandwidth = 0.0;
    EXPECT_DEATH(Fabric(2, 2, bad), "bandwidth");
    bad = CxlLinkParams{};
    bad.efficiency = 1.5;
    EXPECT_DEATH(Fabric(2, 2, bad), "efficiency");
    bad = CxlLinkParams{};
    bad.latency = -1e-9;
    EXPECT_DEATH(Fabric(2, 2, bad), "latency");
    EXPECT_DEATH(Fabric(0, 4, CxlLinkParams{}), "grid");

    LinkFaultParams lf;
    lf.retryProbability = 1.0;
    Fabric fabric(2, 2, CxlLinkParams{});
    EXPECT_DEATH(fabric.setLinkFaults(lf), "retryProbability");
}

TEST(FaultFabric, RetriesConsumeTimeDeterministically)
{
    LinkFaultParams lf;
    lf.seed = 31337;
    lf.retryProbability = 0.5;

    Fabric clean(2, 2, CxlLinkParams{});
    Fabric lossy_a(2, 2, CxlLinkParams{});
    Fabric lossy_b(2, 2, CxlLinkParams{});
    lossy_a.setLinkFaults(lf);
    lossy_b.setLinkFaults(lf);

    Tick clean_done = 0, a_done = 0, b_done = 0;
    for (int i = 0; i < 64; ++i) {
        clean_done = clean.send(0, 1, 4096.0, clean_done);
        a_done = lossy_a.send(0, 1, 4096.0, a_done);
        b_done = lossy_b.send(0, 1, 4096.0, b_done);
    }
    EXPECT_EQ(a_done, b_done);
    EXPECT_GT(a_done, clean_done);
    EXPECT_GT(lossy_a.totalRetries(), 0u);
}

TEST(FaultFabric, RetryExhaustionCompletesWithPenalty)
{
    LinkFaultParams lf;
    lf.seed = 1;
    lf.retryProbability = 0.99;
    lf.maxRetries = 2;
    Fabric fabric(2, 2, CxlLinkParams{});
    fabric.setLinkFaults(lf);
    Tick done = 0;
    for (int i = 0; i < 32; ++i)
        done = fabric.send(0, 1, 1024.0, done);
    EXPECT_GT(fabric.retryTimeouts(), 0u);
    EXPECT_GT(done, 0u);
}

TEST(FaultFabric, DeadChipIsRoutedAround)
{
    Fabric fabric(4, 4, CxlLinkParams{});
    const ChipId dead = fabric.chipAt(1, 1);
    fabric.markChipDead(dead);
    EXPECT_FALSE(fabric.chipAlive(dead));
    EXPECT_EQ(fabric.liveChips().size(), 15u);
    EXPECT_FALSE(fabric.usable(fabric.chipAt(1, 0), dead));

    // Cross pair whose preferred corner is the dead chip: (1,2)->(3,1)
    // must relay through a live intermediate.
    const Tick done = fabric.sendRouted(fabric.chipAt(1, 2),
                                        fabric.chipAt(3, 1), 2048.0, 0);
    EXPECT_GT(done, 0u);
    EXPECT_GT(fabric.reroutedMessages(), 0u);
}

TEST(FaultFabric, CollectivesSkipDeadMembersAndRecover)
{
    Fabric clean(4, 4, CxlLinkParams{});
    Fabric degraded(4, 4, CxlLinkParams{});
    degraded.markChipDead(degraded.chipAt(2, 3));

    std::vector<ChipId> row;
    for (std::size_t c = 0; c < 4; ++c)
        row.push_back(degraded.chipAt(2, c));
    // All-reduce over the dead chip's row completes without it.
    const Tick t = timedAllReduce(degraded, row, 4096.0, 0);
    EXPECT_GT(t, 0u);

    // The grid all-reduce completes and pays recovery traffic.
    const Tick t_clean = timedGridAllReduce(clean, 4096.0, 0);
    const Tick t_degraded = timedGridAllReduce(degraded, 4096.0, 0);
    EXPECT_GT(t_degraded, 0u);
    EXPECT_GT(degraded.reroutedMessages(), 0u);
    EXPECT_GE(t_degraded, t_clean - t_clean / 4); // no pathological speedup
}

// -- degraded pipeline -----------------------------------------------------

PipelineConfig
fastPipeline()
{
    PipelineConfig cfg = defaultGptOssPipeline(2048);
    cfg.warmupTokens = 50;
    cfg.measuredTokens = 300;
    return cfg;
}

TEST(FaultPipeline, CleanConfigUnchangedByFaultFields)
{
    PipelineConfig cfg = fastPipeline();
    const PipelineResult clean = PipelineSim(cfg).run();
    cfg.faults.seed = 999; // seed alone enables nothing
    const PipelineResult seeded = PipelineSim(cfg).run();
    EXPECT_EQ(clean.tokensPerSecond, seeded.tokensPerSecond);
    EXPECT_FALSE(seeded.degraded);
    EXPECT_EQ(seeded.linkRetries, 0u);
}

TEST(FaultPipeline, DegradedModeCompletesAndReportsSlowdown)
{
    const PipelineResult clean = PipelineSim(fastPipeline()).run();

    PipelineConfig cfg = fastPipeline();
    cfg.faults.seed = 4242;
    cfg.faults.linkRetryProbability = 0.02;
    cfg.faults.deadChips = {5, 10};
    const PipelineResult degraded = PipelineSim(cfg).run();

    EXPECT_TRUE(degraded.degraded);
    EXPECT_EQ(degraded.deadChips, 2u);
    EXPECT_GT(degraded.linkRetries, 0u);
    EXPECT_GT(degraded.reroutedTransfers, 0u);
    EXPECT_GT(degraded.tokensPerSecond, 0.0);
    EXPECT_LT(degraded.tokensPerSecond, clean.tokensPerSecond);

    // Same fault seed, same result: the degraded sim is deterministic.
    const PipelineResult again = PipelineSim(cfg).run();
    EXPECT_EQ(degraded.tokensPerSecond, again.tokensPerSecond);
    EXPECT_EQ(degraded.linkRetries, again.linkRetries);
}

TEST(FaultPipeline, RejectsInvalidFaultConfig)
{
    PipelineConfig cfg = fastPipeline();
    cfg.faults.deadChips = {0};
    EXPECT_DEATH(PipelineSim{cfg}, "representative");
    cfg.faults.deadChips = {1000};
    EXPECT_DEATH(PipelineSim{cfg}, "out of range");
    cfg.faults.deadChips.clear();
    cfg.faults.linkRetryProbability = 1.0;
    EXPECT_DEATH(PipelineSim{cfg}, "linkRetryProbability");
}

// -- rate-limited logging --------------------------------------------------

TEST(FaultLogging, WarnRateLimiterBurstsThenThrottles)
{
    detail::WarnRateLimiter limiter;
    std::size_t logged = 0;
    for (std::uint64_t i = 0; i < 3000; ++i) {
        if (limiter.shouldLog())
            ++logged;
    }
    // First kBurst all log, then one per kPeriod.
    const std::size_t expected =
        detail::WarnRateLimiter::kBurst +
        (3000 - detail::WarnRateLimiter::kBurst) /
            detail::WarnRateLimiter::kPeriod;
    EXPECT_EQ(logged, expected);
    EXPECT_EQ(limiter.occurrences(), 3000u);
}

// -- live fault injection premise (serve::ServingRouter's probe) ----------

TEST(FaultModel, SpareRepairedModelGeneratesBitIdenticalUnrepairedDiverges)
{
    // The serving router's health probe rests on exactly this
    // dichotomy: a fully spare-repaired model is functionally
    // indistinguishable from clean weights (in-flight KV caches stay
    // valid, decode continues bit-identically), while an unrepairable
    // plan changes greedy output and must be detected and drained.
    const auto cfg = tinyTestModel();
    const auto clean = ModelWeights::randomInit(cfg, 31);
    const std::vector<std::size_t> prompt{1, 2, 3};
    Engine clean_engine(cfg, clean, ExecPath::Reference);
    Sampler g0(SamplerConfig{0.0, 0}, 0);
    const auto golden = clean_engine.generate(prompt, 6, g0);

    FaultModelParams repairable;
    repairable.seed = 21;
    repairable.deadRowRate = 0.02;
    repairable.spareRows = 64;
    {
        FaultInjector injector(repairable);
        ModelFaultStats fstats;
        const auto twin = applyToModel(clean, cfg, injector, &fstats);
        ASSERT_GT(fstats.repairedRows, 0u);
        ASSERT_EQ(fstats.deadRows, 0u);
        ASSERT_EQ(fstats.stuckBits, 0u);
        Engine twin_engine(cfg, twin, ExecPath::Reference);
        Sampler g1(SamplerConfig{0.0, 0}, 0);
        EXPECT_EQ(twin_engine.generate(prompt, 6, g1), golden);
    }

    FaultModelParams harsh = repairable;
    harsh.spareRows = 0;
    harsh.stuckBitRate = 0.05;
    harsh.deadRowRate = 0.05;
    {
        FaultInjector injector(harsh);
        ModelFaultStats fstats;
        const auto twin = applyToModel(clean, cfg, injector, &fstats);
        ASSERT_GT(fstats.deadRows + fstats.flippedBits, 0u);
        Engine twin_engine(cfg, twin, ExecPath::Reference);
        Sampler g2(SamplerConfig{0.0, 0}, 0);
        EXPECT_NE(twin_engine.generate(prompt, 6, g2), golden);
    }
}

} // namespace
} // namespace hnlpu
