/**
 * @file
 * Tests for the gate-level netlist simulator and the synthesised
 * bit-serial Hardwired-Neuron datapath: the circuit, clocked bit by
 * bit, must reproduce the functional model exactly (the paper's
 * RTL-verification step).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gates/hn_datapath.hh"
#include "gates/netlist.hh"
#include "hn/hn_array.hh"
#include "hn/hn_neuron.hh"

namespace hnlpu {
namespace {

TEST(NetlistTest, BasicGates)
{
    Netlist n;
    const NetId a = n.addInput("a");
    const NetId b = n.addInput("b");
    const NetId and_g = n.addAnd(a, b);
    const NetId or_g = n.addOr(a, b);
    const NetId xor_g = n.addXor(a, b);
    const NetId not_g = n.addNot(a);

    GateSim sim(n);
    for (int av = 0; av <= 1; ++av) {
        for (int bv = 0; bv <= 1; ++bv) {
            sim.setInput(a, av);
            sim.setInput(b, bv);
            sim.settle();
            EXPECT_EQ(sim.read(and_g), av && bv);
            EXPECT_EQ(sim.read(or_g), av || bv);
            EXPECT_EQ(sim.read(xor_g), av != bv);
            EXPECT_EQ(sim.read(not_g), !av);
        }
    }
}

TEST(NetlistTest, Majority3)
{
    Netlist n;
    const NetId a = n.addInput("a"), b = n.addInput("b"),
                c = n.addInput("c");
    const NetId m = n.addMaj3(a, b, c);
    GateSim sim(n);
    for (int v = 0; v < 8; ++v) {
        sim.setInput(a, v & 1);
        sim.setInput(b, (v >> 1) & 1);
        sim.setInput(c, (v >> 2) & 1);
        sim.settle();
        const int ones = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
        EXPECT_EQ(sim.read(m), ones >= 2) << "v=" << v;
    }
}

TEST(NetlistTest, DffHoldsStateAcrossSteps)
{
    Netlist n;
    const NetId d = n.addInput("d");
    const NetId q = n.addDff(d);
    GateSim sim(n);
    EXPECT_FALSE(sim.read(q)); // initialised to 0
    sim.setInput(d, true);
    sim.settle();
    EXPECT_FALSE(sim.read(q)); // not yet clocked
    sim.step();
    EXPECT_TRUE(sim.read(q));
    sim.setInput(d, false);
    sim.step();
    EXPECT_FALSE(sim.read(q));
}

TEST(NetlistTest, DffFeedbackCounter)
{
    // A 1-bit toggle: q' = ~q.
    Netlist n;
    const NetId q = n.addDff(0);
    const NetId nq = n.addNot(q);
    n.setDffInput(q, nq);
    GateSim sim(n);
    bool expected = false;
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(sim.read(q), expected) << "cycle " << i;
        sim.step();
        expected = !expected;
    }
}

TEST(NetlistTest, RippleAdderExhaustiveSmall)
{
    Netlist n;
    std::vector<NetId> a(4), b(4);
    for (auto &x : a)
        x = n.addInput("a");
    for (auto &x : b)
        x = n.addInput("b");
    NetId cout = 0;
    const auto sum = n.addRippleAdder(a, b, n.zero(), &cout);
    GateSim sim(n);
    for (int av = 0; av < 16; ++av) {
        for (int bv = 0; bv < 16; ++bv) {
            for (int i = 0; i < 4; ++i) {
                sim.setInput(a[i], (av >> i) & 1);
                sim.setInput(b[i], (bv >> i) & 1);
            }
            sim.settle();
            int got = 0;
            for (int i = 0; i < 4; ++i)
                got |= int(sim.read(sum[i])) << i;
            got |= int(sim.read(cout)) << 4;
            EXPECT_EQ(got, av + bv) << av << "+" << bv;
        }
    }
}

TEST(NetlistTest, PopcountMatchesCount)
{
    Rng rng(3);
    for (std::size_t width : {1u, 2u, 3u, 7u, 16u, 33u}) {
        Netlist n;
        std::vector<NetId> bits(width);
        for (auto &x : bits)
            x = n.addInput("x");
        const auto count = n.addPopcount(bits);
        GateSim sim(n);
        for (int trial = 0; trial < 20; ++trial) {
            int expected = 0;
            for (std::size_t i = 0; i < width; ++i) {
                const bool v = rng.uniform01() < 0.5;
                sim.setInput(bits[i], v);
                expected += v;
            }
            sim.settle();
            int got = 0;
            for (std::size_t i = 0; i < count.size(); ++i)
                got |= int(sim.read(count[i])) << i;
            EXPECT_EQ(got, expected) << "width " << width;
        }
    }
}

TEST(NetlistTest, StatsCountCells)
{
    Netlist n;
    const NetId a = n.addInput("a"), b = n.addInput("b");
    n.addDff(n.addXor(a, b));
    const auto stats = n.stats();
    EXPECT_EQ(stats.inputs, 2u);
    EXPECT_EQ(stats.combGates, 1u);
    EXPECT_EQ(stats.dffs, 1u);
    EXPECT_GE(stats.transistorEstimate, 8u + 24u);
    EXPECT_EQ(stats.logicDepth, 1u);
}

WireTopology
makeTopology(std::size_t fan_in, std::uint64_t seed)
{
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = fan_in;
    tmpl.portsPerSlice = 16;
    tmpl.slackFactor = 4.0;
    auto topo = WireTopology::program(
        tmpl, syntheticFp4Weights(fan_in, seed));
    return *topo;
}

class DatapathEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

TEST_P(DatapathEquivalence, CircuitMatchesFunctionalModel)
{
    const auto [fan_in, width] = GetParam();
    WireTopology topo = makeTopology(fan_in, fan_in * 7 + width);
    HardwiredNeuron functional(topo);
    HnDatapath circuit(topo, width);

    Rng rng(fan_in + width);
    const std::int64_t lo = -(std::int64_t(1) << (width - 1));
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<std::int64_t> x(fan_in);
        for (auto &v : x)
            v = rng.uniformInt(lo, hi);
        EXPECT_EQ(circuit.evaluate(x), functional.computeReference(x))
            << "fan_in=" << fan_in << " width=" << width
            << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DatapathEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(4, 16, 64, 200),
                       ::testing::Values(4u, 8u, 12u)));

TEST(DatapathTest, ExtremeActivationValues)
{
    const unsigned width = 8;
    WireTopology topo = makeTopology(32, 5);
    HardwiredNeuron functional(topo);
    HnDatapath circuit(topo, width);

    // All max-negative, all max-positive, alternating.
    for (std::int64_t fill : {-128ll, 127ll, 0ll}) {
        std::vector<std::int64_t> x(32, fill);
        EXPECT_EQ(circuit.evaluate(x), functional.computeReference(x))
            << "fill " << fill;
    }
    std::vector<std::int64_t> alt(32);
    for (std::size_t i = 0; i < alt.size(); ++i)
        alt[i] = (i % 2) ? 127 : -128;
    EXPECT_EQ(circuit.evaluate(alt), functional.computeReference(alt));
}

TEST(DatapathTest, ReusableAcrossEvaluations)
{
    WireTopology topo = makeTopology(24, 9);
    HardwiredNeuron functional(topo);
    HnDatapath circuit(topo, 8);
    Rng rng(1);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<std::int64_t> x(24);
        for (auto &v : x)
            v = rng.uniformInt(-128, 127);
        EXPECT_EQ(circuit.evaluate(x), functional.computeReference(x));
    }
}

TEST(DatapathTest, StructuralStatsReasonable)
{
    WireTopology topo = makeTopology(128, 13);
    HnDatapath circuit(topo, 8);
    const auto stats = circuit.stats();
    // 128 serial inputs + strobe.
    EXPECT_EQ(stats.inputs, 129u);
    // POPCNT trees dominate: at least one FA-equivalent per wired
    // input, plus accumulators and multipliers.
    EXPECT_GT(stats.combGates, topo.wireCount());
    EXPECT_GT(stats.dffs, 0u);
    EXPECT_GT(stats.transistorEstimate, 1000u);
    EXPECT_EQ(circuit.cyclesPerGemv(), 8u);
}

TEST(DatapathTest, ZeroWeightsDrawNoLogic)
{
    // A topology with many zero weights synthesises a smaller circuit
    // than a dense one of the same fan-in.
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = 64;
    tmpl.portsPerSlice = 16;
    tmpl.slackFactor = 4.0;
    std::vector<Fp4> sparse(64, Fp4::quantize(0.0));
    sparse[0] = Fp4::quantize(1.0);
    std::vector<Fp4> dense(64, Fp4::quantize(1.0));
    auto sparse_topo = *WireTopology::program(tmpl, sparse);
    auto dense_topo = *WireTopology::program(tmpl, dense);
    HnDatapath small(sparse_topo, 8);
    HnDatapath big(dense_topo, 8);
    EXPECT_LT(small.stats().combGates, big.stats().combGates / 4);
}

} // namespace
} // namespace hnlpu
