/**
 * @file
 * Tests for the attention buffer, HBM and KV placement models.  Pinned
 * against the paper's published figures: 320 MB buffer at 80 TB/s, KV
 * overflow beginning between 128 K and 256 K context for gpt-oss.
 */

#include <gtest/gtest.h>

#include "mem/hbm.hh"
#include "mem/kv_store.hh"
#include "mem/sram.hh"
#include "model/model_zoo.hh"

namespace hnlpu {
namespace {

TEST(Sram, PaperFigures)
{
    SramBufferParams buf;
    // 20,000 banks x 16 KB = 320 MB (the paper quotes decimal MB).
    EXPECT_NEAR(buf.capacityBytes(), 320e6, 10e6);
    // 20,000 banks x 4 B x 1 GHz = 80 TB/s.
    EXPECT_NEAR(buf.readBandwidth(), 80e12, 1e12);
    EXPECT_EQ(buf.accessLatencyTicks(), toTicks(3e-9));
}

TEST(Sram, StreamTicksScaleLinearly)
{
    SramBufferParams buf;
    EXPECT_EQ(buf.streamTicks(0.0), 0u);
    const Tick t1 = buf.streamTicks(8e9);
    const Tick t2 = buf.streamTicks(16e9);
    EXPECT_NEAR(double(t2), 2.0 * double(t1), 2.0);
}

TEST(Hbm, CapacityAndBandwidth)
{
    HbmParams hbm;
    EXPECT_NEAR(hbm.capacityBytes(), 192.0 * kGiB, 1.0);
    EXPECT_NEAR(hbm.effectiveBandwidth(), 8 * 0.4e12 * 0.8, 1.0);
    EXPECT_GT(hbm.streamTicks(1e9), 0u);
}

TEST(KvStoreTest, BytesPerTokenMatchHandCalc)
{
    KvStore store(makePartition(gptOss120b()), SramBufferParams{},
                  HbmParams{});
    // Per chip per layer: 2 KV heads * 64 dims * 2 (K,V) / 4 rows
    //                   = 64 B per cached token.
    EXPECT_DOUBLE_EQ(store.kvBytesPerTokenPerLayerPerChip(), 64.0);
    // Only the 18 full-attention layers grow with context (gpt-oss
    // alternates sliding-window layers): 64 B * 18 = 1152 B.
    EXPECT_DOUBLE_EQ(store.bytesPerTokenPerChip(), 1152.0);
}

TEST(KvStoreTest, OverflowOnsetBetween256kAnd512k)
{
    KvStore store(makePartition(gptOss120b()), SramBufferParams{},
                  HbmParams{});
    // Paper Fig. 14: stalls negligible up to 256 K, visible at 512 K
    // where KV cache is loaded from off-chip HBM.
    EXPECT_DOUBLE_EQ(store.place(64 * 1024).overflowFraction, 0.0);
    EXPECT_DOUBLE_EQ(store.place(256 * 1024).overflowFraction, 0.0);
    EXPECT_GT(store.place(512 * 1024).overflowFraction, 0.4);
    EXPECT_GT(store.maxResidentContext(), 256u * 1024u);
    EXPECT_LT(store.maxResidentContext(), 512u * 1024u);
}

TEST(KvStoreTest, PlacementConservation)
{
    KvStore store(makePartition(gptOss120b()), SramBufferParams{},
                  HbmParams{});
    for (std::size_t ctx : {1024u, 65536u, 524288u}) {
        const auto p = store.place(ctx);
        EXPECT_DOUBLE_EQ(
            p.residentBytesPerChip + p.overflowBytesPerChip,
            p.totalBytesPerChip)
            << "ctx " << ctx;
        EXPECT_GE(p.overflowFraction, 0.0);
        EXPECT_LE(p.overflowFraction, 1.0);
    }
}

TEST(KvStoreTest, MultipleSequencesShareBuffer)
{
    KvStore store(makePartition(gptOss120b()), SramBufferParams{},
                  HbmParams{});
    const auto one = store.place(2048, 1);
    const auto many = store.place(2048, 100);
    EXPECT_DOUBLE_EQ(many.totalBytesPerChip,
                     100.0 * one.totalBytesPerChip);
    EXPECT_GE(many.overflowFraction, one.overflowFraction);
}

TEST(KvStoreTest, HbmTrafficSpreadAcrossLayers)
{
    KvStore store(makePartition(gptOss120b()), SramBufferParams{},
                  HbmParams{});
    const auto p = store.place(512 * 1024);
    // Traffic spreads across the 18 full-attention layers only.
    EXPECT_NEAR(p.hbmReadPerTokenPerLayer * 18.0,
                p.overflowBytesPerChip, 1.0);
}

} // namespace
} // namespace hnlpu
