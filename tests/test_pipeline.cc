/**
 * @file
 * Tests for the cycle-level pipeline simulator and the continuous
 * batcher.  Headline pins: ~250 K tokens/s at 2 K context (paper Table
 * 2: 249,960), communication-dominated short-context breakdown and
 * attention-dominated long-context breakdown (paper Fig. 14), stall
 * onset only beyond 256 K context.
 */

#include <gtest/gtest.h>

#include "pipeline/batcher.hh"
#include "pipeline/pipeline_sim.hh"

namespace hnlpu {
namespace {

PipelineResult
runAt(std::size_t context, std::size_t measured = 800)
{
    auto cfg = defaultGptOssPipeline(context);
    cfg.warmupTokens = 300;
    cfg.measuredTokens = measured;
    return PipelineSim(cfg).run();
}

TEST(PipelineSim, Table2ThroughputAt2k)
{
    const auto r = runAt(2048);
    // Paper: 249,960 tokens/s.  Within 5%.
    EXPECT_NEAR(r.tokensPerSecond, 249960.0, 0.05 * 249960.0);
    // 6 stages x 36 layers plus the unembed/sample stage.
    EXPECT_EQ(r.pipelineSlots, 6u * 36u + 1u);
}

TEST(PipelineSim, Fig14ShortContextCommDominated)
{
    const auto r = runAt(2048);
    // Paper: comm 82.9%, projection 13.8%, nonlinear ~3.3%.
    EXPECT_NEAR(r.breakdown.commShare(), 0.829, 0.08);
    EXPECT_NEAR(r.breakdown.projectionShare(), 0.138, 0.06);
    EXPECT_LT(r.breakdown.nonlinearShare(), 0.10);
    EXPECT_LT(r.breakdown.attentionShare(), 0.05);
    EXPECT_DOUBLE_EQ(r.breakdown.stallShare(), 0.0);
}

TEST(PipelineSim, Fig14AttentionGrowsWithContext)
{
    const auto r2k = runAt(2048);
    const auto r128k = runAt(131072, 600);
    const auto r256k = runAt(262144, 500);
    EXPECT_GT(r128k.breakdown.attentionShare(),
              r2k.breakdown.attentionShare() + 0.05);
    EXPECT_GT(r256k.breakdown.attentionShare(),
              r128k.breakdown.attentionShare());
    // Comm share falls as attention rises.
    EXPECT_LT(r256k.breakdown.commShare(), r2k.breakdown.commShare());
}

TEST(PipelineSim, Fig14StallOnsetBeyond256k)
{
    EXPECT_DOUBLE_EQ(runAt(131072, 500).breakdown.stallShare(), 0.0);
    EXPECT_DOUBLE_EQ(runAt(262144, 400).breakdown.stallShare(), 0.0);
    const auto r512k = runAt(524288, 300);
    EXPECT_GT(r512k.breakdown.stallShare(), 0.05);
    EXPECT_GT(r512k.kvOverflowFraction, 0.3);
}

TEST(PipelineSim, ThroughputDegradesGracefullyWithContext)
{
    const double t2k = runAt(2048).tokensPerSecond;
    const double t64k = runAt(65536, 600).tokensPerSecond;
    const double t512k = runAt(524288, 300).tokensPerSecond;
    EXPECT_GT(t2k, 200000.0);
    EXPECT_GT(t64k, 0.5 * t2k);
    EXPECT_LT(t512k, 0.2 * t2k);
}

TEST(PipelineSim, LinksSaturateAtShortContext)
{
    const auto r = runAt(2048);
    EXPECT_GT(r.colLinkUtilization, 0.9);
    EXPECT_GT(r.rowLinkUtilization, 0.2);
}

TEST(PipelineSim, LatencyConsistentWithLittlesLaw)
{
    const auto r = runAt(2048);
    // In-flight tokens = latency * throughput <= pipeline slots.
    const double inflight = r.tokenLatency * r.tokensPerSecond;
    EXPECT_LE(inflight, double(r.pipelineSlots) * 1.05);
    EXPECT_GT(inflight, 10.0);
}

TEST(PipelineSim, NaiveScoreExchangeIsWorse)
{
    auto cfg = defaultGptOssPipeline(65536);
    cfg.warmupTokens = 200;
    cfg.measuredTokens = 400;
    cfg.flashScoreStats = false;
    const auto naive = PipelineSim(cfg).run();
    cfg.flashScoreStats = true;
    const auto flash = PipelineSim(cfg).run();
    EXPECT_GT(flash.tokensPerSecond, 1.5 * naive.tokensPerSecond);
}

TEST(PipelineSim, BreakdownSumsToTotal)
{
    const auto r = runAt(8192, 400);
    const auto &b = r.breakdown;
    EXPECT_NEAR(b.commShare() + b.projectionShare() +
                    b.nonlinearShare() + b.attentionShare() +
                    b.stallShare(),
                1.0, 1e-9);
    EXPECT_GT(b.total(), 0.0);
}

TEST(Batcher, SingleRequestTimings)
{
    // 1 us per pipeline step, 100 us traversal.
    ContinuousBatcher batcher(4, 1e-6, 100e-6);
    std::vector<Request> reqs{{0.0, 10, 5}};
    auto outcomes = batcher.serve(reqs);
    ASSERT_EQ(outcomes.size(), 1u);
    // Prefill: 9 intervals + 1 traversal; decode: 5 traversals.
    EXPECT_NEAR(outcomes[0].firstToken, 9e-6 + 100e-6, 1e-12);
    EXPECT_NEAR(outcomes[0].finish, outcomes[0].firstToken + 500e-6,
                1e-12);
}

TEST(Batcher, SlotsLimitConcurrency)
{
    ContinuousBatcher batcher(2, 1e-6, 100e-6);
    // Three simultaneous requests; the third waits for a slot.
    std::vector<Request> reqs{{0.0, 1, 1}, {0.0, 1, 1}, {0.0, 1, 1}};
    auto outcomes = batcher.serve(reqs);
    EXPECT_DOUBLE_EQ(outcomes[0].start, 0.0);
    EXPECT_DOUBLE_EQ(outcomes[1].start, 0.0);
    EXPECT_GT(outcomes[2].start, 0.0);
    EXPECT_GT(batcher.stats().meanOccupancy, 0.3);
}

TEST(Batcher, ContinuousBatchingKeepsSlotsBusy)
{
    ContinuousBatcher batcher(216, 4e-6, 864e-6);
    std::vector<Request> reqs;
    for (int i = 0; i < 2000; ++i)
        reqs.push_back({0.0, 128, 64});
    batcher.serve(reqs);
    const auto &stats = batcher.stats();
    // Occupancy is measured against the capacity-floored makespan, so
    // prefill-heavy workloads sit well below 1.0.
    EXPECT_GT(stats.meanOccupancy, 0.25);
    EXPECT_EQ(stats.decodedTokens, 2000u * 64u);
    EXPECT_GT(stats.throughputTokensPerSecond, 50000.0);
}

TEST(BatcherDeathTest, RejectsUnsortedArrivals)
{
    ContinuousBatcher batcher(2, 1e-6, 1e-4);
    std::vector<Request> reqs{{1.0, 1, 1}, {0.5, 1, 1}};
    EXPECT_DEATH(batcher.serve(reqs), "sorted");
}

TEST(BatcherDeathTest, RejectsPromptlessRequests)
{
    // A request with no prompt has no position to decode from; the
    // functional serving engine rejects the same trace, so the two
    // schedulers agree on which inputs are legal.
    ContinuousBatcher batcher(2, 1e-6, 1e-4);
    std::vector<Request> reqs{{0.0, 0, 4}};
    EXPECT_DEATH(batcher.serve(reqs), "no prompt tokens");
}

TEST(Batcher, ZeroDecodeTokensFinishAtFirstToken)
{
    // decodeTokens == 0 is legal (prefill-only occupancy): the
    // functional ServingEngine maps its d-decode requests onto
    // decodeTokens == d - 1 here, so d == 1 exercises this case.
    ContinuousBatcher batcher(2, 1e-6, 1e-4);
    std::vector<Request> reqs{{0.0, 8, 0}};
    auto outcomes = batcher.serve(reqs);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_DOUBLE_EQ(outcomes[0].finish, outcomes[0].firstToken);
    EXPECT_EQ(batcher.stats().decodedTokens, 0u);
}

} // namespace
} // namespace hnlpu
