/**
 * @file
 * Observability subsystem tests: JsonWriter structure/escaping (every
 * document is parsed back by a mini in-test JSON parser, not just
 * substring-checked), MetricsRegistry thread-safety under the pool,
 * Chrome-trace parse-back, and the core invariant that observation is
 * pure: a traced serving run decodes bit-identical tokens and a traced
 * PipelineSim reproduces the untraced result exactly.
 *
 * Registered under ctest label `obs`; scripts/tier1.sh additionally
 * runs it under ThreadSanitizer (counters, the tracer mutex and the
 * pool chunk observer are all hit from every worker thread).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "model/model_zoo.hh"
#include "noc/fabric.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pipeline/pipeline_sim.hh"
#include "sim/stats.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"
#include "xformer/serving.hh"

namespace hnlpu {
namespace {

// -- mini JSON parser ------------------------------------------------------
//
// Deliberately independent of JsonWriter: the tests verify emitted
// documents against RFC 8259 as read by different code, not against the
// writer's own idea of itself.

struct JValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JValue> items;
    std::vector<std::pair<std::string, JValue>> members;

    const JValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    /** Member lookup that fails the test (returning a null) on miss. */
    const JValue &
    at(const std::string &key) const
    {
        static const JValue null_value;
        const JValue *v = find(key);
        EXPECT_NE(v, nullptr) << "missing key \"" << key << "\"";
        return v ? *v : null_value;
    }
};

class MiniJsonParser
{
  public:
    static JValue
    parse(const std::string &text)
    {
        MiniJsonParser p(text);
        JValue v = p.parseValue();
        p.skipWs();
        EXPECT_TRUE(p.ok_) << "parse error at offset " << p.pos_;
        EXPECT_EQ(p.pos_, text.size()) << "trailing garbage";
        return v;
    }

  private:
    explicit MiniJsonParser(const std::string &text) : text_(text) {}

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        ok_ = false;
        return false;
    }

    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            ok_ = false;
            return out;
        }
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                ok_ = false;
                return out;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    ok_ = false;
                    return out;
                }
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                const long cp = std::strtol(hex.c_str(), nullptr, 16);
                // The writer only \u-escapes control characters, all
                // below U+0100; anything larger is a parser-test bug.
                EXPECT_LT(cp, 0x100) << "unexpected \\u escape";
                out.push_back(char(cp));
                break;
              }
              default: ok_ = false; return out;
            }
        }
        if (pos_ >= text_.size() || text_[pos_] != '"')
            ok_ = false;
        else
            ++pos_;
        return out;
    }

    JValue
    parseValue()
    {
        skipWs();
        JValue v;
        if (pos_ >= text_.size()) {
            ok_ = false;
            return v;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            v.type = JValue::Type::Object;
            skipWs();
            if (consume('}'))
                return v;
            do {
                std::string key = parseString();
                if (!ok_ || !consume(':')) {
                    ok_ = false;
                    return v;
                }
                v.members.emplace_back(std::move(key), parseValue());
            } while (ok_ && consume(','));
            if (!consume('}'))
                ok_ = false;
        } else if (c == '[') {
            ++pos_;
            v.type = JValue::Type::Array;
            skipWs();
            if (consume(']'))
                return v;
            do {
                v.items.push_back(parseValue());
            } while (ok_ && consume(','));
            if (!consume(']'))
                ok_ = false;
        } else if (c == '"') {
            v.type = JValue::Type::String;
            v.str = parseString();
        } else if (c == 't') {
            v.type = JValue::Type::Bool;
            v.boolean = true;
            literal("true");
        } else if (c == 'f') {
            v.type = JValue::Type::Bool;
            literal("false");
        } else if (c == 'n') {
            literal("null");
        } else {
            v.type = JValue::Type::Number;
            const char *start = text_.c_str() + pos_;
            char *end = nullptr;
            v.number = std::strtod(start, &end);
            if (end == start)
                ok_ = false;
            pos_ += std::size_t(end - start);
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// -- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, EscapingAndNestingRoundTrip)
{
    obs::JsonWriter w(0);
    w.beginObject();
    w.field("plain", "hello");
    w.field("tricky", "q\" b\\ nl\n tab\t bell\x07 end");
    w.field("count", 42);
    w.field("negative", -7);
    w.field("big", std::uint64_t(1) << 63);
    w.field("ratio", 0.25);
    w.field("flag", true);
    w.field("nan_is_null", std::nan(""));
    w.key("nested").beginArray();
    w.value(1).value(2);
    w.beginObject().field("deep", "yes").endObject();
    w.beginArray().endArray();
    w.endArray();
    w.endObject();

    const JValue doc = MiniJsonParser::parse(w.str());
    ASSERT_EQ(doc.type, JValue::Type::Object);
    EXPECT_EQ(doc.at("plain").str, "hello");
    EXPECT_EQ(doc.at("tricky").str, "q\" b\\ nl\n tab\t bell\x07 end");
    EXPECT_EQ(doc.at("count").number, 42.0);
    EXPECT_EQ(doc.at("negative").number, -7.0);
    EXPECT_EQ(doc.at("big").number, std::pow(2.0, 63));
    EXPECT_EQ(doc.at("ratio").number, 0.25);
    EXPECT_TRUE(doc.at("flag").boolean);
    EXPECT_EQ(doc.at("nan_is_null").type, JValue::Type::Null);
    const JValue &nested = doc.at("nested");
    ASSERT_EQ(nested.type, JValue::Type::Array);
    ASSERT_EQ(nested.items.size(), 4u);
    EXPECT_EQ(nested.items[2].at("deep").str, "yes");
    EXPECT_TRUE(nested.items[3].items.empty());
}

TEST(JsonWriter, PrettyPrintedDocumentParses)
{
    obs::JsonWriter w(2);
    w.beginObject();
    w.key("rows").beginArray();
    for (int i = 0; i < 3; ++i)
        w.beginObject().field("i", i).endObject();
    w.endArray();
    w.endObject();

    const JValue doc = MiniJsonParser::parse(w.str());
    ASSERT_EQ(doc.at("rows").items.size(), 3u);
    EXPECT_EQ(doc.at("rows").items[2].at("i").number, 2.0);
}

// -- Histogram::fromSamples ------------------------------------------------

TEST(HistogramFromSamples, QuantilesMonotoneAndWithinSampleRange)
{
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i)
        samples.push_back(0.001 * double(i));
    const Histogram h = Histogram::fromSamples(samples, 4096);
    double prev = h.quantile(0.0);
    for (double q : {0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        const double v = h.quantile(q);
        EXPECT_GE(v, prev) << "q " << q;
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 0.999 + 1e-6);
        prev = v;
    }
    // The median of a uniform ramp sits near the middle of the range.
    EXPECT_NEAR(h.quantile(0.5), 0.4995, 0.01);

    // Degenerate inputs must not fault.
    EXPECT_EQ(Histogram::fromSamples({}, 16).quantile(0.5), 0.0);
    const Histogram single = Histogram::fromSamples({3.0}, 16);
    EXPECT_NEAR(single.quantile(0.5), 3.0, 1e-6);
}

// -- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndThreadSafeUnderPool)
{
    obs::MetricsRegistry reg;
    obs::Counter *const c = reg.counter("test.events");
    ASSERT_EQ(reg.counter("test.events"), c) << "handle must be stable";
    obs::LatencyHistogram *const h = reg.latency("test.seconds");

    ThreadPool pool(4);
    const std::size_t n = 20000;
    pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            c->add(1);
            // Concurrent create-on-first-use races on the same name.
            reg.counter("test.contended")->add(1);
            h->observe(1e-6 * double(i % 7));
        }
    });
    EXPECT_EQ(c->value(), n);
    EXPECT_EQ(reg.counter("test.contended")->value(), n);
    EXPECT_EQ(h->count(), n);
    EXPECT_GE(h->max(), h->min());

    reg.gauge("test.depth")->set(5.0);
    EXPECT_EQ(reg.gauge("test.depth")->value(), 5.0);

    reg.reset();
    EXPECT_EQ(c->value(), 0u);
    EXPECT_EQ(h->count(), 0u);
    EXPECT_EQ(reg.gauge("test.depth")->value(), 0.0);
}

TEST(MetricsRegistry, ToJsonSnapshotsMetricsAndWarnSites)
{
    obs::MetricsRegistry reg;
    reg.counter("a.count")->add(3);
    reg.gauge("a.depth")->set(2.5);
    obs::LatencyHistogram *h = reg.latency("a.seconds");
    for (int i = 1; i <= 10; ++i)
        h->observe(0.01 * i);

    // Trip a hnlpu_warn_ratelimited site so warn_sites is non-empty
    // (markChipDead warns once per dead chip).
    Fabric fabric(2, 2, CxlLinkParams{});
    fabric.markChipDead(3);

    const JValue doc = MiniJsonParser::parse(reg.toJson());
    EXPECT_EQ(doc.at("counters").at("a.count").number, 3.0);
    EXPECT_EQ(doc.at("gauges").at("a.depth").number, 2.5);
    const JValue &lat = doc.at("latencies").at("a.seconds");
    EXPECT_EQ(lat.at("count").number, 10.0);
    EXPECT_NEAR(lat.at("mean_seconds").number, 0.055, 1e-9);
    EXPECT_EQ(lat.at("min_seconds").number, 0.01);
    EXPECT_EQ(lat.at("max_seconds").number, 0.1);
    EXPECT_LE(lat.at("p50_seconds").number,
              lat.at("p95_seconds").number);
    EXPECT_LE(lat.at("p95_seconds").number,
              lat.at("p99_seconds").number);

    const JValue &sites = doc.at("warn_sites");
    ASSERT_EQ(sites.type, JValue::Type::Object);
    bool fabric_site = false;
    for (const auto &[key, count] : sites.members) {
        if (key.find("fabric.cc") != std::string::npos) {
            fabric_site = true;
            EXPECT_GE(count.number, 1.0);
        }
    }
    EXPECT_TRUE(fabric_site)
        << "fabric.cc warn site missing from registry JSON";
}

// -- Tracer ----------------------------------------------------------------

TEST(Tracer, MultiThreadedSpansParseBackAsChromeTraceEvents)
{
    obs::Tracer tracer;

    {
        // Null tracer: spans are a no-op, not a crash.
        obs::ScopedSpan disabled(nullptr, "x", "y");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);

    ThreadPool pool(4);
    const std::size_t n = 64;
    pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            obs::JsonWriter args(0);
            args.beginObject().field("i", i).endObject();
            obs::ScopedSpan span(&tracer, "test", "test.span",
                                 args.str());
        }
    });
    EXPECT_EQ(tracer.eventCount(), n);

    const JValue doc = MiniJsonParser::parse(tracer.toJson(2));
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
    const JValue &events = doc.at("traceEvents");
    ASSERT_EQ(events.items.size(), n);
    std::set<double> seen_args;
    for (const JValue &ev : events.items) {
        EXPECT_EQ(ev.at("ph").str, "X");
        EXPECT_EQ(ev.at("pid").number, 0.0);
        EXPECT_EQ(ev.at("cat").str, "test");
        EXPECT_EQ(ev.at("name").str, "test.span");
        EXPECT_GE(ev.at("ts").number, 0.0);
        EXPECT_GE(ev.at("dur").number, 0.0);
        EXPECT_GE(ev.at("tid").number, 0.0);
        seen_args.insert(ev.at("args").at("i").number);
    }
    EXPECT_EQ(seen_args.size(), n) << "every index traced exactly once";
}

// -- serving under a full sink ---------------------------------------------

TEST(Serving, TracedRunBitIdenticalAndSpansFourSubsystems)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 77);

    const std::vector<std::vector<std::size_t>> prompts{
        {1, 5, 9}, {2}, {7, 3}, {4, 8, 12}};
    const std::vector<std::size_t> decodes{4, 6, 2, 5};

    auto serve = [&](const obs::Sink *sink) {
        ExecOptions exec;
        exec.threads = 2;
        exec.batchSlots = 2;
        exec.sink = sink;
        Engine engine(cfg, weights, ExecPath::Reference, 8, exec);
        ServingEngine serving(engine);
        for (std::size_t i = 0; i < prompts.size(); ++i) {
            ServingRequest req;
            req.prompt = prompts[i];
            req.decodeTokens = decodes[i];
            req.seed = i;
            serving.enqueue(req);
        }
        const auto outcomes = serving.run();
        std::vector<std::vector<std::size_t>> tokens;
        for (const auto &out : outcomes)
            tokens.push_back(out.tokens);
        return std::make_pair(tokens, serving.stats());
    };

    const auto [plain_tokens, plain_stats] = serve(nullptr);

    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    obs::Sink sink;
    sink.trace = &tracer;
    sink.metrics = &metrics;
    const auto [traced_tokens, traced_stats] = serve(&sink);

    // Observation is pure: bit-identical tokens, identical step clock.
    EXPECT_EQ(traced_tokens, plain_tokens);
    EXPECT_EQ(traced_stats.executedSteps, plain_stats.executedSteps);
    EXPECT_EQ(traced_stats.forwards, plain_stats.forwards);
    EXPECT_EQ(traced_stats.decodedTokens, plain_stats.decodedTokens);

    // The registry mirrors the run's stats exactly.
    EXPECT_EQ(metrics.counter("serving.steps")->value(),
              traced_stats.executedSteps);
    EXPECT_EQ(metrics.counter("serving.forwards")->value(),
              traced_stats.forwards);
    EXPECT_EQ(metrics.counter("serving.decoded_tokens")->value(),
              traced_stats.decodedTokens);
    EXPECT_EQ(metrics.latency("serving.step_seconds")->count(),
              traced_stats.executedSteps);
    EXPECT_EQ(metrics.latency("serving.ttft_seconds")->count(),
              prompts.size());

    // The trace covers the whole stack: scheduler, engine layers,
    // MoE routing and the thread pool's chunks.
    const JValue doc = MiniJsonParser::parse(tracer.toJson());
    std::set<std::string> cats, names;
    for (const JValue &ev : doc.at("traceEvents").items) {
        cats.insert(ev.at("cat").str);
        names.insert(ev.at("name").str);
    }
    for (const char *cat : {"serving", "engine", "moe", "pool"})
        EXPECT_TRUE(cats.count(cat)) << "missing category " << cat;
    for (const char *name :
         {"serve.step", "engine.layer", "engine.attention",
          "engine.unembed", "moe.route", "moe.experts", "pool.chunk"})
        EXPECT_TRUE(names.count(name)) << "missing span " << name;

    // metricsJson is parseable and schema-stable.
    ExecOptions exec;
    Engine engine(cfg, weights, ExecPath::Reference, 8, exec);
    ServingEngine serving(engine);
    ServingRequest req;
    req.prompt = {1};
    req.decodeTokens = 2;
    serving.enqueue(req);
    serving.run();
    const JValue mj = MiniJsonParser::parse(serving.metricsJson());
    EXPECT_EQ(mj.at("requests").number, 1.0);
    EXPECT_EQ(mj.at("requests_detail").items.size(), 1u);
}

// -- PipelineSim tracing ---------------------------------------------------

TEST(PipelineSim, SimulatedTimeTraceIsPureObservation)
{
    auto cfg = defaultGptOssPipeline(2048);
    cfg.warmupTokens = 10;
    cfg.measuredTokens = 30;

    const PipelineResult plain = PipelineSim(cfg).run();

    obs::Tracer tracer;
    cfg.trace = &tracer;
    const PipelineResult traced = PipelineSim(cfg).run();

    EXPECT_EQ(traced.tokensPerSecond, plain.tokensPerSecond);
    EXPECT_EQ(traced.tokenLatency, plain.tokenLatency);
    EXPECT_EQ(traced.breakdown.comm, plain.breakdown.comm);
    EXPECT_EQ(traced.breakdown.projection, plain.breakdown.projection);
    EXPECT_EQ(traced.breakdown.stall, plain.breakdown.stall);
    EXPECT_EQ(traced.simulatedTokens, plain.simulatedTokens);

    ASSERT_GT(tracer.eventCount(), 0u);
    const JValue doc = MiniJsonParser::parse(tracer.toJson());
    std::set<std::string> names;
    bool token_args = false;
    for (const JValue &ev : doc.at("traceEvents").items) {
        EXPECT_EQ(ev.at("cat").str, "pipeline");
        EXPECT_GT(ev.at("dur").number, 0.0)
            << "zero-length ops are not emitted";
        names.insert(ev.at("name").str);
        if (const JValue *args = ev.find("args"))
            token_args = token_args || args->find("token") != nullptr;
    }
    EXPECT_TRUE(token_args);
    // Unit and link resources both appear (hn_qkv0 / col0 exist in any
    // multi-chip default partition).
    EXPECT_TRUE(names.count("hn_qkv0"));
    EXPECT_TRUE(names.count("col0"));
}

// -- Fabric counters -------------------------------------------------------

TEST(Fabric, RegistryCountersMirrorFabricAccessors)
{
    obs::MetricsRegistry reg;
    Fabric fabric(2, 2, CxlLinkParams{});
    fabric.setMetrics(&reg);

    LinkFaultParams faults;
    faults.seed = 9;
    faults.retryProbability = 0.5;
    faults.maxRetries = 1;
    fabric.setLinkFaults(faults);

    Tick at = 0;
    std::uint64_t sends = 0;
    for (int round = 0; round < 40; ++round) {
        at = fabric.send(0, 1, 4096.0, at);
        at = fabric.send(0, 2, 4096.0, at);
        sends += 2;
    }
    // 0->3 shares no row/column: sendRouted takes two hops through a
    // live corner and counts one reroute plus two sends.
    at = fabric.sendRouted(0, 3, 4096.0, at);
    sends += 2;

    EXPECT_GT(fabric.totalRetries(), 0u) << "p=0.5 never retried?";
    EXPECT_EQ(reg.counter("noc.sends")->value(), sends);
    EXPECT_EQ(reg.counter("noc.retries")->value(),
              fabric.totalRetries());
    EXPECT_EQ(reg.counter("noc.retry_timeouts")->value(),
              fabric.retryTimeouts());
    EXPECT_EQ(reg.counter("noc.rerouted")->value(), 1u);
    EXPECT_EQ(fabric.reroutedMessages(), 1u);

    // Detach: further traffic leaves the registry untouched.
    fabric.setMetrics(nullptr);
    const std::uint64_t frozen = reg.counter("noc.sends")->value();
    fabric.send(0, 1, 4096.0, at);
    EXPECT_EQ(reg.counter("noc.sends")->value(), frozen);
}

} // namespace
} // namespace hnlpu
