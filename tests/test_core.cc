/**
 * @file
 * Integration tests of the HnlpuDesign facade: the full Table 2
 * comparison, Table 1 components and cross-model consistency.
 */

#include <gtest/gtest.h>

#include "core/design.hh"
#include "model/model_zoo.hh"

namespace hnlpu {
namespace {

TEST(Design, Table2SystemComparison)
{
    HnlpuDesign design(gptOss120b());
    const auto hn = design.summarize();
    const auto gpu = design.h100Baseline();
    const auto wse = design.wseBaseline();

    // Paper Table 2 headline numbers.
    EXPECT_NEAR(hn.tokensPerSecond, 249960.0, 0.05 * 249960.0);
    EXPECT_NEAR(hn.siliconArea, 13232.0, 70.0);
    EXPECT_NEAR(hn.systemPower, 6900.0, 100.0);
    EXPECT_NEAR(hn.tokensPerKilojoule, 36226.0, 2000.0);
    EXPECT_NEAR(hn.areaEfficiency, 18.89, 1.2);

    // Speedups: 5,555x over H100, 85x over WSE-3 (within 10%).
    const double vs_gpu = hn.tokensPerSecond / gpu.tokensPerSecond;
    const double vs_wse = hn.tokensPerSecond / wse.tokensPerSecond;
    EXPECT_NEAR(vs_gpu, 5555.0, 555.0);
    EXPECT_NEAR(vs_wse, 85.0, 9.0);

    // Energy efficiency: 1,047x over H100, 283x over WSE-3.
    EXPECT_NEAR(hn.tokensPerKilojoule / gpu.tokensPerKilojoule, 1047.0,
                110.0);
    EXPECT_NEAR(hn.tokensPerKilojoule / wse.tokensPerKilojoule, 283.0,
                30.0);
}

TEST(Design, EvaluateProducesAllSections)
{
    HnlpuDesign design(gptOss120b());
    const auto report = design.evaluate();
    EXPECT_EQ(report.chipComponents.size(), 6u);
    EXPECT_GT(report.pipeline.tokensPerSecond, 0.0);
    EXPECT_EQ(report.cost.chipCount, 16u);
    EXPECT_EQ(report.summary.tokensPerSecond,
              report.pipeline.tokensPerSecond);
}

TEST(Design, SmallerSiblingModel)
{
    HnlpuDesign design(gptOss20b());
    const auto report = design.evaluate();
    // Fewer layers -> fewer pipeline slots, smaller silicon.
    EXPECT_EQ(report.pipeline.pipelineSlots, 6u * 24u + 1u);
    HnlpuDesign big(gptOss120b());
    EXPECT_LT(report.summary.siliconArea,
              big.floorplan().systemSiliconArea());
}

TEST(Design, CostModelAccessible)
{
    HnlpuDesign design(gptOss120b());
    const auto tco = design.tcoModel().hnlpu(gptOss120b(), 1);
    EXPECT_GT(tco.tcoStatic.lo, 50e6);
    EXPECT_LT(tco.tcoStatic.hi, 150e6);
}

} // namespace
} // namespace hnlpu
