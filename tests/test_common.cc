/**
 * @file
 * Unit tests for the common utility library.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/math_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace hnlpu {
namespace {

TEST(Units, TickRoundTrip)
{
    EXPECT_EQ(toTicks(1.0), kTicksPerSecond);
    EXPECT_DOUBLE_EQ(toSeconds(kTicksPerSecond), 1.0);
    EXPECT_EQ(toTicks(0.0), 0u);
    EXPECT_NEAR(toSeconds(toTicks(12.345e-6)), 12.345e-6, 1e-12);
}

TEST(Units, SiString)
{
    EXPECT_EQ(siString(249960.0, "tok/s"), "249.96 ktok/s");
    EXPECT_EQ(siString(0.0, "W"), "0 W");
    EXPECT_EQ(siString(1.5e-9, "J", 2), "1.5 nJ");
    EXPECT_EQ(siString(6.9e3, "W", 2), "6.9 kW");
}

TEST(Units, DollarString)
{
    EXPECT_EQ(dollarString(59.46e6), "$ 59.46M");
    EXPECT_EQ(dollarString(6e9, 1), "$ 6G");
    EXPECT_EQ(dollarString(780.0, 3), "$ 780");
}

TEST(Units, CommaString)
{
    EXPECT_EQ(commaString(249960.0), "249,960");
    EXPECT_EQ(commaString(45.0), "45");
    EXPECT_EQ(commaString(1234567.891, 2), "1,234,567.89");
    EXPECT_EQ(commaString(-1234.0), "-1,234");
    EXPECT_EQ(commaString(0.0), "0");
}

TEST(Units, RatioAndPercent)
{
    EXPECT_EQ(ratioString(5555.0, 0), "5,555x");
    EXPECT_EQ(percentString(0.829), "82.9%");
}

TEST(MathUtil, CeilDivRoundUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

TEST(MathUtil, Log2Helpers)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_FALSE(isPow2(0));
}

TEST(MathUtil, RelativeDiff)
{
    EXPECT_NEAR(relativeDiff(100.0, 110.0), 10.0 / 110.0, 1e-12);
    EXPECT_DOUBLE_EQ(relativeDiff(0.0, 0.0), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, WeightedIndexBias)
{
    Rng rng(13);
    std::vector<double> weights{1.0, 3.0};
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.weightedIndex(weights) == 1)
            ++ones;
    }
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(17);
    auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Table, RendersAlignedRows)
{
    Table t({"Metric", "Value"});
    t.addRow({"Throughput", "249,960"});
    t.addSeparator();
    t.addRow({"Power", "6.9 kW"});
    std::string out = t.render();
    EXPECT_NE(out.find("Throughput"), std::string::npos);
    EXPECT_NE(out.find("249,960"), std::string::npos);
    EXPECT_NE(out.find("+"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 3u);
}

TEST(TableDeathTest, RowArityMismatch)
{
    Table t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace hnlpu
