/**
 * @file
 * Tests for the discrete-event kernel, timeline resources and stats.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace hnlpu {
namespace {

TEST(EventQueueTest, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueueTest, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueueTest, RunUntilStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueDeathTest, RejectsPastScheduling)
{
    EventQueue eq;
    eq.schedule(10, [&] { eq.schedule(5, [] {}); });
    EXPECT_DEATH(eq.run(), "past");
}

TEST(TimelineResourceTest, SerialisesOverlappingRequests)
{
    TimelineResource res("r");
    EXPECT_EQ(res.acquire(0, 10), 0u);
    // Ready at 5 but the resource is busy until 10.
    EXPECT_EQ(res.acquire(5, 10), 10u);
    // Ready at 100, after the resource frees.
    EXPECT_EQ(res.acquire(100, 10), 100u);
    EXPECT_EQ(res.busyTicks(), 30u);
    EXPECT_EQ(res.waitTicks(), 5u);
    EXPECT_EQ(res.requests(), 3u);
}

TEST(TimelineResourceTest, UtilizationAndReset)
{
    TimelineResource res("r");
    res.acquire(0, 50);
    EXPECT_DOUBLE_EQ(res.utilization(100), 0.5);
    res.reset();
    EXPECT_EQ(res.busyTicks(), 0u);
    EXPECT_EQ(res.freeAt(), 0u);
}

TEST(ResourcePoolTest, LeastLoadedDispatch)
{
    ResourcePool pool("p", 2);
    // Two overlapping requests run in parallel on distinct servers.
    EXPECT_EQ(pool.acquire(0, 10), 0u);
    EXPECT_EQ(pool.acquire(0, 10), 0u);
    // The third must wait for one of them.
    EXPECT_EQ(pool.acquire(0, 10), 10u);
    EXPECT_EQ(pool.busyTicks(), 30u);
    EXPECT_EQ(pool.requests(), 3u);
}

TEST(AccumulatorTest, Moments)
{
    Accumulator acc;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(HistogramTest, BinningAndQuantiles)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i % 10) + 0.5);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.binCount(0), 10u);
    EXPECT_EQ(h.underflow(), 0u);
    h.add(-1.0);
    h.add(99.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
}

} // namespace
} // namespace hnlpu
