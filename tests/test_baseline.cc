/**
 * @file
 * Tests for the H100 / WSE-3 baseline models, anchored to the paper's
 * Table 2 measurements.
 */

#include <gtest/gtest.h>

#include "baseline/gpu.hh"
#include "baseline/wse.hh"
#include "model/model_zoo.hh"

namespace hnlpu {
namespace {

TEST(GpuBaseline, Table2Anchors)
{
    GpuSystemModel gpu;
    const auto model = gptOss120b();
    // Paper: 45 tokens/s, 34.6 tokens/kJ, 0.055 tokens/(s mm^2).
    EXPECT_NEAR(gpu.tokensPerSecond(model), 45.0, 2.0);
    EXPECT_NEAR(gpu.tokensPerKilojoule(model), 34.6, 1.5);
    EXPECT_NEAR(gpu.areaEfficiency(model), 0.055, 0.004);
}

TEST(GpuBaseline, RooflineAboveMeasured)
{
    GpuSystemModel gpu;
    const auto model = gptOss120b();
    EXPECT_GT(gpu.rooflineTokensPerSecond(model),
              gpu.tokensPerSecond(model));
    // Ideal: 3.35 TB/s over ~2.57 GB active weights ~ 1.31 k tok/s.
    EXPECT_NEAR(gpu.rooflineTokensPerSecond(model), 1306.0, 80.0);
}

TEST(GpuBaseline, FitsChecksCapacity)
{
    GpuSystemModel gpu;
    EXPECT_TRUE(gpu.fits(gptOss120b()));  // ~58 GB in 80 GB
    EXPECT_FALSE(gpu.fits(kimiK2()));     // ~520 GB
}

TEST(GpuBaseline, SmallerModelsRunFaster)
{
    GpuSystemModel gpu;
    EXPECT_GT(gpu.tokensPerSecond(llama3_8b()),
              gpu.tokensPerSecond(qwq32b()));
    EXPECT_GT(gpu.tokensPerSecond(qwq32b()),
              gpu.rooflineTokensPerSecond(qwq32b()) * 0.01);
}

TEST(GpuBaseline, BandwidthSweepScalesThroughput)
{
    GpuParams fast;
    fast.memoryBandwidth = 6.7e12; // 2x
    GpuSystemModel base, doubled(fast);
    const auto model = gptOss120b();
    EXPECT_NEAR(doubled.tokensPerSecond(model),
                2.0 * base.tokensPerSecond(model), 1.0);
}

TEST(WseBaseline, Table2Anchors)
{
    WseSystemModel wse;
    const auto model = gptOss120b();
    // Paper: 2,940 tokens/s, 127.8 tokens/kJ, 0.064 tokens/(s mm^2).
    EXPECT_NEAR(wse.tokensPerSecond(model), 2940.0, 100.0);
    EXPECT_NEAR(wse.tokensPerKilojoule(model), 127.8, 5.0);
    EXPECT_NEAR(wse.areaEfficiency(model), 0.064, 0.004);
}

TEST(WseBaseline, GptOssExceedsOnWaferSram)
{
    WseSystemModel wse;
    EXPECT_FALSE(wse.fitsOnWafer(gptOss120b())); // 58 GB > 44 GB
    EXPECT_TRUE(wse.fitsOnWafer(llama3_8b()));   // 4 GB
}

TEST(Baselines, PaperSpeedupRatiosHold)
{
    GpuSystemModel gpu;
    WseSystemModel wse;
    const auto model = gptOss120b();
    // WSE-3 is ~65x faster than H100 on this workload (2,940 / 45).
    EXPECT_NEAR(wse.tokensPerSecond(model) / gpu.tokensPerSecond(model),
                65.3, 5.0);
}

} // namespace
} // namespace hnlpu
