/**
 * @file
 * Tests for the parallel execution layer: the ThreadPool itself, the
 * thread-safe lazy HN-array programming (the call_once fix), and the
 * bit-exact serial-vs-parallel equivalence of every hot path the
 * engine partitions (Linear rows, HN-array rows, MoE experts,
 * attention heads, full token decode on both execution paths).
 *
 * This binary is also the TSan gate: scripts/tier1.sh rebuilds it with
 * HNLPU_SANITIZE=thread, so any unsynchronised shared state on these
 * paths fails the tier-1 run even when it happens not to corrupt a
 * value.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "model/model_zoo.hh"
#include "xformer/engine.hh"
#include "xformer/linear.hh"
#include "xformer/moe.hh"
#include "xformer/sampler.hh"
#include "xformer/weights.hh"

namespace hnlpu {
namespace {

Vec
randomVec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Vec x(n);
    for (double &v : x)
        v = rng.gaussian(0.0, 1.0);
    return x;
}

TEST(ThreadPool, ChunkRangeIsADisjointCover)
{
    for (std::size_t n : {0u, 1u, 2u, 7u, 8u, 64u, 1000u}) {
        for (std::size_t chunks : {1u, 2u, 3u, 4u, 8u, 13u}) {
            std::size_t expected_begin = 0;
            for (std::size_t i = 0; i < chunks; ++i) {
                const auto [begin, end] =
                    ThreadPool::chunkRange(i, chunks, n);
                EXPECT_EQ(begin, expected_begin);
                EXPECT_LE(begin, end);
                expected_begin = end;
            }
            EXPECT_EQ(expected_begin, n);
        }
    }
}

TEST(ThreadPool, AlignedChunkRangeIsADisjointCover)
{
    for (std::size_t n : {1u, 2u, 5u, 7u, 8u, 64u, 100u, 1000u}) {
        for (std::size_t chunks : {1u, 2u, 3u, 4u, 8u, 13u}) {
            for (std::size_t align : {1u, 2u, 8u, 16u}) {
                std::size_t expected_begin = 0;
                for (std::size_t i = 0; i < chunks; ++i) {
                    const auto [begin, end] =
                        ThreadPool::alignedChunkRange(i, chunks, n,
                                                      align);
                    EXPECT_EQ(begin, expected_begin)
                        << "n " << n << " chunks " << chunks
                        << " align " << align << " chunk " << i;
                    EXPECT_LE(begin, end);
                    // Interior boundaries land on the alignment, so a
                    // cache line of outputs never straddles two
                    // workers' chunks.
                    if (i > 0)
                        EXPECT_EQ(begin % align, 0u);
                    expected_begin = end;
                }
                EXPECT_EQ(expected_begin, n);
            }
        }
    }
}

TEST(ThreadPool, EffectiveChunksIsWorkSizeAware)
{
    // Tiny jobs never fan out wider than n / grain: a 12-row GEMV on
    // an 8-wide pool with a 16-row grain stays serial.
    EXPECT_EQ(ThreadPool::effectiveChunks(12, 16, 8, 0), 1u);
    EXPECT_EQ(ThreadPool::effectiveChunks(64, 16, 8, 0), 4u);
    EXPECT_EQ(ThreadPool::effectiveChunks(128, 16, 8, 0), 8u);
    // grain 1 (default): bounded by n and the pool width.
    EXPECT_EQ(ThreadPool::effectiveChunks(3, 1, 8, 0), 3u);
    EXPECT_EQ(ThreadPool::effectiveChunks(1000, 1, 8, 0), 8u);
    // The hardware cap clamps an oversubscribed pool.
    EXPECT_EQ(ThreadPool::effectiveChunks(1000, 1, 8, 2), 2u);
    EXPECT_EQ(ThreadPool::effectiveChunks(1000, 1, 2, 8), 2u);
    // Degenerate inputs still yield one chunk.
    EXPECT_EQ(ThreadPool::effectiveChunks(1, 100, 8, 0), 1u);
    EXPECT_EQ(ThreadPool::effectiveChunks(5, 1, 0, 0), 1u);
}

TEST(ThreadPool, ParallelForChunkedVisitsEveryIndexExactlyOnce)
{
    // cap_to_hardware=false forces real fan-out even on narrow CI
    // machines, so the chunked dispatch/join handshake is exercised.
    ThreadPool pool(4, /*cap_to_hardware=*/false);
    for (std::size_t n : {1u, 3u, 5u, 16u, 129u}) {
        for (std::size_t align : {1u, 8u}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto &h : hits)
                h = 0;
            std::atomic<std::size_t> max_chunk{0};
            pool.parallelForChunked(
                n,
                [&](std::size_t chunk, std::size_t begin,
                    std::size_t end) {
                    std::size_t seen = max_chunk.load();
                    while (chunk > seen &&
                           !max_chunk.compare_exchange_weak(seen,
                                                            chunk)) {
                    }
                    for (std::size_t i = begin; i < end; ++i)
                        ++hits[i];
                },
                1, align);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "n " << n << " align " << align << " index "
                    << i;
            EXPECT_LT(max_chunk.load(), pool.threadCount());
        }
    }
}

TEST(ThreadPool, GrainKeepsTinyJobsSerial)
{
    // Satellite regression: a 12-element job with a 16-element grain
    // must not wake any worker -- it runs as chunk 0 on the caller.
    ThreadPool pool(8, /*cap_to_hardware=*/false);
    std::atomic<std::size_t> chunks_seen{0};
    std::atomic<std::size_t> visited{0};
    pool.parallelForChunked(
        12,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
            EXPECT_EQ(chunk, 0u);
            ++chunks_seen;
            visited += end - begin;
        },
        /*grain=*/16);
    EXPECT_EQ(chunks_seen.load(), 1u);
    EXPECT_EQ(visited.load(), 12u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4, /*cap_to_hardware=*/false);
    EXPECT_EQ(pool.threadCount(), 4u);
    for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 129u}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h = 0;
        pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                ++hits[i];
        });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::size_t visited = 0;
    pool.parallelFor(10, [&](std::size_t begin, std::size_t end) {
        visited += end - begin;
    });
    EXPECT_EQ(visited, 10u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4, /*cap_to_hardware=*/false);
    std::vector<std::atomic<int>> hits(64);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(8, [&](std::size_t begin, std::size_t end) {
        for (std::size_t outer = begin; outer < end; ++outer) {
            // Nested call from a pool-owned region: must run inline.
            pool.parallelFor(8, [&](std::size_t b, std::size_t e) {
                for (std::size_t inner = b; inner < e; ++inner)
                    ++hits[outer * 8 + inner];
            });
        }
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(3, /*cap_to_hardware=*/false);
    std::atomic<std::size_t> total{0};
    for (int job = 0; job < 200; ++job) {
        pool.parallelFor(17, [&](std::size_t begin, std::size_t end) {
            total += end - begin;
        });
    }
    EXPECT_EQ(total.load(), 200u * 17u);
}

// Regression for the lazy hardwired-array data race: before the
// std::call_once fix, concurrent first use of a Linear's Hardwired
// path raced on the lazily-built HN array (and TSan flags the old
// unsynchronised write even when the values survive).
TEST(Linear, ConcurrentHardwiredFirstUseProgramsOnce)
{
    const Linear lin = Linear::random(24, 64, 99);
    const Vec x = randomVec(64, 5);
    const Vec serial = lin.forward(x, ExecPath::Hardwired, 12);

    constexpr int kThreads = 8;
    std::vector<Vec> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            results[t] = lin.forward(x, ExecPath::Hardwired, 12);
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(results[t], serial) << "thread " << t;
}

TEST(Linear, CopiesShareTheHardwiredArrayUnderConcurrency)
{
    const Linear original = Linear::random(16, 32, 7);
    const Linear copy = original; // shares the once-flag and array
    const Vec x = randomVec(32, 11);

    Vec from_original, from_copy;
    std::thread a([&] {
        from_original = original.forward(x, ExecPath::Hardwired, 10);
    });
    std::thread b([&] {
        from_copy = copy.forward(x, ExecPath::Hardwired, 10);
    });
    a.join();
    b.join();
    EXPECT_EQ(from_original, from_copy);
}

TEST(Linear, ParallelRowsBitExactOnBothPaths)
{
    const Linear lin = Linear::random(37, 48, 123);
    const Vec x = randomVec(48, 17);
    ThreadPool pool(4);

    const Vec ref_serial = lin.forward(x, ExecPath::Reference);
    const Vec ref_parallel =
        lin.forward(x, ExecPath::Reference, 8, nullptr, &pool);
    EXPECT_EQ(ref_serial, ref_parallel);

    const Vec hw_serial = lin.forward(x, ExecPath::Hardwired, 10);
    const Vec hw_parallel =
        lin.forward(x, ExecPath::Hardwired, 10, nullptr, &pool);
    EXPECT_EQ(hw_serial, hw_parallel);
}

TEST(Linear, ParallelHardwiredActivityMatchesSerial)
{
    const Linear lin = Linear::random(29, 40, 321);
    const Vec x = randomVec(40, 23);
    ThreadPool pool(4);

    HnActivity serial, parallel;
    const Vec a = lin.forward(x, ExecPath::Hardwired, 9, &serial);
    const Vec b =
        lin.forward(x, ExecPath::Hardwired, 9, &parallel, &pool);
    EXPECT_EQ(a, b);
    EXPECT_EQ(serial.cycles, parallel.cycles);
    EXPECT_EQ(serial.popcountBitOps, parallel.popcountBitOps);
    EXPECT_EQ(serial.multiplyOps, parallel.multiplyOps);
    EXPECT_EQ(serial.treeAddOps, parallel.treeAddOps);
}

MoeLayer
testMoe(std::size_t hidden, std::size_t experts, std::size_t active,
        std::uint64_t seed)
{
    std::vector<Expert> ex;
    ex.reserve(experts);
    for (std::size_t e = 0; e < experts; ++e) {
        ex.push_back(Expert{
            Linear::random(hidden * 2, hidden, seed + 3 * e),
            Linear::random(hidden * 2, hidden, seed + 3 * e + 1),
            Linear::random(hidden, hidden * 2, seed + 3 * e + 2),
        });
    }
    return MoeLayer(Linear::random(experts, hidden, seed + 1000),
                    std::move(ex), active);
}

TEST(MoeLayer, ParallelExpertsBitExact)
{
    const MoeLayer moe = testMoe(24, 4, 2, 77);
    const Vec x = randomVec(24, 31);
    ThreadPool pool(4);

    for (ExecPath path : {ExecPath::Reference, ExecPath::Hardwired}) {
        std::vector<std::size_t> serial_sel, parallel_sel;
        const Vec serial = moe.forward(x, path, 10, &serial_sel);
        const Vec parallel =
            moe.forward(x, path, 10, &parallel_sel, &pool);
        EXPECT_EQ(serial, parallel);
        EXPECT_EQ(serial_sel, parallel_sel);
    }
}

struct EngineRun
{
    std::vector<Vec> logits;
    std::vector<std::size_t> generated;
    EngineStats stats;
};

EngineRun
runEngine(const TransformerConfig &cfg, const ModelWeights &weights,
          ExecPath path, std::size_t threads)
{
    Engine engine(cfg, weights, path, 8, ExecOptions{threads});
    KvCache cache = engine.makeCache();
    EngineRun run;
    for (std::size_t token : {3u, 17u, 42u, 8u})
        run.logits.push_back(engine.forwardToken(token, cache));

    Sampler greedy(SamplerConfig{}, 1);
    run.generated = engine.generate({3, 17, 42}, 6, greedy);
    run.stats = engine.stats();
    return run;
}

void
expectRunsEqual(const EngineRun &serial, const EngineRun &parallel)
{
    ASSERT_EQ(serial.logits.size(), parallel.logits.size());
    for (std::size_t i = 0; i < serial.logits.size(); ++i)
        EXPECT_EQ(serial.logits[i], parallel.logits[i])
            << "logits diverge at step " << i;
    EXPECT_EQ(serial.generated, parallel.generated);
    EXPECT_EQ(serial.stats.expertHistogram,
              parallel.stats.expertHistogram);
    EXPECT_EQ(serial.stats.hnActivity.cycles,
              parallel.stats.hnActivity.cycles);
    EXPECT_EQ(serial.stats.hnActivity.popcountBitOps,
              parallel.stats.hnActivity.popcountBitOps);
    EXPECT_EQ(serial.stats.hnActivity.multiplyOps,
              parallel.stats.hnActivity.multiplyOps);
    EXPECT_EQ(serial.stats.hnActivity.treeAddOps,
              parallel.stats.hnActivity.treeAddOps);
}

TEST(Engine, ParallelDecodeBitExactOnReferencePath)
{
    const TransformerConfig cfg = tinyTestModel();
    const ModelWeights weights = ModelWeights::randomInit(cfg, 1234);
    const EngineRun serial =
        runEngine(cfg, weights, ExecPath::Reference, 1);
    for (std::size_t threads : {2u, 4u}) {
        const EngineRun parallel =
            runEngine(cfg, weights, ExecPath::Reference, threads);
        expectRunsEqual(serial, parallel);
    }
}

TEST(Engine, ParallelDecodeBitExactOnHardwiredPath)
{
    const TransformerConfig cfg = tinyTestModel();
    const ModelWeights weights = ModelWeights::randomInit(cfg, 1234);
    const EngineRun serial =
        runEngine(cfg, weights, ExecPath::Hardwired, 1);
    const EngineRun parallel =
        runEngine(cfg, weights, ExecPath::Hardwired, 4);
    expectRunsEqual(serial, parallel);
}

TEST(Engine, ScoreAndEmbedBitExactUnderThreads)
{
    const TransformerConfig cfg = tinyTestModel();
    const ModelWeights weights = ModelWeights::randomInit(cfg, 99);
    const std::vector<std::size_t> tokens{1, 5, 9, 2, 60};

    Engine serial(cfg, weights, ExecPath::Reference);
    Engine parallel(cfg, weights, ExecPath::Reference, 8,
                    ExecOptions{4});
    EXPECT_EQ(serial.scoreSequence(tokens),
              parallel.scoreSequence(tokens));
    EXPECT_EQ(serial.embedSequence(tokens),
              parallel.embedSequence(tokens));
}

} // namespace
} // namespace hnlpu
