/**
 * @file
 * Tests for the CXL link model, row-column fabric topology and the
 * timed/functional collectives.
 */

#include <gtest/gtest.h>

#include "noc/collectives.hh"
#include "noc/fabric.hh"
#include "noc/link.hh"

namespace hnlpu {
namespace {

CxlLinkParams
testLink()
{
    CxlLinkParams p;
    p.bandwidth = 100e9;
    p.efficiency = 1.0;
    p.latency = 100e-9;
    p.perMessageOverhead = 0.0;
    return p;
}

TEST(CxlLink, TransferTimes)
{
    CxlLinkParams p = testLink();
    // 10 KB at 100 GB/s = 100 ns serialisation.
    EXPECT_EQ(p.serializationTicks(10000.0), toTicks(100e-9));
    EXPECT_EQ(p.messageTicks(10000.0), toTicks(200e-9));
    EXPECT_EQ(p.latencyTicks(), toTicks(100e-9));
}

TEST(CxlLink, OverheadAndEfficiency)
{
    CxlLinkParams p = testLink();
    p.efficiency = 0.5;
    p.perMessageOverhead = 1000.0;
    // (1000 + 1000) / 50 GB/s = 40 ns.
    EXPECT_EQ(p.serializationTicks(1000.0), toTicks(40e-9));
}

TEST(FabricTest, TopologyRowColumnOnly)
{
    Fabric fabric(4, 4, testLink());
    EXPECT_EQ(fabric.chipCount(), 16u);
    EXPECT_EQ(fabric.linksPerChip(), 6u);

    const ChipId c00 = fabric.chipAt(0, 0);
    const ChipId c03 = fabric.chipAt(0, 3);
    const ChipId c30 = fabric.chipAt(3, 0);
    const ChipId c11 = fabric.chipAt(1, 1);
    EXPECT_TRUE(fabric.connected(c00, c03));  // same row
    EXPECT_TRUE(fabric.connected(c00, c30));  // same column
    EXPECT_FALSE(fabric.connected(c00, c11)); // diagonal
    EXPECT_FALSE(fabric.connected(c00, c00));

    EXPECT_EQ(fabric.rowPeers(c00).size(), 3u);
    EXPECT_EQ(fabric.colPeers(c00).size(), 3u);
}

TEST(FabricTest, SendOccupiesLinkSerially)
{
    Fabric fabric(2, 2, testLink());
    const ChipId a = fabric.chipAt(0, 0);
    const ChipId b = fabric.chipAt(0, 1);
    // 10 KB -> 100 ns serialisation + 100 ns latency.
    Tick t1 = fabric.send(a, b, 10000.0, 0);
    EXPECT_EQ(t1, toTicks(200e-9));
    // Second message queues behind the first on the same link.
    Tick t2 = fabric.send(a, b, 10000.0, 0);
    EXPECT_EQ(t2, toTicks(300e-9));
    // The reverse direction is an independent link.
    Tick t3 = fabric.send(b, a, 10000.0, 0);
    EXPECT_EQ(t3, toTicks(200e-9));
    EXPECT_EQ(fabric.totalMessages(), 3u);
}

TEST(FabricDeathTest, NoDiagonalLink)
{
    Fabric fabric(4, 4, testLink());
    EXPECT_DEATH(fabric.send(fabric.chipAt(0, 0), fabric.chipAt(1, 1),
                             100.0, 0),
                 "no link");
}

TEST(Collectives, BroadcastAndReduceTiming)
{
    Fabric fabric(4, 4, testLink());
    std::vector<ChipId> row{0, 1, 2, 3};
    // Root sends over 3 dedicated links in parallel: one message time.
    Tick done = timedBroadcast(fabric, 0, row, 10000.0, 0);
    EXPECT_EQ(done, toTicks(200e-9));

    fabric.reset();
    done = timedReduce(fabric, row, 0, 10000.0, 0);
    EXPECT_EQ(done, toTicks(200e-9));
}

TEST(Collectives, AllReduceSingleStepDirect)
{
    Fabric fabric(4, 4, testLink());
    std::vector<ChipId> col{0, 4, 8, 12};
    Tick done = timedAllReduce(fabric, col, 10000.0, 0);
    // Every ordered pair has a dedicated link: one message time.
    EXPECT_EQ(done, toTicks(200e-9));
    // 4 * 3 directed messages.
    EXPECT_EQ(fabric.totalMessages(), 12u);
}

TEST(Collectives, GridAllReduceTwoPhases)
{
    Fabric fabric(4, 4, testLink());
    Tick done = timedGridAllReduce(fabric, 10000.0, 0);
    // Row phase then column phase, each one message time.
    EXPECT_EQ(done, toTicks(400e-9));
    EXPECT_EQ(fabric.totalMessages(), 16u * 3u * 2u);
}

TEST(CollectivesDeathTest, RejectsUnlinkedGroup)
{
    Fabric fabric(4, 4, testLink());
    std::vector<ChipId> diagonal{0, 5};
    EXPECT_DEATH(timedAllReduce(fabric, diagonal, 1.0, 0),
                 "not directly linked");
}

TEST(Collectives, DataAllReduce)
{
    std::vector<ChipVec> data{{1, 2}, {3, 4}, {5, 6}, {7, 8}};
    dataAllReduce(data, {0, 1, 2, 3});
    for (const auto &v : data) {
        EXPECT_DOUBLE_EQ(v[0], 16.0);
        EXPECT_DOUBLE_EQ(v[1], 20.0);
    }
}

TEST(Collectives, DataBroadcastAndGather)
{
    std::vector<ChipVec> data{{1}, {2}, {3}, {4}};
    dataBroadcast(data, 2, {0, 1, 2, 3});
    for (const auto &v : data)
        EXPECT_DOUBLE_EQ(v[0], 3.0);

    std::vector<ChipVec> shards{{1}, {2}, {3}, {4}};
    dataAllGather(shards, {0, 1, 2, 3});
    for (const auto &v : shards)
        EXPECT_EQ(v, (ChipVec{1, 2, 3, 4}));
}

TEST(Collectives, DataGridAllReduceEqualsGlobalSum)
{
    // 2x2 grid: values 1..4, global sum 10 everywhere.
    std::vector<ChipVec> data{{1}, {2}, {3}, {4}};
    dataGridAllReduce(data, 2, 2);
    for (const auto &v : data)
        EXPECT_DOUBLE_EQ(v[0], 10.0);
}

class GridShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(GridShapes, GridAllReduceAnyShape)
{
    const auto [rows, cols] = GetParam();
    std::vector<ChipVec> data(rows * cols);
    double expected = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = {double(i + 1)};
        expected += double(i + 1);
    }
    dataGridAllReduce(data, rows, cols);
    for (const auto &v : data)
        EXPECT_DOUBLE_EQ(v[0], expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 4},
                      std::pair<std::size_t, std::size_t>{4, 1},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{3, 5}));

} // namespace
} // namespace hnlpu
