/**
 * @file
 * Tests for model descriptors and chip partitioning.  The gpt-oss 120 B
 * parameter accounting is pinned against the publicly known figures the
 * paper relies on (~117 B total, ~5 B active per token).
 */

#include <gtest/gtest.h>

#include "model/model_zoo.hh"
#include "model/partition.hh"

namespace hnlpu {
namespace {

TEST(ModelZoo, GptOss120bShapes)
{
    const auto cfg = gptOss120b();
    EXPECT_EQ(cfg.hiddenSize, 2880u);
    EXPECT_EQ(cfg.layerCount, 36u);
    EXPECT_EQ(cfg.qProjectionDim(), 4096u);
    EXPECT_EQ(cfg.kvProjectionDim(), 512u);
    EXPECT_EQ(cfg.gqaGroupSize(), 8u);
    EXPECT_EQ(cfg.expertCount, 128u);
    EXPECT_EQ(cfg.activeExperts, 4u);
}

TEST(ModelZoo, GptOss120bParameterCount)
{
    const auto cfg = gptOss120b();
    // ~116.8 B total parameters, ~5.1 B active per token.
    EXPECT_NEAR(double(cfg.totalParams()), 116.8e9, 2.0e9);
    EXPECT_NEAR(double(cfg.activeParams()), 5.1e9, 0.6e9);
    // FP4: ~58 GB of weights.
    EXPECT_NEAR(cfg.totalWeightBytes(), 58.4e9, 1.5e9);
}

TEST(ModelZoo, Table4ModelSizes)
{
    EXPECT_NEAR(double(kimiK2().totalParams()), 1.0e12, 0.08e12);
    EXPECT_NEAR(double(deepSeekV3().totalParams()), 671e9, 40e9);
    EXPECT_NEAR(double(qwq32b().totalParams()), 32e9, 3e9);
    EXPECT_NEAR(double(llama3_8b().totalParams()), 8e9, 1e9);
}

TEST(ModelZoo, ActiveLessThanTotalForMoe)
{
    for (const auto &cfg : productionModels()) {
        EXPECT_LE(cfg.activeParams(), cfg.totalParams()) << cfg.name;
        if (cfg.expertCount > 1) {
            EXPECT_LT(cfg.activeParams(), cfg.totalParams() / 2)
                << cfg.name;
        }
    }
}

TEST(ModelZoo, KvBytesPerToken)
{
    const auto cfg = gptOss120b();
    // 8 KV heads * 64 dims * 2 (K,V) * 1 byte = 1024 B per layer.
    EXPECT_DOUBLE_EQ(cfg.kvBytesPerTokenPerLayer(), 1024.0);
    EXPECT_DOUBLE_EQ(cfg.kvBytesPerToken(), 1024.0 * 36);
}

TEST(ModelZoo, TinyModelValidates)
{
    const auto cfg = tinyTestModel();
    EXPECT_LT(cfg.totalParams(), 3'000'000u);
    EXPECT_EQ(cfg.gqaGroupSize(), 2u);
}

TEST(Partition, GptOssTilesOnFourByFour)
{
    const auto part = makePartition(gptOss120b());
    EXPECT_EQ(part.chipCount(), 16u);
    EXPECT_EQ(part.hiddenSlice(), 720u);
    EXPECT_EQ(part.queryHeadsPerColumn(), 16u);
    EXPECT_EQ(part.kvHeadsPerColumn(), 2u);
    EXPECT_EQ(part.expertsPerChip(), 8u);
}

TEST(Partition, PerChipParamsSumToModel)
{
    const auto cfg = gptOss120b();
    const auto part = makePartition(cfg);
    // 16 chips each hold ~1/16th of the model plus a replicated router.
    const double per_chip = double(part.paramsPerChip());
    EXPECT_NEAR(per_chip * 16, double(cfg.totalParams()),
                0.01 * double(cfg.totalParams()));
    EXPECT_GT(per_chip * 16, double(cfg.totalParams()) - 1.0);
}

TEST(Partition, CollectiveMessageSizes)
{
    const auto part = makePartition(gptOss120b());
    // Query per column: 16 heads x 64 dims = 1024 B.
    EXPECT_DOUBLE_EQ(part.queryReduceBytes(), 1024.0);
    // K (or V) group per column: 2 heads x 64 = 128 B.
    EXPECT_DOUBLE_EQ(part.kvReduceBytes(), 128.0);
    // Z for 512 cached tokens per chip: 2 x 8 x 512 = 8192 B.
    EXPECT_DOUBLE_EQ(part.scoreReduceBytes(512), 8192.0);
    // Attention output partials: 2 x 8 x 64 = 1024 B.
    EXPECT_DOUBLE_EQ(part.attnOutReduceBytes(), 1024.0);
    // Xo slice: 720 B; MoE combine: 2880 B.
    EXPECT_DOUBLE_EQ(part.xoReduceBytes(), 720.0);
    EXPECT_DOUBLE_EQ(part.moeReduceBytes(), 2880.0);
}

TEST(PartitionDeathTest, RejectsNonTilingModel)
{
    TransformerConfig cfg = gptOss120b();
    cfg.hiddenSize = 2881; // no longer divisible by 4
    EXPECT_DEATH(makePartition(cfg), "tile");
}

TEST(Partition, SuggestChipCount)
{
    const auto cfg = gptOss120b();
    const std::uint64_t per_chip = cfg.totalParams() / 16 + 1;
    EXPECT_EQ(suggestChipCount(cfg, per_chip), 16u);
    EXPECT_EQ(suggestChipCount(llama3_8b(), per_chip), 2u);
    EXPECT_GE(suggestChipCount(kimiK2(), per_chip), 100u);
}

} // namespace
} // namespace hnlpu
