/**
 * @file
 * Tests for the functional transformer engine: operator correctness,
 * MoE routing, KV cache behaviour and the reference-vs-hardwired
 * execution-path equivalence that underpins the whole HNLPU claim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hh"
#include "model/model_zoo.hh"
#include "xformer/engine.hh"
#include "xformer/linear.hh"
#include "xformer/moe.hh"
#include "xformer/ops.hh"
#include "xformer/sampler.hh"
#include "xformer/serving.hh"
#include "xformer/tensor.hh"
#include "xformer/weights.hh"

namespace hnlpu {
namespace {

TEST(Tensor, MatVecBasics)
{
    Mat m(2, 3);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(0, 2) = 3;
    m.at(1, 0) = -1;
    m.at(1, 1) = 0;
    m.at(1, 2) = 1;
    Vec y = matVec(m, {1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);

    Vec yt = matTVec(m, {1.0, 2.0});
    EXPECT_DOUBLE_EQ(yt[0], -1.0);
    EXPECT_DOUBLE_EQ(yt[1], 2.0);
    EXPECT_DOUBLE_EQ(yt[2], 5.0);
}

TEST(Tensor, ElementwiseOps)
{
    Vec a{1.0, 2.0}, b{3.0, -1.0};
    EXPECT_DOUBLE_EQ(add(a, b)[0], 4.0);
    EXPECT_DOUBLE_EQ(hadamard(a, b)[1], -2.0);
    EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
    Vec c = a;
    scale(c, 2.0);
    EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(Ops, RmsNormUnitScale)
{
    Vec x{3.0, 4.0};
    Vec gain{1.0, 1.0};
    Vec out = rmsNorm(x, gain, 0.0);
    // rms = sqrt((9+16)/2) = sqrt(12.5)
    const double rms = std::sqrt(12.5);
    EXPECT_NEAR(out[0], 3.0 / rms, 1e-12);
    EXPECT_NEAR(out[1], 4.0 / rms, 1e-12);
    // Output RMS is 1.
    EXPECT_NEAR(std::sqrt((out[0] * out[0] + out[1] * out[1]) / 2), 1.0,
                1e-12);
}

TEST(Ops, SoftmaxNormalisesAndOrders)
{
    Vec p = softmax({1.0, 2.0, 3.0});
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
    EXPECT_LT(p[0], p[1]);
    EXPECT_LT(p[1], p[2]);
    // Stability under large logits.
    Vec q = softmax({1000.0, 1001.0});
    EXPECT_NEAR(q[0] + q[1], 1.0, 1e-12);
    EXPECT_GT(q[1], q[0]);
}

TEST(Ops, SwiGluMatchesDefinition)
{
    Vec gate{1.0, -2.0}, up{2.0, 3.0};
    Vec out = swiGlu(gate, up);
    EXPECT_NEAR(out[0], silu(1.0) * 2.0, 1e-12);
    EXPECT_NEAR(out[1], silu(-2.0) * 3.0, 1e-12);
}

TEST(Ops, RopePreservesNormAndIsPositionDependent)
{
    Vec head{1.0, 0.0, 0.5, -0.5};
    Vec at_zero = head;
    applyRope(at_zero, 0);
    // Position 0 is the identity rotation.
    for (std::size_t i = 0; i < head.size(); ++i)
        EXPECT_NEAR(at_zero[i], head[i], 1e-12);

    Vec at_five = head;
    applyRope(at_five, 5);
    EXPECT_NEAR(dot(at_five, at_five), dot(head, head), 1e-12);
    // Different positions rotate differently.
    double diff = 0.0;
    for (std::size_t i = 0; i < head.size(); ++i)
        diff += std::fabs(at_five[i] - head[i]);
    EXPECT_GT(diff, 1e-3);
}

TEST(Ops, RopeRelativePropertyOnDotProducts)
{
    // <rope(q,m), rope(k,n)> depends only on m-n.
    Vec q{0.3, -0.7, 1.1, 0.2}, k{-0.4, 0.9, 0.1, 0.5};
    auto rotated_dot = [&](std::size_t m, std::size_t n) {
        Vec qq = q, kk = k;
        applyRope(qq, m);
        applyRope(kk, n);
        return dot(qq, kk);
    };
    EXPECT_NEAR(rotated_dot(3, 1), rotated_dot(7, 5), 1e-9);
    EXPECT_NEAR(rotated_dot(10, 10), rotated_dot(0, 0), 1e-9);
}

TEST(Ops, TopKOrdersDescending)
{
    auto idx = topK({0.1, 0.9, 0.5, 0.9}, 3);
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 1u); // stable: first of the tied maxima
    EXPECT_EQ(idx[1], 3u);
    EXPECT_EQ(idx[2], 2u);
}

TEST(Linear, ReferenceMatchesHardwiredWithinQuantisation)
{
    Linear lin = Linear::random(24, 96, 42);
    Rng rng(7);
    Vec x(96);
    for (double &v : x)
        v = rng.gaussian(0.0, 1.0);

    const Vec ref = lin.forward(x, ExecPath::Reference);
    const Vec hw = lin.forward(x, ExecPath::Hardwired, 12);
    ASSERT_EQ(ref.size(), hw.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(hw[i], ref[i], 0.05) << "row " << i;
}

TEST(Linear, HardwiredExactForQuantisedInputs)
{
    // When activations are already integers on the quantiser grid
    // (abs max == max code so the scale is exactly 1) the two paths
    // agree bit-exactly.
    Linear lin = Linear::random(8, 32, 9);
    Rng rng(4);
    Vec x(32);
    for (double &v : x)
        v = static_cast<double>(rng.uniformInt(-127, 127));
    x[0] = 127.0; // pin the scale to exactly 1
    const Vec ref = lin.forward(x, ExecPath::Reference);
    const Vec hw = lin.forward(x, ExecPath::Hardwired, 8);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(hw[i], ref[i], 1e-9);
}

TEST(Linear, FromRealQuantisesToGrid)
{
    Mat w(1, 4);
    w.at(0, 0) = 0.9;
    w.at(0, 1) = -3.2;
    w.at(0, 2) = 10.0;
    w.at(0, 3) = 0.0;
    Linear lin = Linear::fromReal(w);
    EXPECT_DOUBLE_EQ(lin.weightValue(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(lin.weightValue(0, 1), -3.0);
    EXPECT_DOUBLE_EQ(lin.weightValue(0, 2), 6.0); // saturates
    EXPECT_DOUBLE_EQ(lin.weightValue(0, 3), 0.0);
}

TEST(Moe, TopKRoutingSelectsActiveExperts)
{
    const std::size_t hidden = 16, ffn = 24, experts = 8, k = 2;
    std::vector<Expert> ex;
    for (std::size_t e = 0; e < experts; ++e) {
        ex.push_back(Expert{Linear::random(ffn, hidden, 100 + e),
                            Linear::random(ffn, hidden, 200 + e),
                            Linear::random(hidden, ffn, 300 + e)});
    }
    MoeLayer moe(Linear::random(experts, hidden, 999), std::move(ex), k);

    Rng rng(5);
    Vec x(hidden);
    for (double &v : x)
        v = rng.gaussian(0.0, 1.0);

    std::vector<std::size_t> selected;
    Vec out = moe.forward(x, ExecPath::Reference, 8, &selected);
    EXPECT_EQ(out.size(), hidden);
    EXPECT_EQ(selected.size(), k);
    EXPECT_NE(selected[0], selected[1]);
}

TEST(Moe, DenseLayerBypassesRouter)
{
    Expert ex{Linear::random(12, 8, 1), Linear::random(12, 8, 2),
              Linear::random(8, 12, 3)};
    MoeLayer dense = MoeLayer::dense(std::move(ex));
    std::vector<std::size_t> selected;
    Vec out = dense.forward(Vec(8, 0.5), ExecPath::Reference, 8,
                            &selected);
    EXPECT_EQ(out.size(), 8u);
    ASSERT_EQ(selected.size(), 1u);
    EXPECT_EQ(selected[0], 0u);
}

TEST(KvCacheTest, AppendAndLookup)
{
    KvCache cache(2, 2, 4);
    EXPECT_EQ(cache.length(), 0u);
    std::vector<Vec> k{{1, 2, 3, 4}, {5, 6, 7, 8}};
    std::vector<Vec> v{{9, 9, 9, 9}, {8, 8, 8, 8}};
    cache.append(0, k, v);
    EXPECT_EQ(cache.length(), 0u); // advances after the last layer
    cache.append(1, k, v);
    EXPECT_EQ(cache.length(), 1u);
    EXPECT_DOUBLE_EQ(cache.key(0, 1, 0)[2], 7.0);
    EXPECT_DOUBLE_EQ(cache.value(1, 0, 0)[0], 9.0);
}

TEST(SamplerTest, GreedyPicksArgmax)
{
    Sampler sampler({0.0, 0}, 1);
    EXPECT_EQ(sampler.sample({0.1, 5.0, 3.0}), 1u);
}

TEST(SamplerTest, TemperatureSamplingIsDistributional)
{
    Sampler sampler({1.0, 0}, 123);
    int counts[2] = {0, 0};
    for (int i = 0; i < 2000; ++i)
        counts[sampler.sample({0.0, 1.0})]++;
    // P(1) = e/(1+e) ~ 0.731.
    EXPECT_NEAR(counts[1] / 2000.0, 0.731, 0.05);
}

TEST(SamplerTest, TopKRestrictsSupport)
{
    Sampler sampler({1.0, 2}, 77);
    for (int i = 0; i < 200; ++i) {
        std::size_t t = sampler.sample({10.0, 9.0, -50.0, -60.0});
        EXPECT_LT(t, 2u);
    }
}

class EnginePathEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EnginePathEquivalence, GreedyDecodeMatchesReference)
{
    // The headline functional claim: the hardwired bit-serial machine
    // generates the same tokens as the reference float executor over the
    // same FP4 weights (activation quantisation of `width` bits).
    const unsigned width = GetParam();
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 2024);

    Engine ref_engine(cfg, weights, ExecPath::Reference);
    Engine hw_engine(cfg, weights, ExecPath::Hardwired, width);

    const std::vector<std::size_t> prompt{1, 5, 9, 2};

    // First, the logits after prefill must be close (cosine similarity
    // degrading gracefully with activation width).
    KvCache ref_cache = ref_engine.makeCache();
    KvCache hw_cache = hw_engine.makeCache();
    Vec ref_logits, hw_logits;
    for (std::size_t token : prompt) {
        ref_logits = ref_engine.forwardToken(token, ref_cache);
        hw_logits = hw_engine.forwardToken(token, hw_cache);
    }
    const double cosine =
        dot(ref_logits, hw_logits) /
        std::sqrt(dot(ref_logits, ref_logits) *
                  dot(hw_logits, hw_logits));
    EXPECT_GT(cosine, width >= 12 ? 0.9999 : 0.97) << "width " << width;

    // Second, with 12+ bit activations greedy rollouts must match
    // token-for-token (the tiny model amplifies quantisation noise, so
    // 8-bit rollouts are only held to the logit-similarity bar above).
    if (width >= 12) {
        Sampler greedy_a({0.0, 0}, 0), greedy_b({0.0, 0}, 0);
        const auto ref_tokens = ref_engine.generate(prompt, 12,
                                                    greedy_a);
        const auto hw_tokens = hw_engine.generate(prompt, 12, greedy_b);
        EXPECT_EQ(ref_tokens, hw_tokens);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, EnginePathEquivalence,
                         ::testing::Values(8u, 12u, 14u));

TEST(EngineTest, LogitsFiniteAndVocabSized)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 7);
    Engine engine(cfg, weights, ExecPath::Reference);
    KvCache cache = engine.makeCache();
    Vec logits = engine.forwardToken(3, cache);
    ASSERT_EQ(logits.size(), cfg.vocabSize);
    for (double l : logits)
        EXPECT_TRUE(std::isfinite(l));
    EXPECT_EQ(cache.length(), 1u);
}

TEST(EngineTest, StatsAccumulate)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 8);
    Engine engine(cfg, weights, ExecPath::Hardwired);
    Sampler greedy({0.0, 0}, 0);
    engine.generate({1, 2}, 3, greedy);
    // 2 prefill + 2 decode forwards (the last sampled token is not fed
    // back).
    EXPECT_EQ(engine.stats().tokensProcessed, 4u);
    EXPECT_GT(engine.stats().hnActivity.cycles, 0u);
    std::size_t routed = 0;
    for (auto c : engine.stats().expertHistogram)
        routed += c;
    EXPECT_EQ(routed,
              engine.stats().tokensProcessed * cfg.layerCount *
                  cfg.activeExperts);
}

TEST(Ops, TopKMatchesFullStableSortReference)
{
    // topK now uses nth_element + a small prefix sort; pin it to the
    // old full-stable-sort semantics (value desc, index asc on ties).
    Rng rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        Vec values(97);
        for (double &v : values) {
            v = rng.gaussian(0.0, 1.0);
            // Coarsen so ties actually occur.
            v = std::round(v * 4.0) / 4.0;
        }
        std::vector<std::size_t> reference(values.size());
        std::iota(reference.begin(), reference.end(), 0);
        std::stable_sort(reference.begin(), reference.end(),
                         [&](std::size_t a, std::size_t b) {
                             return values[a] > values[b];
                         });
        for (std::size_t k : {0u, 1u, 2u, 8u, 96u, 97u}) {
            const auto got = topK(values, k);
            ASSERT_EQ(got.size(), k);
            for (std::size_t i = 0; i < k; ++i)
                EXPECT_EQ(got[i], reference[i])
                    << "trial " << trial << " k " << k << " rank " << i;
        }
    }
}

TEST(KvCacheTest, OutOfOrderAppendIsRejected)
{
    // The length_ heuristic counts tokens on the last layer's append;
    // out-of-order appends used to miscount silently.
    std::vector<Vec> k{{1, 2}, {3, 4}};
    std::vector<Vec> v{{5, 6}, {7, 8}};

    KvCache skip(2, 2, 2);
    EXPECT_DEATH(skip.append(1, k, v), "skipped layer");

    KvCache twice(2, 2, 2);
    twice.append(0, k, v);
    EXPECT_DEATH(twice.append(0, k, v), "out of order");

    // The legal order still tracks length correctly.
    KvCache ok(2, 2, 2);
    ok.append(0, k, v);
    ok.append(1, k, v);
    EXPECT_EQ(ok.length(), 1u);
    ok.append(0, k, v);
    ok.append(1, k, v);
    EXPECT_EQ(ok.length(), 2u);
}

TEST(EngineTest, ScoreSequenceRejectsOutOfRangeIds)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 5);
    Engine engine(cfg, weights, ExecPath::Reference);
    // An out-of-range id in the *last* position is only ever used as a
    // probs[] index, so without up-front validation it read past the
    // vocab-sized logits instead of tripping forwardToken's check.
    EXPECT_DEATH(engine.scoreSequence({1, 2, cfg.vocabSize}),
                 "out of vocab range");
    EXPECT_DEATH(engine.scoreSequence({cfg.vocabSize, 1, 2}),
                 "out of vocab range");
}

TEST(Ops, LogSumExpStableAndConsistentWithSoftmax)
{
    // Normal range: logSumExp reproduces log(sum(exp)).
    const Vec logits{0.5, -1.25, 2.0, 0.0};
    double direct = 0.0;
    for (double l : logits)
        direct += std::exp(l);
    EXPECT_NEAR(logSumExp(logits), std::log(direct), 1e-12);
    // log softmax via logSumExp equals log of the softmax entries.
    const Vec probs = softmax(logits);
    const double lse = logSumExp(logits);
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(logits[i] - lse, std::log(probs[i]), 1e-12);
    // Extreme logit gaps: softmax(x)[0] underflows to exactly 0 (whose
    // log is -inf, hence the old 1e-300 clamp) but the log-softmax form
    // stays finite and exact: x[0] - lse == -2000 here.
    const Vec extreme{-1000.0, 1000.0};
    EXPECT_EQ(softmax(extreme)[0], 0.0);
    EXPECT_NEAR(extreme[0] - logSumExp(extreme), -2000.0, 1e-9);
}

TEST(EngineTest, ScoreSequenceMatchesManualLogSoftmax)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 6);
    Engine scorer(cfg, weights, ExecPath::Reference);
    Engine replay(cfg, weights, ExecPath::Reference);

    const std::vector<std::size_t> tokens{1, 4, 2, 7};
    const double score = scorer.scoreSequence(tokens);

    KvCache cache = replay.makeCache();
    double expected = 0.0;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Vec logits = replay.forwardToken(tokens[i], cache);
        expected += logits[tokens[i + 1]] - logSumExp(logits);
        // And the log-softmax form agrees with the old
        // log(softmax(logits)[t]) formula in normal range.
        EXPECT_NEAR(logits[tokens[i + 1]] - logSumExp(logits),
                    std::log(softmax(logits)[tokens[i + 1]]), 1e-9);
    }
    EXPECT_DOUBLE_EQ(score, expected);
    EXPECT_TRUE(std::isfinite(score));
}

TEST(EngineTest, DeterministicAcrossRuns)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 9);
    Engine a(cfg, weights, ExecPath::Reference);
    Engine b(cfg, weights, ExecPath::Reference);
    Sampler sa({0.8, 4}, 42), sb({0.8, 4}, 42);
    EXPECT_EQ(a.generate({1, 2, 3}, 8, sa), b.generate({1, 2, 3}, 8, sb));
}

TEST(SamplerTest, NaNLogitsAreRejectedUpFront)
{
    // NaN compares false against everything, so an argmax over
    // NaN-bearing logits would be scan-order-dependent; sample() must
    // refuse instead, on both the greedy and the temperature path.
    Sampler greedy({0.0, 0}, 0);
    const double nan = std::nan("");
    EXPECT_DEATH(greedy.sample({0.5, nan, 1.0}), "NaN logit at index 1");
    Sampler warm({0.9, 2}, 7);
    EXPECT_DEATH(warm.sample({nan, 0.0}), "NaN logit at index 0");
}

TEST(SamplerTest, ScratchReuseKeepsDrawsIdentical)
{
    // The temperature path now reuses member scratch buffers; draws
    // must still match a fresh sampler token for token.
    Sampler reused({0.7, 3}, 99);
    Rng logit_rng(123);
    for (int t = 0; t < 20; ++t) {
        Vec logits(50);
        for (double &l : logits)
            l = logit_rng.gaussian(0.0, 2.0);
        Sampler fresh({0.7, 3}, 99);
        // Re-sync the fresh sampler's RNG by replaying prior draws.
        Rng replay_rng(123);
        for (int u = 0; u < t; ++u) {
            Vec prior(50);
            for (double &l : prior)
                l = replay_rng.gaussian(0.0, 2.0);
            fresh.sample(prior);
        }
        EXPECT_EQ(reused.sample(logits), fresh.sample(logits))
            << "token " << t;
    }
}

TEST(KvCacheTest, ReserveKeepsReferencesStableAcrossAppends)
{
    // Serving holds key()/value() references while appending later
    // tokens of the same step; with a capacity hint the backing store
    // must never reallocate under them.
    const std::size_t layers = 2, heads = 2, dim = 4, max_tokens = 6;
    KvCache cache(layers, heads, dim, max_tokens);
    std::vector<Vec> k{{1, 2, 3, 4}, {5, 6, 7, 8}};
    std::vector<Vec> v{{9, 10, 11, 12}, {13, 14, 15, 16}};
    for (std::size_t l = 0; l < layers; ++l)
        cache.append(l, k, v);

    const Vec *key0 = &cache.key(0, 1, 0);
    const Vec *val0 = &cache.value(1, 0, 0);
    const Vec key0_copy = *key0;
    for (std::size_t t = 1; t < max_tokens; ++t) {
        for (std::size_t l = 0; l < layers; ++l)
            cache.append(l, k, v);
        EXPECT_EQ(&cache.key(0, 1, 0), key0) << "token " << t;
        EXPECT_EQ(&cache.value(1, 0, 0), val0) << "token " << t;
    }
    EXPECT_EQ(*key0, key0_copy);
    EXPECT_EQ(cache.length(), max_tokens);

    // reserveTokens() after construction gives the same guarantee.
    KvCache late(1, 1, 2);
    late.reserveTokens(4);
    late.append(0, {{1, 2}}, {{3, 4}});
    const Vec *first = &late.key(0, 0, 0);
    late.append(0, {{5, 6}}, {{7, 8}});
    late.append(0, {{9, 10}}, {{11, 12}});
    EXPECT_EQ(&late.key(0, 0, 0), first);
}

TEST(EngineTest, ZeroDecodeStepsIsANoOp)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 10);
    Engine engine(cfg, weights, ExecPath::Reference);
    Sampler greedy({0.0, 0}, 0);
    EXPECT_TRUE(engine.generate({1, 2, 3}, 0, greedy).empty());
    // Nothing would consume the prefill, so the model never ran.
    EXPECT_EQ(engine.stats().tokensProcessed, 0u);
}

TEST(EngineTest, EmptyPromptAndShortScoreSequenceAreFatal)
{
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 10);
    Engine engine(cfg, weights, ExecPath::Reference);
    Sampler greedy({0.0, 0}, 0);
    // No prompt means no position to decode from.
    EXPECT_DEATH(engine.generate({}, 4, greedy), "non-empty prompt");
    // Scoring needs a predicted token and at least one predictor.
    EXPECT_DEATH(engine.scoreSequence({}), ">= 2 tokens");
    EXPECT_DEATH(engine.scoreSequence({3}), ">= 2 tokens");
}

TEST(ServingDeath, FatalEnqueueWrapperTranslatesTypedRejections)
{
    // The router sheds invalid traffic via tryEnqueue's typed reasons;
    // the legacy fatal wrapper must keep dying with the reason's
    // stable name in the message.
    const auto cfg = tinyTestModel();
    const auto weights = ModelWeights::randomInit(cfg, 11);
    Engine engine(cfg, weights, ExecPath::Reference);
    ServingEngine serving(engine);

    ServingRequest empty;
    empty.decodeTokens = 2;
    EXPECT_DEATH(serving.enqueue(empty), "empty_prompt");

    ServingRequest zero;
    zero.prompt = {1};
    EXPECT_DEATH(serving.enqueue(zero), "zero_decode_tokens");

    ServingRequest oov;
    oov.prompt = {cfg.vocabSize};
    oov.decodeTokens = 1;
    EXPECT_DEATH(serving.enqueue(oov), "token_out_of_vocab");

    ServingRequest bad_sampler;
    bad_sampler.prompt = {1};
    bad_sampler.decodeTokens = 1;
    bad_sampler.sampler.temperature = -1.0;
    EXPECT_DEATH(serving.enqueue(bad_sampler), "invalid_sampler");

    ServingRequest ok;
    ok.prompt = {1};
    ok.decodeTokens = 1;
    ok.arrivalStep = 5;
    serving.enqueue(ok);
    ServingRequest backwards = ok;
    backwards.arrivalStep = 4;
    EXPECT_DEATH(serving.enqueue(backwards),
                 "arrival_order_violation");
}

} // namespace
} // namespace hnlpu
