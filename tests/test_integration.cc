/**
 * @file
 * Cross-module integration and sensitivity properties: the simulator
 * and models must respond to parameter changes in physically sensible
 * directions, and alternative design points (gpt-oss 20B, different
 * grids, concurrency-aware KV placement) must stay self-consistent.
 */

#include <gtest/gtest.h>

#include "core/design.hh"
#include "econ/tco.hh"
#include "mem/kv_store.hh"
#include "model/model_zoo.hh"
#include "pipeline/pipeline_sim.hh"

namespace hnlpu {
namespace {

PipelineConfig
quickConfig(std::size_t context = 2048)
{
    auto cfg = defaultGptOssPipeline(context);
    cfg.warmupTokens = 200;
    cfg.measuredTokens = 400;
    return cfg;
}

TEST(Sensitivity, ThroughputMonotonicInLinkBandwidth)
{
    double previous = 0.0;
    for (double bw : {64e9, 128e9, 256e9}) {
        auto cfg = quickConfig();
        cfg.link.bandwidth = bw;
        const auto r = PipelineSim(cfg).run();
        EXPECT_GT(r.tokensPerSecond, previous) << "bw " << bw;
        previous = r.tokensPerSecond;
    }
}

TEST(Sensitivity, LatencyMonotonicInLinkLatency)
{
    auto fast = quickConfig();
    fast.link.latency = 50e-9;
    auto slow = quickConfig();
    slow.link.latency = 400e-9;
    const auto rf = PipelineSim(fast).run();
    const auto rs = PipelineSim(slow).run();
    EXPECT_LT(rf.tokenLatency, rs.tokenLatency);
}

TEST(Sensitivity, WiderActivationsSlowProjection)
{
    auto narrow = quickConfig();
    narrow.timing.activationBits = 4;
    auto wide = quickConfig();
    wide.timing.activationBits = 16;
    const auto rn = PipelineSim(narrow).run();
    const auto rw = PipelineSim(wide).run();
    EXPECT_GT(rw.breakdown.projection, rn.breakdown.projection);
}

TEST(Sensitivity, ConcurrencyAwareKvPlacementOverflowsEarlier)
{
    // The paper's Fig. 14 sizes the buffer against one sequence; with
    // the full 216-sequence batch footprint the buffer overflows even
    // at 2K context (an honest ablation of that assumption).
    KvStore store(makePartition(gptOss120b()), SramBufferParams{},
                  HbmParams{});
    EXPECT_DOUBLE_EQ(store.place(2048, 1).overflowFraction, 0.0);
    EXPECT_GT(store.place(2048, 216).overflowFraction, 0.35);
}

TEST(Sensitivity, ConcurrentKvFootprintCreatesStallsAt2k)
{
    auto cfg = quickConfig();
    cfg.kvSequences = 216;
    const auto r = PipelineSim(cfg).run();
    EXPECT_GT(r.breakdown.stallShare(), 0.0);
    EXPECT_GT(r.kvOverflowFraction, 0.35);
}

TEST(AlternativeDesigns, GptOss20bIsSmallerAndCheaper)
{
    HnlpuDesign small(gptOss20b());
    HnlpuDesign big(gptOss120b());
    const auto rs = small.evaluate();
    const auto rb = big.evaluate();
    EXPECT_LT(rs.summary.siliconArea, rb.summary.siliconArea);
    EXPECT_LT(rs.cost.totalNre().mid(), rb.cost.totalNre().mid());
    EXPECT_GT(rs.summary.tokensPerSecond, 0.0);
    // Fewer layers means fewer pipeline slots but a faster traversal.
    EXPECT_LT(rs.pipeline.pipelineSlots, rb.pipeline.pipelineSlots);
    EXPECT_LT(rs.pipeline.tokenLatency, rb.pipeline.tokenLatency);
}

TEST(AlternativeDesigns, PowerEnergyConsistency)
{
    HnlpuDesign design(gptOss120b());
    const auto s = design.summarize();
    // tokens/kJ must equal tokens/s divided by kW.
    EXPECT_NEAR(s.tokensPerKilojoule,
                s.tokensPerSecond / (s.systemPower / 1000.0),
                1e-6 * s.tokensPerKilojoule);
    EXPECT_NEAR(s.areaEfficiency, s.tokensPerSecond / s.siliconArea,
                1e-9 * s.areaEfficiency);
}

TEST(AlternativeDesigns, TcoAdvantageShrinksAtLowVolume)
{
    TcoModel tco(HnlpuCostModel(n5Technology(), MaskStack{}));
    const auto model = gptOss120b();
    const auto hn_low = tco.hnlpu(model, 1);
    const auto gpu_low = tco.h100(2000.0);
    const auto hn_high = tco.hnlpu(model, 50);
    const auto gpu_high = tco.h100(100000.0);
    const double adv_low =
        gpu_low.tcoStatic.mid() / hn_low.tcoDynamic.mid();
    const double adv_high =
        gpu_high.tcoStatic.mid() / hn_high.tcoDynamic.mid();
    // NRE amortisation: high volume is far more favourable.
    EXPECT_GT(adv_high, 10.0 * adv_low);
    // But even low volume breaks roughly even (paper Section 7.5).
    EXPECT_GT(adv_low, 0.8);
}

TEST(AlternativeDesigns, EnergyEfficiencyHeadline)
{
    // Figure 1's framing: 0.03 tokens/J (GPU infrastructure) vs
    // 36 tokens/J (Hardwired LPU).
    HnlpuDesign design(gptOss120b());
    const auto hn = design.summarize();
    const auto gpu = design.h100Baseline();
    EXPECT_NEAR(gpu.tokensPerKilojoule / 1000.0, 0.035, 0.005);
    EXPECT_NEAR(hn.tokensPerKilojoule / 1000.0, 36.0, 2.5);
}

class GridSweep
    : public ::testing::TestWithParam<std::pair<std::size_t,
                                                std::size_t>>
{
};

TEST_P(GridSweep, PipelineRunsOnAlternativeGrids)
{
    const auto [rows, cols] = GetParam();
    TransformerConfig model = gptOss120b();
    auto cfg = quickConfig();
    cfg.partition = makePartition(model, rows, cols);
    const auto r = PipelineSim(cfg).run();
    EXPECT_GT(r.tokensPerSecond, 1000.0);
    EXPECT_GT(r.breakdown.total(), 0.0);
    EXPECT_EQ(r.pipelineSlots, 6u * model.layerCount + 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GridSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{2, 8},
                      std::pair<std::size_t, std::size_t>{8, 2}));

} // namespace
} // namespace hnlpu
