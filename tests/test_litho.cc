/**
 * @file
 * Tests for the photomask stack and wafer-economics models, pinned to
 * the paper's published anchors (Section 3.2, Appendix B).
 */

#include <gtest/gtest.h>

#include "litho/mask_stack.hh"
#include "litho/wafer.hh"
#include "phys/technology.hh"

namespace hnlpu {
namespace {

TEST(MaskStackTest, LayerAccounting)
{
    MaskStack masks;
    EXPECT_EQ(masks.totalLayers(), 70u);
    // 58 + 12 * 6 = 130 normalised DUV units.
    EXPECT_DOUBLE_EQ(masks.normalizedUnits(), 130.0);
    // ME layers are 10/130 = 7.7% of the set.
    EXPECT_NEAR(masks.metalEmbeddingFraction(), 0.0769, 0.0005);
}

TEST(MaskStackTest, PaperCostAnchors)
{
    MaskStack masks;
    // Homogeneous set: $13.85M..$27.69M.
    EXPECT_NEAR(masks.homogeneousCost().lo, 13.85e6, 0.05e6);
    EXPECT_NEAR(masks.homogeneousCost().hi, 27.69e6, 0.05e6);
    // ME per variant: $1.15M..$2.31M.
    EXPECT_NEAR(masks.metalEmbeddingCostPerChip().lo, 1.15e6, 0.01e6);
    EXPECT_NEAR(masks.metalEmbeddingCostPerChip().hi, 2.31e6, 0.01e6);
    // 16 variants: $18.46M..$36.92M.
    const auto respin = masks.respinCost(16);
    EXPECT_NEAR(respin.lo, 18.46e6, 0.1e6);
    EXPECT_NEAR(respin.hi, 36.92e6, 0.1e6);
}

TEST(MaskStackTest, SeaOfNeuronsSavings)
{
    MaskStack masks;
    // Initial tapeout: -86.5% vs 16 heterogeneous sets; re-spin: -92.3%.
    const double hetero16 = masks.fullSetPrice.hi * 16.0;
    const double initial = masks.seaOfNeuronsCost(16).hi;
    EXPECT_NEAR(1.0 - initial / hetero16, 0.865, 0.01);
    const double respin = masks.respinCost(16).hi;
    EXPECT_NEAR(1.0 - respin / hetero16, 0.923, 0.01);
}

TEST(MaskStackTest, StrawmanAtFullPrice)
{
    MaskStack masks;
    EXPECT_DOUBLE_EQ(masks.strawmanCost(200), 6e9);
}

TEST(MaskStackTest, CostRangeArithmetic)
{
    CostRange a{1.0, 2.0}, b{3.0, 5.0};
    const auto sum = a + b;
    EXPECT_DOUBLE_EQ(sum.lo, 4.0);
    EXPECT_DOUBLE_EQ(sum.hi, 7.0);
    EXPECT_DOUBLE_EQ((a * 3.0).hi, 6.0);
    EXPECT_DOUBLE_EQ(sum.mid(), 5.5);
}

class WaferTest : public ::testing::Test
{
  protected:
    WaferModel wafers_{n5Technology()};
};

TEST_F(WaferTest, GptOssChipEconomics)
{
    // Paper note 3: ~43% yield, ~27 of 62 dies, ~$629 per good die.
    const auto e = wafers_.economics(827.08);
    EXPECT_NEAR(e.grossDiesPerWafer, 62.0, 1.0);
    EXPECT_NEAR(e.yield, 0.43, 0.01);
    EXPECT_NEAR(e.goodDiesPerWafer, 27.0, 1.0);
    EXPECT_NEAR(e.costPerGoodDie, 629.0, 25.0);
}

TEST_F(WaferTest, YieldMonotonicInDieArea)
{
    double previous = 1.0;
    for (AreaMm2 area : {50.0, 100.0, 200.0, 400.0, 800.0}) {
        const double y = wafers_.murphyYield(area);
        EXPECT_LT(y, previous) << "area " << area;
        EXPECT_GT(y, 0.0);
        previous = y;
    }
    EXPECT_DOUBLE_EQ(wafers_.murphyYield(0.0), 1.0);
}

TEST_F(WaferTest, SmallDiesAreCheap)
{
    const auto small = wafers_.economics(100.0);
    const auto large = wafers_.economics(800.0);
    EXPECT_GT(small.goodDiesPerWafer, 5.0 * large.goodDiesPerWafer);
    EXPECT_LT(small.costPerGoodDie, large.costPerGoodDie / 5.0);
}

TEST_F(WaferTest, DefectDensitySensitivity)
{
    TechnologyParams dirty = n5Technology();
    dirty.defectDensityPerCm2 = 0.5;
    WaferModel dirty_model(dirty);
    EXPECT_LT(dirty_model.murphyYield(827.0),
              wafers_.murphyYield(827.0));
}

TEST_F(WaferTest, RejectsOversizedDie)
{
    EXPECT_DEATH(wafers_.economics(900.0), "reticle");
}

} // namespace
} // namespace hnlpu
