/**
 * @file
 * Tests for the Hardwired-Neuron functional model: wire topology
 * programming, bit-exact equivalence of the Metal-Embedding serial path
 * against the reference integer path and the Cell-Embedding baseline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "hn/ce_neuron.hh"
#include "hn/hn_array.hh"
#include "hn/hn_neuron.hh"
#include "hn/wire_topology.hh"

namespace hnlpu {
namespace {

SeaOfNeuronsTemplate
makeTemplate(std::size_t inputs, double slack = 4.0,
             std::size_t ports_per_slice = 16)
{
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = inputs;
    tmpl.portsPerSlice = ports_per_slice;
    tmpl.slackFactor = slack;
    return tmpl;
}

TEST(WireTopology, ProgramsRegionsByWeightValue)
{
    auto tmpl = makeTemplate(6);
    std::vector<Fp4> weights{
        Fp4::quantize(1.0), Fp4::quantize(1.0), Fp4::quantize(-2.0),
        Fp4::quantize(0.0), Fp4::quantize(6.0), Fp4::quantize(1.0)};
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());

    const auto one = Fp4::quantize(1.0).code();
    const auto minus_two = Fp4::quantize(-2.0).code();
    const auto six = Fp4::quantize(6.0).code();
    EXPECT_EQ(topo->region(one).size(), 3u);
    EXPECT_EQ(topo->region(minus_two).size(), 1u);
    EXPECT_EQ(topo->region(six).size(), 1u);
    // The zero weight gets no wire.
    EXPECT_EQ(topo->wireCount(), 5u);
    EXPECT_EQ(topo->histogram()[one], 3u);
}

TEST(WireTopology, RejectsWrongFanIn)
{
    auto tmpl = makeTemplate(4);
    std::string error;
    auto topo = WireTopology::program(
        tmpl, std::vector<Fp4>(3, Fp4::quantize(1.0)), &error);
    EXPECT_FALSE(topo.has_value());
    EXPECT_NE(error.find("fan-in"), std::string::npos);
}

TEST(WireTopology, RejectsCapacityOverflow)
{
    // A severely undersized template (slack 0.5) cannot host a weight
    // vector whose values all collapse into a single region.
    auto tmpl = makeTemplate(1024, /*slack=*/0.5, /*ports_per_slice=*/32);
    ASSERT_EQ(tmpl.totalSlices(), 16u);
    std::vector<Fp4> weights(1024, Fp4::quantize(1.0));
    std::string error;
    auto topo = WireTopology::program(tmpl, weights, &error);
    EXPECT_FALSE(topo.has_value());
    EXPECT_NE(error.find("slices"), std::string::npos);
}

TEST(WireTopology, SlackAbsorbsImbalance)
{
    // All weights share one value: one region needs all the ports.
    auto tmpl = makeTemplate(128, /*slack=*/1.5, /*ports_per_slice=*/32);
    std::vector<Fp4> weights(128, Fp4::quantize(1.5));
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());
    EXPECT_EQ(topo->region(Fp4::quantize(1.5).code()).size(), 128u);
    EXPECT_EQ(topo->regionSlices(Fp4::quantize(1.5).code()), 4u);
}

TEST(WireTopology, GroundedPortsAccounting)
{
    auto tmpl = makeTemplate(10, /*slack=*/3.0, /*ports_per_slice=*/8);
    std::vector<Fp4> weights(10, Fp4::quantize(2.0));
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());
    // 10 wires in ceil(10/8)=2 slices of 8 ports -> 6 grounded.
    EXPECT_EQ(topo->groundedPorts(), 6u);
}

TEST(HardwiredNeuron, MatchesReferenceSmall)
{
    auto tmpl = makeTemplate(4);
    std::vector<Fp4> weights{Fp4::quantize(1.0), Fp4::quantize(1.0),
                             Fp4::quantize(3.0), Fp4::quantize(3.0)};
    auto topo = WireTopology::program(tmpl, weights);
    ASSERT_TRUE(topo.has_value());
    HardwiredNeuron hn(std::move(*topo));

    std::vector<std::int64_t> x{1, 2, 3, 4};
    // a(x1+x2) + c(x3+x4) with a=1, c=3 -> 2*(3 + 21) = 48.
    EXPECT_EQ(hn.computeReference(x), 48);
    EXPECT_EQ(hn.computeSerial(x, 8), 48);
}

class HnEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

TEST_P(HnEquivalence, SerialEqualsReferenceEqualsCe)
{
    const auto [fan_in, width] = GetParam();
    Rng rng(fan_in * 131 + width);
    const std::int64_t lo = -(std::int64_t(1) << (width - 1));
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;

    for (int trial = 0; trial < 10; ++trial) {
        auto weights = syntheticFp4Weights(fan_in, trial * 977 + fan_in);
        auto tmpl = makeTemplate(fan_in);
        auto topo = WireTopology::program(tmpl, weights);
        ASSERT_TRUE(topo.has_value());
        HardwiredNeuron hn(std::move(*topo));
        CellEmbeddedNeuron ce(weights);

        std::vector<std::int64_t> x(fan_in);
        std::int64_t direct = 0;
        for (std::size_t i = 0; i < fan_in; ++i) {
            x[i] = rng.uniformInt(lo, hi);
            direct += std::int64_t(weights[i].twiceValue()) * x[i];
        }
        EXPECT_EQ(hn.computeSerial(x, width), direct);
        EXPECT_EQ(hn.computeReference(x), direct);
        EXPECT_EQ(ce.compute(x), direct);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HnEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 16, 100, 720),
                       ::testing::Values(4u, 8u, 12u)));

TEST(HardwiredNeuron, ActivityCountersPopulate)
{
    const std::size_t fan_in = 64;
    auto weights = syntheticFp4Weights(fan_in, 5);
    auto topo = WireTopology::program(makeTemplate(fan_in), weights);
    ASSERT_TRUE(topo.has_value());
    HardwiredNeuron hn(std::move(*topo));

    std::vector<std::int64_t> x(fan_in, 1);
    HnActivity act;
    hn.computeSerial(x, 8, &act);
    EXPECT_GT(act.cycles, 8u);        // width + tree drain
    EXPECT_GT(act.popcountBitOps, 0u);
    EXPECT_LE(act.multiplyOps, 16u);  // at most one per value region
    EXPECT_GT(act.treeAddOps, 0u);
}

TEST(CeNeuron, ActivityCountsOneMultiplierPerNonzeroWeight)
{
    std::vector<Fp4> weights{Fp4::quantize(1.0), Fp4::quantize(0.0),
                             Fp4::quantize(-4.0), Fp4::quantize(1.0)};
    CellEmbeddedNeuron ce(weights);
    CeActivity act;
    ce.compute({1, 1, 1, 1}, &act);
    EXPECT_EQ(act.multiplyOps, 3u);
    EXPECT_GE(act.cycles, 2u);
}

TEST(HnArray, GemvMatchesMatrixMath)
{
    const std::size_t rows = 12, cols = 33;
    auto weights = syntheticFp4Weights(rows * cols, 77);
    HnArray array(makeTemplate(cols), weights, rows, cols);

    Rng rng(99);
    std::vector<std::int64_t> x(cols);
    for (auto &v : x)
        v = rng.uniformInt(-127, 127);

    auto serial = array.gemvSerial(x, 8);
    auto ref = array.gemvReference(x);
    ASSERT_EQ(serial.size(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
        std::int64_t expect = 0;
        for (std::size_t c = 0; c < cols; ++c) {
            expect += std::int64_t(
                          weights[r * cols + c].twiceValue()) * x[c];
        }
        EXPECT_EQ(serial[r], expect) << "row " << r;
        EXPECT_EQ(ref[r], expect) << "row " << r;
    }
}

TEST(HnArray, GemvRealApproximatesFloatGemv)
{
    const std::size_t rows = 8, cols = 256;
    auto weights = syntheticFp4Weights(rows * cols, 1234);
    HnArray array(makeTemplate(cols), weights, rows, cols);

    Rng rng(555);
    std::vector<double> x(cols);
    for (auto &v : x)
        v = rng.gaussian(0.0, 1.0);

    auto approx = array.gemvReal(x, 12);
    for (std::size_t r = 0; r < rows; ++r) {
        double expect = 0.0;
        for (std::size_t c = 0; c < cols; ++c)
            expect += weights[r * cols + c].value() * x[c];
        // Error scales with fan-in * quantisation step.
        EXPECT_NEAR(approx[r], expect, 0.05 * cols / 256.0 + 0.05)
            << "row " << r;
    }
}

TEST(HnArray, StatsCountWiresAndZeros)
{
    const std::size_t rows = 4, cols = 64;
    auto weights = syntheticFp4Weights(rows * cols, 31);
    HnArray array(makeTemplate(cols), weights, rows, cols);
    auto stats = array.stats();
    EXPECT_EQ(stats.rows, rows);
    EXPECT_EQ(stats.cols, cols);
    EXPECT_EQ(stats.totalWires + stats.zeroWeights, rows * cols);
}

TEST(SyntheticWeights, HistogramUsesManyCodes)
{
    auto weights = syntheticFp4Weights(10000, 3);
    std::array<int, kFp4Codes> histogram{};
    for (const auto &w : weights)
        histogram[w.code()]++;
    int used = 0;
    for (int c = 0; c < kFp4Codes; ++c) {
        if (histogram[c] > 0)
            ++used;
    }
    EXPECT_GE(used, 10);
}

} // namespace
} // namespace hnlpu
