/**
 * @file
 * Weight-update re-spin walkthrough (paper Sections 3.2 and 8,
 * "Model Updates" / blue-green deployment).
 *
 * Shows the full Sea-of-Neurons update loop on a miniature model:
 *   1. compile v1 weights onto the prefabricated template (hncc),
 *   2. "fine-tune" the weights (perturb a fraction of them),
 *   3. re-compile only the metal-embedding wires onto the *same*
 *      template -- the silicon never changes, so only the 10 ME mask
 *      layers re-spin,
 *   4. price the re-spin and verify the new wiring computes the new
 *      model bit-exactly.
 */

#include <cstdio>

#include "common/rng.hh"
#include "econ/nre.hh"
#include "hn/hn_array.hh"
#include "hn/hn_neuron.hh"
#include "hncc/compiler.hh"
#include "model/model_zoo.hh"

int
main()
{
    using namespace hnlpu;

    const std::size_t rows = 8, cols = 512;
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = cols;
    tmpl.portsPerSlice = 64;
    tmpl.slackFactor = 2.0;

    std::printf("Sea-of-Neurons weight-update re-spin demo "
                "(%zu x %zu block)\n\n", rows, cols);

    // -- v1 tapeout --------------------------------------------------------
    HnCompiler compiler(n5Technology());
    auto v1 = syntheticFp4Weights(rows * cols, 1);
    const auto plan_v1 = compiler.compile(tmpl, v1, rows, cols);
    std::printf("v1 compile: %zu wires, density %.0f%%, %s\n",
                plan_v1.stats().wires,
                plan_v1.stats().routingDensity * 100.0,
                plan_v1.drcClean() ? "DRC clean" : "VIOLATIONS");

    // -- annual fine-tune: ~20%% of weights move one FP4 step --------------
    auto v2 = v1;
    Rng rng(2027);
    std::size_t changed = 0;
    for (auto &w : v2) {
        if (rng.uniform01() < 0.2) {
            w = Fp4::quantize(w.value() + rng.gaussian(0.0, 0.8));
            ++changed;
        }
    }
    std::printf("fine-tune:  %zu of %zu weights changed\n", changed,
                v2.size());

    // -- v2 re-spin on the SAME prefabricated template ----------------------
    const auto plan_v2 = compiler.compile(tmpl, v2, rows, cols);
    std::printf("v2 compile: %zu wires, density %.0f%%, %s "
                "(same silicon, new metal only)\n\n",
                plan_v2.stats().wires,
                plan_v2.stats().routingDensity * 100.0,
                plan_v2.drcClean() ? "DRC clean" : "VIOLATIONS");

    // The re-wired neurons compute the NEW model exactly.
    HardwiredNeuron v2_neuron(plan_v2.topologies()[0]);
    std::vector<std::int64_t> x(cols);
    std::int64_t expected = 0;
    for (std::size_t i = 0; i < cols; ++i) {
        x[i] = rng.uniformInt(-127, 127);
        expected += std::int64_t(v2[i].twiceValue()) * x[i];
    }
    std::printf("v2 neuron[0] bit-serial result: %lld (expected %lld) "
                "%s\n\n",
                static_cast<long long>(v2_neuron.computeSerial(x, 8)),
                static_cast<long long>(expected),
                v2_neuron.computeSerial(x, 8) == expected ? "[exact]"
                                                          : "[MISMATCH]");

    // -- what the update costs at gpt-oss scale -----------------------------
    HnlpuCostModel cost(n5Technology(), MaskStack{});
    const auto bd = cost.breakdown(gptOss120b());
    std::printf("At gpt-oss scale the re-spin needs only the 10 "
                "ME mask layers per chip:\n");
    std::printf("  initial tapeout: %s ~ %s\n",
                dollarString(bd.initialBuild(1).lo).c_str(),
                dollarString(bd.initialBuild(1).hi).c_str());
    std::printf("  annual re-spin:  %s ~ %s  (%.0f%% cheaper)\n",
                dollarString(bd.respin(1).lo).c_str(),
                dollarString(bd.respin(1).hi).c_str(),
                (1.0 - bd.respin(1).mid() / bd.initialBuild(1).mid()) *
                    100.0);
    std::printf("  turnaround: ~6-8 weeks (blue-green deployment: the "
                "'green' HNLPU is fabbed\n  while the 'blue' one keeps "
                "serving traffic)\n");
    return 0;
}
