/**
 * @file
 * Design-space explorer: which LLMs are worth hardwiring?
 *
 * Sweeps the model zoo through the full HNLPU stack -- chip count,
 * silicon, NRE, re-spin cost, 3-year TCO versus a throughput-matched
 * H100 fleet -- the decision table a deployment team would actually
 * look at (paper Tables 3-5 and Section 8).
 */

#include <cstdio>

#include "common/table.hh"
#include "econ/tco.hh"
#include "model/model_zoo.hh"
#include "phys/area_model.hh"

int
main()
{
    using namespace hnlpu;

    std::printf("HNLPU design-space exploration across the model zoo\n");

    const auto tech = n5Technology();
    HnlpuCostModel cost(tech, MaskStack{});
    TcoModel tco(cost);
    AreaModel area(tech);

    Table table({"Model", "Params", "Chips", "HN silicon", "NRE (mid)",
                 "Re-spin (mid)", "3y TCO (mid, 1 node)"});
    for (const auto &model : productionModels()) {
        const auto bd = cost.breakdown(model);
        const auto report = tco.hnlpu(model, 1);
        table.addRow({
            model.name,
            siString(double(model.totalParams()), "", 3),
            std::to_string(bd.chipCount),
            commaString(area.metalEmbedding(double(model.totalParams())))
                + " mm^2",
            dollarString(bd.totalNre().mid()),
            dollarString(bd.respin(1).mid()),
            dollarString(report.tcoDynamic.mid()),
        });
    }
    table.print();

    std::printf("\nSensitivity: how the mask-price anchor moves the "
                "smallest viable model\n\n");
    Table viability({"Full mask set", "llama-3-8b NRE",
                     "qwq-32b NRE", "gpt-oss-120b NRE"});
    for (double set_m : {15.0, 22.5, 30.0}) {
        MaskStack masks;
        masks.fullSetPrice = {set_m * 1e6, set_m * 1e6};
        HnlpuCostModel swept(tech, masks);
        viability.addRow({
            dollarString(set_m * 1e6),
            dollarString(swept.breakdown(llama3_8b()).totalNre().mid()),
            dollarString(swept.breakdown(qwq32b()).totalNre().mid()),
            dollarString(
                swept.breakdown(gptOss120b()).totalNre().mid()),
        });
    }
    viability.print();

    std::printf("\nRule of thumb from the sweep: the shared "
                "Sea-of-Neurons mask set dominates small models;\n"
                "per-chip Metal-Embedding masks dominate "
                "trillion-parameter ones.\n");
    return 0;
}
