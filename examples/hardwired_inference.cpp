/**
 * @file
 * Hardwired inference demo: token ids in, token ids out, with the
 * weight-bearing math running on the bit-serial Metal-Embedding
 * Hardwired-Neuron path.
 *
 * Uses a miniature gpt-oss-like model with synthetic FP4 weights (real
 * checkpoints are not available offline; see DESIGN.md) and shows that
 * the hardwired machine reproduces the reference executor's greedy
 * rollout while counting the HN activity the energy model consumes.
 */

#include <cstdio>

#include "common/units.hh"
#include "model/model_zoo.hh"
#include "xformer/engine.hh"

int
main()
{
    using namespace hnlpu;

    const auto cfg = tinyTestModel();
    std::printf("Hardwired inference on '%s': %zu layers, hidden %zu, "
                "%zu experts (top-%zu)\n\n",
                cfg.name.c_str(), cfg.layerCount, cfg.hiddenSize,
                cfg.expertCount, cfg.activeExperts);

    const auto weights = ModelWeights::randomInit(cfg, 2026);
    Engine reference(cfg, weights, ExecPath::Reference);
    Engine hardwired(cfg, weights, ExecPath::Hardwired,
                     /*activation_bits=*/12);

    const std::vector<std::size_t> prompt{7, 3, 42, 17, 5};
    const std::size_t decode = 24;

    Sampler greedy_a({0.0, 0}, 0), greedy_b({0.0, 0}, 0);
    const auto ref_tokens = reference.generate(prompt, decode, greedy_a);
    const auto hw_tokens = hardwired.generate(prompt, decode, greedy_b);

    std::printf("prompt:    ");
    for (auto t : prompt)
        std::printf("%zu ", t);
    std::printf("\nreference: ");
    for (auto t : ref_tokens)
        std::printf("%zu ", t);
    std::printf("\nhardwired: ");
    for (auto t : hw_tokens)
        std::printf("%zu ", t);

    std::size_t agree = 0;
    while (agree < ref_tokens.size() &&
           ref_tokens[agree] == hw_tokens[agree])
        ++agree;
    std::printf("\n\nagreement: %zu / %zu greedy tokens%s\n", agree,
                ref_tokens.size(),
                agree == ref_tokens.size() ? " (bit-faithful rollout)"
                                           : "");

    const auto &act = hardwired.stats().hnActivity;
    std::printf("\nHN activity (hardwired path):\n");
    std::printf("  bit-serial cycles : %s\n",
                commaString(double(act.cycles)).c_str());
    std::printf("  popcount bit ops  : %s\n",
                commaString(double(act.popcountBitOps)).c_str());
    std::printf("  const multiplies  : %s\n",
                commaString(double(act.multiplyOps)).c_str());

    std::printf("\nexpert routing histogram (both paths share the "
                "replicated router):\n  ");
    const auto &hist = hardwired.stats().expertHistogram;
    for (std::size_t e = 0; e < hist.size(); ++e)
        std::printf("expert%zu=%zu ", e, hist[e]);
    std::printf("\n");
    return 0;
}
