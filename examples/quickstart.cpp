/**
 * @file
 * Quickstart: evaluate the paper's HNLPU design point in a few lines.
 *
 * Builds the gpt-oss 120 B design at 5 nm, runs the cycle-level
 * simulation and prints the headline numbers next to the H100 / WSE-3
 * baselines -- the shortest path from this library to the paper's
 * Table 1/2/5 story.
 */

#include <cstdio>

#include "core/design.hh"
#include "model/model_zoo.hh"

int
main()
{
    using namespace hnlpu;

    std::printf("HNLPU quickstart: hardwiring %s at 5 nm\n\n",
                gptOss120b().name.c_str());

    HnlpuDesign design(gptOss120b());
    const DesignReport report = design.evaluate();

    std::printf("Chip: %.2f mm^2, %.2f W (16 chips total)\n",
                design.floorplan().totalArea(),
                design.floorplan().totalPower());
    for (const auto &c : report.chipComponents) {
        std::printf("  %-20s %8.2f mm^2 %8.2f W\n", c.name.c_str(),
                    c.area, c.power);
    }

    const auto &s = report.summary;
    std::printf("\nSystem @ 2K context:\n");
    std::printf("  throughput        %s tokens/s\n",
                commaString(s.tokensPerSecond).c_str());
    std::printf("  energy efficiency %.1f tokens/J\n",
                s.tokensPerKilojoule / 1000.0);
    std::printf("  token latency     %s\n",
                siString(report.pipeline.tokenLatency, "s", 3).c_str());
    std::printf("  pipeline slots    %zu concurrent tokens\n",
                report.pipeline.pipelineSlots);

    const auto gpu = design.h100Baseline();
    const auto wse = design.wseBaseline();
    std::printf("\nversus baselines:\n");
    std::printf("  %-8s %10.0f tokens/s  (%s)\n", gpu.name.c_str(),
                gpu.tokensPerSecond,
                ratioString(s.tokensPerSecond / gpu.tokensPerSecond, 0)
                    .c_str());
    std::printf("  %-8s %10.0f tokens/s  (%s)\n", wse.name.c_str(),
                wse.tokensPerSecond,
                ratioString(s.tokensPerSecond / wse.tokensPerSecond, 0)
                    .c_str());

    const auto &cost = report.cost;
    std::printf("\nEconomics (Table 5):\n");
    std::printf("  initial build (1 node): %s ~ %s\n",
                dollarString(cost.initialBuild(1).lo).c_str(),
                dollarString(cost.initialBuild(1).hi).c_str());
    std::printf("  weight-update re-spin:  %s ~ %s\n",
                dollarString(cost.respin(1).lo).c_str(),
                dollarString(cost.respin(1).hi).c_str());
    return 0;
}
