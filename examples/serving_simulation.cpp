/**
 * @file
 * Serving simulation: an OpenAI-scale day in the life of one HNLPU.
 *
 * Drives the continuous-batching scheduler (paper Section 5.2) with a
 * bursty synthetic request trace -- interactive chat turns, agentic
 * tool loops and long-document jobs -- on top of the cycle-level
 * pipeline's measured token interval and traversal latency, reporting
 * throughput, time-to-first-token and tail latency.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "pipeline/batcher.hh"
#include "pipeline/pipeline_sim.hh"

int
main()
{
    using namespace hnlpu;

    std::printf("Calibrating the pipeline at 2K context...\n");
    auto cfg = defaultGptOssPipeline(2048);
    cfg.warmupTokens = 250;
    cfg.measuredTokens = 600;
    const auto pipe = PipelineSim(cfg).run();
    const Seconds interval = 1.0 / pipe.tokensPerSecond;
    const Seconds traversal = pipe.tokenLatency;
    std::printf("  token interval %s, traversal %s, %zu slots\n\n",
                siString(interval, "s", 3).c_str(),
                siString(traversal, "s", 3).c_str(),
                pipe.pipelineSlots);

    // Synthetic trace: Poisson-ish arrivals of three request classes.
    Rng rng(7);
    struct Class { double share; std::size_t prompt, decode; };
    const Class classes[] = {
        {0.70, 512, 160},   // chat turns
        {0.20, 1536, 384},  // agentic tool loops
        {0.10, 6144, 1024}, // long-document jobs
    };
    const double mean_tokens = 0.7 * 672 + 0.2 * 1920 + 0.1 * 7168;
    const double offered_load = 0.85;
    const double arrival_rate = offered_load / (mean_tokens * interval);

    std::vector<Request> trace;
    double t = 0.0;
    for (int i = 0; i < 20000; ++i) {
        t += -std::log(1.0 - rng.uniform01()) / arrival_rate;
        const double u = rng.uniform01();
        const Class &c = u < 0.7 ? classes[0]
                                 : (u < 0.9 ? classes[1] : classes[2]);
        trace.push_back({t, c.prompt, c.decode});
    }

    ContinuousBatcher batcher(pipe.pipelineSlots, interval, traversal);
    const auto outcomes = batcher.serve(trace);
    const auto &stats = batcher.stats();

    std::vector<Seconds> ttft(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        ttft[i] = outcomes[i].firstToken - trace[i].arrival;
    std::sort(ttft.begin(), ttft.end());

    std::printf("Served %zu requests (%.0f%% offered load):\n",
                trace.size(), offered_load * 100.0);
    std::printf("  decode throughput : %s tokens/s\n",
                commaString(stats.throughputTokensPerSecond).c_str());
    std::printf("  makespan          : %.2f s\n", stats.makespan);
    std::printf("  mean TTFT         : %s\n",
                siString(stats.meanTimeToFirstToken, "s", 3).c_str());
    std::printf("  p50 / p95 / p99 TTFT: %s / %s / %s\n",
                siString(ttft[ttft.size() / 2], "s", 3).c_str(),
                siString(ttft[ttft.size() * 95 / 100], "s", 3).c_str(),
                siString(ttft[ttft.size() * 99 / 100], "s", 3).c_str());
    std::printf("  mean request latency: %s\n",
                siString(stats.meanLatency, "s", 3).c_str());
    std::printf("  slot occupancy    : %s\n",
                percentString(stats.meanOccupancy).c_str());
    std::printf("\nOne HNLPU node at this load replaces roughly %.0f "
                "H100 GPUs (45 tokens/s each).\n",
                stats.throughputTokensPerSecond / 45.0);
    return 0;
}
