/**
 * @file
 * Reproduces paper Table 2: system-level performance and efficiency
 * comparison of HNLPU against H100 and WSE-3 on gpt-oss 120 B at 2 K
 * context.  HNLPU numbers come from the cycle-level pipeline
 * simulation; the baselines from their measured-anchored roofline
 * models.
 */

#include "bench_util.hh"
#include "core/design.hh"
#include "model/model_zoo.hh"

int
main()
{
    using namespace hnlpu;

    bench::banner("Table 2: System-level performance and efficiency "
                  "(gpt-oss 120B, 2K context)");

    HnlpuDesign design(gptOss120b());
    const auto hn = design.summarize();
    const auto gpu = design.h100Baseline();
    const auto wse = design.wseBaseline();

    auto row = [](const SystemSummary &s) {
        return std::vector<std::string>{
            s.name,
            commaString(s.tokensPerSecond),
            commaString(s.siliconArea),
            commaString(s.rackUnits, 0) + " U",
            siString(s.systemPower, "W", 3),
            commaString(s.tokensPerKilojoule, 1),
            commaString(s.areaEfficiency, 3),
        };
    };

    Table table({"System", "Tokens/s", "Silicon (mm^2)", "Footprint",
                 "Power", "Tokens/kJ", "Tokens/(s*mm^2)"});
    table.addRow(row(hn));
    table.addRow(row(gpu));
    table.addRow(row(wse));
    table.print();

    Table ratios({"Metric", "Measured", "Paper", "Deviation"});
    const double thr_gpu = hn.tokensPerSecond / gpu.tokensPerSecond;
    const double thr_wse = hn.tokensPerSecond / wse.tokensPerSecond;
    const double eff_gpu =
        hn.tokensPerKilojoule / gpu.tokensPerKilojoule;
    const double eff_wse =
        hn.tokensPerKilojoule / wse.tokensPerKilojoule;
    ratios.addRow({"HNLPU throughput (tok/s)",
                   commaString(hn.tokensPerSecond), "249,960",
                   bench::deviation(hn.tokensPerSecond, 249960.0)});
    ratios.addRow({"Throughput vs H100", ratioString(thr_gpu, 0),
                   "5,555x", bench::deviation(thr_gpu, 5555.0)});
    ratios.addRow({"Throughput vs WSE-3", ratioString(thr_wse, 0),
                   "85x", bench::deviation(thr_wse, 85.0)});
    ratios.addRow({"Energy eff. vs H100", ratioString(eff_gpu, 0),
                   "1,047x", bench::deviation(eff_gpu, 1047.0)});
    ratios.addRow({"Energy eff. vs WSE-3", ratioString(eff_wse, 0),
                   "283x", bench::deviation(eff_wse, 283.0)});
    ratios.addRow({"Total silicon (mm^2)",
                   commaString(hn.siliconArea), "13,232",
                   bench::deviation(hn.siliconArea, 13232.0)});
    ratios.addRow({"System power (kW)",
                   commaString(hn.systemPower / 1000.0, 2), "6.9",
                   bench::deviation(hn.systemPower, 6900.0)});
    ratios.print();
    return 0;
}
