/**
 * @file
 * Ablation: interconnect sensitivity (paper Section 8, "the dominant
 * bottleneck of the multi-chip interconnection").  Sweeps CXL link
 * bandwidth and latency and the dataflow optimisations (FlashAttention
 * score statistics, score reduce-scatter, distributed sampling) to
 * show how each shapes system throughput at 2K context.
 */

#include "bench_util.hh"
#include "pipeline/pipeline_sim.hh"

namespace {

using namespace hnlpu;

PipelineResult
runCfg(PipelineConfig cfg)
{
    cfg.warmupTokens = 250;
    cfg.measuredTokens = 600;
    return PipelineSim(cfg).run();
}

} // namespace

int
main()
{
    bench::banner("Ablation: CXL link bandwidth sweep (2K context)");
    Table bw({"Link bandwidth", "Tokens/s", "Comm share",
              "Col link util"});
    for (double gbps : {64.0, 128.0, 256.0, 512.0}) {
        auto cfg = defaultGptOssPipeline(2048);
        cfg.link.bandwidth = gbps * 1e9;
        const auto r = runCfg(cfg);
        bw.addRow({commaString(gbps) + " GB/s",
                   commaString(r.tokensPerSecond),
                   percentString(r.breakdown.commShare()),
                   percentString(r.colLinkUtilization)});
    }
    bw.print();

    bench::banner("Ablation: CXL latency sweep (2K context)");
    Table lat({"Link latency", "Tokens/s", "Token latency"});
    for (double ns : {50.0, 100.0, 200.0, 400.0}) {
        auto cfg = defaultGptOssPipeline(2048);
        cfg.link.latency = ns * 1e-9;
        const auto r = runCfg(cfg);
        lat.addRow({commaString(ns) + " ns",
                    commaString(r.tokensPerSecond),
                    siString(r.tokenLatency, "s", 3)});
    }
    lat.print();

    bench::banner("Ablation: dataflow optimisations (64K context)");
    Table opt({"Configuration", "Tokens/s", "Comm share"});
    struct Variant
    {
        const char *name;
        bool flash, rs, sample;
    };
    const Variant variants[] = {
        {"all optimisations (paper dataflow)", true, true, true},
        {"naive score exchange", false, true, true},
        {"naive score, no reduce-scatter", false, false, true},
        {"full logit gather sampling", true, true, false},
    };
    for (const auto &v : variants) {
        auto cfg = defaultGptOssPipeline(65536);
        cfg.flashScoreStats = v.flash;
        cfg.scoreReduceScatter = v.rs;
        cfg.distributedSampling = v.sample;
        const auto r = runCfg(cfg);
        opt.addRow({v.name, commaString(r.tokensPerSecond),
                    percentString(r.breakdown.commShare())});
    }
    opt.print();
    return 0;
}
