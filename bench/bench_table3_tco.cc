/**
 * @file
 * Reproduces paper Table 3: three-year Total Cost of Ownership of
 * HNLPU vs throughput-equivalent H100 clusters at low (1 node vs 2,000
 * GPUs) and high (50 nodes vs 100,000 GPUs) volume, plus the carbon
 * footprint comparison.
 */

#include "bench_util.hh"
#include "econ/tco.hh"
#include "model/model_zoo.hh"

namespace {

using namespace hnlpu;

std::string
range(const CostRange &r)
{
    return dollarString(r.lo, 4) + " ~ " + dollarString(r.hi, 4);
}

} // namespace

int
main()
{
    bench::banner("Table 3: 3-year TCO, low volume "
                  "(1 HNLPU node vs 2,000 H100)");

    TcoModel tco(HnlpuCostModel(n5Technology(), MaskStack{}));
    const auto model = gptOss120b();

    auto print_pair = [&](const TcoReport &hn, const TcoReport &gpu) {
        Table t({"Parameter", "HNLPU", "H100"});
        t.addRow({"Systems / GPUs", commaString(hn.systems),
                  commaString(gpu.systems)});
        t.addRow({"Datacenter power (MW)",
                  commaString(hn.datacenterPowerMW, 3),
                  commaString(gpu.datacenterPowerMW, 2)});
        t.addRow({"Node price", range(hn.nodePrice),
                  dollarString(gpu.nodePrice.mid())});
        t.addRow({"DC infrastructure",
                  dollarString(hn.infrastructure.mid()),
                  dollarString(gpu.infrastructure.mid())});
        t.addRow({"Total initial CapEx", range(hn.initialCapex),
                  dollarString(gpu.initialCapex.mid())});
        t.addRow({"Update re-spin cost", range(hn.respinCost),
                  "$ 0"});
        t.addRow({"Electricity (3y)",
                  dollarString(hn.electricity.mid()),
                  dollarString(gpu.electricity.mid())});
        t.addRow({"Maintenance & support (3y)", range(hn.maintenance),
                  dollarString(gpu.maintenance.mid())});
        t.addSeparator();
        t.addRow({"TCO static (no updates)", range(hn.tcoStatic),
                  dollarString(gpu.tcoStatic.mid())});
        t.addRow({"TCO dynamic (annual updates)", range(hn.tcoDynamic),
                  dollarString(gpu.tcoDynamic.mid())});
        t.addRow({"Emissions static (tCO2e)",
                  commaString(hn.emissionsStatic, 1),
                  commaString(gpu.emissionsStatic)});
        t.addRow({"Emissions dynamic (tCO2e)",
                  commaString(hn.emissionsDynamic, 1),
                  commaString(gpu.emissionsDynamic)});
        t.print();
    };

    const auto hn_low = tco.hnlpu(model, 1);
    const auto gpu_low = tco.h100(2000.0);
    print_pair(hn_low, gpu_low);

    bench::banner("Table 3: 3-year TCO, high volume "
                  "(50 HNLPU nodes vs 100,000 H100)");
    const auto hn_high = tco.hnlpu(model, 50);
    const auto gpu_high = tco.h100(100000.0);
    print_pair(hn_high, gpu_high);

    bench::banner("Headline advantages (high volume, dynamic model)");
    Table head({"Metric", "Measured", "Paper", "Deviation"});
    const double tco_lo = gpu_high.tcoStatic.mid() / hn_high.tcoDynamic.hi;
    const double tco_hi = gpu_high.tcoStatic.mid() / hn_high.tcoDynamic.lo;
    const double carbon =
        gpu_high.emissionsStatic / hn_high.emissionsDynamic;
    head.addRow({"TCO advantage (pessimistic)", ratioString(tco_lo),
                 "41.7x", bench::deviation(tco_lo, 41.7)});
    head.addRow({"TCO advantage (optimistic)", ratioString(tco_hi),
                 "80.4x", bench::deviation(tco_hi, 80.4)});
    head.addRow({"Carbon reduction", ratioString(carbon, 0), "357x",
                 bench::deviation(carbon, 357.0)});
    head.print();
    return 0;
}
