/**
 * @file
 * Chaos benchmark for the fault-tolerant serving router: heavy-tail
 * arrivals over 4 engine shards with a seeded mid-run fault schedule
 * -- one shard takes a fully spare-repaired fault (and must keep
 * serving bit-identically), one shard is corrupted beyond repair
 * (drained and failed over), and one shard's CXL link turns lossy
 * (degraded, batch traffic avoids it).
 *
 * The bench verifies the robustness contract inline and exits
 * non-zero on any violation:
 *   - every completed request decodes tokens bit-identical to a clean
 *     solo Engine::generate with the same sampler config and seed;
 *   - every non-completed request carries a typed reason from the
 *     stated policy (queue backpressure, deadline expiry, retry
 *     budget) -- never a degraded-fleet shed while healthy shards
 *     remain, and never an abort;
 *   - the drained shard produces a recovery record.
 *
 * A clean-config parity run (1 shard, no faults) serves the same
 * trace through the PR 4 ServingEngine and through the router, pins
 * token equality, and reports the throughput ratio so BENCH_router's
 * clean goodput can be checked against BENCH_serving.json.
 *
 * Measurements go to BENCH_router.json: goodput, shed rate, p99 TTFT,
 * and per-episode recovery time.
 *
 * Usage: bench_router_chaos [requests] [json]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "serve/router.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"
#include "xformer/serving.hh"
#include "xformer/weights.hh"

namespace {

using namespace hnlpu;
using namespace hnlpu::serve;

/** gpt-oss-shaped block at ~1/10 linear scale (as bench_serving). */
TransformerConfig
scaledGptOssBlock()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-scaled-block";
    cfg.hiddenSize = 288;
    cfg.layerCount = 1;
    cfg.queryHeads = 8;
    cfg.kvHeads = 2;
    cfg.headDim = 36;
    cfg.vocabSize = 2048;
    cfg.expertCount = 8;
    cfg.activeExperts = 2;
    cfg.expertHidden = 288;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

/** Bounded Pareto draw (heavy-tail arrivals and decode lengths). */
std::size_t
paretoDraw(Rng &rng, double alpha, std::size_t cap)
{
    const double u = rng.uniform01();
    const double x = std::pow(1.0 - u, -1.0 / alpha) - 1.0;
    const auto n = std::size_t(x);
    return n > cap ? cap : n;
}

/** Heavy-tail request trace; arrivals are non-decreasing. */
std::vector<RouterRequest>
makeTrace(const TransformerConfig &cfg, std::size_t requests,
          bool with_deadlines, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<RouterRequest> trace;
    std::size_t arrival = 0;
    for (std::size_t r = 0; r < requests; ++r) {
        arrival += paretoDraw(rng, 1.3, 30);
        RouterRequest req;
        const std::size_t prompt_tokens = 3 + r % 4;
        for (std::size_t t = 0; t < prompt_tokens; ++t)
            req.prompt.push_back((7 + 131 * r + 29 * t) %
                                 cfg.vocabSize);
        req.decodeTokens = 6 + paretoDraw(rng, 1.5, 24);
        req.arrivalStep = arrival;
        req.seed = r;
        if (r % 5 == 1)
            req.sampler = {0.8, 40};
        if (r % 3 == 0) {
            req.cls = RequestClass::Interactive;
            if (with_deadlines) {
                req.ttftDeadlineSteps = 150;
                req.deadlineSteps = 500;
            }
        } else {
            req.cls = RequestClass::Batch;
        }
        trace.push_back(std::move(req));
    }
    return trace;
}

/** Clean solo transcripts, one engine for the whole trace. */
std::vector<std::vector<std::size_t>>
soloTranscripts(const TransformerConfig &cfg,
                const ModelWeights &weights,
                const std::vector<RouterRequest> &trace)
{
    Engine engine(cfg, weights, ExecPath::Reference);
    std::vector<std::vector<std::size_t>> want;
    for (const RouterRequest &req : trace) {
        Sampler sampler(req.sampler, req.seed);
        want.push_back(
            engine.generate(req.prompt, req.decodeTokens, sampler));
    }
    return want;
}

[[noreturn]] void
fail(const char *what)
{
    std::fprintf(stderr, "FATAL: %s\n", what);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using hnlpu::bench::banner;
    using hnlpu::bench::writeJsonFile;

    const std::size_t requests =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 56;
    const std::string json_path =
        argc > 2 ? argv[2] : "BENCH_router.json";

    const TransformerConfig cfg = scaledGptOssBlock();
    const ModelWeights weights = ModelWeights::randomInit(cfg, 7);

    banner("Router chaos: 4 shards, heavy-tail arrivals, mid-run "
           "faults (" + cfg.name + ")");

    // -- chaos run --------------------------------------------------------

    RouterConfig rc;
    rc.shards = 4;
    rc.slotsPerShard = 2;
    rc.batchQueueCapacity = 32; // backpressure sheds the burst's tail
    rc.interactiveQueueCapacity = 64;
    const auto trace = makeTrace(cfg, requests, true, 1234);
    const auto want = soloTranscripts(cfg, weights, trace);

    ServingRouter router(cfg, weights, ExecPath::Reference, 8, {}, rc);
    std::size_t front_door_shed = 0;
    for (const RouterRequest &req : trace) {
        const EnqueueResult res = router.enqueue(req);
        if (!res.admitted()) {
            if (res.reason != RejectReason::QueueFull)
                fail("enqueue refused for a non-backpressure reason");
            ++front_door_shed;
        }
    }

    // Seeded fault schedule: repairable hit on shard 1, unrepairable
    // kill of shard 2 (1 of 4), lossy link on shard 3.
    ShardFaultEvent repaired;
    repaired.step = 12;
    repaired.shard = 1;
    repaired.modelFaults.seed = 21;
    repaired.modelFaults.deadRowRate = 0.005;
    repaired.modelFaults.spareRows = 128;
    router.scheduleFault(repaired);

    ShardFaultEvent killed;
    killed.step = 30;
    killed.shard = 2;
    killed.modelFaults.seed = 9;
    killed.modelFaults.stuckBitRate = 0.05;
    killed.modelFaults.deadRowRate = 0.05;
    killed.modelFaults.spareRows = 0;
    router.scheduleFault(killed);

    ShardFaultEvent lossy;
    lossy.step = 48;
    lossy.shard = 3;
    lossy.linkFaults.seed = 5;
    lossy.linkFaults.retryProbability = 0.4;
    router.scheduleFault(lossy);

    const auto outcomes = router.run();
    const RouterStats &stats = router.stats();

    // -- inline contract verification -------------------------------------

    if (outcomes.size() != trace.size())
        fail("outcome count mismatch");
    std::size_t completed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RouterOutcome &out = outcomes[i];
        if (out.status == RequestStatus::Completed) {
            ++completed;
            if (out.tokens != want[i])
                fail("completed request diverged from clean solo "
                     "Engine::generate");
            continue;
        }
        // Sheds only by stated policy, always typed.
        switch (out.reason) {
          case RejectReason::QueueFull:
          case RejectReason::DeadlineExpired:
          case RejectReason::RetriesExhausted:
            break;
          default:
            fail("shed/cancel with a reason outside the stated "
                 "policy");
        }
    }
    if (completed < requests / 2)
        fail("chaos run completed fewer than half the requests");
    if (router.degradedMode())
        fail("degraded mode raised while healthy shards remained");
    if (router.shardState(1) != ShardState::Healthy)
        fail("spare-repaired shard did not stay healthy");
    if (router.shardState(2) != ShardState::Drained)
        fail("corrupted shard was not drained");
    if (router.shardState(3) != ShardState::Degraded)
        fail("lossy-link shard was not degraded");
    if (stats.probeFailures != 1 || stats.faultsInjected != 3)
        fail("fault schedule was not applied as configured");
    if (stats.recoveries.empty())
        fail("drained shard produced no recovery record");

    double recovery_seconds = 0.0;
    std::size_t recovery_steps = 0;
    for (const RecoveryRecord &rec : stats.recoveries) {
        if (rec.recoverySeconds > recovery_seconds)
            recovery_seconds = rec.recoverySeconds;
        const std::size_t steps = rec.recoveredStep - rec.faultStep;
        if (steps > recovery_steps)
            recovery_steps = steps;
    }
    const double shed_rate =
        double(stats.shed + stats.cancelled) / double(stats.requests);

    Table table({"Metric", "Value"});
    table.addRow({"requests", std::to_string(stats.requests)});
    table.addRow({"completed", std::to_string(stats.completed)});
    table.addRow({"shed (typed)", std::to_string(stats.shed)});
    table.addRow({"cancelled", std::to_string(stats.cancelled)});
    table.addRow({"failovers", std::to_string(stats.failovers)});
    table.addRow({"retries", std::to_string(stats.retries)});
    table.addRow(
        {"goodput tok/s",
         commaString(stats.goodputTokensPerSecond, 2)});
    table.addRow({"shed rate", commaString(shed_rate, 3)});
    table.addRow({"TTFT p99 ms",
                  commaString(stats.ttftP99Seconds * 1e3, 2)});
    table.addRow({"recovery ms",
                  commaString(recovery_seconds * 1e3, 2)});
    table.addRow({"recovery steps", std::to_string(recovery_steps)});
    table.print();

    // -- clean-config parity vs the PR 4 ServingEngine ---------------------

    banner("Clean-config parity: ServingEngine vs 1-shard router");
    const std::size_t parity_requests =
        requests / 2 > 8 ? requests / 2 : 8;
    const auto parity_trace =
        makeTrace(cfg, parity_requests, false, 77);

    ExecOptions serving_exec;
    serving_exec.batchSlots = 4;
    Engine serving_engine(cfg, weights, ExecPath::Reference, 8,
                          serving_exec);
    ServingEngine serving(serving_engine);
    for (const RouterRequest &req : parity_trace) {
        ServingRequest sr;
        sr.prompt = req.prompt;
        sr.decodeTokens = req.decodeTokens;
        sr.arrivalStep = req.arrivalStep;
        sr.sampler = req.sampler;
        sr.seed = req.seed;
        serving.enqueue(sr);
    }
    const auto serving_outcomes = serving.run();
    const double serving_tps =
        serving.stats().aggregateTokensPerSecond;

    RouterConfig parity_rc;
    parity_rc.shards = 1;
    parity_rc.slotsPerShard = 4;
    ServingRouter parity_router(cfg, weights, ExecPath::Reference, 8,
                                {}, parity_rc);
    for (const RouterRequest &req : parity_trace) {
        if (!parity_router.enqueue(req).admitted())
            fail("parity enqueue refused");
    }
    const auto parity_outcomes = parity_router.run();
    const double router_tps =
        parity_router.stats().goodputTokensPerSecond;

    for (std::size_t i = 0; i < parity_trace.size(); ++i) {
        if (parity_outcomes[i].status != RequestStatus::Completed)
            fail("parity run shed a request on a clean fleet");
        if (parity_outcomes[i].tokens != serving_outcomes[i].tokens)
            fail("router and ServingEngine decoded different tokens "
                 "on the clean config");
    }
    const double ratio =
        serving_tps > 0.0 ? router_tps / serving_tps : 0.0;
    std::printf("ServingEngine %s tok/s, router %s tok/s "
                "(ratio %.3f)\n",
                commaString(serving_tps, 2).c_str(),
                commaString(router_tps, 2).c_str(), ratio);
    if (ratio < 0.5 || ratio > 2.0)
        fail("clean-config router throughput far from ServingEngine");

    // -- BENCH_router.json --------------------------------------------------

    obs::JsonWriter w(2);
    w.beginObject();
    w.field("model", cfg.name);
    w.field("shards", rc.shards);
    w.field("slots_per_shard", rc.slotsPerShard);
    w.field("requests", requests);
    w.key("fault_schedule").beginArray();
    for (const ShardFaultEvent *ev : {&repaired, &killed, &lossy}) {
        w.beginObject()
            .field("step", ev->step)
            .field("shard", ev->shard)
            .field("stuck_bit_rate", ev->modelFaults.stuckBitRate)
            .field("dead_row_rate", ev->modelFaults.deadRowRate)
            .field("spare_rows", ev->modelFaults.spareRows)
            .field("link_retry_probability",
                   ev->linkFaults.retryProbability)
            .field("kill_link", ev->killLink)
            .endObject();
    }
    w.endArray();
    w.key("chaos")
        .beginObject()
        .field("goodput_tokens_per_second",
               stats.goodputTokensPerSecond)
        .field("shed_rate", shed_rate)
        .field("ttft_p99_seconds", stats.ttftP99Seconds)
        .field("latency_p95_seconds", stats.latencyP95Seconds)
        .field("recovery_seconds", recovery_seconds)
        .field("recovery_steps", recovery_steps)
        .field("completed", stats.completed)
        .field("shed", stats.shed)
        .field("cancelled", stats.cancelled)
        .field("failovers", stats.failovers)
        .field("retries", stats.retries)
        .field("degraded_mode", stats.degradedMode)
        .key("metrics")
        .rawValue(router.metricsJson())
        .endObject();
    w.key("clean_parity")
        .beginObject()
        .field("requests", parity_requests)
        .field("serving_engine_tokens_per_second", serving_tps)
        .field("router_tokens_per_second", router_tps)
        .field("ratio", ratio)
        .endObject();
    w.endObject();
    writeJsonFile(json_path, w, "chaos + clean parity");
    return 0;
}
