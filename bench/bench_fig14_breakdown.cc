/**
 * @file
 * Reproduces paper Fig. 14: per-token execution-time breakdown across
 * context lengths 2K..512K (CXL communication, projection, non-linear,
 * attention, memory stall).  The key qualitative behaviours: comm
 * dominates short contexts, attention rises with context length, and
 * HBM stalls appear only once the KV cache overflows the 320 MB
 * attention buffer (beyond 256K).
 */

#include "bench_util.hh"
#include "pipeline/pipeline_sim.hh"

int
main()
{
    using namespace hnlpu;

    bench::banner("Figure 14: Execution-time breakdown per token vs "
                  "context length");

    struct PaperRow { double comm, proj, attn, stall; };
    const std::pair<std::size_t, PaperRow> points[] = {
        {2048, {82.9, 13.8, 0.0, 0.0}},
        {8192, {81.5, 13.6, 0.0, 0.0}},
        {65536, {70.8, 11.8, 15.1, 0.0}},
        {131072, {61.5, 10.2, 26.2, 0.0}},
        {262144, {48.7, 8.1, 41.6, 0.0}},
        {524288, {30.7, 5.1, 52.4, 10.7}},
    };

    Table table({"Context", "Tokens/s", "Comm", "Projection",
                 "Non-linear", "Attention", "Stall", "KV overflow",
                 "Paper comm/attn/stall"});
    for (const auto &[ctx, paper] : points) {
        auto cfg = defaultGptOssPipeline(ctx);
        cfg.warmupTokens = 300;
        cfg.measuredTokens = ctx >= 262144 ? 400 : 800;
        const auto r = PipelineSim(cfg).run();
        const auto &b = r.breakdown;
        char paper_col[64];
        std::snprintf(paper_col, sizeof(paper_col),
                      "%.1f%% / %.1f%% / %.1f%%", paper.comm,
                      paper.attn, paper.stall);
        table.addRow({
            ctx >= 1024 ? std::to_string(ctx / 1024) + "K"
                        : std::to_string(ctx),
            commaString(r.tokensPerSecond),
            percentString(b.commShare()),
            percentString(b.projectionShare()),
            percentString(b.nonlinearShare()),
            percentString(b.attentionShare()),
            percentString(b.stallShare()),
            percentString(r.kvOverflowFraction),
            paper_col,
        });
    }
    table.print();

    std::printf(
        "\nShape checks (paper):\n"
        "  - CXL communication dominates short contexts and falls "
        "monotonically;\n"
        "  - attention share rises with context and dominates the long "
        "tail;\n"
        "  - memory stalls are zero through 256K (KV resident in the "
        "320MB buffer\n"
        "    thanks to gpt-oss's alternating sliding-window layers) "
        "and appear at 512K.\n"
        "  Our simulator charges the full spilled-KV re-read per token "
        "against effective\n"
        "  HBM bandwidth, so the 512K stall share exceeds the paper's "
        "10.7%% (see EXPERIMENTS.md).\n");
    return 0;
}
