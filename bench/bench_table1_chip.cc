/**
 * @file
 * Reproduces paper Table 1: single-chip hardware characteristics
 * (area and power breakdown of one HNLPU chip carrying 1/16th of
 * gpt-oss 120 B), plus the Section 7.1 layout-characteristics checks
 * (attention-buffer bandwidth, power density).
 */

#include "bench_util.hh"
#include "mem/sram.hh"
#include "model/model_zoo.hh"
#include "phys/chip_floorplan.hh"

int
main()
{
    using namespace hnlpu;

    bench::banner("Table 1: Single-chip hardware characteristics");

    ChipFloorplan plan(makePartition(gptOss120b()), n5Technology());
    const auto comps = plan.components();
    const double total_area = plan.totalArea();
    const double total_power = plan.totalPower();

    // Paper reference values, same order as components().
    const double paper_area[] = {573.16, 27.87, 0.02, 136.11, 37.92,
                                 52.0};
    const double paper_power[] = {76.92, 33.09, 0.004, 85.73, 49.65,
                                  63.0};

    Table table({"Component", "Area (mm^2)", "Area %", "Power (W)",
                 "Power %", "Paper area", "Paper power"});
    for (std::size_t i = 0; i < comps.size(); ++i) {
        table.addRow({comps[i].name, commaString(comps[i].area, 2),
                      percentString(comps[i].area / total_area),
                      commaString(comps[i].power, 2),
                      percentString(comps[i].power / total_power),
                      commaString(paper_area[i], 2),
                      commaString(paper_power[i], 2)});
    }
    table.addSeparator();
    table.addRow({"Total", commaString(total_area, 2), "100.0%",
                  commaString(total_power, 2), "100.0%", "827.08",
                  "308.39"});
    table.print();

    std::printf("\nDeviation vs paper: area %s, power %s\n",
                bench::deviation(total_area, 827.08).c_str(),
                bench::deviation(total_power, 308.39).c_str());

    bench::banner("Section 7.1: layout characteristics");
    SramBufferParams buffer;
    std::printf("Attention buffer: %s capacity, %s bandwidth "
                "(paper: 320 MB, 80 TB/s), %zu-cycle access\n",
                siString(buffer.capacityBytes(), "B", 3).c_str(),
                siString(buffer.readBandwidth(), "B/s", 3).c_str(),
                buffer.accessCycles);
    std::printf("Average power density: %.2f W/mm^2 "
                "(paper: avg 0.3, peak 1.4, within DLC limits)\n",
                total_power / total_area);
    std::printf("System totals: %s silicon over 16 chips, %s "
                "(paper: 13,232 mm^2, 6.9 kW)\n",
                commaString(plan.systemSiliconArea()).c_str(),
                siString(plan.systemPower(), "W", 3).c_str());
    return 0;
}
