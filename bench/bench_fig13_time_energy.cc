/**
 * @file
 * Reproduces paper Fig. 13: execution cycles and energy of the
 * 1x1024 by 1024x128 FP4 GEMV under the MA / CE / ME methodologies.
 * The paper's bar chart shows MA at ~130-150 cycles with CE/ME far
 * below, and energy on a 0.1..10 nJ log scale ordered MA > CE > ME.
 */

#include "bench_util.hh"
#include "phys/energy_model.hh"

int
main()
{
    using namespace hnlpu;

    bench::banner("Figure 13: Embedding-methodology time & energy "
                  "(1024 x 128 FP4 GEMV)");

    OperatorModel op(n5Technology());
    const OperatorShape shape;
    const auto ma = op.macArray(shape);
    const auto ce = op.cellEmbedding(shape);
    const auto me = op.metalEmbedding(shape);

    Table cycles({"Methodology", "Cycles", "Paper (approx.)"});
    cycles.addRow({"MAC Array (MA)", commaString(ma.cycles),
                   "~140 (SRAM-fetch bound)"});
    cycles.addRow({"Cell-Embedding (CE)", commaString(ce.cycles),
                   "~10 (fully parallel)"});
    cycles.addRow({"Metal-Embedding (ME)", commaString(me.cycles),
                   "~25 (bit-serial)"});
    cycles.print();

    Table energy({"Methodology", "Energy", "Dominant term",
                  "Paper (log-scale pos.)"});
    energy.addRow({"MAC Array (MA)", siString(ma.energy, "J", 3),
                   "SRAM weight fetch", "~10 nJ"});
    energy.addRow({"Cell-Embedding (CE)", siString(ce.energy, "J", 3),
                   "constant multiplies + leakage", "~1 nJ"});
    energy.addRow({"Metal-Embedding (ME)", siString(me.energy, "J", 3),
                   "1-bit popcount toggles", "~0.2 nJ"});
    energy.print();

    std::printf("\nOrdering checks: MA/ME energy = %s, CE/ME energy = "
                "%s, MA/ME cycles = %s\n",
                ratioString(ma.energy / me.energy, 1).c_str(),
                ratioString(ce.energy / me.energy, 1).c_str(),
                ratioString(ma.cycles / me.cycles, 1).c_str());

    // Sensitivity: activation bit width drives the ME serial time.
    bench::banner("ME sensitivity: activation width");
    Table sweep({"Activation bits", "ME cycles", "ME energy"});
    for (unsigned bits : {4u, 8u, 12u, 16u}) {
        OperatorShape s = shape;
        s.activationBits = bits;
        const auto r = op.metalEmbedding(s);
        sweep.addRow({std::to_string(bits), commaString(r.cycles),
                      siString(r.energy, "J", 3)});
    }
    sweep.print();
    return 0;
}
