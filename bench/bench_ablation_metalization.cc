/**
 * @file
 * Ablation: metalization physics (paper Sections 3.1/3.2/7.1).
 * Compiles representative gpt-oss weight blocks with the
 * Hardwired-Neuron Compiler and reports routing density against the
 * 70% sign-off limit, slack (accumulator over-provisioning) behaviour
 * under skewed weight distributions, and the sensitivity of density to
 * the track pitch of the M8-M11 layers.
 */

#include "bench_util.hh"
#include "hn/hn_array.hh"
#include "hncc/compiler.hh"
#include "model/model_zoo.hh"

namespace {

using namespace hnlpu;

SeaOfNeuronsTemplate
tmplFor(std::size_t fan_in, double slack)
{
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = fan_in;
    tmpl.portsPerSlice = 64;
    tmpl.slackFactor = slack;
    return tmpl;
}

} // namespace

int
main()
{
    bench::banner("hncc: gpt-oss projection blocks through the "
                  "Hardwired-Neuron Compiler");

    HnCompiler compiler(n5Technology());
    struct Block { const char *name; std::size_t rows, cols; };
    const Block blocks[] = {
        {"Wq column slice (1024 x 720)", 64, 720},
        {"Router (128 x 2880)", 128, 2880},
        {"Expert up-projection rows", 64, 2880},
        {"Unembedding rows", 64, 2880},
    };

    Table table({"Block", "Wires", "Grounded", "Slack util",
                 "Wire length", "Routing density", "Sign-off"});
    for (const auto &b : blocks) {
        auto weights = syntheticFp4Weights(b.rows * b.cols,
                                           b.rows * 13 + b.cols);
        const auto plan = compiler.compile(tmplFor(b.cols, 2.0),
                                           weights, b.rows, b.cols);
        const auto &s = plan.stats();
        table.addRow({b.name, commaString(double(s.wires)),
                      commaString(double(s.groundedPorts)),
                      percentString(s.slackUtilisation),
                      commaString(s.totalWireLengthMm, 1) + " mm",
                      percentString(s.routingDensity),
                      plan.drcClean() ? "clean (<70%)" : "VIOLATION"});
    }
    table.print();
    std::printf("\nPaper Section 7.1: routing density on the ME layers "
                "(M8-M11) remains below 70%%.\n");

    bench::banner("Slack sweep: accumulator over-provisioning vs "
                  "weight-histogram skew");
    Table slack_t({"Slack factor", "Balanced weights",
                   "Skewed (90% one value)"});
    const std::size_t rows = 8, cols = 2880;
    auto balanced = syntheticFp4Weights(rows * cols, 3);
    std::vector<Fp4> skewed;
    for (std::size_t i = 0; i < rows * cols; ++i) {
        skewed.push_back(i % 10 == 0 ? Fp4::quantize(-2.0)
                                     : Fp4::quantize(1.0));
    }
    auto verdict = [](const MetalizationPlan &plan) -> std::string {
        for (const auto &v : plan.violations()) {
            if (v.message.find("slices") != std::string::npos)
                return "CAPACITY OVERFLOW";
        }
        if (!plan.drcClean())
            return "density violation";
        return "fits (" +
               percentString(plan.stats().routingDensity) + ")";
    };
    for (double slack : {1.0, 1.25, 1.5, 2.0, 3.0}) {
        const auto pb = compiler.compile(tmplFor(cols, slack), balanced,
                                         rows, cols);
        const auto ps = compiler.compile(tmplFor(cols, slack), skewed,
                                         rows, cols);
        slack_t.addRow({commaString(slack, 2), verdict(pb),
                        verdict(ps)});
    }
    slack_t.print();
    std::printf("\nThe paper sizes accumulators 'with sufficient "
                "slackness'; trained-LLM-like histograms\nfit modest "
                "slack; fully dense skewed histograms push the wire "
                "count\n(no zero weights to drop) into the routing-"
                "density margin instead.\n");

    bench::banner("Track-pitch sensitivity (M8-M11 process choice)");
    Table pitch_t({"Track pitch", "Routing density", "Sign-off"});
    for (double pitch_um : {0.06, 0.08, 0.12, 0.16}) {
        MetalizationParams params;
        params.trackPitchUm = pitch_um;
        HnCompiler swept(n5Technology(), params);
        const auto plan = swept.compile(tmplFor(cols, 2.0), balanced,
                                        rows, cols);
        pitch_t.addRow({commaString(pitch_um * 1000.0) + " nm",
                        percentString(plan.stats().routingDensity),
                        plan.drcClean() ? "clean" : "VIOLATION"});
    }
    pitch_t.print();

    bench::banner("Emitted metalization script (head)");
    auto weights = syntheticFp4Weights(2 * 64, 5);
    const auto demo = compiler.compile(tmplFor(64, 2.0), weights, 2, 64);
    std::fputs(demo.emitScript(8).c_str(), stdout);
    return 0;
}
