/**
 * @file
 * Ablation: pipelining and batching (paper Section 5.2).  Shows how
 * throughput scales with the number of concurrent sequences admitted
 * by the continuous batcher (up to the 6 x 36 + 1 pipeline slots), and
 * the prefill/decode service behaviour of request-level serving.
 */

#include <cmath>

#include "bench_util.hh"
#include "pipeline/batcher.hh"
#include "pipeline/pipeline_sim.hh"

int
main()
{
    using namespace hnlpu;

    // Derive the pipeline's token interval/latency once.
    auto cfg = defaultGptOssPipeline(2048);
    cfg.warmupTokens = 250;
    cfg.measuredTokens = 600;
    const auto pipe = PipelineSim(cfg).run();
    const Seconds interval = 1.0 / pipe.tokensPerSecond;
    const Seconds traversal = pipe.tokenLatency;

    bench::banner("Ablation: batch-size scaling via slot-limited "
                  "serving");
    Table scale({"Concurrent sequences", "Aggregate tokens/s",
                 "Of peak"});
    for (std::size_t slots : {1u, 8u, 32u, 108u, 217u}) {
        // Each sequence decodes one token per traversal; the aggregate
        // approaches 1/interval as slots fill the pipeline.
        const double per_seq = 1.0 / traversal;
        const double aggregate =
            std::min(double(slots) * per_seq, 1.0 / interval);
        scale.addRow({std::to_string(slots), commaString(aggregate),
                      percentString(aggregate * interval)});
    }
    scale.print();
    std::printf("\nPeak (all %zu slots): %s tokens/s; single sequence: "
                "%s tokens/s\n",
                pipe.pipelineSlots,
                commaString(1.0 / interval).c_str(),
                commaString(1.0 / traversal).c_str());

    bench::banner("Ablation: serving load sweep (continuous batching)");
    Table load({"Offered load", "Decoded tok/s", "Mean TTFT",
                "Mean latency", "Occupancy"});
    for (double load_factor : {0.25, 0.5, 0.75, 0.95}) {
        // Mixed workload: 80% short chat turns, 20% long completions.
        const double tokens_per_req = 0.8 * (256 + 128) +
                                      0.2 * (2048 + 512);
        const double arrival_rate =
            load_factor / (tokens_per_req * interval);
        std::vector<Request> reqs;
        for (int i = 0; i < 4000; ++i) {
            const bool longreq = (i % 5 == 0);
            reqs.push_back({double(i) / arrival_rate,
                            longreq ? 2048u : 256u,
                            longreq ? 512u : 128u});
        }
        ContinuousBatcher batcher(217, interval, traversal);
        batcher.serve(reqs);
        const auto &st = batcher.stats();
        load.addRow({percentString(load_factor),
                     commaString(st.throughputTokensPerSecond),
                     siString(st.meanTimeToFirstToken, "s", 3),
                     siString(st.meanLatency, "s", 3),
                     percentString(st.meanOccupancy)});
    }
    load.print();

    return 0;
}
