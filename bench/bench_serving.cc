/**
 * @file
 * Continuous-batching serving throughput: aggregate tokens/s of the
 * ServingEngine at 1/2/4/8 decode slots over the batched HN GEMM path.
 *
 * A fixed trace of requests (same prompts, same seeds) is served at
 * every slot count for both execution paths; because the batched
 * kernels are bit-exact per column, every configuration decodes the
 * same tokens and only the wall clock changes -- the bench verifies
 * that token equality inline.  The speedup at batch >= 4 over batch ==
 * 1 is the tentpole acceptance metric: one weight-side traversal
 * (region-mask walk on the hardwired path, FP4 row dequantisation on
 * the reference path) is amortised over every in-flight sequence.
 *
 * Measurements, including per-request TTFT / queueing / p50 / p95
 * records, go to BENCH_serving.json.
 *
 * Usage: bench_serving [decode_ref] [decode_hw] [requests] [json]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"
#include "xformer/serving.hh"
#include "xformer/weights.hh"

namespace {

using namespace hnlpu;

/** gpt-oss-shaped block at ~1/10 linear scale (as bench_throughput). */
TransformerConfig
scaledGptOssBlock()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-scaled-block";
    cfg.hiddenSize = 288;
    cfg.layerCount = 1;
    cfg.queryHeads = 8;
    cfg.kvHeads = 2;
    cfg.headDim = 36;
    cfg.vocabSize = 2048;
    cfg.expertCount = 8;
    cfg.activeExperts = 2;
    cfg.expertHidden = 288;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

struct Measurement
{
    std::string path;
    std::size_t slots = 0;
    ServingStats stats;
    std::string metricsJson;
    std::vector<std::vector<std::size_t>> tokens;
};

Measurement
measure(const TransformerConfig &cfg, const ModelWeights &weights,
        ExecPath path, std::size_t slots, std::size_t requests,
        std::size_t prompt_tokens, std::size_t decode_tokens)
{
    ExecOptions exec;
    exec.threads = 1; // isolate the batched-kernel win from threading
    exec.batchSlots = slots;
    Engine engine(cfg, weights, path, 8, exec);
    ServingEngine serving(engine);

    for (std::size_t r = 0; r < requests; ++r) {
        ServingRequest req;
        for (std::size_t t = 0; t < prompt_tokens; ++t)
            req.prompt.push_back((7 + 131 * r + 29 * t) % cfg.vocabSize);
        req.decodeTokens = decode_tokens;
        req.seed = r;
        serving.enqueue(req);
    }
    const auto outcomes = serving.run();

    Measurement m;
    m.path = path == ExecPath::Reference ? "reference" : "hardwired";
    m.slots = slots;
    m.stats = serving.stats();
    m.metricsJson = serving.metricsJson();
    for (const auto &out : outcomes)
        m.tokens.push_back(out.tokens);
    return m;
}

std::vector<Measurement>
reportPath(const char *title, const TransformerConfig &cfg,
           const ModelWeights &weights, ExecPath path,
           std::size_t requests, std::size_t prompt_tokens,
           std::size_t decode_tokens)
{
    bench::banner(title);
    Table table({"Slots", "Agg tok/s", "Speedup", "Occupancy",
                 "TTFT p50 ms", "TTFT p95 ms", "Latency p95 ms"});
    std::vector<Measurement> measurements;
    double base = 0.0;
    for (std::size_t slots : {1u, 2u, 4u, 8u}) {
        Measurement m = measure(cfg, weights, path, slots, requests,
                                prompt_tokens, decode_tokens);
        if (slots == 1)
            base = m.stats.aggregateTokensPerSecond;
        // Bit-exactness sanity: every slot count decodes the identical
        // tokens; only the wall clock may differ.
        if (!measurements.empty() &&
            m.tokens != measurements.front().tokens) {
            std::fprintf(stderr,
                         "FATAL: slots=%zu decoded different tokens\n",
                         slots);
            std::exit(1);
        }
        table.addRow(
            {std::to_string(slots),
             commaString(m.stats.aggregateTokensPerSecond, 2),
             commaString(m.stats.aggregateTokensPerSecond / base, 2) +
                 "x",
             commaString(m.stats.meanOccupancy, 2),
             commaString(m.stats.ttftP50Seconds * 1e3, 2),
             commaString(m.stats.ttftP95Seconds * 1e3, 2),
             commaString(m.stats.latencyP95Seconds * 1e3, 2)});
        measurements.push_back(std::move(m));
    }
    table.print();
    return measurements;
}

void
writeJson(const std::string &json_path, const TransformerConfig &cfg,
          std::size_t requests, std::size_t prompt_tokens,
          const std::vector<Measurement> &measurements)
{
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n  \"model\": \"%s\",\n  \"requests\": %zu,\n"
                 "  \"prompt_tokens\": %zu,\n  \"threads\": 1,\n"
                 "  \"configs\": [\n",
                 cfg.name.c_str(), requests, prompt_tokens);
    double base_ref = 0.0, base_hw = 0.0;
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const Measurement &m = measurements[i];
        double &base = m.path == "reference" ? base_ref : base_hw;
        if (m.slots == 1)
            base = m.stats.aggregateTokensPerSecond;
        std::fprintf(
            f,
            "    {\"path\": \"%s\", \"slots\": %zu, "
            "\"aggregate_tokens_per_s\": %.3f, "
            "\"speedup_vs_slots1\": %.3f, \"metrics\": %s}%s\n",
            m.path.c_str(), m.slots,
            m.stats.aggregateTokensPerSecond,
            base > 0.0 ? m.stats.aggregateTokensPerSecond / base : 0.0,
            m.metricsJson.c_str(),
            i + 1 < measurements.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu configs)\n", json_path.c_str(),
                measurements.size());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hnlpu;

    const std::size_t decode_ref =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
    const std::size_t decode_hw =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
    const std::size_t requests =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
    const std::string json_path =
        argc > 4 ? argv[4] : "BENCH_serving.json";
    const std::size_t prompt_tokens = 4;

    const TransformerConfig cfg = scaledGptOssBlock();
    bench::banner("Continuous-batching serving throughput (" +
                  cfg.name + ")");
    std::printf("hidden %zu, %zu experts (top-%zu), vocab %zu; "
                "%zu requests, prompt %zu\n",
                cfg.hiddenSize, cfg.expertCount, cfg.activeExperts,
                cfg.vocabSize, requests, prompt_tokens);

    const ModelWeights weights = ModelWeights::randomInit(cfg, 7);

    std::vector<Measurement> all;
    auto append = [&all](std::vector<Measurement> ms) {
        for (auto &m : ms)
            all.push_back(std::move(m));
    };
    append(reportPath("Reference path (batched float GEMM)", cfg,
                      weights, ExecPath::Reference, requests,
                      prompt_tokens, decode_ref));
    append(reportPath("Hardwired path, Packed kernel (batched "
                      "region-mask GEMM)",
                      cfg, weights, ExecPath::Hardwired, requests,
                      prompt_tokens, decode_hw));

    writeJson(json_path, cfg, requests, prompt_tokens, all);
    return 0;
}
