/**
 * @file
 * Continuous-batching serving throughput: aggregate tokens/s of the
 * ServingEngine at 1/2/4/8 decode slots over the batched HN GEMM path.
 *
 * A fixed trace of requests (same prompts, same seeds) is served at
 * every slot count for both execution paths; because the batched
 * kernels are bit-exact per column, every configuration decodes the
 * same tokens and only the wall clock changes -- the bench verifies
 * that token equality inline.  The speedup at batch >= 4 over batch ==
 * 1 is the tentpole acceptance metric: one weight-side traversal
 * (region-mask walk on the hardwired path, FP4 row dequantisation on
 * the reference path) is amortised over every in-flight sequence.
 *
 * Measurements, including per-request TTFT / queueing / p50 / p95
 * records, go to BENCH_serving.json.  With --trace, one extra 2-slot
 * 2-thread run is served under an obs::Tracer and the Chrome trace
 * (spans from serving, engine, moe and the thread pool) is written to
 * the given path; the traced run must decode the same tokens as the
 * untraced ones.
 *
 * Usage: bench_serving [decode_ref] [decode_hw] [requests] [json]
 *                      [--trace trace.json]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"
#include "xformer/serving.hh"
#include "xformer/weights.hh"

namespace {

using namespace hnlpu;

/** gpt-oss-shaped block at ~1/10 linear scale (as bench_throughput). */
TransformerConfig
scaledGptOssBlock()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-scaled-block";
    cfg.hiddenSize = 288;
    cfg.layerCount = 1;
    cfg.queryHeads = 8;
    cfg.kvHeads = 2;
    cfg.headDim = 36;
    cfg.vocabSize = 2048;
    cfg.expertCount = 8;
    cfg.activeExperts = 2;
    cfg.expertHidden = 288;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

struct Measurement
{
    std::string path;
    std::size_t slots = 0;
    ServingStats stats;
    std::string metricsJson;
    std::vector<std::vector<std::size_t>> tokens;
};

Measurement
measure(const TransformerConfig &cfg, const ModelWeights &weights,
        ExecPath path, std::size_t slots, std::size_t requests,
        std::size_t prompt_tokens, std::size_t decode_tokens,
        const obs::Sink *sink = nullptr, std::size_t threads = 1)
{
    ExecOptions exec;
    exec.threads = threads; // 1 isolates the batched-kernel win
    exec.batchSlots = slots;
    exec.sink = sink;
    Engine engine(cfg, weights, path, 8, exec);
    ServingEngine serving(engine);

    for (std::size_t r = 0; r < requests; ++r) {
        ServingRequest req;
        for (std::size_t t = 0; t < prompt_tokens; ++t)
            req.prompt.push_back((7 + 131 * r + 29 * t) % cfg.vocabSize);
        req.decodeTokens = decode_tokens;
        req.seed = r;
        serving.enqueue(req);
    }
    const auto outcomes = serving.run();

    Measurement m;
    m.path = path == ExecPath::Reference ? "reference" : "hardwired";
    m.slots = slots;
    m.stats = serving.stats();
    m.metricsJson = serving.metricsJson();
    for (const auto &out : outcomes)
        m.tokens.push_back(out.tokens);
    return m;
}

std::vector<Measurement>
reportPath(const char *title, const TransformerConfig &cfg,
           const ModelWeights &weights, ExecPath path,
           std::size_t requests, std::size_t prompt_tokens,
           std::size_t decode_tokens)
{
    bench::banner(title);
    Table table({"Slots", "Agg tok/s", "Speedup", "Occupancy",
                 "TTFT p50 ms", "TTFT p95 ms", "Latency p95 ms"});
    std::vector<Measurement> measurements;
    double base = 0.0;
    for (std::size_t slots : {1u, 2u, 4u, 8u}) {
        Measurement m = measure(cfg, weights, path, slots, requests,
                                prompt_tokens, decode_tokens);
        if (slots == 1)
            base = m.stats.aggregateTokensPerSecond;
        // Bit-exactness sanity: every slot count decodes the identical
        // tokens; only the wall clock may differ.
        if (!measurements.empty() &&
            m.tokens != measurements.front().tokens) {
            std::fprintf(stderr,
                         "FATAL: slots=%zu decoded different tokens\n",
                         slots);
            std::exit(1);
        }
        table.addRow(
            {std::to_string(slots),
             commaString(m.stats.aggregateTokensPerSecond, 2),
             commaString(m.stats.aggregateTokensPerSecond / base, 2) +
                 "x",
             commaString(m.stats.meanOccupancy, 2),
             commaString(m.stats.ttftP50Seconds * 1e3, 2),
             commaString(m.stats.ttftP95Seconds * 1e3, 2),
             commaString(m.stats.latencyP95Seconds * 1e3, 2)});
        measurements.push_back(std::move(m));
    }
    table.print();
    return measurements;
}

void
writeJson(const std::string &json_path, const TransformerConfig &cfg,
          std::size_t requests, std::size_t prompt_tokens,
          const std::vector<Measurement> &measurements)
{
    obs::JsonWriter w(2);
    w.beginObject();
    w.field("model", cfg.name);
    w.field("requests", requests);
    w.field("prompt_tokens", prompt_tokens);
    w.field("threads", 1);
    w.key("configs").beginArray();
    double base_ref = 0.0, base_hw = 0.0;
    for (const Measurement &m : measurements) {
        double &base = m.path == "reference" ? base_ref : base_hw;
        if (m.slots == 1)
            base = m.stats.aggregateTokensPerSecond;
        w.beginObject()
            .field("path", m.path)
            .field("slots", m.slots)
            .field("aggregate_tokens_per_s",
                   m.stats.aggregateTokensPerSecond)
            .field("speedup_vs_slots1",
                   base > 0.0
                       ? m.stats.aggregateTokensPerSecond / base
                       : 0.0)
            .key("metrics")
            .rawValue(m.metricsJson)
            .endObject();
    }
    w.endArray();
    w.endObject();
    bench::writeJsonFile(json_path, w,
                         std::to_string(measurements.size()) +
                             " configs");
}

/**
 * Serve the reference trace once more under a Tracer + MetricsRegistry
 * and write the Chrome trace to @p trace_path.  Returns the decoded
 * tokens so the caller can pin bit-identity against the untraced runs.
 */
std::vector<std::vector<std::size_t>>
writeTrace(const std::string &trace_path, const TransformerConfig &cfg,
           const ModelWeights &weights, std::size_t requests,
           std::size_t prompt_tokens, std::size_t decode_tokens)
{
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    obs::Sink sink;
    sink.trace = &tracer;
    sink.metrics = &metrics;
    // 2 slots batches steps; 2 threads makes pool.chunk spans appear.
    const Measurement m =
        measure(cfg, weights, ExecPath::Reference, 2, requests,
                prompt_tokens, decode_tokens, &sink, 2);
    tracer.writeFile(trace_path);
    std::printf("\nwrote %s (%zu spans, %s decoded tokens/s)\n",
                trace_path.c_str(), tracer.eventCount(),
                commaString(m.stats.aggregateTokensPerSecond, 2)
                    .c_str());
    return m.tokens;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hnlpu;

    // Positional args as documented, plus --trace <path> anywhere.
    std::string trace_path;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace needs a path\n");
                return 1;
            }
            trace_path = argv[++i];
        } else {
            pos.push_back(argv[i]);
        }
    }
    const std::size_t decode_ref =
        pos.size() > 0 ? std::strtoul(pos[0], nullptr, 10) : 24;
    const std::size_t decode_hw =
        pos.size() > 1 ? std::strtoul(pos[1], nullptr, 10) : 12;
    const std::size_t requests =
        pos.size() > 2 ? std::strtoul(pos[2], nullptr, 10) : 8;
    const std::string json_path =
        pos.size() > 3 ? pos[3] : "BENCH_serving.json";
    const std::size_t prompt_tokens = 4;

    const TransformerConfig cfg = scaledGptOssBlock();
    bench::banner("Continuous-batching serving throughput (" +
                  cfg.name + ")");
    std::printf("hidden %zu, %zu experts (top-%zu), vocab %zu; "
                "%zu requests, prompt %zu\n",
                cfg.hiddenSize, cfg.expertCount, cfg.activeExperts,
                cfg.vocabSize, requests, prompt_tokens);

    const ModelWeights weights = ModelWeights::randomInit(cfg, 7);

    std::vector<Measurement> all;
    auto append = [&all](std::vector<Measurement> ms) {
        for (auto &m : ms)
            all.push_back(std::move(m));
    };
    append(reportPath("Reference path (batched float GEMM)", cfg,
                      weights, ExecPath::Reference, requests,
                      prompt_tokens, decode_ref));
    append(reportPath("Hardwired path, Packed kernel (batched "
                      "region-mask GEMM)",
                      cfg, weights, ExecPath::Hardwired, requests,
                      prompt_tokens, decode_hw));

    writeJson(json_path, cfg, requests, prompt_tokens, all);

    if (!trace_path.empty()) {
        const auto traced = writeTrace(trace_path, cfg, weights,
                                       requests, prompt_tokens,
                                       decode_ref);
        // Observability must not perturb the computation: the traced
        // run decodes the exact tokens of the untraced reference runs.
        if (traced != all.front().tokens) {
            std::fprintf(stderr,
                         "FATAL: traced run decoded different tokens\n");
            return 1;
        }
    }
    return 0;
}
