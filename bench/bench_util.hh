/**
 * @file
 * Shared helpers for the reproduction drivers: banners and
 * paper-vs-measured rows so every bench prints in a uniform format.
 */

#ifndef HNLPU_BENCH_BENCH_UTIL_HH
#define HNLPU_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "common/units.hh"

namespace hnlpu::bench {

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** Relative deviation as a +x.x% string. */
inline std::string
deviation(double measured, double paper)
{
    if (paper == 0.0)
        return "n/a";
    const double dev = (measured - paper) / paper * 100.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", dev);
    return buf;
}

} // namespace hnlpu::bench

#endif // HNLPU_BENCH_BENCH_UTIL_HH
