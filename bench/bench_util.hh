/**
 * @file
 * Shared helpers for the reproduction drivers: banners and
 * paper-vs-measured rows so every bench prints in a uniform format.
 */

#ifndef HNLPU_BENCH_BENCH_UTIL_HH
#define HNLPU_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "common/units.hh"
#include "obs/json.hh"

namespace hnlpu::bench {

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/**
 * Write a completed obs::JsonWriter document to @p path with a trailing
 * newline.  Prints to stderr and returns false on I/O failure; on
 * success announces the file like every BENCH_*.json emitter does.
 */
inline bool
writeJsonFile(const std::string &path, const obs::JsonWriter &writer,
              const std::string &what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    const std::string body = writer.str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s (%s)\n", path.c_str(), what.c_str());
    return true;
}

/** Relative deviation as a +x.x% string. */
inline std::string
deviation(double measured, double paper)
{
    if (paper == 0.0)
        return "n/a";
    const double dev = (measured - paper) / paper * 100.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", dev);
    return buf;
}

} // namespace hnlpu::bench

#endif // HNLPU_BENCH_BENCH_UTIL_HH
