/**
 * @file
 * Reproduces paper Table 5: the HNLPU cost analysis -- recurring cost
 * per chip, non-recurring engineering (masks + design & development)
 * and total cost scenarios (initial build / re-spin at 1 and 50 nodes).
 */

#include "bench_util.hh"
#include "econ/nre.hh"
#include "model/model_zoo.hh"

namespace {

using namespace hnlpu;

std::string
range(const CostRange &r, int digits = 4)
{
    return dollarString(r.lo, digits) + " ~ " + dollarString(r.hi,
                                                             digits);
}

} // namespace

int
main()
{
    bench::banner("Table 5: HNLPU cost analysis (gpt-oss 120B)");

    HnlpuCostModel cost(n5Technology(), MaskStack{});
    const auto bd = cost.breakdown(gptOss120b());

    Table recurring({"Recurring cost ($/chip)", "Measured", "Paper"});
    recurring.addRow({"Wafer", dollarString(bd.waferPerChip, 3),
                      "$ 629"});
    recurring.addRow({"Package & test", range(bd.packageTestPerChip, 3),
                      "$ 111 ~ 185"});
    recurring.addRow({"HBM", range(bd.hbmPerChip, 4),
                      "$ 1,920 ~ 3,840"});
    recurring.addRow({"System integration",
                      range(bd.systemIntegrationPerChip, 4),
                      "$ 1,900 ~ 3,800"});
    recurring.addRow({"Total per chip", range(bd.recurringPerChip(), 4),
                      "-"});
    recurring.print();

    Table nre({"Non-recurring cost", "Measured", "Paper"});
    nre.addRow({"Homogeneous masks", range(bd.homogeneousMask),
                "$ 13.85M ~ 27.69M"});
    nre.addRow({"Metal-Embedding masks (16 chips)",
                range(bd.metalEmbeddingMask), "$ 18.46M ~ 36.92M"});
    nre.addRow({"Design & development", range(bd.designDevelopment),
                "$ 26.87M ~ 58.54M"});
    nre.addRow({"Total NRE", range(bd.totalNre()), "-"});
    nre.print();

    Table scenarios({"Scenario", "Measured", "Paper"});
    scenarios.addRow({"Initial build, 1 HNLPU",
                      range(bd.initialBuild(1)),
                      "$ 59.25M ~ 123.3M"});
    scenarios.addRow({"Initial build, 50 HNLPU",
                      range(bd.initialBuild(50)),
                      "$ 62.83M ~ 129.9M"});
    scenarios.addRow({"Re-spin, 1 HNLPU", range(bd.respin(1)),
                      "$ 18.53M ~ 37.06M"});
    scenarios.addRow({"Re-spin, 50 HNLPU", range(bd.respin(50)),
                      "$ 22.11M ~ 43.68M"});
    scenarios.print();

    std::printf("\nWafer economics: %.0f gross dies, %.1f%% Murphy "
                "yield, %.0f good dies per wafer (paper: ~27 of 62, "
                "43%%)\n",
                cost.wafers().economics(827.08).grossDiesPerWafer,
                cost.wafers().economics(827.08).yield * 100.0,
                cost.wafers().economics(827.08).goodDiesPerWafer);

    // Spare-neuron repair sensitivity: a fraction of defects lands in
    // HN-array rows that spare neurons absorb, lifting effective yield
    // and lowering every wafer-borne cost (src/fault, src/litho).
    bench::banner("Spare-neuron repair sensitivity (30% of defects "
                  "repairable)");
    Table repair_table({"Spare rows", "Effective yield",
                        "Wafer ($/chip)", "Recurring low ($/chip)"});
    for (std::size_t spares : {0, 1, 2, 4, 8}) {
        SpareRepairParams repair;
        repair.spareRows = spares;
        repair.repairableFraction = 0.3;
        HnlpuCostModel repaired(n5Technology(), MaskStack{},
                                RecurringCostParams{},
                                DesignCostParams{}, repair);
        const auto rbd = repaired.breakdown(gptOss120b());
        char yield_buf[32];
        std::snprintf(yield_buf, sizeof(yield_buf), "%.1f%%",
                      repaired.wafers().effectiveYield(827.08, repair) *
                          100.0);
        repair_table.addRow({std::to_string(spares), yield_buf,
                             dollarString(rbd.waferPerChip, 3),
                             dollarString(rbd.recurringPerChip().lo,
                                          4)});
    }
    repair_table.print();
    return 0;
}
