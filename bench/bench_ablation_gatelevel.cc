/**
 * @file
 * Ablation: gate-level structure of the bit-serial Hardwired-Neuron.
 *
 * Synthesises HN datapaths at several fan-ins, verifies each against
 * the functional model on random vectors, and reports the structural
 * cell counts -- an independent, bottom-up cross-check of the
 * calibrated Metal-Embedding area constant (the synthesised datapath
 * is a fully-parallel single-neuron instance; the production fabric
 * time-multiplexes accumulator slices, which is where the remaining
 * density gap comes from).
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "gates/hn_datapath.hh"
#include "hn/hn_array.hh"
#include "hn/hn_neuron.hh"
#include "chip/timing.hh"
#include "phys/technology.hh"

int
main()
{
    using namespace hnlpu;

    bench::banner("Gate-level HN datapath: structure vs fan-in "
                  "(8-bit activations)");

    const auto tech = n5Technology();
    Table table({"Fan-in", "Comb gates", "DFFs", "Logic depth",
                 "Tr estimate", "Tr / weight", "Verified"});
    for (std::size_t fan_in : {64u, 256u, 720u, 1440u}) {
        SeaOfNeuronsTemplate tmpl;
        tmpl.inputCount = fan_in;
        tmpl.portsPerSlice = 64;
        tmpl.slackFactor = 4.0;
        auto weights = syntheticFp4Weights(fan_in, fan_in);
        auto topo = *WireTopology::program(tmpl, weights);
        HardwiredNeuron functional(topo);
        HnDatapath circuit(topo, 8);

        // Spot-verify the circuit before reporting its structure.
        Rng rng(fan_in);
        bool ok = true;
        for (int trial = 0; trial < 3 && ok; ++trial) {
            std::vector<std::int64_t> x(fan_in);
            for (auto &v : x)
                v = rng.uniformInt(-128, 127);
            ok = circuit.evaluate(x) == functional.computeReference(x);
        }

        const auto stats = circuit.stats();
        table.addRow({
            std::to_string(fan_in),
            commaString(double(stats.combGates)),
            commaString(double(stats.dffs)),
            std::to_string(stats.logicDepth),
            commaString(double(stats.transistorEstimate)),
            commaString(double(stats.transistorEstimate) /
                            double(fan_in),
                        1),
            ok ? "bit-exact" : "MISMATCH",
        });
    }
    table.print();

    std::printf(
        "\nCalibrated Metal-Embedding silicon: %.1f transistors per "
        "weight\n(= %.4f um^2 at %.0f MTr/mm^2).  The fully-parallel "
        "synthesised instance above\nspends more because every region "
        "gets a dedicated POPCNT tree and Horner\naccumulator; the "
        "production fabric streams %zu ports per cycle through shared\n"
        "slices, amortising those adders -- the bit-serial 'time for "
        "area' trade the\npaper's Fig. 3 describes.\n",
        tech.areaMePerWeightUm2 * tech.transistorDensityPerMm2 / 1e6,
        tech.areaMePerWeightUm2, tech.transistorDensityPerMm2 / 1e6,
        ChipTimingParams{}.hnSerialWidth);
    return 0;
}
