/**
 * @file
 * Fault-sweep harness: how gracefully does a hardwired model degrade
 * under metal stuck-at faults and dead neurons, with and without
 * spare-neuron repair?
 *
 * Sweeps the per-bit stuck rate and per-row dead rate on the tiny test
 * model (hardwired path), comparing faulty logits and greedy decisions
 * against the clean engine over a fixed forced-token sequence.  Every
 * run is seed-deterministic.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/model_faults.hh"
#include "model/model_zoo.hh"
#include "xformer/engine.hh"

namespace {

using namespace hnlpu;

/** Forced decode sequence shared by every configuration. */
std::vector<std::size_t>
tokenSequence(std::size_t vocab)
{
    std::vector<std::size_t> tokens;
    for (std::size_t i = 0; i < 24; ++i)
        tokens.push_back((7 * i + 3) % vocab);
    return tokens;
}

struct Divergence
{
    double rms = 0;      //!< RMS logit deviation over all steps
    double maxAbs = 0;   //!< worst single-logit deviation
    double flipRate = 0; //!< fraction of steps whose argmax changed
};

Divergence
measure(const TransformerConfig &cfg, const ModelWeights &clean,
        const ModelWeights &faulty,
        const std::vector<std::size_t> &tokens)
{
    Engine clean_engine(cfg, clean, ExecPath::Hardwired);
    Engine faulty_engine(cfg, faulty, ExecPath::Hardwired);
    KvCache clean_cache = clean_engine.makeCache();
    KvCache faulty_cache = faulty_engine.makeCache();

    Divergence d;
    double sq_sum = 0;
    std::size_t samples = 0, flips = 0;
    for (std::size_t token : tokens) {
        const Vec a = clean_engine.forwardToken(token, clean_cache);
        const Vec b = faulty_engine.forwardToken(token, faulty_cache);
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double diff = b[i] - a[i];
            sq_sum += diff * diff;
            d.maxAbs = std::max(d.maxAbs, std::abs(diff));
            ++samples;
        }
        const auto arg_a =
            std::max_element(a.begin(), a.end()) - a.begin();
        const auto arg_b =
            std::max_element(b.begin(), b.end()) - b.begin();
        if (arg_a != arg_b)
            ++flips;
    }
    d.rms = std::sqrt(sq_sum / double(samples));
    d.flipRate = double(flips) / double(tokens.size());
    return d;
}

std::string
fmt(double v, const char *spec = "%.4g")
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

} // namespace

int
main()
{
    bench::banner("Fault sweep: stuck-at bits, dead neurons, repair");

    const TransformerConfig cfg = tinyTestModel();
    const ModelWeights clean = ModelWeights::randomInit(cfg, 99);
    const auto tokens = tokenSequence(cfg.vocabSize);

    struct Point
    {
        double stuck;
        double dead;
    };
    const std::vector<Point> sweep{
        {1e-4, 0.0}, {1e-3, 0.0}, {1e-2, 0.0},
        {0.0, 1e-3}, {0.0, 1e-2}, {1e-3, 1e-2},
    };

    Table table({"stuck/bit", "dead/row", "spares", "stuck bits",
                 "dead rows", "repaired", "logit RMS", "logit max",
                 "token flips"});
    for (const Point &p : sweep) {
        for (std::size_t spares : {std::size_t(0), std::size_t(4)}) {
            FaultModelParams params;
            params.seed = 20260807;
            params.stuckBitRate = p.stuck;
            params.deadRowRate = p.dead;
            params.spareRows = spares;
            const FaultInjector injector(params);
            ModelFaultStats stats;
            const ModelWeights faulty =
                applyToModel(clean, cfg, injector, &stats);
            const Divergence d = measure(cfg, clean, faulty, tokens);
            table.addRow({fmt(p.stuck, "%.0e"), fmt(p.dead, "%.0e"),
                          std::to_string(spares),
                          std::to_string(stats.stuckBits),
                          std::to_string(stats.deadRows),
                          std::to_string(stats.repairedRows),
                          fmt(d.rms), fmt(d.maxAbs),
                          fmt(d.flipRate * 100.0, "%.1f%%")});
        }
    }
    table.print();

    std::printf("\nModel: %s; %zu forced tokens; hardwired path; "
                "seed-deterministic plans (repair consumes spares "
                "lowest-row-first).\n",
                cfg.name.c_str(), tokens.size());
    return 0;
}
